// Regenerates paper Tables V and VI: FP64 discrepancies per optimization
// option and the per-level adjacency matrices.

#include <cstdio>

#include "bench_common.hpp"
#include "diff/report.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("table5_6_fp64",
                         "Regenerate paper Tables V & VI (FP64 campaign)");
  bench_common::add_campaign_options(cli);
  cli.add_int("drill", 'd', "also list the first N discrepancy records", 0);
  if (!cli.parse(argc, argv)) return 1;

  const auto cfg = bench_common::make_config(cli, ir::Precision::FP64, false);
  std::printf("running FP64 campaign (%d programs x %d inputs x 5 levels)...\n\n",
              cfg.num_programs, cfg.inputs_per_program);
  const auto results = diff::run_campaign(cfg);

  std::printf("%s\n", diff::render_per_level(
                          results,
                          "TABLE V — DISCREPANCIES PER OPTIMIZATION OPTION "
                          "FOR FP64 TESTS").c_str());
  std::printf("%s\n", diff::render_adjacency(
                          results,
                          "TABLE VI — ADJACENCY MATRICES FOR DIFFERENT "
                          "OPTIMIZATION LEVELS FOR FP64 TESTS").c_str());
  std::printf(
      "Paper shape: O1 == O2 == O3 counts; O3_FM highest; O0 close behind;\n"
      "Num-Num the most frequent class at every level.\n");
  if (cli.get_int("drill") > 0)
    std::printf("\n%s\n",
                diff::render_records(results,
                                     static_cast<std::size_t>(cli.get_int("drill")))
                    .c_str());
  return 0;
}
