// Regenerates paper Tables IX and X: FP32 tests, including the fast-math
// explosion the paper highlights (45 discrepancies at O0 vs 13,877 at O3_FM).

#include <cstdio>

#include "bench_common.hpp"
#include "diff/report.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("table9_10_fp32",
                         "Regenerate paper Tables IX & X (FP32 campaign)");
  bench_common::add_campaign_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto cfg = bench_common::make_config(cli, ir::Precision::FP32, false);
  std::printf("running FP32 campaign (%d programs x %d inputs x 5 levels)...\n\n",
              cfg.num_programs, cfg.inputs_per_program);
  const auto results = diff::run_campaign(cfg);

  std::printf("%s\n", diff::render_per_level(
                          results,
                          "TABLE IX — DISCREPANCIES PER OPTIMIZATION OPTION "
                          "FOR FP32 TESTS").c_str());
  std::printf("%s\n", diff::render_adjacency(
                          results,
                          "TABLE X — ADJACENCY MATRICES FOR DIFFERENT "
                          "OPTIMIZATION LEVELS FOR FP32 TESTS").c_str());

  const auto& o0 = results.stats_for(opt::OptLevel::O0);
  const auto& fm = results.stats_for(opt::OptLevel::O3_FastMath);
  std::printf(
      "Fast-math explosion: O0 = %llu discrepancies, O3_FM = %llu (x%.0f)\n"
      "Paper: 45 vs 13,877 (x308).  All seven classes appear at O3_FM: %s\n",
      static_cast<unsigned long long>(o0.discrepancy_total()),
      static_cast<unsigned long long>(fm.discrepancy_total()),
      o0.discrepancy_total()
          ? static_cast<double>(fm.discrepancy_total()) /
                static_cast<double>(o0.discrepancy_total())
          : 0.0,
      [&] {
        for (auto c : fm.pairs[0].class_counts)
          if (c == 0) return "NO";
        return "yes";
      }());
  return 0;
}
