// Regenerates paper Table III: characteristics of the random programs the
// generator can produce, plus empirical statistics over a generated corpus
// (how often each construct actually appears).

#include <cstdio>
#include <functional>

#include "gen/generator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("table3_grammar",
                         "Regenerate paper Table III (generator grammar)");
  cli.add_int("programs", 'p', "corpus size for empirical stats", 2000);
  cli.add_int("seed", 's', "generator seed", 42);
  if (!cli.parse(argc, argv)) return 1;

  gen::GenConfig cfg;
  std::printf("TABLE III — CHARACTERISTICS OF THE RANDOM PROGRAMS\n\n%s\n",
              cfg.describe().c_str());

  // Empirical construct frequencies across a corpus.
  gen::Generator g(cfg, static_cast<std::uint64_t>(cli.get_int("seed")));
  const int n = static_cast<int>(cli.get_int("programs"));
  std::uint64_t with_loop = 0, with_if = 0, with_call = 0, with_array = 0,
                total_nodes = 0, with_nested_loop = 0;
  for (int i = 0; i < n; ++i) {
    const ir::Program p = g.generate(i);
    total_nodes += p.node_count();
    bool loop = false, cond = false, call = false, array = false, nested = false;
    const std::function<void(std::span<const ir::StmtId>, int)> walk =
        [&](std::span<const ir::StmtId> body, int depth) {
          for (ir::StmtId id : body) {
            const ir::Stmt& s = p.stmt(id);
            if (s.kind == ir::StmtKind::For) {
              loop = true;
              if (depth > 0) nested = true;
            }
            if (s.kind == ir::StmtKind::If) cond = true;
            if (s.kind == ir::StmtKind::StoreArray) array = true;
            const std::function<void(ir::ExprId)> we = [&](ir::ExprId eid) {
              const ir::Expr& e = p.expr(eid);
              if (e.kind == ir::ExprKind::Call) call = true;
              if (e.kind == ir::ExprKind::ArrayRef) array = true;
              for (int k = 0; k < e.n_kids; ++k) we(e.kid[k]);
            };
            if (s.a) we(s.a);
            if (s.b) we(s.b);
            walk(p.body_of(s), depth + (s.kind == ir::StmtKind::For ? 1 : 0));
          }
        };
    walk(std::span<const ir::StmtId>(p.body()), 0);
    with_loop += loop;
    with_if += cond;
    with_call += call;
    with_array += array;
    with_nested_loop += nested;
  }

  support::Table t("Empirical construct frequency over " + std::to_string(n) +
                   " generated programs");
  t.set_header({"Construct", "Programs containing it", "%"});
  const auto row = [&](const char* name, std::uint64_t count) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.1f", 100.0 * static_cast<double>(count) / n);
    t.add_row({name, std::to_string(count), pct});
  };
  row("for loop", with_loop);
  row("nested for loop", with_nested_loop);
  row("if condition", with_if);
  row("math library call", with_call);
  row("array access", with_array);
  t.add_rule();
  t.add_row({"mean IR nodes / program",
             std::to_string(total_nodes / static_cast<std::uint64_t>(n)), ""});
  std::printf("%s", t.render().c_str());
  return 0;
}
