// Regenerates paper Table I: compiler/flag combinations vs runtime and
// maximum relative error, on a BT.S-style structured-grid kernel.
//
// Table I in the paper (taken from Miao et al. [2]) profiles the NAS BT
// benchmark under nvcc/clang at O0 and O3+fast-math.  We reproduce the
// *shape* on a miniature ADI-like sweep kernel built with the public IR
// builder: fast-math halves the runtime while increasing the maximum
// relative error, and the hipcc-side error at O3 fast-math is the largest.
// "Runtime" uses the virtual GPU's deterministic issue-cycle model (1 cycle
// per add/mul/fma, 16 per IEEE FP64 divide, 24 per library call) — absolute
// numbers are not comparable to the paper's wall-clock seconds.

#include <cstdio>
#include <vector>

#include "fp/bits.hpp"
#include "ir/builder.hpp"
#include "opt/pipeline.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;

/// A miniature ADI/BT-flavoured kernel: forward elimination + back
/// substitution over a line of cells, with the transcendental source terms
/// that make compilers' fast-math choices observable.  Single precision:
/// both real toolchains' fast-math modes only swap FP32 division and
/// transcendental paths, so that is where the Table I runtime effect lives.
Program build_bt_kernel() {
  ProgramBuilder b(Precision::FP32);
  Arena& A = b.arena();
  const int n = b.add_int_param();        // grid points per line
  const int dt = b.add_scalar_param();    // time step
  const int rho = b.add_scalar_param();   // density-ish coefficient
  const int lhs = b.add_array_param();    // working diagonal
  const int rhs = b.add_array_param();    // right-hand side

  // comp accumulates the solution norm.
  b.begin_for(n);
  {
    // lhs[i] = 2.0 + dt * (rho / (1.0 + dt * rho))
    b.store_array(lhs, make_loop_var(A, 0),
                  make_bin(A, BinOp::Add, make_literal(A, 2.0, "+2.0E0"),
                           make_bin(A, BinOp::Mul, make_param(A, dt),
                                    make_bin(A, BinOp::Div, make_param(A, rho),
                                             make_bin(A, BinOp::Add,
                                                      make_literal(A, 1.0, "+1.0E0"),
                                                      make_bin(A, BinOp::Mul,
                                                               make_param(A, dt),
                                                               make_param(A, rho)))))));
    // rhs[i] = sin(dt * i) + cos(rho) * 1e-3 + rhs[i] * 0.25
    b.store_array(rhs, make_loop_var(A, 0),
                  make_bin(A, BinOp::Add,
                           make_call(A, MathFn::Sin,
                                     make_bin(A, BinOp::Mul, make_param(A, dt),
                                              make_loop_var(A, 0))),
                           make_bin(A, BinOp::Add,
                                    make_bin(A, BinOp::Mul,
                                             make_call(A, MathFn::Cos, make_param(A, rho)),
                                             make_literal(A, 1e-3, "+1.0E-3")),
                                    make_bin(A, BinOp::Mul,
                                             make_array(A, rhs, make_loop_var(A, 0)),
                                             make_literal(A, 0.25, "+2.5E-1")))));
  }
  b.end_block();
  b.begin_for(n);
  {
    // comp += rhs[i] / lhs[i] + dt * rhs[i] * 0.5 - sqrt(fabs(rhs[i])) * 1e-2
    b.assign_comp(
        AssignOp::Add,
        make_bin(A, BinOp::Sub,
                 make_bin(A, BinOp::Add,
                          make_bin(A, BinOp::Div, make_array(A, rhs, make_loop_var(A, 0)),
                                   make_array(A, lhs, make_loop_var(A, 0))),
                          make_bin(A, BinOp::Mul,
                                   make_bin(A, BinOp::Mul, make_param(A, dt),
                                            make_array(A, rhs, make_loop_var(A, 0))),
                                   make_literal(A, 0.5, "+5.0E-1"))),
                 make_bin(A, BinOp::Mul,
                          make_call(A, MathFn::Sqrt,
                                    make_call(A, MathFn::Fabs,
                                              make_array(A, rhs, make_loop_var(A, 0)))),
                          make_literal(A, 1e-2, "+1.0E-2"))));
  }
  b.end_block();
  return b.build();
}

struct Config {
  opt::Toolchain toolchain;
  opt::OptLevel level;
};

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli("table1_btnas",
                         "Regenerate paper Table I (BT.S-style inconsistencies)");
  cli.add_int("grid", 'g', "grid points per kernel line", 64);
  cli.add_int("sweeps", 'n', "input sweeps to aggregate", 200);
  cli.add_int("seed", 's', "input seed", 42);
  if (!cli.parse(argc, argv)) return 1;

  const Program kernel = build_bt_kernel();
  const int grid = static_cast<int>(cli.get_int("grid"));
  const int sweeps = static_cast<int>(cli.get_int("sweeps"));

  // Input sweep: (dt, rho, lhs0, rhs0) samples across a physically plausible
  // range; the reference result is the nvcc-sim -O0 run (the paper's
  // baseline row).
  support::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  std::vector<vgpu::KernelArgs> sweep;
  for (int i = 0; i < sweeps; ++i) {
    vgpu::KernelArgs args;
    args.fp = {0.0, 0.0, rng.uniform(1e-4, 0.3), rng.uniform(0.1, 50.0),
               0.0, rng.uniform(-1.0, 1.0)};
    args.ints = {0, grid, 0, 0, 0, 0};
    sweep.push_back(std::move(args));
  }

  const Config configs[] = {
      {opt::Toolchain::Nvcc, opt::OptLevel::O0},
      {opt::Toolchain::Nvcc, opt::OptLevel::O3_FastMath},
      {opt::Toolchain::Hipcc, opt::OptLevel::O0},
      {opt::Toolchain::Hipcc, opt::OptLevel::O3_FastMath},
  };

  // Reference: nvcc-sim -O0.
  const auto ref_exe =
      opt::compile(kernel, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false});
  std::vector<double> reference;
  for (const auto& args : sweep)
    reference.push_back(vgpu::run_kernel(ref_exe, args).value);

  support::Table table("TABLE I — INCONSISTENCIES IN BT.S (mini-ADI reproduction)");
  table.set_header({"Compiler", "Options", "Runtime (Mcycles)", "Max Rel Error"});
  for (const auto& cfg : configs) {
    const auto exe = opt::compile(kernel, {cfg.toolchain, cfg.level, false});
    std::uint64_t cycles = 0;
    double max_err = 0.0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto run = vgpu::run_kernel(exe, sweep[i]);
      cycles += run.cycle_count;
      if (reference[i] != 0.0 && gpudiff::fp::is_finite_bits(run.value)) {
        const double err = std::abs((run.value - reference[i]) / reference[i]);
        if (err > max_err) max_err = err;
      }
    }
    const std::string opts = cfg.level == opt::OptLevel::O3_FastMath
                                 ? (cfg.toolchain == opt::Toolchain::Nvcc
                                        ? "-O3 -use_fast_math"
                                        : "-O3 -ffast-math")
                                 : "-O0";
    char runtime[32], err[32];
    std::snprintf(runtime, sizeof runtime, "%.3f",
                  static_cast<double>(cycles) / 1e6);
    std::snprintf(err, sizeof err, "%.5E", max_err);
    table.add_row({opt::to_string(cfg.toolchain), opts, runtime, err});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper shape: fast-math roughly halves runtime on both toolchains and\n"
      "grows the error; the clang/hipcc fast-math error is the largest.\n"
      "(Errors are measured against the nvcc -O0 run, as in Table I.)\n");
  return 0;
}
