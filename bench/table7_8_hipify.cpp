// Regenerates paper Tables VII and VIII: HIPIFY-converted FP64 tests
// (the hipcc side compiles through the CUDA-compat math binding).

#include <cstdio>

#include "bench_common.hpp"
#include "diff/report.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("table7_8_hipify",
                         "Regenerate paper Tables VII & VIII (HIPIFY campaign)");
  bench_common::add_campaign_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto cfg = bench_common::make_config(cli, ir::Precision::FP64, true);
  const auto native_cfg = bench_common::make_config(cli, ir::Precision::FP64, false);
  std::printf("running HIPIFY-converted FP64 campaign (%d programs)...\n\n",
              cfg.num_programs);
  const auto results = diff::run_campaign(cfg);

  std::printf("%s\n", diff::render_per_level(
                          results,
                          "TABLE VII — DISCREPANCIES PER OPTIMIZATION OPTION "
                          "FOR HIPIFY CONVERTED FP64").c_str());
  std::printf("%s\n", diff::render_adjacency(
                          results,
                          "TABLE VIII — ADJACENCY MATRICES FOR DIFFERENT "
                          "OPTIMIZATION LEVELS FOR HIPIFY CONVERTED FP64").c_str());

  // The paper's comparison point: conversion adds discrepancies over the
  // natively generated HIP tests (2,716 vs 2,426 at full scale).
  const auto native = diff::run_campaign(native_cfg);
  std::printf(
      "HIPIFY-converted total: %llu   native-HIP total: %llu   (paper: 2,716 vs 2,426)\n",
      static_cast<unsigned long long>(results.discrepancies_total()),
      static_cast<unsigned long long>(native.discrepancies_total()));
  return 0;
}
