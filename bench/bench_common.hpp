#pragma once
// Shared CLI plumbing for the table-regeneration binaries.
//
// Defaults are scaled so every binary finishes in well under a minute on a
// laptop; --paper-scale selects the paper's full test counts (3,540 FP64 /
// 2,840 FP32 programs, 5 optimization levels, ~650k runs total).

#include <cstdio>

#include "diff/campaign.hpp"
#include "support/cli.hpp"

namespace bench_common {

inline void add_campaign_options(gpudiff::support::CliParser& cli) {
  cli.add_int("programs", 'p', "number of random programs (0 = per-precision default)", 0);
  cli.add_int("inputs", 'i', "inputs per program", 7);
  cli.add_int("seed", 's', "campaign seed", 42);
  cli.add_int("threads", 't', "worker threads (0 = hardware)", 0);
  cli.add_flag("paper-scale", "use the paper's full program counts");
}

inline gpudiff::diff::CampaignConfig make_config(
    const gpudiff::support::CliParser& cli, gpudiff::ir::Precision precision,
    bool hipify) {
  gpudiff::diff::CampaignConfig cfg;
  cfg.gen.precision = precision;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.inputs_per_program = static_cast<int>(cli.get_int("inputs"));
  cfg.hipify_converted = hipify;
  cfg.threads = static_cast<unsigned>(cli.get_int("threads"));
  const bool fp32 = precision == gpudiff::ir::Precision::FP32;
  int programs = static_cast<int>(cli.get_int("programs"));
  if (cli.get_flag("paper-scale")) programs = fp32 ? 2840 : 3540;
  if (programs <= 0) programs = fp32 ? 568 : 708;  // paper counts / 5
  cfg.num_programs = programs;
  return cfg;
}

}  // namespace bench_common
