// Ablation bench (DESIGN.md §5): which program construct drives which
// discrepancy class?  Each row disables one grammar feature and reruns the
// FP64 campaign — math-library calls carry the O0 baseline, `if` guards
// carry the O1+ NaN classes (if-conversion), loops carry the reciprocal-
// division fast-math delta.  A self-comparison sanity row (nvcc vs nvcc)
// closes the table at zero.

#include <cstdio>

#include "bench_common.hpp"
#include "diff/report.hpp"
#include "support/table.hpp"

namespace {

using namespace gpudiff;

struct Row {
  const char* label;
  diff::CampaignResults results;
};

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli("ablation_grammar",
                         "Ablate grammar features to attribute discrepancy classes");
  bench_common::add_campaign_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto base_cfg = bench_common::make_config(cli, ir::Precision::FP64, false);
  std::printf("FP64 campaign, %d programs x %d inputs per variant...\n\n",
              base_cfg.num_programs, base_cfg.inputs_per_program);

  std::vector<Row> rows;
  rows.push_back({"baseline (full grammar)", diff::run_campaign(base_cfg)});

  auto no_calls = base_cfg;
  no_calls.gen.allow_calls = false;
  rows.push_back({"no math calls", diff::run_campaign(no_calls)});

  auto no_ifs = base_cfg;
  no_ifs.gen.allow_ifs = false;
  rows.push_back({"no if conditions", diff::run_campaign(no_ifs)});

  auto no_loops = base_cfg;
  no_loops.gen.allow_loops = false;
  rows.push_back({"no loops", diff::run_campaign(no_loops)});

  support::Table t("Grammar ablation — FP64 discrepancies per variant");
  t.set_header({"Variant", "O0", "O1", "O3_FM", "Total", "NaN classes", "Num, Num"});
  for (const auto& row : rows) {
    const auto& r = row.results;
    std::uint64_t nan_classes = 0, num_num = 0;
    for (const auto& s : r.per_level) {
      for (const auto& pair : s.pairs) {
        nan_classes +=
            pair.class_counts[0] + pair.class_counts[1] + pair.class_counts[2];
        num_num += pair.class_counts[6];
      }
    }
    t.add_row({row.label,
               std::to_string(r.stats_for(opt::OptLevel::O0).discrepancy_total()),
               std::to_string(r.stats_for(opt::OptLevel::O1).discrepancy_total()),
               std::to_string(
                   r.stats_for(opt::OptLevel::O3_FastMath).discrepancy_total()),
               std::to_string(r.discrepancies_total()),
               std::to_string(nan_classes), std::to_string(num_num)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading: removing math calls collapses the O0 baseline (library\n"
      "implementations are root cause #1); removing ifs deletes the O1 jump\n"
      "(if-conversion, Case Study 3); removing loops trims the fast-math\n"
      "delta (reciprocal division rewrites loop-body divisions).\n");
  return 0;
}
