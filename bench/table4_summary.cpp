// Regenerates paper Table IV: summary of experimental results across the
// FP64, HIPIFY-converted FP64, and FP32 campaigns.

#include <cstdio>

#include "bench_common.hpp"
#include "diff/report.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("table4_summary",
                         "Regenerate paper Table IV (campaign summary)");
  bench_common::add_campaign_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto fp64_cfg = bench_common::make_config(cli, ir::Precision::FP64, false);
  const auto hip_cfg = bench_common::make_config(cli, ir::Precision::FP64, true);
  const auto fp32_cfg = bench_common::make_config(cli, ir::Precision::FP32, false);

  std::printf("running FP64 campaign (%d programs x %d inputs x 5 levels)...\n",
              fp64_cfg.num_programs, fp64_cfg.inputs_per_program);
  const auto fp64 = diff::run_campaign(fp64_cfg);
  std::printf("running HIPIFY-converted FP64 campaign...\n");
  const auto hip = diff::run_campaign(hip_cfg);
  std::printf("running FP32 campaign (%d programs)...\n", fp32_cfg.num_programs);
  const auto fp32 = diff::run_campaign(fp32_cfg);

  std::printf("\n%s\n", diff::render_summary(fp64, hip, fp32).c_str());
  std::printf(
      "Paper (Table IV, full scale): FP64 0.98%%, HIPIFY FP64 1.10%%, FP32 9.00%%\n"
      "Shape checks: HIPIFY >= FP64 (%s), FP32 total >> FP64 total (%s)\n",
      hip.discrepancies_total() >= fp64.discrepancies_total() ? "yes" : "NO",
      fp32.discrepancy_percent() > fp64.discrepancy_percent() ? "yes" : "NO");
  return 0;
}
