// google-benchmark harness for the framework itself: generation, virtual
// compilation, kernel execution (bytecode VM and tree-walk oracle), the
// campaign driver, and the vendor math libraries (including the
// from-scratch Payne-Hanek reduction and both fmod algorithms).
//
// Run from a Release build and record a JSON trajectory point:
//   cmake --preset release && cmake --build --preset release --target bench
//   ./build-release/bench/perf_framework \
//       --benchmark_out=BENCH_$(git rev-parse --short HEAD).json \
//       --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <filesystem>
#include <thread>

#include "campaign/checkpoint.hpp"
#include "campaign/coordinator.hpp"
#include "campaign/merge.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/shard.hpp"
#include "campaign/transport.hpp"
#include "diff/campaign.hpp"
#include "diff/runner.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "opt/pipeline.hpp"
#include "opt/platform.hpp"
#include "reduce/reduce.hpp"
#include "store/store.hpp"
#include "support/cpu.hpp"
#include "support/json.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"
#include "vmath/core/kernels.hpp"
#include "vmath/mathlib.hpp"

namespace {

using namespace gpudiff;

void BM_GenerateProgram(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.generate(i++ % 4096));
  }
}
BENCHMARK(BM_GenerateProgram);

void BM_CompileO3(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  const ir::Program p = g.generate(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::compile(p, {opt::Toolchain::Hipcc, opt::OptLevel::O3, false}));
  }
}
BENCHMARK(BM_CompileO3);

void BM_RunKernel(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(7);
  const auto exe = opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O2, false});
  const auto args = ig.generate(p, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vgpu::run_kernel(exe, args));
  }
}
BENCHMARK(BM_RunKernel);

void BM_RunKernelBytecode(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(7);
  const auto exe = opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O2, false});
  const auto args = ig.generate(p, 7, 0);
  vgpu::ExecContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exe.bytecode().run(args, ctx));
  }
}
BENCHMARK(BM_RunKernelBytecode);

void BM_RunKernelTreeWalk(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(7);
  const auto exe = opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O2, false});
  const auto args = ig.generate(p, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vgpu::run_kernel_tree(exe, args));
  }
}
BENCHMARK(BM_RunKernelTreeWalk);

void BM_CompileBytecode(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  const ir::Program p = g.generate(7);
  const auto exe = opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O2, false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(vgpu::compile_bytecode(exe.program, exe.env, exe.mathlib));
  }
}
BENCHMARK(BM_CompileBytecode);

/// Generation + full per-level compilation (5 levels x 2 toolchains), the
/// per-program cost a campaign pays before any input runs.  The arena IR
/// is what this measures: program copies are flat pool copies and passes
/// allocate into the pool instead of cloning subtrees.
void BM_GenerateAndCompile(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const ir::Program p = g.generate(i++ % 4096);
    for (auto level : opt::kAllOptLevels) {
      benchmark::DoNotOptimize(diff::compile_pair(p, level, false));
    }
  }
}
BENCHMARK(BM_GenerateAndCompile)->Unit(benchmark::kMicrosecond);

/// Batched input sweep: all of a program's inputs through one VM
/// invocation loop per platform (diff::compare_batch), vs the per-input
/// compare_run loop it replaces in the campaign driver.
void BM_BatchedSweep(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(11);
  const auto pair = diff::compile_pair(p, opt::OptLevel::O2);
  std::vector<vgpu::KernelArgs> inputs;
  for (int ii = 0; ii < 32; ++ii) inputs.push_back(ig.generate(p, 11, ii));
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::compare_batch(pair, inputs));
  }
}
BENCHMARK(BM_BatchedSweep)->Unit(benchmark::kMicrosecond);

/// The same sweep over a generated program with a stored-to array
/// parameter: the shape the lazy array materialization targets (the
/// per-input 256-element broadcast is hoisted; the extent-wide fill only
/// happens if a store executes).  Program 2 of seed 42 carries a guarded
/// array store.
void BM_BatchedSweepStoredArray(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(2);
  const auto pair = diff::compile_pair(p, opt::OptLevel::O2);
  std::vector<vgpu::KernelArgs> inputs;
  for (int ii = 0; ii < 32; ++ii) inputs.push_back(ig.generate(p, 2, ii));
  diff::SweepContext sweep;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::compare_batch(pair, inputs, sweep));
  }
}
BENCHMARK(BM_BatchedSweepStoredArray)->Unit(benchmark::kMicrosecond);

/// Marginal cost of widening the platform set: the same 32-input sweep
/// against the first N registry platforms (N = 2 is the paper pair).  Per
/// comparison the runner executes one VM loop per platform, so wall time
/// should scale linearly in N — the per-platform marginal cost the
/// registry refactor promises to keep flat.
void BM_CompareNWay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& registry = opt::platform_registry();
  const std::vector<opt::PlatformSpec> specs(registry.begin(),
                                             registry.begin() + n);
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(11);
  const auto set = diff::compile_set(p, specs, opt::OptLevel::O2);
  std::vector<vgpu::KernelArgs> inputs;
  for (int ii = 0; ii < 32; ++ii) inputs.push_back(ig.generate(p, 11, ii));
  diff::SweepContext sweep;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::compare_batch(set, inputs, sweep));
  }
}
BENCHMARK(BM_CompareNWay)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMicrosecond);

/// Engine axis for the SIMD benchmarks: 0=off 1=scalar1 2=scalar 3=avx2.
support::SimdOverride bench_engine(std::int64_t arg) {
  switch (arg) {
    case 0: return support::SimdOverride::Off;
    case 1: return support::SimdOverride::Scalar1;
    case 2: return support::SimdOverride::Scalar;
    default: return support::SimdOverride::Avx2;
  }
}

/// Pin the lane engine for one benchmark run; restores on destruction.
/// Returns false (and skips the benchmark) when the engine cannot run on
/// this host/build, so the JSON trajectory stays comparable across hosts.
struct BenchEngine {
  explicit BenchEngine(benchmark::State& state)
      : saved(support::simd_override()) {
    const support::SimdOverride mode = bench_engine(state.range(0));
    support::set_simd_override(mode);
    try {
      (void)vgpu::simd_engine();
      state.SetLabel(support::to_string(mode));
      ok = true;
    } catch (const std::exception&) {
      state.SkipWithError("engine unavailable on this host");
    }
  }
  ~BenchEngine() { support::set_simd_override(saved); }
  const support::SimdOverride saved;
  bool ok = false;
};

/// Raw batched VM throughput per lane engine: 32 inputs through
/// run_kernel_batch on one compiled platform, no diff layer — the
/// speedup here is the lane engine itself.
void BM_RunBatchSimd(benchmark::State& state) {
  BenchEngine engine(state);
  if (!engine.ok) return;
  // Both precisions, like a campaign sweep: fp64 groups are 4 lanes wide
  // and fp32 groups 8, so the pair prices the engine at both widths.
  struct Leg {
    opt::Executable exe;
    std::vector<vgpu::KernelArgs> inputs;
    std::vector<vgpu::RunResult> out;
  };
  std::vector<Leg> legs;
  for (const auto prec : {ir::Precision::FP64, ir::Precision::FP32}) {
    gen::GenConfig cfg;
    cfg.precision = prec;
    gen::Generator g(cfg, 42);
    gen::InputGenerator ig(42);
    const ir::Program p = g.generate(11);
    Leg leg{opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O2, false}),
            {}, {}};
    for (int ii = 0; ii < 32; ++ii) leg.inputs.push_back(ig.generate(p, 11, ii));
    leg.out.resize(leg.inputs.size());
    legs.push_back(std::move(leg));
  }
  for (auto _ : state) {
    for (Leg& leg : legs) {
      vgpu::run_kernel_batch(leg.exe, leg.inputs, leg.out.data());
      benchmark::DoNotOptimize(leg.out.data());
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_RunBatchSimd)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

/// BM_BatchedSweep with the engine pinned per run: the campaign-shaped
/// sweep (compare_batch, both pair platforms) under each lane engine.
/// Identical workload to BM_BatchedSweep, so off-vs-avx2 here is the
/// end-to-end campaign speedup of the SIMD PR.
void BM_BatchedSweepSimd(benchmark::State& state) {
  BenchEngine engine(state);
  if (!engine.ok) return;
  // Both precisions through the pair sweep — the campaign runs fp64 and
  // fp32 programs alike, so the off-vs-avx2 ratio here is the end-to-end
  // speedup a campaign sees on lane-friendly programs.
  struct Leg {
    diff::CompiledSet pair;
    std::vector<vgpu::KernelArgs> inputs;
  };
  std::vector<Leg> legs;
  for (const auto prec : {ir::Precision::FP64, ir::Precision::FP32}) {
    gen::GenConfig cfg;
    cfg.precision = prec;
    gen::Generator g(cfg, 42);
    gen::InputGenerator ig(42);
    const ir::Program p = g.generate(11);
    Leg leg{diff::compile_pair(p, opt::OptLevel::O2), {}};
    for (int ii = 0; ii < 32; ++ii) leg.inputs.push_back(ig.generate(p, 11, ii));
    legs.push_back(std::move(leg));
  }
  diff::SweepContext sweep;
  for (auto _ : state) {
    for (Leg& leg : legs)
      benchmark::DoNotOptimize(diff::compare_batch(leg.pair, leg.inputs, sweep));
  }
}
BENCHMARK(BM_BatchedSweepSimd)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_UnbatchedSweep(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(11);
  const auto pair = diff::compile_pair(p, opt::OptLevel::O2);
  std::vector<vgpu::KernelArgs> inputs;
  for (int ii = 0; ii < 32; ++ii) inputs.push_back(ig.generate(p, 11, ii));
  for (auto _ : state) {
    for (const auto& args : inputs)
      benchmark::DoNotOptimize(diff::compare_run(pair, args));
  }
}
BENCHMARK(BM_UnbatchedSweep)->Unit(benchmark::kMicrosecond);

/// End-to-end campaign shape: programs x inputs x all 5 levels, single
/// thread (deterministic work, no scheduler noise in the measurement).
void BM_CampaignSmall(benchmark::State& state) {
  diff::CampaignConfig cfg;
  cfg.num_programs = 16;
  cfg.inputs_per_program = 4;
  cfg.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::run_campaign(cfg));
  }
}
BENCHMARK(BM_CampaignSmall)->Unit(benchmark::kMillisecond);

/// The same campaign as BM_CampaignSmall carved into N shards, each run on
/// its own std::thread (single-threaded internally — the scale-out shape
/// where a shard is one machine), then merged.  Compares against
/// BM_CampaignSmall to price the orchestration layer and show the
/// shard-level speedup.
void BM_CampaignSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  diff::CampaignConfig cfg;
  cfg.num_programs = 16;
  cfg.inputs_per_program = 4;
  cfg.threads = 1;
  for (auto _ : state) {
    std::vector<campaign::ShardProgress> parts(static_cast<std::size_t>(shards));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      workers.emplace_back([&, i] {
        campaign::ShardRunOptions options;
        options.shard = {i, shards};
        parts[static_cast<std::size_t>(i)] = campaign::run_shard(cfg, options);
      });
    }
    for (auto& w : workers) w.join();
    benchmark::DoNotOptimize(campaign::merge_shards(std::move(parts)));
  }
}
BENCHMARK(BM_CampaignSharded)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Claim-path cost of the work-stealing scheduler: one
/// claim + heartbeat + release cycle against the shared lease directory,
/// no program execution.  This is the filesystem-protocol overhead a
/// worker pays per lease on top of run_campaign_range, and it bounds how
/// fine --lease-size can go before coordination dominates.
void BM_SchedulerOverhead(benchmark::State& state) {
  const auto dir =
      std::filesystem::temp_directory_path() / "gpudiff_bm_scheduler";
  std::filesystem::remove_all(dir);
  diff::CampaignConfig cfg;
  cfg.num_programs = 64;
  campaign::LeaseBoard board(dir.string(), "bench");
  board.publish_or_verify_manifest(campaign::config_to_json(cfg), 1,
                                   campaign::lease_count(64, 1));
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(board.try_claim(k));
    board.heartbeat(k);
    board.release(k);
    k = (k + 1) % 64;
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SchedulerOverhead)->Unit(benchmark::kMicrosecond);

/// The same claim + heartbeat + release cycle over the TCP coordinator on
/// localhost (in-process server, real sockets, line-framed JSON) — the
/// network transport's per-lease coordination price next to
/// BM_SchedulerOverhead's ~21µs filesystem number.  Three request
/// round-trips per iteration; the dominant term is not the wire but the
/// coordinator's durability: every claim transition is persisted with an
/// fsync'd write-then-rename, so wall time is disk-bound (hundreds of
/// microseconds) while CPU stays in the tens of microseconds.  Heartbeats
/// are memory-only by design and cost just the round-trip.
void BM_LeaseCycleTcp(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "gpudiff_bm_coord";
  const auto journal =
      std::filesystem::temp_directory_path() / "gpudiff_bm_coord_journal";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(journal);
  diff::CampaignConfig cfg;
  cfg.num_programs = 64;
  campaign::CoordinatorOptions copts;
  copts.dir = dir.string();
  campaign::Coordinator coordinator(copts);
  coordinator.start();
  campaign::TcpTransportOptions topts;
  topts.host = "127.0.0.1";
  topts.port = coordinator.port();
  topts.worker_id = "bench";
  topts.journal_dir = journal.string();
  campaign::TcpLeaseTransport transport(std::move(topts));
  transport.publish_or_verify_manifest(campaign::config_to_json(cfg), 1,
                                       campaign::lease_count(64, 1));
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transport.try_claim(k));
    transport.heartbeat(k);
    transport.release(k);
    k = (k + 1) % 64;
  }
  coordinator.stop();
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(journal);
}
BENCHMARK(BM_LeaseCycleTcp)->Unit(benchmark::kMicrosecond);

void BM_FullComparison(benchmark::State& state) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  const ir::Program p = g.generate(11);
  const auto pair = diff::compile_pair(p, opt::OptLevel::O3_FastMath);
  const auto args = ig.generate(p, 11, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::compare_run(pair, args));
  }
}
BENCHMARK(BM_FullComparison);

void BM_SinMediumRange(benchmark::State& state) {
  double x = 12345.678;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmath::core::sin64(x, vmath::core::ReduceStyle::CodyWaite3));
    x += 1.0;
  }
}
BENCHMARK(BM_SinMediumRange);

void BM_SinPayneHanek(benchmark::State& state) {
  double x = 1.0e300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmath::core::sin64(x, vmath::core::ReduceStyle::CodyWaite3));
    x *= 1.0000001;
    if (x > 1.6e308) x = 1.0e300;
  }
}
BENCHMARK(BM_SinPayneHanek);

void BM_FmodExact(benchmark::State& state) {
  double x = 1.59e289;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmath::core::fmod_exact(x, 1.5793e-307));
    x *= 1.0000001;
  }
}
BENCHMARK(BM_FmodExact);

void BM_FmodNvChunked(benchmark::State& state) {
  const auto& lib = vmath::nv_libdevice();
  double x = 1.59e289;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.call64(ir::MathFn::Fmod, x, 1.5793e-307));
    x *= 1.0000001;
  }
}
BENCHMARK(BM_FmodNvChunked);

void BM_Exp64(benchmark::State& state) {
  double x = -700.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmath::core::exp64(x));
    x += 0.001;
    if (x > 700.0) x = -700.0;
  }
}
BENCHMARK(BM_Exp64);

void BM_FastSinf(benchmark::State& state) {
  const auto& lib = vmath::nv_fast();
  float x = 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lib.call32(ir::MathFn::Sin, x));
    x += 0.01f;
  }
}
BENCHMARK(BM_FastSinf);

/// A small v2 campaign report (embedded config + fingerprint) written to
/// disk once, shared by the store benchmarks below.
const std::string& store_bench_report() {
  static const std::string path = [] {
    diff::CampaignConfig cfg;
    cfg.num_programs = 16;
    cfg.inputs_per_program = 4;
    cfg.threads = 1;
    const support::Json echo = campaign::config_to_json(cfg);
    const support::Json report =
        campaign::results_to_json(diff::run_campaign(cfg), &echo);
    const std::string p =
        (std::filesystem::temp_directory_path() / "gpudiff_bench_report.json")
            .string();
    support::write_file(p, report.dump(1) + "\n");
    return p;
  }();
  return path;
}

/// Ingest cost per commit: one campaign report folded into a population
/// document plus its atomic write (the CI trend-gate hot path).
void BM_StoreIngest(benchmark::State& state) {
  const std::string db =
      (std::filesystem::temp_directory_path() / "gpudiff_bench_store_ingest")
          .string();
  std::filesystem::remove_all(db);
  const std::string& report = store_bench_report();
  long long commit = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store::ingest(db, "c" + std::to_string(commit++), {report}));
  }
  std::filesystem::remove_all(db);
}
BENCHMARK(BM_StoreIngest)->Unit(benchmark::kMicrosecond);

/// Query cost over a loaded index: the three query shapes gpudiff-serve
/// answers (summary, trend, cross-commit diff) over 8 ingested commits.
void BM_StoreQuery(benchmark::State& state) {
  const std::string db =
      (std::filesystem::temp_directory_path() / "gpudiff_bench_store_query")
          .string();
  std::filesystem::remove_all(db);
  const std::string& report = store_bench_report();
  for (int i = 0; i < 8; ++i)
    store::ingest(db, "c" + std::to_string(i), {report});
  const store::StoreIndex index = store::load_store(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::summary(index));
    benchmark::DoNotOptimize(store::trend(index));
    benchmark::DoNotOptimize(store::diff_commits(index, "c0", "c7"));
  }
  std::filesystem::remove_all(db);
}
BENCHMARK(BM_StoreQuery)->Unit(benchmark::kMicrosecond);

/// One full delta-debugging reduction of a discrepant record — ddmin,
/// flatten/constfold/hoist/polish to fixpoint, sensitivity probe — the
/// per-record cost of --reduce-exemplars and the reduce-drill CI job.
void BM_ReduceRecord(benchmark::State& state) {
  diff::CampaignConfig cfg;
  cfg.seed = 1234;
  cfg.num_programs = 60;
  cfg.inputs_per_program = 3;
  cfg.platforms = opt::parse_platform_list("nvcc,hipcc");
  reduce::RecordRef ref;
  if (!reduce::parse_record_key("8:2:O3", &ref)) {
    state.SkipWithError("bad record key");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce::reduce_record(cfg, ref));
  }
}
BENCHMARK(BM_ReduceRecord)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
