// Regenerates the paper's Figures 4, 5 and 6 (the three case studies):
// prints each kernel, the failure-inducing input, the per-compiler outputs
// at the relevant optimization levels, and the isolated root-cause
// expression — ending with the pseudo-assembly evidence the paper's
// analysis relied on.

#include <cstdio>

#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "fp/hexfloat.hpp"
#include "ir/builder.hpp"
#include "support/cli.hpp"
#include "vgpu/pseudo_asm.hpp"
#include "vmath/mathlib.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;

void show(const char* title, const Program& p, const vgpu::KernelArgs& args,
          std::initializer_list<opt::OptLevel> levels) {
  std::printf("==== %s ====\n\n%s\n", title, emit::emit_kernel(p).c_str());
  std::printf("Input: %s\n\nOutput:\n", args.to_varity_string(p).c_str());
  for (auto level : levels) {
    const auto cmp = diff::run_differential(p, args, level);
    std::printf("  nvcc  -%-6s: %s\n  hipcc -%-6s: %s%s\n",
                opt::to_string(level).c_str(), cmp.platforms[0].printed().c_str(),
                opt::to_string(level).c_str(), cmp.platforms[1].printed().c_str(),
                cmp.discrepant()
                    ? ("   <-- " + to_string(cmp.cls) + " discrepancy").c_str()
                    : "");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli("case_studies",
                         "Regenerate paper Figures 4, 5, 6 (case studies)");
  cli.add_flag("asm", "also dump the pseudo-assembly evidence");
  if (!cli.parse(argc, argv)) return 1;

  // --- Case Study 1 (Fig. 4): fmod at an extreme exponent gap -------------
  {
    ProgramBuilder b(Precision::FP64);
    Arena& A = b.arena();
    const int var_8 = b.add_scalar_param();
    const int var_9 = b.add_scalar_param();
    b.assign_comp(
        AssignOp::Sub,
        make_call(A, MathFn::Fmod,
                  make_bin(A, BinOp::Mul, make_literal(A, -1.7538e305, "-1.7538E305"),
                           make_bin(A, BinOp::Div, make_param(A, var_8),
                                    make_bin(A, BinOp::Sub,
                                             make_bin(A, BinOp::Div,
                                                      make_literal(A, 0.0, "+0.0"),
                                                      make_param(A, var_9)),
                                             make_literal(A, 1.3065e-306,
                                                          "+1.3065E-306")))),
                  make_literal(A, 1.5793e-307, "+1.5793E-307")));
    const Program p = b.build();
    vgpu::KernelArgs args;
    args.fp = {0.0, 1.1757e-322, 1.713e-319};
    args.ints = {0, 0, 0};
    show("CASE STUDY 1 (paper Fig. 4): fmod-driven real-value divergence", p,
         args, {opt::OptLevel::O0});

    const double x = -1.7538e305 * (1.1757e-322 / (0.0 / 1.713e-319 - 1.3065e-306));
    std::printf("Isolated expression: fmod(%s, +1.5793E-307)\n",
                fp::print_g17(x).c_str());
    std::printf("  nvcc  -O0: %s\n  hipcc -O0: %s   (paper: 1.442e-307 vs 7.192e-309)\n\n",
                fp::print_g17(vmath::nv_libdevice().call64(MathFn::Fmod, x,
                                                           1.5793e-307)).c_str(),
                fp::print_g17(vmath::amd_ocml().call64(MathFn::Fmod, x,
                                                       1.5793e-307)).c_str());
  }

  // --- Case Study 2 (Fig. 5): ceil of a tiny value ------------------------
  Program ceil_program = [] {
    ProgramBuilder b(Precision::FP64);
    Arena& A = b.arena();
    const int t = b.decl_temp(make_literal(A, 1.1147e-307, "+1.1147E-307"));
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Div, make_temp(A, t),
                           make_call(A, MathFn::Ceil,
                                     make_literal(A, 1.5955e-125, "+1.5955E-125"))));
    return b.build();
  }();
  {
    vgpu::KernelArgs args;
    args.fp = {1.2374e-306};
    args.ints = {0};
    show("CASE STUDY 2 (paper Fig. 5): ceil divergence -> Inf vs Number",
         ceil_program, args, {opt::OptLevel::O0});
    std::printf("Isolated expression: ceil(+1.5955E-125)\n");
    std::printf("  nvcc  -O0: %g\n  hipcc -O0: %g   (paper: 0 vs 1)\n\n",
                vmath::nv_libdevice().call64(MathFn::Ceil, 1.5955e-125),
                vmath::amd_ocml().call64(MathFn::Ceil, 1.5955e-125));
  }

  // --- Case Study 3 (Fig. 6): -inf vs -nan from O1 on ---------------------
  Program cs3 = [] {
    ProgramBuilder b(Precision::FP64);
    Arena& A = b.arena();
    const int var_1 = b.add_int_param();
    const int var_2 = b.add_scalar_param();
    const int var_5 = b.add_scalar_param();
    const int var_8 = b.add_scalar_param();
    const int t = b.decl_temp(make_bin(A, 
        BinOp::Sub, make_literal(A, -1.8007e-323, "-1.8007E-323"),
        make_call(A, MathFn::Cosh,
                  make_bin(A, BinOp::Div, make_param(A, var_2),
                           make_literal(A, -1.7569e192, "-1.7569E192")))));
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Add, make_temp(A, t),
                           make_call(A, MathFn::Fabs,
                                     make_literal(A, 1.5726e-307, "+1.5726E-307"))));
    b.begin_for(var_1);
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Div, make_literal(A, 1.9903e306, "+1.9903E306"),
                           make_param(A, var_5)));
    b.end_block();
    b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0),
                        make_literal(A, -1.4205e305, "-1.4205E305")));
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Mul, make_literal(A, 1.3803e305, "+1.3803E305"),
                           make_param(A, var_8)));
    b.end_block();
    return b.build();
  }();
  {
    vgpu::KernelArgs args;
    args.fp = {-1.5548e-320, 0.0, 1.9121e306, -1.8994e-311, 1.2915e306};
    args.ints = {0, 5, 0, 0, 0};
    show("CASE STUDY 3 (paper Fig. 6): consistent -inf at O0, -inf vs -nan at O1+",
         cs3, args, {opt::OptLevel::O0, opt::OptLevel::O1, opt::OptLevel::O3});
    std::printf(
        "Root cause: hipcc-sim's O1+ if-conversion rewrites the guarded add\n"
        "into comp += (double)cond * value; with the branch not taken and the\n"
        "value overflowing to +inf, 0 * inf produces the NaN.\n\n");
  }

  if (cli.get_flag("asm")) {
    std::printf("==== Pseudo-assembly evidence (Case Study 3 at O1) ====\n\n");
    for (auto t : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
      const auto exe = opt::compile(cs3, {t, opt::OptLevel::O1, false});
      std::printf("%s\n", vgpu::disassemble(exe).c_str());
    }
  }
  return 0;
}
