#pragma once
// Source emitters: render a test kernel as a complete, self-contained
// CUDA (.cu) or HIP (.hip) translation unit, matching the artifacts Varity
// writes to disk (paper §III-B: kernel + main() that reads inputs from
// argv, allocates/initializes device arrays, launches <<<1,1>>> and prints
// comp with %.17g).
//
// The emitted text is what the HIPIFY experiment translates; goldens in
// tests/ lock the exact shape.

#include <string>

#include "ir/program.hpp"

namespace gpudiff::emit {

/// Kernel function only (the paper's Fig. 2 view).
std::string emit_kernel(const ir::Program& program);

/// Full CUDA translation unit.
std::string emit_cuda(const ir::Program& program);

/// Full HIP translation unit (what the extended Varity generates natively).
std::string emit_hip(const ir::Program& program);

/// File extension Varity uses for each API ("cu" / "hip"); compiler matching
/// in the harness keys off this (paper §III-D "Compiler Matching").
inline const char* cuda_extension() { return "cu"; }
inline const char* hip_extension() { return "hip"; }

}  // namespace gpudiff::emit
