#include "support/rng.hpp"

namespace gpudiff::support {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

std::size_t Rng::weighted(const std::uint32_t* weights, std::size_t n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  if (total == 0) return 0;
  std::uint64_t pick = below(total);
  for (std::size_t i = 0; i < n; ++i) {
    if (pick < weights[i]) return i;
    pick -= weights[i];
  }
  return n - 1;
}

}  // namespace gpudiff::support
