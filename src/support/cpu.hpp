#pragma once
// Host CPU capability detection and the GPUDIFF_SIMD execution override.
//
// The bytecode VM's lane-parallel engine (vgpu/bytecode_simd*.cpp) has an
// AVX2 backend that must only be entered when the host actually supports
// it: AVX2 + FMA in cpuid, plus OS-managed YMM state (OSXSAVE/XGETBV).
// cpu_features() answers that once per process.
//
// GPUDIFF_SIMD selects the engine explicitly:
//   off     — the plain one-input-at-a-time interpreter loop
//   scalar  — the lane engine with the portable (no-intrinsics) backend,
//             natural widths (4 x double / 8 x float)
//   scalar1 — the lane engine at width 1 (the pure reference path)
//   avx2    — the AVX2 backend (fails fast when unusable)
// Unset means auto: avx2 when compiled in and usable, otherwise off.
// Every choice is bit-identical by contract; the override exists for
// differential testing and for pinning CI legs.

#include <cstdint>
#include <string>

namespace gpudiff::support {

struct CpuFeatures {
  bool avx2 = false;     ///< cpuid leaf 7 EBX bit 5
  bool fma = false;      ///< cpuid leaf 1 ECX bit 12
  bool os_ymm = false;   ///< OSXSAVE set and XCR0 enables XMM+YMM state

  /// The AVX2 lane backend needs all three (it uses FMA for the exactness
  /// probes and 256-bit state throughout).
  bool avx2_usable() const noexcept { return avx2 && fma && os_ymm; }

  std::string to_string() const;
};

/// Host features, probed once per process (always all-false off x86-64).
const CpuFeatures& cpu_features() noexcept;

/// Parsed GPUDIFF_SIMD value.  Auto when the variable is unset or empty.
enum class SimdOverride : std::uint8_t { Auto, Off, Scalar, Scalar1, Avx2 };

/// Read GPUDIFF_SIMD once (cached).  Throws std::invalid_argument on an
/// unrecognized value — a typo must not silently change the engine.
SimdOverride simd_override();

/// Replace the cached override (tests; process-wide).
void set_simd_override(SimdOverride mode) noexcept;

const char* to_string(SimdOverride mode) noexcept;

}  // namespace gpudiff::support
