#pragma once
// Tiny declarative command-line parser for the bench/example binaries.
//
//   CliParser cli("bench_table4", "Regenerates Table IV");
//   cli.add_int("programs", 'p', "number of random programs", 400);
//   cli.add_flag("paper-scale", "use the paper's full test counts");
//   if (!cli.parse(argc, argv)) return 1;   // prints error or --help
//   int n = cli.get_int("programs");

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gpudiff::support {

class CliParser {
 public:
  CliParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, char short_name, const std::string& help,
               std::int64_t default_value);
  void add_string(const std::string& name, char short_name, const std::string& help,
                  std::string default_value);
  void add_double(const std::string& name, char short_name, const std::string& help,
                  double default_value);

  /// Returns false if parsing failed or --help was requested (message printed).
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  double get_double(const std::string& name) const;

  std::string help() const;

 private:
  enum class Kind { Flag, Int, String, Double };
  struct Option {
    Kind kind;
    char short_name = 0;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    std::string string_value;
    double double_value = 0;
  };
  const Option* find(const std::string& name, Kind kind) const;
  Option* find_by_short(char c);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace gpudiff::support
