#include "support/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "support/rng.hpp"

namespace gpudiff::support {

double RetryPolicy::backoff_for(int attempt) const noexcept {
  if (attempt < 0) attempt = 0;
  const double initial = std::max(0.0, initial_backoff_seconds);
  const double cap = std::max(initial, max_backoff_seconds);
  const double growth = std::max(1.0, multiplier);
  // pow on small integer exponents is exact enough, but the cap must win
  // before the exponential overflows: grow iteratively and stop at the cap.
  double base = initial;
  for (int i = 0; i < attempt && base < cap; ++i) base *= growth;
  base = std::min(base, cap);
  const double jitter = std::clamp(jitter_fraction, 0.0, 1.0);
  if (jitter == 0.0 || base == 0.0) return base;
  // Deterministic per-(seed, attempt) uniform draw in [0, 1).
  SplitMix64 mix(jitter_seed ^ (0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(attempt) + 1)));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // 53-bit mantissa
  return base * (1.0 - jitter + 2.0 * jitter * u);
}

RetryPolicy RetryPolicy::seeded_for(const std::string& id) const {
  RetryPolicy seeded = *this;
  // FNV-1a over the id, mixed once more so short ids still decohere.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  seeded.jitter_seed = jitter_seed ^ SplitMix64(h).next();
  return seeded;
}

bool interruptible_sleep(double seconds,
                         const std::function<bool()>& cancelled) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(std::max(0.0, seconds));
  for (;;) {
    if (cancelled && cancelled()) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return true;
    const std::chrono::duration<double> remaining = deadline - now;
    std::this_thread::sleep_for(
        std::min(remaining, std::chrono::duration<double>(0.025)));
  }
}

}  // namespace gpudiff::support
