#pragma once
// Deterministic pseudo-random number generation for reproducible campaigns.
//
// gpudiff test campaigns must be a pure function of (seed, configuration):
// the between-platform protocol (paper Fig. 3) re-runs the *same* tests on a
// second system, so generation must be bit-reproducible across platforms and
// standard-library implementations.  std::mt19937 + std::uniform_* are not
// guaranteed to be portable across library versions, so we ship our own
// xoshiro256++ engine and distributions.

#include <cstdint>
#include <limits>

namespace gpudiff::support {

/// SplitMix64: used to expand a single 64-bit seed into engine state and to
/// derive independent child seeds (one per generated program).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna), public-domain reference algorithm.
/// Fast, high-quality, and fully specified — identical streams everywhere.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Derive an independent child generator; children with distinct salts are
  /// decorrelated from the parent and from each other.
  Rng split(std::uint64_t salt) noexcept {
    return Rng(next() ^ (0x9e3779b97f4a7c15ULL * (salt + 1)));
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Pick an index according to integer weights (sum must be > 0).
  std::size_t weighted(const std::uint32_t* weights, std::size_t n) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace gpudiff::support
