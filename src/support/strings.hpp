#pragma once
// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace gpudiff::support {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from, std::string_view to);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Indent every line of `text` by `spaces` spaces.
std::string indent(std::string_view text, int spaces);

/// Render `n` with thousands separators ("24,750") as the paper's tables do.
std::string with_commas(long long n);

/// FNV-1a 64-bit digest of `s` as 16 lowercase hex digits.  Stable across
/// platforms and releases by construction — the results store keys records
/// by digests of serialized configuration fingerprints, and a key must
/// never change spelling between binaries.
std::string fnv1a64_hex(std::string_view s);

}  // namespace gpudiff::support
