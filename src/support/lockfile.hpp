#pragma once
// Lock/lease-file primitives for multi-process coordination over a shared
// directory (the campaign work-stealing scheduler, campaign/scheduler.hpp).
//
// Everything here reduces to POSIX operations that are atomic on a local
// filesystem (and on NFSv3+ for the operations used): link(2) either
// creates the target or fails with EEXIST, rename(2) either moves the
// source or fails because someone else moved it first.  There is no
// in-process locking — callers in different processes on different
// machines coordinate purely through these files.
//
// Staleness is measured as "local now minus file mtime".  On a shared
// filesystem the mtime is stamped by whichever host wrote the file, so the
// staleness clock assumes the fleet's clocks agree to within a fraction of
// the configured stale-after window (tens of seconds in practice — the
// usual NTP situation).  A skewed clock can only cause extra duplicate
// work, never wrong results: the scheduler's lease protocol is safe under
// at-least-once execution.

#include <string>
#include <string_view>

namespace gpudiff::support {

/// Atomically publish `contents` at `path` if and only if nothing exists
/// there yet.  The contents are written to `path + temp_suffix` first and
/// hard-linked into place — link(2) fails with EEXIST instead of
/// overwriting (unlike rename), so exactly one of N racing publishers
/// wins, and readers never observe a partially-written file.  Returns true
/// if this call created the file, false if one already existed.  Throws
/// std::runtime_error on any other I/O failure.
///
/// `temp_suffix` must be unique per publisher (e.g. "." + worker id) so
/// racing publishers do not clobber each other's temp files.  If the temp
/// file disappears between write and link — a stale-temp reaper presumed
/// this publisher dead — the call also returns false: the publish did not
/// happen, which callers already handle as losing the race.
bool publish_file_exclusive(const std::string& path, std::string_view contents,
                            const std::string& temp_suffix);

/// Bump the file's mtime to now — the heartbeat.  Returns false if the
/// file no longer exists (e.g. the lease was stolen and released).
bool touch_file(const std::string& path);

/// Seconds since the file's last write, or a negative value if the file
/// does not exist.  This is the lease staleness clock.  A file whose
/// mtime is in the future (another host's skewed clock over NFS, a
/// locally stepped clock) reads as age 0.0 — maximally fresh — never as a
/// negative age: negative is reserved for "no file", and a caller that
/// confused skew with absence would steal a live worker's claim.
double file_age_seconds(const std::string& path);

/// Set the file's mtime `seconds` into the past (test/fault-injection
/// helper for aging a lease without waiting).  Returns false if missing.
bool age_file(const std::string& path, double seconds);

/// Remove a file; returns true if this call removed it, false if it was
/// already gone.  Throws only on real I/O errors (e.g. EACCES).
bool remove_file(const std::string& path);

/// rename(2) wrapper: returns true on success, false if `from` no longer
/// exists (another process renamed or removed it first — the losing side
/// of a steal race).  Throws on any other failure.
bool rename_file(const std::string& from, const std::string& to);

}  // namespace gpudiff::support
