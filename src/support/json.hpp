#pragma once
// Minimal JSON document model, parser and writer.
//
// Used for the campaign metadata files exchanged between systems in the
// between-platform protocol (paper Fig. 3).  Numbers round-trip exactly:
// doubles are emitted with enough digits (%.17g) that parse(write(x)) == x
// bit-for-bit for all finite values.  Non-finite floating-point data is the
// metadata layer's concern (it stores raw IEEE bits as strings).

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gpudiff::support {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys sorted -> deterministic serialization for golden tests.
using JsonObject = std::map<std::string, Json>;

/// Error thrown by the parser on malformed input.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// A JSON value: null, bool, number (double or int64), string, array, object.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() noexcept : type_(Type::Null) {}
  Json(std::nullptr_t) noexcept : type_(Type::Null) {}
  Json(bool b) noexcept : type_(Type::Bool), bool_(b) {}
  Json(int v) noexcept : type_(Type::Int), int_(v) {}
  Json(long v) noexcept : type_(Type::Int), int_(v) {}
  Json(long long v) noexcept : type_(Type::Int), int_(v) {}
  Json(unsigned v) noexcept : type_(Type::Int), int_(v) {}
  Json(unsigned long v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
  Json(double v) noexcept : type_(Type::Double), double_(v) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(JsonArray a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::Object), obj_(std::move(o)) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::Null; }
  bool is_bool() const noexcept { return type_ == Type::Bool; }
  bool is_number() const noexcept { return type_ == Type::Int || type_ == Type::Double; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_array() const noexcept { return type_ == Type::Array; }
  bool is_object() const noexcept { return type_ == Type::Object; }

  bool as_bool() const { expect(Type::Bool); return bool_; }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { expect(Type::String); return str_; }
  const JsonArray& as_array() const { expect(Type::Array); return arr_; }
  JsonArray& as_array() { expect(Type::Array); return arr_; }
  const JsonObject& as_object() const { expect(Type::Object); return obj_; }
  JsonObject& as_object() { expect(Type::Object); return obj_; }

  /// Object access; inserts a null member if missing (like std::map).
  Json& operator[](const std::string& key) { expect(Type::Object); return obj_[key]; }
  /// Const object access; throws if absent.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const {
    return type_ == Type::Object && obj_.count(key) > 0;
  }
  /// Returns at(key) or `fallback` if the member is absent.
  const Json& get_or(const std::string& key, const Json& fallback) const;

  void push_back(Json v) { expect(Type::Array); arr_.push_back(std::move(v)); }
  std::size_t size() const;

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

  /// Serialize. `indent` < 0 means compact one-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (throws JsonParseError).
  static Json parse(std::string_view text);

 private:
  void expect(Type t) const {
    if (type_ != t) throw std::runtime_error("json: wrong type access");
  }
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Read an entire file into a string (throws on I/O failure).
std::string read_file(const std::string& path);
/// Write a string to a file atomically enough for our purposes.
void write_file(const std::string& path, std::string_view contents);
/// Crash-safe write: the contents land in `path + temp_suffix` first and
/// are renamed over `path` only after the write completes, so readers
/// never observe a torn file (the campaign checkpoint requirement — a
/// kill mid write leaves the previous checkpoint intact).  When several
/// processes may write the same path concurrently (the scheduler's
/// at-least-once duplicate publishes), each must pass its own unique
/// temp_suffix or the racing writers can tear each other's temp file.
void write_file_atomic(const std::string& path, std::string_view contents,
                       const std::string& temp_suffix = ".tmp");

}  // namespace gpudiff::support
