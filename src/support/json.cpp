#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace gpudiff::support {

std::int64_t Json::as_int() const {
  if (type_ == Type::Int) return int_;
  if (type_ == Type::Double) return static_cast<std::int64_t>(double_);
  throw std::runtime_error("json: not a number");
}

double Json::as_double() const {
  if (type_ == Type::Double) return double_;
  if (type_ == Type::Int) return static_cast<double>(int_);
  throw std::runtime_error("json: not a number");
}

const Json& Json::at(const std::string& key) const {
  expect(Type::Object);
  auto it = obj_.find(key);
  if (it == obj_.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

const Json& Json::get_or(const std::string& key, const Json& fallback) const {
  if (type_ == Type::Object) {
    auto it = obj_.find(key);
    if (it != obj_.end()) return it->second;
  }
  return fallback;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::Array: return arr_.size();
    case Type::Object: return obj_.size();
    case Type::String: return str_.size();
    default: return 0;
  }
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // Allow 1 == 1.0 comparisons between numeric types.
    if (is_number() && other.is_number()) return as_double() == other.as_double();
    return false;
  }
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Int: return int_ == other.int_;
    case Type::Double: return double_ == other.double_;
    case Type::String: return str_ == other.str_;
    case Type::Array: return arr_ == other.arr_;
    case Type::Object: return obj_ == other.obj_;
  }
  return false;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Int: out += std::to_string(int_); return;
    case Type::Double: {
      if (std::isnan(double_) || std::isinf(double_)) {
        // Strict JSON has no NaN/Inf; callers encode specials as bit strings.
        out += "null";
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      out += buf;
      // Keep floats distinguishable from ints on re-parse.
      if (std::string_view(buf).find_first_of(".eEnN") == std::string_view::npos)
        out += ".0";
      return;
    }
    case Type::String: append_escaped(out, str_); return;
    case Type::Array: {
      if (arr_.empty()) { out += "[]"; return; }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::Object: {
      if (obj_.empty()) { out += "{}"; return; }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent >= 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: straightforward recursive descent.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("json parse error: " + why, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw JsonParseError("json parse error: eof", pos_);
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) { ++pos_; return true; }
    return false;
  }

  void expect_char(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) { pos_ += w.size(); return true; }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': if (consume_word("true")) return Json(true); fail("bad literal");
      case 'f': if (consume_word("false")) return Json(false); fail("bad literal");
      case 'n': if (consume_word("null")) return Json(nullptr); fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect_char('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect_char(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      expect_char('}');
      break;
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect_char('[');
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect_char(']');
      break;
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect_char('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are not needed for our ASCII metadata).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape char");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
    const std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      return Json(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE) return Json(std::strtod(token.c_str(), nullptr));
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_file_atomic(const std::string& path, std::string_view contents,
                       const std::string& temp_suffix) {
  const std::string tmp = path + temp_suffix;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open file for writing: " + tmp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + tmp);
  }
#ifndef _WIN32
  // Flush the data before the rename so a power loss cannot persist the
  // rename ahead of the contents (which would leave a truncated file where
  // the previous good snapshot used to be).  Best-effort: a filesystem
  // that rejects the sync still gets process-kill atomicity.
  if (const int fd = ::open(tmp.c_str(), O_WRONLY); fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("rename failed: " + tmp + " -> " + path + ": " +
                             ec.message());
#ifndef _WIN32
  // Make the rename itself durable.
  const std::string dir = std::filesystem::path(path).parent_path().string();
  if (const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
      dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
}

}  // namespace gpudiff::support
