#pragma once
// Parallel execution of embarrassingly-parallel test campaigns.
//
// The paper runs 652,600 test instances; even our scaled campaigns execute
// tens of thousands of (compile, run, compare) triples.  parallel_for
// partitions the index space dynamically (atomic grab of fixed-size chunks)
// so irregular per-test cost (loop trip counts vary) balances well.

#include <cstddef>
#include <functional>

namespace gpudiff::support {

/// Number of worker threads used by default (hardware concurrency, >= 1).
unsigned default_thread_count() noexcept;

/// Run fn(i) for every i in [0, n) on `threads` threads (0 = default).
/// fn must be safe to call concurrently for distinct i.  Exceptions thrown
/// by fn are captured and the first one is rethrown on the calling thread.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0, std::size_t chunk = 16);

}  // namespace gpudiff::support
