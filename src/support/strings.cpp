#include "support/strings.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace gpudiff::support {

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string s, std::string_view from, std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  bool at_line_start = true;
  for (char c : text) {
    if (at_line_start && c != '\n') out += pad;
    out += c;
    at_line_start = (c == '\n');
  }
  return out;
}

std::string with_commas(long long n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string fnv1a64_hex(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace gpudiff::support
