#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace gpudiff::support {

unsigned default_thread_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads, std::size_t chunk) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  if (chunk == 0) chunk = 1;
  if (threads <= 1 || n <= chunk) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    while (true) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gpudiff::support
