#pragma once
// ASCII table rendering in the style of the paper's tables.
//
// Every bench binary regenerates one of the paper's tables; this renderer
// produces aligned, boxed output with optional title and column alignment.

#include <string>
#include <vector>

namespace gpudiff::support {

enum class Align { Left, Right, Center };

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Define the header row. Alignment applies to the whole column.
  void set_header(std::vector<std::string> header, std::vector<Align> align = {});

  void add_row(std::vector<std::string> row);
  /// A horizontal rule between body rows (e.g. before a Total row).
  void add_rule();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with unicode-free ASCII borders.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
};

}  // namespace gpudiff::support
