#pragma once
// Capped exponential backoff with deterministic jitter.
//
// Every retry loop on the coordinator path (TCP lease transport connects,
// request resends, worker reconnect waits) draws its delays from one
// RetryPolicy instead of hand-rolled sleep loops, so the retry behavior is
// testable: given the same policy the whole backoff schedule is a pure
// function of the attempt number, pinned by unit tests.
//
// The jitter is deterministic — a SplitMix64 hash of (seed, attempt)
// scales each delay into [1 - jitter_fraction, 1 + jitter_fraction) — so
// two runs of the same worker produce the same schedule (reproducible
// fault-injection tests), while distinct seeds (distinct workers) decohere
// and avoid thundering-herd reconnects against a restarted coordinator.

#include <cstdint>
#include <functional>
#include <string>

namespace gpudiff::support {

struct RetryPolicy {
  /// Attempts per operation before the caller gives up (a transport
  /// reports TransportError; outer loops may start a fresh operation).
  int max_attempts = 8;
  /// Delay after the first failed attempt, seconds.
  double initial_backoff_seconds = 0.05;
  /// Ceiling on the exponential growth, seconds (applied before jitter).
  double max_backoff_seconds = 2.0;
  /// Growth factor between consecutive attempts.
  double multiplier = 2.0;
  /// Each delay is scaled by a deterministic factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction).
  double jitter_fraction = 0.25;
  /// Jitter stream selector; derive per worker (see seeded_for) so a fleet
  /// does not reconnect in lockstep.
  std::uint64_t jitter_seed = 0;

  /// Backoff before retry number `attempt` (0-based: the delay between the
  /// first failure and the second attempt is backoff_for(0)).  Pure
  /// function of (policy, attempt).
  double backoff_for(int attempt) const noexcept;

  /// This policy with jitter_seed derived from `id` (e.g. the worker id).
  RetryPolicy seeded_for(const std::string& id) const;
};

/// Sleep for `seconds`, polling `cancelled` (when non-null) every few tens
/// of milliseconds so an interrupted worker never rides out a full backoff
/// window.  Returns false if cancelled before the time elapsed.
bool interruptible_sleep(double seconds,
                         const std::function<bool()>& cancelled);

}  // namespace gpudiff::support
