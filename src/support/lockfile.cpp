#include "support/lockfile.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include <unistd.h>

namespace gpudiff::support {

namespace {

[[noreturn]] void throw_errno(const char* op, const std::string& path, int err) {
  throw std::runtime_error(std::string("lockfile: ") + op + " " + path + ": " +
                           std::strerror(err));
}

}  // namespace

bool publish_file_exclusive(const std::string& path, std::string_view contents,
                            const std::string& temp_suffix) {
  const std::string tmp = path + temp_suffix;
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) throw_errno("open", tmp, errno);
    const std::size_t written =
        contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
    const int close_err = std::fclose(f);
    if (written != contents.size() || close_err != 0) {
      ::unlink(tmp.c_str());
      throw std::runtime_error("lockfile: short write to " + tmp);
    }
  }
  if (::link(tmp.c_str(), path.c_str()) == 0) {
    ::unlink(tmp.c_str());
    return true;
  }
  const int err = errno;
  ::unlink(tmp.c_str());
  if (err == EEXIST) return false;
  // ENOENT: our temp file vanished between write and link — a peer's
  // stale-temp reaper presumed this publisher dead.  The publish did not
  // happen, which is exactly "did not acquire"; treat it as losing the
  // race rather than killing a healthy process.
  if (err == ENOENT) return false;
  throw_errno("link", path, err);
}

bool touch_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now(), ec);
  return !ec;
}

double file_age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return -1.0;
  const auto now = std::filesystem::file_time_type::clock::now();
  const double age = std::chrono::duration<double>(now - mtime).count();
  // A future mtime (fleet clock skew over NFS, a stepped clock) must read
  // as "fresh right now", not as a negative age: callers use negative to
  // mean "no file" (see the header contract), and a scheduler that
  // mistook skew for absence would instantly steal a live worker's claim.
  return age < 0.0 ? 0.0 : age;
}

bool age_file(const std::string& path, double seconds) {
  std::error_code ec;
  const auto past = std::filesystem::file_time_type::clock::now() -
                    std::chrono::duration_cast<
                        std::filesystem::file_time_type::duration>(
                        std::chrono::duration<double>(seconds));
  std::filesystem::last_write_time(path, past, ec);
  return !ec;
}

bool remove_file(const std::string& path) {
  if (::unlink(path.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  throw_errno("unlink", path, errno);
}

bool rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  throw_errno("rename", from, errno);
}

}  // namespace gpudiff::support
