#include "support/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#endif

namespace gpudiff::support {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.fma = (ecx & (1u << 12)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (osxsave) {
    // XGETBV(0): bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
    std::uint32_t lo, hi;
    __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
    f.os_ymm = (lo & 0x6) == 0x6;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
    f.avx2 = (ebx & (1u << 5)) != 0;
#endif
  return f;
}

SimdOverride parse_override(const char* value) {
  const std::string v = value == nullptr ? "" : value;
  if (v.empty()) return SimdOverride::Auto;
  if (v == "off") return SimdOverride::Off;
  if (v == "scalar") return SimdOverride::Scalar;
  if (v == "scalar1") return SimdOverride::Scalar1;
  if (v == "avx2") return SimdOverride::Avx2;
  throw std::invalid_argument(
      "GPUDIFF_SIMD: unknown value '" + v +
      "' (expected off, scalar, scalar1 or avx2)");
}

// SimdOverride + 1 so that 0 can mean "not yet resolved".
std::atomic<int> g_override{0};

}  // namespace

std::string CpuFeatures::to_string() const {
  std::string s;
  s += avx2 ? "avx2" : "no-avx2";
  s += fma ? "+fma" : "+no-fma";
  if (!os_ymm) s += "+no-os-ymm";
  return s;
}

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

SimdOverride simd_override() {
  int cached = g_override.load(std::memory_order_acquire);
  if (cached != 0) return static_cast<SimdOverride>(cached - 1);
  const SimdOverride parsed = parse_override(std::getenv("GPUDIFF_SIMD"));
  g_override.store(static_cast<int>(parsed) + 1, std::memory_order_release);
  return parsed;
}

void set_simd_override(SimdOverride mode) noexcept {
  g_override.store(static_cast<int>(mode) + 1, std::memory_order_release);
}

const char* to_string(SimdOverride mode) noexcept {
  switch (mode) {
    case SimdOverride::Auto: return "auto";
    case SimdOverride::Off: return "off";
    case SimdOverride::Scalar: return "scalar";
    case SimdOverride::Scalar1: return "scalar1";
    case SimdOverride::Avx2: return "avx2";
  }
  return "?";
}

}  // namespace gpudiff::support
