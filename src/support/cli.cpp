#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace gpudiff::support {

void CliParser::add_flag(const std::string& name, const std::string& help_text) {
  Option o;
  o.kind = Kind::Flag;
  o.help = help_text;
  options_[name] = std::move(o);
  order_.push_back(name);
}

void CliParser::add_int(const std::string& name, char short_name,
                        const std::string& help_text, std::int64_t default_value) {
  Option o;
  o.kind = Kind::Int;
  o.short_name = short_name;
  o.help = help_text;
  o.int_value = default_value;
  options_[name] = std::move(o);
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name, char short_name,
                           const std::string& help_text, std::string default_value) {
  Option o;
  o.kind = Kind::String;
  o.short_name = short_name;
  o.help = help_text;
  o.string_value = std::move(default_value);
  options_[name] = std::move(o);
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, char short_name,
                           const std::string& help_text, double default_value) {
  Option o;
  o.kind = Kind::Double;
  o.short_name = short_name;
  o.help = help_text;
  o.double_value = default_value;
  options_[name] = std::move(o);
  order_.push_back(name);
}

CliParser::Option* CliParser::find_by_short(char c) {
  for (auto& [name, opt] : options_)
    if (opt.short_name == c) return &opt;
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    Option* opt = nullptr;
    std::string value;
    bool has_inline_value = false;
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_inline_value = true;
      }
      auto it = options_.find(name);
      if (it == options_.end()) {
        std::fprintf(stderr, "%s: unknown option '--%s'\n", program_.c_str(), name.c_str());
        return false;
      }
      opt = &it->second;
    } else if (arg.size() == 2 && arg[0] == '-') {
      opt = find_by_short(arg[1]);
      if (opt == nullptr) {
        std::fprintf(stderr, "%s: unknown option '%s'\n", program_.c_str(), arg.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", program_.c_str(), arg.c_str());
      return false;
    }

    if (opt->kind == Kind::Flag) {
      opt->flag_value = true;
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option '%s' needs a value\n", program_.c_str(), arg.c_str());
        return false;
      }
      value = argv[++i];
    }
    char* end = nullptr;
    switch (opt->kind) {
      case Kind::Int:
        opt->int_value = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "%s: bad integer '%s'\n", program_.c_str(), value.c_str());
          return false;
        }
        break;
      case Kind::Double:
        opt->double_value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
          std::fprintf(stderr, "%s: bad number '%s'\n", program_.c_str(), value.c_str());
          return false;
        }
        break;
      case Kind::String:
        opt->string_value = value;
        break;
      case Kind::Flag:
        break;
    }
  }
  return true;
}

const CliParser::Option* CliParser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind)
    throw std::logic_error("cli: option not declared: " + name);
  return &it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name, Kind::Flag)->flag_value;
}
std::int64_t CliParser::get_int(const std::string& name) const {
  return find(name, Kind::Int)->int_value;
}
const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::String)->string_value;
}
double CliParser::get_double(const std::string& name) const {
  return find(name, Kind::Double)->double_value;
}

std::string CliParser::help() const {
  std::string out = program_ + " — " + description_ + "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    std::string left = "  --" + name;
    if (o.short_name) left += std::string(", -") + o.short_name;
    switch (o.kind) {
      case Kind::Int: left += " <int> (default " + std::to_string(o.int_value) + ")"; break;
      case Kind::Double: left += " <num>"; break;
      case Kind::String:
        left += " <str>";
        if (!o.string_value.empty()) left += " (default " + o.string_value + ")";
        break;
      case Kind::Flag: break;
    }
    out += left;
    if (left.size() < 44) out += std::string(44 - left.size(), ' ');
    else out += "  ";
    out += o.help + "\n";
  }
  out += "  --help, -h";
  out += std::string(44 - 12, ' ');
  out += "show this help\n";
  return out;
}

}  // namespace gpudiff::support
