#include "support/table.hpp"

#include <algorithm>

namespace gpudiff::support {

void Table::set_header(std::vector<std::string> header, std::vector<Align> align) {
  header_ = std::move(header);
  align_ = std::move(align);
  align_.resize(header_.size(), Align::Right);
  if (!align_.empty()) align_[0] = align_[0] == Align::Right && !header_.empty()
                                       ? Align::Left
                                       : align_[0];
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back({std::move(row), false});
}

void Table::add_rule() { rows_.push_back({{}, true}); }

std::string Table::render() const {
  // Column widths.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t i = 0; i < header_.size(); ++i)
    width[i] = std::max(width[i], header_[i].size());
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.cells.size(); ++i)
      width[i] = std::max(width[i], r.cells[i].size());

  const auto pad = [&](const std::string& s, std::size_t w, Align a) {
    const std::size_t extra = w > s.size() ? w - s.size() : 0;
    switch (a) {
      case Align::Left: return s + std::string(extra, ' ');
      case Align::Right: return std::string(extra, ' ') + s;
      case Align::Center: {
        const std::size_t l = extra / 2;
        return std::string(l, ' ') + s + std::string(extra - l, ' ');
      }
    }
    return s;
  };

  const auto align_of = [&](std::size_t i) {
    return i < align_.size() ? align_[i] : Align::Right;
  };

  std::string sep = "+";
  for (std::size_t i = 0; i < ncols; ++i) sep += std::string(width[i] + 2, '-') + "+";
  sep += '\n';

  std::string out;
  if (!title_.empty()) out += title_ + '\n';
  out += sep;
  if (!header_.empty()) {
    out += "|";
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& h = i < header_.size() ? header_[i] : std::string();
      out += " " + pad(h, width[i], Align::Center) + " |";
    }
    out += '\n';
    out += sep;
  }
  for (const auto& r : rows_) {
    if (r.rule) {
      out += sep;
      continue;
    }
    out += "|";
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < r.cells.size() ? r.cells[i] : std::string();
      out += " " + pad(c, width[i], align_of(i)) + " |";
    }
    out += '\n';
  }
  out += sep;
  return out;
}

}  // namespace gpudiff::support
