#include "ir/arena.hpp"

#include <bit>

namespace gpudiff::ir {

std::size_t node_count(const Arena& a, ExprId id) noexcept {
  std::size_t n = 0;
  std::vector<ExprId> work{id};
  while (!work.empty()) {
    const Expr& e = a[work.back()];
    work.pop_back();
    ++n;
    for (int i = 0; i < e.n_kids; ++i) work.push_back(e.kid[i]);
  }
  return n;
}

std::size_t node_count(const Arena& a, StmtId id) noexcept {
  std::size_t n = 0;
  std::vector<StmtId> work{id};
  while (!work.empty()) {
    const Stmt& s = a[work.back()];
    work.pop_back();
    ++n;
    if (s.a) n += node_count(a, s.a);
    if (s.b) n += node_count(a, s.b);
    for (StmtId kid : a.body(s)) work.push_back(kid);
  }
  return n;
}

std::size_t node_count(const Arena& a, std::span<const StmtId> body) noexcept {
  std::size_t n = 0;
  for (StmtId id : body) n += node_count(a, id);
  return n;
}

bool equal(const Arena& a, ExprId x, const Arena& b, ExprId y) noexcept {
  std::vector<std::pair<ExprId, ExprId>> work{{x, y}};
  while (!work.empty()) {
    const auto [ix, iy] = work.back();
    work.pop_back();
    const Expr& ex = a[ix];
    const Expr& ey = b[iy];
    if (ex.kind != ey.kind || ex.index != ey.index) return false;
    switch (ex.kind) {
      case ExprKind::Literal:
        if (std::bit_cast<std::uint64_t>(ex.lit_value) !=
            std::bit_cast<std::uint64_t>(ey.lit_value))
          return false;
        break;
      case ExprKind::Bin:
        if (ex.bin_op != ey.bin_op) return false;
        break;
      case ExprKind::Cmp:
        if (ex.cmp_op != ey.cmp_op) return false;
        break;
      case ExprKind::BoolBin:
        if (ex.bool_op != ey.bool_op) return false;
        break;
      case ExprKind::Call:
        if (ex.fn != ey.fn) return false;
        break;
      default:
        break;
    }
    if (ex.n_kids != ey.n_kids) return false;
    for (int i = 0; i < ex.n_kids; ++i) work.emplace_back(ex.kid[i], ey.kid[i]);
  }
  return true;
}

}  // namespace gpudiff::ir
