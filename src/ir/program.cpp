#include "ir/program.hpp"

#include "fp/hexfloat.hpp"
#include "support/strings.hpp"

namespace gpudiff::ir {

int Program::max_temp_id() const noexcept {
  int m = -1;
  std::vector<StmtId> work(body_.begin(), body_.end());
  while (!work.empty()) {
    const Stmt& s = arena_[work.back()];
    work.pop_back();
    if (s.kind == StmtKind::DeclTemp && s.index > m) m = s.index;
    for (StmtId kid : arena_.body(s)) work.push_back(kid);
  }
  return m;
}

namespace {

/// Loop variable name at nesting depth d: i, j, k, i3, i4, ...
std::string loop_var_name(int depth) {
  static const char* names[] = {"i", "j", "k"};
  if (depth >= 0 && depth < 3) return names[depth];
  return "i" + std::to_string(depth);
}

std::string literal_source(const Program& prog, const Expr& e) {
  if (e.text_len != 0) return std::string(prog.arena().text(e));
  // Fallback spelling: Varity-style signed scientific with the FP32 suffix.
  if (prog.precision() == Precision::FP32)
    return fp::print_varity(static_cast<float>(e.lit_value)) + "F";
  return fp::print_varity(e.lit_value);
}

}  // namespace

std::string expr_to_source(const Program& prog, ExprId id) {
  const Expr& e = prog.expr(id);
  switch (e.kind) {
    case ExprKind::Literal:
      return literal_source(prog, e);
    case ExprKind::ParamRef:
    case ExprKind::IntParamRef:
      return prog.params().at(static_cast<std::size_t>(e.index)).name;
    case ExprKind::ArrayRef:
      return prog.params().at(static_cast<std::size_t>(e.index)).name + "[" +
             expr_to_source(prog, e.kid[0]) + "]";
    case ExprKind::LoopVarRef:
      return loop_var_name(e.index);
    case ExprKind::TempRef:
      return "tmp_" + std::to_string(e.index);
    case ExprKind::Neg:
      return "-" + expr_to_source(prog, e.kid[0]);
    case ExprKind::Bin:
      return "(" + expr_to_source(prog, e.kid[0]) + " " + spelling(e.bin_op) +
             " " + expr_to_source(prog, e.kid[1]) + ")";
    case ExprKind::Fma:
      return std::string(prog.precision() == Precision::FP32 ? "fmaf" : "fma") +
             "(" + expr_to_source(prog, e.kid[0]) + ", " +
             expr_to_source(prog, e.kid[1]) + ", " +
             expr_to_source(prog, e.kid[2]) + ")";
    case ExprKind::Call: {
      std::string out = name_of(e.fn, prog.precision()) + "(";
      for (int i = 0; i < e.n_kids; ++i) {
        if (i) out += ", ";
        out += expr_to_source(prog, e.kid[i]);
      }
      return out + ")";
    }
    case ExprKind::Cmp:
      return "(" + expr_to_source(prog, e.kid[0]) + " " + spelling(e.cmp_op) +
             " " + expr_to_source(prog, e.kid[1]) + ")";
    case ExprKind::BoolBin:
      return "(" + expr_to_source(prog, e.kid[0]) + " " + spelling(e.bool_op) +
             " " + expr_to_source(prog, e.kid[1]) + ")";
    case ExprKind::BoolNot:
      return "!" + expr_to_source(prog, e.kid[0]);
    case ExprKind::BoolToFp:
      return std::string("(") + prog.scalar_type() + ")" +
             expr_to_source(prog, e.kid[0]);
  }
  return "?";
}

std::string body_to_source(const Program& prog, std::span<const StmtId> body,
                           int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out;
  for (StmtId id : body) {
    const Stmt& s = prog.stmt(id);
    switch (s.kind) {
      case StmtKind::DeclTemp:
        out += pad + prog.scalar_type() + " tmp_" + std::to_string(s.index) +
               " = " + expr_to_source(prog, s.a) + ";\n";
        break;
      case StmtKind::AssignComp:
        out += pad + "comp " + spelling(s.assign_op) + " " +
               expr_to_source(prog, s.a) + ";\n";
        break;
      case StmtKind::StoreArray:
        out += pad + prog.params().at(static_cast<std::size_t>(s.index)).name +
               "[" + expr_to_source(prog, s.a) + "] = " +
               expr_to_source(prog, s.b) + ";\n";
        break;
      case StmtKind::For: {
        const std::string v = loop_var_name(s.index);
        const std::string bound =
            prog.params().at(static_cast<std::size_t>(s.bound_param)).name;
        out += pad + "for (int " + v + " = 0; " + v + " < " + bound + "; ++" + v +
               ") {\n";
        out += body_to_source(prog, prog.body_of(s), indent + 1);
        out += pad + "}\n";
        break;
      }
      case StmtKind::If:
        out += pad + "if (" + expr_to_source(prog, s.a) + ") {\n";
        out += body_to_source(prog, prog.body_of(s), indent + 1);
        out += pad + "}\n";
        break;
    }
  }
  return out;
}

std::string Program::dump() const {
  std::string out = "__global__ void compute(";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i) out += ", ";
    const Param& p = params_[i];
    switch (p.kind) {
      case ParamKind::Comp:
      case ParamKind::Scalar:
        out += std::string(scalar_type()) + " " + p.name;
        break;
      case ParamKind::Int:
        out += "int " + p.name;
        break;
      case ParamKind::Array:
        out += std::string(scalar_type()) + "* " + p.name;
        break;
    }
  }
  out += ") {\n";
  out += body_to_source(*this, body_, 1);
  out += "  printf(\"%.17g\\n\", comp);\n}\n";
  return out;
}

}  // namespace gpudiff::ir
