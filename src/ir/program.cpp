#include "ir/program.hpp"

#include "fp/hexfloat.hpp"
#include "support/strings.hpp"

namespace gpudiff::ir {

int Program::max_temp_id() const noexcept {
  int m = -1;
  std::vector<StmtId> work(body_.begin(), body_.end());
  while (!work.empty()) {
    const Stmt& s = arena_[work.back()];
    work.pop_back();
    if (s.kind == StmtKind::DeclTemp && s.index > m) m = s.index;
    for (StmtId kid : arena_.body(s)) work.push_back(kid);
  }
  return m;
}

namespace {

constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

/// Copy the expression subtree rooted at `root` from `src` into `dst`,
/// memoizing through `expr_map` (old id -> new id) so a shared subtree is
/// copied once.  Iterative post-order: hand-assembled IR may be
/// arbitrarily deep (the same reason node_count() is iterative).
ExprId compact_expr(const Arena& src, Arena& dst,
                    std::vector<std::uint32_t>& expr_map, ExprId root) {
  if (!root.valid()) return root;
  if (expr_map[root.v] != kUnmapped) return ExprId{expr_map[root.v]};
  struct Frame {
    ExprId id;
    int next_kid = 0;
  };
  std::vector<Frame> stack{{root}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    const Expr& e = src[f.id];
    if (f.next_kid < e.n_kids) {
      const ExprId kid = e.kid[f.next_kid++];
      if (kid.valid() && expr_map[kid.v] == kUnmapped)
        stack.push_back({kid});
      continue;
    }
    Expr copy = e;
    for (int k = 0; k < e.n_kids; ++k)
      if (copy.kid[k].valid()) copy.kid[k] = ExprId{expr_map[copy.kid[k].v]};
    copy.text_off = 0;
    copy.text_len = 0;
    if (e.text_len != 0) dst.set_text(copy, src.text(e));
    expr_map[f.id.v] = dst.add(copy).v;
    stack.pop_back();
  }
  return ExprId{expr_map[root.v]};
}

StmtId compact_stmt(const Arena& src, Arena& dst,
                    std::vector<std::uint32_t>& expr_map,
                    std::vector<std::uint32_t>& stmt_map, StmtId root) {
  if (stmt_map[root.v] != kUnmapped) return StmtId{stmt_map[root.v]};
  struct Frame {
    StmtId id;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack{{root}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    const Stmt& s = src[f.id];
    const std::span<const StmtId> body = src.body(s);
    if (f.next_child < body.size()) {
      const StmtId child = body[f.next_child++];
      if (stmt_map[child.v] == kUnmapped) stack.push_back({child});
      continue;
    }
    Stmt copy = s;
    if (copy.a.valid()) copy.a = compact_expr(src, dst, expr_map, copy.a);
    if (copy.b.valid()) copy.b = compact_expr(src, dst, expr_map, copy.b);
    copy.body_off = 0;
    copy.body_len = 0;
    if (!body.empty()) {
      std::vector<StmtId> new_body;
      new_body.reserve(body.size());
      for (StmtId child : body) new_body.push_back(StmtId{stmt_map[child.v]});
      dst.set_body(copy, new_body);
    }
    stmt_map[f.id.v] = dst.add(copy).v;
    stack.pop_back();
  }
  return StmtId{stmt_map[root.v]};
}

}  // namespace

void Program::compact() {
  Arena dst;
  std::vector<std::uint32_t> expr_map(arena_.expr_count(), kUnmapped);
  std::vector<std::uint32_t> stmt_map(arena_.stmt_count(), kUnmapped);
  for (StmtId& id : body_)
    id = compact_stmt(arena_, dst, expr_map, stmt_map, id);
  arena_ = std::move(dst);
}

namespace {

/// Loop variable name at nesting depth d: i, j, k, i3, i4, ...
std::string loop_var_name(int depth) {
  static const char* names[] = {"i", "j", "k"};
  if (depth >= 0 && depth < 3) return names[depth];
  return "i" + std::to_string(depth);
}

std::string literal_source(const Program& prog, const Expr& e) {
  if (e.text_len != 0) return std::string(prog.arena().text(e));
  // Fallback spelling: Varity-style signed scientific with the FP32 suffix.
  if (prog.precision() == Precision::FP32)
    return fp::print_varity(static_cast<float>(e.lit_value)) + "F";
  return fp::print_varity(e.lit_value);
}

}  // namespace

std::string expr_to_source(const Program& prog, ExprId id) {
  const Expr& e = prog.expr(id);
  switch (e.kind) {
    case ExprKind::Literal:
      return literal_source(prog, e);
    case ExprKind::ParamRef:
    case ExprKind::IntParamRef:
      return prog.params().at(static_cast<std::size_t>(e.index)).name;
    case ExprKind::ArrayRef:
      return prog.params().at(static_cast<std::size_t>(e.index)).name + "[" +
             expr_to_source(prog, e.kid[0]) + "]";
    case ExprKind::LoopVarRef:
      return loop_var_name(e.index);
    case ExprKind::TempRef:
      return "tmp_" + std::to_string(e.index);
    case ExprKind::Neg:
      return "-" + expr_to_source(prog, e.kid[0]);
    case ExprKind::Bin:
      return "(" + expr_to_source(prog, e.kid[0]) + " " + spelling(e.bin_op) +
             " " + expr_to_source(prog, e.kid[1]) + ")";
    case ExprKind::Fma:
      return std::string(prog.precision() == Precision::FP32 ? "fmaf" : "fma") +
             "(" + expr_to_source(prog, e.kid[0]) + ", " +
             expr_to_source(prog, e.kid[1]) + ", " +
             expr_to_source(prog, e.kid[2]) + ")";
    case ExprKind::Call: {
      std::string out = name_of(e.fn, prog.precision()) + "(";
      for (int i = 0; i < e.n_kids; ++i) {
        if (i) out += ", ";
        out += expr_to_source(prog, e.kid[i]);
      }
      return out + ")";
    }
    case ExprKind::Cmp:
      return "(" + expr_to_source(prog, e.kid[0]) + " " + spelling(e.cmp_op) +
             " " + expr_to_source(prog, e.kid[1]) + ")";
    case ExprKind::BoolBin:
      return "(" + expr_to_source(prog, e.kid[0]) + " " + spelling(e.bool_op) +
             " " + expr_to_source(prog, e.kid[1]) + ")";
    case ExprKind::BoolNot:
      return "!" + expr_to_source(prog, e.kid[0]);
    case ExprKind::BoolToFp:
      return std::string("(") + prog.scalar_type() + ")" +
             expr_to_source(prog, e.kid[0]);
  }
  return "?";
}

std::string body_to_source(const Program& prog, std::span<const StmtId> body,
                           int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out;
  for (StmtId id : body) {
    const Stmt& s = prog.stmt(id);
    switch (s.kind) {
      case StmtKind::DeclTemp:
        out += pad + prog.scalar_type() + " tmp_" + std::to_string(s.index) +
               " = " + expr_to_source(prog, s.a) + ";\n";
        break;
      case StmtKind::AssignComp:
        out += pad + "comp " + spelling(s.assign_op) + " " +
               expr_to_source(prog, s.a) + ";\n";
        break;
      case StmtKind::StoreArray:
        out += pad + prog.params().at(static_cast<std::size_t>(s.index)).name +
               "[" + expr_to_source(prog, s.a) + "] = " +
               expr_to_source(prog, s.b) + ";\n";
        break;
      case StmtKind::For: {
        const std::string v = loop_var_name(s.index);
        const std::string bound =
            prog.params().at(static_cast<std::size_t>(s.bound_param)).name;
        out += pad + "for (int " + v + " = 0; " + v + " < " + bound + "; ++" + v +
               ") {\n";
        out += body_to_source(prog, prog.body_of(s), indent + 1);
        out += pad + "}\n";
        break;
      }
      case StmtKind::If:
        out += pad + "if (" + expr_to_source(prog, s.a) + ") {\n";
        out += body_to_source(prog, prog.body_of(s), indent + 1);
        out += pad + "}\n";
        break;
    }
  }
  return out;
}

std::string Program::dump() const {
  std::string out = "__global__ void compute(";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i) out += ", ";
    const Param& p = params_[i];
    switch (p.kind) {
      case ParamKind::Comp:
      case ParamKind::Scalar:
        out += std::string(scalar_type()) + " " + p.name;
        break;
      case ParamKind::Int:
        out += "int " + p.name;
        break;
      case ParamKind::Array:
        out += std::string(scalar_type()) + "* " + p.name;
        break;
    }
  }
  out += ") {\n";
  out += body_to_source(*this, body_, 1);
  out += "  printf(\"%.17g\\n\", comp);\n}\n";
  return out;
}

}  // namespace gpudiff::ir
