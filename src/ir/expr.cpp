#include "ir/expr.hpp"

namespace gpudiff::ir {

std::string to_string(Precision p) {
  return p == Precision::FP32 ? "FP32" : "FP64";
}

bool parse_precision(const std::string& text, Precision* out) {
  Precision p;
  if (text == "FP32") p = Precision::FP32;
  else if (text == "FP64") p = Precision::FP64;
  else return false;
  if (out != nullptr) *out = p;
  return true;
}

int arity(MathFn fn) noexcept {
  switch (fn) {
    case MathFn::Fmod:
    case MathFn::Pow:
    case MathFn::Fmin:
    case MathFn::Fmax:
      return 2;
    default:
      return 1;
  }
}

std::string name_of(MathFn fn, Precision p) {
  const char* base = "";
  switch (fn) {
    case MathFn::Fabs: base = "fabs"; break;
    case MathFn::Sqrt: base = "sqrt"; break;
    case MathFn::Exp: base = "exp"; break;
    case MathFn::Log: base = "log"; break;
    case MathFn::Sin: base = "sin"; break;
    case MathFn::Cos: base = "cos"; break;
    case MathFn::Tan: base = "tan"; break;
    case MathFn::Asin: base = "asin"; break;
    case MathFn::Acos: base = "acos"; break;
    case MathFn::Atan: base = "atan"; break;
    case MathFn::Sinh: base = "sinh"; break;
    case MathFn::Cosh: base = "cosh"; break;
    case MathFn::Tanh: base = "tanh"; break;
    case MathFn::Ceil: base = "ceil"; break;
    case MathFn::Floor: base = "floor"; break;
    case MathFn::Trunc: base = "trunc"; break;
    case MathFn::Fmod: base = "fmod"; break;
    case MathFn::Pow: base = "pow"; break;
    case MathFn::Fmin: base = "fmin"; break;
    case MathFn::Fmax: base = "fmax"; break;
  }
  std::string out = base;
  if (p == Precision::FP32) out += 'f';
  return out;
}

const char* spelling(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
  }
  return "?";
}

const char* spelling(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

const char* spelling(BoolOp op) noexcept {
  return op == BoolOp::And ? "&&" : "||";
}

}  // namespace gpudiff::ir
