#include "ir/expr.hpp"

#include <bit>

namespace gpudiff::ir {

std::string to_string(Precision p) {
  return p == Precision::FP32 ? "FP32" : "FP64";
}

int arity(MathFn fn) noexcept {
  switch (fn) {
    case MathFn::Fmod:
    case MathFn::Pow:
    case MathFn::Fmin:
    case MathFn::Fmax:
      return 2;
    default:
      return 1;
  }
}

std::string name_of(MathFn fn, Precision p) {
  const char* base = "";
  switch (fn) {
    case MathFn::Fabs: base = "fabs"; break;
    case MathFn::Sqrt: base = "sqrt"; break;
    case MathFn::Exp: base = "exp"; break;
    case MathFn::Log: base = "log"; break;
    case MathFn::Sin: base = "sin"; break;
    case MathFn::Cos: base = "cos"; break;
    case MathFn::Tan: base = "tan"; break;
    case MathFn::Asin: base = "asin"; break;
    case MathFn::Acos: base = "acos"; break;
    case MathFn::Atan: base = "atan"; break;
    case MathFn::Sinh: base = "sinh"; break;
    case MathFn::Cosh: base = "cosh"; break;
    case MathFn::Tanh: base = "tanh"; break;
    case MathFn::Ceil: base = "ceil"; break;
    case MathFn::Floor: base = "floor"; break;
    case MathFn::Trunc: base = "trunc"; break;
    case MathFn::Fmod: base = "fmod"; break;
    case MathFn::Pow: base = "pow"; break;
    case MathFn::Fmin: base = "fmin"; break;
    case MathFn::Fmax: base = "fmax"; break;
  }
  std::string out = base;
  if (p == Precision::FP32) out += 'f';
  return out;
}

const char* spelling(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
  }
  return "?";
}

const char* spelling(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

const char* spelling(BoolOp op) noexcept {
  return op == BoolOp::And ? "&&" : "||";
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->lit_value = lit_value;
  out->lit_text = lit_text;
  out->index = index;
  out->bin_op = bin_op;
  out->cmp_op = cmp_op;
  out->bool_op = bool_op;
  out->fn = fn;
  out->kids.reserve(kids.size());
  for (const auto& k : kids) out->kids.push_back(k->clone());
  return out;
}

std::size_t Expr::node_count() const noexcept {
  std::size_t n = 1;
  for (const auto& k : kids) n += k->node_count();
  return n;
}

bool Expr::equals(const Expr& other) const noexcept {
  if (kind != other.kind || index != other.index) return false;
  switch (kind) {
    case ExprKind::Literal:
      if (std::bit_cast<std::uint64_t>(lit_value) !=
          std::bit_cast<std::uint64_t>(other.lit_value))
        return false;
      break;
    case ExprKind::Bin:
      if (bin_op != other.bin_op) return false;
      break;
    case ExprKind::Cmp:
      if (cmp_op != other.cmp_op) return false;
      break;
    case ExprKind::BoolBin:
      if (bool_op != other.bool_op) return false;
      break;
    case ExprKind::Call:
      if (fn != other.fn) return false;
      break;
    default:
      break;
  }
  if (kids.size() != other.kids.size()) return false;
  for (std::size_t i = 0; i < kids.size(); ++i)
    if (!kids[i]->equals(*other.kids[i])) return false;
  return true;
}

namespace {
ExprPtr node(ExprKind k) { return std::make_unique<Expr>(k); }
}  // namespace

ExprPtr make_literal(double value, std::string text) {
  auto e = node(ExprKind::Literal);
  e->lit_value = value;
  e->lit_text = std::move(text);
  return e;
}

ExprPtr make_param(int index) {
  auto e = node(ExprKind::ParamRef);
  e->index = index;
  return e;
}

ExprPtr make_int_param(int index) {
  auto e = node(ExprKind::IntParamRef);
  e->index = index;
  return e;
}

ExprPtr make_array(int index, ExprPtr subscript) {
  auto e = node(ExprKind::ArrayRef);
  e->index = index;
  e->kids.push_back(std::move(subscript));
  return e;
}

ExprPtr make_loop_var(int depth) {
  auto e = node(ExprKind::LoopVarRef);
  e->index = depth;
  return e;
}

ExprPtr make_temp(int id) {
  auto e = node(ExprKind::TempRef);
  e->index = id;
  return e;
}

ExprPtr make_neg(ExprPtr a) {
  auto e = node(ExprKind::Neg);
  e->kids.push_back(std::move(a));
  return e;
}

ExprPtr make_bin(BinOp op, ExprPtr a, ExprPtr b) {
  auto e = node(ExprKind::Bin);
  e->bin_op = op;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr make_fma(ExprPtr a, ExprPtr b, ExprPtr c) {
  auto e = node(ExprKind::Fma);
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  e->kids.push_back(std::move(c));
  return e;
}

ExprPtr make_call(MathFn fn, ExprPtr a) {
  auto e = node(ExprKind::Call);
  e->fn = fn;
  e->kids.push_back(std::move(a));
  return e;
}

ExprPtr make_call(MathFn fn, ExprPtr a, ExprPtr b) {
  auto e = node(ExprKind::Call);
  e->fn = fn;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr make_cmp(CmpOp op, ExprPtr a, ExprPtr b) {
  auto e = node(ExprKind::Cmp);
  e->cmp_op = op;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr make_bool(BoolOp op, ExprPtr a, ExprPtr b) {
  auto e = node(ExprKind::BoolBin);
  e->bool_op = op;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr make_not(ExprPtr a) {
  auto e = node(ExprKind::BoolNot);
  e->kids.push_back(std::move(a));
  return e;
}

ExprPtr make_bool_to_fp(ExprPtr cond) {
  auto e = node(ExprKind::BoolToFp);
  e->kids.push_back(std::move(cond));
  return e;
}

}  // namespace gpudiff::ir
