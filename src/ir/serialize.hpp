#pragma once
// IR <-> JSON serialization.
//
// The between-platform protocol (paper Fig. 3) ships every test — program,
// inputs, compiler, flags — to the second system as JSON metadata.  Literal
// values are stored as IEEE bit strings so programs re-materialize
// bit-identically; literal spellings are preserved so re-emitted source is
// byte-identical too.

#include <string>

#include "ir/program.hpp"
#include "support/json.hpp"

namespace gpudiff::ir {

support::Json expr_to_json(const Expr& e);
ExprPtr expr_from_json(const support::Json& j);

support::Json stmt_to_json(const Stmt& s);
StmtPtr stmt_from_json(const support::Json& j);

support::Json program_to_json(const Program& p);
Program program_from_json(const support::Json& j);

}  // namespace gpudiff::ir
