#pragma once
// IR <-> JSON serialization.
//
// The between-platform protocol (paper Fig. 3) ships every test — program,
// inputs, compiler, flags — to the second system as JSON metadata.  Literal
// values are stored as IEEE bit strings so programs re-materialize
// bit-identically; literal spellings are preserved so re-emitted source is
// byte-identical too.  The JSON shape is purely structural (nested trees),
// so arena ids never leak into the wire format: re-serializing a parsed
// program is byte-identical regardless of pool layout.

#include <string>

#include "ir/program.hpp"
#include "support/json.hpp"

namespace gpudiff::ir {

support::Json expr_to_json(const Arena& a, ExprId e);
ExprId expr_from_json(Arena& a, const support::Json& j);

support::Json stmt_to_json(const Arena& a, StmtId s);
StmtId stmt_from_json(Arena& a, const support::Json& j);

support::Json program_to_json(const Program& p);
Program program_from_json(const support::Json& j);

}  // namespace gpudiff::ir
