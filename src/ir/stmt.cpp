#include "ir/stmt.hpp"

namespace gpudiff::ir {

const char* spelling(AssignOp op) noexcept {
  switch (op) {
    case AssignOp::Set: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
  }
  return "?";
}

}  // namespace gpudiff::ir
