#include "ir/stmt.hpp"

namespace gpudiff::ir {

const char* spelling(AssignOp op) noexcept {
  switch (op) {
    case AssignOp::Set: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
  }
  return "?";
}

StmtPtr Stmt::clone() const {
  auto out = std::make_unique<Stmt>(kind);
  out->index = index;
  out->bound_param = bound_param;
  out->assign_op = assign_op;
  if (a) out->a = a->clone();
  if (b) out->b = b->clone();
  out->body = clone_body(body);
  return out;
}

std::size_t Stmt::node_count() const noexcept {
  std::size_t n = 1;
  if (a) n += a->node_count();
  if (b) n += b->node_count();
  for (const auto& s : body) n += s->node_count();
  return n;
}

StmtPtr make_decl_temp(int id, ExprPtr init) {
  auto s = std::make_unique<Stmt>(StmtKind::DeclTemp);
  s->index = id;
  s->a = std::move(init);
  return s;
}

StmtPtr make_assign_comp(AssignOp op, ExprPtr value) {
  auto s = std::make_unique<Stmt>(StmtKind::AssignComp);
  s->assign_op = op;
  s->a = std::move(value);
  return s;
}

StmtPtr make_store_array(int param_index, ExprPtr subscript, ExprPtr value) {
  auto s = std::make_unique<Stmt>(StmtKind::StoreArray);
  s->index = param_index;
  s->a = std::move(subscript);
  s->b = std::move(value);
  return s;
}

StmtPtr make_for(int depth, int bound_param, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>(StmtKind::For);
  s->index = depth;
  s->bound_param = bound_param;
  s->body = std::move(body);
  return s;
}

StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> body) {
  auto s = std::make_unique<Stmt>(StmtKind::If);
  s->a = std::move(cond);
  s->body = std::move(body);
  return s;
}

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body) {
  std::vector<StmtPtr> out;
  out.reserve(body.size());
  for (const auto& s : body) out.push_back(s->clone());
  return out;
}

}  // namespace gpudiff::ir
