#pragma once
// The IR node arena: Program-owned flat pools for expressions, statements,
// statement lists and literal spellings.
//
// Ownership / handle invariants:
//   * Every ExprId/StmtId is an index into exactly one Arena; ids are only
//     meaningful together with the arena (usually reached via the Program)
//     that allocated them.  Ids are never freed — rewrites orphan old nodes,
//     which die with the arena (bounded: one arena per compiled variant).
//   * add() never invalidates ids, but *does* invalidate node references
//     (vector growth).  Re-index after any allocation instead of holding a
//     `Expr&`/`Stmt&` across a make_* call; nodes are 48-byte structs, so
//     taking a by-value copy before rewriting is the idiomatic pattern.
//   * For/If bodies are contiguous StmtId spans in the list pool, written
//     once by set_body(); passes may overwrite list *entries* (same length)
//     or whole Stmt records in place, which is how if_convert rewrites an
//     `if` into an assignment without disturbing sibling statements.
//   * Literal spellings are interned append-only in a char pool; copying a
//     Program copies four flat vectors and never chases a pointer.

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "ir/stmt.hpp"

namespace gpudiff::ir {

class Arena {
 public:
  ExprId add(const Expr& e) {
    exprs_.push_back(e);
    return ExprId{static_cast<std::uint32_t>(exprs_.size() - 1)};
  }
  StmtId add(const Stmt& s) {
    stmts_.push_back(s);
    return StmtId{static_cast<std::uint32_t>(stmts_.size() - 1)};
  }

  const Expr& operator[](ExprId id) const noexcept { return exprs_[id.v]; }
  Expr& operator[](ExprId id) noexcept { return exprs_[id.v]; }
  const Stmt& operator[](StmtId id) const noexcept { return stmts_[id.v]; }
  Stmt& operator[](StmtId id) noexcept { return stmts_[id.v]; }

  /// Body statements of a For/If (empty for leaf statements).
  std::span<const StmtId> body(const Stmt& s) const noexcept {
    return {lists_.data() + s.body_off, s.body_len};
  }
  std::span<StmtId> body(Stmt& s) noexcept {
    return {lists_.data() + s.body_off, s.body_len};
  }

  /// Attach `ids` as the body of `s` (copied into the contiguous list
  /// pool).  `s` may be a local record not yet add()ed, or a node of this
  /// arena; only the list pool grows.
  void set_body(Stmt& s, std::span<const StmtId> ids) {
    s.body_off = static_cast<std::uint32_t>(lists_.size());
    s.body_len = static_cast<std::uint32_t>(ids.size());
    lists_.insert(lists_.end(), ids.begin(), ids.end());
  }

  /// Literal spelling of `e` (empty when none was recorded).
  std::string_view text(const Expr& e) const noexcept {
    return {text_.data() + e.text_off, e.text_len};
  }
  std::string_view text(ExprId id) const noexcept { return text(exprs_[id.v]); }
  void set_text(Expr& e, std::string_view t) {
    e.text_off = static_cast<std::uint32_t>(text_.size());
    e.text_len = static_cast<std::uint32_t>(t.size());
    text_.append(t);
  }

  std::size_t expr_count() const noexcept { return exprs_.size(); }
  std::size_t stmt_count() const noexcept { return stmts_.size(); }

  /// Pre-size the pools (generator hot path: one arena per program).
  void reserve(std::size_t exprs, std::size_t stmts, std::size_t text_bytes) {
    exprs_.reserve(exprs);
    stmts_.reserve(stmts);
    lists_.reserve(stmts);
    text_.reserve(text_bytes);
  }

 private:
  std::vector<Expr> exprs_;
  std::vector<Stmt> stmts_;
  std::vector<StmtId> lists_;
  std::string text_;
};

// --- expression constructors (free functions keep call sites terse) -------

inline ExprId make_literal(Arena& a, double value, std::string_view text = {}) {
  Expr e;
  e.kind = ExprKind::Literal;
  e.lit_value = value;
  if (!text.empty()) a.set_text(e, text);
  return a.add(e);
}

inline ExprId make_indexed(Arena& a, ExprKind kind, int index) {
  Expr e;
  e.kind = kind;
  e.index = index;
  return a.add(e);
}

inline ExprId make_param(Arena& a, int index) {
  return make_indexed(a, ExprKind::ParamRef, index);
}
inline ExprId make_int_param(Arena& a, int index) {
  return make_indexed(a, ExprKind::IntParamRef, index);
}
inline ExprId make_loop_var(Arena& a, int depth) {
  return make_indexed(a, ExprKind::LoopVarRef, depth);
}
inline ExprId make_temp(Arena& a, int id) {
  return make_indexed(a, ExprKind::TempRef, id);
}

inline ExprId make_array(Arena& a, int index, ExprId subscript) {
  Expr e;
  e.kind = ExprKind::ArrayRef;
  e.index = index;
  e.n_kids = 1;
  e.kid[0] = subscript;
  return a.add(e);
}

inline ExprId make_neg(Arena& a, ExprId x) {
  Expr e;
  e.kind = ExprKind::Neg;
  e.n_kids = 1;
  e.kid[0] = x;
  return a.add(e);
}

inline ExprId make_bin(Arena& a, BinOp op, ExprId x, ExprId y) {
  Expr e;
  e.kind = ExprKind::Bin;
  e.bin_op = op;
  e.n_kids = 2;
  e.kid[0] = x;
  e.kid[1] = y;
  return a.add(e);
}

inline ExprId make_fma(Arena& a, ExprId x, ExprId y, ExprId z) {
  Expr e;
  e.kind = ExprKind::Fma;
  e.n_kids = 3;
  e.kid[0] = x;
  e.kid[1] = y;
  e.kid[2] = z;
  return a.add(e);
}

inline ExprId make_call(Arena& a, MathFn fn, ExprId x) {
  Expr e;
  e.kind = ExprKind::Call;
  e.fn = fn;
  e.n_kids = 1;
  e.kid[0] = x;
  return a.add(e);
}

inline ExprId make_call(Arena& a, MathFn fn, ExprId x, ExprId y) {
  Expr e;
  e.kind = ExprKind::Call;
  e.fn = fn;
  e.n_kids = 2;
  e.kid[0] = x;
  e.kid[1] = y;
  return a.add(e);
}

inline ExprId make_cmp(Arena& a, CmpOp op, ExprId x, ExprId y) {
  Expr e;
  e.kind = ExprKind::Cmp;
  e.cmp_op = op;
  e.n_kids = 2;
  e.kid[0] = x;
  e.kid[1] = y;
  return a.add(e);
}

inline ExprId make_bool(Arena& a, BoolOp op, ExprId x, ExprId y) {
  Expr e;
  e.kind = ExprKind::BoolBin;
  e.bool_op = op;
  e.n_kids = 2;
  e.kid[0] = x;
  e.kid[1] = y;
  return a.add(e);
}

inline ExprId make_not(Arena& a, ExprId x) {
  Expr e;
  e.kind = ExprKind::BoolNot;
  e.n_kids = 1;
  e.kid[0] = x;
  return a.add(e);
}

inline ExprId make_bool_to_fp(Arena& a, ExprId cond) {
  Expr e;
  e.kind = ExprKind::BoolToFp;
  e.n_kids = 1;
  e.kid[0] = cond;
  return a.add(e);
}

// --- statement constructors ----------------------------------------------

inline StmtId make_decl_temp(Arena& a, int id, ExprId init) {
  Stmt s;
  s.kind = StmtKind::DeclTemp;
  s.index = id;
  s.a = init;
  return a.add(s);
}

inline StmtId make_assign_comp(Arena& a, AssignOp op, ExprId value) {
  Stmt s;
  s.kind = StmtKind::AssignComp;
  s.assign_op = op;
  s.a = value;
  return a.add(s);
}

inline StmtId make_store_array(Arena& a, int param_index, ExprId subscript,
                               ExprId value) {
  Stmt s;
  s.kind = StmtKind::StoreArray;
  s.index = param_index;
  s.a = subscript;
  s.b = value;
  return a.add(s);
}

inline StmtId make_for(Arena& a, int depth, int bound_param,
                       std::span<const StmtId> body) {
  Stmt s;
  s.kind = StmtKind::For;
  s.index = depth;
  s.bound_param = bound_param;
  a.set_body(s, body);
  return a.add(s);
}

inline StmtId make_if(Arena& a, ExprId cond, std::span<const StmtId> body) {
  Stmt s;
  s.kind = StmtKind::If;
  s.a = cond;
  a.set_body(s, body);
  return a.add(s);
}

// --- whole-subtree queries (iterative: generated trees are shallow, but
// hand-assembled IR may be arbitrarily deep and must not overflow the
// stack — the recursive clone()/destructor hazards of the pointer IR are
// exactly what the arena retired) ----------------------------------------

/// Total node count of the expression subtree rooted at `id`.
std::size_t node_count(const Arena& a, ExprId id) noexcept;
/// Total node count of the statement subtree (statements + expressions).
std::size_t node_count(const Arena& a, StmtId id) noexcept;
std::size_t node_count(const Arena& a, std::span<const StmtId> body) noexcept;

/// Structural equality of two expression subtrees, possibly in different
/// arenas (ignores literal spelling, compares values by bits).
bool equal(const Arena& a, ExprId x, const Arena& b, ExprId y) noexcept;

}  // namespace gpudiff::ir
