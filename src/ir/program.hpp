#pragma once
// A complete Varity-style test kernel: signature + body.
//
// Every generated test is a single kernel named `compute` whose first
// parameter `comp` doubles as the accumulator; the kernel prints comp with
// printf("%.17g\n", comp) at the end (paper §III-B).  Remaining parameters
// are integer loop bounds, floating scalars and floating arrays, named
// var_1, var_2, ... in declaration order as Varity does.
//
// The Program owns the node Arena; the body is a list of top-level StmtIds.
// Copying a Program copies the flat pools — no recursive clone — which is
// what makes per-level compilation (five levels x two toolchains per
// campaign program) cheap.

#include <string>
#include <vector>

#include "ir/arena.hpp"

namespace gpudiff::ir {

enum class ParamKind : std::uint8_t {
  Comp,    ///< the FP accumulator (always parameter 0)
  Int,     ///< integer loop bound
  Scalar,  ///< FP scalar
  Array,   ///< FP array (device buffer)
};

struct Param {
  ParamKind kind{};
  std::string name;  // "comp", "var_1", ...
};

/// Number of elements allocated for every array parameter, both in the
/// virtual GPU and in emitted CUDA/HIP `main()` code.  Loop bounds are
/// capped well below this by the input generator.
inline constexpr int kArrayExtent = 256;

class Program {
 public:
  Program() = default;
  Program(Precision precision, std::vector<Param> params, Arena arena,
          std::vector<StmtId> body)
      : precision_(precision),
        params_(std::move(params)),
        arena_(std::move(arena)),
        body_(std::move(body)) {}

  // Copies are flat pool copies (defaulted member-wise vector copies).
  Program(const Program&) = default;
  Program& operator=(const Program&) = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  Precision precision() const noexcept { return precision_; }
  void set_precision(Precision p) noexcept { precision_ = p; }

  const std::vector<Param>& params() const noexcept { return params_; }
  std::vector<Param>& params() noexcept { return params_; }

  const std::vector<StmtId>& body() const noexcept { return body_; }
  std::vector<StmtId>& body() noexcept { return body_; }

  const Arena& arena() const noexcept { return arena_; }
  Arena& arena() noexcept { return arena_; }

  // Handle sugar so call sites read naturally.
  const Expr& expr(ExprId id) const noexcept { return arena_[id]; }
  Expr& expr(ExprId id) noexcept { return arena_[id]; }
  const Stmt& stmt(StmtId id) const noexcept { return arena_[id]; }
  Stmt& stmt(StmtId id) noexcept { return arena_[id]; }
  std::span<const StmtId> body_of(const Stmt& s) const noexcept {
    return arena_.body(s);
  }

  /// Total *live* IR node count — nodes reachable from the body, not pool
  /// size (passes orphan rewritten nodes in the pool).  Used by size-based
  /// generation limits & stats.
  std::size_t node_count() const noexcept {
    return ir::node_count(arena_, body_);
  }

  /// Highest temporary id declared (or -1 if none).
  int max_temp_id() const noexcept;

  /// Rebuild the arena with only the nodes reachable from the body,
  /// dropping everything passes orphaned (rewrites never free pool slots —
  /// see arena.hpp).  Ids are remapped; any ExprId/StmtId held outside the
  /// Program is invalidated.  Nodes land in deterministic depth-first body
  /// order and shared subtrees are kept single, so after compacting a
  /// tree-shaped program, pool size == node_count().  Worth calling only
  /// on long-lived Programs after heavy pass rewriting; campaign compiles
  /// are transient and never bother.
  void compact();

  /// Scalar C type for the program's precision ("float"/"double").
  const char* scalar_type() const noexcept {
    return precision_ == Precision::FP32 ? "float" : "double";
  }

  /// Render the kernel body as C-like text (debug aid; emitters produce the
  /// full compilable files).
  std::string dump() const;

 private:
  Precision precision_ = Precision::FP64;
  std::vector<Param> params_;
  Arena arena_;
  std::vector<StmtId> body_;
};

/// Render one expression as C-like source (shared by Program::dump and the
/// CUDA/HIP emitters; literal spellings are preserved when present).
std::string expr_to_source(const Program& prog, ExprId e);

/// Render statements at the given indentation depth.
std::string body_to_source(const Program& prog, std::span<const StmtId> body,
                           int indent);

}  // namespace gpudiff::ir
