#pragma once
// A complete Varity-style test kernel: signature + body.
//
// Every generated test is a single kernel named `compute` whose first
// parameter `comp` doubles as the accumulator; the kernel prints comp with
// printf("%.17g\n", comp) at the end (paper §III-B).  Remaining parameters
// are integer loop bounds, floating scalars and floating arrays, named
// var_1, var_2, ... in declaration order as Varity does.

#include <string>
#include <vector>

#include "ir/stmt.hpp"

namespace gpudiff::ir {

enum class ParamKind : std::uint8_t {
  Comp,    ///< the FP accumulator (always parameter 0)
  Int,     ///< integer loop bound
  Scalar,  ///< FP scalar
  Array,   ///< FP array (device buffer)
};

struct Param {
  ParamKind kind{};
  std::string name;  // "comp", "var_1", ...
};

/// Number of elements allocated for every array parameter, both in the
/// virtual GPU and in emitted CUDA/HIP `main()` code.  Loop bounds are
/// capped well below this by the input generator.
inline constexpr int kArrayExtent = 256;

class Program {
 public:
  Program() = default;
  Program(Precision precision, std::vector<Param> params, std::vector<StmtPtr> body)
      : precision_(precision), params_(std::move(params)), body_(std::move(body)) {}

  Program(const Program& other) { *this = other; }
  Program& operator=(const Program& other) {
    if (this != &other) {
      precision_ = other.precision_;
      params_ = other.params_;
      body_ = clone_body(other.body_);
    }
    return *this;
  }
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  Precision precision() const noexcept { return precision_; }
  void set_precision(Precision p) noexcept { precision_ = p; }

  const std::vector<Param>& params() const noexcept { return params_; }
  std::vector<Param>& params() noexcept { return params_; }

  const std::vector<StmtPtr>& body() const noexcept { return body_; }
  std::vector<StmtPtr>& body() noexcept { return body_; }

  /// Total IR node count (used by size-based generation limits & stats).
  std::size_t node_count() const noexcept;

  /// Highest temporary id declared (or -1 if none).
  int max_temp_id() const noexcept;

  /// Scalar C type for the program's precision ("float"/"double").
  const char* scalar_type() const noexcept {
    return precision_ == Precision::FP32 ? "float" : "double";
  }

  /// Render the kernel body as C-like text (debug aid; emitters produce the
  /// full compilable files).
  std::string dump() const;

 private:
  Precision precision_ = Precision::FP64;
  std::vector<Param> params_;
  std::vector<StmtPtr> body_;
};

/// Render one expression as C-like source (shared by Program::dump and the
/// CUDA/HIP emitters; literal spellings are preserved when present).
std::string expr_to_source(const Expr& e, const Program& prog);

/// Render statements at the given indentation depth.
std::string body_to_source(const std::vector<StmtPtr>& body, const Program& prog,
                           int indent);

}  // namespace gpudiff::ir
