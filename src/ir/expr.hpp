#pragma once
// Expression IR for Varity-style test kernels.
//
// One tagged struct (not a class hierarchy) keeps the tree cheap to clone,
// walk and serialize — the optimizer and interpreter are simple recursive
// switches.  Expressions are floating-point-valued except Cmp/BoolBin/
// BoolNot which are boolean-valued and may appear only in `if`/`for`
// conditions or under BoolToFp (the if-conversion artifact, §Case Study 3).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gpudiff::ir {

enum class Precision : std::uint8_t { FP32, FP64 };
std::string to_string(Precision p);

enum class ExprKind : std::uint8_t {
  Literal,     // floating constant (value + original spelling)
  ParamRef,    // kernel scalar parameter (index into Program::params)
  ArrayRef,    // array parameter element: params[index][ kids[0] ]
  LoopVarRef,  // loop induction variable at nesting depth `index`
  TempRef,     // temporary variable tmp_<index>
  IntParamRef, // integer parameter used arithmetically (rare; loop bounds)
  Neg,         // -kids[0]
  Bin,         // kids[0] <bin_op> kids[1]
  Fma,         // fma(kids[0], kids[1], kids[2]) — produced by contraction
  Call,        // math fn over kids (1 or 2 args)
  Cmp,         // kids[0] <cmp> kids[1]           (boolean)
  BoolBin,     // kids[0] &&/|| kids[1]           (boolean)
  BoolNot,     // !kids[0]                        (boolean)
  BoolToFp,    // (T)(bool) — if-conversion predicate materialization
};

enum class BinOp : std::uint8_t { Add, Sub, Mul, Div };
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };
enum class BoolOp : std::uint8_t { And, Or };

/// The C math library subset Varity draws from (paper Table III:
/// "functions from the C math library").  FP32 variants append 'f' in
/// emitted source (cosf, fmodf, ...).
enum class MathFn : std::uint8_t {
  Fabs, Sqrt, Exp, Log, Sin, Cos, Tan, Asin, Acos, Atan,
  Sinh, Cosh, Tanh, Ceil, Floor, Trunc,
  Fmod, Pow, Fmin, Fmax,
};

/// Number of arguments `fn` takes (1 or 2).
int arity(MathFn fn) noexcept;
/// C99 name ("fmod"); FP32 spelling appends 'f'.
std::string name_of(MathFn fn, Precision p = Precision::FP64);

const char* spelling(BinOp op) noexcept;
const char* spelling(CmpOp op) noexcept;
const char* spelling(BoolOp op) noexcept;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind{};
  // --- payload (which fields are live depends on `kind`) ---
  double lit_value = 0.0;   ///< Literal: value (already rounded to Precision)
  std::string lit_text;     ///< Literal: source spelling ("+1.5955E-125")
  int index = -1;           ///< ParamRef/ArrayRef/LoopVarRef/TempRef/IntParamRef
  BinOp bin_op{};           ///< Bin
  CmpOp cmp_op{};           ///< Cmp
  BoolOp bool_op{};         ///< BoolBin
  MathFn fn{};              ///< Call
  std::vector<ExprPtr> kids;

  Expr() = default;
  explicit Expr(ExprKind k) : kind(k) {}

  ExprPtr clone() const;
  bool is_bool_valued() const noexcept {
    return kind == ExprKind::Cmp || kind == ExprKind::BoolBin ||
           kind == ExprKind::BoolNot;
  }
  /// Total node count of this subtree.
  std::size_t node_count() const noexcept;
  /// Structural equality (ignores literal spelling, compares values by bits).
  bool equals(const Expr& other) const noexcept;
};

// --- constructors (free functions keep call sites terse) ---
ExprPtr make_literal(double value, std::string text = {});
ExprPtr make_param(int index);
ExprPtr make_int_param(int index);
ExprPtr make_array(int index, ExprPtr subscript);
ExprPtr make_loop_var(int depth);
ExprPtr make_temp(int id);
ExprPtr make_neg(ExprPtr a);
ExprPtr make_bin(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr make_fma(ExprPtr a, ExprPtr b, ExprPtr c);
ExprPtr make_call(MathFn fn, ExprPtr a);
ExprPtr make_call(MathFn fn, ExprPtr a, ExprPtr b);
ExprPtr make_cmp(CmpOp op, ExprPtr a, ExprPtr b);
ExprPtr make_bool(BoolOp op, ExprPtr a, ExprPtr b);
ExprPtr make_not(ExprPtr a);
ExprPtr make_bool_to_fp(ExprPtr cond);

}  // namespace gpudiff::ir
