#pragma once
// Expression IR for Varity-style test kernels.
//
// Nodes are flat, trivially-copyable records that live in a Program-owned
// Arena (ir/arena.hpp) and reference their children through 32-bit ExprId
// handles instead of owning pointers.  One tagged struct (not a class
// hierarchy) keeps the tree cheap to walk and serialize — the optimizer and
// interpreter are simple switches over ids — and the flat pool makes
// copying a program (once per optimization level per toolchain in a
// campaign) a handful of vector copies instead of a recursive clone.
// Expressions are floating-point-valued except Cmp/BoolBin/BoolNot which
// are boolean-valued and may appear only in `if`/`for` conditions or under
// BoolToFp (the if-conversion artifact, §Case Study 3).

#include <cstdint>
#include <string>
#include <type_traits>

namespace gpudiff::ir {

enum class Precision : std::uint8_t { FP32, FP64 };
std::string to_string(Precision p);
/// Inverse of to_string; returns false on anything but "FP32"/"FP64".
bool parse_precision(const std::string& text, Precision* out);

enum class ExprKind : std::uint8_t {
  Literal,     // floating constant (value + original spelling)
  ParamRef,    // kernel scalar parameter (index into Program::params)
  ArrayRef,    // array parameter element: params[index][ kid[0] ]
  LoopVarRef,  // loop induction variable at nesting depth `index`
  TempRef,     // temporary variable tmp_<index>
  IntParamRef, // integer parameter used arithmetically (rare; loop bounds)
  Neg,         // -kid[0]
  Bin,         // kid[0] <bin_op> kid[1]
  Fma,         // fma(kid[0], kid[1], kid[2]) — produced by contraction
  Call,        // math fn over kids (1 or 2 args)
  Cmp,         // kid[0] <cmp> kid[1]             (boolean)
  BoolBin,     // kid[0] &&/|| kid[1]             (boolean)
  BoolNot,     // !kid[0]                         (boolean)
  BoolToFp,    // (T)(bool) — if-conversion predicate materialization
};

enum class BinOp : std::uint8_t { Add, Sub, Mul, Div };
enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };
enum class BoolOp : std::uint8_t { And, Or };

/// The C math library subset Varity draws from (paper Table III:
/// "functions from the C math library").  FP32 variants append 'f' in
/// emitted source (cosf, fmodf, ...).
enum class MathFn : std::uint8_t {
  Fabs, Sqrt, Exp, Log, Sin, Cos, Tan, Asin, Acos, Atan,
  Sinh, Cosh, Tanh, Ceil, Floor, Trunc,
  Fmod, Pow, Fmin, Fmax,
};

/// Number of arguments `fn` takes (1 or 2).
int arity(MathFn fn) noexcept;
/// C99 name ("fmod"); FP32 spelling appends 'f'.
std::string name_of(MathFn fn, Precision p = Precision::FP64);

const char* spelling(BinOp op) noexcept;
const char* spelling(CmpOp op) noexcept;
const char* spelling(BoolOp op) noexcept;

/// Handle to an Expr inside an Arena.  Default-constructed ids are invalid
/// (the "no expression" state of Stmt::a/b).
struct ExprId {
  std::uint32_t v = 0xFFFFFFFFu;
  constexpr bool valid() const noexcept { return v != 0xFFFFFFFFu; }
  constexpr explicit operator bool() const noexcept { return valid(); }
  friend constexpr bool operator==(ExprId, ExprId) noexcept = default;
};

/// Widest node: Fma has three children.
inline constexpr int kMaxExprKids = 3;

struct Expr {
  ExprKind kind{};
  std::uint8_t n_kids = 0;
  // --- payload (which fields are live depends on `kind`) ---
  BinOp bin_op{};           ///< Bin
  CmpOp cmp_op{};           ///< Cmp
  BoolOp bool_op{};         ///< BoolBin
  MathFn fn{};              ///< Call
  std::int32_t index = -1;  ///< ParamRef/ArrayRef/LoopVarRef/TempRef/IntParamRef
  double lit_value = 0.0;   ///< Literal: value (already rounded to Precision)
  std::uint32_t text_off = 0;  ///< Literal spelling: span into the Arena
  std::uint32_t text_len = 0;  ///< text pool ("+1.5955E-125"); len 0 = none
  ExprId kid[kMaxExprKids]{};

  bool is_bool_valued() const noexcept {
    return kind == ExprKind::Cmp || kind == ExprKind::BoolBin ||
           kind == ExprKind::BoolNot;
  }
};

// Program copies are flat pool copies; node records must stay memcpy-able.
static_assert(std::is_trivially_copyable_v<Expr>);

}  // namespace gpudiff::ir
