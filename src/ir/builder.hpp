#pragma once
// Fluent construction of kernels: used by hand-written example kernels
// (port_audit, Table I's mini-ADI kernel) and by the random generator.
//
//   ProgramBuilder b(Precision::FP64);
//   int n = b.add_int_param();
//   int x = b.add_scalar_param();
//   b.begin_for(n);
//   b.assign_comp(AssignOp::Add, make_call(MathFn::Sqrt, make_param(x)));
//   b.end_block();
//   Program p = b.build();

#include <stdexcept>
#include <vector>

#include "ir/program.hpp"

namespace gpudiff::ir {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Precision precision);

  /// Parameter declaration; returns the parameter index usable in
  /// make_param/make_int_param/make_array. Parameters are named var_1..var_N
  /// in declaration order (comp is parameter 0).
  int add_int_param();
  int add_scalar_param();
  int add_array_param();

  /// Declare a fresh temporary initialized with `init`; returns its id.
  int decl_temp(ExprPtr init);

  void assign_comp(AssignOp op, ExprPtr value);
  void store_array(int array_param, ExprPtr subscript, ExprPtr value);

  /// Open a counted loop over the given int parameter. Nesting depth is
  /// tracked automatically (i, j, k, ...). Close with end_block().
  void begin_for(int bound_param);
  /// Open a guarded block. Close with end_block().
  void begin_if(ExprPtr cond);
  void end_block();

  /// Current loop nesting depth (0 outside any loop).
  int loop_depth() const noexcept { return loop_depth_; }

  /// Finalize; throws if blocks remain open.
  Program build();

 private:
  void append(StmtPtr s);

  Precision precision_;
  std::vector<Param> params_;
  std::vector<StmtPtr> top_;
  // Stack of open structured statements; statements append to the innermost.
  std::vector<Stmt*> open_;
  int next_temp_ = 1;
  int loop_depth_ = 0;
  bool built_ = false;
};

}  // namespace gpudiff::ir
