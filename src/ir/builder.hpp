#pragma once
// Fluent construction of kernels: used by hand-written example kernels
// (port_audit, Table I's mini-ADI kernel) and by tests.
//
//   ProgramBuilder b(Precision::FP64);
//   ir::Arena& A = b.arena();
//   int n = b.add_int_param();
//   int x = b.add_scalar_param();
//   b.begin_for(n);
//   b.assign_comp(AssignOp::Add, make_call(A, MathFn::Sqrt, make_param(A, x)));
//   b.end_block();
//   Program p = b.build();
//
// Expressions are allocated into the builder's arena (exposed via arena()),
// which build() moves into the finished Program.

#include <stdexcept>
#include <vector>

#include "ir/program.hpp"

namespace gpudiff::ir {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Precision precision);

  /// The arena expression operands must be allocated into.
  Arena& arena() noexcept { return arena_; }

  /// Parameter declaration; returns the parameter index usable in
  /// make_param/make_int_param/make_array. Parameters are named var_1..var_N
  /// in declaration order (comp is parameter 0).
  int add_int_param();
  int add_scalar_param();
  int add_array_param();

  /// Declare a fresh temporary initialized with `init`; returns its id.
  int decl_temp(ExprId init);

  void assign_comp(AssignOp op, ExprId value);
  void store_array(int array_param, ExprId subscript, ExprId value);

  /// Open a counted loop over the given int parameter. Nesting depth is
  /// tracked automatically (i, j, k, ...). Close with end_block().
  void begin_for(int bound_param);
  /// Open a guarded block. Close with end_block().
  void begin_if(ExprId cond);
  void end_block();

  /// Current loop nesting depth (0 outside any loop).
  int loop_depth() const noexcept { return loop_depth_; }

  /// Finalize; throws if blocks remain open.
  Program build();

 private:
  void append(StmtId s);

  /// An open For/If whose body statements are collected here until
  /// end_block() flushes them into the arena's contiguous list pool.
  struct OpenBlock {
    StmtId id;
    std::vector<StmtId> body;
  };

  Precision precision_;
  Arena arena_;
  std::vector<Param> params_;
  std::vector<StmtId> top_;
  std::vector<OpenBlock> open_;
  int next_temp_ = 1;
  int loop_depth_ = 0;
  bool built_ = false;
};

}  // namespace gpudiff::ir
