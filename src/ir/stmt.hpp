#pragma once
// Statement IR: the structured constructs of Varity kernels (Table III) —
// temporary declarations, compound assignments to the `comp` accumulator,
// array stores, counted `for` loops and `if` guards (no else branch).
//
// Like Expr, statements are flat trivially-copyable records in the Arena.
// Structured bodies (For/If) are contiguous StmtId spans in the Arena's
// statement-list pool, addressed by (body_off, body_len).

#include "ir/expr.hpp"

namespace gpudiff::ir {

enum class StmtKind : std::uint8_t {
  DeclTemp,    // double tmp_<index> = <a>;
  AssignComp,  // comp <assign_op> <a>;
  StoreArray,  // params[index][ <a> ] = <b>;
  For,         // for (int i<index> = 0; i<index> < var_<bound>; ++i<index>) body
  If,          // if (<a>) body
};

/// Assignment operators Varity emits for `comp`.
enum class AssignOp : std::uint8_t { Set, Add, Sub, Mul, Div };
const char* spelling(AssignOp op) noexcept;

/// Handle to a Stmt inside an Arena.
struct StmtId {
  std::uint32_t v = 0xFFFFFFFFu;
  constexpr bool valid() const noexcept { return v != 0xFFFFFFFFu; }
  constexpr explicit operator bool() const noexcept { return valid(); }
  friend constexpr bool operator==(StmtId, StmtId) noexcept = default;
};

struct Stmt {
  StmtKind kind{};
  AssignOp assign_op = AssignOp::Set;  ///< AssignComp
  std::int32_t index = -1;       ///< DeclTemp: temp id; StoreArray: param; For: depth
  std::int32_t bound_param = -1; ///< For: index of the int parameter bounding the loop
  ExprId a;                      ///< init / value / subscript / condition
  ExprId b;                      ///< StoreArray value
  std::uint32_t body_off = 0;    ///< For / If: span into the Arena list pool
  std::uint32_t body_len = 0;
};

static_assert(std::is_trivially_copyable_v<Stmt>);

}  // namespace gpudiff::ir
