#pragma once
// Statement IR: the structured constructs of Varity kernels (Table III) —
// temporary declarations, compound assignments to the `comp` accumulator,
// array stores, counted `for` loops and `if` guards (no else branch).

#include <memory>
#include <vector>

#include "ir/expr.hpp"

namespace gpudiff::ir {

enum class StmtKind : std::uint8_t {
  DeclTemp,    // double tmp_<index> = <a>;
  AssignComp,  // comp <assign_op> <a>;
  StoreArray,  // params[index][ <a> ] = <b>;
  For,         // for (int i<index> = 0; i<index> < var_<bound>; ++i<index>) body
  If,          // if (<a>) body
};

/// Assignment operators Varity emits for `comp`.
enum class AssignOp : std::uint8_t { Set, Add, Sub, Mul, Div };
const char* spelling(AssignOp op) noexcept;

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind{};
  int index = -1;        ///< DeclTemp: temp id; StoreArray: param; For: depth
  int bound_param = -1;  ///< For: index of the integer parameter bounding the loop
  AssignOp assign_op = AssignOp::Set;  ///< AssignComp
  ExprPtr a;             ///< init / value / subscript / condition
  ExprPtr b;             ///< StoreArray value
  std::vector<StmtPtr> body;  ///< For / If

  Stmt() = default;
  explicit Stmt(StmtKind k) : kind(k) {}

  StmtPtr clone() const;
  std::size_t node_count() const noexcept;
};

StmtPtr make_decl_temp(int id, ExprPtr init);
StmtPtr make_assign_comp(AssignOp op, ExprPtr value);
StmtPtr make_store_array(int param_index, ExprPtr subscript, ExprPtr value);
StmtPtr make_for(int depth, int bound_param, std::vector<StmtPtr> body);
StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> body);

std::vector<StmtPtr> clone_body(const std::vector<StmtPtr>& body);

}  // namespace gpudiff::ir
