#pragma once
// Structural program mutations for the discrepancy reducer (src/reduce).
//
// A mutation is described by an edit plan over the *original* program and
// applied by rebuilding the whole kernel into a fresh Arena — a cheap flat
// pool rebuild, the same economics as Program::compact().  The source
// program is never modified, so the reducer can propose candidates freely
// and keep the original as the reference for every differential re-check.
//
// Supported edits:
//   * Drop       — delete a statement (and its whole subtree),
//   * InlineBody — replace a For/If by its body (guard/loop head removed),
//   * Unroll     — replace a For by `unroll_trip` copies of its body with
//                  the induction variable substituted by literal values,
//   * ExprEditPlan — replace one expression node by a literal constant or
//                  by one of its children (hoisting).
//
// Plans are indexed by StmtId/ExprId slots of the source program; the
// rebuilt program is compact by construction (only reachable nodes are
// cloned, in deterministic depth-first order).

#include <optional>
#include <vector>

#include "ir/program.hpp"

namespace gpudiff::ir {

/// Per-statement actions for one rebuild.  Slots not present in `actions`
/// default to Keep, so `none(p)` plans are cheap to copy and specialise.
struct StmtEditPlan {
  enum class Action : std::uint8_t { Keep, Drop, InlineBody, Unroll };

  std::vector<Action> actions;  ///< indexed by StmtId.v (source arena slot)
  int unroll_trip = 0;          ///< trip count applied to Unroll actions

  Action action_of(StmtId id) const noexcept {
    return id.v < actions.size() ? actions[id.v] : Action::Keep;
  }

  static StmtEditPlan none(const Program& p) {
    StmtEditPlan plan;
    plan.actions.assign(p.arena().stmt_count(), Action::Keep);
    return plan;
  }
};

/// At most one expression rewrite per rebuild: replace `target` either by
/// a fresh literal (`to_literal`) or by its `child`-th kid.  A
/// default-constructed plan (invalid target) edits nothing.
struct ExprEditPlan {
  ExprId target;           ///< invalid = no expression edit
  bool to_literal = true;  ///< literal replacement vs child hoist
  double literal = 0.0;    ///< value when to_literal
  int child = 0;           ///< kid index when !to_literal
};

/// Rebuild `p` under the two plans into a fresh compact arena.  Params and
/// precision are copied unchanged so existing KernelArgs stay valid for
/// the result.  Dropping a DeclTemp whose temporary is still referenced
/// elsewhere yields a structurally *invalid* program (dangling TempRef);
/// callers screen with max_temp_ref() or treat the runtime failure as a
/// rejected candidate.
Program apply_edits(const Program& p, const StmtEditPlan& stmts,
                    const ExprEditPlan& expr = {});

/// All statements of `p` in deterministic pre-order (each For/If before
/// its body).  This is the canonical statement enumeration the reducer's
/// delta-debugging loop chunks over.
std::vector<StmtId> preorder_statements(const Program& p);

/// Highest temporary id referenced by any reachable TempRef (-1 if none).
/// A program is temp-consistent iff max_temp_ref(p) <= p.max_temp_id().
int max_temp_ref(const Program& p);

}  // namespace gpudiff::ir
