#include "ir/builder.hpp"

namespace gpudiff::ir {

ProgramBuilder::ProgramBuilder(Precision precision) : precision_(precision) {
  params_.push_back({ParamKind::Comp, "comp"});
}

int ProgramBuilder::add_int_param() {
  params_.push_back({ParamKind::Int, "var_" + std::to_string(params_.size())});
  return static_cast<int>(params_.size()) - 1;
}

int ProgramBuilder::add_scalar_param() {
  params_.push_back({ParamKind::Scalar, "var_" + std::to_string(params_.size())});
  return static_cast<int>(params_.size()) - 1;
}

int ProgramBuilder::add_array_param() {
  params_.push_back({ParamKind::Array, "var_" + std::to_string(params_.size())});
  return static_cast<int>(params_.size()) - 1;
}

void ProgramBuilder::append(StmtPtr s) {
  if (built_) throw std::logic_error("ProgramBuilder: already built");
  if (open_.empty())
    top_.push_back(std::move(s));
  else
    open_.back()->body.push_back(std::move(s));
}

int ProgramBuilder::decl_temp(ExprPtr init) {
  const int id = next_temp_++;
  append(make_decl_temp(id, std::move(init)));
  return id;
}

void ProgramBuilder::assign_comp(AssignOp op, ExprPtr value) {
  append(make_assign_comp(op, std::move(value)));
}

void ProgramBuilder::store_array(int array_param, ExprPtr subscript, ExprPtr value) {
  if (params_.at(static_cast<std::size_t>(array_param)).kind != ParamKind::Array)
    throw std::logic_error("ProgramBuilder: store target is not an array param");
  append(make_store_array(array_param, std::move(subscript), std::move(value)));
}

void ProgramBuilder::begin_for(int bound_param) {
  if (params_.at(static_cast<std::size_t>(bound_param)).kind != ParamKind::Int)
    throw std::logic_error("ProgramBuilder: loop bound is not an int param");
  auto s = make_for(loop_depth_, bound_param, {});
  Stmt* raw = s.get();
  append(std::move(s));
  open_.push_back(raw);
  ++loop_depth_;
}

void ProgramBuilder::begin_if(ExprPtr cond) {
  if (!cond->is_bool_valued())
    throw std::logic_error("ProgramBuilder: if condition must be boolean-valued");
  auto s = make_if(std::move(cond), {});
  Stmt* raw = s.get();
  append(std::move(s));
  open_.push_back(raw);
}

void ProgramBuilder::end_block() {
  if (open_.empty()) throw std::logic_error("ProgramBuilder: no open block");
  if (open_.back()->kind == StmtKind::For) --loop_depth_;
  open_.pop_back();
}

Program ProgramBuilder::build() {
  if (!open_.empty()) throw std::logic_error("ProgramBuilder: unclosed block");
  built_ = true;
  return Program(precision_, std::move(params_), std::move(top_));
}

}  // namespace gpudiff::ir
