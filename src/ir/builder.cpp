#include "ir/builder.hpp"

namespace gpudiff::ir {

ProgramBuilder::ProgramBuilder(Precision precision) : precision_(precision) {
  params_.push_back({ParamKind::Comp, "comp"});
}

int ProgramBuilder::add_int_param() {
  params_.push_back({ParamKind::Int, "var_" + std::to_string(params_.size())});
  return static_cast<int>(params_.size()) - 1;
}

int ProgramBuilder::add_scalar_param() {
  params_.push_back({ParamKind::Scalar, "var_" + std::to_string(params_.size())});
  return static_cast<int>(params_.size()) - 1;
}

int ProgramBuilder::add_array_param() {
  params_.push_back({ParamKind::Array, "var_" + std::to_string(params_.size())});
  return static_cast<int>(params_.size()) - 1;
}

void ProgramBuilder::append(StmtId s) {
  if (built_) throw std::logic_error("ProgramBuilder: already built");
  if (open_.empty())
    top_.push_back(s);
  else
    open_.back().body.push_back(s);
}

int ProgramBuilder::decl_temp(ExprId init) {
  const int id = next_temp_++;
  append(make_decl_temp(arena_, id, init));
  return id;
}

void ProgramBuilder::assign_comp(AssignOp op, ExprId value) {
  append(make_assign_comp(arena_, op, value));
}

void ProgramBuilder::store_array(int array_param, ExprId subscript, ExprId value) {
  if (params_.at(static_cast<std::size_t>(array_param)).kind != ParamKind::Array)
    throw std::logic_error("ProgramBuilder: store target is not an array param");
  append(make_store_array(arena_, array_param, subscript, value));
}

void ProgramBuilder::begin_for(int bound_param) {
  if (params_.at(static_cast<std::size_t>(bound_param)).kind != ParamKind::Int)
    throw std::logic_error("ProgramBuilder: loop bound is not an int param");
  const StmtId s = make_for(arena_, loop_depth_, bound_param, {});
  append(s);
  open_.push_back({s, {}});
  ++loop_depth_;
}

void ProgramBuilder::begin_if(ExprId cond) {
  if (!arena_[cond].is_bool_valued())
    throw std::logic_error("ProgramBuilder: if condition must be boolean-valued");
  const StmtId s = make_if(arena_, cond, {});
  append(s);
  open_.push_back({s, {}});
}

void ProgramBuilder::end_block() {
  if (open_.empty()) throw std::logic_error("ProgramBuilder: no open block");
  OpenBlock& blk = open_.back();
  if (arena_[blk.id].kind == StmtKind::For) --loop_depth_;
  arena_.set_body(arena_[blk.id], blk.body);
  open_.pop_back();
}

Program ProgramBuilder::build() {
  if (!open_.empty()) throw std::logic_error("ProgramBuilder: unclosed block");
  built_ = true;
  return Program(precision_, std::move(params_), std::move(arena_),
                 std::move(top_));
}

}  // namespace gpudiff::ir
