#include "ir/mutate.hpp"

#include <utility>

namespace gpudiff::ir {
namespace {

/// Innermost-first substitution environment for unrolled loop variables:
/// (loop depth, literal trip value).  Depths are unique per active nest
/// level, so a linear scan from the back finds the innermost binding.
using LoopSubst = std::vector<std::pair<int, int>>;

struct Rebuilder {
  const Program& src;
  const StmtEditPlan& plan;
  const ExprEditPlan& expr_edit;
  Arena dst;

  ExprId clone_expr(ExprId id, const LoopSubst& subst) {
    if (id == expr_edit.target) {
      if (expr_edit.to_literal) return make_literal(dst, expr_edit.literal);
      const Expr e = src.expr(id);  // by-value: add() may reallocate
      return clone_plain(e, subst, e.kid[expr_edit.child]);
    }
    const Expr e = src.expr(id);
    if (e.kind == ExprKind::LoopVarRef) {
      for (auto it = subst.rbegin(); it != subst.rend(); ++it)
        if (it->first == e.index)
          return make_literal(dst, static_cast<double>(it->second));
    }
    return clone_plain(e, subst, ExprId{});
  }

  /// Copy `e` (or, when `replace_with` is valid, the subtree it names)
  /// into dst with kids cloned and the literal spelling preserved.
  ExprId clone_plain(const Expr& e, const LoopSubst& subst,
                     ExprId replace_with) {
    if (replace_with.valid()) return clone_expr(replace_with, subst);
    Expr out = e;
    out.text_off = 0;
    out.text_len = 0;
    for (int k = 0; k < e.n_kids; ++k) out.kid[k] = clone_expr(e.kid[k], subst);
    const std::string_view spelling = src.arena().text(e);
    if (!spelling.empty()) dst.set_text(out, spelling);
    return dst.add(out);
  }

  void clone_body(std::span<const StmtId> body, const LoopSubst& subst,
                  std::vector<StmtId>& out) {
    for (StmtId sid : body) clone_stmt(sid, subst, out);
  }

  void clone_stmt(StmtId sid, const LoopSubst& subst,
                  std::vector<StmtId>& out) {
    const auto action = plan.action_of(sid);
    if (action == StmtEditPlan::Action::Drop) return;
    const Stmt s = src.stmt(sid);  // by-value: add() may reallocate
    switch (s.kind) {
      case StmtKind::DeclTemp:
        out.push_back(make_decl_temp(dst, s.index, clone_expr(s.a, subst)));
        return;
      case StmtKind::AssignComp:
        out.push_back(make_assign_comp(dst, s.assign_op,
                                       clone_expr(s.a, subst)));
        return;
      case StmtKind::StoreArray:
        out.push_back(make_store_array(dst, s.index, clone_expr(s.a, subst),
                                       clone_expr(s.b, subst)));
        return;
      case StmtKind::For: {
        if (action == StmtEditPlan::Action::InlineBody) {
          // Body spliced without the loop head; any surviving LoopVarRef
          // reads the interpreter's zero-initialised induction slot.
          clone_body(src.body_of(s), subst, out);
          return;
        }
        if (action == StmtEditPlan::Action::Unroll) {
          LoopSubst inner = subst;
          inner.emplace_back(s.index, 0);
          for (int trip = 0; trip < plan.unroll_trip; ++trip) {
            inner.back().second = trip;
            clone_body(src.body_of(s), inner, out);
          }
          return;
        }
        std::vector<StmtId> body;
        clone_body(src.body_of(s), subst, body);
        out.push_back(make_for(dst, s.index, s.bound_param, body));
        return;
      }
      case StmtKind::If: {
        if (action == StmtEditPlan::Action::InlineBody ||
            action == StmtEditPlan::Action::Unroll) {
          clone_body(src.body_of(s), subst, out);
          return;
        }
        const ExprId cond = clone_expr(s.a, subst);
        std::vector<StmtId> body;
        clone_body(src.body_of(s), subst, body);
        out.push_back(make_if(dst, cond, body));
        return;
      }
    }
  }
};

}  // namespace

Program apply_edits(const Program& p, const StmtEditPlan& stmts,
                    const ExprEditPlan& expr) {
  Rebuilder rb{p, stmts, expr, Arena{}};
  rb.dst.reserve(p.arena().expr_count(), p.arena().stmt_count(), 64);
  std::vector<StmtId> body;
  rb.clone_body(p.body(), LoopSubst{}, body);
  return Program(p.precision(), p.params(), std::move(rb.dst),
                 std::move(body));
}

std::vector<StmtId> preorder_statements(const Program& p) {
  std::vector<StmtId> out;
  out.reserve(p.arena().stmt_count());
  // Explicit stack of spans keeps arbitrarily deep hand-built IR safe.
  struct Frame {
    std::span<const StmtId> body;
    std::size_t next;
  };
  std::vector<Frame> stack;
  stack.push_back({p.body(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next >= top.body.size()) {
      stack.pop_back();
      continue;
    }
    const StmtId sid = top.body[top.next++];
    out.push_back(sid);
    const Stmt& s = p.stmt(sid);
    if (s.kind == StmtKind::For || s.kind == StmtKind::If)
      stack.push_back({p.body_of(s), 0});
  }
  return out;
}

int max_temp_ref(const Program& p) {
  int max_ref = -1;
  std::vector<ExprId> work;
  const auto push_expr = [&](ExprId id) {
    if (id.valid()) work.push_back(id);
  };
  for (StmtId sid : preorder_statements(p)) {
    const Stmt& s = p.stmt(sid);
    push_expr(s.a);
    push_expr(s.b);
  }
  while (!work.empty()) {
    const Expr& e = p.expr(work.back());
    work.pop_back();
    if (e.kind == ExprKind::TempRef && e.index > max_ref) max_ref = e.index;
    for (int k = 0; k < e.n_kids; ++k) work.push_back(e.kid[k]);
  }
  return max_ref;
}

}  // namespace gpudiff::ir
