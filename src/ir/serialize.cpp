#include "ir/serialize.hpp"

#include <stdexcept>

#include "fp/hexfloat.hpp"

namespace gpudiff::ir {

using support::Json;
using support::JsonArray;

namespace {

const char* expr_tag(ExprKind k) {
  switch (k) {
    case ExprKind::Literal: return "lit";
    case ExprKind::ParamRef: return "param";
    case ExprKind::ArrayRef: return "array";
    case ExprKind::LoopVarRef: return "loopvar";
    case ExprKind::TempRef: return "temp";
    case ExprKind::IntParamRef: return "iparam";
    case ExprKind::Neg: return "neg";
    case ExprKind::Bin: return "bin";
    case ExprKind::Fma: return "fma";
    case ExprKind::Call: return "call";
    case ExprKind::Cmp: return "cmp";
    case ExprKind::BoolBin: return "bool";
    case ExprKind::BoolNot: return "not";
    case ExprKind::BoolToFp: return "b2f";
  }
  return "?";
}

ExprKind expr_kind_of(const std::string& tag) {
  if (tag == "lit") return ExprKind::Literal;
  if (tag == "param") return ExprKind::ParamRef;
  if (tag == "array") return ExprKind::ArrayRef;
  if (tag == "loopvar") return ExprKind::LoopVarRef;
  if (tag == "temp") return ExprKind::TempRef;
  if (tag == "iparam") return ExprKind::IntParamRef;
  if (tag == "neg") return ExprKind::Neg;
  if (tag == "bin") return ExprKind::Bin;
  if (tag == "fma") return ExprKind::Fma;
  if (tag == "call") return ExprKind::Call;
  if (tag == "cmp") return ExprKind::Cmp;
  if (tag == "bool") return ExprKind::BoolBin;
  if (tag == "not") return ExprKind::BoolNot;
  if (tag == "b2f") return ExprKind::BoolToFp;
  throw std::runtime_error("ir: unknown expr tag '" + tag + "'");
}

}  // namespace

Json expr_to_json(const Expr& e) {
  Json j = Json::object();
  j["k"] = expr_tag(e.kind);
  switch (e.kind) {
    case ExprKind::Literal:
      j["v"] = fp::encode_bits(e.lit_value);
      if (!e.lit_text.empty()) j["t"] = e.lit_text;
      break;
    case ExprKind::ParamRef:
    case ExprKind::ArrayRef:
    case ExprKind::LoopVarRef:
    case ExprKind::TempRef:
    case ExprKind::IntParamRef:
      j["i"] = e.index;
      break;
    case ExprKind::Bin:
      j["op"] = spelling(e.bin_op);
      break;
    case ExprKind::Cmp:
      j["op"] = spelling(e.cmp_op);
      break;
    case ExprKind::BoolBin:
      j["op"] = spelling(e.bool_op);
      break;
    case ExprKind::Call:
      j["fn"] = name_of(e.fn);
      break;
    default:
      break;
  }
  if (!e.kids.empty()) {
    Json kids = Json::array();
    for (const auto& k : e.kids) kids.push_back(expr_to_json(*k));
    j["a"] = std::move(kids);
  }
  return j;
}

namespace {

BinOp bin_of(const std::string& s) {
  if (s == "+") return BinOp::Add;
  if (s == "-") return BinOp::Sub;
  if (s == "*") return BinOp::Mul;
  if (s == "/") return BinOp::Div;
  throw std::runtime_error("ir: unknown binop " + s);
}

CmpOp cmp_of(const std::string& s) {
  if (s == "==") return CmpOp::Eq;
  if (s == "!=") return CmpOp::Ne;
  if (s == "<") return CmpOp::Lt;
  if (s == "<=") return CmpOp::Le;
  if (s == ">") return CmpOp::Gt;
  if (s == ">=") return CmpOp::Ge;
  throw std::runtime_error("ir: unknown cmpop " + s);
}

MathFn fn_of(const std::string& s) {
  static const std::pair<const char*, MathFn> table[] = {
      {"fabs", MathFn::Fabs}, {"sqrt", MathFn::Sqrt}, {"exp", MathFn::Exp},
      {"log", MathFn::Log},   {"sin", MathFn::Sin},   {"cos", MathFn::Cos},
      {"tan", MathFn::Tan},   {"asin", MathFn::Asin}, {"acos", MathFn::Acos},
      {"atan", MathFn::Atan}, {"sinh", MathFn::Sinh}, {"cosh", MathFn::Cosh},
      {"tanh", MathFn::Tanh}, {"ceil", MathFn::Ceil}, {"floor", MathFn::Floor},
      {"trunc", MathFn::Trunc}, {"fmod", MathFn::Fmod}, {"pow", MathFn::Pow},
      {"fmin", MathFn::Fmin}, {"fmax", MathFn::Fmax},
  };
  for (const auto& [name, fn] : table)
    if (s == name) return fn;
  throw std::runtime_error("ir: unknown math fn " + s);
}

}  // namespace

ExprPtr expr_from_json(const Json& j) {
  auto e = std::make_unique<Expr>(expr_kind_of(j.at("k").as_string()));
  switch (e->kind) {
    case ExprKind::Literal: {
      auto v = fp::decode_bits64(j.at("v").as_string());
      if (!v) throw std::runtime_error("ir: bad literal bits");
      e->lit_value = *v;
      if (j.contains("t")) e->lit_text = j.at("t").as_string();
      break;
    }
    case ExprKind::ParamRef:
    case ExprKind::ArrayRef:
    case ExprKind::LoopVarRef:
    case ExprKind::TempRef:
    case ExprKind::IntParamRef:
      e->index = static_cast<int>(j.at("i").as_int());
      break;
    case ExprKind::Bin:
      e->bin_op = bin_of(j.at("op").as_string());
      break;
    case ExprKind::Cmp:
      e->cmp_op = cmp_of(j.at("op").as_string());
      break;
    case ExprKind::BoolBin:
      e->bool_op = j.at("op").as_string() == "&&" ? BoolOp::And : BoolOp::Or;
      break;
    case ExprKind::Call:
      e->fn = fn_of(j.at("fn").as_string());
      break;
    default:
      break;
  }
  if (j.contains("a"))
    for (const auto& kid : j.at("a").as_array())
      e->kids.push_back(expr_from_json(kid));
  return e;
}

Json stmt_to_json(const Stmt& s) {
  Json j = Json::object();
  switch (s.kind) {
    case StmtKind::DeclTemp:
      j["k"] = "decl";
      j["i"] = s.index;
      j["init"] = expr_to_json(*s.a);
      break;
    case StmtKind::AssignComp:
      j["k"] = "comp";
      j["op"] = spelling(s.assign_op);
      j["v"] = expr_to_json(*s.a);
      break;
    case StmtKind::StoreArray:
      j["k"] = "store";
      j["i"] = s.index;
      j["idx"] = expr_to_json(*s.a);
      j["v"] = expr_to_json(*s.b);
      break;
    case StmtKind::For: {
      j["k"] = "for";
      j["depth"] = s.index;
      j["bound"] = s.bound_param;
      Json body = Json::array();
      for (const auto& t : s.body) body.push_back(stmt_to_json(*t));
      j["body"] = std::move(body);
      break;
    }
    case StmtKind::If: {
      j["k"] = "if";
      j["cond"] = expr_to_json(*s.a);
      Json body = Json::array();
      for (const auto& t : s.body) body.push_back(stmt_to_json(*t));
      j["body"] = std::move(body);
      break;
    }
  }
  return j;
}

StmtPtr stmt_from_json(const Json& j) {
  const std::string& k = j.at("k").as_string();
  if (k == "decl")
    return make_decl_temp(static_cast<int>(j.at("i").as_int()),
                          expr_from_json(j.at("init")));
  if (k == "comp") {
    const std::string& op = j.at("op").as_string();
    AssignOp ao = AssignOp::Set;
    if (op == "+=") ao = AssignOp::Add;
    else if (op == "-=") ao = AssignOp::Sub;
    else if (op == "*=") ao = AssignOp::Mul;
    else if (op == "/=") ao = AssignOp::Div;
    else if (op != "=") throw std::runtime_error("ir: bad assign op " + op);
    return make_assign_comp(ao, expr_from_json(j.at("v")));
  }
  if (k == "store")
    return make_store_array(static_cast<int>(j.at("i").as_int()),
                            expr_from_json(j.at("idx")), expr_from_json(j.at("v")));
  if (k == "for") {
    std::vector<StmtPtr> body;
    for (const auto& t : j.at("body").as_array()) body.push_back(stmt_from_json(t));
    return make_for(static_cast<int>(j.at("depth").as_int()),
                    static_cast<int>(j.at("bound").as_int()), std::move(body));
  }
  if (k == "if") {
    std::vector<StmtPtr> body;
    for (const auto& t : j.at("body").as_array()) body.push_back(stmt_from_json(t));
    return make_if(expr_from_json(j.at("cond")), std::move(body));
  }
  throw std::runtime_error("ir: unknown stmt tag '" + k + "'");
}

Json program_to_json(const Program& p) {
  Json j = Json::object();
  j["precision"] = to_string(p.precision());
  Json params = Json::array();
  for (const auto& prm : p.params()) {
    Json pj = Json::object();
    switch (prm.kind) {
      case ParamKind::Comp: pj["kind"] = "comp"; break;
      case ParamKind::Int: pj["kind"] = "int"; break;
      case ParamKind::Scalar: pj["kind"] = "scalar"; break;
      case ParamKind::Array: pj["kind"] = "array"; break;
    }
    pj["name"] = prm.name;
    params.push_back(std::move(pj));
  }
  j["params"] = std::move(params);
  Json body = Json::array();
  for (const auto& s : p.body()) body.push_back(stmt_to_json(*s));
  j["body"] = std::move(body);
  return j;
}

Program program_from_json(const Json& j) {
  const Precision prec =
      j.at("precision").as_string() == "FP32" ? Precision::FP32 : Precision::FP64;
  std::vector<Param> params;
  for (const auto& pj : j.at("params").as_array()) {
    Param p;
    const std::string& kind = pj.at("kind").as_string();
    if (kind == "comp") p.kind = ParamKind::Comp;
    else if (kind == "int") p.kind = ParamKind::Int;
    else if (kind == "scalar") p.kind = ParamKind::Scalar;
    else if (kind == "array") p.kind = ParamKind::Array;
    else throw std::runtime_error("ir: bad param kind " + kind);
    p.name = pj.at("name").as_string();
    params.push_back(std::move(p));
  }
  std::vector<StmtPtr> body;
  for (const auto& sj : j.at("body").as_array()) body.push_back(stmt_from_json(sj));
  return Program(prec, std::move(params), std::move(body));
}

}  // namespace gpudiff::ir
