#include "ir/serialize.hpp"

#include <stdexcept>

#include "fp/hexfloat.hpp"

namespace gpudiff::ir {

using support::Json;
using support::JsonArray;

namespace {

const char* expr_tag(ExprKind k) {
  switch (k) {
    case ExprKind::Literal: return "lit";
    case ExprKind::ParamRef: return "param";
    case ExprKind::ArrayRef: return "array";
    case ExprKind::LoopVarRef: return "loopvar";
    case ExprKind::TempRef: return "temp";
    case ExprKind::IntParamRef: return "iparam";
    case ExprKind::Neg: return "neg";
    case ExprKind::Bin: return "bin";
    case ExprKind::Fma: return "fma";
    case ExprKind::Call: return "call";
    case ExprKind::Cmp: return "cmp";
    case ExprKind::BoolBin: return "bool";
    case ExprKind::BoolNot: return "not";
    case ExprKind::BoolToFp: return "b2f";
  }
  return "?";
}

ExprKind expr_kind_of(const std::string& tag) {
  if (tag == "lit") return ExprKind::Literal;
  if (tag == "param") return ExprKind::ParamRef;
  if (tag == "array") return ExprKind::ArrayRef;
  if (tag == "loopvar") return ExprKind::LoopVarRef;
  if (tag == "temp") return ExprKind::TempRef;
  if (tag == "iparam") return ExprKind::IntParamRef;
  if (tag == "neg") return ExprKind::Neg;
  if (tag == "bin") return ExprKind::Bin;
  if (tag == "fma") return ExprKind::Fma;
  if (tag == "call") return ExprKind::Call;
  if (tag == "cmp") return ExprKind::Cmp;
  if (tag == "bool") return ExprKind::BoolBin;
  if (tag == "not") return ExprKind::BoolNot;
  if (tag == "b2f") return ExprKind::BoolToFp;
  throw std::runtime_error("ir: unknown expr tag '" + tag + "'");
}

}  // namespace

Json expr_to_json(const Arena& a, ExprId id) {
  const Expr& e = a[id];
  Json j = Json::object();
  j["k"] = expr_tag(e.kind);
  switch (e.kind) {
    case ExprKind::Literal:
      j["v"] = fp::encode_bits(e.lit_value);
      if (e.text_len != 0) j["t"] = std::string(a.text(e));
      break;
    case ExprKind::ParamRef:
    case ExprKind::ArrayRef:
    case ExprKind::LoopVarRef:
    case ExprKind::TempRef:
    case ExprKind::IntParamRef:
      j["i"] = e.index;
      break;
    case ExprKind::Bin:
      j["op"] = spelling(e.bin_op);
      break;
    case ExprKind::Cmp:
      j["op"] = spelling(e.cmp_op);
      break;
    case ExprKind::BoolBin:
      j["op"] = spelling(e.bool_op);
      break;
    case ExprKind::Call:
      j["fn"] = name_of(e.fn);
      break;
    default:
      break;
  }
  if (e.n_kids != 0) {
    Json kids = Json::array();
    for (int i = 0; i < e.n_kids; ++i) kids.push_back(expr_to_json(a, e.kid[i]));
    j["a"] = std::move(kids);
  }
  return j;
}

namespace {

BinOp bin_of(const std::string& s) {
  if (s == "+") return BinOp::Add;
  if (s == "-") return BinOp::Sub;
  if (s == "*") return BinOp::Mul;
  if (s == "/") return BinOp::Div;
  throw std::runtime_error("ir: unknown binop " + s);
}

CmpOp cmp_of(const std::string& s) {
  if (s == "==") return CmpOp::Eq;
  if (s == "!=") return CmpOp::Ne;
  if (s == "<") return CmpOp::Lt;
  if (s == "<=") return CmpOp::Le;
  if (s == ">") return CmpOp::Gt;
  if (s == ">=") return CmpOp::Ge;
  throw std::runtime_error("ir: unknown cmpop " + s);
}

MathFn fn_of(const std::string& s) {
  static const std::pair<const char*, MathFn> table[] = {
      {"fabs", MathFn::Fabs}, {"sqrt", MathFn::Sqrt}, {"exp", MathFn::Exp},
      {"log", MathFn::Log},   {"sin", MathFn::Sin},   {"cos", MathFn::Cos},
      {"tan", MathFn::Tan},   {"asin", MathFn::Asin}, {"acos", MathFn::Acos},
      {"atan", MathFn::Atan}, {"sinh", MathFn::Sinh}, {"cosh", MathFn::Cosh},
      {"tanh", MathFn::Tanh}, {"ceil", MathFn::Ceil}, {"floor", MathFn::Floor},
      {"trunc", MathFn::Trunc}, {"fmod", MathFn::Fmod}, {"pow", MathFn::Pow},
      {"fmin", MathFn::Fmin}, {"fmax", MathFn::Fmax},
  };
  for (const auto& [name, fn] : table)
    if (s == name) return fn;
  throw std::runtime_error("ir: unknown math fn " + s);
}

}  // namespace

ExprId expr_from_json(Arena& a, const Json& j) {
  Expr e;
  e.kind = expr_kind_of(j.at("k").as_string());
  switch (e.kind) {
    case ExprKind::Literal: {
      auto v = fp::decode_bits64(j.at("v").as_string());
      if (!v) throw std::runtime_error("ir: bad literal bits");
      e.lit_value = *v;
      if (j.contains("t")) a.set_text(e, j.at("t").as_string());
      break;
    }
    case ExprKind::ParamRef:
    case ExprKind::ArrayRef:
    case ExprKind::LoopVarRef:
    case ExprKind::TempRef:
    case ExprKind::IntParamRef:
      e.index = static_cast<int>(j.at("i").as_int());
      break;
    case ExprKind::Bin:
      e.bin_op = bin_of(j.at("op").as_string());
      break;
    case ExprKind::Cmp:
      e.cmp_op = cmp_of(j.at("op").as_string());
      break;
    case ExprKind::BoolBin:
      e.bool_op = j.at("op").as_string() == "&&" ? BoolOp::And : BoolOp::Or;
      break;
    case ExprKind::Call:
      e.fn = fn_of(j.at("fn").as_string());
      break;
    default:
      break;
  }
  if (j.contains("a")) {
    for (const auto& kid : j.at("a").as_array()) {
      if (e.n_kids >= kMaxExprKids)
        throw std::runtime_error("ir: too many expr children");
      e.kid[e.n_kids++] = expr_from_json(a, kid);
    }
  }
  return a.add(e);
}

Json stmt_to_json(const Arena& a, StmtId id) {
  const Stmt& s = a[id];
  Json j = Json::object();
  switch (s.kind) {
    case StmtKind::DeclTemp:
      j["k"] = "decl";
      j["i"] = s.index;
      j["init"] = expr_to_json(a, s.a);
      break;
    case StmtKind::AssignComp:
      j["k"] = "comp";
      j["op"] = spelling(s.assign_op);
      j["v"] = expr_to_json(a, s.a);
      break;
    case StmtKind::StoreArray:
      j["k"] = "store";
      j["i"] = s.index;
      j["idx"] = expr_to_json(a, s.a);
      j["v"] = expr_to_json(a, s.b);
      break;
    case StmtKind::For: {
      j["k"] = "for";
      j["depth"] = s.index;
      j["bound"] = s.bound_param;
      Json body = Json::array();
      for (StmtId t : a.body(s)) body.push_back(stmt_to_json(a, t));
      j["body"] = std::move(body);
      break;
    }
    case StmtKind::If: {
      j["k"] = "if";
      j["cond"] = expr_to_json(a, s.a);
      Json body = Json::array();
      for (StmtId t : a.body(s)) body.push_back(stmt_to_json(a, t));
      j["body"] = std::move(body);
      break;
    }
  }
  return j;
}

StmtId stmt_from_json(Arena& a, const Json& j) {
  const std::string& k = j.at("k").as_string();
  if (k == "decl")
    return make_decl_temp(a, static_cast<int>(j.at("i").as_int()),
                          expr_from_json(a, j.at("init")));
  if (k == "comp") {
    const std::string& op = j.at("op").as_string();
    AssignOp ao = AssignOp::Set;
    if (op == "+=") ao = AssignOp::Add;
    else if (op == "-=") ao = AssignOp::Sub;
    else if (op == "*=") ao = AssignOp::Mul;
    else if (op == "/=") ao = AssignOp::Div;
    else if (op != "=") throw std::runtime_error("ir: bad assign op " + op);
    return make_assign_comp(a, ao, expr_from_json(a, j.at("v")));
  }
  if (k == "store") {
    const int index = static_cast<int>(j.at("i").as_int());
    const ExprId idx = expr_from_json(a, j.at("idx"));
    const ExprId v = expr_from_json(a, j.at("v"));
    return make_store_array(a, index, idx, v);
  }
  if (k == "for") {
    std::vector<StmtId> body;
    for (const auto& t : j.at("body").as_array()) body.push_back(stmt_from_json(a, t));
    return make_for(a, static_cast<int>(j.at("depth").as_int()),
                    static_cast<int>(j.at("bound").as_int()), body);
  }
  if (k == "if") {
    const ExprId cond = expr_from_json(a, j.at("cond"));
    std::vector<StmtId> body;
    for (const auto& t : j.at("body").as_array()) body.push_back(stmt_from_json(a, t));
    return make_if(a, cond, body);
  }
  throw std::runtime_error("ir: unknown stmt tag '" + k + "'");
}

Json program_to_json(const Program& p) {
  Json j = Json::object();
  j["precision"] = to_string(p.precision());
  Json params = Json::array();
  for (const auto& prm : p.params()) {
    Json pj = Json::object();
    switch (prm.kind) {
      case ParamKind::Comp: pj["kind"] = "comp"; break;
      case ParamKind::Int: pj["kind"] = "int"; break;
      case ParamKind::Scalar: pj["kind"] = "scalar"; break;
      case ParamKind::Array: pj["kind"] = "array"; break;
    }
    pj["name"] = prm.name;
    params.push_back(std::move(pj));
  }
  j["params"] = std::move(params);
  Json body = Json::array();
  for (StmtId s : p.body()) body.push_back(stmt_to_json(p.arena(), s));
  j["body"] = std::move(body);
  return j;
}

Program program_from_json(const Json& j) {
  Precision prec;
  if (!parse_precision(j.at("precision").as_string(), &prec))
    throw std::runtime_error("program_from_json: bad precision " +
                             j.at("precision").as_string());
  std::vector<Param> params;
  for (const auto& pj : j.at("params").as_array()) {
    Param p;
    const std::string& kind = pj.at("kind").as_string();
    if (kind == "comp") p.kind = ParamKind::Comp;
    else if (kind == "int") p.kind = ParamKind::Int;
    else if (kind == "scalar") p.kind = ParamKind::Scalar;
    else if (kind == "array") p.kind = ParamKind::Array;
    else throw std::runtime_error("ir: bad param kind " + kind);
    p.name = pj.at("name").as_string();
    params.push_back(std::move(p));
  }
  Arena arena;
  std::vector<StmtId> body;
  for (const auto& sj : j.at("body").as_array())
    body.push_back(stmt_from_json(arena, sj));
  return Program(prec, std::move(params), std::move(arena), std::move(body));
}

}  // namespace gpudiff::ir
