#pragma once
// Varity-style random program generator.
//
// Programs are a pure function of (config, seed, program_index): the same
// triple regenerates the same kernel bit-for-bit on any platform, which the
// between-platform protocol (paper Fig. 3) relies on.

#include <cstdint>

#include "gen/config.hpp"
#include "ir/program.hpp"
#include "support/rng.hpp"

namespace gpudiff::gen {

class Generator {
 public:
  Generator(GenConfig config, std::uint64_t seed)
      : config_(std::move(config)), seed_(seed) {}

  const GenConfig& config() const noexcept { return config_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Generate the index-th program of this (config, seed) stream.
  ir::Program generate(std::uint64_t program_index) const;

 private:
  GenConfig config_;
  std::uint64_t seed_;
};

/// Random Varity-style literal (value + source spelling), allocated into
/// `arena`.  Exposed for reuse by the input generator and tests.
ir::ExprId random_literal(ir::Arena& arena, support::Rng& rng,
                          ir::Precision precision);

}  // namespace gpudiff::gen
