#include "gen/config.hpp"

#include "support/strings.hpp"

namespace gpudiff::gen {

std::vector<ir::MathFn> GenConfig::default_functions() {
  using ir::MathFn;
  // All 20 libm functions; the ones scientific codes lean on hardest (and
  // the ones the paper's case studies revolve around: fmod, ceil, cos,
  // cosh) appear with higher weight, mirroring Varity's bias toward
  // numerically interesting calls.
  return {MathFn::Fabs, MathFn::Sqrt, MathFn::Exp,  MathFn::Log,
          MathFn::Sin,  MathFn::Cos,  MathFn::Tan,  MathFn::Asin,
          MathFn::Acos, MathFn::Atan, MathFn::Sinh, MathFn::Cosh,
          MathFn::Tanh, MathFn::Ceil, MathFn::Floor, MathFn::Trunc,
          MathFn::Fmod, MathFn::Pow,  MathFn::Fmin, MathFn::Fmax,
          // weighted repeats
          MathFn::Fmod, MathFn::Fmod, MathFn::Exp,  MathFn::Log,
          MathFn::Cos,  MathFn::Sin,  MathFn::Cosh, MathFn::Pow};
}

std::string GenConfig::describe() const {
  std::string fns;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (i) fns += ", ";
    fns += ir::name_of(functions[i]);
  }
  return support::format(
      "Floating-Point Types : %s variables (single configuration per test)\n"
      "Arithmetic Expressions: operators {+, -, *, /}, parentheses, depth <= %d,\n"
      "                        math functions: %s\n"
      "Loops                : for loops, nesting depth <= %d\n"
      "Conditions           : if conditions over boolean comparisons\n"
      "Variables            : <= %d temporaries, %d..%d scalar params, <= %d arrays\n",
      precision == ir::Precision::FP32 ? "float" : "double", max_expr_depth,
      fns.c_str(), max_loop_nest, 3, min_scalar_params, max_scalar_params,
      max_array_params);
}

}  // namespace gpudiff::gen
