#include "gen/generator.hpp"

#include <cmath>

#include "fp/hexfloat.hpp"
#include "support/strings.hpp"

namespace gpudiff::gen {

namespace {

using ir::Arena;
using ir::Expr;
using ir::ExprId;
using ir::Precision;
using support::Rng;

/// Pick a literal value class with Varity-like emphasis on extremes.
ValueClass pick_class(Rng& rng) {
  static constexpr std::uint32_t weights[] = {
      6,   // Zero
      10,  // Subnormal
      16,  // TinyNormal
      12,  // Small
      20,  // Moderate
      16,  // Large
      20,  // Huge
  };
  return static_cast<ValueClass>(rng.weighted(weights, std::size(weights)));
}

/// Decimal exponent range for a class, per precision.
void exponent_range(ValueClass cls, Precision prec, int* lo, int* hi) {
  const bool f32 = prec == Precision::FP32;
  switch (cls) {
    case ValueClass::Zero: *lo = *hi = 0; break;
    case ValueClass::Subnormal:
      if (f32) { *lo = -45; *hi = -39; } else { *lo = -323; *hi = -309; }
      break;
    case ValueClass::TinyNormal:
      if (f32) { *lo = -38; *hi = -30; } else { *lo = -307; *hi = -290; }
      break;
    case ValueClass::Small:
      *lo = -6; *hi = -1;
      break;
    case ValueClass::Moderate:
      *lo = -1; *hi = 3;
      break;
    case ValueClass::Large:
      if (f32) { *lo = 20; *hi = 33; } else { *lo = 150; *hi = 290; }
      break;
    case ValueClass::Huge:
      if (f32) { *lo = 34; *hi = 38; } else { *lo = 291; *hi = 308; }
      break;
  }
}

}  // namespace

ir::ExprId random_literal(Arena& arena, Rng& rng, Precision precision) {
  const ValueClass cls = pick_class(rng);
  const bool negative = rng.chance(0.5);
  if (cls == ValueClass::Zero) {
    const char* text = negative ? "-0.0" : "+0.0";
    return ir::make_literal(arena, negative ? -0.0 : 0.0,
                            precision == Precision::FP32 ? std::string(text) + "F"
                                                         : text);
  }
  int lo = 0, hi = 0;
  exponent_range(cls, precision, &lo, &hi);
  const int exp10 = static_cast<int>(rng.range(lo, hi));
  // Varity-style mantissa: 1.0000 .. 1.9999 with 4 fractional digits.
  const int mant = static_cast<int>(rng.range(0, 9999));
  const std::string text = support::format("%c1.%04dE%d", negative ? '-' : '+',
                                           mant, exp10);
  double value = 0.0;
  if (precision == Precision::FP32) {
    const auto parsed = fp::parse_float(text);
    value = static_cast<double>(parsed.value_or(0.0f));
    return ir::make_literal(arena, value, text + "F");
  }
  const auto parsed = fp::parse_double(text);
  value = parsed.value_or(0.0);
  return ir::make_literal(arena, value, text);
}

namespace {

/// Per-program generation state.
class ProgramGen {
 public:
  ProgramGen(const GenConfig& cfg, Rng rng) : cfg_(cfg), rng_(rng) {
    // Typical Varity-shaped kernels stay well under these pool sizes; a
    // single up-front reservation removes nearly all growth reallocations.
    arena_.reserve(/*exprs=*/256, /*stmts=*/48, /*text_bytes=*/1024);
  }

  ir::Program run() {
    // --- signature ---
    params_.push_back({ir::ParamKind::Comp, "comp"});
    const int n_ints = cfg_.allow_loops
                           ? static_cast<int>(rng_.range(1, cfg_.max_int_params))
                           : 0;
    const int n_scalars = static_cast<int>(
        rng_.range(cfg_.min_scalar_params, cfg_.max_scalar_params));
    const int n_arrays = cfg_.allow_arrays
                             ? static_cast<int>(rng_.range(0, cfg_.max_array_params))
                             : 0;
    // Varity interleaves parameter kinds in declaration order; we shuffle
    // kinds into a flat list for the same flavour.
    std::vector<ir::ParamKind> kinds;
    for (int i = 0; i < n_ints; ++i) kinds.push_back(ir::ParamKind::Int);
    for (int i = 0; i < n_scalars; ++i) kinds.push_back(ir::ParamKind::Scalar);
    for (int i = 0; i < n_arrays; ++i) kinds.push_back(ir::ParamKind::Array);
    for (std::size_t i = kinds.size(); i > 1; --i) {
      const std::size_t j = rng_.below(i);
      std::swap(kinds[i - 1], kinds[j]);
    }
    for (std::size_t i = 0; i < kinds.size(); ++i) {
      const int index = static_cast<int>(i) + 1;
      params_.push_back({kinds[i], "var_" + std::to_string(index)});
      switch (kinds[i]) {
        case ir::ParamKind::Int: int_params_.push_back(index); break;
        case ir::ParamKind::Scalar: scalar_params_.push_back(index); break;
        case ir::ParamKind::Array: array_params_.push_back(index); break;
        default: break;
      }
    }

    // --- body ---
    const int n_stmts = static_cast<int>(rng_.range(cfg_.min_stmts, cfg_.max_stmts));
    std::vector<ir::StmtId> body;
    for (int i = 0; i < n_stmts; ++i) body.push_back(gen_stmt(/*loop_depth=*/0));
    return ir::Program(cfg_.precision, std::move(params_), std::move(arena_),
                       std::move(body));
  }

 private:
  // --- expressions ---

  ExprId gen_leaf(int loop_depth) {
    const std::uint32_t weights[] = {
        cfg_.w_leaf_literal,
        cfg_.w_leaf_param,
        temps_ > 0 ? cfg_.w_leaf_temp : 0,
        (loop_depth > 0 && !array_params_.empty()) ? cfg_.w_leaf_array : 0,
    };
    switch (rng_.weighted(weights, std::size(weights))) {
      case 0:
        return random_literal(arena_, rng_, cfg_.precision);
      case 1:
        if (!scalar_params_.empty())
          return ir::make_param(arena_,
                                scalar_params_[rng_.below(scalar_params_.size())]);
        return random_literal(arena_, rng_, cfg_.precision);
      case 2:
        return ir::make_temp(arena_, static_cast<int>(rng_.range(1, temps_)));
      default: {
        const ExprId sub = ir::make_loop_var(
            arena_, static_cast<int>(
                        rng_.below(static_cast<std::uint64_t>(loop_depth))));
        return ir::make_array(
            arena_, array_params_[rng_.below(array_params_.size())], sub);
      }
    }
  }

  ExprId gen_expr(int depth, int loop_depth) {
    if (depth <= 0) return gen_leaf(loop_depth);
    const std::uint32_t weights[] = {
        cfg_.w_bin,
        cfg_.allow_calls && !cfg_.functions.empty() ? cfg_.w_call : 0,
        cfg_.w_neg,
        cfg_.w_leaf,
    };
    switch (rng_.weighted(weights, std::size(weights))) {
      case 0: {
        static constexpr ir::BinOp ops[] = {ir::BinOp::Add, ir::BinOp::Sub,
                                            ir::BinOp::Mul, ir::BinOp::Div};
        const auto op = ops[rng_.below(4)];
        // RNG draw order pins the historical program stream: the right
        // operand's subtree is drawn before the left one.
        const ExprId rhs = gen_expr(depth - 1, loop_depth);
        const ExprId lhs = gen_expr(depth - 1, loop_depth);
        return ir::make_bin(arena_, op, lhs, rhs);
      }
      case 1: {
        const ir::MathFn fn = cfg_.functions[rng_.below(cfg_.functions.size())];
        if (ir::arity(fn) == 2) {
          const ExprId rhs = gen_expr(depth - 1, loop_depth);
          const ExprId lhs = gen_expr(depth - 1, loop_depth);
          return ir::make_call(arena_, fn, lhs, rhs);
        }
        return ir::make_call(arena_, fn, gen_expr(depth - 1, loop_depth));
      }
      case 2:
        return ir::make_neg(arena_, gen_expr(depth - 1, loop_depth));
      default:
        return gen_leaf(loop_depth);
    }
  }

  ExprId gen_condition(int loop_depth) {
    static constexpr ir::CmpOp cmps[] = {ir::CmpOp::Eq, ir::CmpOp::Ne,
                                         ir::CmpOp::Lt, ir::CmpOp::Le,
                                         ir::CmpOp::Gt, ir::CmpOp::Ge};
    auto cmp = [&] {
      // Historical draw order: operand subtrees right-to-left, then the
      // comparison operator.
      const ExprId rhs = gen_expr(2, loop_depth);
      const ExprId lhs = gen_expr(2, loop_depth);
      return ir::make_cmp(arena_, cmps[rng_.below(6)], lhs, rhs);
    };
    if (rng_.chance(0.15)) {
      const ExprId rhs = cmp();
      const ExprId lhs = cmp();
      const ir::BoolOp op = rng_.chance(0.5) ? ir::BoolOp::And : ir::BoolOp::Or;
      return ir::make_bool(arena_, op, lhs, rhs);
    }
    if (rng_.chance(0.05)) return ir::make_not(arena_, cmp());
    return cmp();
  }

  // --- statements ---

  ir::StmtId gen_comp_update(int loop_depth) {
    // Varity favours accumulation into comp.
    static constexpr ir::AssignOp ops[] = {ir::AssignOp::Add, ir::AssignOp::Add,
                                           ir::AssignOp::Add, ir::AssignOp::Sub,
                                           ir::AssignOp::Mul, ir::AssignOp::Set,
                                           ir::AssignOp::Div};
    const auto op = ops[rng_.below(std::size(ops))];
    return ir::make_assign_comp(arena_, op,
                                gen_expr(cfg_.max_expr_depth, loop_depth));
  }

  ir::StmtId gen_stmt(int loop_depth) {
    const bool can_loop = cfg_.allow_loops && !int_params_.empty() &&
                          loop_depth < cfg_.max_loop_nest;
    const bool can_store = loop_depth > 0 && !array_params_.empty();
    const std::uint32_t weights[] = {
        45,                                          // comp update
        temps_ < 3 && loop_depth == 0 ? 12u : 0u,    // temp declaration
        can_loop ? 16u : 0u,                         // for loop
        cfg_.allow_ifs ? 14u : 0u,                   // if block
        can_store ? 13u : 0u,                        // array store
    };
    switch (rng_.weighted(weights, std::size(weights))) {
      case 0:
        return gen_comp_update(loop_depth);
      case 1: {
        // Generate the initializer before publishing the new temp id so the
        // declaration cannot reference itself.
        const ExprId init = gen_expr(cfg_.max_expr_depth, loop_depth);
        ++temps_;
        return ir::make_decl_temp(arena_, temps_, init);
      }
      case 2: {
        const int bound = int_params_[rng_.below(int_params_.size())];
        std::vector<ir::StmtId> body;
        const int n = static_cast<int>(rng_.range(1, cfg_.max_block_stmts));
        for (int i = 0; i < n; ++i) body.push_back(gen_stmt(loop_depth + 1));
        return ir::make_for(arena_, loop_depth, bound, body);
      }
      case 3: {
        std::vector<ir::StmtId> body;
        const int n = static_cast<int>(rng_.range(1, cfg_.max_block_stmts));
        for (int i = 0; i < n; ++i) {
          // Avoid nested structured statements directly under if to keep
          // kernels in Varity's observed shape.
          body.push_back(gen_comp_update(loop_depth));
        }
        return ir::make_if(arena_, gen_condition(loop_depth), body);
      }
      default: {
        const int arr = array_params_[rng_.below(array_params_.size())];
        const int lv = static_cast<int>(rng_.below(static_cast<std::uint64_t>(
            loop_depth > 0 ? loop_depth : 1)));
        const ExprId sub = ir::make_loop_var(arena_, lv);
        const ExprId value = gen_expr(cfg_.max_expr_depth, loop_depth);
        return ir::make_store_array(arena_, arr, sub, value);
      }
    }
  }

  const GenConfig& cfg_;
  Rng rng_;
  Arena arena_;
  std::vector<ir::Param> params_;
  std::vector<int> int_params_;
  std::vector<int> scalar_params_;
  std::vector<int> array_params_;
  int temps_ = 0;
};

}  // namespace

ir::Program Generator::generate(std::uint64_t program_index) const {
  // Independent deterministic stream per program.
  Rng base(seed_);
  Rng child = base.split(program_index);
  ProgramGen g(config_, child);
  return g.run();
}

}  // namespace gpudiff::gen
