#include "gen/inputs.hpp"

#include <cmath>

#include "fp/bits.hpp"

namespace gpudiff::gen {

namespace {

using support::Rng;

/// Input class weights: extremes dominate, as in Varity's sampling.  The
/// binary32 mix leans more on the live arithmetic range — the format's
/// dynamic range is 2^277, so "huge" float chains saturate to Inf/NaN far
/// faster than double chains and would otherwise mask divergences.
ValueClass pick_input_class(Rng& rng, ir::Precision prec) {
  static constexpr std::uint32_t weights64[] = {
      14,  // Zero
      12,  // Subnormal
      16,  // TinyNormal
      10,  // Small
      18,  // Moderate
      12,  // Large
      18,  // Huge
  };
  static constexpr std::uint32_t weights32[] = {
      6,   // Zero
      10,  // Subnormal
      10,  // TinyNormal
      24,  // Small
      36,  // Moderate
      6,   // Large
      8,   // Huge
  };
  if (prec == ir::Precision::FP32)
    return static_cast<ValueClass>(rng.weighted(weights32, std::size(weights32)));
  return static_cast<ValueClass>(rng.weighted(weights64, std::size(weights64)));
}

double random_in_exp_range(Rng& rng, int lo10, int hi10, ir::Precision prec) {
  const int e = static_cast<int>(rng.range(lo10, hi10));
  const double mant = 1.0 + rng.uniform01() * 0.9999;
  double v = mant * std::pow(10.0, e);
  if (prec == ir::Precision::FP32) v = static_cast<double>(static_cast<float>(v));
  return v;
}

}  // namespace

double random_value(Rng& rng, ValueClass cls, ir::Precision prec) {
  const bool f32 = prec == ir::Precision::FP32;
  const bool neg = rng.chance(0.5);
  double v = 0.0;
  switch (cls) {
    case ValueClass::Zero:
      v = 0.0;
      break;
    case ValueClass::Subnormal: {
      // Uniform over the subnormal mantissa field (never zero).
      if (f32) {
        const auto mant = static_cast<std::uint32_t>(rng.range(1, 0x7FFFFF));
        v = static_cast<double>(fp::from_bits<float>(mant));
      } else {
        const auto mant = static_cast<std::uint64_t>(
            rng.range(1, 0xFFFFFFFFFFFFFLL));
        v = fp::from_bits<double>(mant);
      }
      break;
    }
    case ValueClass::TinyNormal:
      v = f32 ? random_in_exp_range(rng, -38, -30, prec)
              : random_in_exp_range(rng, -307, -290, prec);
      break;
    case ValueClass::Small:
      v = random_in_exp_range(rng, -6, -1, prec);
      break;
    case ValueClass::Moderate:
      v = random_in_exp_range(rng, -1, 3, prec);
      break;
    case ValueClass::Large:
      v = f32 ? random_in_exp_range(rng, 20, 33, prec)
              : random_in_exp_range(rng, 150, 290, prec);
      break;
    case ValueClass::Huge:
      // Upper bounds keep mantissa * 10^e below the format maximum
      // (1.9999e308 would overflow to infinity).
      v = f32 ? random_in_exp_range(rng, 34, 38, prec)
              : random_in_exp_range(rng, 291, 307, prec);
      break;
  }
  return neg ? fp::negate_bits(v) : v;
}

vgpu::KernelArgs InputGenerator::generate(const ir::Program& program,
                                          std::uint64_t program_index,
                                          std::uint64_t input_index) const {
  Rng base(seed_ ^ 0xA5A5A5A5A5A5A5A5ULL);
  Rng rng = base.split(program_index * 1000003ULL + input_index);
  const auto& params = program.params();
  vgpu::KernelArgs args;
  args.fp.assign(params.size(), 0.0);
  args.ints.assign(params.size(), 0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    switch (params[i].kind) {
      case ir::ParamKind::Int:
        // Loop bounds: small positive counts (paper examples use 5);
        // occasionally 0 to exercise never-entered loops.
        args.ints[i] = rng.chance(0.08)
                           ? 0
                           : static_cast<int>(rng.range(1, max_trip_));
        break;
      case ir::ParamKind::Comp:
      case ir::ParamKind::Scalar:
      case ir::ParamKind::Array:
        args.fp[i] = random_value(rng, pick_input_class(rng, program.precision()),
                                  program.precision());
        break;
    }
  }
  return args;
}

}  // namespace gpudiff::gen
