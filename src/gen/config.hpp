#pragma once
// Generator configuration: the tunable grammar of random test programs
// (paper Table III — floating-point types, arithmetic expressions, loops,
// conditions, temporary variables/arrays, C math library calls).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace gpudiff::gen {

struct GenConfig {
  ir::Precision precision = ir::Precision::FP64;

  // --- structure limits ---
  int max_expr_depth = 4;     ///< arithmetic expression nesting
  int min_stmts = 2;          ///< top-level statements per kernel
  int max_stmts = 6;
  int max_loop_nest = 2;      ///< paper: "multiple levels of nesting"
  int max_block_stmts = 3;    ///< statements inside a loop/if body
  int min_scalar_params = 3;
  int max_scalar_params = 8;
  int max_int_params = 2;     ///< loop-bound parameters
  int max_array_params = 2;

  // --- feature toggles ---
  bool allow_loops = true;
  bool allow_ifs = true;
  bool allow_arrays = true;
  bool allow_calls = true;

  // --- expression shape weights (relative) ---
  std::uint32_t w_bin = 44;
  std::uint32_t w_call = 16;
  std::uint32_t w_neg = 6;
  std::uint32_t w_leaf = 34;

  // --- leaf weights ---
  std::uint32_t w_leaf_literal = 35;
  std::uint32_t w_leaf_param = 40;
  std::uint32_t w_leaf_temp = 12;
  std::uint32_t w_leaf_array = 13;

  /// Math functions the generator may call (all 20 by default).
  std::vector<ir::MathFn> functions = default_functions();

  static std::vector<ir::MathFn> default_functions();

  /// Render the grammar characteristics as the rows of paper Table III.
  std::string describe() const;
};

/// Literal and input value classes (Varity samples floating values from
/// extreme regions of the format: the Fig. 4/6 inputs are 1e+306-scale,
/// subnormal-scale and signed zeros).
enum class ValueClass : std::uint8_t {
  Zero,        // +-0.0
  Subnormal,   // below the normal range
  TinyNormal,  // just above the subnormal boundary
  Small,       // ~1e-5 .. 1e-1 scale
  Moderate,    // ~0.1 .. 1e3
  Large,       // upper decades of the format
  Huge,        // near overflow
};

}  // namespace gpudiff::gen
