#pragma once
// Random input generator: one KernelArgs per (program, input_index).
//
// Floating inputs are drawn from the extreme value classes Varity samples
// (signed zeros, subnormals, near-overflow magnitudes — see the Fig. 4/6
// input lines); integer loop bounds stay small (the paper's examples use 5).

#include <cstdint>

#include "gen/config.hpp"
#include "support/rng.hpp"
#include "vgpu/args.hpp"

namespace gpudiff::gen {

class InputGenerator {
 public:
  explicit InputGenerator(std::uint64_t seed, int max_trip_count = 8)
      : seed_(seed), max_trip_(max_trip_count) {}

  /// Deterministic inputs for the given (program, input_index) pair.
  vgpu::KernelArgs generate(const ir::Program& program, std::uint64_t program_index,
                            std::uint64_t input_index) const;

 private:
  std::uint64_t seed_;
  int max_trip_;
};

/// One random floating value of the given class (exposed for tests).
double random_value(support::Rng& rng, ValueClass cls, ir::Precision precision);

}  // namespace gpudiff::gen
