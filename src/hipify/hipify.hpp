#pragma once
// HIPIFY: CUDA -> HIP source translation (a functional model of AMD's
// hipify-perl for the construct set our emitter generates).
//
// The paper's third experiment (Tables VII/VIII) runs HIPIFY-converted
// CUDA tests against nvcc and compares with natively generated HIP tests.
// Translation covers: runtime API renames (cudaMalloc -> hipMalloc, ...),
// the <<<grid, block>>> launch syntax -> hipLaunchKernelGGL, and header
// rewrites.  Numerical consequences of compiling *converted* sources are
// modeled on the compiler side (opt::CompileOptions::hipify_converted binds
// the CUDA-compat math wrapper — see vmath/compat_math.cpp and DESIGN.md).

#include <string>
#include <vector>

namespace gpudiff::hipify {

struct HipifyResult {
  std::string source;                 ///< translated HIP source
  int replacements = 0;               ///< API spellings rewritten
  int launches_converted = 0;         ///< <<< >>> sites rewritten
  std::vector<std::string> warnings;  ///< constructs passed through untouched
};

/// Translate a CUDA translation unit to HIP.
HipifyResult hipify_source(const std::string& cuda_source);

}  // namespace gpudiff::hipify
