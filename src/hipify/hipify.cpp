#include "hipify/hipify.hpp"

#include <cstddef>

#include "support/strings.hpp"

namespace gpudiff::hipify {

namespace {

/// Identifier-boundary-aware replacement (so cudaMemcpyAsync is not mangled
/// by the cudaMemcpy rule: longer spellings are listed first).
struct Rename {
  const char* from;
  const char* to;
};

constexpr Rename kRenames[] = {
    {"cudaMemcpyHostToDevice", "hipMemcpyHostToDevice"},
    {"cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost"},
    {"cudaDeviceSynchronize", "hipDeviceSynchronize"},
    {"cudaGetErrorString", "hipGetErrorString"},
    {"cudaGetLastError", "hipGetLastError"},
    {"cudaMemcpyAsync", "hipMemcpyAsync"},
    {"cudaEventCreate", "hipEventCreate"},
    {"cudaEventRecord", "hipEventRecord"},
    {"cudaMemcpy", "hipMemcpy"},
    {"cudaMalloc", "hipMalloc"},
    {"cudaError_t", "hipError_t"},
    {"cudaSuccess", "hipSuccess"},
    {"cudaStream_t", "hipStream_t"},
    {"cudaFree", "hipFree"},
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Replace whole-identifier occurrences of `from` with `to`.
int replace_ident(std::string& text, const std::string& from, const std::string& to) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + from.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) {
      text.replace(pos, from.size(), to);
      pos += to.size();
      ++count;
    } else {
      pos = end;
    }
  }
  return count;
}

/// Rewrite one kernel-launch site starting at `pos` (where "<<<" begins).
/// Returns the position after the rewritten call, or npos on parse failure.
std::size_t rewrite_launch(std::string& text, std::size_t pos, int* converted,
                           std::vector<std::string>* warnings) {
  // Scan back for the kernel name.
  std::size_t name_end = pos;
  while (name_end > 0 && (text[name_end - 1] == ' ')) --name_end;
  std::size_t name_begin = name_end;
  while (name_begin > 0 && is_ident_char(text[name_begin - 1])) --name_begin;
  if (name_begin == name_end) {
    warnings->push_back("hipify: launch site without kernel name");
    return std::string::npos;
  }
  const std::string kernel = text.substr(name_begin, name_end - name_begin);

  // Parse <<<config>>>.
  const std::size_t cfg_begin = pos + 3;
  const std::size_t cfg_end = text.find(">>>", cfg_begin);
  if (cfg_end == std::string::npos) {
    warnings->push_back("hipify: unterminated <<< >>> at launch of " + kernel);
    return std::string::npos;
  }
  std::string cfg = std::string(support::trim(
      std::string_view(text).substr(cfg_begin, cfg_end - cfg_begin)));
  // Config is "grid, block[, shmem[, stream]]"; split at top-level commas.
  std::vector<std::string> cfg_parts;
  int depth = 0;
  std::string cur;
  for (char c : cfg) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      cfg_parts.push_back(std::string(support::trim(cur)));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!support::trim(cur).empty()) cfg_parts.push_back(std::string(support::trim(cur)));
  while (cfg_parts.size() < 2) cfg_parts.push_back("dim3(1)");
  if (cfg_parts.size() < 3) cfg_parts.push_back("0");
  if (cfg_parts.size() < 4) cfg_parts.push_back("0");

  // Parse the argument list "(args);".
  std::size_t args_begin = cfg_end + 3;
  while (args_begin < text.size() && text[args_begin] == ' ') ++args_begin;
  if (args_begin >= text.size() || text[args_begin] != '(') {
    warnings->push_back("hipify: launch of " + kernel + " missing argument list");
    return std::string::npos;
  }
  int paren = 0;
  std::size_t args_end = args_begin;
  for (; args_end < text.size(); ++args_end) {
    if (text[args_end] == '(') ++paren;
    if (text[args_end] == ')') {
      --paren;
      if (paren == 0) break;
    }
  }
  const std::string args = text.substr(args_begin + 1, args_end - args_begin - 1);

  const std::string replacement = support::format(
      "hipLaunchKernelGGL(%s, %s, %s, %s, %s%s%s)", kernel.c_str(),
      cfg_parts[0].c_str(), cfg_parts[1].c_str(), cfg_parts[2].c_str(),
      cfg_parts[3].c_str(), args.empty() ? "" : ", ", args.c_str());
  text.replace(name_begin, args_end + 1 - name_begin, replacement);
  ++*converted;
  return name_begin + replacement.size();
}

}  // namespace

HipifyResult hipify_source(const std::string& cuda_source) {
  HipifyResult result;
  result.source = cuda_source;

  // Headers.
  result.replacements += replace_ident(result.source, "#include <cuda_runtime.h>",
                                       "#include \"hip/hip_runtime.h\"");
  if (result.source.find("cuda_runtime.h") != std::string::npos) {
    // Non-standard include spelling: rewrite the path only.
    result.replacements +=
        replace_ident(result.source, "cuda_runtime.h", "hip/hip_runtime.h");
  }

  // Runtime API identifiers.
  for (const auto& r : kRenames)
    result.replacements += replace_ident(result.source, r.from, r.to);

  // Kernel launches.
  std::size_t pos = 0;
  while ((pos = result.source.find("<<<", pos)) != std::string::npos) {
    const std::size_t next =
        rewrite_launch(result.source, pos, &result.launches_converted,
                       &result.warnings);
    if (next == std::string::npos) {
      pos += 3;  // skip unparseable site
    } else {
      pos = next;
    }
  }

  // Leftover CUDA spellings are worth flagging (hipify-perl prints similar
  // warnings for unsupported constructs).
  if (result.source.find("cuda") != std::string::npos ||
      result.source.find("cu_") != std::string::npos) {
    std::size_t at = result.source.find("cuda");
    result.warnings.push_back(
        support::format("hipify: unconverted CUDA reference at offset %zu", at));
  }
  return result;
}

}  // namespace gpudiff::hipify
