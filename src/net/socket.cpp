#include "net/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace gpudiff::net {

namespace {

using Clock = std::chrono::steady_clock;

double remaining_seconds(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

/// poll(2) one fd for `events`; true when ready, false on timeout.
bool poll_fd(int fd, short events, double timeout_seconds) {
  struct pollfd p;
  p.fd = fd;
  p.events = events;
  p.revents = 0;
  const int ms = timeout_seconds <= 0.0
                     ? 0
                     : static_cast<int>(std::min(timeout_seconds * 1000.0,
                                                 2.0e9)) + 1;
  for (;;) {
    const int rc = ::poll(&p, 1, ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
  other.buf_.clear();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
    other.buf_.clear();
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

IoStatus Socket::send_all(std::string_view data, double timeout_seconds) {
  if (fd_ < 0) return IoStatus::Error;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  std::size_t sent = 0;
  while (sent < data.size()) {
    const double left = remaining_seconds(deadline);
    if (left <= 0.0) return IoStatus::Timeout;
    if (!poll_fd(fd_, POLLOUT, left)) return IoStatus::Timeout;
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    return IoStatus::Error;
  }
  return IoStatus::Ok;
}

IoStatus Socket::read_line(std::string* line, double timeout_seconds) {
  line->clear();
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return IoStatus::Ok;
    }
    if (fd_ < 0) return IoStatus::Error;
    // Unframed garbage must not grow the buffer without bound.
    if (buf_.size() > (64u << 20)) return IoStatus::Error;
    const double left = remaining_seconds(deadline);
    if (left <= 0.0) return IoStatus::Timeout;
    if (!poll_fd(fd_, POLLIN, left)) return IoStatus::Timeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return IoStatus::Closed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return IoStatus::Error;
  }
}

Socket connect_tcp(const std::string& host, int port,
                   double timeout_seconds) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                    service.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return Socket();
  Socket out;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // Non-blocking connect so the timeout is honored.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    bool connected = rc == 0;
    if (!connected && errno == EINPROGRESS &&
        poll_fd(fd, POLLOUT, timeout_seconds)) {
      int err = 0;
      socklen_t len = sizeof(err);
      connected = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
                  err == 0;
    }
    if (!connected) {
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O polls explicitly
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    out = Socket(fd);
    break;
  }
  ::freeaddrinfo(res);
  return out;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Listener::listen(const std::string& host, int port, int backlog) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("net: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("net: bad bind address: " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("net: bind " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("net: listen: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0)
    port_ = static_cast<int>(ntohs(addr.sin_port));
  else
    port_ = port;
  fd_ = fd;
}

Socket Listener::accept(double timeout_seconds) {
  if (fd_ < 0) return Socket();
  if (!poll_fd(fd_, POLLIN, timeout_seconds)) return Socket();
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

std::pair<std::string, int> parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size())
    throw std::runtime_error("net: expected host:port, got '" + spec + "'");
  const std::string host = spec.substr(0, colon);
  int port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9' || port > 65535)
      throw std::runtime_error("net: bad port in '" + spec + "'");
    port = port * 10 + (c - '0');
  }
  if (port <= 0 || port > 65535)
    throw std::runtime_error("net: bad port in '" + spec + "'");
  return {host, port};
}

}  // namespace gpudiff::net
