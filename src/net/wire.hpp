#pragma once
// Line-framed JSON wire protocol for the lease coordinator.
//
// Every message is one compact JSON object terminated by '\n' — trivially
// observable with netcat, trivially relayed (and corrupted on purpose) by
// the fault-injection proxy, and deterministic to serialize (sorted keys).
//
// Session shape: a client connects and sends a versioned hello carrying
// the full campaign configuration fingerprint and lease geometry; the
// coordinator refuses mismatches at connect ("fatal": true — do not
// retry) and accepts everything else.  After the hello, each request
// carries a client-chosen monotonically increasing "seq"; the response
// echoes it, which is what keeps a duplicated or delayed frame (injected
// by the proxy, or a retry racing a slow response) from desynchronizing
// the request/response stream: a client simply discards responses whose
// seq is below the one it is waiting for.
//
// Requests (after hello):
//   {"op":"claim","lease":k,"seq":n}     -> {"ok":true,"acquired":b,"seq":n}
//   {"op":"age","lease":k,...}           -> {"ok":true,"age":s}   (-1: free)
//   {"op":"steal","lease":k,...}         -> {"ok":true,"stolen":b}
//   {"op":"heartbeat","lease":k,...}     -> {"ok":true,"beating":b}
//   {"op":"publish","block":{...},...}   -> {"ok":true}
//   {"op":"release","lease":k,...}       -> {"ok":true}
//   {"op":"reap","lease":k,...}          -> {"ok":true,"reaped":b}
//   {"op":"done","lease":k,...}          -> {"ok":true,"done":b}
//   {"op":"list_done",...}               -> {"ok":true,"done":[k,...]}
// Errors: {"ok":false,"error":"...","fatal":b,"seq":n}.  Non-fatal errors
// are retryable (transient server conditions); fatal ones mean the client
// is wrong (bad hello, malformed op) and must not retry.
//
// At-least-once safety mirrors the filesystem board: claim is idempotent
// for the claim's own worker, publish accepts duplicate blocks (their
// bytes are identical by the determinism invariant), and release/steal on
// an unexpected state degrade to "lost the race", never to corruption.

#include <string>

#include "net/socket.hpp"
#include "support/json.hpp"

namespace gpudiff::net {

/// Wire protocol version, carried by every hello.  Bump on any change to
/// message shapes; the coordinator refuses other versions at connect.
inline constexpr int kWireVersion = 1;

/// Send one message as a compact JSON line.
IoStatus send_message(Socket& socket, const support::Json& message,
                      double timeout_seconds);

/// Receive one message line and parse it.  A line that is not valid JSON
/// returns Error (the connection is desynchronized beyond repair).
IoStatus recv_message(Socket& socket, support::Json* message,
                      double timeout_seconds);

/// Client side of one request/response exchange under the seq discipline:
/// stamp `request` with `seq`, send it, then read until the response
/// echoing `seq` arrives — frames with a lower seq are stale duplicates
/// and are discarded, a higher seq means the stream is desynchronized
/// (returned as Error).  Both the worker transport and the store query
/// clients speak this exchange; the caller owns seq monotonicity.
IoStatus request_response(Socket& socket, support::Json request,
                          std::int64_t seq, support::Json* response,
                          double timeout_seconds);

/// {"ok":true,"seq":seq} — extend with op-specific fields.
support::Json ok_response(std::int64_t seq);
/// {"ok":false,"error":error,"fatal":fatal,"seq":seq}
support::Json error_response(std::int64_t seq, const std::string& error,
                             bool fatal);

}  // namespace gpudiff::net
