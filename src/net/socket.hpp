#pragma once
// Minimal POSIX TCP layer for the campaign coordinator: RAII sockets,
// connect/listen/accept with timeouts, and newline-framed I/O.
//
// Everything is blocking-with-poll(2): reads and writes take an explicit
// timeout and report Timeout/Closed/Error instead of blocking forever, so
// every caller — the coordinator's per-connection threads, the worker-side
// transport, the fault-injection proxy — can bound each operation and lets
// its retry policy decide what happens next.  SIGPIPE is never raised
// (sends use MSG_NOSIGNAL); a peer vanishing mid-write is an IoStatus, not
// a signal.

#include <string>
#include <string_view>
#include <utility>

namespace gpudiff::net {

enum class IoStatus {
  Ok,       ///< operation completed
  Timeout,  ///< deadline elapsed with the operation incomplete
  Closed,   ///< orderly shutdown by the peer (EOF)
  Error,    ///< connection reset / I/O failure — treat the socket as dead
};

/// Move-only owner of a connected socket fd with a buffered line reader.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Write all of `data`, polling for writability; partial progress before
  /// a timeout still returns Timeout (callers treat the socket as dead —
  /// the wire protocol never resumes a half-written frame).
  IoStatus send_all(std::string_view data, double timeout_seconds);

  /// Read up to and including the next '\n'; `*line` receives the line
  /// without its terminator.  Data beyond the newline stays buffered for
  /// the next call.  Closed is returned only once the buffer holds no
  /// complete line.
  IoStatus read_line(std::string* line, double timeout_seconds);

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Connect to host:port within the timeout.  Returns an invalid Socket on
/// failure (refused, unreachable, timeout) — callers are retry loops, so
/// failure is an ordinary value, not an exception.
Socket connect_tcp(const std::string& host, int port, double timeout_seconds);

/// Listening socket; port 0 binds an ephemeral port (see port()).
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Bind + listen; throws std::runtime_error on failure (an unusable
  /// coordinator should die loudly at startup, not limp).
  void listen(const std::string& host, int port, int backlog = 64);
  bool valid() const noexcept { return fd_ >= 0; }
  int port() const noexcept { return port_; }
  void close() noexcept;

  /// Accept one connection, or an invalid Socket on timeout/closure.
  Socket accept(double timeout_seconds);

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Parse "host:port" (host may be empty or a dotted quad / name).  Throws
/// std::runtime_error on a malformed string or out-of-range port.
std::pair<std::string, int> parse_host_port(const std::string& spec);

}  // namespace gpudiff::net
