#include "net/wire.hpp"

namespace gpudiff::net {

IoStatus send_message(Socket& socket, const support::Json& message,
                      double timeout_seconds) {
  std::string line = message.dump();
  line.push_back('\n');
  return socket.send_all(line, timeout_seconds);
}

IoStatus recv_message(Socket& socket, support::Json* message,
                      double timeout_seconds) {
  std::string line;
  const IoStatus status = socket.read_line(&line, timeout_seconds);
  if (status != IoStatus::Ok) return status;
  try {
    *message = support::Json::parse(line);
  } catch (const std::exception&) {
    return IoStatus::Error;
  }
  if (!message->is_object()) return IoStatus::Error;
  return IoStatus::Ok;
}

IoStatus request_response(Socket& socket, support::Json request,
                          std::int64_t seq, support::Json* response,
                          double timeout_seconds) {
  request["seq"] = seq;
  IoStatus status = send_message(socket, request, timeout_seconds);
  if (status != IoStatus::Ok) return status;
  for (;;) {
    status = recv_message(socket, response, timeout_seconds);
    if (status != IoStatus::Ok) return status;
    const std::int64_t got =
        response->get_or("seq", support::Json(std::int64_t{0})).as_int();
    if (got < seq) continue;  // stale response to a duplicated frame
    if (got > seq) return IoStatus::Error;
    return IoStatus::Ok;
  }
}

support::Json ok_response(std::int64_t seq) {
  support::Json j = support::Json::object();
  j["ok"] = true;
  j["seq"] = seq;
  return j;
}

support::Json error_response(std::int64_t seq, const std::string& error,
                             bool fatal) {
  support::Json j = support::Json::object();
  j["ok"] = false;
  j["error"] = error;
  j["fatal"] = fatal;
  j["seq"] = seq;
  return j;
}

}  // namespace gpudiff::net
