#pragma once
// Bytecode compilation + register-VM execution for the virtual GPU.
//
// The tree-walk interpreter (interp.cpp) re-walks a pointer-linked Expr
// tree with recursive dispatch on every run and reallocates its temporary
// state per run.  A campaign executes the same compiled kernel across many
// inputs (paper §IV: 652,600 runs), so that per-run overhead is pure waste.
// This module lowers an optimized ir::Program *once* into a flat,
// fixed-width instruction array and executes it with a tight
// switch-dispatch loop:
//
//   * one virtual register file (plain array of float/double), with IR
//     temporaries pinned to registers [0, n_temps) and expression scratch
//     stack-allocated above them;
//   * a constant pool materialized in both precisions at compile time;
//   * structured control flow (`for`, `if`, `&&`/`||` short-circuit)
//     lowered to precomputed absolute jump offsets — no recursion;
//   * array parameters flattened into one contiguous buffer; arrays the
//     program never stores to are compiled down to scalar loads (their
//     elements always equal the broadcast argument value);
//   * all per-run mutable state lives in a caller-provided ExecContext
//     that is allocated once (per thread) and reset between runs.
//
// Execution semantics are bit-identical to the tree-walk interpreter —
// same Fpu, same FpEnv application, same op_count/cycle_count accounting,
// same exception flags — which tests/bytecode_test.cpp proves
// differentially over generated programs at every optimization level.
// The tree-walk interpreter remains available as the reference oracle
// (vgpu::run_kernel_tree, or globally via vgpu::set_exec_backend).

#include <cstdint>
#include <span>
#include <vector>

#include "fp/bits.hpp"
#include "fp/env.hpp"
#include "ir/program.hpp"
#include "vgpu/args.hpp"
#include "vgpu/interp.hpp"
#include "vmath/mathlib.hpp"

namespace gpudiff::vgpu {

/// Upper bound on loop trip counts: protects the harness from hostile
/// metadata (generated inputs stay far below this).
inline constexpr int kMaxTripCount = 1 << 20;
inline constexpr int kMaxLoopDepth = 8;

/// Convert a floating subscript to an integer without UB: NaN indexes
/// element 0, values beyond what a long long can hold saturate (negative
/// values and -inf clamp to 0 downstream; +inf and huge positives land on
/// the last element).  In-range values keep the historical cast semantics.
inline long long fp_to_subscript(double v) noexcept {
  if (fp::is_nan_bits(v)) return 0;
  if (v <= -9223372036854775808.0) return 0;
  if (v >= 9223372036854775808.0) return ir::kArrayExtent - 1;
  return static_cast<long long>(v);
}

/// The subscript clamp shared with the tree-walk interpreter: negatives to
/// 0, overlarge indices wrapped into the extent.
inline int clamp_subscript(long long idx) noexcept {
  if (idx < 0) return 0;
  if (idx >= ir::kArrayExtent) return static_cast<int>(idx % ir::kArrayExtent);
  return static_cast<int>(idx);
}

enum class BcOp : std::uint8_t {
  LoadConst,     // regs[dst] = consts[a]
  LoadParam,     // regs[dst] = (T)args.fp[a]
  LoadIntParam,  // regs[dst] = (T)args.ints[a]
  LoadLoopVar,   // regs[dst] = (T)loop_vars[a]
  LoadComp,      // regs[dst] = comp
  Mov,           // regs[dst] = regs[a]
  Neg,           // regs[dst] = -regs[a] (sign-bit flip)
  Add, Sub, Mul, Div,  // regs[dst] = fpu(regs[a], regs[b])        [counted]
  Fma,           // regs[dst] = fpu.fma(regs[a], regs[b], regs[c]) [counted]
  Call1, Call2,  // regs[dst] = mathlib.fn(regs[a][, regs[b]])     [counted]
  MinNaive, MaxNaive,  // finite-math-only compare-select           [counted]
  LoadArr,       // regs[dst] = array[u16][subscript(aux, a)]
  StoreArr,      // array[u16][subscript(aux, a)] = regs[b]
  AssignComp,    // comp <aux:AssignOp>= regs[a]                    [counted]
  CmpJump,       // if ((regs[a] <aux:CmpOp> regs[b]) == sense) pc = dst [counted]
  TruthJump,     // if ((regs[a] != 0) == sense) pc = dst
  Jump,          // pc = dst
  ForInit,       // loop_vars[u16] = 0; bound = clamp(args.ints[a]); if empty pc = dst
  ForNext,       // if (++loop_vars[u16] < bound) pc = dst
  Trap,          // structurally malformed statement reached: throw (aux: TrapKind)
  Halt,
};

/// What a Trap reports.  Malformed IR is detected while lowering but must
/// fault only if control flow actually reaches it — exactly when and what
/// the tree-walk oracle would throw (runtime_error for shape errors,
/// out_of_range for .at()-style index errors).
enum class TrapKind : std::uint8_t {
  NonArrayStore,    // StoreArray to a non-array parameter
  NonArrayLoad,     // ArrayRef load from a non-array parameter
  LoopTooDeep,      // For nesting beyond kMaxLoopDepth
  IndexOutOfRange,  // parameter/temp/loop-var index outside the program
};

/// How LoadArr/StoreArr resolve their subscript operand `a`.
enum class IndexMode : std::uint8_t {
  Const,     // a = precomputed element index
  LoopVar,   // a = loop depth
  IntParam,  // a = integer parameter index
  Reg,       // a = register holding a floating subscript
};

struct BcInsn {
  BcOp op{};
  std::uint8_t aux = 0;    ///< CmpOp / AssignOp / IndexMode payload
  std::uint8_t sense = 0;  ///< conditional jumps: jump when condition == sense
  std::uint16_t u16 = 0;   ///< MathFn / array slot / loop depth
  std::int32_t dst = 0;    ///< destination register, or jump target pc
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
};

/// Reusable per-thread execution state.  run_bytecode grows the buffers to
/// the program's requirements on first use and reuses the capacity for
/// every subsequent run (no per-run allocation on the steady state).
///
/// Stored-to array parameters are materialized lazily: the per-run reset
/// records only the broadcast argument value (`base*`) and bumps `epoch`;
/// the kArrayExtent-element backing buffer is filled with the broadcast
/// value the first time a store to the slot actually executes that run
/// (`slot_epoch* == epoch` marks a materialized slot).  Loads from an
/// unmaterialized slot return the broadcast value directly, so a run whose
/// stores never execute — the array behaves read-only at runtime — pays
/// one scalar write instead of a 256-element broadcast.
struct ExecContext {
  std::vector<double> regs64;
  std::vector<float> regs32;
  std::vector<double> arrays64;  ///< stored-to array params, slot-major
  std::vector<float> arrays32;
  std::vector<double> base64;    ///< per-slot broadcast value, this run
  std::vector<float> base32;
  std::vector<std::uint64_t> slot_epoch64;  ///< slot materialized at epoch
  std::vector<std::uint64_t> slot_epoch32;
  std::uint64_t epoch = 0;       ///< bumped once per run; never reused
  int loop_vars[kMaxLoopDepth] = {};
  int loop_bounds[kMaxLoopDepth] = {};

  /// Scratch for the lane-parallel engine (vgpu/lane_engine.hpp):
  /// structure-of-arrays, lane-minor (element of lane l for slot s lives
  /// at [s * W + l]).  Grown on first use like the scalar buffers above;
  /// `ints` holds the raw integer arguments and is shared by both
  /// precisions, `ints_fp*` their precomputed LoadIntParam conversions.
  struct LaneScratch {
    std::vector<double> regs64, args64, ints_fp64, base64, arrays64;
    std::vector<float> regs32, args32, ints_fp32, base32, arrays32;
    std::vector<int> ints;
    std::vector<std::uint64_t> slot_epoch64, slot_epoch32;
  } lane;
};

namespace detail {
struct VmAccess;
}

/// A compiled kernel: flat instructions plus everything execution needs.
/// Immutable after compile_bytecode; safe to share across threads (each
/// thread supplies its own ExecContext).
class BytecodeProgram {
 public:
  ir::Precision precision() const noexcept { return precision_; }
  std::size_t insn_count() const noexcept { return code_.size(); }

  /// Whether run_batch routes full groups through the lane-parallel engine
  /// when the engine choice is automatic (GPUDIFF_SIMD unset).  Decided
  /// once at compile time from the instruction mix: loops diverge on their
  /// runtime trip counts and keep the vector unit partially masked, and
  /// programs with almost no vectorizable arithmetic can't amortize the
  /// group setup, so both run faster on the scalar path.  A forced
  /// GPUDIFF_SIMD engine ignores this and always takes the lane path —
  /// results are bit-identical either way; only throughput differs.
  bool lane_profitable() const noexcept { return lane_profitable_; }

  /// Execute once.  Throws std::runtime_error on argument/parameter count
  /// mismatch; numerical misbehaviour never throws.
  RunResult run(const KernelArgs& args, ExecContext& ctx) const;

  /// Execute the kernel over a batch of inputs, writing one RunResult per
  /// input.  Semantically identical to calling run() per input, but the
  /// argument validation, buffer sizing and dispatch setup are performed
  /// once for the whole batch (the campaign sweep shape: one compiled
  /// variant x many inputs), and full lane-width groups run through the
  /// lane-parallel engine selected by simd_engine() — with bit-identical
  /// results by contract.
  ///
  /// Every entry of `out` is zeroed before validation or execution, so on
  /// a throw (argument mismatch, trap mid-batch) the span holds only
  /// defined values: completed results for inputs that ran, RunResult{}
  /// for the rest — never stale memory.
  void run_batch(std::span<const KernelArgs> inputs, ExecContext& ctx,
                 RunResult* out) const;

 private:
  friend class BytecodeCompiler;
  friend struct detail::VmAccess;
  friend BytecodeProgram compile_bytecode(const ir::Program&, const fp::FpEnv&,
                                          const vmath::MathLib* mathlib);
  template <typename T>
  void run_impl(const KernelArgs& args, ExecContext& ctx, RunResult& out) const;
  /// run_impl minus buffer sizing: requires prepare<T> was called on `ctx`.
  template <typename T>
  void run_one(const KernelArgs& args, ExecContext& ctx, RunResult& out) const;
  template <typename T>
  void run_batch_impl(std::span<const KernelArgs> inputs, ExecContext& ctx,
                      RunResult* out) const;
  template <typename T>
  void prepare(ExecContext& ctx) const;

  std::vector<BcInsn> code_;
  std::vector<double> consts64_;
  std::vector<float> consts32_;
  std::vector<int> array_params_;  ///< param index per array slot
  ir::Precision precision_ = ir::Precision::FP64;
  fp::FpEnv env_;
  const vmath::MathLib* mathlib_ = nullptr;
  int num_params_ = 0;
  int num_regs_ = 0;
  int num_temps_ = 0;
  std::uint64_t cyc_div_ = 16;   ///< issue cycles per divide (CycleModel)
  std::uint64_t cyc_call_ = 24;  ///< issue cycles per library call
  bool lane_profitable_ = true;  ///< auto-dispatch verdict, see getter
};

/// Lower an optimized program once.  Never throws for malformed IR:
/// structurally bad statements (array access to a non-array parameter,
/// loop nest too deep, out-of-range indices) lower to Trap instructions
/// that raise the tree-walk interpreter's exception if — and only if —
/// execution actually reaches them, keeping the two backends equivalent
/// even for unreachable malformed statements.
BytecodeProgram compile_bytecode(const ir::Program& program, const fp::FpEnv& env,
                                 const vmath::MathLib* mathlib);

/// Which execution engine run_batch uses for full lane-width groups.  All
/// engines are bit-identical by contract (values, exception flags,
/// op/cycle counts) — the choice is invisible to reports, fingerprints
/// and merged campaign bytes.
enum class SimdEngine : std::uint8_t {
  Off,      ///< plain one-input-at-a-time interpreter loop
  Scalar1,  ///< lane engine, portable backend, width 1 (pure reference)
  Scalar,   ///< lane engine, portable backend, natural widths (4 / 8)
  Avx2,     ///< lane engine, AVX2+FMA backend (4 x double / 8 x float)
};

/// Resolve the engine from the GPUDIFF_SIMD override (support/cpu.hpp) and
/// the host CPU: unset means AVX2 when compiled in and usable, else Off.
/// Throws std::runtime_error when GPUDIFF_SIMD=avx2 is forced but the
/// binary or host cannot honor it, and std::invalid_argument on an
/// unrecognized override value.
SimdEngine simd_engine();

const char* to_string(SimdEngine engine) noexcept;

namespace lane {

/// Engine entry points, one per (backend, precision).  Each executes
/// exactly its width's worth of inputs and returns false when the group
/// must be re-run through the scalar interpreter (trap semantics).
/// Generic entries are always built; the avx2 pair exists only in
/// binaries compiled with GPUDIFF_SIMD_AVX2.
bool run_group_generic_w1_64(const BytecodeProgram&, const KernelArgs* inputs,
                             ExecContext&, RunResult* out);
bool run_group_generic_w1_32(const BytecodeProgram&, const KernelArgs* inputs,
                             ExecContext&, RunResult* out);
bool run_group_generic_64(const BytecodeProgram&, const KernelArgs* inputs,
                          ExecContext&, RunResult* out);  // W = 4
bool run_group_generic_32(const BytecodeProgram&, const KernelArgs* inputs,
                          ExecContext&, RunResult* out);  // W = 8
bool run_group_avx2_64(const BytecodeProgram&, const KernelArgs* inputs,
                       ExecContext&, RunResult* out);  // W = 4
bool run_group_avx2_32(const BytecodeProgram&, const KernelArgs* inputs,
                       ExecContext&, RunResult* out);  // W = 8

}  // namespace lane

}  // namespace gpudiff::vgpu
