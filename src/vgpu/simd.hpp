#pragma once
// Width-abstracted SIMD lanes for the bytecode VM's lane-parallel engine.
//
// A `lanes` backend packs W values of T into one vector register and
// exposes exactly the operations the lane interpreter
// (vgpu/lane_engine.hpp) needs: IEEE arithmetic, quiet comparisons that
// match C expression semantics (ordered-quiet for ==/</<=/>/>=,
// unordered-quiet for !=), bitwise combination of comparison masks, and a
// sign-bit movemask.  Masks are ordinary vectors whose lanes are all-ones
// or all-zero bit patterns, exactly as x86 compare instructions produce
// them — the portable backend maintains the same invariant so the two are
// interchangeable.
//
// Two backends:
//   * GenericLanes<T, W> — portable C++ (any W, any platform); the
//     reference implementation, always built.  W=1 is the pure scalar
//     lane path; W=4/8 exercises the full mask discipline without
//     intrinsics.
//   * Avx2Lanes<double> (W=4) / Avx2Lanes<float> (W=8) — AVX2+FMA
//     intrinsics, visible only to translation units compiled with
//     -mavx2 -mfma (bytecode_simd_avx2.cpp) and entered only after a
//     runtime cpuid check (support/cpu.hpp).
//
// Bit-identity note: every arithmetic op here is a single IEEE-754
// correctly-rounded operation under the default rounding mode, so the
// vector result of add/sub/mul/div/fma is bit-identical per lane to the
// scalar VM's `a + b` / std::fma / soft_* paths (the soft paths exist to
// avoid microcode assists, not to change results).  NaN propagation and
// FTZ/DAZ are NOT left to hardware — the lane interpreter applies the
// same explicit bit-level rules as vgpu::Fpu.

#include <cmath>
#include <cstdint>

#include "fp/bits.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define GPUDIFF_SIMD_AVX2_TU 1
#endif

namespace gpudiff::vgpu::simd {

/// Portable reference backend: W lanes of T in a plain array.
template <typename T, int W>
struct GenericLanes {
  using value_type = T;
  using Bits = typename fp::FloatTraits<T>::Bits;
  static constexpr int width = W;

  struct vec {
    T v[W];
  };

  static vec broadcast(T x) noexcept {
    vec r;
    for (int l = 0; l < W; ++l) r.v[l] = x;
    return r;
  }
  static vec zero() noexcept { return broadcast(T(0)); }
  static vec loadu(const T* p) noexcept {
    vec r;
    for (int l = 0; l < W; ++l) r.v[l] = p[l];
    return r;
  }
  static void storeu(T* p, vec x) noexcept {
    for (int l = 0; l < W; ++l) p[l] = x.v[l];
  }

  static vec add(vec a, vec b) noexcept { return map2(a, b, [](T x, T y) { return x + y; }); }
  static vec sub(vec a, vec b) noexcept { return map2(a, b, [](T x, T y) { return x - y; }); }
  static vec mul(vec a, vec b) noexcept { return map2(a, b, [](T x, T y) { return x * y; }); }
  static vec div(vec a, vec b) noexcept { return map2(a, b, [](T x, T y) { return x / y; }); }
  static vec fma(vec a, vec b, vec c) noexcept {
    vec r;
    for (int l = 0; l < W; ++l) r.v[l] = std::fma(a.v[l], b.v[l], c.v[l]);
    return r;
  }
  /// Finite-math-only compare-selects (MinNaive/MaxNaive): a<b?a:b form,
  /// which is also the exact semantics of x86 MINP*/MAXP*.
  static vec min_naive(vec a, vec b) noexcept {
    return map2(a, b, [](T x, T y) { return x < y ? x : y; });
  }
  static vec max_naive(vec a, vec b) noexcept {
    return map2(a, b, [](T x, T y) { return x > y ? x : y; });
  }

  static vec and_bits(vec a, vec b) noexcept { return bit2(a, b, [](Bits x, Bits y) { return x & y; }); }
  static vec or_bits(vec a, vec b) noexcept { return bit2(a, b, [](Bits x, Bits y) { return x | y; }); }
  static vec xor_bits(vec a, vec b) noexcept { return bit2(a, b, [](Bits x, Bits y) { return x ^ y; }); }
  /// (~a) & b — the SSE ANDNOT operand order.
  static vec andnot_bits(vec a, vec b) noexcept {
    return bit2(a, b, [](Bits x, Bits y) { return static_cast<Bits>(~x & y); });
  }
  /// m ? a : b per lane (m lanes are all-ones or all-zero).
  static vec blend(vec m, vec a, vec b) noexcept {
    vec r;
    for (int l = 0; l < W; ++l) {
      const Bits mm = fp::to_bits(m.v[l]);
      r.v[l] = fp::from_bits<T>((fp::to_bits(a.v[l]) & mm) |
                                (fp::to_bits(b.v[l]) & static_cast<Bits>(~mm)));
    }
    return r;
  }

  static vec cmp_eq(vec a, vec b) noexcept { return mask2(a, b, [](T x, T y) { return x == y; }); }
  static vec cmp_neq_uq(vec a, vec b) noexcept { return mask2(a, b, [](T x, T y) { return x != y; }); }
  static vec cmp_lt(vec a, vec b) noexcept { return mask2(a, b, [](T x, T y) { return x < y; }); }
  static vec cmp_le(vec a, vec b) noexcept { return mask2(a, b, [](T x, T y) { return x <= y; }); }
  static vec cmp_gt(vec a, vec b) noexcept { return mask2(a, b, [](T x, T y) { return x > y; }); }
  static vec cmp_ge(vec a, vec b) noexcept { return mask2(a, b, [](T x, T y) { return x >= y; }); }
  static vec cmp_unord(vec a, vec b) noexcept {
    return mask2(a, b, [](T x, T y) { return x != x || y != y; });
  }

  /// Sign bit of every lane, lane 0 in bit 0.
  static unsigned movemask(vec m) noexcept {
    unsigned bits = 0;
    for (int l = 0; l < W; ++l)
      bits |= static_cast<unsigned>(fp::to_bits(m.v[l]) >>
                                    (sizeof(Bits) * 8 - 1))
              << l;
    return bits;
  }

 private:
  template <typename F>
  static vec map2(vec a, vec b, F f) noexcept {
    vec r;
    for (int l = 0; l < W; ++l) r.v[l] = f(a.v[l], b.v[l]);
    return r;
  }
  template <typename F>
  static vec bit2(vec a, vec b, F f) noexcept {
    vec r;
    for (int l = 0; l < W; ++l)
      r.v[l] = fp::from_bits<T>(f(fp::to_bits(a.v[l]), fp::to_bits(b.v[l])));
    return r;
  }
  template <typename F>
  static vec mask2(vec a, vec b, F f) noexcept {
    vec r;
    for (int l = 0; l < W; ++l)
      r.v[l] = fp::from_bits<T>(f(a.v[l], b.v[l]) ? static_cast<Bits>(~Bits(0))
                                                  : Bits(0));
    return r;
  }
};

#if GPUDIFF_SIMD_AVX2_TU

template <typename T>
struct Avx2Lanes;

/// 4 x binary64 in one YMM register.
template <>
struct Avx2Lanes<double> {
  using value_type = double;
  using Bits = std::uint64_t;
  static constexpr int width = 4;
  using vec = __m256d;

  static vec broadcast(double x) noexcept { return _mm256_set1_pd(x); }
  static vec zero() noexcept { return _mm256_setzero_pd(); }
  static vec loadu(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void storeu(double* p, vec x) noexcept { _mm256_storeu_pd(p, x); }

  static vec add(vec a, vec b) noexcept { return _mm256_add_pd(a, b); }
  static vec sub(vec a, vec b) noexcept { return _mm256_sub_pd(a, b); }
  static vec mul(vec a, vec b) noexcept { return _mm256_mul_pd(a, b); }
  static vec div(vec a, vec b) noexcept { return _mm256_div_pd(a, b); }
  static vec fma(vec a, vec b, vec c) noexcept { return _mm256_fmadd_pd(a, b, c); }
  static vec min_naive(vec a, vec b) noexcept { return _mm256_min_pd(a, b); }
  static vec max_naive(vec a, vec b) noexcept { return _mm256_max_pd(a, b); }

  static vec and_bits(vec a, vec b) noexcept { return _mm256_and_pd(a, b); }
  static vec or_bits(vec a, vec b) noexcept { return _mm256_or_pd(a, b); }
  static vec xor_bits(vec a, vec b) noexcept { return _mm256_xor_pd(a, b); }
  static vec andnot_bits(vec a, vec b) noexcept { return _mm256_andnot_pd(a, b); }
  static vec blend(vec m, vec a, vec b) noexcept {
    // Masks are all-ones/all-zero, so sign-bit BLENDV selects correctly.
    return _mm256_blendv_pd(b, a, m);
  }

  static vec cmp_eq(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_EQ_OQ); }
  static vec cmp_neq_uq(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_NEQ_UQ); }
  static vec cmp_lt(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static vec cmp_le(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static vec cmp_gt(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static vec cmp_ge(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static vec cmp_unord(vec a, vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_UNORD_Q); }

  static unsigned movemask(vec m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
};

/// 8 x binary32 in one YMM register.
template <>
struct Avx2Lanes<float> {
  using value_type = float;
  using Bits = std::uint32_t;
  static constexpr int width = 8;
  using vec = __m256;

  static vec broadcast(float x) noexcept { return _mm256_set1_ps(x); }
  static vec zero() noexcept { return _mm256_setzero_ps(); }
  static vec loadu(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void storeu(float* p, vec x) noexcept { _mm256_storeu_ps(p, x); }

  static vec add(vec a, vec b) noexcept { return _mm256_add_ps(a, b); }
  static vec sub(vec a, vec b) noexcept { return _mm256_sub_ps(a, b); }
  static vec mul(vec a, vec b) noexcept { return _mm256_mul_ps(a, b); }
  static vec div(vec a, vec b) noexcept { return _mm256_div_ps(a, b); }
  static vec fma(vec a, vec b, vec c) noexcept { return _mm256_fmadd_ps(a, b, c); }
  static vec min_naive(vec a, vec b) noexcept { return _mm256_min_ps(a, b); }
  static vec max_naive(vec a, vec b) noexcept { return _mm256_max_ps(a, b); }

  static vec and_bits(vec a, vec b) noexcept { return _mm256_and_ps(a, b); }
  static vec or_bits(vec a, vec b) noexcept { return _mm256_or_ps(a, b); }
  static vec xor_bits(vec a, vec b) noexcept { return _mm256_xor_ps(a, b); }
  static vec andnot_bits(vec a, vec b) noexcept { return _mm256_andnot_ps(a, b); }
  static vec blend(vec m, vec a, vec b) noexcept { return _mm256_blendv_ps(b, a, m); }

  static vec cmp_eq(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_EQ_OQ); }
  static vec cmp_neq_uq(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_NEQ_UQ); }
  static vec cmp_lt(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
  static vec cmp_le(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_LE_OQ); }
  static vec cmp_gt(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  static vec cmp_ge(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_GE_OQ); }
  static vec cmp_unord(vec a, vec b) noexcept { return _mm256_cmp_ps(a, b, _CMP_UNORD_Q); }

  static unsigned movemask(vec m) noexcept {
    return static_cast<unsigned>(_mm256_movemask_ps(m));
  }
};

#endif  // GPUDIFF_SIMD_AVX2_TU

}  // namespace gpudiff::vgpu::simd
