#pragma once
// Virtual GPU device descriptors.
//
// Each descriptor pairs a toolchain with the device identity it targets in
// the paper's clusters: nvcc-sim -> "V100-sim" (Lassen), hipcc-sim ->
// "MI250X-sim" (Tioga).  The descriptor carries presentation metadata (ISA
// name for disassembly, marketing name for reports); numerical behaviour
// lives in the compiled Executable (math binding + FP environment).

#include <string>

#include "opt/pipeline.hpp"
#include "opt/platform.hpp"

namespace gpudiff::vgpu {

struct DeviceDescriptor {
  std::string name;       ///< "V100-sim"
  std::string vendor;     ///< "NVIDIA (simulated)"
  std::string isa;        ///< "PTX/SASS-sim"
  std::string cluster;    ///< paper cluster the device stands in for
  opt::Toolchain toolchain{};
};

const DeviceDescriptor& nvidia_v100_sim();
const DeviceDescriptor& amd_mi250x_sim();

/// Device for a toolchain (the pairing used throughout the campaigns).
const DeviceDescriptor& device_for(opt::Toolchain t);

/// Device a registry platform executes on.  Every configuration of one
/// toolchain shares its toolchain's device — "hipcc-ftz" is still the
/// MI250X-sim with a different build configuration, which is exactly the
/// per-configuration (not per-vendor) feature space the registry models.
const DeviceDescriptor& device_for(const opt::PlatformSpec& platform);

}  // namespace gpudiff::vgpu
