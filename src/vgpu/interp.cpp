#include "vgpu/interp.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "vgpu/bytecode.hpp"
#include "vgpu/fpu.hpp"
#include "vmath/core/kernels.hpp"

namespace gpudiff::vgpu {

namespace {

using ir::Arena;
using ir::Expr;
using ir::ExprId;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

/// Issue-cycle model (see RunResult::cycle_count).
struct CycleModel {
  std::uint64_t basic = 1;
  std::uint64_t divide = 16;
  std::uint64_t call = 24;
};

template <typename T>
class Interp {
 public:
  Interp(const opt::Executable& exe, const KernelArgs& args, RunResult& out,
         const StmtObserver* observer = nullptr)
      : exe_(exe), arena_(exe.program.arena()), args_(args), out_(out),
        observer_(observer), fpu_(exe.env, out.flags) {
    if (sizeof(T) == 4) cycles_.divide = 8;
    if (exe_.env.div32 != fp::Div32Mode::IEEE && sizeof(T) == 4)
      cycles_.divide = 2;
    const std::string& lib = exe_.mathlib->name();
    if (lib == "nv-fastmath-sim" || lib == "amd-ocml-native-sim" ||
        lib == "hip-cuda-compat-native-sim")
      cycles_.call = sizeof(T) == 4 ? 6 : 24;  // fast paths are FP32-only
    const auto& params = exe_.program.params();
    if (args_.fp.size() != params.size() || args_.ints.size() != params.size())
      throw std::runtime_error("run_kernel: argument/parameter count mismatch");
    temps_.assign(static_cast<std::size_t>(exe_.program.max_temp_id()) + 1, T(0));
    arrays_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      if (params[i].kind == ir::ParamKind::Array)
        arrays_[i].assign(ir::kArrayExtent, static_cast<T>(args_.fp[i]));
    loop_vars_.assign(kMaxLoopDepth, 0);
  }

  void run() {
    comp_ = static_cast<T>(args_.fp.at(0));
    exec_body(std::span<const StmtId>(exe_.program.body()));
    out_.value = static_cast<double>(comp_);
    out_.value_bits = static_cast<std::uint64_t>(fp::to_bits(comp_));
  }

 private:
  void exec_body(std::span<const StmtId> body) {
    for (StmtId id : body) exec(id);
  }

  void exec(StmtId sid) {
    const Stmt& s = arena_[sid];
    switch (s.kind) {
      case StmtKind::DeclTemp: {
        const T v = eval(s.a);
        if (observer_) (*observer_)(sid, static_cast<double>(v));
        temps_.at(static_cast<std::size_t>(s.index)) = v;
        break;
      }
      case StmtKind::AssignComp: {
        const T v = eval(s.a);
        if (observer_) (*observer_)(sid, static_cast<double>(v));
        switch (s.assign_op) {
          case ir::AssignOp::Set: comp_ = v; break;
          case ir::AssignOp::Add: comp_ = fpu_.add(comp_, v); break;
          case ir::AssignOp::Sub: comp_ = fpu_.sub(comp_, v); break;
          case ir::AssignOp::Mul: comp_ = fpu_.mul(comp_, v); break;
          case ir::AssignOp::Div: comp_ = fpu_.div(comp_, v); break;
        }
        ++out_.op_count;
        out_.cycle_count +=
            s.assign_op == ir::AssignOp::Div ? cycles_.divide : cycles_.basic;
        break;
      }
      case StmtKind::StoreArray: {
        auto& arr = arrays_.at(static_cast<std::size_t>(s.index));
        if (arr.empty())
          throw std::runtime_error("run_kernel: store to non-array parameter");
        const int idx = eval_index(s.a);
        const T v = eval(s.b);
        if (observer_) (*observer_)(sid, static_cast<double>(v));
        arr[static_cast<std::size_t>(idx)] = v;
        break;
      }
      case StmtKind::For: {
        if (s.index < 0 || s.index >= kMaxLoopDepth)
          throw std::runtime_error("run_kernel: loop nest too deep");
        int bound = args_.ints.at(static_cast<std::size_t>(s.bound_param));
        if (bound > kMaxTripCount) bound = kMaxTripCount;
        for (int i = 0; i < bound; ++i) {
          loop_vars_[static_cast<std::size_t>(s.index)] = i;
          exec_body(arena_.body(s));
        }
        break;
      }
      case StmtKind::If:
        if (eval_bool(s.a)) exec_body(arena_.body(s));
        break;
    }
  }

  T eval(ExprId id) {
    const Expr& e = arena_[id];
    switch (e.kind) {
      case ExprKind::Literal:
        return static_cast<T>(e.lit_value);
      case ExprKind::ParamRef: {
        // Parameter 0 is `comp`: Varity kernels use it as the mutable
        // accumulator, so reads observe the current value, not the argument.
        const auto& prm = exe_.program.params().at(static_cast<std::size_t>(e.index));
        if (prm.kind == ir::ParamKind::Comp) return comp_;
        return static_cast<T>(args_.fp.at(static_cast<std::size_t>(e.index)));
      }
      case ExprKind::IntParamRef:
        return static_cast<T>(args_.ints.at(static_cast<std::size_t>(e.index)));
      case ExprKind::ArrayRef: {
        const auto& arr = arrays_.at(static_cast<std::size_t>(e.index));
        if (arr.empty())
          throw std::runtime_error("run_kernel: load from non-array parameter");
        return arr[static_cast<std::size_t>(eval_index(e.kid[0]))];
      }
      case ExprKind::LoopVarRef:
        return static_cast<T>(loop_vars_.at(static_cast<std::size_t>(e.index)));
      case ExprKind::TempRef:
        return temps_.at(static_cast<std::size_t>(e.index));
      case ExprKind::Neg:
        return fpu_.neg(eval(e.kid[0]));
      case ExprKind::Bin: {
        const T a = eval(e.kid[0]);
        const T b = eval(e.kid[1]);
        ++out_.op_count;
        out_.cycle_count +=
            e.bin_op == ir::BinOp::Div ? cycles_.divide : cycles_.basic;
        switch (e.bin_op) {
          case ir::BinOp::Add: return fpu_.add(a, b);
          case ir::BinOp::Sub: return fpu_.sub(a, b);
          case ir::BinOp::Mul: return fpu_.mul(a, b);
          case ir::BinOp::Div: return fpu_.div(a, b);
        }
        return T(0);
      }
      case ExprKind::Fma: {
        const T a = eval(e.kid[0]);
        const T b = eval(e.kid[1]);
        const T c = eval(e.kid[2]);
        ++out_.op_count;
        out_.cycle_count += cycles_.basic;
        return fpu_.fma_op(a, b, c);
      }
      case ExprKind::Call:
        return eval_call(e);
      case ExprKind::BoolToFp:
        return eval_bool(e.kid[0]) ? T(1) : T(0);
      case ExprKind::Cmp:
      case ExprKind::BoolBin:
      case ExprKind::BoolNot:
        // Boolean expression in value position: C semantics (0/1).
        return eval_bool(id) ? T(1) : T(0);
    }
    throw std::runtime_error("run_kernel: bad expression kind");
  }

  T eval_call(const Expr& e) {
    const T a = eval(e.kid[0]);
    const T b = e.n_kids > 1 ? eval(e.kid[1]) : T(0);
    ++out_.op_count;
    out_.cycle_count += cycles_.call;
    // -ffinite-math-only simplification: fmin/fmax lower to a bare compare-
    // select, losing IEEE NaN semantics (hipcc-sim fast math).
    if (exe_.env.naive_minmax &&
        (e.fn == ir::MathFn::Fmin || e.fn == ir::MathFn::Fmax)) {
      if (e.fn == ir::MathFn::Fmin) return a < b ? a : b;
      return a > b ? a : b;
    }
    T r;
    if constexpr (sizeof(T) == 4) {
      r = exe_.mathlib->call32(e.fn, a, b);
    } else {
      r = exe_.mathlib->call64(e.fn, a, b);
    }
    const bool non_nan = !fp::is_nan_bits(a) && !fp::is_nan_bits(b);
    const bool finite = fp::is_finite_bits(a) && fp::is_finite_bits(b);
    fpu_.note_call_result(r, non_nan, finite);
    return fp::apply_ftz(r, exe_.env, &out_.flags);
  }

  bool eval_bool(ExprId id) {
    const Expr& e = arena_[id];
    switch (e.kind) {
      case ExprKind::Cmp: {
        const T a = eval(e.kid[0]);
        const T b = eval(e.kid[1]);
        ++out_.op_count;
        out_.cycle_count += cycles_.basic;
        // IEEE comparison semantics: any NaN operand makes all ordered
        // comparisons false and != true.
        switch (e.cmp_op) {
          case ir::CmpOp::Eq: return a == b;
          case ir::CmpOp::Ne: return a != b;
          case ir::CmpOp::Lt: return a < b;
          case ir::CmpOp::Le: return a <= b;
          case ir::CmpOp::Gt: return a > b;
          case ir::CmpOp::Ge: return a >= b;
        }
        return false;
      }
      case ExprKind::BoolBin:
        if (e.bool_op == ir::BoolOp::And)
          return eval_bool(e.kid[0]) && eval_bool(e.kid[1]);
        return eval_bool(e.kid[0]) || eval_bool(e.kid[1]);
      case ExprKind::BoolNot:
        return !eval_bool(e.kid[0]);
      default:
        // FP expression in boolean position (C truthiness).
        return eval(id) != T(0);
    }
  }

  /// Array subscripts: evaluated as integers, clamped into the extent
  /// (generated programs index with in-range loop variables; the clamp
  /// protects against hand-written IR).
  int eval_index(ExprId id) {
    const Expr& e = arena_[id];
    long long idx;
    if (e.kind == ExprKind::LoopVarRef) {
      idx = loop_vars_.at(static_cast<std::size_t>(e.index));
    } else if (e.kind == ExprKind::Literal) {
      idx = fp_to_subscript(e.lit_value);
    } else if (e.kind == ExprKind::IntParamRef) {
      idx = args_.ints.at(static_cast<std::size_t>(e.index));
    } else {
      // Casting NaN or an out-of-range value straight to integer is UB;
      // fp_to_subscript resolves those cases at the bit level first.
      idx = fp_to_subscript(static_cast<double>(eval(id)));
    }
    return clamp_subscript(idx);
  }

  const opt::Executable& exe_;
  const Arena& arena_;
  const KernelArgs& args_;
  RunResult& out_;
  const StmtObserver* observer_;
  Fpu<T> fpu_;
  CycleModel cycles_;
  T comp_{};
  std::vector<T> temps_;
  std::vector<std::vector<T>> arrays_;
  std::vector<int> loop_vars_;
};

std::atomic<ExecBackend> g_backend{[] {
  const char* env = std::getenv("GPUDIFF_EXEC");
  return env && std::strcmp(env, "tree") == 0 ? ExecBackend::TreeWalk
                                              : ExecBackend::Bytecode;
}()};

}  // namespace

ExecBackend exec_backend() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

void set_exec_backend(ExecBackend backend) noexcept {
  g_backend.store(backend, std::memory_order_relaxed);
}

RunResult run_kernel_tree(const opt::Executable& exe, const KernelArgs& args) {
  RunResult out;
  if (exe.program.precision() == ir::Precision::FP32) {
    Interp<float> interp(exe, args, out);
    interp.run();
  } else {
    Interp<double> interp(exe, args, out);
    interp.run();
  }
  return out;
}

RunResult run_kernel_tree(const opt::Executable& exe, const KernelArgs& args,
                          const StmtObserver& observer) {
  RunResult out;
  if (exe.program.precision() == ir::Precision::FP32) {
    Interp<float> interp(exe, args, out, &observer);
    interp.run();
  } else {
    Interp<double> interp(exe, args, out, &observer);
    interp.run();
  }
  return out;
}

RunResult run_kernel(const opt::Executable& exe, const KernelArgs& args) {
  if (exec_backend() == ExecBackend::TreeWalk) return run_kernel_tree(exe, args);
  thread_local ExecContext ctx;
  return exe.bytecode().run(args, ctx);
}

void run_kernel_batch(const opt::Executable& exe,
                      std::span<const KernelArgs> inputs, RunResult* out,
                      ExecContext& ctx) {
  if (exec_backend() == ExecBackend::TreeWalk) {
    for (std::size_t i = 0; i < inputs.size(); ++i)
      out[i] = run_kernel_tree(exe, inputs[i]);
    return;
  }
  exe.bytecode().run_batch(inputs, ctx, out);
}

void run_kernel_batch(const opt::Executable& exe,
                      std::span<const KernelArgs> inputs, RunResult* out) {
  thread_local ExecContext ctx;
  run_kernel_batch(exe, inputs, out, ctx);
}

}  // namespace gpudiff::vgpu
