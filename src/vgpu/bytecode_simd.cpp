// Portable lane-engine instantiations and SIMD engine resolution.
//
// This TU is compiled with the project's baseline flags (no AVX2), so the
// GenericLanes instantiations here run on every host and serve as the
// always-available reference for the differential tests.  The AVX2
// backend lives in bytecode_simd_avx2.cpp, compiled with -mavx2 -mfma and
// entered only behind the runtime cpuid gate below.

#include <stdexcept>

#include "support/cpu.hpp"
#include "vgpu/lane_engine.hpp"

namespace gpudiff::vgpu {

namespace lane {

bool run_group_generic_w1_64(const BytecodeProgram& bp, const KernelArgs* inputs,
                             ExecContext& ctx, RunResult* out) {
  return run_group<simd::GenericLanes<double, 1>>(bp, inputs, ctx, out);
}

bool run_group_generic_w1_32(const BytecodeProgram& bp, const KernelArgs* inputs,
                             ExecContext& ctx, RunResult* out) {
  return run_group<simd::GenericLanes<float, 1>>(bp, inputs, ctx, out);
}

bool run_group_generic_64(const BytecodeProgram& bp, const KernelArgs* inputs,
                          ExecContext& ctx, RunResult* out) {
  return run_group<simd::GenericLanes<double, 4>>(bp, inputs, ctx, out);
}

bool run_group_generic_32(const BytecodeProgram& bp, const KernelArgs* inputs,
                          ExecContext& ctx, RunResult* out) {
  return run_group<simd::GenericLanes<float, 8>>(bp, inputs, ctx, out);
}

}  // namespace lane

SimdEngine simd_engine() {
  switch (support::simd_override()) {
    case support::SimdOverride::Off:
      return SimdEngine::Off;
    case support::SimdOverride::Scalar:
      return SimdEngine::Scalar;
    case support::SimdOverride::Scalar1:
      return SimdEngine::Scalar1;
    case support::SimdOverride::Avx2:
#if defined(GPUDIFF_SIMD_AVX2)
      if (support::cpu_features().avx2_usable()) return SimdEngine::Avx2;
      throw std::runtime_error(
          "GPUDIFF_SIMD=avx2: host CPU/OS lacks AVX2+FMA with YMM state (" +
          support::cpu_features().to_string() + ")");
#else
      throw std::runtime_error(
          "GPUDIFF_SIMD=avx2: this binary was built without AVX2 support");
#endif
    case support::SimdOverride::Auto:
      break;
  }
#if defined(GPUDIFF_SIMD_AVX2)
  if (support::cpu_features().avx2_usable()) return SimdEngine::Avx2;
#endif
  return SimdEngine::Off;
}

const char* to_string(SimdEngine engine) noexcept {
  switch (engine) {
    case SimdEngine::Off: return "off";
    case SimdEngine::Scalar1: return "scalar1";
    case SimdEngine::Scalar: return "scalar";
    case SimdEngine::Avx2: return "avx2";
  }
  return "?";
}

}  // namespace gpudiff::vgpu
