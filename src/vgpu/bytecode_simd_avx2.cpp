// AVX2+FMA lane-engine instantiations: 4 x binary64 / 8 x binary32 per
// YMM register.
//
// Compiled with -mavx2 -mfma (per-source options set by CMake when the
// toolchain targets x86-64), so this is the only TU allowed to emit VEX
// instructions.  Callers must gate entry on support::cpu_features()
// .avx2_usable() — run_batch does, via simd_engine().  When the build
// does not enable AVX2 this TU compiles to nothing and the entry points
// are never referenced (bytecode.cpp guards them with GPUDIFF_SIMD_AVX2).

#include "vgpu/simd.hpp"

#if GPUDIFF_SIMD_AVX2_TU

#include "vgpu/lane_engine.hpp"

namespace gpudiff::vgpu::lane {

bool run_group_avx2_64(const BytecodeProgram& bp, const KernelArgs* inputs,
                       ExecContext& ctx, RunResult* out) {
  return run_group<simd::Avx2Lanes<double>>(bp, inputs, ctx, out);
}

bool run_group_avx2_32(const BytecodeProgram& bp, const KernelArgs* inputs,
                       ExecContext& ctx, RunResult* out) {
  return run_group<simd::Avx2Lanes<float>>(bp, inputs, ctx, out);
}

}  // namespace gpudiff::vgpu::lane

#endif  // GPUDIFF_SIMD_AVX2_TU
