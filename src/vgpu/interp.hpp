#pragma once
// Kernel execution on the virtual GPU.
//
// run_kernel() interprets a compiled Executable with one thread — Varity
// kernels are launched <<<1,1>>> and compute a single `comp` value which
// the kernel prints with printf("%.17g\n", comp).  The result captures the
// printed string (the artifact the differential tester compares), the raw
// IEEE bits, the accumulated exception flags (Table II) and an operation
// count used for the deterministic runtime shape of Table I.

#include <cstdint>
#include <string>

#include "fp/exceptions.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/args.hpp"

namespace gpudiff::vgpu {

struct RunResult {
  std::string printed;        ///< printf("%.17g\n", comp) payload (no \n)
  double value = 0.0;         ///< comp widened to double (exact for FP32)
  std::uint64_t value_bits = 0;  ///< IEEE bits of comp in its own precision
  fp::ExceptionFlags flags;   ///< accumulated FP exceptions
  std::uint64_t op_count = 0; ///< FP operations executed (deterministic cost)
  /// Deterministic cost under a simple device timing model (issue cycles:
  /// add/mul/fma = 1, IEEE divide = 16 (FP64) / 8 (FP32), approximate
  /// divide = 2, library call = 24, fast-math intrinsic = 6).  Drives the
  /// runtime column of the Table I reproduction.
  std::uint64_t cycle_count = 0;
};

/// Execute the kernel once.  Throws std::runtime_error on malformed IR
/// (e.g. argument/parameter mismatch); numerical misbehaviour never throws.
RunResult run_kernel(const opt::Executable& exe, const KernelArgs& args);

}  // namespace gpudiff::vgpu
