#pragma once
// Kernel execution on the virtual GPU.
//
// run_kernel() executes a compiled Executable with one thread — Varity
// kernels are launched <<<1,1>>> and compute a single `comp` value which
// the kernel prints with printf("%.17g\n", comp).  Two backends implement
// identical semantics:
//
//   * the bytecode register VM (vgpu/bytecode.hpp) — the default: the
//     Executable caches a flat BytecodeProgram built once at compile time,
//     and run_kernel executes it with a per-thread reusable ExecContext
//     (no recursion, no pointer chasing, no per-run allocation);
//   * the tree-walk interpreter (interp.cpp) — the reference oracle,
//     selected with set_exec_backend(ExecBackend::TreeWalk), the
//     GPUDIFF_EXEC=tree environment variable, or directly via
//     run_kernel_tree().
//
// The result captures the raw IEEE bits of comp, the accumulated exception
// flags (Table II) and deterministic op/cycle counts (Table I).  The
// %.17g string the differential tester compares is NOT materialized per
// run: RunResult::printed() formats it on demand from `value` (lossless —
// device printf promotes float to double, so the string is a pure function
// of the widened value).  Callers on the hot path compare `value_bits`
// first and only format when recording a discrepancy.

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "fp/exceptions.hpp"
#include "fp/hexfloat.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/args.hpp"

namespace gpudiff::vgpu {

struct RunResult {
  double value = 0.0;         ///< comp widened to double (exact for FP32)
  std::uint64_t value_bits = 0;  ///< IEEE bits of comp in its own precision
  fp::ExceptionFlags flags;   ///< accumulated FP exceptions
  std::uint64_t op_count = 0; ///< FP operations executed (deterministic cost)
  /// Deterministic cost under a simple device timing model (issue cycles:
  /// add/mul/fma = 1, IEEE divide = 16 (FP64) / 8 (FP32), approximate
  /// divide = 2, library call = 24, fast-math intrinsic = 6).  Drives the
  /// runtime column of the Table I reproduction.
  std::uint64_t cycle_count = 0;

  /// printf("%.17g\n", comp) payload (no \n), formatted on demand.
  std::string printed() const { return fp::print_g17(value); }
};

/// Which interpreter run_kernel dispatches to (process-wide).
enum class ExecBackend : std::uint8_t { Bytecode, TreeWalk };
ExecBackend exec_backend() noexcept;
void set_exec_backend(ExecBackend backend) noexcept;

/// Execute the kernel once.  Throws std::runtime_error on malformed IR
/// (e.g. argument/parameter mismatch); numerical misbehaviour never throws.
RunResult run_kernel(const opt::Executable& exe, const KernelArgs& args);

/// The tree-walk reference oracle, always available regardless of the
/// process-wide backend selection (used by the differential self-tests).
RunResult run_kernel_tree(const opt::Executable& exe, const KernelArgs& args);

/// Per-statement value observer for the tree-walk oracle: called once per
/// *executed* value-producing statement (DeclTemp init, AssignComp RHS
/// before the compound op, StoreArray stored value) with the value widened
/// to double.  Statements inside loops report once per trip.  The reducer's
/// constant-folding pass records these to replace live subexpressions with
/// their observed constants.
using StmtObserver = std::function<void(ir::StmtId, double)>;

/// Tree-walk execution with statement observation (reducer support; the
/// plain overloads stay observer-free on the hot path).
RunResult run_kernel_tree(const opt::Executable& exe, const KernelArgs& args,
                          const StmtObserver& observer);

/// Execute the kernel over a batch of inputs (one RunResult per input).
/// Bit-identical to per-input run_kernel calls; the bytecode backend
/// validates arguments and sizes its ExecContext once per batch instead of
/// once per run, which is the campaign sweep shape (ROADMAP "batched input
/// sweeps").
void run_kernel_batch(const opt::Executable& exe,
                      std::span<const KernelArgs> inputs, RunResult* out);

struct ExecContext;  // vgpu/bytecode.hpp

/// Batch execution with a caller-owned ExecContext, for callers that sweep
/// many (program, level) batches on one thread and want the VM scratch
/// reused across all of them (the campaign driver's SweepContext).  The
/// tree-walk backend ignores the context.
void run_kernel_batch(const opt::Executable& exe,
                      std::span<const KernelArgs> inputs, RunResult* out,
                      ExecContext& ctx);

}  // namespace gpudiff::vgpu
