#pragma once
// Kernel argument sets: the "Inputs:" line of a Varity test.
//
// One value per kernel parameter, aligned with Program::params():
// floating parameters (comp, scalars, arrays) use `fp`; integer loop bounds
// use `ints`.  Array parameters are initialized with their fp value
// replicated across all kArrayExtent elements, as Varity's generated main()
// does.  FP32 programs store the float value widened to double (exact).

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "support/json.hpp"

namespace gpudiff::vgpu {

struct KernelArgs {
  std::vector<double> fp;  ///< indexed by param; valid for Comp/Scalar/Array
  std::vector<int> ints;   ///< indexed by param; valid for Int

  /// Varity input-file spelling: "+0.0 5 +1.7612E-322 ..." in param order.
  std::string to_varity_string(const ir::Program& program) const;

  /// Lossless metadata encoding (IEEE bit strings for fp values).
  support::Json to_json(const ir::Program& program) const;
  static KernelArgs from_json(const support::Json& j, const ir::Program& program);

  friend bool operator==(const KernelArgs&, const KernelArgs&) = default;
};

}  // namespace gpudiff::vgpu
