#include "vgpu/pseudo_asm.hpp"

#include <vector>

#include "fp/hexfloat.hpp"
#include "support/strings.hpp"

namespace gpudiff::vgpu {

namespace {

using ir::Arena;
using ir::Expr;
using ir::ExprId;
using ir::ExprKind;
using ir::Precision;
using ir::Program;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

/// Emits one of the two flavours; shared walking logic, dialect hooks below.
class Disassembler {
 public:
  explicit Disassembler(const opt::Executable& exe)
      : exe_(exe),
        arena_(exe.program.arena()),
        nv_(exe.toolchain == opt::Toolchain::Nvcc),
        f32_(exe.program.precision() == Precision::FP32) {}

  std::string run() {
    const Program& p = exe_.program;
    out_ += "// " + exe_.description() + "  [" +
            (nv_ ? "PTX-sim" : "GCN-sim") + ", " +
            (f32_ ? "FP32" : "FP64") + "]\n";
    out_ += nv_ ? ".visible .entry compute(...)\n{\n"
                : "compute:                      ; @compute\n";
    comp_reg_ = fresh();
    emit_line(nv_ ? support::format("ld.param%s %s, [comp];", suffix(), reg(comp_reg_))
                  : support::format("%s = s_load %s [comp]", reg(comp_reg_), vsuffix()));
    walk_body(std::span<const StmtId>(p.body()));
    emit_line(nv_ ? support::format("// vprintf(\"%%.17g\", %s)", reg(comp_reg_))
                  : support::format("; printf \"%%.17g\", %s", reg(comp_reg_)));
    out_ += nv_ ? "}\n" : "s_endpgm\n";
    return out_;
  }

 private:
  const char* suffix() const { return f32_ ? ".f32" : ".f64"; }
  const char* vsuffix() const { return f32_ ? "b32" : "b64"; }

  int fresh() { return next_reg_++; }

  std::string reg(int r) const {
    if (nv_) return support::format("%%%s%d", f32_ ? "f" : "fd", r);
    return f32_ ? support::format("v%d", r) : support::format("v[%d:%d]", 2 * r, 2 * r + 1);
  }

  std::string preg(int r) const {
    return nv_ ? support::format("%%p%d", r) : support::format("s[%d:%d]", 2 * r, 2 * r + 1);
  }

  void emit_line(const std::string& line) {
    out_ += "  " + std::string(static_cast<std::size_t>(indent_) * 2, ' ') + line + "\n";
  }

  void op3(const char* ptx, const char* gcn, int dst, int a, int b) {
    if (nv_)
      emit_line(support::format("%s%s %s, %s, %s;", ptx, suffix(), reg(dst).c_str(),
                                reg(a).c_str(), reg(b).c_str()));
    else
      emit_line(support::format("%s_%s %s, %s, %s", gcn, f32_ ? "f32" : "f64",
                                reg(dst).c_str(), reg(a).c_str(), reg(b).c_str()));
  }

  int emit_expr(ExprId id) {
    const Expr& e = arena_[id];
    switch (e.kind) {
      case ExprKind::Literal: {
        const int r = fresh();
        const std::string lit =
            f32_ ? fp::print_g9(static_cast<float>(e.lit_value))
                 : fp::print_g17(e.lit_value);
        if (nv_)
          emit_line(support::format("mov%s %s, 0d%016llX; // %s", suffix(),
                                    reg(r).c_str(),
                                    static_cast<unsigned long long>(
                                        fp::to_bits(e.lit_value)),
                                    lit.c_str()));
        else
          emit_line(support::format("%s = v_mov %s  ; %s", reg(r).c_str(),
                                    vsuffix(), lit.c_str()));
        return r;
      }
      case ExprKind::ParamRef:
      case ExprKind::IntParamRef: {
        const int r = fresh();
        const auto& name = exe_.program.params().at(static_cast<std::size_t>(e.index)).name;
        emit_line(nv_ ? support::format("ld.param%s %s, [%s];", suffix(),
                                        reg(r).c_str(), name.c_str())
                      : support::format("%s = s_load %s [%s]", reg(r).c_str(),
                                        vsuffix(), name.c_str()));
        return r;
      }
      case ExprKind::ArrayRef: {
        const int idx = emit_expr(e.kid[0]);
        const int r = fresh();
        const auto& name = exe_.program.params().at(static_cast<std::size_t>(e.index)).name;
        emit_line(nv_ ? support::format("ld.global%s %s, [%s + %s];", suffix(),
                                        reg(r).c_str(), name.c_str(), reg(idx).c_str())
                      : support::format("%s = global_load %s [%s + %s]",
                                        reg(r).c_str(), vsuffix(), name.c_str(),
                                        reg(idx).c_str()));
        return r;
      }
      case ExprKind::LoopVarRef: {
        const int r = fresh();
        emit_line(nv_ ? support::format("cvt.rn%s.s32 %s, %%r_i%d;", suffix(),
                                        reg(r).c_str(), e.index)
                      : support::format("%s = v_cvt_%s_i32 s_i%d", reg(r).c_str(),
                                        f32_ ? "f32" : "f64", e.index));
        return r;
      }
      case ExprKind::TempRef: {
        const int r = fresh();
        emit_line(nv_ ? support::format("mov%s %s, %%tmp%d;", suffix(),
                                        reg(r).c_str(), e.index)
                      : support::format("%s = v_mov tmp%d", reg(r).c_str(), e.index));
        return r;
      }
      case ExprKind::Neg: {
        const int a = emit_expr(e.kid[0]);
        const int r = fresh();
        emit_line(nv_ ? support::format("neg%s %s, %s;", suffix(), reg(r).c_str(),
                                        reg(a).c_str())
                      : support::format("v_xor_b32 %s, %s, 0x80000000", reg(r).c_str(),
                                        reg(a).c_str()));
        return r;
      }
      case ExprKind::Bin: {
        const int a = emit_expr(e.kid[0]);
        const int b = emit_expr(e.kid[1]);
        const int r = fresh();
        switch (e.bin_op) {
          case ir::BinOp::Add: op3("add.rn", "v_add", r, a, b); break;
          case ir::BinOp::Sub: op3("sub.rn", "v_sub", r, a, b); break;
          case ir::BinOp::Mul: op3("mul.rn", "v_mul", r, a, b); break;
          case ir::BinOp::Div:
            if (nv_ && f32_ && exe_.env.div32 == fp::Div32Mode::NvApprox) {
              emit_line(support::format("div.approx.f32 %s, %s, %s; // __fdividef",
                                        reg(r).c_str(), reg(a).c_str(), reg(b).c_str()));
            } else if (!nv_ && f32_ && exe_.env.div32 == fp::Div32Mode::AmdApprox) {
              emit_line(support::format("v_rcp_f32 %s, %s", reg(r).c_str(), reg(b).c_str()));
              emit_line(support::format("v_mul_f32 %s, %s, %s", reg(r).c_str(),
                                        reg(a).c_str(), reg(r).c_str()));
            } else {
              op3("div.rn", "v_div_fixup", r, a, b);
            }
            break;
        }
        return r;
      }
      case ExprKind::Fma: {
        const int a = emit_expr(e.kid[0]);
        const int b = emit_expr(e.kid[1]);
        const int c = emit_expr(e.kid[2]);
        const int r = fresh();
        if (nv_)
          emit_line(support::format("fma.rn%s %s, %s, %s, %s;", suffix(),
                                    reg(r).c_str(), reg(a).c_str(), reg(b).c_str(),
                                    reg(c).c_str()));
        else
          emit_line(support::format("v_fma_%s %s, %s, %s, %s", f32_ ? "f32" : "f64",
                                    reg(r).c_str(), reg(a).c_str(), reg(b).c_str(),
                                    reg(c).c_str()));
        return r;
      }
      case ExprKind::Call: {
        std::vector<int> args;
        for (int i = 0; i < e.n_kids; ++i) args.push_back(emit_expr(e.kid[i]));
        const int r = fresh();
        const std::string sym = exe_.mathlib->symbol(e.fn, exe_.program.precision());
        std::string arglist;
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (i) arglist += ", ";
          arglist += reg(args[i]);
        }
        if (nv_)
          emit_line(support::format("call.uni (%s), %s, (%s);", reg(r).c_str(),
                                    sym.c_str(), arglist.c_str()));
        else
          emit_line(support::format("s_swappc_b64 %s = %s(%s)", reg(r).c_str(),
                                    sym.c_str(), arglist.c_str()));
        return r;
      }
      case ExprKind::Cmp:
      case ExprKind::BoolBin:
      case ExprKind::BoolNot: {
        const int p = emit_bool(id);
        const int r = fresh();
        emit_line(nv_ ? support::format("selp%s %s, 1.0, 0.0, %s;", suffix(),
                                        reg(r).c_str(), preg(p).c_str())
                      : support::format("v_cndmask %s, 0, 1.0, %s", reg(r).c_str(),
                                        preg(p).c_str()));
        return r;
      }
      case ExprKind::BoolToFp: {
        const int p = emit_bool(e.kid[0]);
        const int r = fresh();
        emit_line(nv_ ? support::format("selp%s %s, 1.0, 0.0, %s; // if-conversion",
                                        reg(r).c_str(), preg(p).c_str())
                      : support::format("v_cndmask %s, 0, 1.0, %s ; if-conversion",
                                        reg(r).c_str(), preg(p).c_str()));
        return r;
      }
    }
    return fresh();
  }

  int emit_bool(ExprId id) {
    const Expr& e = arena_[id];
    switch (e.kind) {
      case ExprKind::Cmp: {
        const int a = emit_expr(e.kid[0]);
        const int b = emit_expr(e.kid[1]);
        const int p = next_pred_++;
        const char* op = "";
        switch (e.cmp_op) {
          case ir::CmpOp::Eq: op = "eq"; break;
          case ir::CmpOp::Ne: op = "ne"; break;
          case ir::CmpOp::Lt: op = "lt"; break;
          case ir::CmpOp::Le: op = "le"; break;
          case ir::CmpOp::Gt: op = "gt"; break;
          case ir::CmpOp::Ge: op = "ge"; break;
        }
        emit_line(nv_ ? support::format("setp.%s%s %s, %s, %s;", op, suffix(),
                                        preg(p).c_str(), reg(a).c_str(), reg(b).c_str())
                      : support::format("v_cmp_%s_%s %s, %s, %s", op,
                                        f32_ ? "f32" : "f64", preg(p).c_str(),
                                        reg(a).c_str(), reg(b).c_str()));
        return p;
      }
      case ExprKind::BoolBin: {
        const int a = emit_bool(e.kid[0]);
        const int b = emit_bool(e.kid[1]);
        const int p = next_pred_++;
        const char* op = e.bool_op == ir::BoolOp::And ? "and" : "or";
        emit_line(nv_ ? support::format("%s.pred %s, %s, %s;", op, preg(p).c_str(),
                                        preg(a).c_str(), preg(b).c_str())
                      : support::format("s_%s_b64 %s, %s, %s", op, preg(p).c_str(),
                                        preg(a).c_str(), preg(b).c_str()));
        return p;
      }
      case ExprKind::BoolNot: {
        const int a = emit_bool(e.kid[0]);
        const int p = next_pred_++;
        emit_line(nv_ ? support::format("not.pred %s, %s;", preg(p).c_str(),
                                        preg(a).c_str())
                      : support::format("s_not_b64 %s, %s", preg(p).c_str(),
                                        preg(a).c_str()));
        return p;
      }
      default: {
        const int v = emit_expr(id);
        const int p = next_pred_++;
        emit_line(nv_ ? support::format("setp.ne%s %s, %s, 0.0;", suffix(),
                                        preg(p).c_str(), reg(v).c_str())
                      : support::format("v_cmp_ne_%s %s, %s, 0", f32_ ? "f32" : "f64",
                                        preg(p).c_str(), reg(v).c_str()));
        return p;
      }
    }
  }

  void walk_body(std::span<const StmtId> body) {
    for (StmtId id : body) walk(arena_[id]);
  }

  void walk(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::DeclTemp: {
        const int v = emit_expr(s.a);
        emit_line(nv_ ? support::format("mov%s %%tmp%d, %s;", suffix(), s.index,
                                        reg(v).c_str())
                      : support::format("tmp%d = v_mov %s", s.index, reg(v).c_str()));
        break;
      }
      case StmtKind::AssignComp: {
        const int v = emit_expr(s.a);
        const int r = fresh();
        switch (s.assign_op) {
          case ir::AssignOp::Set:
            emit_line(nv_ ? support::format("mov%s %s, %s;", suffix(), reg(r).c_str(),
                                            reg(v).c_str())
                          : support::format("%s = v_mov %s", reg(r).c_str(),
                                            reg(v).c_str()));
            break;
          case ir::AssignOp::Add: op3("add.rn", "v_add", r, comp_reg_, v); break;
          case ir::AssignOp::Sub: op3("sub.rn", "v_sub", r, comp_reg_, v); break;
          case ir::AssignOp::Mul: op3("mul.rn", "v_mul", r, comp_reg_, v); break;
          case ir::AssignOp::Div: op3("div.rn", "v_div_fixup", r, comp_reg_, v); break;
        }
        comp_reg_ = r;
        break;
      }
      case StmtKind::StoreArray: {
        const int idx = emit_expr(s.a);
        const int v = emit_expr(s.b);
        const auto& name = exe_.program.params().at(static_cast<std::size_t>(s.index)).name;
        emit_line(nv_ ? support::format("st.global%s [%s + %s], %s;", suffix(),
                                        name.c_str(), reg(idx).c_str(), reg(v).c_str())
                      : support::format("global_store [%s + %s], %s", name.c_str(),
                                        reg(idx).c_str(), reg(v).c_str()));
        break;
      }
      case StmtKind::For: {
        const int label = next_label_++;
        const auto& bound =
            exe_.program.params().at(static_cast<std::size_t>(s.bound_param)).name;
        emit_line(nv_ ? support::format("mov.s32 %%r_i%d, 0;", s.index)
                      : support::format("s_i%d = s_mov_b32 0", s.index));
        emit_line(support::format(nv_ ? "LBB_%d: // loop over %s" : "BB_%d: ; loop over %s",
                                  label, bound.c_str()));
        ++indent_;
        walk_body(arena_.body(s));
        emit_line(nv_ ? support::format("add.s32 %%r_i%d, %%r_i%d, 1;", s.index, s.index)
                      : support::format("s_i%d = s_add_i32 s_i%d, 1", s.index, s.index));
        --indent_;
        emit_line(nv_ ? support::format("setp.lt.s32 %%p_l%d, %%r_i%d, [%s]; @%%p_l%d bra LBB_%d;",
                                        label, s.index, bound.c_str(), label, label)
                      : support::format("s_cmp_lt_i32 s_i%d, [%s]; s_cbranch_scc1 BB_%d",
                                        s.index, bound.c_str(), label));
        break;
      }
      case StmtKind::If: {
        const int p = emit_bool(s.a);
        const int label = next_label_++;
        emit_line(nv_ ? support::format("@!%s bra LBB_END_%d;", preg(p).c_str(), label)
                      : support::format("s_and_saveexec_b64 exec, %s ; branch BB_END_%d",
                                        preg(p).c_str(), label));
        ++indent_;
        walk_body(arena_.body(s));
        --indent_;
        emit_line(support::format(nv_ ? "LBB_END_%d:" : "BB_END_%d: ; s_or_b64 exec", label));
        break;
      }
    }
  }

  const opt::Executable& exe_;
  const Arena& arena_;
  bool nv_;
  bool f32_;
  std::string out_;
  int next_reg_ = 1;
  int next_pred_ = 1;
  int next_label_ = 0;
  int indent_ = 0;
  int comp_reg_ = 0;
};

}  // namespace

std::string disassemble(const opt::Executable& exe) { return Disassembler(exe).run(); }

}  // namespace gpudiff::vgpu
