#include "vgpu/bytecode.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/cpu.hpp"
#include "vgpu/fpu.hpp"

namespace gpudiff::vgpu {

namespace {

using ir::Arena;
using ir::Expr;
using ir::ExprId;
using ir::ExprKind;
using ir::Program;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

}  // namespace

/// Lowers one Program into a BytecodeProgram.  Registers [0, n_temps) are
/// pinned to IR temporaries; expression scratch is stack-allocated above
/// them with a high-water mark that sizes the register file.
class BytecodeCompiler {
 public:
  BytecodeCompiler(const Program& program, BytecodeProgram& out)
      : program_(program), arena_(program.arena()), out_(out) {
    scratch_base_ = program.max_temp_id() + 1;
    out_.num_temps_ = scratch_base_;
    out_.num_regs_ = scratch_base_;
    const auto& params = program.params();
    out_.num_params_ = static_cast<int>(params.size());
    array_slot_.assign(params.size(), -1);
    // Arrays the program stores to get backing storage; read-only arrays
    // keep their broadcast argument value, so loads lower to scalar loads.
    mark_stores(std::span<const StmtId>(program.body()));
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (params[i].kind == ir::ParamKind::Array && stored_[i]) {
        array_slot_[i] = static_cast<int>(out_.array_params_.size());
        out_.array_params_.push_back(static_cast<int>(i));
      }
    }
  }

  void compile() {
    compile_body(std::span<const StmtId>(program_.body()));
    emit({BcOp::Halt});
  }

 private:
  // --- emission helpers -------------------------------------------------
  int emit(BcInsn insn) {
    out_.code_.push_back(insn);
    return static_cast<int>(out_.code_.size()) - 1;
  }
  int here() const noexcept { return static_cast<int>(out_.code_.size()); }
  void patch(int insn_index, int target) {
    out_.code_[static_cast<std::size_t>(insn_index)].dst = target;
  }

  int alloc(int& next) {
    const int r = next++;
    out_.num_regs_ = std::max(out_.num_regs_, next);
    return r;
  }

  void trap(TrapKind kind) {
    BcInsn insn{BcOp::Trap};
    insn.aux = static_cast<std::uint8_t>(kind);
    emit(insn);
  }
  /// Expression-position trap: the dummy register is never read because
  /// the trap throws before any consumer executes.
  int trap_expr(TrapKind kind, int& next) {
    trap(kind);
    return alloc(next);
  }

  int const_index(double v) {
    // The pool is tiny; linear probing beats a map at this size.  Constants
    // are matched by bits so -0.0 and 0.0 stay distinct.
    const auto bits = fp::to_bits(v);
    for (std::size_t i = 0; i < out_.consts64_.size(); ++i)
      if (fp::to_bits(out_.consts64_[i]) == bits) return static_cast<int>(i);
    out_.consts64_.push_back(v);
    out_.consts32_.push_back(static_cast<float>(v));
    return static_cast<int>(out_.consts64_.size()) - 1;
  }

  void mark_stores(std::span<const StmtId> body) {
    if (stored_.empty()) stored_.assign(program_.params().size(), false);
    for (StmtId id : body) {
      const Stmt& s = arena_[id];
      if (s.kind == StmtKind::StoreArray && s.index >= 0 &&
          static_cast<std::size_t>(s.index) < stored_.size())
        stored_[static_cast<std::size_t>(s.index)] = true;
      if (s.kind == StmtKind::For || s.kind == StmtKind::If)
        mark_stores(arena_.body(s));
    }
  }

  // --- statements -------------------------------------------------------
  void compile_body(std::span<const StmtId> body) {
    for (StmtId id : body) compile_stmt(arena_[id]);
  }

  void compile_stmt(const Stmt& s) {
    int next = scratch_base_;
    switch (s.kind) {
      case StmtKind::DeclTemp: {
        const int temp_reg = s.index;
        if (temp_reg < 0 || temp_reg >= scratch_base_) {
          trap(TrapKind::IndexOutOfRange);
          break;
        }
        const int r = compile_expr(s.a, next);
        if (r != temp_reg)
          emit({BcOp::Mov, 0, 0, 0, temp_reg, r});
        break;
      }
      case StmtKind::AssignComp: {
        const int r = compile_expr(s.a, next);
        BcInsn insn{BcOp::AssignComp};
        insn.aux = static_cast<std::uint8_t>(s.assign_op);
        insn.a = r;
        emit(insn);
        break;
      }
      case StmtKind::StoreArray: {
        const auto& params = program_.params();
        if (s.index < 0 || static_cast<std::size_t>(s.index) >= params.size()) {
          trap(TrapKind::IndexOutOfRange);
          break;
        }
        if (params[static_cast<std::size_t>(s.index)].kind != ir::ParamKind::Array) {
          trap(TrapKind::NonArrayStore);
          break;
        }
        IndexMode mode;
        int sub = 0;
        compile_subscript(s.a, next, mode, sub);
        const int rv = compile_expr(s.b, next);
        BcInsn insn{BcOp::StoreArr};
        insn.aux = static_cast<std::uint8_t>(mode);
        insn.u16 = static_cast<std::uint16_t>(array_slot_[static_cast<std::size_t>(s.index)]);
        insn.a = sub;
        insn.b = rv;
        emit(insn);
        break;
      }
      case StmtKind::For: {
        if (s.index < 0 || s.index >= kMaxLoopDepth) {
          trap(TrapKind::LoopTooDeep);
          break;
        }
        if (s.bound_param < 0 ||
            static_cast<std::size_t>(s.bound_param) >= program_.params().size()) {
          trap(TrapKind::IndexOutOfRange);
          break;
        }
        BcInsn init{BcOp::ForInit};
        init.u16 = static_cast<std::uint16_t>(s.index);
        init.a = s.bound_param;
        const int init_idx = emit(init);
        const int body_start = here();
        compile_body(arena_.body(s));
        BcInsn step{BcOp::ForNext};
        step.u16 = static_cast<std::uint16_t>(s.index);
        step.dst = body_start;
        emit(step);
        patch(init_idx, here());
        break;
      }
      case StmtKind::If: {
        std::vector<int> to_end;
        compile_cond(s.a, next, /*sense=*/false, to_end);
        compile_body(arena_.body(s));
        for (int idx : to_end) patch(idx, here());
        break;
      }
    }
  }

  // --- expressions ------------------------------------------------------
  /// Compile `e`, returning the register holding its value.  Leaves that
  /// already live in a register (temporaries) are returned in place.
  int compile_expr(ExprId id, int& next) {
    const Expr& e = arena_[id];
    switch (e.kind) {
      case ExprKind::Literal: {
        const int dst = alloc(next);
        emit({BcOp::LoadConst, 0, 0, 0, dst, const_index(e.lit_value)});
        return dst;
      }
      case ExprKind::ParamRef: {
        const auto& params = program_.params();
        if (e.index < 0 || static_cast<std::size_t>(e.index) >= params.size())
          return trap_expr(TrapKind::IndexOutOfRange, next);
        const int dst = alloc(next);
        // Parameter 0 is `comp`: Varity kernels use it as the mutable
        // accumulator, so reads observe the current value, not the argument.
        if (params[static_cast<std::size_t>(e.index)].kind == ir::ParamKind::Comp)
          emit({BcOp::LoadComp, 0, 0, 0, dst});
        else
          emit({BcOp::LoadParam, 0, 0, 0, dst, e.index});
        return dst;
      }
      case ExprKind::IntParamRef: {
        if (bad_param(e.index)) return trap_expr(TrapKind::IndexOutOfRange, next);
        const int dst = alloc(next);
        emit({BcOp::LoadIntParam, 0, 0, 0, dst, e.index});
        return dst;
      }
      case ExprKind::ArrayRef: {
        const auto& params = program_.params();
        if (e.index < 0 || static_cast<std::size_t>(e.index) >= params.size())
          return trap_expr(TrapKind::IndexOutOfRange, next);
        if (params[static_cast<std::size_t>(e.index)].kind != ir::ParamKind::Array)
          return trap_expr(TrapKind::NonArrayLoad, next);
        const int mark = next;
        IndexMode mode;
        int sub = 0;
        compile_subscript(e.kid[0], next, mode, sub);
        next = mark;
        const int dst = alloc(next);
        const int slot = array_slot_[static_cast<std::size_t>(e.index)];
        if (slot < 0) {
          // Never stored to: every element equals the broadcast argument.
          // The subscript (already compiled, for its op/flag effects) is
          // irrelevant to the loaded value.
          emit({BcOp::LoadParam, 0, 0, 0, dst, e.index});
        } else {
          BcInsn insn{BcOp::LoadArr};
          insn.aux = static_cast<std::uint8_t>(mode);
          insn.u16 = static_cast<std::uint16_t>(slot);
          insn.dst = dst;
          insn.a = sub;
          emit(insn);
        }
        return dst;
      }
      case ExprKind::LoopVarRef: {
        if (e.index < 0 || e.index >= kMaxLoopDepth)
          return trap_expr(TrapKind::IndexOutOfRange, next);
        const int dst = alloc(next);
        emit({BcOp::LoadLoopVar, 0, 0, 0, dst, e.index});
        return dst;
      }
      case ExprKind::TempRef: {
        if (e.index < 0 || e.index >= scratch_base_)
          return trap_expr(TrapKind::IndexOutOfRange, next);
        return e.index;
      }
      case ExprKind::Neg: {
        const int mark = next;
        const int r = compile_expr(e.kid[0], next);
        next = mark;
        const int dst = alloc(next);
        emit({BcOp::Neg, 0, 0, 0, dst, r});
        return dst;
      }
      case ExprKind::Bin: {
        const int mark = next;
        const int ra = compile_expr(e.kid[0], next);
        const int rb = compile_expr(e.kid[1], next);
        next = mark;
        const int dst = alloc(next);
        BcOp op = BcOp::Add;
        switch (e.bin_op) {
          case ir::BinOp::Add: op = BcOp::Add; break;
          case ir::BinOp::Sub: op = BcOp::Sub; break;
          case ir::BinOp::Mul: op = BcOp::Mul; break;
          case ir::BinOp::Div: op = BcOp::Div; break;
        }
        emit({op, 0, 0, 0, dst, ra, rb});
        return dst;
      }
      case ExprKind::Fma: {
        const int mark = next;
        const int ra = compile_expr(e.kid[0], next);
        const int rb = compile_expr(e.kid[1], next);
        const int rc = compile_expr(e.kid[2], next);
        next = mark;
        const int dst = alloc(next);
        emit({BcOp::Fma, 0, 0, 0, dst, ra, rb, rc});
        return dst;
      }
      case ExprKind::Call: {
        const int mark = next;
        const int ra = compile_expr(e.kid[0], next);
        const int rb = e.n_kids > 1 ? compile_expr(e.kid[1], next) : -1;
        next = mark;
        const int dst = alloc(next);
        // -ffinite-math-only fmin/fmax lower to a bare compare-select at
        // bytecode-compile time (hipcc-sim fast math).
        if (env_ && env_->naive_minmax &&
            (e.fn == ir::MathFn::Fmin || e.fn == ir::MathFn::Fmax)) {
          const BcOp op = e.fn == ir::MathFn::Fmin ? BcOp::MinNaive : BcOp::MaxNaive;
          emit({op, 0, 0, 0, dst, ra, rb});
          return dst;
        }
        BcInsn insn{rb >= 0 ? BcOp::Call2 : BcOp::Call1};
        insn.u16 = static_cast<std::uint16_t>(e.fn);
        insn.dst = dst;
        insn.a = ra;
        insn.b = rb;
        emit(insn);
        return dst;
      }
      case ExprKind::Cmp:
      case ExprKind::BoolBin:
      case ExprKind::BoolNot: {
        // Boolean expression in value position: C semantics (0/1).
        return compile_bool_value(id, next);
      }
      case ExprKind::BoolToFp:
        return compile_bool_value(e.kid[0], next);
    }
    throw std::runtime_error("run_kernel: bad expression kind");
  }

  /// Materialize a boolean expression as 1.0/0.0 in a register.
  int compile_bool_value(ExprId id, int& next) {
    const int mark = next;
    std::vector<int> to_false;
    compile_cond(id, next, /*sense=*/false, to_false);
    next = mark;
    const int dst = alloc(next);
    emit({BcOp::LoadConst, 0, 0, 0, dst, const_index(1.0)});
    const int skip = emit({BcOp::Jump});
    for (int idx : to_false) patch(idx, here());
    emit({BcOp::LoadConst, 0, 0, 0, dst, const_index(0.0)});
    patch(skip, here());
    return dst;
  }

  /// Emit code that jumps (to targets returned in `fixups`, patched by the
  /// caller) when the boolean value of `e` equals `sense`, and falls
  /// through otherwise.  &&/|| short-circuit exactly as the tree-walk
  /// interpreter does, so skipped operands contribute no ops or flags.
  void compile_cond(ExprId id, int& next, bool sense, std::vector<int>& fixups) {
    const Expr& e = arena_[id];
    switch (e.kind) {
      case ExprKind::Cmp: {
        const int mark = next;
        const int ra = compile_expr(e.kid[0], next);
        const int rb = compile_expr(e.kid[1], next);
        next = mark;
        BcInsn insn{BcOp::CmpJump};
        insn.aux = static_cast<std::uint8_t>(e.cmp_op);
        insn.sense = sense ? 1 : 0;
        insn.a = ra;
        insn.b = rb;
        fixups.push_back(emit(insn));
        return;
      }
      case ExprKind::BoolBin: {
        const bool is_and = e.bool_op == ir::BoolOp::And;
        // De Morgan symmetry: AND jumping-on-false and OR jumping-on-true
        // both propagate directly to the kids; the mixed cases route the
        // first kid to the fall-through point past the second.
        if (is_and != sense) {  // (AND, jump-if-false) or (OR, jump-if-true)
          compile_cond(e.kid[0], next, sense, fixups);
          compile_cond(e.kid[1], next, sense, fixups);
        } else {
          std::vector<int> past;
          compile_cond(e.kid[0], next, !sense, past);
          compile_cond(e.kid[1], next, sense, fixups);
          for (int idx : past) patch(idx, here());
        }
        return;
      }
      case ExprKind::BoolNot:
        compile_cond(e.kid[0], next, !sense, fixups);
        return;
      default: {
        // FP expression in boolean position (C truthiness, not counted).
        const int mark = next;
        const int r = compile_expr(id, next);
        next = mark;
        BcInsn insn{BcOp::TruthJump};
        insn.sense = sense ? 1 : 0;
        insn.a = r;
        fixups.push_back(emit(insn));
        return;
      }
    }
  }

  /// Array subscripts keep the tree-walk fast paths: loop variables,
  /// literals and integer parameters resolve without touching the register
  /// file; anything else evaluates as a floating expression (with its op
  /// accounting) and converts via fp_to_subscript.
  void compile_subscript(ExprId id, int& next, IndexMode& mode, int& operand) {
    const Expr& e = arena_[id];
    if (e.kind == ExprKind::LoopVarRef) {
      if (e.index < 0 || e.index >= kMaxLoopDepth) {
        mode = IndexMode::Reg;
        operand = trap_expr(TrapKind::IndexOutOfRange, next);
        return;
      }
      mode = IndexMode::LoopVar;
      operand = e.index;
    } else if (e.kind == ExprKind::Literal) {
      mode = IndexMode::Const;
      operand = clamp_subscript(fp_to_subscript(e.lit_value));
    } else if (e.kind == ExprKind::IntParamRef) {
      if (bad_param(e.index)) {
        mode = IndexMode::Reg;
        operand = trap_expr(TrapKind::IndexOutOfRange, next);
        return;
      }
      mode = IndexMode::IntParam;
      operand = e.index;
    } else {
      mode = IndexMode::Reg;
      operand = compile_expr(id, next);
    }
  }

  bool bad_param(int index) const {
    return index < 0 ||
           static_cast<std::size_t>(index) >= program_.params().size();
  }

 public:
  void set_env(const fp::FpEnv* env) noexcept { env_ = env; }

 private:
  const Program& program_;
  const Arena& arena_;
  BytecodeProgram& out_;
  const fp::FpEnv* env_ = nullptr;
  std::vector<bool> stored_;
  std::vector<int> array_slot_;
  int scratch_base_ = 0;
};

BytecodeProgram compile_bytecode(const ir::Program& program, const fp::FpEnv& env,
                                 const vmath::MathLib* mathlib) {
  BytecodeProgram out;
  out.precision_ = program.precision();
  out.env_ = env;
  out.mathlib_ = mathlib;

  // Issue-cycle model, mirroring the tree-walk interpreter's CycleModel.
  const bool fp32 = program.precision() == ir::Precision::FP32;
  out.cyc_div_ = fp32 ? 8 : 16;
  if (fp32 && env.div32 != fp::Div32Mode::IEEE) out.cyc_div_ = 2;
  out.cyc_call_ = 24;
  if (mathlib) {
    const std::string& lib = mathlib->name();
    if (lib == "nv-fastmath-sim" || lib == "amd-ocml-native-sim" ||
        lib == "hip-cuda-compat-native-sim")
      out.cyc_call_ = fp32 ? 6 : 24;  // fast paths are FP32-only
  }

  BytecodeCompiler compiler(program, out);
  compiler.set_env(&env);
  compiler.compile();

  // Lane-affinity verdict for the automatic engine choice.  Two static
  // features predict nearly all of the measured off-vs-AVX2 spread on
  // generated programs:
  //
  //   * Any loop disqualifies.  Trip counts come from runtime integer
  //     arguments, so lanes diverge at the first ForNext and most of the
  //     loop body executes under a partial mask — full vector dispatch
  //     paying for one or two live lanes loses to the scalar loop by 2-3x.
  //   * Straight-line programs need enough vectorizable arithmetic to
  //     amortize the per-group bind/pack/write-out overhead.  Weighting by
  //     the issue-cycle model tracks host cost well enough here: a single
  //     divide (exactness probe, softfloat fallback) is worth vectorizing,
  //     a lone cheap accumulate is not.  Library calls run per-lane scalar
  //     inside the engine, so they earn no credit.
  std::uint64_t vec_score = 0;
  bool has_loop = false;
  for (const BcInsn& in : out.code_) {
    switch (in.op) {
      case BcOp::ForInit:
        has_loop = true;
        break;
      case BcOp::Add:
      case BcOp::Sub:
      case BcOp::Mul:
      case BcOp::Fma:
      case BcOp::MinNaive:
      case BcOp::MaxNaive:
        vec_score += 1;
        break;
      case BcOp::Div:
        vec_score += out.cyc_div_;
        break;
      case BcOp::AssignComp:
        vec_score += static_cast<ir::AssignOp>(in.aux) == ir::AssignOp::Div
                         ? out.cyc_div_
                         : 1;
        break;
      default:
        break;
    }
  }
  constexpr std::uint64_t kMinVecScore = 8;
  out.lane_profitable_ = !has_loop && vec_score >= kMinVecScore;
  return out;
}

template <typename T>
void BytecodeProgram::prepare(ExecContext& ctx) const {
  constexpr bool kFp32 = sizeof(T) == 4;
  auto& regs_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.regs32; else return ctx.regs64;
  }();
  auto& arr_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.arrays32; else return ctx.arrays64;
  }();
  auto& base_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.base32; else return ctx.base64;
  }();
  auto& epoch_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.slot_epoch32; else return ctx.slot_epoch64;
  }();
  if (regs_vec.size() < static_cast<std::size_t>(num_regs_))
    regs_vec.resize(static_cast<std::size_t>(num_regs_));
  const std::size_t arr_elems = array_params_.size() * ir::kArrayExtent;
  if (arr_vec.size() < arr_elems) arr_vec.resize(arr_elems);
  if (base_vec.size() < array_params_.size())
    base_vec.resize(array_params_.size());
  // New entries are value-initialized to 0, which can never equal the
  // current epoch (the reset bumps it before any slot is consulted), so a
  // freshly grown slot starts unmaterialized.
  if (epoch_vec.size() < array_params_.size())
    epoch_vec.resize(array_params_.size());
}

template <typename T>
void BytecodeProgram::run_impl(const KernelArgs& args, ExecContext& ctx,
                               RunResult& out) const {
  prepare<T>(ctx);
  run_one<T>(args, ctx, out);
}

template <typename T>
void BytecodeProgram::run_one(const KernelArgs& args, ExecContext& ctx,
                              RunResult& out) const {
  constexpr bool kFp32 = sizeof(T) == 4;
  auto& regs_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.regs32; else return ctx.regs64;
  }();
  auto& arr_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.arrays32; else return ctx.arrays64;
  }();
  const auto& consts = [&]() -> const auto& {
    if constexpr (kFp32) return consts32_; else return consts64_;
  }();

  auto& base_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.base32; else return ctx.base64;
  }();
  auto& epoch_vec = [&]() -> auto& {
    if constexpr (kFp32) return ctx.slot_epoch32; else return ctx.slot_epoch64;
  }();

  T* const regs = regs_vec.data();
  T* const arrays = arr_vec.data();
  T* const base = base_vec.data();
  std::uint64_t* const slot_epoch = epoch_vec.data();
  // Temporaries read-before-declare observe 0, as in the tree-walk
  // interpreter; loop variables likewise start at 0 every run.
  std::fill(regs, regs + num_temps_, T(0));
  std::fill(ctx.loop_vars, ctx.loop_vars + kMaxLoopDepth, 0);
  // Array broadcast is hoisted out of the reset: record the broadcast
  // value per slot and invalidate all materializations by bumping the
  // epoch.  The extent-wide fill happens only if a store executes.
  const std::uint64_t epoch = ++ctx.epoch;
  for (std::size_t s = 0; s < array_params_.size(); ++s)
    base[s] = static_cast<T>(args.fp[static_cast<std::size_t>(array_params_[s])]);

  // Accumulate counters and flags in locals so the dispatch loop keeps
  // them in registers (writes through `out` would alias-block that);
  // everything is stored back exactly once at Halt.
  fp::ExceptionFlags flags;
  std::uint64_t ops = 0;
  std::uint64_t cycles = 0;
  Fpu<T> fpu(env_, flags);
  T comp = static_cast<T>(args.fp.at(0));
  const double* const fp_args = args.fp.data();
  const int* const int_args = args.ints.data();
  const BcInsn* const code = code_.data();

  const auto subscript = [&](const BcInsn& in) -> std::size_t {
    switch (static_cast<IndexMode>(in.aux)) {
      case IndexMode::Const:
        return static_cast<std::size_t>(in.a);
      case IndexMode::LoopVar:
        return static_cast<std::size_t>(clamp_subscript(ctx.loop_vars[in.a]));
      case IndexMode::IntParam:
        return static_cast<std::size_t>(clamp_subscript(int_args[in.a]));
      case IndexMode::Reg:
        return static_cast<std::size_t>(clamp_subscript(
            fp_to_subscript(static_cast<double>(regs[in.a]))));
    }
    return 0;
  };

  std::int32_t pc = 0;
  for (;;) {
    const BcInsn& in = code[pc];
    switch (in.op) {
      case BcOp::LoadConst: regs[in.dst] = consts[static_cast<std::size_t>(in.a)]; break;
      case BcOp::LoadParam: regs[in.dst] = static_cast<T>(fp_args[in.a]); break;
      case BcOp::LoadIntParam: regs[in.dst] = static_cast<T>(int_args[in.a]); break;
      case BcOp::LoadLoopVar: regs[in.dst] = static_cast<T>(ctx.loop_vars[in.a]); break;
      case BcOp::LoadComp: regs[in.dst] = comp; break;
      case BcOp::Mov: regs[in.dst] = regs[in.a]; break;
      case BcOp::Neg: regs[in.dst] = fp::negate_bits(regs[in.a]); break;
      case BcOp::Add:
        ++ops; cycles += 1;
        regs[in.dst] = fpu.add(regs[in.a], regs[in.b]);
        break;
      case BcOp::Sub:
        ++ops; cycles += 1;
        regs[in.dst] = fpu.sub(regs[in.a], regs[in.b]);
        break;
      case BcOp::Mul:
        ++ops; cycles += 1;
        regs[in.dst] = fpu.mul(regs[in.a], regs[in.b]);
        break;
      case BcOp::Div:
        ++ops; cycles += cyc_div_;
        regs[in.dst] = fpu.div(regs[in.a], regs[in.b]);
        break;
      case BcOp::Fma:
        ++ops; cycles += 1;
        regs[in.dst] = fpu.fma_op(regs[in.a], regs[in.b], regs[in.c]);
        break;
      case BcOp::Call1:
      case BcOp::Call2: {
        const T a = regs[in.a];
        const T b = in.op == BcOp::Call2 ? regs[in.b] : T(0);
        ++ops;
        cycles += cyc_call_;
        T r;
        if constexpr (kFp32) {
          r = mathlib_->call32(static_cast<ir::MathFn>(in.u16), a, b);
        } else {
          r = mathlib_->call64(static_cast<ir::MathFn>(in.u16), a, b);
        }
        const bool non_nan = !fp::is_nan_bits(a) && !fp::is_nan_bits(b);
        const bool finite = fp::is_finite_bits(a) && fp::is_finite_bits(b);
        fpu.note_call_result(r, non_nan, finite);
        regs[in.dst] = fp::apply_ftz(r, env_, &flags);
        break;
      }
      case BcOp::MinNaive: {
        ++ops;
        cycles += cyc_call_;
        const T a = regs[in.a], b = regs[in.b];
        regs[in.dst] = a < b ? a : b;
        break;
      }
      case BcOp::MaxNaive: {
        ++ops;
        cycles += cyc_call_;
        const T a = regs[in.a], b = regs[in.b];
        regs[in.dst] = a > b ? a : b;
        break;
      }
      case BcOp::LoadArr: {
        const std::size_t s = in.u16;
        // An unmaterialized slot holds the broadcast value everywhere, so
        // the subscript (pure arithmetic, no flags) does not matter.
        regs[in.dst] = slot_epoch[s] == epoch
                           ? arrays[s * ir::kArrayExtent + subscript(in)]
                           : base[s];
        break;
      }
      case BcOp::StoreArr: {
        const std::size_t s = in.u16;
        if (slot_epoch[s] != epoch) {
          std::fill(arrays + s * ir::kArrayExtent,
                    arrays + (s + 1) * ir::kArrayExtent, base[s]);
          slot_epoch[s] = epoch;
        }
        arrays[s * ir::kArrayExtent + subscript(in)] = regs[in.b];
        break;
      }
      case BcOp::AssignComp: {
        const T v = regs[in.a];
        switch (static_cast<ir::AssignOp>(in.aux)) {
          case ir::AssignOp::Set: comp = v; break;
          case ir::AssignOp::Add: comp = fpu.add(comp, v); break;
          case ir::AssignOp::Sub: comp = fpu.sub(comp, v); break;
          case ir::AssignOp::Mul: comp = fpu.mul(comp, v); break;
          case ir::AssignOp::Div: comp = fpu.div(comp, v); break;
        }
        ++ops;
        cycles += static_cast<ir::AssignOp>(in.aux) == ir::AssignOp::Div ? cyc_div_ : 1;
        break;
      }
      case BcOp::CmpJump: {
        const T a = regs[in.a], b = regs[in.b];
        ++ops;
        cycles += 1;
        // IEEE comparison semantics: any NaN operand makes all ordered
        // comparisons false and != true.
        bool taken = false;
        switch (static_cast<ir::CmpOp>(in.aux)) {
          case ir::CmpOp::Eq: taken = a == b; break;
          case ir::CmpOp::Ne: taken = a != b; break;
          case ir::CmpOp::Lt: taken = a < b; break;
          case ir::CmpOp::Le: taken = a <= b; break;
          case ir::CmpOp::Gt: taken = a > b; break;
          case ir::CmpOp::Ge: taken = a >= b; break;
        }
        if (taken == (in.sense != 0)) { pc = in.dst; continue; }
        break;
      }
      case BcOp::TruthJump:
        if ((regs[in.a] != T(0)) == (in.sense != 0)) { pc = in.dst; continue; }
        break;
      case BcOp::Jump:
        pc = in.dst;
        continue;
      case BcOp::Trap:
        // The tree-walk oracle's exact faults, raised only when reached.
        switch (static_cast<TrapKind>(in.aux)) {
          case TrapKind::NonArrayStore:
            throw std::runtime_error("run_kernel: store to non-array parameter");
          case TrapKind::NonArrayLoad:
            throw std::runtime_error("run_kernel: load from non-array parameter");
          case TrapKind::LoopTooDeep:
            throw std::runtime_error("run_kernel: loop nest too deep");
          case TrapKind::IndexOutOfRange:
            throw std::out_of_range("run_kernel: index out of range");
        }
        break;
      case BcOp::ForInit: {
        // Mirrors the tree-walk loop exactly: a zero-trip loop leaves the
        // depth's variable untouched, and after the last iteration the
        // variable keeps its final value (bound - 1), not the bound.
        int bound = int_args[in.a];
        if (bound > kMaxTripCount) bound = kMaxTripCount;
        if (bound <= 0) { pc = in.dst; continue; }
        ctx.loop_bounds[in.u16] = bound;
        ctx.loop_vars[in.u16] = 0;
        break;
      }
      case BcOp::ForNext: {
        const int v = ctx.loop_vars[in.u16] + 1;
        if (v < ctx.loop_bounds[in.u16]) {
          ctx.loop_vars[in.u16] = v;
          pc = in.dst;
          continue;
        }
        break;
      }
      case BcOp::Halt:
        out.value = static_cast<double>(comp);
        out.value_bits = static_cast<std::uint64_t>(fp::to_bits(comp));
        out.flags = flags;
        out.op_count = ops;
        out.cycle_count = cycles;
        return;
    }
    ++pc;
  }
}

RunResult BytecodeProgram::run(const KernelArgs& args, ExecContext& ctx) const {
  if (args.fp.size() != static_cast<std::size_t>(num_params_) ||
      args.ints.size() != static_cast<std::size_t>(num_params_))
    throw std::runtime_error("run_kernel: argument/parameter count mismatch");
  RunResult out;
  if (precision_ == ir::Precision::FP32)
    run_impl<float>(args, ctx, out);
  else
    run_impl<double>(args, ctx, out);
  return out;
}

void BytecodeProgram::run_batch(std::span<const KernelArgs> inputs,
                                ExecContext& ctx, RunResult* out) const {
  // Give every output a defined value before validation or execution: a
  // throw anywhere below (argument mismatch, trap, forced-but-unusable
  // engine) must leave completed results for the inputs that ran and
  // RunResult{} for the rest, never stale memory.
  for (std::size_t i = 0; i < inputs.size(); ++i) out[i] = RunResult{};
  // Validate the whole batch up front so the execution loop is check-free.
  for (const KernelArgs& args : inputs)
    if (args.fp.size() != static_cast<std::size_t>(num_params_) ||
        args.ints.size() != static_cast<std::size_t>(num_params_))
      throw std::runtime_error("run_kernel: argument/parameter count mismatch");
  if (precision_ == ir::Precision::FP32)
    run_batch_impl<float>(inputs, ctx, out);
  else
    run_batch_impl<double>(inputs, ctx, out);
}

template <typename T>
void BytecodeProgram::run_batch_impl(std::span<const KernelArgs> inputs,
                                     ExecContext& ctx, RunResult* out) const {
  prepare<T>(ctx);
  constexpr bool kFp32 = sizeof(T) == 4;
  using GroupFn = bool (*)(const BytecodeProgram&, const KernelArgs*,
                           ExecContext&, RunResult*);
  GroupFn group = nullptr;
  std::size_t w = 1;
  // Auto engine selection honors the compile-time lane-affinity verdict;
  // an explicit GPUDIFF_SIMD override pins the engine unconditionally so
  // differential tests exercise the lane path on every program shape.
  if (support::simd_override() == support::SimdOverride::Auto &&
      !lane_profitable_) {
    for (std::size_t i = 0; i < inputs.size(); ++i)
      run_one<T>(inputs[i], ctx, out[i]);
    return;
  }
  switch (simd_engine()) {
    case SimdEngine::Off:
      break;
    case SimdEngine::Scalar1:
      group = kFp32 ? lane::run_group_generic_w1_32 : lane::run_group_generic_w1_64;
      w = 1;
      break;
    case SimdEngine::Scalar:
      group = kFp32 ? lane::run_group_generic_32 : lane::run_group_generic_64;
      w = kFp32 ? 8 : 4;
      break;
    case SimdEngine::Avx2:
#if defined(GPUDIFF_SIMD_AVX2)
      group = kFp32 ? lane::run_group_avx2_32 : lane::run_group_avx2_64;
      w = kFp32 ? 8 : 4;
#endif
      break;
  }
  std::size_t i = 0;
  if (group != nullptr) {
    for (; i + w <= inputs.size(); i += w) {
      if (!group(*this, inputs.data() + i, ctx, out + i)) {
        // The group reached a Trap (or a shape only the scalar path can
        // fault on).  Re-run it scalar in input order: earlier inputs
        // complete, the faulting one throws, later ones stay zeroed —
        // exactly the sequential run_batch semantics.
        for (std::size_t j = 0; j < w; ++j) out[i + j] = RunResult{};
        for (std::size_t j = 0; j < w; ++j)
          run_one<T>(inputs[i + j], ctx, out[i + j]);
      }
    }
  }
  // Batch tail (and the whole batch under SimdEngine::Off).
  for (; i < inputs.size(); ++i) run_one<T>(inputs[i], ctx, out[i]);
}

}  // namespace gpudiff::vgpu
