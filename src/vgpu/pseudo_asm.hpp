#pragma once
// Pseudo-assembly listing of a compiled Executable.
//
// The paper's case studies identify root causes by inspecting the SASS/PTX
// (NVIDIA) and GCN ISA (AMD) the real compilers emit — e.g. hipcc calling
// __ocml_fmod_f64 where nvcc inlines an FP/bitwise sequence.  disassemble()
// renders the same story for the virtual toolchains: a PTX-flavoured
// listing for nvcc-sim and a GCN-flavoured listing for hipcc-sim, with
// math calls shown against their library symbols (MathLib::symbol).

#include <string>

#include "opt/pipeline.hpp"

namespace gpudiff::vgpu {

std::string disassemble(const opt::Executable& exe);

}  // namespace gpudiff::vgpu
