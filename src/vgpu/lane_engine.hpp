#pragma once
// The lane-parallel bytecode interpreter: one dispatched instruction
// executes L::width inputs at once.
//
// Internal header — included only by the engine translation units
// (bytecode_simd.cpp, bytecode_simd_avx2.cpp), each of which instantiates
// Engine over a `lanes` backend from vgpu/simd.hpp.  The template is the
// single source of truth for lane semantics; the backends only supply the
// vector primitives, so the portable W=1/W=4/W=8 builds and the AVX2
// build run the identical algorithm.
//
// ## Execution model
//
// Inputs are packed structure-of-arrays (lane-minor): register r of lane l
// lives at regs[r*W + l].  Execution starts in *uniform* mode — one shared
// pc, no masking, shared op/cycle counters — and stays there until a
// branch's per-lane decisions disagree.  On divergence every lane gets its
// own pc and the engine switches to *masked* mode: each step executes the
// instruction at the minimum pc among non-halted lanes, with exactly the
// lanes sitting at that pc active.  Because no architectural state is
// shared between lanes (registers, comp, flags, counters, loop variables
// and array slots are all per-lane), any deterministic schedule yields the
// per-lane sequential results; min-pc scheduling is chosen because it
// reconverges naturally at if/else joins and loop exits, and the engine
// returns to uniform mode whenever all lanes meet at one pc.
//
// ## Bit-identity with the scalar VM (bytecode.cpp run_one)
//
// * Vector add/sub/mul/div/fma are single correctly-rounded IEEE ops under
//   the default rounding mode — bit-identical per lane to the scalar `a+b`
//   / std::fma and to the fp/softfloat.hpp soft paths (those exist to
//   avoid microcode assists, not to change results).
// * NaN propagation, DAZ/FTZ and every exception flag are applied
//   explicitly with the same bit-level rules as vgpu::Fpu, expressed as
//   per-lane mask formulas.  The scalar Fpu skips its error-free inexact
//   probes once kInexact is set — a pure perf shortcut; the vector path
//   always computes them, which is OR-identical.
// * Math-library calls, approximate FP32 division, array subscripts and
//   loop bookkeeping run per-lane scalar code — for calls and approx
//   division literally through Fpu — so they cannot diverge from run_one.
// * Per-lane op/cycle counts: uniform mode accumulates shared counters,
//   masked mode per-lane extras; a lane's final count is the sum.
//
// ## Traps
//
// When any active lane reaches a Trap (or the program has zero
// parameters, where the scalar path throws std::out_of_range), run()
// returns false without writing outputs; the caller re-runs the group
// through the scalar interpreter in input order so the exception and the
// partially-written outputs match sequential run_batch semantics exactly.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fp/bits.hpp"
#include "fp/env.hpp"
#include "fp/exceptions.hpp"
#include "ir/program.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/fpu.hpp"
#include "vgpu/simd.hpp"
#include "vmath/mathlib.hpp"

namespace gpudiff::vgpu {

namespace detail {

/// The lane engine's window into BytecodeProgram internals (friend of the
/// class; keeps the program's members private to everyone else).
struct VmAccess {
  static const std::vector<BcInsn>& code(const BytecodeProgram& p) noexcept {
    return p.code_;
  }
  template <typename T>
  static const std::vector<T>& consts(const BytecodeProgram& p) noexcept {
    if constexpr (sizeof(T) == 4) {
      return p.consts32_;
    } else {
      return p.consts64_;
    }
  }
  static const std::vector<int>& array_params(const BytecodeProgram& p) noexcept {
    return p.array_params_;
  }
  static const fp::FpEnv& env(const BytecodeProgram& p) noexcept { return p.env_; }
  static const vmath::MathLib* mathlib(const BytecodeProgram& p) noexcept {
    return p.mathlib_;
  }
  static int num_params(const BytecodeProgram& p) noexcept { return p.num_params_; }
  static int num_regs(const BytecodeProgram& p) noexcept { return p.num_regs_; }
  static int num_temps(const BytecodeProgram& p) noexcept { return p.num_temps_; }
  static std::uint64_t cyc_div(const BytecodeProgram& p) noexcept { return p.cyc_div_; }
  static std::uint64_t cyc_call(const BytecodeProgram& p) noexcept {
    return p.cyc_call_;
  }
};

}  // namespace detail

namespace lane {

template <class L>
class Engine {
 public:
  using T = typename L::value_type;
  using vec = typename L::vec;
  using Tr = fp::FloatTraits<T>;
  using Bits = typename Tr::Bits;
  static constexpr int W = L::width;
  static constexpr unsigned kFullMask = (1u << W) - 1u;
  static constexpr std::int32_t kLaneHalted = INT32_MAX;

  Engine(const BytecodeProgram& bp, ExecContext& ctx, RunResult* out) noexcept
      : bp_(bp),
        ctx_(ctx),
        out_(out),
        env_(detail::VmAccess::env(bp)),
        code_(detail::VmAccess::code(bp).data()),
        consts_(detail::VmAccess::consts<T>(bp).data()),
        mathlib_(detail::VmAccess::mathlib(bp)),
        num_params_(detail::VmAccess::num_params(bp)),
        cyc_div_(detail::VmAccess::cyc_div(bp)),
        cyc_call_(detail::VmAccess::cyc_call(bp)) {
    sign_ = bcast(Tr::sign_mask);
    inf_ = bcast(Tr::exponent_mask);
    min_normal_ = bcast(static_cast<Bits>(Bits(1) << Tr::mantissa_bits));
    quiet_ = bcast(Tr::quiet_bit);
    ones_ = bcast(static_cast<Bits>(~Bits(0)));
    zero_ = L::zero();
    inv_ = bcast(static_cast<Bits>(fp::kInvalid));
    dbz_ = bcast(static_cast<Bits>(fp::kDivideByZero));
    inx_ = bcast(static_cast<Bits>(fp::kInexact));
    ovf_inx_ = bcast(static_cast<Bits>(fp::kOverflow | fp::kInexact));
    unf_ = bcast(static_cast<Bits>(fp::kUnderflow));
    unf_inx_ = bcast(static_cast<Bits>(fp::kUnderflow | fp::kInexact));
    // 2^(min_normal_exponent + 4): see suspect_lanes().
    fix_thresh_ = bcast(static_cast<Bits>(Bits(5) << Tr::mantissa_bits));
    daz_on_ = sizeof(T) == 4 ? env_.daz32 : env_.daz64;
    ftz_on_ = sizeof(T) == 4 ? env_.ftz32 : env_.ftz64;
    approx_div32_ = sizeof(T) == 4 && env_.div32 != fp::Div32Mode::IEEE;
  }

  /// Execute one W-sized group.  Returns false when the group must be
  /// re-run scalar (trap reached, or a program shape only the scalar path
  /// can fault on); no outputs are considered written in that case.
  bool run(const KernelArgs* inputs) {
    // run_one faults on args.fp.at(0) for parameterless programs; let the
    // scalar re-run raise that exactly.
    if (num_params_ == 0) return false;
    bind(inputs);
    return exec();
  }

 private:
  enum class St : std::uint8_t { Ok, Diverged, Halted, Trap };

  static vec bcast(Bits b) noexcept { return L::broadcast(fp::from_bits<T>(b)); }

  // ---- per-lane classification as mask vectors ----

  vec vabs(vec x) const noexcept { return L::andnot_bits(sign_, x); }
  vec is_nan(vec x) const noexcept { return L::cmp_unord(x, x); }
  vec is_inf(vec x) const noexcept { return L::cmp_eq(vabs(x), inf_); }
  vec is_finite(vec x) const noexcept { return L::cmp_lt(vabs(x), inf_); }
  vec is_zero(vec x) const noexcept { return L::cmp_eq(x, zero_); }
  vec is_subnormal(vec x) const noexcept {
    const vec a = vabs(x);
    return L::and_bits(L::cmp_lt(a, min_normal_), L::cmp_gt(a, zero_));
  }
  vec vnot(vec m) const noexcept { return L::andnot_bits(m, ones_); }

  // ---- the vector FPU: Fpu<T> semantics as lane-mask formulas ----

  vec vdaz(vec x) const noexcept {
    if (!daz_on_) return x;
    return L::blend(is_subnormal(x), L::and_bits(x, sign_), x);
  }
  vec vftz(vec x, vec& fl) const noexcept {
    if (!ftz_on_) return x;
    const vec s = is_subnormal(x);
    fl = L::or_bits(fl, L::and_bits(s, unf_inx_));
    return L::blend(s, L::and_bits(x, sign_), x);
  }
  /// quiet(na ? a : b): the scalar FPU's deterministic first-NaN-operand
  /// propagation (payload and sign preserved, quiet bit forced).
  vec nan_result(vec na, vec a, vec b) const noexcept {
    return L::or_bits(L::blend(na, a, b), quiet_);
  }

  vec vadd(vec a0, vec b0, vec& fl) const noexcept {
    const vec a = vdaz(a0), b = vdaz(b0);
    const vec na = is_nan(a);
    const vec nm = L::or_bits(na, is_nan(b));
    const vec r = L::add(a, b);
    const vec fin = L::and_bits(is_finite(a), is_finite(b));
    const vec rna = is_nan(r);
    const vec rin = is_inf(r);
    // Error-free exactness probe: r-a != b || r-b != a (NEQ_UQ so special
    // lanes read true; they are masked out below).
    const vec probe = L::or_bits(L::cmp_neq_uq(L::sub(r, a), b),
                                 L::cmp_neq_uq(L::sub(r, b), a));
    vec f = L::and_bits(rna, inv_);  // inf + (-inf)
    f = L::or_bits(f, L::and_bits(L::and_bits(fin, rin), ovf_inx_));
    f = L::or_bits(
        f, L::and_bits(inx_, L::and_bits(fin, L::andnot_bits(L::or_bits(rna, rin),
                                                             probe))));
    fl = L::or_bits(fl, L::andnot_bits(nm, f));
    return vftz(L::blend(nm, nan_result(na, a, b), r), fl);
  }

  /// Lanes where the hardware fma exactness probe can differ from the
  /// truth: a tiny nonzero residual can underflow inside the probe's own
  /// fma and read "exact".  The scalar Fpu never mis-answers because it
  /// routes the assist-prone range to the integer softfloat checks, so
  /// those lanes are re-run through the scalar Fpu itself (bit-identical
  /// by definition); everywhere else the scalar path uses the same
  /// hardware probe this engine does.  The probe's verdict only matters
  /// when it is consulted AND no other term already raised kInexact,
  /// which prunes the suspect set to:
  ///  * a subnormal (nonzero, post-DAZ) operand — an exact zero operand
  ///    makes the hardware probe exact-and-right, and
  ///  * a NORMAL result below 2^(min_normal_exponent + 4) — the bound the
  ///    assist predicates' exponent clauses imply, with margin; subnormal
  ///    or underflowed-to-zero results raise kUnderflow|kInexact
  ///    unconditionally in both paths, so their probe verdict is moot.
  unsigned suspect_lanes(vec a, vec b, vec r, unsigned active) const noexcept {
    const vec ra = vabs(r);
    const vec tiny_normal =
        L::and_bits(L::cmp_ge(ra, min_normal_), L::cmp_lt(ra, fix_thresh_));
    const vec s = L::or_bits(L::or_bits(is_subnormal(a), is_subnormal(b)),
                             tiny_normal);
    return L::movemask(s) & active;
  }

  /// Re-run lanes in `fix` through the scalar Fpu operation `op`,
  /// overwriting their result lanes and OR-ing their exact flags (the
  /// vector formulas' flags are a subset, so OR lands on the scalar set).
  template <typename FpuOp>
  void lane_fix(vec a0, vec b0, vec& res, vec& fl, unsigned fix, FpuOp op) const {
    alignas(32) T ab[W], bb[W], rb[W], fb[W];
    L::storeu(ab, a0);
    L::storeu(bb, b0);
    L::storeu(rb, res);
    L::storeu(fb, fl);
    for (int l = 0; l < W; ++l) {
      if (!(fix >> l & 1u)) continue;
      fp::ExceptionFlags ef;
      Fpu<T> fpu(env_, ef);
      rb[l] = op(fpu, ab[l], bb[l]);
      fb[l] = fp::from_bits<T>(
          static_cast<Bits>(fp::to_bits(fb[l]) | ef.raw()));
    }
    res = L::loadu(rb);
    fl = L::loadu(fb);
  }

  vec vmul(vec a0, vec b0, vec& fl, unsigned active) const noexcept {
    const vec a = vdaz(a0), b = vdaz(b0);
    const vec na = is_nan(a);
    const vec nm = L::or_bits(na, is_nan(b));
    const vec r = L::mul(a, b);
    const vec fin = L::and_bits(is_finite(a), is_finite(b));
    const vec rna = is_nan(r);
    const vec rin = is_inf(r);
    // fma(a, b, -r) != 0 exactness probe.
    const vec probe = L::cmp_neq_uq(L::fma(a, b, L::xor_bits(r, sign_)), zero_);
    const vec unf = L::or_bits(
        is_subnormal(r),
        L::and_bits(is_zero(r), vnot(L::or_bits(is_zero(a), is_zero(b)))));
    vec f = L::and_bits(L::and_bits(fin, rin), ovf_inx_);
    f = L::or_bits(f,
                   L::and_bits(inx_, L::and_bits(fin, L::andnot_bits(rin, probe))));
    f = L::or_bits(f, L::and_bits(L::and_bits(fin, unf), unf_inx_));
    f = L::or_bits(f, L::and_bits(L::andnot_bits(fin, rna), inv_));  // 0 * inf
    fl = L::or_bits(fl, L::andnot_bits(nm, f));
    vec res = vftz(L::blend(nm, nan_result(na, a, b), r), fl);
    const unsigned fix = suspect_lanes(a, b, r, active);
    if (fix != 0)
      lane_fix(a0, b0, res, fl, fix,
               [](Fpu<T>& fpu, T x, T y) { return fpu.mul(x, y); });
    return res;
  }

  vec vdiv(vec a0, vec b0, vec& fl, unsigned active) const noexcept {
    const vec a = vdaz(a0), b = vdaz(b0);
    const vec na = is_nan(a);
    const vec nm = L::or_bits(na, is_nan(b));
    const vec r = L::div(a, b);
    const vec fina = is_finite(a);
    const vec fin = L::and_bits(fina, is_finite(b));
    const vec dbz =
        L::and_bits(L::and_bits(is_zero(b), fina), vnot(is_zero(a)));
    const vec finb = L::andnot_bits(dbz, fin);  // the scalar else-if chain
    const vec rna = is_nan(r);
    const vec rin = is_inf(r);
    const vec probe = L::cmp_neq_uq(L::fma(r, b, L::xor_bits(a, sign_)), zero_);
    const vec unf = L::or_bits(is_subnormal(r),
                               L::and_bits(is_zero(r), vnot(is_zero(a))));
    vec f = L::and_bits(dbz, dbz_);
    f = L::or_bits(f, L::and_bits(L::and_bits(finb, rna), inv_));  // 0 / 0
    f = L::or_bits(f,
                   L::and_bits(ovf_inx_, L::and_bits(finb, L::andnot_bits(rna, rin))));
    f = L::or_bits(
        f, L::and_bits(inx_, L::and_bits(finb, L::andnot_bits(L::or_bits(rna, rin),
                                                              probe))));
    f = L::or_bits(f, L::and_bits(L::and_bits(finb, unf), unf_inx_));
    f = L::or_bits(f, L::and_bits(L::andnot_bits(fin, rna), inv_));  // inf / inf
    fl = L::or_bits(fl, L::andnot_bits(nm, f));
    vec res = vftz(L::blend(nm, nan_result(na, a, b), r), fl);
    const unsigned fix = suspect_lanes(a, b, r, active);
    if (fix != 0)
      lane_fix(a0, b0, res, fl, fix,
               [](Fpu<T>& fpu, T x, T y) { return fpu.div(x, y); });
    return res;
  }

  vec vfma(vec a0, vec b0, vec c0, vec& fl) const noexcept {
    const vec a = vdaz(a0), b = vdaz(b0), c = vdaz(c0);
    const vec na = is_nan(a), nb = is_nan(b);
    const vec nm = L::or_bits(na, L::or_bits(nb, is_nan(c)));
    const vec r = L::fma(a, b, c);
    const vec fin =
        L::and_bits(is_finite(a), L::and_bits(is_finite(b), is_finite(c)));
    const vec rna = is_nan(r);
    const vec rin = is_inf(r);
    vec f = L::and_bits(L::and_bits(fin, rna), inv_);
    f = L::or_bits(f,
                   L::and_bits(ovf_inx_, L::and_bits(fin, L::andnot_bits(rna, rin))));
    // Conservatively inexact whenever finite in, finite out.
    f = L::or_bits(f, L::and_bits(inx_, L::andnot_bits(L::or_bits(rna, rin), fin)));
    f = L::or_bits(f, L::and_bits(L::and_bits(fin, is_subnormal(r)), unf_));
    f = L::or_bits(f, L::and_bits(L::andnot_bits(fin, rna), inv_));
    fl = L::or_bits(fl, L::andnot_bits(nm, f));
    const vec nanres = L::or_bits(L::blend(na, a, L::blend(nb, b, c)), quiet_);
    return vftz(L::blend(nm, nanres, r), fl);
  }

  // ---- lane state plumbing ----

  template <typename V>
  static typename V::value_type* grow(V& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
    return v.data();
  }

  void bind(const KernelArgs* inputs) {
    auto& ls = ctx_.lane;
    const std::vector<int>& ap = detail::VmAccess::array_params(bp_);
    const std::size_t slots = ap.size();
    const std::size_t np = static_cast<std::size_t>(num_params_);
    const std::size_t nregs =
        static_cast<std::size_t>(detail::VmAccess::num_regs(bp_));
    if constexpr (sizeof(T) == 4) {
      regs_ = grow(ls.regs32, nregs * W);
      args_ = grow(ls.args32, np * W);
      ints_fp_ = grow(ls.ints_fp32, np * W);
      base_ = grow(ls.base32, slots * W);
      arrays_ = grow(ls.arrays32, slots * W * ir::kArrayExtent);
      slot_epoch_ = grow(ls.slot_epoch32, slots * W);
    } else {
      regs_ = grow(ls.regs64, nregs * W);
      args_ = grow(ls.args64, np * W);
      ints_fp_ = grow(ls.ints_fp64, np * W);
      base_ = grow(ls.base64, slots * W);
      arrays_ = grow(ls.arrays64, slots * W * ir::kArrayExtent);
      slot_epoch_ = grow(ls.slot_epoch64, slots * W);
    }
    ints_ = grow(ls.ints, np * W);

    // Pack the group structure-of-arrays, lane-minor, with the scalar
    // path's exact conversions.
    for (std::size_t p = 0; p < np; ++p) {
      for (int l = 0; l < W; ++l) {
        args_[p * W + l] = static_cast<T>(inputs[l].fp[p]);
        const int iv = inputs[l].ints[p];
        ints_[p * W + l] = iv;
        ints_fp_[p * W + l] = static_cast<T>(iv);
      }
    }
    epoch_ = ++ctx_.epoch;
    for (std::size_t s = 0; s < slots; ++s)
      for (int l = 0; l < W; ++l)
        base_[s * W + l] =
            static_cast<T>(inputs[l].fp[static_cast<std::size_t>(ap[s])]);

    const int ntemps = detail::VmAccess::num_temps(bp_);
    for (int r = 0; r < ntemps; ++r)
      L::storeu(regs_ + static_cast<std::size_t>(r) * W, zero_);
    std::memset(loop_vars_, 0, sizeof(loop_vars_));
    std::memset(loop_bounds_, 0, sizeof(loop_bounds_));
    std::memset(m_ops_, 0, sizeof(m_ops_));
    std::memset(m_cycles_, 0, sizeof(m_cycles_));
    u_ops_ = 0;
    u_cycles_ = 0;
    comp_ = L::loadu(args_);  // comp starts as fp parameter 0
    flags_ = zero_;
  }

  vec reg(std::int32_t r) const noexcept {
    return L::loadu(regs_ + static_cast<std::size_t>(r) * W);
  }

  void spill_flags(Bits* fb) const noexcept {
    alignas(32) T buf[W];
    L::storeu(buf, flags_);
    for (int l = 0; l < W; ++l) fb[l] = fp::to_bits(buf[l]);
  }
  void load_flags(const Bits* fb) noexcept {
    alignas(32) T buf[W];
    for (int l = 0; l < W; ++l) buf[l] = fp::from_bits<T>(fb[l]);
    flags_ = L::loadu(buf);
  }

  std::size_t subscript_lane(const BcInsn& in, int l) const noexcept {
    switch (static_cast<IndexMode>(in.aux)) {
      case IndexMode::Const:
        return static_cast<std::size_t>(in.a);
      case IndexMode::LoopVar:
        return static_cast<std::size_t>(clamp_subscript(loop_vars_[in.a][l]));
      case IndexMode::IntParam:
        return static_cast<std::size_t>(
            clamp_subscript(ints_[static_cast<std::size_t>(in.a) * W + l]));
      case IndexMode::Reg:
        return static_cast<std::size_t>(clamp_subscript(fp_to_subscript(
            static_cast<double>(regs_[static_cast<std::size_t>(in.a) * W + l]))));
    }
    return 0;
  }

  void write_out(unsigned bits) noexcept {
    alignas(32) T cb[W];
    alignas(32) T fb[W];
    L::storeu(cb, comp_);
    L::storeu(fb, flags_);
    for (int l = 0; l < W; ++l) {
      if (!(bits >> l & 1u)) continue;
      RunResult r;
      r.value = static_cast<double>(cb[l]);
      r.value_bits = static_cast<std::uint64_t>(fp::to_bits(cb[l]));
      r.flags.raise(static_cast<std::uint8_t>(fp::to_bits(fb[l])));
      r.op_count = u_ops_ + m_ops_[l];
      r.cycle_count = u_cycles_ + m_cycles_[l];
      out_[l] = r;
    }
  }

  // ---- dispatch ----

  /// Resolve a branch for the active lanes.  `taken` is the raw per-lane
  /// condition movemask; jumping lanes go to `target`, the rest fall
  /// through.  Uniform mode stays uniform when the decision is unanimous.
  template <bool U>
  St branch(std::int32_t pc, unsigned bits, std::int32_t target, unsigned taken,
            bool sense) noexcept {
    const unsigned jump = (sense ? taken : ~taken) & bits;
    if constexpr (U) {
      if (jump == 0) {
        ++pc_;
        return St::Ok;
      }
      if (jump == kFullMask) {
        pc_ = target;
        return St::Ok;
      }
      for (int l = 0; l < W; ++l)
        pcs_[l] = (jump >> l & 1u) ? target : pc + 1;
      return St::Diverged;
    } else {
      for (int l = 0; l < W; ++l)
        if (bits >> l & 1u) pcs_[l] = (jump >> l & 1u) ? target : pc + 1;
      return St::Ok;
    }
  }

  /// Execute the instruction at `pc` for the lanes in `bits` (mask vector
  /// `m` is its vector form).  U=true is the unmasked uniform fast path.
  template <bool U>
  St step(const std::int32_t pc, const unsigned bits, const vec m) {
    const BcInsn& in = code_[pc];

    const auto setreg = [&](std::int32_t r, vec v) {
      T* p = regs_ + static_cast<std::size_t>(r) * W;
      if constexpr (U) {
        L::storeu(p, v);
      } else {
        L::storeu(p, L::blend(m, v, L::loadu(p)));
      }
    };
    const auto count = [&](std::uint64_t cyc) {
      if constexpr (U) {
        ++u_ops_;
        u_cycles_ += cyc;
      } else {
        for (int l = 0; l < W; ++l)
          if (bits >> l & 1u) {
            ++m_ops_[l];
            m_cycles_[l] += cyc;
          }
      }
    };
    const auto raise = [&](vec f) {
      if constexpr (U) {
        flags_ = L::or_bits(flags_, f);
      } else {
        flags_ = L::or_bits(flags_, L::and_bits(m, f));
      }
    };
    const auto advance = [&] {
      if constexpr (U) {
        ++pc_;
      } else {
        for (int l = 0; l < W; ++l)
          if (bits >> l & 1u) pcs_[l] = pc + 1;
      }
    };

    switch (in.op) {
      case BcOp::LoadConst:
        setreg(in.dst, L::broadcast(consts_[static_cast<std::size_t>(in.a)]));
        break;
      case BcOp::LoadParam:
        setreg(in.dst, L::loadu(args_ + static_cast<std::size_t>(in.a) * W));
        break;
      case BcOp::LoadIntParam:
        setreg(in.dst, L::loadu(ints_fp_ + static_cast<std::size_t>(in.a) * W));
        break;
      case BcOp::LoadLoopVar: {
        alignas(32) T buf[W];
        for (int l = 0; l < W; ++l)
          buf[l] = static_cast<T>(loop_vars_[in.a][l]);
        setreg(in.dst, L::loadu(buf));
        break;
      }
      case BcOp::LoadComp:
        setreg(in.dst, comp_);
        break;
      case BcOp::Mov:
        setreg(in.dst, reg(in.a));
        break;
      case BcOp::Neg:
        setreg(in.dst, L::xor_bits(reg(in.a), sign_));
        break;
      case BcOp::Add: {
        vec fl = zero_;
        const vec r = vadd(reg(in.a), reg(in.b), fl);
        raise(fl);
        setreg(in.dst, r);
        count(1);
        break;
      }
      case BcOp::Sub: {
        vec fl = zero_;
        const vec r = vadd(reg(in.a), L::xor_bits(reg(in.b), sign_), fl);
        raise(fl);
        setreg(in.dst, r);
        count(1);
        break;
      }
      case BcOp::Mul: {
        vec fl = zero_;
        const vec r = vmul(reg(in.a), reg(in.b), fl, U ? kFullMask : bits);
        raise(fl);
        setreg(in.dst, r);
        count(1);
        break;
      }
      case BcOp::Div: {
        count(cyc_div_);
        if (approx_div32_) {
          lane_div(in, U ? kFullMask : bits);
        } else {
          vec fl = zero_;
          const vec r = vdiv(reg(in.a), reg(in.b), fl, U ? kFullMask : bits);
          raise(fl);
          setreg(in.dst, r);
        }
        break;
      }
      case BcOp::Fma: {
        vec fl = zero_;
        const vec r = vfma(reg(in.a), reg(in.b), reg(in.c), fl);
        raise(fl);
        setreg(in.dst, r);
        count(1);
        break;
      }
      case BcOp::Call1:
      case BcOp::Call2: {
        count(cyc_call_);
        lane_call(in, U ? kFullMask : bits);
        break;
      }
      case BcOp::MinNaive:
        count(cyc_call_);
        setreg(in.dst, L::min_naive(reg(in.a), reg(in.b)));
        break;
      case BcOp::MaxNaive:
        count(cyc_call_);
        setreg(in.dst, L::max_naive(reg(in.a), reg(in.b)));
        break;
      case BcOp::LoadArr: {
        const std::size_t s = in.u16;
        for (int l = 0; l < W; ++l) {
          if (!U && !(bits >> l & 1u)) continue;
          const std::size_t sl = s * W + static_cast<std::size_t>(l);
          regs_[static_cast<std::size_t>(in.dst) * W + l] =
              slot_epoch_[sl] == epoch_
                  ? arrays_[sl * ir::kArrayExtent + subscript_lane(in, l)]
                  : base_[sl];
        }
        break;
      }
      case BcOp::StoreArr: {
        const std::size_t s = in.u16;
        for (int l = 0; l < W; ++l) {
          if (!U && !(bits >> l & 1u)) continue;
          const std::size_t sl = s * W + static_cast<std::size_t>(l);
          T* const arr = arrays_ + sl * ir::kArrayExtent;
          if (slot_epoch_[sl] != epoch_) {
            std::fill(arr, arr + ir::kArrayExtent, base_[sl]);
            slot_epoch_[sl] = epoch_;
          }
          arr[subscript_lane(in, l)] =
              regs_[static_cast<std::size_t>(in.b) * W + l];
        }
        break;
      }
      case BcOp::AssignComp: {
        const vec v = reg(in.a);
        const auto aop = static_cast<ir::AssignOp>(in.aux);
        const auto setcomp = [&](vec nc) {
          if constexpr (U) {
            comp_ = nc;
          } else {
            comp_ = L::blend(m, nc, comp_);
          }
        };
        switch (aop) {
          case ir::AssignOp::Set:
            setcomp(v);
            break;
          case ir::AssignOp::Add: {
            vec fl = zero_;
            const vec nc = vadd(comp_, v, fl);
            raise(fl);
            setcomp(nc);
            break;
          }
          case ir::AssignOp::Sub: {
            vec fl = zero_;
            const vec nc = vadd(comp_, L::xor_bits(v, sign_), fl);
            raise(fl);
            setcomp(nc);
            break;
          }
          case ir::AssignOp::Mul: {
            vec fl = zero_;
            const vec nc = vmul(comp_, v, fl, U ? kFullMask : bits);
            raise(fl);
            setcomp(nc);
            break;
          }
          case ir::AssignOp::Div: {
            if (approx_div32_) {
              lane_comp_div(v, U ? kFullMask : bits);
            } else {
              vec fl = zero_;
              const vec nc = vdiv(comp_, v, fl, U ? kFullMask : bits);
              raise(fl);
              setcomp(nc);
            }
            break;
          }
        }
        count(aop == ir::AssignOp::Div ? cyc_div_ : 1);
        break;
      }
      case BcOp::CmpJump: {
        count(1);
        const vec a = reg(in.a), b = reg(in.b);
        vec t = zero_;
        switch (static_cast<ir::CmpOp>(in.aux)) {
          case ir::CmpOp::Eq: t = L::cmp_eq(a, b); break;
          case ir::CmpOp::Ne: t = L::cmp_neq_uq(a, b); break;
          case ir::CmpOp::Lt: t = L::cmp_lt(a, b); break;
          case ir::CmpOp::Le: t = L::cmp_le(a, b); break;
          case ir::CmpOp::Gt: t = L::cmp_gt(a, b); break;
          case ir::CmpOp::Ge: t = L::cmp_ge(a, b); break;
        }
        return branch<U>(pc, bits, in.dst, L::movemask(t), in.sense != 0);
      }
      case BcOp::TruthJump:
        return branch<U>(pc, bits, in.dst,
                         L::movemask(L::cmp_neq_uq(reg(in.a), zero_)),
                         in.sense != 0);
      case BcOp::Jump:
        if constexpr (U) {
          pc_ = in.dst;
        } else {
          for (int l = 0; l < W; ++l)
            if (bits >> l & 1u) pcs_[l] = in.dst;
        }
        return St::Ok;
      case BcOp::Trap:
        return St::Trap;
      case BcOp::ForInit: {
        const int d = in.u16;
        unsigned enter = 0;
        int bnds[W];
        for (int l = 0; l < W; ++l) {
          int bound = ints_[static_cast<std::size_t>(in.a) * W + l];
          if (bound > kMaxTripCount) bound = kMaxTripCount;
          bnds[l] = bound;
          if (bound > 0) enter |= 1u << l;
        }
        const auto enter_lane = [&](int l) {
          loop_bounds_[d][l] = bnds[l];
          loop_vars_[d][l] = 0;
        };
        if constexpr (U) {
          if (enter == kFullMask) {
            for (int l = 0; l < W; ++l) enter_lane(l);
            ++pc_;
            return St::Ok;
          }
          if (enter == 0) {
            pc_ = in.dst;
            return St::Ok;
          }
          for (int l = 0; l < W; ++l) {
            if (enter >> l & 1u) {
              enter_lane(l);
              pcs_[l] = pc + 1;
            } else {
              pcs_[l] = in.dst;
            }
          }
          return St::Diverged;
        } else {
          for (int l = 0; l < W; ++l) {
            if (!(bits >> l & 1u)) continue;
            if (enter >> l & 1u) {
              enter_lane(l);
              pcs_[l] = pc + 1;
            } else {
              pcs_[l] = in.dst;
            }
          }
          return St::Ok;
        }
      }
      case BcOp::ForNext: {
        const int d = in.u16;
        unsigned cont = 0;
        for (int l = 0; l < W; ++l)
          if (loop_vars_[d][l] + 1 < loop_bounds_[d][l]) cont |= 1u << l;
        if constexpr (U) {
          if (cont == kFullMask) {
            for (int l = 0; l < W; ++l) ++loop_vars_[d][l];
            pc_ = in.dst;
            return St::Ok;
          }
          if (cont == 0) {
            ++pc_;
            return St::Ok;
          }
          for (int l = 0; l < W; ++l) {
            if (cont >> l & 1u) {
              ++loop_vars_[d][l];
              pcs_[l] = in.dst;
            } else {
              pcs_[l] = pc + 1;
            }
          }
          return St::Diverged;
        } else {
          for (int l = 0; l < W; ++l) {
            if (!(bits >> l & 1u)) continue;
            if (cont >> l & 1u) {
              ++loop_vars_[d][l];
              pcs_[l] = in.dst;
            } else {
              pcs_[l] = pc + 1;
            }
          }
          return St::Ok;
        }
      }
      case BcOp::Halt: {
        if constexpr (U) {
          write_out(kFullMask);
          return St::Halted;
        } else {
          write_out(bits);
          for (int l = 0; l < W; ++l)
            if (bits >> l & 1u) pcs_[l] = kLaneHalted;
          return St::Ok;
        }
      }
    }
    advance();
    return St::Ok;
  }

  /// Math-library call for the active lanes: literally the scalar path
  /// (library call + note_call_result + FTZ) per lane.
  void lane_call(const BcInsn& in, unsigned bits) {
    alignas(32) Bits fb[W];
    spill_flags(fb);
    for (int l = 0; l < W; ++l) {
      if (!(bits >> l & 1u)) continue;
      const T a = regs_[static_cast<std::size_t>(in.a) * W + l];
      const T b =
          in.op == BcOp::Call2 ? regs_[static_cast<std::size_t>(in.b) * W + l] : T(0);
      T r;
      if constexpr (sizeof(T) == 4) {
        r = mathlib_->call32(static_cast<ir::MathFn>(in.u16), a, b);
      } else {
        r = mathlib_->call64(static_cast<ir::MathFn>(in.u16), a, b);
      }
      fp::ExceptionFlags ef;
      Fpu<T> fpu(env_, ef);
      const bool non_nan = !fp::is_nan_bits(a) && !fp::is_nan_bits(b);
      const bool finite = fp::is_finite_bits(a) && fp::is_finite_bits(b);
      fpu.note_call_result(r, non_nan, finite);
      regs_[static_cast<std::size_t>(in.dst) * W + l] = fp::apply_ftz(r, env_, &ef);
      fb[l] |= ef.raw();
    }
    load_flags(fb);
  }

  /// Approximate FP32 division (NvApprox/AmdApprox) for the active lanes,
  /// through the scalar Fpu so the quirky paths stay identical.
  void lane_div(const BcInsn& in, unsigned bits) {
    alignas(32) Bits fb[W];
    spill_flags(fb);
    for (int l = 0; l < W; ++l) {
      if (!(bits >> l & 1u)) continue;
      const T a = regs_[static_cast<std::size_t>(in.a) * W + l];
      const T b = regs_[static_cast<std::size_t>(in.b) * W + l];
      fp::ExceptionFlags ef;
      Fpu<T> fpu(env_, ef);
      regs_[static_cast<std::size_t>(in.dst) * W + l] = fpu.div(a, b);
      fb[l] |= ef.raw();
    }
    load_flags(fb);
  }

  void lane_comp_div(vec v, unsigned bits) {
    alignas(32) T cb[W];
    alignas(32) T vb[W];
    alignas(32) Bits fb[W];
    L::storeu(cb, comp_);
    L::storeu(vb, v);
    spill_flags(fb);
    for (int l = 0; l < W; ++l) {
      if (!(bits >> l & 1u)) continue;
      fp::ExceptionFlags ef;
      Fpu<T> fpu(env_, ef);
      cb[l] = fpu.div(cb[l], vb[l]);
      fb[l] |= ef.raw();
    }
    load_flags(fb);
    comp_ = L::loadu(cb);
  }

  bool exec() {
    pc_ = 0;
    bool uniform = true;
    for (;;) {
      if (uniform) {
        switch (step<true>(pc_, kFullMask, ones_)) {
          case St::Ok:
            break;
          case St::Halted:
            return true;
          case St::Trap:
            return false;
          case St::Diverged:
            uniform = false;
            break;
        }
      } else {
        std::int32_t mn = kLaneHalted;
        for (int l = 0; l < W; ++l)
          if (pcs_[l] < mn) mn = pcs_[l];
        if (mn == kLaneHalted) return true;
        unsigned bits = 0;
        alignas(32) T mb[W];
        for (int l = 0; l < W; ++l) {
          const bool active = pcs_[l] == mn;
          bits |= (active ? 1u : 0u) << l;
          mb[l] = active ? fp::from_bits<T>(static_cast<Bits>(~Bits(0))) : T(0);
        }
        if (bits == kFullMask) {
          // All live lanes at one pc: reconverge to the uniform fast path.
          uniform = true;
          pc_ = mn;
          continue;
        }
        if (step<false>(mn, bits, L::loadu(mb)) == St::Trap) return false;
      }
    }
  }

  // ---- members ----

  const BytecodeProgram& bp_;
  ExecContext& ctx_;
  RunResult* const out_;
  const fp::FpEnv& env_;
  const BcInsn* const code_;
  const T* const consts_;
  const vmath::MathLib* const mathlib_;
  const int num_params_;
  const std::uint64_t cyc_div_;
  const std::uint64_t cyc_call_;

  // Lane scratch (owned by ExecContext::lane, bound per group).
  T* regs_ = nullptr;
  T* args_ = nullptr;
  T* ints_fp_ = nullptr;
  T* base_ = nullptr;
  T* arrays_ = nullptr;
  int* ints_ = nullptr;
  std::uint64_t* slot_epoch_ = nullptr;
  std::uint64_t epoch_ = 0;

  int loop_vars_[kMaxLoopDepth][W] = {};
  int loop_bounds_[kMaxLoopDepth][W] = {};
  std::int32_t pcs_[W] = {};
  std::int32_t pc_ = 0;
  std::uint64_t u_ops_ = 0;
  std::uint64_t u_cycles_ = 0;
  std::uint64_t m_ops_[W] = {};
  std::uint64_t m_cycles_[W] = {};
  vec comp_{};
  vec flags_{};

  // Broadcast constants.
  vec sign_{}, inf_{}, min_normal_{}, quiet_{}, ones_{}, zero_{};
  vec inv_{}, dbz_{}, inx_{}, ovf_inx_{}, unf_{}, unf_inx_{}, fix_thresh_{};
  bool daz_on_ = false, ftz_on_ = false, approx_div32_ = false;
};

/// Run one W-sized group through backend L.  False means "re-run this
/// group with the scalar interpreter" (trap semantics; see Engine::run).
template <class L>
bool run_group(const BytecodeProgram& bp, const KernelArgs* inputs,
               ExecContext& ctx, RunResult* out) {
  Engine<L> engine(bp, ctx, out);
  return engine.run(inputs);
}

}  // namespace lane
}  // namespace gpudiff::vgpu
