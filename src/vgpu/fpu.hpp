#pragma once
// The virtual floating-point unit: IEEE arithmetic under an FpEnv, with
// software exception-flag tracking (paper Table II — NVIDIA GPUs have no
// status register; our virtual FPU restores that visibility).
//
// Exactness of add/mul/div is detected with error-free transformations so
// the Inexact flag is precise, not heuristic.

#include <cmath>

#include "fp/bits.hpp"
#include "fp/env.hpp"
#include "fp/exceptions.hpp"
#include "fp/softfloat.hpp"

namespace gpudiff::vgpu {

template <typename T>
class Fpu {
 public:
  Fpu(const fp::FpEnv& env, fp::ExceptionFlags& flags) noexcept
      : env_(env), flags_(flags) {}

  T add(T a, T b) noexcept {
    a = daz(a);
    b = daz(b);
    if (fp::is_nan_bits(a) || fp::is_nan_bits(b)) return propagate_nan(a, b);
    const T r = a + b;
    if (fp::is_finite_bits(a) && fp::is_finite_bits(b)) {
      if (fp::is_nan_bits(r)) flags_.raise(fp::kInvalid);       // inf - inf: n/a here
      if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      // The error-free probes below only ever raise kInexact, so they are
      // skipped once it is set: on subnormal operands each extra FP op
      // costs a microcode assist (~100 cycles on common x86), and campaign
      // kernels raise Inexact within a few operations.
      else if (!flags_.inexact() && (r - a != b || r - b != a))
        flags_.raise(fp::kInexact);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b)) {
      flags_.raise(fp::kInvalid);  // (+inf) + (-inf)
    }
    return ftz(r);
  }

  T sub(T a, T b) noexcept { return add(a, fp::negate_bits(b)); }

  T mul(T a, T b) noexcept {
    a = daz(a);
    b = daz(b);
    if (fp::is_nan_bits(a) || fp::is_nan_bits(b)) return propagate_nan(a, b);
    // Subnormal operands or a (possibly) subnormal product stall hardware
    // multipliers with a microcode assist; the integer soft path computes
    // the identical correctly-rounded result without the stall.
    const bool soft = assist_prone_mul(a, b);
    const T r = soft ? fp::soft_mul(a, b) : a * b;
    if (fp::is_finite_bits(a) && fp::is_finite_bits(b)) {
      if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      // On the soft path the std::fma error-free probe would take the very
      // subnormal-operand assist soft_mul avoided; an integer exactness
      // check answers the same question assist-free.
      else if (!flags_.inexact() &&
               (soft ? fp::mul_rounds_inexact(a, b) : std::fma(a, b, -r) != T(0)))
        flags_.raise(fp::kInexact);
      if (fp::is_subnormal_bits(r) ||
          (fp::is_zero_bits(r) && !fp::is_zero_bits(a) && !fp::is_zero_bits(b)))
        flags_.raise(fp::kUnderflow | fp::kInexact);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b)) {
      flags_.raise(fp::kInvalid);  // 0 * inf
    }
    return ftz(r);
  }

  T div(T a, T b) noexcept {
    a = daz(a);
    b = daz(b);
    if constexpr (sizeof(T) == 4) {
      if (env_.div32 != fp::Div32Mode::IEEE) return div32_approx(a, b);
    }
    if (fp::is_nan_bits(a) || fp::is_nan_bits(b)) return propagate_nan(a, b);
    const bool soft = assist_prone_div(a, b);
    const T r = soft ? fp::soft_div(a, b) : a / b;
    if (fp::is_zero_bits(b) && fp::is_finite_bits(a) && !fp::is_zero_bits(a) &&
        !fp::is_nan_bits(a)) {
      flags_.raise(fp::kDivideByZero);
    } else if (fp::is_finite_bits(a) && fp::is_finite_bits(b)) {
      if (fp::is_nan_bits(r)) flags_.raise(fp::kInvalid);  // 0/0
      else if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      else if (!flags_.inexact() &&
               (soft ? fp::div_rounds_inexact(a, b)
                     : std::fma(r, b, -a) != T(0)))
        flags_.raise(fp::kInexact);
      if (fp::is_subnormal_bits(r) ||
          (fp::is_zero_bits(r) && !fp::is_zero_bits(a)))
        flags_.raise(fp::kUnderflow | fp::kInexact);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b)) {
      flags_.raise(fp::kInvalid);  // inf/inf
    }
    return ftz(r);
  }

  T fma_op(T a, T b, T c) noexcept {
    a = daz(a);
    b = daz(b);
    c = daz(c);
    if (fp::is_nan_bits(a) || fp::is_nan_bits(b) || fp::is_nan_bits(c))
      return fp::is_nan_bits(a) ? quieted(a) : propagate_nan(b, c);
    // Subnormal operands or a subnormal-prone product/sum stall the fused
    // unit with a microcode assist; the integer soft path is bit-identical.
    const T r = assist_prone_fma(a, b, c) ? fp::soft_fma(a, b, c)
                                          : std::fma(a, b, c);
    const bool fin = fp::is_finite_bits(a) && fp::is_finite_bits(b) &&
                     fp::is_finite_bits(c);
    if (fin) {
      if (fp::is_nan_bits(r)) flags_.raise(fp::kInvalid);
      else if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      else flags_.raise(fp::kInexact);  // conservatively inexact
      if (fp::is_subnormal_bits(r)) flags_.raise(fp::kUnderflow);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b) &&
               !fp::is_nan_bits(c)) {
      flags_.raise(fp::kInvalid);
    }
    return ftz(r);
  }

  T neg(T a) noexcept { return fp::negate_bits(a); }

  /// Classify a math-library result's exceptions from values (libraries run
  /// outside the virtual FPU; Table II visibility is restored heuristically).
  void note_call_result(T result, bool args_all_non_nan, bool args_finite) noexcept {
    if (fp::is_nan_bits(result) && args_all_non_nan) flags_.raise(fp::kInvalid);
    if (fp::is_inf_bits(result) && args_finite)
      flags_.raise(fp::kOverflow | fp::kInexact);
    if (fp::is_subnormal_bits(result)) flags_.raise(fp::kUnderflow);
  }

 private:
  T daz(T x) const noexcept { return fp::apply_daz(x, env_); }
  T ftz(T x) noexcept { return fp::apply_ftz(x, env_, &flags_); }

  /// Deterministic NaN propagation: first NaN operand, quieted, payload and
  /// sign preserved (x86 SSE src1-priority semantics).  Hardware add/mul
  /// propagate whichever NaN the compiler placed in the destination
  /// register, so leaving this to `a + b` makes results depend on codegen —
  /// the -O3 optimizer commutes operands differently across call sites,
  /// which would break the bytecode-VM/tree-walk bit-identical contract.
  static T quieted(T x) noexcept {
    return fp::from_bits<T>(fp::to_bits(x) | fp::FloatTraits<T>::quiet_bit);
  }
  static T propagate_nan(T a, T b) noexcept {
    return quieted(fp::is_nan_bits(a) ? a : b);
  }

  /// True when a*b would take a denormal-operand or denormal-result assist:
  /// a subnormal input, or biased exponents summing low enough that the
  /// product can land in (or under) the subnormal range.
  static bool assist_prone_mul(T a, T b) noexcept {
    using Tr = fp::FloatTraits<T>;
    constexpr int kExpMax = (1 << Tr::exponent_bits) - 1;
    const int ea = fp::raw_exponent(a);
    const int eb = fp::raw_exponent(b);
    if (ea == kExpMax || eb == kExpMax) return false;  // inf/nan: no assist
    return ea == 0 || eb == 0 || ea + eb <= Tr::exponent_bias + 1;
  }

  /// True when fma(a,b,c) would take an assist: a subnormal operand, a
  /// product that can land near/below the subnormal range, an addend small
  /// enough that the sum can, or a near-cancellation (opposite signs,
  /// overlapping exponents) whose surviving low product bits can be
  /// subnormal.  Purely a routing heuristic — both paths are bit-identical.
  static bool assist_prone_fma(T a, T b, T c) noexcept {
    using Tr = fp::FloatTraits<T>;
    constexpr int kExpMax = (1 << Tr::exponent_bits) - 1;
    const int ea = fp::raw_exponent(a);
    const int eb = fp::raw_exponent(b);
    const int ec = fp::raw_exponent(c);
    if (ea == kExpMax || eb == kExpMax || ec == kExpMax) return false;
    if (ea == 0 || eb == 0 || ec == 0) return true;
    if (ea + eb <= Tr::exponent_bias + 2 || ec <= 1) return true;
    const int ep = ea + eb - Tr::exponent_bias;  // biased product exponent +-1
    const bool opposite = (fp::sign_bit(a) != fp::sign_bit(b)) != fp::sign_bit(c);
    return opposite && ep - ec <= 2 && ec - ep <= 2 &&
           ep <= 2 * Tr::mantissa_bits + 4;
  }

  /// True when a/b would take an assist: subnormal operand, or an exponent
  /// gap that can push the quotient into the subnormal range.
  static bool assist_prone_div(T a, T b) noexcept {
    using Tr = fp::FloatTraits<T>;
    constexpr int kExpMax = (1 << Tr::exponent_bits) - 1;
    const int ea = fp::raw_exponent(a);
    const int eb = fp::raw_exponent(b);
    if (ea == kExpMax || eb == kExpMax || fp::is_zero_bits(a) ||
        fp::is_zero_bits(b))
      return false;  // specials and exact zeros divide without assists
    return ea == 0 || eb == 0 || ea - eb <= Tr::min_normal_exponent;
  }

  /// float -> double widening; CVTSS2SD assists on subnormal inputs, so
  /// those route through the (exact) integer path.
  static double promote32(float v) noexcept {
    return fp::is_subnormal_bits(v) ? fp::soft_promote(v)
                                    : static_cast<double>(v);
  }

  /// double -> float narrowing; CVTSD2SS assists when the rounded float is
  /// subnormal (and on subnormal double inputs), both under 2^-126 here.
  static float demote32(double v) noexcept {
    if (fp::is_finite_bits(v) && !fp::is_zero_bits(v) &&
        fp::abs_bits(v) < 0x1p-126)
      return fp::soft_demote(v);
    return static_cast<float>(v);
  }

  float div32_approx(float a, float b) noexcept {
    flags_.raise(fp::kInexact);
    if (env_.div32 == fp::Div32Mode::NvApprox) {
      // __fdividef: documented to return 0 when 2^126 < |b| < 2^128.
      if (fp::is_finite_bits(b) && fp::abs_bits(b) > 0x1p126f) {
        const bool neg = fp::sign_bit(a) != fp::sign_bit(b);
        return neg ? -0.0f : 0.0f;
      }
      // Two float roundings; the reciprocal's narrowing cast and the final
      // float multiply both route assist-prone ranges through soft paths.
      const float recip = demote32(1.0 / promote32(b));
      const float r = assist_prone_mul(a, recip) ? fp::soft_mul(a, recip)
                                                 : a * recip;
      return ftz(r);
    }
    // AmdApprox (v_rcp + refined multiply): double product, single rounding.
    const double r = promote32(a) * (1.0 / promote32(b));
    return demote32(r);  // no FTZ: MI250X keeps FP32 denormals
  }

  const fp::FpEnv& env_;
  fp::ExceptionFlags& flags_;
};

}  // namespace gpudiff::vgpu
