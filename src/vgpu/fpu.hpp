#pragma once
// The virtual floating-point unit: IEEE arithmetic under an FpEnv, with
// software exception-flag tracking (paper Table II — NVIDIA GPUs have no
// status register; our virtual FPU restores that visibility).
//
// Exactness of add/mul/div is detected with error-free transformations so
// the Inexact flag is precise, not heuristic.

#include <cmath>

#include "fp/bits.hpp"
#include "fp/env.hpp"
#include "fp/exceptions.hpp"

namespace gpudiff::vgpu {

template <typename T>
class Fpu {
 public:
  Fpu(const fp::FpEnv& env, fp::ExceptionFlags& flags) noexcept
      : env_(env), flags_(flags) {}

  T add(T a, T b) noexcept {
    a = daz(a);
    b = daz(b);
    const T r = a + b;
    if (fp::is_finite_bits(a) && fp::is_finite_bits(b)) {
      if (fp::is_nan_bits(r)) flags_.raise(fp::kInvalid);       // inf - inf: n/a here
      if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      else if (r - a != b || r - b != a) flags_.raise(fp::kInexact);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b)) {
      flags_.raise(fp::kInvalid);  // (+inf) + (-inf)
    }
    return ftz(r);
  }

  T sub(T a, T b) noexcept { return add(a, fp::negate_bits(b)); }

  T mul(T a, T b) noexcept {
    a = daz(a);
    b = daz(b);
    const T r = a * b;
    if (fp::is_finite_bits(a) && fp::is_finite_bits(b)) {
      if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      else if (std::fma(a, b, -r) != T(0)) flags_.raise(fp::kInexact);
      if (fp::is_subnormal_bits(r) ||
          (fp::is_zero_bits(r) && !fp::is_zero_bits(a) && !fp::is_zero_bits(b)))
        flags_.raise(fp::kUnderflow | fp::kInexact);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b)) {
      flags_.raise(fp::kInvalid);  // 0 * inf
    }
    return ftz(r);
  }

  T div(T a, T b) noexcept {
    a = daz(a);
    b = daz(b);
    if constexpr (sizeof(T) == 4) {
      if (env_.div32 != fp::Div32Mode::IEEE) return div32_approx(a, b);
    }
    const T r = a / b;
    if (fp::is_zero_bits(b) && fp::is_finite_bits(a) && !fp::is_zero_bits(a) &&
        !fp::is_nan_bits(a)) {
      flags_.raise(fp::kDivideByZero);
    } else if (fp::is_finite_bits(a) && fp::is_finite_bits(b)) {
      if (fp::is_nan_bits(r)) flags_.raise(fp::kInvalid);  // 0/0
      else if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      else if (std::fma(r, b, -a) != T(0)) flags_.raise(fp::kInexact);
      if (fp::is_subnormal_bits(r) ||
          (fp::is_zero_bits(r) && !fp::is_zero_bits(a)))
        flags_.raise(fp::kUnderflow | fp::kInexact);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b)) {
      flags_.raise(fp::kInvalid);  // inf/inf
    }
    return ftz(r);
  }

  T fma_op(T a, T b, T c) noexcept {
    a = daz(a);
    b = daz(b);
    c = daz(c);
    const T r = std::fma(a, b, c);
    const bool fin = fp::is_finite_bits(a) && fp::is_finite_bits(b) &&
                     fp::is_finite_bits(c);
    if (fin) {
      if (fp::is_nan_bits(r)) flags_.raise(fp::kInvalid);
      else if (fp::is_inf_bits(r)) flags_.raise(fp::kOverflow | fp::kInexact);
      else flags_.raise(fp::kInexact);  // conservatively inexact
      if (fp::is_subnormal_bits(r)) flags_.raise(fp::kUnderflow);
    } else if (fp::is_nan_bits(r) && !fp::is_nan_bits(a) && !fp::is_nan_bits(b) &&
               !fp::is_nan_bits(c)) {
      flags_.raise(fp::kInvalid);
    }
    return ftz(r);
  }

  T neg(T a) noexcept { return fp::negate_bits(a); }

  /// Classify a math-library result's exceptions from values (libraries run
  /// outside the virtual FPU; Table II visibility is restored heuristically).
  void note_call_result(T result, bool args_all_non_nan, bool args_finite) noexcept {
    if (fp::is_nan_bits(result) && args_all_non_nan) flags_.raise(fp::kInvalid);
    if (fp::is_inf_bits(result) && args_finite)
      flags_.raise(fp::kOverflow | fp::kInexact);
    if (fp::is_subnormal_bits(result)) flags_.raise(fp::kUnderflow);
  }

 private:
  T daz(T x) const noexcept { return fp::apply_daz(x, env_); }
  T ftz(T x) noexcept { return fp::apply_ftz(x, env_, &flags_); }

  float div32_approx(float a, float b) noexcept {
    flags_.raise(fp::kInexact);
    if (env_.div32 == fp::Div32Mode::NvApprox) {
      // __fdividef: documented to return 0 when 2^126 < |b| < 2^128.
      if (fp::is_finite_bits(b) && fp::abs_bits(b) > 0x1p126f) {
        const bool neg = fp::sign_bit(a) != fp::sign_bit(b);
        return neg ? -0.0f : 0.0f;
      }
      const float recip = static_cast<float>(1.0 / static_cast<double>(b));
      return ftz(a * recip);  // two float roundings
    }
    // AmdApprox (v_rcp + refined multiply): double product, single rounding.
    const double r = static_cast<double>(a) * (1.0 / static_cast<double>(b));
    return static_cast<float>(r);  // no FTZ: MI250X keeps FP32 denormals
  }

  const fp::FpEnv& env_;
  fp::ExceptionFlags& flags_;
};

}  // namespace gpudiff::vgpu
