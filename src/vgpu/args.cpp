#include "vgpu/args.hpp"

#include <stdexcept>

#include "fp/hexfloat.hpp"

namespace gpudiff::vgpu {

std::string KernelArgs::to_varity_string(const ir::Program& program) const {
  std::string out;
  const auto& params = program.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out += ' ';
    if (params[i].kind == ir::ParamKind::Int) {
      out += std::to_string(ints.at(i));
    } else if (program.precision() == ir::Precision::FP32) {
      out += fp::print_varity(static_cast<float>(fp.at(i)));
    } else {
      out += fp::print_varity(fp.at(i));
    }
  }
  return out;
}

support::Json KernelArgs::to_json(const ir::Program& program) const {
  support::Json arr = support::Json::array();
  const auto& params = program.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].kind == ir::ParamKind::Int)
      arr.push_back(support::Json(static_cast<long long>(ints.at(i))));
    else
      arr.push_back(support::Json(fp::encode_bits(fp.at(i))));
  }
  return arr;
}

KernelArgs KernelArgs::from_json(const support::Json& j, const ir::Program& program) {
  const auto& params = program.params();
  const auto& arr = j.as_array();
  if (arr.size() != params.size())
    throw std::runtime_error("KernelArgs: input count mismatch");
  KernelArgs args;
  args.fp.assign(params.size(), 0.0);
  args.ints.assign(params.size(), 0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].kind == ir::ParamKind::Int) {
      args.ints[i] = static_cast<int>(arr[i].as_int());
    } else {
      auto v = fp::decode_bits64(arr[i].as_string());
      if (!v) throw std::runtime_error("KernelArgs: bad fp bits");
      args.fp[i] = *v;
    }
  }
  return args;
}

}  // namespace gpudiff::vgpu
