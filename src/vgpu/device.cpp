#include "vgpu/device.hpp"

namespace gpudiff::vgpu {

const DeviceDescriptor& nvidia_v100_sim() {
  static const DeviceDescriptor d = {
      "V100-sim", "NVIDIA (simulated)", "PTX/SASS-sim", "Lassen",
      opt::Toolchain::Nvcc};
  return d;
}

const DeviceDescriptor& amd_mi250x_sim() {
  static const DeviceDescriptor d = {
      "MI250X-sim", "AMD (simulated)", "GCN/CDNA-sim", "Tioga",
      opt::Toolchain::Hipcc};
  return d;
}

const DeviceDescriptor& device_for(opt::Toolchain t) {
  return t == opt::Toolchain::Nvcc ? nvidia_v100_sim() : amd_mi250x_sim();
}

const DeviceDescriptor& device_for(const opt::PlatformSpec& platform) {
  return device_for(platform.toolchain);
}

}  // namespace gpudiff::vgpu
