#pragma once
// Results store: a compact, versioned on-disk database of campaign
// discrepancy populations and benchmark trajectory points, keyed by
// (commit label, configuration fingerprint).
//
// Merged campaign reports are one-shot artifacts; the store is what makes
// them queryable over time: `ingest` folds `--report` JSON files and
// Google-Benchmark `BENCH_*.json` files into per-key documents,
// `load_store` builds an in-memory index over the directory, the query
// functions project summaries / per-pair drill-downs / cross-commit trends
// out of it, and `diff_commits` computes the population and perf deltas a
// CI regression gate fails on.
//
// Layout (all files written with atomic write-then-rename, like every
// campaign artifact):
//
//   <root>/store.json                     format marker
//   <root>/pop/<commit>/<fingerprint>.json  one discrepancy population
//   <root>/perf/<commit>.json             one perf document per commit
//
// Key rule (the resume/merge fingerprint discipline, extended across
// commits): a population is keyed by the digest of its campaign
// configuration fingerprint, which embeds the full PlatformSpec of every
// selected platform — so campaigns over different platform sets never
// share a key, and `diff_commits` only ever compares like with like (a
// same-key platform-list mismatch, possible only for header-derived keys
// of pre-fingerprint reports, is refused, not papered over).  Store files
// are immutable once written: re-ingesting identical bytes is an
// idempotent no-op, a conflicting re-ingest is an error.
//
// Determinism: every document and every query result serializes with
// sorted keys and integer counts, so equal store contents produce
// byte-equal answers regardless of ingest order, thread timing or process
// restarts — which is what lets the serve daemon treat "reload the
// directory" as full crash recovery.

#include <array>
#include <map>
#include <string>
#include <vector>

#include "diff/campaign.hpp"
#include "support/json.hpp"

namespace gpudiff::store {

/// Store schema version, embedded in every document the store writes and
/// in the serve daemon's hello.  Bump on any layout change.
inline constexpr int kStoreVersion = 1;

/// The store key of a campaign report: "cfg-<fnv1a64>" over the embedded
/// configuration fingerprint for version-2 reports, "hdr-<fnv1a64>" over
/// the header fields (seed, precision, hipify, counts, levels, platform
/// names) for version-1 reports that predate the embedded fingerprint.
/// The prefixes keep the two derivations from ever colliding.
std::string fingerprint_of_report(const support::Json& report);

/// The canonical store key of one discrepancy record: "program:input:level".
/// Every exemplar list, reducer bundle and drill-down refers to records by
/// this key.
std::string record_key(const diff::DiscrepancyRecord& rec);

/// Exemplar record keys per (pair, class): `result[pair - 1][class_index]`
/// holds the first `max_exemplars` canonical-order keys whose record is
/// discrepant for that pair with that class.  Records must be in canonical
/// campaign order (they are, in every merged report) so "first" is
/// deterministic regardless of how the campaign was carved up.  This is
/// the selection rule populations are built with, exported so the
/// `--reduce-exemplars` hook picks exactly the records the store retains.
using ExemplarKeys =
    std::vector<std::array<std::vector<std::string>,
                           diff::kDiscrepancyClassCount>>;
ExemplarKeys select_exemplars(const std::vector<diff::DiscrepancyRecord>& records,
                              std::size_t n_platforms, int max_exemplars);

/// The union of every exemplar key of a population document, deduplicated
/// and in canonical record order (program, input, level position) — the
/// batch work list of `gpudiff-reduce --from-report`.
std::vector<std::string> exemplar_keys_of_population(const support::Json& pop);

/// Resolve every exemplar key of `pop` to its full record in `report`.
/// The report must carry the population's fingerprint, and *every* key
/// must resolve: a dangling key (a record the report no longer contains,
/// e.g. after a tightened --max-records cap) is a named-file error listing
/// every missing key against both documents — never a silent skip.
std::vector<diff::DiscrepancyRecord> resolve_exemplars(
    const support::Json& pop, const support::Json& report,
    const std::string& pop_name, const std::string& report_name);

struct IngestOptions {
  /// Set unreadable/foreign input files aside as `<file>.quarantined` and
  /// keep going (the PR 6 merge hardening discipline); without it the
  /// first corrupt file aborts the ingest with a diagnostic naming it.
  bool quarantine = false;
  /// Exemplar record keys retained per (pair, class) in a population.
  int max_exemplars = 5;
};

struct IngestOutcome {
  int reports = 0;      ///< campaign reports folded in
  int bench_files = 0;  ///< Google-Benchmark files folded in
  std::vector<std::string> quarantined;  ///< files set aside (with reasons)
};

/// Fold `paths` (campaign `--report` JSON and/or Google-Benchmark JSON,
/// auto-detected by shape) into the store under `commit`.  Creates the
/// store directory and format marker if needed.  Throws std::runtime_error
/// naming the offending file on corrupt input (unless quarantining), on a
/// conflicting re-ingest, or on an invalid commit label.
IngestOutcome ingest(const std::string& store_dir, const std::string& commit,
                     const std::vector<std::string>& paths,
                     const IngestOptions& options = {});

/// In-memory index over a store directory: the serve daemon's working set.
/// Documents are kept as parsed JSON — queries project from them, and the
/// files on disk remain the only durable state (reloading the directory
/// after a crash rebuilds this index byte-identically).
struct StoreIndex {
  /// commit -> fingerprint -> population document.
  std::map<std::string, std::map<std::string, support::Json>> populations;
  /// commit -> perf document.
  std::map<std::string, support::Json> perf;
};

/// Load and validate every document under `store_dir`.  Unreadable files
/// throw with the file named; atomic-write temp litter is skipped.
StoreIndex load_store(const std::string& store_dir);

/// Per-commit totals: one row per commit (sorted by label) with population
/// count, comparisons, discrepancies and benchmark count.
support::Json summary(const StoreIndex& index);

/// The full population document for (commit, fingerprint).  An empty
/// fingerprint selects the commit's only population (errors if ambiguous).
const support::Json& population(const StoreIndex& index,
                                const std::string& commit,
                                const std::string& fingerprint);

/// Per-pair drill-down: per-level class counts, adjacency and exemplar
/// record keys for one (baseline, pair) platform pair of one population.
support::Json pair_drilldown(const StoreIndex& index, const std::string& commit,
                             const std::string& fingerprint,
                             const std::string& pair);

/// Cross-commit series, ordered by commit label: total discrepancies per
/// fingerprint and real time per benchmark.
support::Json trend(const StoreIndex& index);

struct DiffOptions {
  /// A matched benchmark whose real time grew by more than this fraction
  /// of the old value is a perf regression.
  double max_perf_regress_pct = 10.0;
};

/// Population and perf deltas between two ingested commits: matched
/// fingerprints with per-pair per-class deltas, matched benchmarks with
/// time ratios, and a "regressions" block listing every fingerprint whose
/// discrepancy total grew and every benchmark past the threshold.
/// Deterministic: byte-identical across repeated runs and ingest orders.
support::Json diff_commits(const StoreIndex& index, const std::string& from,
                           const std::string& to,
                           const DiffOptions& options = {});

}  // namespace gpudiff::store
