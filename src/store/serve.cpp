#include "store/serve.hpp"

#include <stdexcept>
#include <utility>

#include "net/wire.hpp"

namespace gpudiff::store {

using support::Json;

namespace {

std::int64_t seq_of(const Json& request) {
  return request.get_or("seq", Json(std::int64_t{0})).as_int();
}

std::string string_field(const Json& request, const char* key,
                         const char* fallback = nullptr) {
  if (!request.contains(key)) {
    if (fallback != nullptr) return fallback;
    throw std::invalid_argument(std::string("missing \"") + key + "\" field");
  }
  if (!request.at(key).is_string())
    throw std::invalid_argument(std::string("\"") + key +
                                "\" must be a string");
  return request.at(key).as_string();
}

}  // namespace

StoreServer::StoreServer(ServeOptions options) : options_(std::move(options)) {
  if (options_.dir.empty())
    throw std::invalid_argument("StoreServer: empty store directory");
  // Loading the directory IS recovery: the files on disk are the journal,
  // and a SIGKILL between requests loses nothing that was ingested.
  index_ = load_store(options_.dir);
  listener_.listen(options_.bind_host, options_.port);
}

StoreServer::~StoreServer() { stop(); }

void StoreServer::start() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  threads_.emplace_back([this] { accept_loop(); });
}

void StoreServer::stop() {
  if (stop_.exchange(true)) return;
  // Join before closing the listener: the accept loop polls stop_ at the
  // I/O timeout and exits on its own, and the fd is closed only once no
  // thread can still be polling it (the coordinator's ordering).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  listener_.close();
}

int StoreServer::commit_count_locked() const {
  int n = static_cast<int>(index_.populations.size());
  for (const auto& [commit, perf] : index_.perf)
    if (index_.populations.find(commit) == index_.populations.end()) ++n;
  return n;
}

int StoreServer::commit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_count_locked();
}

void StoreServer::accept_loop() {
  while (!stop_.load()) {
    net::Socket socket = listener_.accept(options_.io_timeout_seconds);
    if (!socket.valid()) continue;  // timeout, or listener closed by stop()
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stop_.load()) return;
    threads_.emplace_back(
        [this, s = std::move(socket)]() mutable { serve(std::move(s)); });
  }
}

void StoreServer::serve(net::Socket socket) {
  bool greeted = false;
  while (!stop_.load()) {
    Json request;
    const net::IoStatus status =
        net::recv_message(socket, &request, options_.io_timeout_seconds);
    if (status == net::IoStatus::Timeout) continue;  // poll stop_
    if (status != net::IoStatus::Ok) return;  // closed or desynchronized
    Json response;
    try {
      if (request.get_or("op", Json("")).as_string() == "hello")
        response = handle_hello(request, &greeted);
      else if (!greeted)
        response = net::error_response(seq_of(request),
                                       "request before hello", /*fatal=*/true);
      else
        response = handle(request);
    } catch (const std::invalid_argument& e) {
      // A malformed request shape means the client is wrong — fatal, the
      // wire contract's "do not retry".
      response = net::error_response(seq_of(request), e.what(), /*fatal=*/true);
    } catch (const std::exception& e) {
      // A bad key (unknown commit/fingerprint/pair) or an unreadable store
      // on refresh: the connection is healthy, the client may requery.
      response =
          net::error_response(seq_of(request), e.what(), /*fatal=*/false);
    }
    if (net::send_message(socket, response, options_.io_timeout_seconds) !=
        net::IoStatus::Ok)
      return;
    if (!response.get_or("ok", Json(false)).as_bool() &&
        response.get_or("fatal", Json(false)).as_bool())
      return;  // refused connections are closed, not left to flounder
  }
}

support::Json StoreServer::handle_hello(const Json& request, bool* greeted) {
  const std::int64_t seq = seq_of(request);
  const std::int64_t version =
      request.get_or("version", Json(std::int64_t{0})).as_int();
  if (version != net::kWireVersion)
    return net::error_response(
        seq,
        "wire version " + std::to_string(version) + " unsupported (server: " +
            std::to_string(net::kWireVersion) + ")",
        /*fatal=*/true);
  const std::int64_t store_version =
      request.get_or("store_version", Json(std::int64_t{kStoreVersion}))
          .as_int();
  if (store_version != kStoreVersion)
    return net::error_response(
        seq,
        "store version " + std::to_string(store_version) +
            " unsupported (server: " + std::to_string(kStoreVersion) + ")",
        /*fatal=*/true);
  *greeted = true;
  Json response = net::ok_response(seq);
  response["store_version"] = kStoreVersion;
  std::lock_guard<std::mutex> lock(mu_);
  response["commits"] = commit_count_locked();
  return response;
}

support::Json StoreServer::handle(const Json& request) {
  const std::int64_t seq = seq_of(request);
  const std::string op = string_field(request, "op");
  std::lock_guard<std::mutex> lock(mu_);
  Json response = net::ok_response(seq);
  if (op == "ping") {
    return response;
  } else if (op == "summary") {
    response["summary"] = summary(index_);
  } else if (op == "population") {
    response["population"] =
        population(index_, string_field(request, "commit"),
                   string_field(request, "fingerprint", ""));
  } else if (op == "pair") {
    response["drilldown"] = pair_drilldown(
        index_, string_field(request, "commit"),
        string_field(request, "fingerprint", ""), string_field(request, "pair"));
  } else if (op == "trend") {
    response["trend"] = trend(index_);
  } else if (op == "diff") {
    DiffOptions options;
    if (request.contains("max_perf_regress_pct"))
      options.max_perf_regress_pct =
          request.at("max_perf_regress_pct").as_double();
    response["diff"] = diff_commits(index_, string_field(request, "from"),
                                    string_field(request, "to"), options);
  } else if (op == "refresh") {
    // Re-scan the directory so concurrently ingested results become
    // visible; a failed load leaves the previous index in place.
    StoreIndex fresh = load_store(options_.dir);
    index_ = std::move(fresh);
    response["commits"] = commit_count_locked();
  } else {
    throw std::invalid_argument("unknown op \"" + op + "\"");
  }
  return response;
}

}  // namespace gpudiff::store
