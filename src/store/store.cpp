#include "store/store.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <stdexcept>
#include <tuple>

#include "campaign/checkpoint.hpp"
#include "diff/campaign.hpp"
#include "diff/discrepancy.hpp"
#include "support/strings.hpp"

namespace gpudiff::store {

using support::Json;

namespace {

constexpr const char* kStoreFormat = "gpudiff-store";
constexpr const char* kPopFormat = "gpudiff-store-population";
constexpr const char* kPerfFormat = "gpudiff-store-perf";
constexpr const char* kDiffFormat = "gpudiff-store-diff";
constexpr const char* kTrendFormat = "gpudiff-store-trend";

// -- paths -----------------------------------------------------------------

void check_commit_label(const std::string& commit) {
  const bool ok =
      !commit.empty() && commit.size() <= 100 && commit[0] != '.' &&
      std::all_of(commit.begin(), commit.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
      });
  if (!ok)
    throw std::runtime_error("store: invalid commit label \"" + commit +
                             "\" (want [A-Za-z0-9._-]+, not starting with "
                             "'.')");
}

std::string marker_path(const std::string& root) {
  return root + "/store.json";
}
std::string pop_dir(const std::string& root, const std::string& commit) {
  return root + "/pop/" + commit;
}
std::string pop_path(const std::string& root, const std::string& commit,
                     const std::string& fingerprint) {
  return pop_dir(root, commit) + "/" + fingerprint + ".json";
}
std::string perf_path(const std::string& root, const std::string& commit) {
  return root + "/perf/" + commit + ".json";
}

/// Create the store root (and its format marker) if it does not exist yet;
/// refuse a directory that carries a foreign marker.
void ensure_store(const std::string& root) {
  std::filesystem::create_directories(root);
  std::filesystem::create_directories(root + "/pop");
  std::filesystem::create_directories(root + "/perf");
  const std::string marker = marker_path(root);
  if (std::filesystem::exists(marker)) {
    campaign::check_format(Json::parse(support::read_file(marker)),
                           kStoreFormat, "gpudiff results store");
    return;
  }
  Json j = Json::object();
  j["format"] = kStoreFormat;
  j["version"] = kStoreVersion;
  support::write_file_atomic(marker, j.dump(1) + "\n");
}

/// Immutable publish: writing the same bytes again is a no-op, writing
/// different bytes under an existing key is refused — the done-file
/// discipline, applied to store documents.
void write_or_verify(const std::string& path, const std::string& contents,
                     const char* what) {
  if (std::filesystem::exists(path)) {
    if (support::read_file(path) == contents) return;
    throw std::runtime_error(std::string("store: ") + path +
                             ": conflicting re-ingest (an existing " + what +
                             " document differs; store files are immutable)");
  }
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path().string());
  support::write_file_atomic(path, contents);
}

// -- report -> population ---------------------------------------------------

bool is_campaign_report(const Json& j) {
  return j.is_object() && j.contains("format") &&
         j.at("format").is_string() &&
         j.at("format").as_string() == "gpudiff-campaign-results";
}

bool is_benchmark_file(const Json& j) {
  return j.is_object() && j.contains("benchmarks") &&
         j.at("benchmarks").is_array() && j.contains("context");
}

std::vector<std::string> report_platforms(const Json& report) {
  std::vector<std::string> names;
  if (report.contains("platforms")) {
    for (const auto& p : report.at("platforms").as_array())
      names.push_back(p.as_string());
  } else {
    names = {"nvcc", "hipcc"};
  }
  if (names.size() < 2)
    throw std::runtime_error("report platform list too short");
  return names;
}

Json population_of_report(const Json& report, const std::string& commit,
                          const std::string& fingerprint, int max_exemplars) {
  const std::int64_t version = report.at("version").as_int();
  const std::vector<std::string> platforms = report_platforms(report);
  const std::size_t n_pairs = platforms.size() - 1;

  // Decode through the campaign serializers so the population layer keeps
  // exactly one reader of the report format (legacy and N-way layouts
  // both), then re-serialize in the store's always-general shape.
  std::vector<diff::LevelStats> per_level;
  for (const auto& stats : report.at("per_level").as_array())
    per_level.push_back(campaign::stats_from_json(stats, n_pairs));
  const auto& levels = report.at("levels").as_array();
  if (per_level.size() != levels.size())
    throw std::runtime_error("report level count mismatch");

  std::vector<diff::DiscrepancyRecord> records;
  for (const auto& rj : report.at("records").as_array())
    records.push_back(campaign::record_from_json(rj, platforms.size()));
  const ExemplarKeys exemplars =
      select_exemplars(records, platforms.size(), max_exemplars);

  Json j = Json::object();
  j["format"] = kPopFormat;
  j["version"] = kStoreVersion;
  j["commit"] = commit;
  j["fingerprint"] = fingerprint;
  Json source = Json::object();
  source["report_version"] = static_cast<long long>(version);
  source["seed"] = report.at("seed");
  source["precision"] = report.at("precision");
  source["hipify_converted"] = report.at("hipify_converted");
  source["num_programs"] = report.at("num_programs");
  source["inputs_per_program"] = report.at("inputs_per_program");
  j["source"] = std::move(source);
  Json names = Json::array();
  for (const auto& name : platforms) names.push_back(name);
  j["platforms"] = std::move(names);
  j["levels"] = report.at("levels");
  Json stats_arr = Json::array();
  std::uint64_t comparisons = 0, discrepancies = 0;
  for (const auto& stats : per_level) {
    comparisons += stats.comparisons;
    discrepancies += stats.discrepancy_total();
    stats_arr.push_back(campaign::stats_to_json(stats, /*legacy_pair=*/false));
  }
  j["per_level"] = std::move(stats_arr);
  Json ex = Json::object();
  for (std::size_t pi = 0; pi < n_pairs; ++pi) {
    Json per_class = Json::object();
    for (int ci = 0; ci < diff::kDiscrepancyClassCount; ++ci) {
      const auto& keys = exemplars[pi][static_cast<std::size_t>(ci)];
      if (keys.empty()) continue;
      Json arr = Json::array();
      for (const auto& k : keys) arr.push_back(k);
      per_class[diff::to_string(diff::class_from_index(ci))] = std::move(arr);
    }
    ex[platforms[pi + 1]] = std::move(per_class);
  }
  j["exemplars"] = std::move(ex);
  Json totals = Json::object();
  totals["comparisons"] = static_cast<long long>(comparisons);
  totals["discrepancies"] = static_cast<long long>(discrepancies);
  totals["runs"] =
      static_cast<long long>(comparisons * platforms.size());
  j["totals"] = std::move(totals);
  return j;
}

// -- benchmark file -> perf points ------------------------------------------

double to_nanoseconds(double value, const std::string& unit) {
  if (unit == "ns") return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  throw std::runtime_error("unknown benchmark time unit \"" + unit + "\"");
}

/// Fold one Google-Benchmark JSON file into a perf document's "benchmarks"
/// object.  Aggregate rows (mean/median/stddev of repetitions) are
/// skipped; per-iteration rows conflict-check against any prior entry of
/// the same name (two BENCH files for one commit must agree where they
/// overlap).
void fold_benchmarks(const Json& bench, Json& points) {
  for (const auto& b : bench.at("benchmarks").as_array()) {
    if (b.get_or("run_type", Json("iteration")).as_string() != "iteration")
      continue;
    const std::string name = b.at("name").as_string();
    const std::string unit =
        b.get_or("time_unit", Json("ns")).as_string();
    Json entry = Json::object();
    entry["real_time_ns"] = to_nanoseconds(b.at("real_time").as_double(), unit);
    entry["cpu_time_ns"] = to_nanoseconds(b.at("cpu_time").as_double(), unit);
    entry["iterations"] = b.at("iterations");
    if (points.contains(name)) {
      if (points.at(name) != entry)
        throw std::runtime_error("benchmark \"" + name +
                                 "\" already ingested for this commit with "
                                 "different numbers");
      continue;
    }
    points[name] = std::move(entry);
  }
}

// -- index helpers ----------------------------------------------------------

std::uint64_t population_total(const Json& pop, const char* which) {
  return static_cast<std::uint64_t>(pop.at("totals").at(which).as_int());
}

const std::map<std::string, Json>& commit_populations(
    const StoreIndex& index, const std::string& commit) {
  const auto it = index.populations.find(commit);
  if (it == index.populations.end())
    throw std::runtime_error("store: commit \"" + commit +
                             "\" has no ingested populations");
  return it->second;
}

/// Aggregate per-(pair, class) counts over every level of a population.
std::vector<std::array<std::uint64_t, diff::kDiscrepancyClassCount>>
pair_class_totals(const Json& pop) {
  const std::size_t n_pairs = pop.at("platforms").as_array().size() - 1;
  std::vector<std::array<std::uint64_t, diff::kDiscrepancyClassCount>> totals(
      n_pairs);
  for (auto& t : totals) t.fill(0);
  for (const auto& stats : pop.at("per_level").as_array()) {
    const auto& pairs = stats.at("pairs").as_array();
    for (std::size_t pi = 0; pi < n_pairs; ++pi) {
      const auto& counts = pairs[pi].at("class_counts").as_array();
      for (int ci = 0; ci < diff::kDiscrepancyClassCount; ++ci)
        totals[pi][static_cast<std::size_t>(ci)] += static_cast<std::uint64_t>(
            counts[static_cast<std::size_t>(ci)].as_int());
    }
  }
  return totals;
}

}  // namespace

std::string fingerprint_of_report(const Json& report) {
  // Version-2 reports carry the key ready-made; an embedded key that does
  // not match its own config bytes would mis-file the population, so it
  // is refused, not trusted.
  if (report.contains("fingerprint")) {
    const std::string fp = report.at("fingerprint").as_string();
    if (report.contains("config") &&
        fp != campaign::fingerprint_digest(report.at("config")))
      throw std::runtime_error(
          "report fingerprint does not match its embedded config");
    return fp;
  }
  if (report.contains("config"))
    return campaign::fingerprint_digest(report.at("config"));
  // Version-1 reports carry no embedded fingerprint; derive a weaker key
  // from the header.  Campaigns differing only in generator grammar or
  // record cap collide under this derivation — the "cfg-"/"hdr-" prefixes
  // keep the two key families disjoint, and ingest's immutability check
  // still refuses conflicting payloads under a collided key.
  Json header = Json::object();
  header["seed"] = report.at("seed");
  header["precision"] = report.at("precision");
  header["hipify_converted"] = report.at("hipify_converted");
  header["num_programs"] = report.at("num_programs");
  header["inputs_per_program"] = report.at("inputs_per_program");
  header["levels"] = report.at("levels");
  Json names = Json::array();
  for (const auto& name : report_platforms(report)) names.push_back(name);
  header["platforms"] = std::move(names);
  return "hdr-" + support::fnv1a64_hex(header.dump());
}

std::string record_key(const diff::DiscrepancyRecord& rec) {
  return std::to_string(rec.program_index) + ":" +
         std::to_string(rec.input_index) + ":" + opt::to_string(rec.level);
}

ExemplarKeys select_exemplars(const std::vector<diff::DiscrepancyRecord>& records,
                              std::size_t n_platforms, int max_exemplars) {
  if (n_platforms < 2)
    throw std::runtime_error("store: exemplar selection needs >= 2 platforms");
  ExemplarKeys exemplars(n_platforms - 1);
  for (const diff::DiscrepancyRecord& rec : records) {
    for (std::size_t p = 1; p < rec.pair_cls.size() && p < n_platforms; ++p) {
      if (rec.pair_cls[p] == diff::DiscrepancyClass::None) continue;
      auto& keys = exemplars[p - 1][static_cast<std::size_t>(
          diff::class_index(rec.pair_cls[p]))];
      if (static_cast<int>(keys.size()) < max_exemplars)
        keys.push_back(record_key(rec));
    }
  }
  return exemplars;
}

std::vector<std::string> exemplar_keys_of_population(const Json& pop) {
  std::vector<std::string> level_names;
  for (const auto& l : pop.at("levels").as_array())
    level_names.push_back(l.as_string());

  struct Ordered {
    long long program;
    long long input;
    std::size_t level;
    std::string key;
  };
  std::vector<Ordered> ordered;
  for (const auto& [pair_name, per_class] : pop.at("exemplars").as_object()) {
    (void)pair_name;
    for (const auto& [cls, arr] : per_class.as_object()) {
      (void)cls;
      for (const auto& kj : arr.as_array()) {
        const std::string& key = kj.as_string();
        const std::vector<std::string> parts = support::split(key, ':');
        if (parts.size() != 3)
          throw std::runtime_error("store: malformed exemplar key \"" + key +
                                   "\"");
        const auto level_it =
            std::find(level_names.begin(), level_names.end(), parts[2]);
        if (level_it == level_names.end())
          throw std::runtime_error("store: exemplar key \"" + key +
                                   "\" names a level outside the population");
        ordered.push_back({std::stoll(parts[0]), std::stoll(parts[1]),
                           static_cast<std::size_t>(
                               level_it - level_names.begin()),
                           key});
      }
    }
  }
  std::sort(ordered.begin(), ordered.end(), [](const Ordered& a,
                                               const Ordered& b) {
    return std::tie(a.program, a.input, a.level) <
           std::tie(b.program, b.input, b.level);
  });
  std::vector<std::string> keys;
  for (const Ordered& o : ordered)
    if (keys.empty() || keys.back() != o.key) keys.push_back(o.key);
  return keys;
}

std::vector<diff::DiscrepancyRecord> resolve_exemplars(
    const Json& pop, const Json& report, const std::string& pop_name,
    const std::string& report_name) {
  const std::string fp = fingerprint_of_report(report);
  if (pop.at("fingerprint").as_string() != fp)
    throw std::runtime_error(
        "store: population " + pop_name + " (fingerprint " +
        pop.at("fingerprint").as_string() + ") does not belong to report " +
        report_name + " (fingerprint " + fp + ")");

  const std::vector<std::string> platforms = report_platforms(report);
  std::map<std::string, diff::DiscrepancyRecord> by_key;
  for (const auto& rj : report.at("records").as_array()) {
    diff::DiscrepancyRecord rec =
        campaign::record_from_json(rj, platforms.size());
    std::string key = record_key(rec);
    by_key.emplace(std::move(key), std::move(rec));
  }

  std::vector<diff::DiscrepancyRecord> out;
  std::vector<std::string> dangling;
  for (const std::string& key : exemplar_keys_of_population(pop)) {
    const auto it = by_key.find(key);
    if (it == by_key.end()) {
      dangling.push_back(key);
      continue;
    }
    out.push_back(it->second);
  }
  if (!dangling.empty())
    throw std::runtime_error(
        "store: population " + pop_name + ": exemplar key" +
        (dangling.size() > 1 ? "s " : " ") + support::join(dangling, ", ") +
        " of fingerprint " + fp + " resolve to no record in report " +
        report_name +
        " (the report was re-merged with a tighter record cap, or one of "
        "the two files is stale)");
  return out;
}

IngestOutcome ingest(const std::string& store_dir, const std::string& commit,
                     const std::vector<std::string>& paths,
                     const IngestOptions& options) {
  check_commit_label(commit);
  ensure_store(store_dir);
  IngestOutcome outcome;

  // Perf points accumulate across the ingested files (several BENCH files
  // may legitimately cover one commit); populations publish one file each.
  const std::string perf = perf_path(store_dir, commit);
  Json points = Json::object();
  bool have_prior_perf = false;
  if (std::filesystem::exists(perf)) {
    const Json prior = Json::parse(support::read_file(perf));
    campaign::check_format(prior, kPerfFormat, "gpudiff store perf document");
    points = prior.at("benchmarks");
    have_prior_perf = true;
  }
  bool perf_changed = false;

  for (const std::string& path : paths) {
    try {
      const Json doc = Json::parse(support::read_file(path));
      if (is_campaign_report(doc)) {
        const std::int64_t version = doc.at("version").as_int();
        if (version < 1 || version > 2)
          throw std::runtime_error("unsupported campaign report version " +
                                   std::to_string(version));
        const std::string fingerprint = fingerprint_of_report(doc);
        const Json pop = population_of_report(doc, commit, fingerprint,
                                              options.max_exemplars);
        write_or_verify(pop_path(store_dir, commit, fingerprint),
                        pop.dump(1) + "\n", "population");
        ++outcome.reports;
      } else if (is_benchmark_file(doc)) {
        fold_benchmarks(doc, points);
        perf_changed = true;
        ++outcome.bench_files;
      } else {
        throw std::runtime_error(
            "neither a gpudiff campaign report nor a Google-Benchmark JSON "
            "file");
      }
    } catch (const std::exception& e) {
      // Immutability conflicts are always fatal: the input parsed fine,
      // the store simply refuses to rewrite history.  Everything else
      // (unreadable, truncated, foreign) is a bad input file — name it,
      // and with --quarantine set it aside and keep going.
      const std::string what = e.what();
      if (what.rfind("store: ", 0) == 0) throw;
      if (!options.quarantine)
        throw std::runtime_error("store: " + path + ": " + what);
      std::error_code ec;
      std::filesystem::rename(path, path + ".quarantined", ec);
      outcome.quarantined.push_back(path + ": " + what);
    }
  }

  if (perf_changed) {
    Json j = Json::object();
    j["format"] = kPerfFormat;
    j["version"] = kStoreVersion;
    j["commit"] = commit;
    j["benchmarks"] = std::move(points);
    if (have_prior_perf) {
      // Growing an existing perf document is the one sanctioned mutation:
      // fold_benchmarks already refused any conflicting overlap, so the
      // new file is a superset of the old.
      support::write_file_atomic(perf, j.dump(1) + "\n");
    } else {
      write_or_verify(perf, j.dump(1) + "\n", "perf");
    }
  }
  return outcome;
}

StoreIndex load_store(const std::string& store_dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(store_dir))
    throw std::runtime_error("store: not a directory: " + store_dir);
  campaign::check_format(
      Json::parse(support::read_file(marker_path(store_dir))), kStoreFormat,
      "gpudiff results store");

  StoreIndex index;
  const auto load_doc = [](const std::string& path, const char* format,
                           const char* what) {
    try {
      Json j = Json::parse(support::read_file(path));
      campaign::check_format(j, format, what);
      return j;
    } catch (const std::exception& e) {
      throw std::runtime_error("store: " + path + ": " + e.what());
    }
  };

  const std::string pops = store_dir + "/pop";
  if (fs::is_directory(pops)) {
    for (const auto& commit_entry : fs::directory_iterator(pops)) {
      if (!commit_entry.is_directory()) continue;
      const std::string commit = commit_entry.path().filename().string();
      for (const auto& entry : fs::directory_iterator(commit_entry.path())) {
        if (!entry.is_regular_file()) continue;
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp") != std::string::npos) continue;  // crash litter
        if (!support::ends_with(name, ".json")) continue;
        Json doc = load_doc(entry.path().string(), kPopFormat,
                            "gpudiff store population document");
        const std::string fingerprint = name.substr(0, name.size() - 5);
        // The document's own keys must agree with its location — a stray
        // copy under the wrong commit must not silently relabel results.
        if (doc.at("commit").as_string() != commit ||
            doc.at("fingerprint").as_string() != fingerprint)
          throw std::runtime_error("store: " + entry.path().string() +
                                   ": document keys disagree with its "
                                   "location in the store");
        index.populations[commit][fingerprint] = std::move(doc);
      }
    }
  }
  const std::string perfs = store_dir + "/perf";
  if (fs::is_directory(perfs)) {
    for (const auto& entry : fs::directory_iterator(perfs)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.find(".tmp") != std::string::npos) continue;
      if (!support::ends_with(name, ".json")) continue;
      Json doc = load_doc(entry.path().string(), kPerfFormat,
                          "gpudiff store perf document");
      const std::string commit = name.substr(0, name.size() - 5);
      if (doc.at("commit").as_string() != commit)
        throw std::runtime_error("store: " + entry.path().string() +
                                 ": document keys disagree with its "
                                 "location in the store");
      index.perf[commit] = std::move(doc);
    }
  }
  return index;
}

Json summary(const StoreIndex& index) {
  // One row per commit label, merged over both halves of the index (a
  // commit may carry populations, perf points, or both).
  std::map<std::string, Json> rows;
  const auto row_for = [&](const std::string& commit) -> Json& {
    auto it = rows.find(commit);
    if (it == rows.end()) {
      Json row = Json::object();
      row["commit"] = commit;
      row["populations"] = 0;
      row["comparisons"] = 0;
      row["discrepancies"] = 0;
      row["benchmarks"] = 0;
      it = rows.emplace(commit, std::move(row)).first;
    }
    return it->second;
  };
  for (const auto& [commit, pops] : index.populations) {
    Json& row = row_for(commit);
    std::uint64_t comparisons = 0, discrepancies = 0;
    for (const auto& [fp, pop] : pops) {
      comparisons += population_total(pop, "comparisons");
      discrepancies += population_total(pop, "discrepancies");
    }
    row["populations"] = static_cast<long long>(pops.size());
    row["comparisons"] = static_cast<long long>(comparisons);
    row["discrepancies"] = static_cast<long long>(discrepancies);
  }
  for (const auto& [commit, perf] : index.perf)
    row_for(commit)["benchmarks"] =
        static_cast<long long>(perf.at("benchmarks").as_object().size());
  Json arr = Json::array();
  for (auto& [commit, row] : rows) arr.push_back(std::move(row));
  Json j = Json::object();
  j["commits"] = std::move(arr);
  return j;
}

const Json& population(const StoreIndex& index, const std::string& commit,
                       const std::string& fingerprint) {
  const auto& pops = commit_populations(index, commit);
  if (!fingerprint.empty()) {
    const auto it = pops.find(fingerprint);
    if (it == pops.end())
      throw std::runtime_error("store: commit \"" + commit +
                               "\" has no population \"" + fingerprint +
                               "\"");
    return it->second;
  }
  if (pops.size() != 1) {
    std::string known;
    for (const auto& [fp, pop] : pops) known += " " + fp;
    throw std::runtime_error("store: commit \"" + commit + "\" has " +
                             std::to_string(pops.size()) +
                             " populations; name one of:" + known);
  }
  return pops.begin()->second;
}

Json pair_drilldown(const StoreIndex& index, const std::string& commit,
                    const std::string& fingerprint, const std::string& pair) {
  const Json& pop = population(index, commit, fingerprint);
  const auto& platforms = pop.at("platforms").as_array();
  std::size_t pi = platforms.size();
  for (std::size_t p = 1; p < platforms.size(); ++p)
    if (platforms[p].as_string() == pair) pi = p - 1;
  if (pi == platforms.size()) {
    std::string known;
    for (std::size_t p = 1; p < platforms.size(); ++p)
      known += " " + platforms[p].as_string();
    throw std::runtime_error("store: population has no pair \"" + pair +
                             "\" (known:" + known + ")");
  }

  Json j = Json::object();
  j["commit"] = pop.at("commit");
  j["fingerprint"] = pop.at("fingerprint");
  j["baseline"] = platforms[0];
  j["pair"] = pair;
  Json per_level = Json::object();
  const auto& levels = pop.at("levels").as_array();
  const auto& stats = pop.at("per_level").as_array();
  std::uint64_t total = 0;
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const Json& ps = stats[li].at("pairs").as_array()[pi];
    Json entry = Json::object();
    entry["comparisons"] = stats[li].at("comparisons");
    Json counts = Json::object();
    const auto& cc = ps.at("class_counts").as_array();
    for (int ci = 0; ci < diff::kDiscrepancyClassCount; ++ci) {
      const auto n = cc[static_cast<std::size_t>(ci)].as_int();
      total += static_cast<std::uint64_t>(n);
      if (n != 0)
        counts[diff::to_string(diff::class_from_index(ci))] =
            static_cast<long long>(n);
    }
    entry["class_counts"] = std::move(counts);
    entry["adjacency"] = ps.at("adjacency");
    per_level[levels[li].as_string()] = std::move(entry);
  }
  j["per_level"] = std::move(per_level);
  j["discrepancies"] = static_cast<long long>(total);
  j["exemplars"] = pop.at("exemplars").get_or(pair, Json::object());
  return j;
}

Json trend(const StoreIndex& index) {
  Json j = Json::object();
  j["format"] = kTrendFormat;
  j["version"] = kStoreVersion;
  // Commit labels sort lexicographically — the one deterministic order an
  // ingest-order-independent store can offer.  Callers who want timeline
  // order use sortable labels (zero-padded sequence numbers, dates).
  Json commits = Json::array();
  {
    std::vector<std::string> all;
    for (const auto& [commit, pops] : index.populations) all.push_back(commit);
    for (const auto& [commit, perf] : index.perf)
      if (index.populations.find(commit) == index.populations.end())
        all.push_back(commit);
    std::sort(all.begin(), all.end());
    for (const auto& c : all) commits.push_back(c);
  }
  j["commits"] = std::move(commits);
  Json pops = Json::object();
  for (const auto& [commit, fps] : index.populations)
    for (const auto& [fp, pop] : fps) {
      if (!pops.contains(fp)) pops[fp] = Json::object();
      pops[fp][commit] =
          static_cast<long long>(population_total(pop, "discrepancies"));
    }
  j["populations"] = std::move(pops);
  Json benches = Json::object();
  for (const auto& [commit, perf] : index.perf)
    for (const auto& [name, entry] : perf.at("benchmarks").as_object()) {
      if (!benches.contains(name)) benches[name] = Json::object();
      benches[name][commit] = entry.at("real_time_ns");
    }
  j["benchmarks"] = std::move(benches);
  return j;
}

Json diff_commits(const StoreIndex& index, const std::string& from,
                  const std::string& to, const DiffOptions& options) {
  Json j = Json::object();
  j["format"] = kDiffFormat;
  j["version"] = kStoreVersion;
  j["from"] = from;
  j["to"] = to;
  j["max_perf_regress_pct"] = options.max_perf_regress_pct;

  std::vector<std::string> pop_regressions, perf_regressions;

  // Populations: match by fingerprint.  The fingerprint embeds the full
  // platform set (the store key rule), so a matched key with different
  // platform lists is a header-key collision between genuinely different
  // campaigns — refused, the way resume/merge refuse mixed platform sets.
  Json pops = Json::object();
  const auto empty = std::map<std::string, Json>{};
  const auto from_it = index.populations.find(from);
  const auto to_it = index.populations.find(to);
  const auto& from_pops =
      from_it == index.populations.end() ? empty : from_it->second;
  const auto& to_pops =
      to_it == index.populations.end() ? empty : to_it->second;
  // A commit with nothing ingested is indistinguishable from a typo'd
  // label, and a typo'd --diff side would gate "clean" — refuse it.
  for (const auto* side : {&from, &to}) {
    if (index.populations.find(*side) == index.populations.end() &&
        index.perf.find(*side) == index.perf.end())
      throw std::runtime_error("store: commit \"" + *side +
                               "\" has nothing ingested");
  }
  std::vector<std::string> fps;
  for (const auto& [fp, pop] : from_pops) fps.push_back(fp);
  for (const auto& [fp, pop] : to_pops)
    if (from_pops.find(fp) == from_pops.end()) fps.push_back(fp);
  std::sort(fps.begin(), fps.end());
  for (const std::string& fp : fps) {
    const auto a = from_pops.find(fp);
    const auto b = to_pops.find(fp);
    Json entry = Json::object();
    if (a == from_pops.end() || b == to_pops.end()) {
      const Json& only = a == from_pops.end() ? b->second : a->second;
      entry["status"] = a == from_pops.end() ? "only_to" : "only_from";
      entry["platforms"] = only.at("platforms");
      entry["discrepancies"] =
          static_cast<long long>(population_total(only, "discrepancies"));
      pops[fp] = std::move(entry);
      continue;
    }
    if (a->second.at("platforms") != b->second.at("platforms"))
      throw std::runtime_error(
          "store: fingerprint " + fp + " maps to different platform sets in " +
          from + " and " + to + " (mixed platform sets are refused, as in "
          "resume/merge)");
    entry["status"] = "matched";
    entry["platforms"] = a->second.at("platforms");
    const std::uint64_t da = population_total(a->second, "discrepancies");
    const std::uint64_t db = population_total(b->second, "discrepancies");
    Json disc = Json::object();
    disc["from"] = static_cast<long long>(da);
    disc["to"] = static_cast<long long>(db);
    disc["delta"] =
        static_cast<long long>(db) - static_cast<long long>(da);
    entry["discrepancies"] = std::move(disc);
    Json comp = Json::object();
    comp["from"] =
        static_cast<long long>(population_total(a->second, "comparisons"));
    comp["to"] =
        static_cast<long long>(population_total(b->second, "comparisons"));
    entry["comparisons"] = std::move(comp);
    // Per-(pair, class) deltas, aggregated over levels; only classes with
    // activity on either side, so the document stays readable at scale.
    const auto ta = pair_class_totals(a->second);
    const auto tb = pair_class_totals(b->second);
    const auto& platforms = a->second.at("platforms").as_array();
    Json pairs = Json::object();
    for (std::size_t pi = 0; pi < ta.size(); ++pi) {
      Json classes = Json::object();
      for (int ci = 0; ci < diff::kDiscrepancyClassCount; ++ci) {
        const std::uint64_t ca = ta[pi][static_cast<std::size_t>(ci)];
        const std::uint64_t cb = tb[pi][static_cast<std::size_t>(ci)];
        if (ca == 0 && cb == 0) continue;
        Json c = Json::object();
        c["from"] = static_cast<long long>(ca);
        c["to"] = static_cast<long long>(cb);
        c["delta"] = static_cast<long long>(cb) - static_cast<long long>(ca);
        classes[diff::to_string(diff::class_from_index(ci))] = std::move(c);
      }
      pairs[platforms[pi + 1].as_string()] = std::move(classes);
    }
    entry["pairs"] = std::move(pairs);
    const bool regressed = db > da;
    entry["regressed"] = regressed;
    if (regressed) pop_regressions.push_back(fp);
    pops[fp] = std::move(entry);
  }
  j["populations"] = std::move(pops);

  // Perf: match benchmarks by name; a matched benchmark whose real time
  // grew past the threshold is a regression.
  Json perf = Json::object();
  const Json empty_perf = Json::object();
  const auto pa = index.perf.find(from);
  const auto pb = index.perf.find(to);
  const Json& benches_a =
      pa == index.perf.end() ? empty_perf : pa->second.at("benchmarks");
  const Json& benches_b =
      pb == index.perf.end() ? empty_perf : pb->second.at("benchmarks");
  std::vector<std::string> names;
  for (const auto& [name, e] : benches_a.as_object()) names.push_back(name);
  for (const auto& [name, e] : benches_b.as_object())
    if (!benches_a.contains(name)) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    Json entry = Json::object();
    if (!benches_a.contains(name) || !benches_b.contains(name)) {
      entry["status"] = benches_a.contains(name) ? "only_from" : "only_to";
      perf[name] = std::move(entry);
      continue;
    }
    const double ra = benches_a.at(name).at("real_time_ns").as_double();
    const double rb = benches_b.at(name).at("real_time_ns").as_double();
    entry["status"] = "matched";
    entry["from_ns"] = ra;
    entry["to_ns"] = rb;
    entry["ratio"] = ra > 0 ? rb / ra : 0.0;
    const bool regressed =
        ra > 0 && rb > ra * (1.0 + options.max_perf_regress_pct / 100.0);
    entry["regressed"] = regressed;
    if (regressed) perf_regressions.push_back(name);
    perf[name] = std::move(entry);
  }
  j["perf"] = std::move(perf);

  Json reg = Json::object();
  Json rp = Json::array();
  for (const auto& fp : pop_regressions) rp.push_back(fp);
  reg["population"] = std::move(rp);
  Json rb = Json::array();
  for (const auto& name : perf_regressions) rb.push_back(name);
  reg["perf"] = std::move(rb);
  j["regressions"] = std::move(reg);
  j["clean"] = pop_regressions.empty() && perf_regressions.empty();
  return j;
}

}  // namespace gpudiff::store
