#pragma once
// gpudiff-serve: the results store served over the net/ wire protocol.
//
// A long-running daemon holds a store's documents in a mutexed in-memory
// StoreIndex and answers query ops without re-parsing reports.  The index
// is pure cache: the store directory on disk (every file written
// atomically by store::ingest) is the only durable state, so a SIGKILLed
// server restarted on the same directory rebuilds the exact index —
// byte-identical query answers — by reloading it.  "refresh" re-scans the
// directory under the mutex, which is how results ingested while the
// server runs become visible.
//
// Session shape (the PR 6 wire invariant): a client opens with a
// versioned hello; the server refuses wire-version or store-version
// mismatches fatally at connect.  After the hello, each request carries a
// client-chosen monotonically increasing "seq" echoed by the response.
//
//   {"op":"hello","version":1,"store_version":1,"seq":n}
//       -> {"ok":true,"commits":c,"store_version":1,"seq":n}
//   {"op":"summary",...}        -> {"ok":true,"summary":{...}}
//   {"op":"population","commit":c,"fingerprint":f?,...}
//       -> {"ok":true,"population":{...}}
//   {"op":"pair","commit":c,"fingerprint":f?,"pair":p,...}
//       -> {"ok":true,"drilldown":{...}}
//   {"op":"trend",...}          -> {"ok":true,"trend":{...}}
//   {"op":"diff","from":a,"to":b,"max_perf_regress_pct":x?,...}
//       -> {"ok":true,"diff":{...}}
//   {"op":"refresh",...}        -> {"ok":true,"commits":c}
//   {"op":"ping",...}           -> {"ok":true}
//
// Errors: {"ok":false,"error":"...","fatal":b,"seq":n}.  A query that
// names an unknown commit/fingerprint/pair is a non-fatal error (the
// client picked a bad key; the connection is fine); a malformed or
// unknown op is fatal, as is a request before hello.

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "store/store.hpp"
#include "support/json.hpp"

namespace gpudiff::store {

struct ServeOptions {
  /// Store directory to serve (must already exist with a format marker —
  /// run an ingest first; an empty store is still a valid store).
  std::string dir;
  std::string bind_host = "127.0.0.1";
  /// 0 binds an ephemeral port; see StoreServer::port().
  int port = 0;
  /// Per-connection I/O timeout.  Reads poll at this granularity, so it
  /// also bounds how long stop() waits for connection threads.
  double io_timeout_seconds = 0.25;
};

class StoreServer {
 public:
  /// Binds the listener and loads the store into the in-memory index —
  /// the entire crash-recovery path, shared with ordinary startup.
  /// Throws std::runtime_error if the port cannot be bound or the store
  /// is unreadable.
  explicit StoreServer(ServeOptions options);
  ~StoreServer();

  /// The bound port (resolves ephemeral port 0).
  int port() const noexcept { return listener_.port(); }
  const std::string& dir() const noexcept { return options_.dir; }

  /// Serve on a background thread; returns immediately.
  void start();
  /// Stop accepting, join every thread, then close the listener (the
  /// coordinator's shutdown discipline).  Idempotent.
  void stop();

  /// Commits present in the index (populations or perf).
  int commit_count() const;

  /// One post-hello request against the index, under the mutex — exposed
  /// so tests can drive the query surface without sockets.
  support::Json handle(const support::Json& request);

 private:
  void accept_loop();
  void serve(net::Socket socket);
  support::Json handle_hello(const support::Json& request, bool* greeted);
  int commit_count_locked() const;

  ServeOptions options_;
  net::Listener listener_;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;  ///< guards index_
  StoreIndex index_;

  std::mutex threads_mu_;
  std::vector<std::thread> threads_;  ///< accept loop + connections
};

}  // namespace gpudiff::store
