#include "vmath/mathlib.hpp"

#include <stdexcept>

namespace gpudiff::vmath {

double MathLib::call64(ir::MathFn fn, double a, double b) const {
  using ir::MathFn;
  switch (fn) {
    case MathFn::Fabs: return f64_.fabs_(a);
    case MathFn::Sqrt: return f64_.sqrt_(a);
    case MathFn::Exp: return f64_.exp_(a);
    case MathFn::Log: return f64_.log_(a);
    case MathFn::Sin: return f64_.sin_(a);
    case MathFn::Cos: return f64_.cos_(a);
    case MathFn::Tan: return f64_.tan_(a);
    case MathFn::Asin: return f64_.asin_(a);
    case MathFn::Acos: return f64_.acos_(a);
    case MathFn::Atan: return f64_.atan_(a);
    case MathFn::Sinh: return f64_.sinh_(a);
    case MathFn::Cosh: return f64_.cosh_(a);
    case MathFn::Tanh: return f64_.tanh_(a);
    case MathFn::Ceil: return f64_.ceil_(a);
    case MathFn::Floor: return f64_.floor_(a);
    case MathFn::Trunc: return f64_.trunc_(a);
    case MathFn::Fmod: return f64_.fmod_(a, b);
    case MathFn::Pow: return f64_.pow_(a, b);
    case MathFn::Fmin: return f64_.fmin_(a, b);
    case MathFn::Fmax: return f64_.fmax_(a, b);
  }
  throw std::logic_error("MathLib::call64: bad function");
}

float MathLib::call32(ir::MathFn fn, float a, float b) const {
  using ir::MathFn;
  switch (fn) {
    case MathFn::Fabs: return f32_.fabs_(a);
    case MathFn::Sqrt: return f32_.sqrt_(a);
    case MathFn::Exp: return f32_.exp_(a);
    case MathFn::Log: return f32_.log_(a);
    case MathFn::Sin: return f32_.sin_(a);
    case MathFn::Cos: return f32_.cos_(a);
    case MathFn::Tan: return f32_.tan_(a);
    case MathFn::Asin: return f32_.asin_(a);
    case MathFn::Acos: return f32_.acos_(a);
    case MathFn::Atan: return f32_.atan_(a);
    case MathFn::Sinh: return f32_.sinh_(a);
    case MathFn::Cosh: return f32_.cosh_(a);
    case MathFn::Tanh: return f32_.tanh_(a);
    case MathFn::Ceil: return f32_.ceil_(a);
    case MathFn::Floor: return f32_.floor_(a);
    case MathFn::Trunc: return f32_.trunc_(a);
    case MathFn::Fmod: return f32_.fmod_(a, b);
    case MathFn::Pow: return f32_.pow_(a, b);
    case MathFn::Fmin: return f32_.fmin_(a, b);
    case MathFn::Fmax: return f32_.fmax_(a, b);
  }
  throw std::logic_error("MathLib::call32: bad function");
}

std::string MathLib::symbol(ir::MathFn fn, ir::Precision p) const {
  const std::string base = ir::name_of(fn, ir::Precision::FP64);
  const bool f32 = p == ir::Precision::FP32;
  switch (style_) {
    case SymbolStyle::NvLibdevice:
      return "__nv_" + base + (f32 ? "f" : "");
    case SymbolStyle::NvFast:
      // Only a handful of FP32 intrinsics exist; others fall back.
      if (f32 && (fn == ir::MathFn::Sin || fn == ir::MathFn::Cos ||
                  fn == ir::MathFn::Tan || fn == ir::MathFn::Exp ||
                  fn == ir::MathFn::Log || fn == ir::MathFn::Pow))
        return "__" + base + "f";
      return "__nv_" + base + (f32 ? "f" : "");
    case SymbolStyle::AmdOcml:
      return "__ocml_" + base + (f32 ? "_f32" : "_f64");
    case SymbolStyle::AmdOcmlNative:
      if (f32 && (fn == ir::MathFn::Sin || fn == ir::MathFn::Cos ||
                  fn == ir::MathFn::Tan || fn == ir::MathFn::Exp ||
                  fn == ir::MathFn::Log))
        return "__ocml_native_" + base + "_f32";
      return "__ocml_" + base + (f32 ? "_f32" : "_f64");
    case SymbolStyle::HipCudaCompat:
      if (fn == ir::MathFn::Fmod || fn == ir::MathFn::Pow)
        return "__hip_cuda_" + base + (f32 ? "_f32" : "_f64");
      return "__ocml_" + base + (f32 ? "_f32" : "_f64");
  }
  return base;
}

const MathLib* find_mathlib(std::string_view name) {
  for (const MathLib* lib : {&nv_libdevice(), &nv_fast(), &amd_ocml(),
                             &amd_ocml_native(), &hip_cuda_compat(),
                             &hip_cuda_compat_native()}) {
    if (lib->name() == name) return lib;
  }
  return nullptr;
}

}  // namespace gpudiff::vmath
