#pragma once
// Device math-library bindings.
//
// A MathLib is the set of math-function entry points a virtual compiler
// links a kernel against — the analogue of NVIDIA's libdevice / inline PTX
// sequences and AMD's ROCm device-libs (OCML).  Five bindings exist:
//
//   nv_libdevice()     — NVIDIA-sim default library
//   amd_ocml()         — AMD-sim default library (OCML-style)
//   hip_cuda_compat()  — the binding HIPIFY-converted sources get: mostly
//                        OCML, but a few entry points (fmod, pow) route
//                        through hipcc's CUDA-compat wrapper layer
//   nv_fast()          — nvcc -use_fast_math FP32 intrinsics (__sinf, ...)
//   amd_ocml_native()  — hipcc fast-math FP32 native_* functions
//
// Shared cores (core/kernels.hpp) back the functions the real vendors agree
// on; vendor files implement the divergent algorithms.  See DESIGN.md §1.

#include <string>
#include <string_view>

#include "ir/expr.hpp"

namespace gpudiff::vmath {

struct Fn64 {
  using F1 = double (*)(double);
  using F2 = double (*)(double, double);
  F1 fabs_, sqrt_, exp_, log_, sin_, cos_, tan_, asin_, acos_, atan_,
      sinh_, cosh_, tanh_, ceil_, floor_, trunc_;
  F2 fmod_, pow_, fmin_, fmax_;
};

struct Fn32 {
  using F1 = float (*)(float);
  using F2 = float (*)(float, float);
  F1 fabs_, sqrt_, exp_, log_, sin_, cos_, tan_, asin_, acos_, atan_,
      sinh_, cosh_, tanh_, ceil_, floor_, trunc_;
  F2 fmod_, pow_, fmin_, fmax_;
};

/// Naming convention used by Executable::disassemble() for call targets.
enum class SymbolStyle {
  NvLibdevice,    // __nv_cos / __nv_cosf
  NvFast,         // __cosf (fast intrinsics); fp64 falls back to __nv_*
  AmdOcml,        // __ocml_cos_f64 / __ocml_cos_f32
  AmdOcmlNative,  // __ocml_native_cos_f32; fp64 falls back to __ocml_*_f64
  HipCudaCompat,  // __hip_cuda_fmod (wrapped) or __ocml_* (pass-through)
};

class MathLib {
 public:
  MathLib(std::string name, SymbolStyle style, Fn64 f64, Fn32 f32)
      : name_(std::move(name)), style_(style), f64_(f64), f32_(f32) {}

  const std::string& name() const noexcept { return name_; }

  /// Invoke the bound implementation (b ignored for unary functions).
  double call64(ir::MathFn fn, double a, double b = 0.0) const;
  float call32(ir::MathFn fn, float a, float b = 0.0f) const;

  /// Linker-level symbol the call would resolve to on the real target.
  std::string symbol(ir::MathFn fn, ir::Precision p) const;

 private:
  std::string name_;
  SymbolStyle style_;
  Fn64 f64_;
  Fn32 f32_;
};

const MathLib& nv_libdevice();
const MathLib& nv_fast();
const MathLib& amd_ocml();
const MathLib& amd_ocml_native();
const MathLib& hip_cuda_compat();
const MathLib& hip_cuda_compat_native();

/// Look a library up by name() — used when reloading campaign metadata.
const MathLib* find_mathlib(std::string_view name);

}  // namespace gpudiff::vmath
