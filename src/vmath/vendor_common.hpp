#pragma once
// Helpers shared by the vendor library translation units.

#include <cmath>

#include "fp/bits.hpp"
#include "vmath/core/kernels.hpp"

namespace gpudiff::vmath::detail {

/// FP32 entry point computed through the FP64 implementation and rounded
/// once — the "promote to double" strategy both real vendors use for the
/// correctly-rounded FP32 math functions.
template <double (*F)(double)>
float via64(float x) noexcept {
  return static_cast<float>(F(static_cast<double>(x)));
}

template <double (*F)(double, double)>
float via64_2(float x, float y) noexcept {
  return static_cast<float>(F(static_cast<double>(x), static_cast<double>(y)));
}

/// Hardware-exact scalar ops (identical instruction on both GPU targets).
inline double hw_fabs(double x) noexcept { return fp::abs_bits(x); }
inline float hw_fabsf(float x) noexcept { return fp::abs_bits(x); }
inline double hw_sqrt(double x) noexcept {
  // IEEE-correct on V100 and MI250X alike; the host instruction matches.
  if (fp::sign_bit(x) && !fp::is_zero_bits(x)) return fp::quiet_nan<double>();
  return std::sqrt(x);
}
inline float hw_sqrtf(float x) noexcept {
  if (fp::sign_bit(x) && !fp::is_zero_bits(x)) return fp::quiet_nan<float>();
  return std::sqrt(x);
}

}  // namespace gpudiff::vmath::detail
