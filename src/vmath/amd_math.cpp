// AMD-sim device math library ("ocml-sim").
//
// Models the ROCm device-libs (OCML) algorithm family: dedicated library
// routines (__ocml_fmod_f64 et al., the paper's Case Study 1) with exact
// integer algorithms where the standard allows them.  Divergent algorithms
// relative to nv_math.cpp:
//
//  * fmod   — exact shift-subtract integer algorithm (never rounds).
//  * ceil/floor — exact over the full exponent range.
//  * sin/cos/tan — three-constant Cody-Waite with cancellation detection,
//             accurate even next to multiples of pi/2.
//  * cosh/sinh — scaled composition near the overflow boundary: finite
//             results all the way to the true threshold (~710.47).

#include "vmath/mathlib.hpp"
#include "vmath/vendor_common.hpp"
#include "vmath/vendor_tables.hpp"

namespace gpudiff::vmath {

namespace {

using core::PolyScheme;
using core::ReduceStyle;

double amd_sin(double x) noexcept { return core::sin64(x, ReduceStyle::CodyWaite3); }
double amd_cos(double x) noexcept { return core::cos64(x, ReduceStyle::CodyWaite3); }
double amd_tan(double x) noexcept { return core::tan64(x, ReduceStyle::CodyWaite3); }

// AMD-like Estrin evaluation of the shared exp/log cores (same coefficients
// as NV-sim, different association: last-ULP divergences on a small
// fraction of arguments).
double amd_exp(double x) noexcept { return core::exp64(x, PolyScheme::Estrin); }
double amd_log(double x) noexcept { return core::log64(x, PolyScheme::Estrin); }
double amd_tanh(double x) noexcept { return core::tanh64(x, PolyScheme::Estrin); }
double amd_pow(double x, double y) noexcept {
  return core::pow64(x, y, PolyScheme::Estrin);
}

double amd_cosh(double x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax < 0x1p-27) return 1.0;
  if (ax < 709.0) {
    // Same composition as NV-sim in the common range (exp differs only by
    // polynomial association).
    const double t = amd_exp(ax);
    return 0.5 * t + 0.5 / t;
  }
  // Near the overflow boundary: cosh(x) ~ e^(x - ln2); reduce the argument
  // before exponentiating so the result stays finite up to ~710.47.
  constexpr double kLn2 = 6.93147180559945286227e-01;
  return amd_exp(ax - kLn2);
}

double amd_sinh(double x) noexcept {
  if (fp::is_nan_bits(x) || fp::is_inf_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax < 0x1p-27) return x;
  double r;
  if (ax < 709.0) {
    const double t = amd_exp(ax);
    r = 0.5 * t - 0.5 / t;
  } else {
    constexpr double kLn2 = 6.93147180559945286227e-01;
    r = amd_exp(ax - kLn2);
  }
  return fp::copysign_bits(r, x);
}

constexpr Fn64 kAmd64 = {
    detail::hw_fabs, detail::hw_sqrt, amd_exp, amd_log,
    amd_sin, amd_cos, amd_tan,
    core::asin64, core::acos64, core::atan64,
    amd_sinh, amd_cosh, amd_tanh,
    core::ceil_exact<double>, core::floor_exact<double>, core::trunc_exact<double>,
    core::fmod_exact<double>, amd_pow,
    core::fmin_ieee<double>, core::fmax_ieee<double>,
};

constexpr Fn32 kAmd32 = {
    detail::hw_fabsf, detail::hw_sqrtf,
    detail::via64<amd_exp>, detail::via64<amd_log>,
    detail::via64<amd_sin>, detail::via64<amd_cos>, detail::via64<amd_tan>,
    detail::via64<core::asin64>, detail::via64<core::acos64>,
    detail::via64<core::atan64>,
    detail::via64<amd_sinh>, detail::via64<amd_cosh>, detail::via64<amd_tanh>,
    core::ceil_exact<float>, core::floor_exact<float>, core::trunc_exact<float>,
    core::fmod_exact<float>, detail::via64_2<amd_pow>,
    core::fmin_ieee<float>, core::fmax_ieee<float>,
};

}  // namespace

const MathLib& amd_ocml() {
  static const MathLib lib("amd-ocml-sim", SymbolStyle::AmdOcml, kAmd64, kAmd32);
  return lib;
}

namespace detail {
const Fn64& amd_table64() { return kAmd64; }
const Fn32& amd_table32() { return kAmd32; }
}  // namespace detail

}  // namespace gpudiff::vmath
