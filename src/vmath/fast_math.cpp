// Fast-math FP32 libraries for both vendors.
//
//  * nv_fast(): nvcc -use_fast_math maps sinf->__sinf, expf->__expf, ... —
//    short float-native polynomial approximations whose range reduction is
//    float-grade: accurate for small |x|, increasingly wrong for large |x|.
//  * amd_ocml_native(): hipcc fast-math maps selected calls to OCML
//    native_* functions modeled on the GCN hardware transcendental units
//    (V_SIN_F32 computes sin(2*pi*fract), V_EXP_F32 computes 2^x), with
//    *different* polynomial degrees and reduction than NVIDIA's intrinsics.
//
// Both vendors keep their default FP64 tables under fast math (on real
// hardware -use_fast_math / -ffast-math only swaps the FP32 entry points);
// the FP64 fast-math effects come from optimizer passes, not the library.
// The large FP32 O3+fast-math discrepancy counts of paper Table IX emerge
// from these two approximations disagreeing on nearly every argument.

#include <cmath>

#include "vmath/mathlib.hpp"
#include "vmath/vendor_common.hpp"
#include "vmath/vendor_tables.hpp"

namespace gpudiff::vmath {

namespace {

/// Round-to-nearest-integer-valued float via the magic-number trick
/// (correct for |x| < 2^22; beyond that the caller's result is documented
/// garbage, matching the real intrinsics' unbounded error for large args).
float rint_magicf(float x) noexcept {
  const float magic = 12582912.0f;  // 1.5 * 2^23
  if (fp::abs_bits(x) >= 8388608.0f) return x;  // already integral (2^23)
  return (x + magic) - magic;
}

/// Scale a float by 2^k with saturation (fast paths skip denormal care).
float scale_pow2f(float x, int k) noexcept {
  if (k > 127) return x * 0x1p127f * 0x1p127f;
  if (k < -126) {
    x *= 0x1p-126f;
    k += 126;
    if (k < -126) return x * 0.0f;
    return x * std::ldexp(1.0f, k);
  }
  return x * std::ldexp(1.0f, k);
}

// ---------------------------------------------------------------------------
// NVIDIA __sinf / __cosf / __tanf / __expf / __logf / __powf models
// ---------------------------------------------------------------------------

float nv_fast_sincos(float x, bool want_cos) noexcept {
  if (!fp::is_finite_bits(x)) return fp::quiet_nan<float>();
  const float q = rint_magicf(x * 0.636619772f);  // x * 2/pi
  int n = 0;
  if (fp::abs_bits(q) < 2147483000.0f) n = static_cast<int>(q) & 3;
  // Two-step float Cody-Waite; for |x| beyond ~2^22 this is garbage by design.
  float r = std::fma(-q, 1.57079637f, x);
  r = std::fma(-q, -4.37113883e-8f, r);
  const float s = r * r;
  const float sinp =
      r * (1.0f + s * (-1.66666667e-1f + s * (8.33333333e-3f + s * -1.98412698e-4f)));
  const float cosp =
      1.0f + s * (-0.5f + s * (4.16666667e-2f +
                               s * (-1.38888889e-3f + s * 2.48015873e-5f)));
  switch (n) {
    case 0: return want_cos ? cosp : sinp;
    case 1: return want_cos ? -sinp : cosp;
    case 2: return want_cos ? -cosp : -sinp;
    default: return want_cos ? sinp : -cosp;
  }
}

float nv_fast_sinf(float x) noexcept { return nv_fast_sincos(x, false); }
float nv_fast_cosf(float x) noexcept { return nv_fast_sincos(x, true); }
float nv_fast_tanf(float x) noexcept {
  return nv_fast_sincos(x, false) / nv_fast_sincos(x, true);
}

float nv_fast_expf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const float t = x * 1.44269504f;  // log2(e)
  if (t > 128.0f) return fp::infinity<float>();
  if (t < -150.0f) return 0.0f;
  const float k = rint_magicf(t);
  const float f = t - k;
  // 2^f on [-0.5, 0.5], degree-5 polynomial (one degree more than AMD's
  // native_exp model — the two intrinsics disagree at ~1e-7 relative).
  const float p = 1.0f + f * (6.93147182e-1f + f * (2.40226507e-1f +
                  f * (5.55041087e-2f + f * (9.61812911e-3f + f * 1.33335581e-3f))));
  return scale_pow2f(p, static_cast<int>(k));
}

float nv_fast_logf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_zero_bits(x)) return -fp::infinity<float>();
  if (fp::sign_bit(x)) return fp::quiet_nan<float>();
  if (fp::is_inf_bits(x)) return x;
  auto bits = fp::to_bits(x);
  int e = static_cast<int>(bits >> 23) - 127;
  if (e == -127) {  // subnormal: normalize
    x *= 0x1p25f;
    bits = fp::to_bits(x);
    e = static_cast<int>(bits >> 23) - 127 - 25;
  }
  std::uint32_t mant = bits & fp::FloatTraits<float>::mantissa_mask;
  // Center mantissa on [sqrt(2)/2, sqrt(2)).
  std::uint32_t mbits;
  if (mant >= 0x3504F3u) {  // mantissa field of sqrt(2)f
    e += 1;
    mbits = (static_cast<std::uint32_t>(126) << 23) | mant;
  } else {
    mbits = (static_cast<std::uint32_t>(127) << 23) | mant;
  }
  const float m = fp::from_bits<float>(mbits);
  const float f = m - 1.0f;
  const float s = f / (2.0f + f);
  const float z = s * s;
  const float R = z * (0.666666667f + z * (0.399999991f + z * 0.287672993f));
  const float hfsq = 0.5f * f * f;
  return static_cast<float>(e) * 0.693147181f + (f - (hfsq - s * (hfsq + R)));
}

float nv_fast_powf(float x, float y) noexcept {
  // CUDA defines __powf(x, y) = __expf(y * __logf(x)).
  return nv_fast_expf(y * nv_fast_logf(x));
}

// ---------------------------------------------------------------------------
// AMD native_* models (GCN transcendental-unit semantics)
// ---------------------------------------------------------------------------

/// sin(2*pi*t) after V_FRACT-style reduction of t = x/(2*pi).
float amd_native_sincos(float x, bool want_cos) noexcept {
  if (!fp::is_finite_bits(x)) return fp::quiet_nan<float>();
  float t = x * 0.159154943f;  // 1/(2*pi), float-rounded: huge args lose all bits
  if (want_cos) t += 0.25f;    // cos(2*pi*t) == sin(2*pi*(t + 1/4))
  t -= core::floor_exact(t);   // V_FRACT: t in [0, 1)
  // Quadrant fold: reduce to sin of an angle in [0, pi/2] with a sign.
  float frac;
  float sign = 1.0f;
  if (t <= 0.25f) {
    frac = t;
  } else if (t <= 0.5f) {
    frac = 0.5f - t;
  } else if (t <= 0.75f) {
    frac = t - 0.5f;
    sign = -1.0f;
  } else {
    frac = 1.0f - t;
    sign = -1.0f;
  }
  const float r = frac * 6.28318531f;  // radians, in [0, pi/2]
  const float s = r * r;
  // Degree-7 odd polynomial (different coefficient set from __sinf).
  const float sinp = r * (1.0f + s * (-1.66665668e-1f +
                      s * (8.33025139e-3f + s * -1.95906220e-4f)));
  return sign * sinp;
}

float amd_native_sinf(float x) noexcept { return amd_native_sincos(x, false); }
float amd_native_cosf(float x) noexcept { return amd_native_sincos(x, true); }
float amd_native_tanf(float x) noexcept {
  return amd_native_sincos(x, false) / amd_native_sincos(x, true);
}

float amd_native_expf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const float t = x * 1.44269504f;
  if (t > 128.0f) return fp::infinity<float>();
  if (t < -150.0f) return 0.0f;
  const float k = rint_magicf(t);
  const float f = t - k;  // f in [-0.5, 0.5]
  // 2^f via the exponential Taylor core in u = f*ln2 (degree 6); a different
  // evaluation shape than NVIDIA's direct 2^f minimax polynomial, so the two
  // approximations disagree in the low bits on most live arguments.
  const float u = f * 6.93147182e-1f;
  const float p = 1.0f + u * (1.0f + u * (0.5f + u * (1.66666672e-1f +
                  u * (4.16666679e-2f + u * (8.33333377e-3f + u * 1.38888892e-3f)))));
  return scale_pow2f(p, static_cast<int>(k));
}

float amd_native_logf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_zero_bits(x)) return -fp::infinity<float>();
  if (fp::sign_bit(x)) return fp::quiet_nan<float>();
  if (fp::is_inf_bits(x)) return x;
  // V_LOG_F32 computes log2; multiply by ln2 afterwards.
  auto bits = fp::to_bits(x);
  int e = static_cast<int>(bits >> 23) - 127;
  if (e == -127) {
    x *= 0x1p25f;
    bits = fp::to_bits(x);
    e = static_cast<int>(bits >> 23) - 127 - 25;
  }
  const std::uint32_t mant = bits & fp::FloatTraits<float>::mantissa_mask;
  const float m = fp::from_bits<float>((static_cast<std::uint32_t>(127) << 23) | mant);
  // log2(m) for m in [1,2): atanh series in u = (m-1)/(m+1), |u| <= 1/3.
  const float u = (m - 1.0f) / (m + 1.0f);
  const float u2 = u * u;
  const float log2m = u * (2.88539004f + u2 * (0.961796700f +
                      u2 * (0.577078016f + u2 * 0.412198186f)));
  return (static_cast<float>(e) + log2m) * 0.693147181f;
}

}  // namespace

const MathLib& nv_fast() {
  static const MathLib lib = [] {
    const Fn64& f64 = detail::nv_table64();
    Fn32 f32 = detail::nv_table32();
    f32.sin_ = nv_fast_sinf;
    f32.cos_ = nv_fast_cosf;
    f32.tan_ = nv_fast_tanf;
    f32.exp_ = nv_fast_expf;
    f32.log_ = nv_fast_logf;
    f32.pow_ = nv_fast_powf;
    return MathLib("nv-fastmath-sim", SymbolStyle::NvFast, f64, f32);
  }();
  return lib;
}

namespace detail {
const Fn32& amd_native_table32() {
  static const Fn32 table = [] {
    Fn32 f32 = amd_table32();
    f32.sin_ = amd_native_sinf;
    f32.cos_ = amd_native_cosf;
    f32.tan_ = amd_native_tanf;
    f32.exp_ = amd_native_expf;
    f32.log_ = amd_native_logf;
    return f32;
  }();
  return table;
}
}  // namespace detail

const MathLib& amd_ocml_native() {
  static const MathLib lib(
      "amd-ocml-native-sim", SymbolStyle::AmdOcmlNative,
      detail::amd_table64(), detail::amd_native_table32());
  return lib;
}

}  // namespace gpudiff::vmath
