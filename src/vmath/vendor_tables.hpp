#pragma once
// Internal: base vendor dispatch tables, exposed so the fast-math and
// CUDA-compat bindings can copy a vendor table and override a few entries
// (exactly how the real toolchains relink selected symbols).

#include "vmath/mathlib.hpp"

namespace gpudiff::vmath::detail {

const Fn64& nv_table64();
const Fn32& nv_table32();
const Fn64& amd_table64();
const Fn32& amd_table32();
/// amd_table32 with the native_* fast-math overrides applied.
const Fn32& amd_native_table32();

}  // namespace gpudiff::vmath::detail
