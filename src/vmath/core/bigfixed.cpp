#include "vmath/core/bigfixed.hpp"

#include <stdexcept>

namespace gpudiff::vmath::core {

void BigFixed::set_quotient(const BigFixed& a, std::uint32_t d) {
  if (d == 0) throw std::invalid_argument("BigFixed: divide by zero");
  if (frac_.size() != a.frac_.size())
    throw std::invalid_argument("BigFixed: limb mismatch");
  std::uint64_t rem = a.int_part;
  int_part = static_cast<std::uint32_t>(rem / d);
  rem %= d;
  for (std::size_t i = 0; i < frac_.size(); ++i) {
    const std::uint64_t cur = (rem << 32) | a.frac_[i];
    frac_[i] = static_cast<std::uint32_t>(cur / d);
    rem = cur % d;
  }
}

void BigFixed::add(const BigFixed& a) {
  std::uint64_t carry = 0;
  for (std::size_t i = frac_.size(); i-- > 0;) {
    const std::uint64_t s = static_cast<std::uint64_t>(frac_[i]) + a.frac_[i] + carry;
    frac_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  int_part += a.int_part + static_cast<std::uint32_t>(carry);
}

void BigFixed::sub(const BigFixed& a) {
  std::int64_t borrow = 0;
  for (std::size_t i = frac_.size(); i-- > 0;) {
    std::int64_t s = static_cast<std::int64_t>(frac_[i]) - a.frac_[i] - borrow;
    borrow = 0;
    if (s < 0) {
      s += (std::int64_t{1} << 32);
      borrow = 1;
    }
    frac_[i] = static_cast<std::uint32_t>(s);
  }
  int_part = int_part - a.int_part - static_cast<std::uint32_t>(borrow);
}

void BigFixed::mul_small(std::uint32_t m) {
  std::uint64_t carry = 0;
  for (std::size_t i = frac_.size(); i-- > 0;) {
    const std::uint64_t p = static_cast<std::uint64_t>(frac_[i]) * m + carry;
    frac_[i] = static_cast<std::uint32_t>(p);
    carry = p >> 32;
  }
  int_part = static_cast<std::uint32_t>(static_cast<std::uint64_t>(int_part) * m + carry);
}

bool BigFixed::is_zero() const noexcept {
  if (int_part != 0) return false;
  for (auto l : frac_)
    if (l != 0) return false;
  return true;
}

int BigFixed::compare(const BigFixed& a) const noexcept {
  if (int_part != a.int_part) return int_part < a.int_part ? -1 : 1;
  for (std::size_t i = 0; i < frac_.size(); ++i)
    if (frac_[i] != a.frac_[i]) return frac_[i] < a.frac_[i] ? -1 : 1;
  return 0;
}

std::uint64_t BigFixed::extract_bits(std::size_t pos, unsigned count) const noexcept {
  std::uint64_t out = 0;
  for (unsigned b = 0; b < count; ++b) {
    const std::size_t bit = pos + b;           // fraction bit index
    const std::size_t limb_idx = bit / 32;
    const unsigned within = static_cast<unsigned>(bit % 32);
    std::uint32_t limb_value = limb_idx < frac_.size() ? frac_[limb_idx] : 0;
    const std::uint32_t bit_value = (limb_value >> (31 - within)) & 1u;
    out = (out << 1) | bit_value;
  }
  return out;
}

BigFixed big_atan_inv(std::uint32_t x, std::size_t limbs) {
  // atan(1/x) = sum_{k>=0} (-1)^k / ((2k+1) * x^(2k+1)).
  BigFixed sum(limbs);
  BigFixed power(limbs);  // 1 / x^(2k+1)
  BigFixed one(limbs);
  one.int_part = 1;
  power.set_quotient(one, x);
  const std::uint32_t xsq = x * x;
  BigFixed term(limbs);
  for (std::uint32_t k = 0;; ++k) {
    term.set_quotient(power, 2 * k + 1);
    if (term.is_zero()) break;
    if (k % 2 == 0) sum.add(term);
    else sum.sub(term);
    BigFixed next(limbs);
    next.set_quotient(power, xsq);
    power = next;
    if (power.is_zero()) break;
  }
  return sum;
}

BigFixed big_pi(std::size_t limbs) {
  // Machin: pi = 16*atan(1/5) - 4*atan(1/239).
  BigFixed a = big_atan_inv(5, limbs);
  a.mul_small(16);
  BigFixed b = big_atan_inv(239, limbs);
  b.mul_small(4);
  a.sub(b);
  return a;
}

void BigFixed::set_fraction_bit(std::size_t pos) noexcept {
  const std::size_t limb_idx = pos / 32;
  if (limb_idx >= frac_.size()) return;
  const unsigned within = static_cast<unsigned>(pos % 32);
  frac_[limb_idx] |= (1u << (31 - within));
}

BigFixed big_two_over_pi(std::size_t limbs) {
  // Long division: 2 / pi, bit by bit.  pi in [3,4), so 2/pi in (0.5, 1).
  const BigFixed pi = big_pi(limbs);
  BigFixed quotient(limbs);
  // Remainder r starts at 2; repeatedly r *= 2 and subtract pi when possible.
  BigFixed r(limbs);
  r.int_part = 2;
  const std::size_t total_bits = limbs * 32;
  for (std::size_t bit = 0; bit < total_bits; ++bit) {
    r.mul_small(2);
    if (r.compare(pi) >= 0) {
      r.sub(pi);
      quotient.set_fraction_bit(bit);
    }
  }
  return quotient;
}

}  // namespace gpudiff::vmath::core
