#pragma once
// Double-double ("dd") building blocks: error-free transformations used by
// the accurate math-library paths (Dekker/Knuth/Møller algorithms).
//
// All arithmetic here relies on IEEE round-to-nearest; client builds compile
// the library with -ffp-contract=off so a*b+c never contracts implicitly —
// fused operations are always explicit std::fma calls.

#include <cmath>

namespace gpudiff::vmath::core {

struct DD {
  double hi = 0.0;
  double lo = 0.0;
};

/// Error-free sum when |a| >= |b| (Dekker's fast two-sum).
inline DD quick_two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double e = b - (s - a);
  return {s, e};
}

/// Error-free sum, no magnitude precondition (Knuth/Møller two-sum).
inline DD two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double v = s - a;
  const double e = (a - (s - v)) + (b - v);
  return {s, e};
}

/// Error-free product using hardware FMA.
inline DD two_prod(double a, double b) noexcept {
  const double p = a * b;
  const double e = std::fma(a, b, -p);
  return {p, e};
}

/// dd + double, normalized.
inline DD dd_add(DD a, double b) noexcept {
  DD s = two_sum(a.hi, b);
  s.lo += a.lo;
  return quick_two_sum(s.hi, s.lo);
}

/// dd + dd, normalized (accurate variant).
inline DD dd_add(DD a, DD b) noexcept {
  DD s = two_sum(a.hi, b.hi);
  DD t = two_sum(a.lo, b.lo);
  s.lo += t.hi;
  s = quick_two_sum(s.hi, s.lo);
  s.lo += t.lo;
  return quick_two_sum(s.hi, s.lo);
}

/// dd * double, normalized.
inline DD dd_mul(DD a, double b) noexcept {
  DD p = two_prod(a.hi, b);
  p.lo = std::fma(a.lo, b, p.lo);
  return quick_two_sum(p.hi, p.lo);
}

/// dd * dd, normalized.
inline DD dd_mul(DD a, DD b) noexcept {
  DD p = two_prod(a.hi, b.hi);
  p.lo += a.hi * b.lo + a.lo * b.hi;
  return quick_two_sum(p.hi, p.lo);
}

/// double / double to dd accuracy.
inline DD dd_div(double a, double b) noexcept {
  const double q1 = a / b;
  const double r = std::fma(-q1, b, a);
  const double q2 = r / b;
  return quick_two_sum(q1, q2);
}

inline double dd_to_double(DD a) noexcept { return a.hi + a.lo; }

}  // namespace gpudiff::vmath::core
