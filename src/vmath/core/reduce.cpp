#include "vmath/core/reduce.hpp"

#include <cmath>
#include <mutex>
#include <vector>

#include "fp/bits.hpp"
#include "vmath/core/bigfixed.hpp"
#include "vmath/core/dd.hpp"

namespace gpudiff::vmath::core {

namespace {

constexpr std::size_t kLimbs = 44;  // 1408 fraction bits of 2/pi

/// Everything derived from the high-precision constants, computed once.
struct ReductionConstants {
  std::vector<std::uint64_t> two_over_pi_words;  // 64-bit packed fraction
  // pi/2 split into exact 33-significant-bit pieces (fdlibm layout) plus
  // rounded tails; piece k satisfies: n * piece is exact for n < 2^20.
  double pio2_1 = 0, pio2_1t = 0;
  double pio2_2 = 0, pio2_2t = 0;
  double pio2_3 = 0, pio2_3t = 0;
  double inv_pio2 = 0;    // 2/pi rounded to double
  DD pio2;                // pi/2 as dd
};

/// Value of fraction bits [start, start+count) of v as an exact double
/// (count <= 53 so the integer fits a double mantissa).
double frac_window(const BigFixed& v, std::size_t start, unsigned count) {
  const std::uint64_t w = v.extract_bits(start, count);
  return std::ldexp(static_cast<double>(w), -static_cast<int>(start + count));
}

/// Find the first set fraction bit at index >= start (assumes one exists).
std::size_t first_set_bit(const BigFixed& v, std::size_t start) {
  std::size_t pos = start;
  while (v.extract_bits(pos, 1) == 0) ++pos;
  return pos;
}

/// Remaining tail of pi/2's fraction from bit `start` on, rounded to double.
double frac_tail(const BigFixed& v, std::size_t start) {
  const std::size_t s = first_set_bit(v, start);
  const double hi = frac_window(v, s, 53);
  const double lo = frac_window(v, s + 53, 53);
  return hi + lo;  // one rounding; tail beyond 106 bits is negligible here
}

const ReductionConstants& constants() {
  static const ReductionConstants c = [] {
    ReductionConstants rc;
    const BigFixed two_over_pi = big_two_over_pi(kLimbs);
    rc.two_over_pi_words.reserve(kLimbs / 2);
    for (std::size_t w = 0; w + 1 < kLimbs; w += 2)
      rc.two_over_pi_words.push_back(two_over_pi.extract_bits(w * 32, 64));

    // pi/2 = 1.f0 f1 f2 ... (int part 1).  Build the 33-bit pieces.
    BigFixed pio2(kLimbs);
    pio2.set_quotient(big_pi(kLimbs), 2);
    // Piece 1: 1 + first 32 fraction bits (33 significant bits, exact).
    rc.pio2_1 = 1.0 + frac_window(pio2, 0, 32);
    rc.pio2_1t = frac_tail(pio2, 32);
    // Piece 2: 33 significant bits of the tail starting at its leading 1.
    std::size_t s2 = first_set_bit(pio2, 32);
    rc.pio2_2 = frac_window(pio2, s2, 33);
    rc.pio2_2t = frac_tail(pio2, s2 + 33);
    std::size_t s3 = first_set_bit(pio2, s2 + 33);
    rc.pio2_3 = frac_window(pio2, s3, 33);
    rc.pio2_3t = frac_tail(pio2, s3 + 33);

    // pi/2 as dd.
    const double p_hi = 1.0 + frac_window(pio2, 0, 52);  // 53 sig bits, exact
    const double p_lo = frac_tail(pio2, 52);
    const DD p = quick_two_sum(p_hi, p_lo);
    rc.pio2 = p;

    // 2/pi rounded to double: 0.101... -> take top 54 bits & round via dd add.
    const BigFixed& t = two_over_pi;
    const std::size_t lead = first_set_bit(t, 0);  // bit 0 (2/pi > 1/2)
    const double i_hi = frac_window(t, lead, 53);
    const double i_lo = frac_window(t, lead + 53, 53);
    rc.inv_pio2 = i_hi + i_lo;
    return rc;
  }();
  return c;
}

/// Round-to-nearest-integer for |v| < 2^51 without touching the FP env.
double nearest_int(double v) {
  const double magic = 6755399441055744.0;  // 1.5 * 2^52
  return (v + magic) - magic;
}

// ---------------------------------------------------------------------------
// Medium range: Cody-Waite with 2 or 3 pieces.
// ---------------------------------------------------------------------------

Reduced cody_waite(double x, ReduceStyle style) {
  const ReductionConstants& c = constants();
  const double fn = nearest_int(x * c.inv_pio2);
  const int n = static_cast<int>(fn);

  double z = x - fn * c.pio2_1;  // exact: fn*pio2_1 representable, Sterbenz-ish
  double w = fn * c.pio2_1t;
  double r = z - w;
  double lo = (z - r) - w;

  if (style == ReduceStyle::CodyWaite3) {
    // Detect cancellation: if r lost more than ~17 bits vs x, refine.
    const int exp_x = fp::raw_exponent(x);
    int exp_r = fp::raw_exponent(r);
    if (exp_x - exp_r > 16) {
      const double z1 = z;
      z = z1 - fn * c.pio2_2;
      w = fn * c.pio2_2t - ((z1 - z) - fn * c.pio2_2);
      r = z - w;
      lo = (z - r) - w;
      exp_r = fp::raw_exponent(r);
      if (exp_x - exp_r > 49) {
        const double z2 = z;
        z = z2 - fn * c.pio2_3;
        w = fn * c.pio2_3t - ((z2 - z) - fn * c.pio2_3);
        r = z - w;
        lo = (z - r) - w;
      }
    }
  }
  return {r, lo, n & 3};
}

// ---------------------------------------------------------------------------
// Payne-Hanek: exact reduction via the computed bits of 2/pi.
// ---------------------------------------------------------------------------

/// Read 64 bits of the 2/pi fraction starting at bit offset `pos`.
std::uint64_t read_bits64(const std::vector<std::uint64_t>& words, std::size_t pos) {
  const std::size_t w = pos / 64;
  const unsigned sh = static_cast<unsigned>(pos % 64);
  const std::uint64_t hi = w < words.size() ? words[w] : 0;
  if (sh == 0) return hi;
  const std::uint64_t lo = (w + 1) < words.size() ? words[w + 1] : 0;
  return (hi << sh) | (lo >> (64 - sh));
}

/// 256-bit little-endian accumulator (q[0] = least significant word).
struct U256 {
  std::uint64_t q[4] = {0, 0, 0, 0};

  void add_shifted(__uint128_t value, int word_shift) {
    // Add value * 2^(64*word_shift).
    std::uint64_t lo = static_cast<std::uint64_t>(value);
    std::uint64_t hi = static_cast<std::uint64_t>(value >> 64);
    unsigned carry = 0;
    for (int i = word_shift; i < 4; ++i) {
      std::uint64_t add;
      if (i == word_shift) add = lo;
      else if (i == word_shift + 1) add = hi;
      else add = 0;
      const __uint128_t s = static_cast<__uint128_t>(q[i]) + add + carry;
      q[i] = static_cast<std::uint64_t>(s);
      carry = static_cast<unsigned>(s >> 64);
    }
  }

  /// Bits [hi_bit .. hi_bit-count+1] as an integer (count <= 53).
  std::uint64_t extract(int hi_bit, int count) const {
    const int lo_bit = hi_bit - count + 1;
    std::uint64_t out = 0;
    // Gather from words; lo_bit may be negative (treat below-range as 0).
    for (int b = hi_bit; b >= lo_bit; --b) {
      out <<= 1;
      if (b >= 0 && b < 256) {
        const int wi = b / 64;
        const int bi = b % 64;
        out |= (q[wi] >> bi) & 1u;
      }
    }
    return out;
  }
};

Reduced payne_hanek(double ax) {
  const ReductionConstants& c = constants();
  using Tr = fp::FloatTraits<double>;
  const auto bits = fp::to_bits(ax);
  const std::uint64_t mant = (bits & Tr::mantissa_mask) | (Tr::mantissa_mask + 1);
  const int e0 = fp::unbiased_exponent(ax) - 52;  // ax = mant * 2^e0
  // Bits of 2/pi with weight >= 2^3 in (2/pi)*2^e0 contribute multiples of 8
  // to mant * (2/pi) * 2^e0; drop them.  (PH is only used for large ax, so
  // e0 - 3 >= 0 always holds here.)
  const std::size_t start = static_cast<std::size_t>(e0 > 3 ? e0 - 3 : 0);
  const int sh = e0 - static_cast<int>(start);  // in [0, 3]

  const std::uint64_t f1 = read_bits64(c.two_over_pi_words, start);
  const std::uint64_t f2 = read_bits64(c.two_over_pi_words, start + 64);
  const std::uint64_t f3 = read_bits64(c.two_over_pi_words, start + 128);

  // Q = mant * (f1*2^128 + f2*2^64 + f3); then x*(2/pi) == Q * 2^(sh-192)
  // modulo multiples of 8.
  U256 Q;
  Q.add_shifted(static_cast<__uint128_t>(mant) * f3, 0);
  Q.add_shifted(static_cast<__uint128_t>(mant) * f2, 1);
  Q.add_shifted(static_cast<__uint128_t>(mant) * f1, 2);

  const int point = 192 - sh;  // binary point position: fraction = bits below
  int n = static_cast<int>(Q.extract(point + 2, 3));  // integer part mod 8

  // Fraction as three exact 53-bit chunks.
  const double c1 = std::ldexp(static_cast<double>(Q.extract(point - 1, 53)), -53);
  const double c2 = std::ldexp(static_cast<double>(Q.extract(point - 54, 53)), -106);
  const double c3 = std::ldexp(static_cast<double>(Q.extract(point - 107, 53)), -159);
  DD frac = dd_add(dd_add(DD{c1, 0.0}, DD{c2, 0.0}), c3);

  // Round to nearest multiple of pi/2: if frac >= 1/2, go to the next n.
  if (frac.hi >= 0.5) {
    n = (n + 1) & 7;
    frac = dd_add(frac, -1.0);
  }
  const DD r = dd_mul(c.pio2, frac);
  return {r.hi, r.lo, n & 3};
}

}  // namespace

Reduced rem_pio2(double x, ReduceStyle style) {
  const double ax = fp::abs_bits(x);
  // Medium range: |x| < 2^20 * pi/2 (fdlibm's bound for Cody-Waite).
  Reduced red;
  if (ax < 1647099.0) {
    red = cody_waite(ax, style);
  } else {
    red = payne_hanek(ax);
  }
  if (fp::sign_bit(x)) {
    // sin/cos symmetry: reduce |x|, then negate the remainder and quadrant.
    red.hi = -red.hi;
    red.lo = -red.lo;
    red.quadrant = (4 - red.quadrant) & 3;
  }
  return red;
}

void pio2_dd(double* hi, double* lo) {
  const DD p = [] {
    const auto& c = constants();
    return c.pio2;
  }();
  *hi = p.hi;
  *lo = p.lo;
}

std::uint64_t two_over_pi_word(std::size_t n) {
  const auto& words = constants().two_over_pi_words;
  return n < words.size() ? words[n] : 0;
}

}  // namespace gpudiff::vmath::core
