#pragma once
// Polynomial evaluation helpers for math-library kernels.

#include <cstddef>

namespace gpudiff::vmath::core {

/// Horner evaluation: c[0] + x*(c[1] + x*(... c[n-1])).
template <typename T, std::size_t N>
constexpr T horner(T x, const T (&c)[N]) noexcept {
  T r = c[N - 1];
  for (std::size_t i = N - 1; i-- > 0;) r = r * x + c[i];
  return r;
}

/// Horner with highest-degree coefficient first: c[0]*x^(n-1) + ... + c[n-1].
template <typename T, std::size_t N>
constexpr T horner_desc(T x, const T (&c)[N]) noexcept {
  T r = c[0];
  for (std::size_t i = 1; i < N; ++i) r = r * x + c[i];
  return r;
}

}  // namespace gpudiff::vmath::core
