#pragma once
// Trigonometric argument reduction: x = n*(pi/2) + r, returning n mod 4 and
// r as an unevaluated double-double (hi + lo).
//
// Two medium-range styles model the vendor difference exploited in the
// campaigns (both fall back to the same exact Payne-Hanek reduction for
// |x| >= 2^20 * pi/2, so huge arguments agree bit-for-bit):
//
//  * CodyWaite2 ("NV-sim"): two-constant reduction. Accurate to ~2^-70
//    absolute, which is NOT enough when x lies very close to a multiple of
//    pi/2 — deep cancellation exposes the missing tail of pi/2.
//  * CodyWaite3 ("AMD-sim"): detects cancellation and reruns with a second
//    and third 33-bit piece of pi/2 (fdlibm-style), staying accurate.
//
// The 1408 bits of 2/pi used by Payne-Hanek are *computed at first use*
// with Machin's formula in fixed-point integer arithmetic (bigfixed.hpp) —
// no embedded magic tables.

#include <cstdint>

namespace gpudiff::vmath::core {

enum class ReduceStyle { CodyWaite2, CodyWaite3 };

struct Reduced {
  double hi = 0.0;
  double lo = 0.0;
  int quadrant = 0;  // n mod 4
};

/// Reduce finite |x| > pi/4.  (Callers handle smaller args, inf and NaN.)
Reduced rem_pio2(double x, ReduceStyle style);

/// pi/2 as a double-double (hi is the correctly rounded double).
void pio2_dd(double* hi, double* lo);

/// Exposed for tests: the n-th 64-bit word of the fraction of 2/pi
/// (word 0 holds the most significant bits).
std::uint64_t two_over_pi_word(std::size_t n);

}  // namespace gpudiff::vmath::core
