#pragma once
// Arbitrary-precision fixed-point arithmetic, just big enough to derive the
// high-precision constants the math libraries need (bits of 2/pi for
// Payne-Hanek reduction, split pi/2 constants for Cody-Waite reduction).
//
// Rather than embedding a long table of magic bits copied from elsewhere,
// we *compute* pi at startup with Machin's formula
//     pi = 16*atan(1/5) - 4*atan(1/239)
// in ~1500-bit fixed point, then long-divide to obtain 2/pi.  The derivation
// is verified by unit tests against known prefixes of pi.

#include <cstdint>
#include <vector>

namespace gpudiff::vmath::core {

/// Unsigned fixed-point number in [0, 2^32) with `limbs` 32-bit fraction
/// limbs: value = int_part + sum(frac[i] * 2^(-32*(i+1))).
class BigFixed {
 public:
  explicit BigFixed(std::size_t limbs) : frac_(limbs, 0) {}

  std::uint32_t int_part = 0;

  std::size_t limb_count() const noexcept { return frac_.size(); }
  std::uint32_t limb(std::size_t i) const noexcept { return frac_[i]; }

  /// this := a / d  (d small, nonzero).
  void set_quotient(const BigFixed& a, std::uint32_t d);
  /// this := this + a  (ignoring carry beyond the integer limb).
  void add(const BigFixed& a);
  /// this := this - a  (requires this >= a).
  void sub(const BigFixed& a);
  /// this := this * m  (m small; integer part may wrap — callers keep it small).
  void mul_small(std::uint32_t m);
  bool is_zero() const noexcept;

  /// Compare fraction+int: -1/0/+1.
  int compare(const BigFixed& a) const noexcept;

  /// Extract `count` bits of the fraction starting at fraction bit `pos`
  /// (bit 0 = weight 2^-1).  count <= 64.
  std::uint64_t extract_bits(std::size_t pos, unsigned count) const noexcept;

  /// Set fraction bit `pos` (weight 2^-(pos+1)) to 1.
  void set_fraction_bit(std::size_t pos) noexcept;

 private:
  std::vector<std::uint32_t> frac_;
};

/// atan(1/x) for small integer x, to `limbs` 32-bit limbs of precision.
BigFixed big_atan_inv(std::uint32_t x, std::size_t limbs);

/// pi to `limbs` limbs (Machin's formula).
BigFixed big_pi(std::size_t limbs);

/// 2/pi to `limbs` limbs (long division of 2 by pi).
BigFixed big_two_over_pi(std::size_t limbs);

}  // namespace gpudiff::vmath::core
