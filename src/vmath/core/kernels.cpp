#include "vmath/core/kernels.hpp"

#include "vmath/core/dd.hpp"
#include "vmath/core/poly.hpp"

namespace gpudiff::vmath::core {

namespace {

// ln(2) split (fdlibm): exact high part + tail.
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kInvLn2 = 1.44269504088896338700e+00;

constexpr double kHuge = 1.0e300;
constexpr double kTiny = 1.0e-300;

}  // namespace

double scale_by_pow2(double x, int k) noexcept {
  // Multiply by 2^k in at most two exact-or-singly-rounded steps so that a
  // subnormal result is rounded exactly once.
  if (k > 1023) {
    x *= 0x1p1023;
    k -= 1023;
    if (k > 1023) {
      x *= 0x1p1023;
      k -= 1023;
      if (k > 1023) return x * 0x1p1023;  // certainly inf by now
    }
    return x * std::ldexp(1.0, k);
  }
  if (k < -1022) {
    x *= 0x1p-969;  // keep headroom: one exact step, then the rounding step
    k += 969;
    if (k < -1022) {
      x *= 0x1p-969;
      k += 969;
      if (k < -1022) return x * 0x1p-1022;  // certainly zero by now
    }
    return x * std::ldexp(1.0, k);
  }
  return x * std::ldexp(1.0, k);
}

// ---------------------------------------------------------------------------
// exp (fdlibm e_exp structure)
// ---------------------------------------------------------------------------

double exp64(double x, PolyScheme scheme) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::sign_bit(x) ? 0.0 : x;
  constexpr double kOverflow = 7.09782712893383973096e+02;
  constexpr double kUnderflow = -7.45133219101941108420e+02;
  if (x > kOverflow) return kHuge * kHuge;  // +inf
  if (x < kUnderflow) return kTiny * kTiny;  // +0 (underflow)

  // Argument reduction x = k*ln2 + r.
  double hi = 0.0, lo = 0.0, r = x;
  int k = 0;
  const double ax = fp::abs_bits(x);
  if (ax > 0.5 * 6.93147180559945286227e-01) {
    if (ax < 1.5 * 6.93147180559945286227e-01) {
      k = fp::sign_bit(x) ? -1 : 1;
      hi = x - k * kLn2Hi;
      lo = k * kLn2Lo;
    } else {
      const double fk = static_cast<double>(static_cast<int>(
          kInvLn2 * x + (fp::sign_bit(x) ? -0.5 : 0.5)));
      k = static_cast<int>(fk);
      hi = x - fk * kLn2Hi;
      lo = fk * kLn2Lo;
    }
    r = hi - lo;
  } else if (ax < 0x1p-28) {
    return 1.0 + x;  // inexact
  }

  // Polynomial core on |r| <= 0.5*ln2.  Same coefficients either way; the
  // association differs (Horner vs Estrin), so the two schemes disagree in
  // the last ULP for a small fraction of arguments.
  constexpr double P1 = 1.66666666666666019037e-01;
  constexpr double P2 = -2.77777777770155933842e-03;
  constexpr double P3 = 6.61375632143793436117e-05;
  constexpr double P4 = -1.65339022054652515390e-06;
  constexpr double P5 = 4.13813679705723846039e-08;
  const double t = r * r;
  double c;
  if (scheme == PolyScheme::Horner) {
    c = r - t * (P1 + t * (P2 + t * (P3 + t * (P4 + t * P5))));
  } else {
    // Identical polynomial, Estrin-style association:
    //   t*P1 + t^2*P2 + t^3*(P3 + t*P4 + t^2*P5)
    const double t2 = t * t;
    const double t3 = t * t2;
    c = r - (t * (P1 + t * P2) + t3 * (P3 + t * P4 + t2 * P5));
  }
  double y;
  if (k == 0) return 1.0 - ((r * c) / (c - 2.0) - r);
  y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
  return scale_by_pow2(y, k);
}

// ---------------------------------------------------------------------------
// log (fdlibm e_log structure)
// ---------------------------------------------------------------------------

double log64(double x, PolyScheme scheme) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_zero_bits(x)) return -kHuge * kHuge;  // -inf, div-by-zero
  if (fp::sign_bit(x)) return fp::quiet_nan<double>();  // invalid
  if (fp::is_inf_bits(x)) return x;

  int k = 0;
  if (fp::is_subnormal_bits(x)) {
    x *= 0x1p54;
    k -= 54;
  }
  const auto bits = fp::to_bits(x);
  const int e = static_cast<int>(bits >> 52) - 1023;
  const std::uint64_t mant = bits & fp::FloatTraits<double>::mantissa_mask;
  // Normalize the significand 1.m into [sqrt(2)/2, sqrt(2)): when
  // 1.m >= sqrt(2) (mantissa field of sqrt(2) is 0x6A09E667F3BCD), halve it
  // and carry the factor of two into k.
  std::uint64_t mbits;
  if (mant >= 0x6A09E667F3BCDULL) {
    k += e + 1;
    mbits = (static_cast<std::uint64_t>(1022) << 52) | mant;  // 1.m / 2
  } else {
    k += e;
    mbits = (static_cast<std::uint64_t>(1023) << 52) | mant;  // 1.m
  }
  const double m = fp::from_bits<double>(mbits);  // in [sqrt2/2, sqrt2)
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  constexpr double Lg1 = 6.666666666666735130e-01;
  constexpr double Lg2 = 3.999999999940941908e-01;
  constexpr double Lg3 = 2.857142874366239149e-01;
  constexpr double Lg4 = 2.222219843214978396e-01;
  constexpr double Lg5 = 1.818357216161805012e-01;
  constexpr double Lg6 = 1.531383769920937332e-01;
  constexpr double Lg7 = 1.479819860511658591e-01;
  double R;
  if (scheme == PolyScheme::Horner) {
    R = z * (Lg1 + z * (Lg2 + z * (Lg3 + z * (Lg4 + z * (Lg5 + z * (Lg6 + z * Lg7))))));
  } else {
    const double t1 = w * (Lg2 + w * (Lg4 + w * Lg6));
    const double t2 = z * (Lg1 + w * (Lg3 + w * (Lg5 + w * Lg7)));
    R = t1 + t2;
  }
  const double hfsq = 0.5 * f * f;
  const double dk = static_cast<double>(k);
  if (k == 0) return f - (hfsq - s * (hfsq + R));
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + R) + dk * kLn2Lo)) - f);
}

// ---------------------------------------------------------------------------
// tanh via exp
// ---------------------------------------------------------------------------

namespace {

/// expm1 on |u| <= 0.7 by Taylor series (degree 16: error < 2^-57 at the
/// interval edge) — avoids the catastrophic cancellation of exp(u) - 1.
double expm1_small(double u) noexcept {
  static constexpr double kInvFact[16] = {
      1.0,                      // 1/1!
      1.0 / 2,                  // 1/2!
      1.0 / 6,                  1.0 / 24,
      1.0 / 120,                1.0 / 720,
      1.0 / 5040,               1.0 / 40320,
      1.0 / 362880,             1.0 / 3628800,
      1.0 / 39916800,           1.0 / 479001600,
      1.0 / 6227020800.0,       1.0 / 87178291200.0,
      1.0 / 1307674368000.0,    1.0 / 20922789888000.0,
  };
  double acc = kInvFact[15];
  for (int k = 14; k >= 0; --k) acc = acc * u + kInvFact[k];
  return u * acc;
}

}  // namespace

double tanh64(double x, PolyScheme scheme) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax > 22.0) {
    // |tanh| == 1 to double precision.
    const double one = fp::is_inf_bits(x) ? 1.0 : 1.0 - kTiny;  // inexact
    return fp::copysign_bits(one, x);
  }
  if (ax < 0x1p-28) return x;
  double r;
  if (ax <= 0.35) {
    // tanh(x) = expm1(2x) / (2 + expm1(2x)): cancellation-free small path.
    const double e = expm1_small(2.0 * ax);
    r = e / (2.0 + e);
  } else {
    // tanh(x) = (e^{2|x|} - 1) / (e^{2|x|} + 1), sign restored at the end.
    const double t = exp64(2.0 * ax, scheme);
    r = (t - 1.0) / (t + 1.0);
  }
  return fp::copysign_bits(r, x);
}

// ---------------------------------------------------------------------------
// atan (4-interval reduction, odd polynomial core)
// ---------------------------------------------------------------------------

namespace {

// atan(0.5), atan(1), atan(1.5), atan(inf) as hi+lo pairs, derived from
// pi/2: computed lazily from the same high-precision source as reduce.cpp
// for atan(inf)=pi/2 and atan(1)=pi/4; the half/1.5 anchors use dd division
// identities evaluated once with Newton-refined long double free math.
struct AtanAnchors {
  double hi[4];
  double lo[4];
};

// Compute atan anchors via the arctan addition law from pi/4:
//   atan(1)   = pi/4 exactly (dd),
//   atan(0.5) = pi/4 - atan(1/3)   [atan(a)-atan(b) = atan((a-b)/(1+ab))]
//   atan(1.5) = pi/4 + atan(0.2)
// The small arguments 1/3 and 0.2 are evaluated with the polynomial core
// itself (they are deep inside its convergence region), keeping the anchors
// self-consistent with the evaluation scheme to ~2^-70.
double atan_small_poly(double z_hi, double z_lo);

const AtanAnchors& atan_anchors() {
  static const AtanAnchors a = [] {
    AtanAnchors an{};
    double p_hi, p_lo;
    pio2_dd(&p_hi, &p_lo);
    // atan(inf) = pi/2
    an.hi[3] = p_hi;
    an.lo[3] = p_lo;
    // atan(1) = pi/4
    const DD pio4 = {p_hi * 0.5, p_lo * 0.5};  // exact scaling
    an.hi[1] = pio4.hi;
    an.lo[1] = pio4.lo;
    // atan(1/3) and atan(1/5): dd argument, polynomial evaluation.
    const DD third = dd_div(1.0, 3.0);
    const double at_third = atan_small_poly(third.hi, third.lo);
    DD a05 = dd_add(pio4, -at_third);
    an.hi[0] = a05.hi;
    an.lo[0] = a05.lo;
    const DD fifth = dd_div(1.0, 5.0);
    const double at_fifth = atan_small_poly(fifth.hi, fifth.lo);
    DD a15 = dd_add(pio4, at_fifth);
    an.hi[2] = a15.hi;
    an.lo[2] = a15.lo;
    return an;
  }();
  return a;
}

// Odd minimax-style polynomial for atan on |z| <= ~0.46 (z = reduced arg).
// Coefficients are the classic fdlibm aT[] set.
constexpr double kAtanCoef[11] = {
    3.33333333333329318027e-01,  -1.99999999998764832476e-01,
    1.42857142725034663711e-01,  -1.11111104054623557880e-01,
    9.09088713343650656196e-02,  -7.69187620504482999495e-02,
    6.66107313738753120669e-02,  -5.83357013379057348645e-02,
    4.97687799461593236017e-02,  -3.65315727442169155270e-02,
    1.62858201153657823623e-02,
};

double atan_core(double z) {
  // atan(z) = z - z^3*(aT0 + z^2*aT1 + ...) with odd/even interleave.
  const double w = z * z;
  const double v = w * w;
  const double s1 = w * (kAtanCoef[0] + v * (kAtanCoef[2] + v * (kAtanCoef[4] +
                    v * (kAtanCoef[6] + v * (kAtanCoef[8] + v * kAtanCoef[10])))));
  const double s2 = v * (kAtanCoef[1] + v * (kAtanCoef[3] + v * (kAtanCoef[5] +
                    v * (kAtanCoef[7] + v * kAtanCoef[9]))));
  return z - z * (s1 + s2);
}

double atan_small_poly(double z_hi, double z_lo) {
  // atan(z_hi + z_lo) ~= atan(z_hi) + z_lo/(1+z_hi^2)
  return atan_core(z_hi) + z_lo / (1.0 + z_hi * z_hi);
}

}  // namespace

double atan64(double x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const AtanAnchors& an = atan_anchors();
  const double ax = fp::abs_bits(x);
  if (fp::is_inf_bits(x)) return fp::copysign_bits(an.hi[3] + an.lo[3], x);
  if (ax < 0x1p-27) return x;  // atan(x) ~ x
  double result;
  if (ax < 0.4375) {  // 7/16: no reduction
    result = atan_core(ax);
  } else {
    int id;
    double z;
    if (ax < 0.6875) {            // [7/16, 11/16): anchor 0.5
      id = 0;
      z = (2.0 * ax - 1.0) / (2.0 + ax);
    } else if (ax < 1.1875) {     // [11/16, 19/16): anchor 1.0
      id = 1;
      z = (ax - 1.0) / (ax + 1.0);
    } else if (ax < 2.4375) {     // [19/16, 39/16): anchor 1.5
      id = 2;
      z = (ax - 1.5) / (1.0 + 1.5 * ax);
    } else {                      // [39/16, inf): anchor pi/2
      id = 3;
      z = -1.0 / ax;
    }
    const double p = atan_core(z);
    result = an.hi[id] + (p + an.lo[id]);
  }
  return fp::copysign_bits(result, x);
}

// ---------------------------------------------------------------------------
// asin / acos via atan identities (shared; moderate accuracy is fine because
// both vendor libraries bind the same implementation).
// ---------------------------------------------------------------------------

double asin64(double x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax > 1.0) return fp::quiet_nan<double>();  // invalid
  if (ax == 1.0) {
    double p_hi, p_lo;
    pio2_dd(&p_hi, &p_lo);
    return fp::copysign_bits(p_hi, x);
  }
  if (ax < 0x1p-27) return x;
  if (ax <= 0.5) {
    return atan64(x / std::sqrt(std::fma(-x, x, 1.0)));
  }
  // asin(x) = pi/2 - 2*asin(sqrt((1-|x|)/2)), reduces to the small branch.
  const double t = std::sqrt((1.0 - ax) * 0.5);
  const double inner = atan64(t / std::sqrt(std::fma(-t, t, 1.0)));
  double p_hi, p_lo;
  pio2_dd(&p_hi, &p_lo);
  const double r = p_hi - (2.0 * inner - p_lo);
  return fp::copysign_bits(r, x);
}

double acos64(double x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax > 1.0) return fp::quiet_nan<double>();  // invalid
  double p_hi, p_lo;
  pio2_dd(&p_hi, &p_lo);
  if (x == 1.0) return 0.0;
  if (x == -1.0) return 2.0 * p_hi;
  if (ax <= 0.5) {
    const double a = asin64(x);
    return p_hi - (a - p_lo);
  }
  // acos(x) = 2*asin(sqrt((1-x)/2)) for x > 0.5;
  // acos(x) = pi - 2*asin(sqrt((1+x)/2)) for x < -0.5.
  if (x > 0.5) {
    const double t = std::sqrt((1.0 - x) * 0.5);
    return 2.0 * asin64(t);
  }
  const double t = std::sqrt((1.0 + x) * 0.5);
  return 2.0 * (p_hi - (asin64(t) - p_lo));
}

// ---------------------------------------------------------------------------
// pow via exp2/log2-style composition on top of log64/exp64 with a dd
// correction step.  Both vendors share it (IEEE special cases included).
// ---------------------------------------------------------------------------

namespace {

bool is_odd_integer(double y) {
  if (fp::abs_bits(y) >= 0x1p53) return false;  // large doubles are even ints
  const double t = trunc_exact(y);
  if (t != y) return false;
  const double half = t * 0.5;
  return trunc_exact(half) != half;
}

bool is_integer_value(double y) {
  return fp::abs_bits(y) >= 0x1p52 || trunc_exact(y) == y;
}

}  // namespace

double pow64(double x, double y, PolyScheme scheme) noexcept {
  // IEEE 754 / C99 special-case ladder.
  if (y == 0.0) return 1.0;
  if (x == 1.0) return 1.0;
  if (fp::is_nan_bits(x) || fp::is_nan_bits(y)) {
    return fp::quiet_nan<double>();
  }
  const double ax = fp::abs_bits(x);
  if (fp::is_inf_bits(y)) {
    if (ax == 1.0) return 1.0;
    const bool to_zero = (ax < 1.0) != fp::sign_bit(y);
    return to_zero ? 0.0 : fp::infinity<double>();
  }
  if (fp::is_zero_bits(x)) {
    const bool odd = is_odd_integer(y);
    if (fp::sign_bit(y)) {
      const double inf = fp::infinity<double>();
      return odd ? fp::copysign_bits(inf, x) : inf;  // div-by-zero
    }
    return odd ? fp::copysign_bits(0.0, x) : 0.0;
  }
  if (fp::is_inf_bits(x)) {
    const bool odd = is_odd_integer(y);
    if (!fp::sign_bit(x)) return fp::sign_bit(y) ? 0.0 : fp::infinity<double>();
    if (fp::sign_bit(y)) return odd ? -0.0 : 0.0;
    return odd ? -fp::infinity<double>() : fp::infinity<double>();
  }
  double sign = 1.0;
  if (fp::sign_bit(x)) {
    if (!is_integer_value(y)) return fp::quiet_nan<double>();  // invalid
    if (is_odd_integer(y)) sign = -1.0;
  }
  // Small-integer exponents: exact binary exponentiation (both real vendor
  // libraries special-case these; pow(-2, 3) must be exactly -8).
  if (is_integer_value(y) && fp::abs_bits(y) <= 64.0) {
    const double base = fp::abs_bits(x);
    long long n = static_cast<long long>(y);
    const bool invert = n < 0;
    if (invert) n = -n;
    double acc = 1.0;
    double sq = base;
    while (n > 0) {
      if (n & 1) acc *= sq;
      n >>= 1;
      if (n) sq *= sq;
    }
    return sign * (invert ? 1.0 / acc : acc);
  }
  // |x|^y = exp(y * log|x|), with the product carried in dd to recover the
  // bits that a bare double product would lose for large y.
  const double lg = log64(ax, scheme);
  const DD prod = two_prod(lg, y);
  constexpr double kOverflow = 7.09782712893383973096e+02;
  if (prod.hi > kOverflow + 1.0) return sign * kHuge * kHuge;
  if (prod.hi < -745.2) return sign * kTiny * kTiny;
  const double e = exp64(prod.hi, scheme);
  // First-order correction: exp(hi+lo) = exp(hi)*(1+lo).
  return sign * (e + e * prod.lo);
}

// ---------------------------------------------------------------------------
// Trig kernels (fdlibm __kernel_sin / __kernel_cos) — shared by vendors.
// ---------------------------------------------------------------------------

double kernel_sin(double r, double r_lo, bool fused) noexcept {
  constexpr double S1 = -1.66666666666666324348e-01;
  constexpr double S2 = 8.33333333332248946124e-03;
  constexpr double S3 = -1.98412698298579493134e-04;
  constexpr double S4 = 2.75573137070700676789e-06;
  constexpr double S5 = -2.50507602534068634195e-08;
  constexpr double S6 = 1.58969099521155010221e-10;
  const double z = r * r;
  const double v = z * r;
  const double p = S2 + z * (S3 + z * (S4 + z * (S5 + z * S6)));
  if (fused) {
    // v*S1 and r have comparable magnitudes; fusing their combination
    // removes one rounding and shifts the result by one ULP on a fraction
    // of arguments relative to the separate-operation sequence below.
    return std::fma(v, S1, r) - (z * (0.5 * r_lo - v * p) - r_lo);
  }
  return r - ((z * (0.5 * r_lo - v * p) - r_lo) - v * S1);
}

double kernel_cos(double r, double r_lo, bool fused) noexcept {
  constexpr double C1 = 4.16666666666666019037e-02;
  constexpr double C2 = -1.38888888888741095749e-03;
  constexpr double C3 = 2.48015872894767294178e-05;
  constexpr double C4 = -2.75573143513906633035e-07;
  constexpr double C5 = 2.08757232129817482790e-09;
  constexpr double C6 = -1.13596475577881948265e-11;
  const double z = r * r;
  const double p = z * (C1 + z * (C2 + z * (C3 + z * (C4 + z * (C5 + z * C6)))));
  const double hz = 0.5 * z;
  const double w = 1.0 - hz;
  if (fused) {
    // Fused correction accumulation (see kernel_sin).
    return w + (((1.0 - w) - hz) + std::fma(z, p, -r * r_lo));
  }
  return w + (((1.0 - w) - hz) + (z * p - r * r_lo));
}

double sin64(double x, ReduceStyle style) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::quiet_nan<double>();  // invalid
  const bool fused = style == ReduceStyle::CodyWaite3;  // AMD-like path
  const double ax = fp::abs_bits(x);
  if (ax < 0x1.921fb54442d18p-1) {  // < pi/4: no reduction
    if (ax < 0x1p-27) return x;
    return kernel_sin(x, 0.0, fused);
  }
  const Reduced red = rem_pio2(x, style);
  switch (red.quadrant) {
    case 0: return kernel_sin(red.hi, red.lo, fused);
    case 1: return kernel_cos(red.hi, red.lo, fused);
    case 2: return -kernel_sin(red.hi, red.lo, fused);
    default: return -kernel_cos(red.hi, red.lo, fused);
  }
}

double cos64(double x, ReduceStyle style) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::quiet_nan<double>();  // invalid
  const bool fused = style == ReduceStyle::CodyWaite3;  // AMD-like path
  const double ax = fp::abs_bits(x);
  if (ax < 0x1.921fb54442d18p-1) {
    if (ax < 0x1p-27) return 1.0;
    return kernel_cos(ax, 0.0, fused);
  }
  const Reduced red = rem_pio2(x, style);
  switch (red.quadrant) {
    case 0: return kernel_cos(red.hi, red.lo, fused);
    case 1: return -kernel_sin(red.hi, red.lo, fused);
    case 2: return -kernel_cos(red.hi, red.lo, fused);
    default: return kernel_sin(red.hi, red.lo, fused);
  }
}

double tan64(double x, ReduceStyle style) noexcept {
  // tan = sin/cos built from the shared kernels (2-3 ulp; identical on both
  // vendors except for the reduction-style band).
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::quiet_nan<double>();  // invalid
  const double ax = fp::abs_bits(x);
  const bool fused_small = style == ReduceStyle::CodyWaite3;
  if (ax < 0x1.921fb54442d18p-1) {
    if (ax < 0x1p-27) return x;
    return kernel_sin(x, 0.0, fused_small) / kernel_cos(x, 0.0, fused_small);
  }
  const Reduced red = rem_pio2(x, style);
  const bool fused = style == ReduceStyle::CodyWaite3;
  const double s = kernel_sin(red.hi, red.lo, fused);
  const double c = kernel_cos(red.hi, red.lo, fused);
  return (red.quadrant & 1) ? -c / s : s / c;
}

// ---------------------------------------------------------------------------
// Exact fmod: shift-subtract on the integer representation (musl-style).
// ---------------------------------------------------------------------------

template <typename T>
T fmod_exact(T x, T y) noexcept {
  using Tr = fp::FloatTraits<T>;
  using B = typename Tr::Bits;
  B ux = fp::to_bits(x);
  const B uy_abs = fp::to_bits(y) & ~Tr::sign_mask;
  const B sign = ux & Tr::sign_mask;
  B ux_abs = ux & ~Tr::sign_mask;

  // Specials: y == 0, x inf, or NaN operands -> NaN (invalid).
  if (uy_abs == 0 || ux_abs >= Tr::exponent_mask || uy_abs > Tr::exponent_mask)
    return fp::quiet_nan<T>();
  if (ux_abs < uy_abs) return x;  // |x| < |y|: result is x itself
  if (ux_abs == uy_abs) return fp::copysign_bits(T(0), x);

  // Decompose into exponent + mantissa with explicit leading bit.
  const auto decompose = [](B v, int& e) -> B {
    e = static_cast<int>(v >> Tr::mantissa_bits);
    B m = v & Tr::mantissa_mask;
    if (e == 0) {
      // Subnormal: normalize.
      const int shift = Tr::mantissa_bits + 1 -
                        (std::numeric_limits<B>::digits - std::countl_zero(m));
      m <<= shift;
      e = 1 - shift;
    } else {
      m |= (B{1} << Tr::mantissa_bits);
    }
    return m;
  };

  int ex, ey;
  B mx = decompose(ux_abs, ex);
  const B my = decompose(uy_abs, ey);

  // Long division.  The textbook loop shifts-and-subtracts one bit of the
  // exponent gap per iteration, which for extreme operand pairs (the input
  // classes the campaign draws from — e.g. fmod(1e-4, 1e-308) with a
  // ~1000-bit gap) costs a thousand iterations per call.  The remainder
  // after the whole loop is exactly (mx << (ex - ey)) mod my with mx first
  // reduced below my, so compute that with wide modular shifts instead:
  // each step folds up to 63 (FP64) / 39 (FP32) gap bits into one hardware
  // division.  Bit-identical to the one-bit loop (vmath_test proves it
  // against the reference implementation across extreme operand classes).
  int gap = ex - ey;
  ex = ey;
  if (mx >= my) mx -= my;  // mx < 2*my on entry, one subtract reduces it
  if constexpr (sizeof(B) == 8) {
    while (gap > 0 && mx != 0) {
      const int s = gap > 63 ? 63 : gap;
      // mx < my < 2^53: the two-word dividend keeps every shifted-out bit
      // and (mx << s) < my * 2^63 bounds the quotient under 2^64, so the
      // hardware divide cannot fault and the remainder is exact.
#if defined(__x86_64__)
      std::uint64_t q, hi = mx >> (64 - s), lo = mx << s;
      asm("divq %4" : "=a"(q), "=d"(mx) : "0"(lo), "1"(hi), "r"(my) : "cc");
#else
      mx = static_cast<B>((static_cast<unsigned __int128>(mx) << s) % my);
#endif
      gap -= s;
    }
  } else {
    while (gap > 0 && mx != 0) {
      const int s = gap > 39 ? 39 : gap;
      mx = static_cast<B>((static_cast<std::uint64_t>(mx) << s) % my);
      gap -= s;
    }
  }
  if (mx == 0) return fp::copysign_bits(T(0), x);

  // Renormalize.
  const int lead = std::numeric_limits<B>::digits - 1 - std::countl_zero(mx);
  int shift = Tr::mantissa_bits - lead;
  mx <<= shift;
  ex -= shift;
  B out;
  if (ex > 0) {
    out = (mx - (B{1} << Tr::mantissa_bits)) | (static_cast<B>(ex) << Tr::mantissa_bits);
  } else {
    out = mx >> (1 - ex);  // subnormal result (exact: fmod never rounds)
  }
  return fp::from_bits<T>(out | sign);
}

// ---------------------------------------------------------------------------
// Exact ceil/floor/trunc by mantissa masking.
// ---------------------------------------------------------------------------

namespace {

template <typename T>
T round_to_integral(T x, bool toward_pos_inf, bool toward_neg_inf) noexcept {
  using Tr = fp::FloatTraits<T>;
  using B = typename Tr::Bits;
  if (!fp::is_finite_bits(x) || fp::is_zero_bits(x)) return x;
  const int e = fp::raw_exponent(x) - Tr::exponent_bias;  // unbiased (subnormal: big negative)
  if (e >= Tr::mantissa_bits) return x;  // already integral
  const bool neg = fp::sign_bit(x);
  if (e < 0) {
    // |x| < 1: result is 0 or ±1.
    if (toward_pos_inf && !neg) return T(1);
    if (toward_neg_inf && neg) return T(-1);
    return fp::copysign_bits(T(0), x);
  }
  const B frac_mask = Tr::mantissa_mask >> e;
  B b = fp::to_bits(x);
  if ((b & frac_mask) == 0) return x;  // integral already
  const bool bump = (toward_pos_inf && !neg) || (toward_neg_inf && neg);
  b &= ~frac_mask;
  T t = fp::from_bits<T>(b);
  if (bump) t += neg ? T(-1) : T(1);
  return t;
}

}  // namespace

template <typename T>
T ceil_exact(T x) noexcept {
  return round_to_integral(x, /*toward_pos_inf=*/true, /*toward_neg_inf=*/false);
}

template <typename T>
T floor_exact(T x) noexcept {
  return round_to_integral(x, false, true);
}

template <typename T>
T trunc_exact(T x) noexcept {
  return round_to_integral(x, false, false);
}

template <typename T>
T fmin_ieee(T x, T y) noexcept {
  if (fp::is_nan_bits(x)) return y;
  if (fp::is_nan_bits(y)) return x;
  if (fp::is_zero_bits(x) && fp::is_zero_bits(y))
    return fp::sign_bit(x) ? x : y;  // -0 < +0
  return x < y ? x : y;
}

template <typename T>
T fmax_ieee(T x, T y) noexcept {
  if (fp::is_nan_bits(x)) return y;
  if (fp::is_nan_bits(y)) return x;
  if (fp::is_zero_bits(x) && fp::is_zero_bits(y))
    return fp::sign_bit(x) ? y : x;
  return x > y ? x : y;
}

template double fmod_exact<double>(double, double) noexcept;
template float fmod_exact<float>(float, float) noexcept;
template double ceil_exact<double>(double) noexcept;
template float ceil_exact<float>(float) noexcept;
template double floor_exact<double>(double) noexcept;
template float floor_exact<float>(float) noexcept;
template double trunc_exact<double>(double) noexcept;
template float trunc_exact<float>(float) noexcept;
template double fmin_ieee<double>(double, double) noexcept;
template float fmin_ieee<float>(float, float) noexcept;
template double fmax_ieee<double>(double, double) noexcept;
template float fmax_ieee<float>(float, float) noexcept;

}  // namespace gpudiff::vmath::core
