#pragma once
// Shared math-library cores.
//
// Functions that NVIDIA and AMD GPUs compute identically in practice (IEEE
// sqrt, exp/log within 1 ulp of each other rarely enough to matter, the
// polynomial trig kernels applied to an exactly reduced argument) live here
// and are *shared* by both vendor libraries so that campaign discrepancy
// rates stay near the paper's observed ~1-2% instead of diverging on every
// transcendental call (DESIGN.md decision #2).  Vendor-specific algorithms
// (fmod, ceil/floor, cosh/sinh composition, reduction style) live in
// nv_math.cpp / amd_math.cpp.

#include <cmath>
#include <cstdint>

#include "fp/bits.hpp"
#include "vmath/core/reduce.hpp"

namespace gpudiff::vmath::core {

// --- scaling -------------------------------------------------------------

/// x * 2^k with one correct rounding (handles overflow/underflow/subnormal).
double scale_by_pow2(double x, int k) noexcept;

// --- exponential / logarithmic family ------------------------------------
//
// Both vendors use the same reduction and the same minimax coefficients, but
// evaluate the core polynomial with a different association (NVIDIA-like
// Horner vs AMD-like Estrin).  The two schemes round identically for most
// arguments and differ in the last ULP for a small fraction — the gentle
// Number-vs-Number trickle that dominates the paper's discrepancy classes.

enum class PolyScheme { Horner, Estrin };

double exp64(double x, PolyScheme scheme = PolyScheme::Horner) noexcept;
double log64(double x, PolyScheme scheme = PolyScheme::Horner) noexcept;
double tanh64(double x, PolyScheme scheme = PolyScheme::Horner) noexcept;
double atan64(double x) noexcept;
double asin64(double x) noexcept;
double acos64(double x) noexcept;
double pow64(double x, double y, PolyScheme scheme = PolyScheme::Horner) noexcept;

// --- trig kernels on reduced args (|r| <= pi/4) ---------------------------
//
// Same minimax coefficients on both vendors; the polynomial chain is
// evaluated with separate mul/add on the NVIDIA-like path and with fused
// multiply-adds on the AMD-like path (OCML leans on v_fma_f64 pervasively).
// Each fusion removes one rounding, so the two kernels disagree in the last
// ULP on a fraction of live arguments — with the reduction-style band, the
// main source of the paper's dominant Number-vs-Number class.

double kernel_sin(double r, double r_lo, bool fused = false) noexcept;
double kernel_cos(double r, double r_lo, bool fused = false) noexcept;

/// Full sin/cos/tan built from a reduction style + the shared kernels
/// (CodyWaite3 pairs with the fused kernels on the AMD-like path).
double sin64(double x, ReduceStyle style) noexcept;
double cos64(double x, ReduceStyle style) noexcept;
double tan64(double x, ReduceStyle style) noexcept;

// --- exact generic operations (IEEE-correct on both real GPU targets) ----

/// Correctly rounded (exact) fmod via the shift-subtract integer algorithm.
template <typename T>
T fmod_exact(T x, T y) noexcept;

/// Exact ceil/floor/trunc via exponent-based bit masking.
template <typename T>
T ceil_exact(T x) noexcept;
template <typename T>
T floor_exact(T x) noexcept;
template <typename T>
T trunc_exact(T x) noexcept;

/// IEEE 754 minNum/maxNum semantics (NaN loses against a number).
template <typename T>
T fmin_ieee(T x, T y) noexcept;
template <typename T>
T fmax_ieee(T x, T y) noexcept;

extern template double fmod_exact<double>(double, double) noexcept;
extern template float fmod_exact<float>(float, float) noexcept;
extern template double ceil_exact<double>(double) noexcept;
extern template float ceil_exact<float>(float) noexcept;
extern template double floor_exact<double>(double) noexcept;
extern template float floor_exact<float>(float) noexcept;
extern template double trunc_exact<double>(double) noexcept;
extern template float trunc_exact<float>(float) noexcept;
extern template double fmin_ieee<double>(double, double) noexcept;
extern template float fmin_ieee<float>(float, float) noexcept;
extern template double fmax_ieee<double>(double, double) noexcept;
extern template float fmax_ieee<float>(float, float) noexcept;

}  // namespace gpudiff::vmath::core
