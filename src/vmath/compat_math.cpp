// hipcc CUDA-compat math binding ("hip-cuda-compat-sim").
//
// HIPIFY-converted sources call unqualified libm names that hipcc resolves
// through its CUDA-compatibility wrapper layer rather than binding OCML
// directly (the numerical delta the paper measured but left as future work;
// DESIGN.md documents this as a *model*).  The wrapper passes most calls
// through to OCML verbatim; the modeled differences:
//
//  * fmod — wrapper canonicalizes results, flushing subnormal remainders to
//    (signed) zero.  This produces the extra Number-vs-Zero discrepancies of
//    paper Table VII (20 per level vs 10 for native HIP).
//  * pow — wrapper composes exp(y*log|x|) without the double-double product
//    correction OCML applies, drifting by up to a few hundred ULP when the
//    exponent y*log|x| is large.

#include <cmath>

#include "vmath/mathlib.hpp"
#include "vmath/vendor_common.hpp"
#include "vmath/vendor_tables.hpp"

namespace gpudiff::vmath {

namespace {

double compat_fmod(double x, double y) noexcept {
  const double r = core::fmod_exact(x, y);
  if (fp::is_subnormal_bits(r)) return fp::copysign_bits(0.0, r);
  return r;
}

float compat_fmodf(float x, float y) noexcept {
  const float r = core::fmod_exact(x, y);
  if (fp::is_subnormal_bits(r)) return fp::copysign_bits(0.0f, r);
  return r;
}

double compat_pow(double x, double y) noexcept {
  using core::PolyScheme;
  // Same special-case ladder as the shared pow, then the uncorrected
  // composition.  Delegate specials by checking whether the accurate pow
  // short-circuits (finite path detection mirrors core::pow64).
  if (y == 0.0 || x == 1.0 || fp::is_nan_bits(x) || fp::is_nan_bits(y) ||
      fp::is_inf_bits(x) || fp::is_inf_bits(y) || fp::is_zero_bits(x))
    return core::pow64(x, y, PolyScheme::Estrin);
  double sign = 1.0;
  const double ax = fp::abs_bits(x);
  if (fp::sign_bit(x)) {
    const double t = core::trunc_exact(y);
    const bool is_int = fp::abs_bits(y) >= 0x1p52 || t == y;
    if (!is_int) return fp::quiet_nan<double>();
    const double half = t * 0.5;
    const bool odd = fp::abs_bits(y) < 0x1p53 && core::trunc_exact(half) != half;
    if (odd) sign = -1.0;
  }
  return sign * core::exp64(y * core::log64(ax, PolyScheme::Estrin),
                            PolyScheme::Estrin);
}

float compat_powf(float x, float y) noexcept {
  return static_cast<float>(compat_pow(static_cast<double>(x), static_cast<double>(y)));
}

}  // namespace

const MathLib& hip_cuda_compat() {
  static const MathLib lib = [] {
    Fn64 f64 = detail::amd_table64();
    Fn32 f32 = detail::amd_table32();
    f64.fmod_ = compat_fmod;
    f64.pow_ = compat_pow;
    f32.fmod_ = compat_fmodf;
    f32.pow_ = compat_powf;
    return MathLib("hip-cuda-compat-sim", SymbolStyle::HipCudaCompat, f64, f32);
  }();
  return lib;
}

const MathLib& hip_cuda_compat_native() {
  // Fast-math binding for HIPIFY-converted sources: the native_* FP32
  // substitutions stack on top of the CUDA-compat wrapper layer.
  static const MathLib lib = [] {
    Fn64 f64 = detail::amd_table64();
    f64.fmod_ = compat_fmod;
    f64.pow_ = compat_pow;
    Fn32 f32 = detail::amd_native_table32();
    f32.fmod_ = compat_fmodf;
    f32.pow_ = compat_powf;
    return MathLib("hip-cuda-compat-native-sim", SymbolStyle::HipCudaCompat, f64, f32);
  }();
  return lib;
}

}  // namespace gpudiff::vmath
