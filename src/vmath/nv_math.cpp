// NVIDIA-sim device math library ("libdevice-sim").
//
// Models the algorithm family NVIDIA uses on V100-class targets: math
// functions synthesized from FP arithmetic and bit manipulation inline in
// SASS/PTX (the paper's Case Study 1 root-cause analysis).  Divergent
// algorithms relative to amd_math.cpp:
//
//  * fmod   — chunked division-based reduction (inexact once the exponent
//             gap between |x| and |y| exceeds 52 bits).        [Case Study 1]
//  * ceil/floor — fast path flushes results for inputs with unbiased
//             exponent below -126 (an FP32-tuned threshold reused in the
//             FP64 path), so ceil(1.5955e-125) == 0.           [Case Study 2]
//  * sin/cos/tan — two-constant Cody-Waite medium-range reduction: loses
//             accuracy when the argument falls very close to a multiple of
//             pi/2 (deep cancellation).
//  * cosh/sinh — direct 0.5*(e^x ± e^-x) composition, which overflows
//             prematurely in the band |x| in [709.78, 710.47].

#include "vmath/mathlib.hpp"
#include "vmath/vendor_common.hpp"
#include "vmath/vendor_tables.hpp"

namespace gpudiff::vmath {

namespace {

using core::PolyScheme;
using core::ReduceStyle;

double nv_sin(double x) noexcept { return core::sin64(x, ReduceStyle::CodyWaite2); }
double nv_cos(double x) noexcept { return core::cos64(x, ReduceStyle::CodyWaite2); }
double nv_tan(double x) noexcept { return core::tan64(x, ReduceStyle::CodyWaite2); }

// NVIDIA-like Horner evaluation of the shared exp/log cores.
double nv_exp(double x) noexcept { return core::exp64(x, PolyScheme::Horner); }
double nv_log(double x) noexcept { return core::log64(x, PolyScheme::Horner); }
double nv_tanh(double x) noexcept { return core::tanh64(x, PolyScheme::Horner); }
double nv_pow(double x, double y) noexcept {
  return core::pow64(x, y, PolyScheme::Horner);
}

/// True binary exponent, handling subnormals (ilogb semantics).
int ilogb_bits(double x) noexcept {
  const int raw = fp::raw_exponent(x);
  if (raw > 0) return raw - 1023;
  const std::uint64_t mant = fp::mantissa_field(x);
  return 63 - std::countl_zero(mant) - 1074;
}

/// Division-based fmod with a bounded unrolled reduction.  The reduction
/// loop is FMA-exact (each 52-bit quotient chunk subtracts exactly), but the
/// implementation only unrolls enough chunks to cover a 1024-bit exponent
/// gap.  Beyond that — |x| astronomically larger than |y|, e.g. Case Study
/// 1's fmod(1.59e+289, 1.58e-307) with a 1980-bit gap — the leftover gap is
/// closed with a single *unfused* multiply-subtract whose product rounding
/// throws away the low bits of the remainder, landing on a different
/// (deterministic) residue than OCML's exact integer algorithm.  Ordinary
/// argument pairs (gap <= 1024 bits) agree with OCML bit-for-bit, matching
/// the paper's observation that only 1 of 10 random inputs diverged.
double nv_fmod(double x, double y) noexcept {
  const double ax = fp::abs_bits(x);
  const double ay = fp::abs_bits(y);
  if (fp::is_nan_bits(x) || fp::is_nan_bits(y) || fp::is_inf_bits(x) ||
      fp::is_zero_bits(y))
    return fp::quiet_nan<double>();  // invalid
  if (fp::is_inf_bits(y) || ax < ay) return x;

  const int gap = ilogb_bits(ax) - ilogb_bits(ay);
  if (gap <= 1024)
    return fp::copysign_bits(core::fmod_exact(ax, ay), x);

  // Gap exceeds the unrolled range: one coarse mul-subtract step (rounds
  // once, granularity ~2^(ilogb(x)-52)), then the exact tail reduction.
  const int k = gap - 52;
  const double ays = core::scale_by_pow2(ay, k);  // exact pow-2 scale
  double q = core::trunc_exact(ax / ays);
  if (q < 1.0) q = 1.0;
  const double p = q * ays;  // rounds: the modeled precision loss
  double r = ax - p;         // cancellation exposes p's rounding error
  if (r < 0.0) r += ays;
  return fp::copysign_bits(core::fmod_exact(r, ay), x);
}

/// ceil with the modeled tiny-exponent fast path (DESIGN.md quirk #2):
/// nonzero |x| < 2^-126 returns signed zero instead of snapping to +-1.
double nv_ceil(double x) noexcept {
  if (fp::is_finite_bits(x) && !fp::is_zero_bits(x) &&
      fp::raw_exponent(x) < (-126 + fp::FloatTraits<double>::exponent_bias))
    return fp::copysign_bits(0.0, x);
  return core::ceil_exact(x);
}

double nv_floor(double x) noexcept {
  if (fp::is_finite_bits(x) && !fp::is_zero_bits(x) &&
      fp::raw_exponent(x) < (-126 + fp::FloatTraits<double>::exponent_bias))
    return fp::copysign_bits(0.0, x);
  return core::floor_exact(x);
}

/// Direct exponential composition: overflows as soon as exp() does
/// (x > 709.78), although true cosh only overflows past 710.47.
double nv_cosh(double x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax < 0x1p-27) return 1.0;
  const double t = nv_exp(ax);
  return 0.5 * t + 0.5 / t;
}

double nv_sinh(double x) noexcept {
  if (fp::is_nan_bits(x) || fp::is_inf_bits(x)) return x;
  const double ax = fp::abs_bits(x);
  if (ax < 0x1p-27) return x;
  const double t = nv_exp(ax);
  const double r = 0.5 * t - 0.5 / t;
  return fp::copysign_bits(r, x);
}

// FP32 trig: double-assisted reduction (CW2 medium path) but float-native
// polynomial kernels — the historical CUDA sinf/cosf strategy, accurate to
// ~1-2 ULP.  OCML promotes to double throughout (0.5 ULP), so the two
// diverge in the last ULP on a healthy fraction of live arguments: the
// Number-vs-Number baseline of the FP32 campaign (paper Table IX, O0 row).
float nv_kernel_sinf(double r) noexcept {
  const float s = static_cast<float>(r);
  const float z = s * s;
  return s * (1.0f + z * (-1.66666547e-1f +
              z * (8.33216087e-3f + z * -1.95152959e-4f)));
}

float nv_kernel_cosf(double r) noexcept {
  const float s = static_cast<float>(r);
  const float z = s * s;
  return 1.0f + z * (-0.5f + z * (4.16666456e-2f +
              z * (-1.38873036e-3f + z * 2.44331571e-5f)));
}

float nv_sinf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::quiet_nan<float>();
  const double xd = static_cast<double>(x);
  const double ax = fp::abs_bits(xd);
  if (ax < 0x1.921fb54442d18p-1) {
    if (ax < 0x1p-27) return x;
    return nv_kernel_sinf(xd);
  }
  const core::Reduced red = core::rem_pio2(xd, core::ReduceStyle::CodyWaite2);
  switch (red.quadrant) {
    case 0: return nv_kernel_sinf(red.hi);
    case 1: return nv_kernel_cosf(red.hi);
    case 2: return -nv_kernel_sinf(red.hi);
    default: return -nv_kernel_cosf(red.hi);
  }
}

float nv_cosf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::quiet_nan<float>();
  const double xd = static_cast<double>(x);
  const double ax = fp::abs_bits(xd);
  if (ax < 0x1.921fb54442d18p-1) {
    if (ax < 0x1p-27) return 1.0f;
    return nv_kernel_cosf(ax);
  }
  const core::Reduced red = core::rem_pio2(xd, core::ReduceStyle::CodyWaite2);
  switch (red.quadrant) {
    case 0: return nv_kernel_cosf(red.hi);
    case 1: return -nv_kernel_sinf(red.hi);
    case 2: return -nv_kernel_cosf(red.hi);
    default: return nv_kernel_sinf(red.hi);
  }
}

float nv_tanf(float x) noexcept {
  if (fp::is_nan_bits(x)) return x;
  if (fp::is_inf_bits(x)) return fp::quiet_nan<float>();
  const double xd = static_cast<double>(x);
  const double ax = fp::abs_bits(xd);
  if (ax < 0x1.921fb54442d18p-1) {
    if (ax < 0x1p-27) return x;
    return nv_kernel_sinf(xd) / nv_kernel_cosf(xd);
  }
  const core::Reduced red = core::rem_pio2(xd, core::ReduceStyle::CodyWaite2);
  const float s = nv_kernel_sinf(red.hi);
  const float c = nv_kernel_cosf(red.hi);
  return (red.quadrant & 1) ? -c / s : s / c;
}

float nv_ceilf(float x) noexcept { return core::ceil_exact(x); }
float nv_floorf(float x) noexcept { return core::floor_exact(x); }

/// FP32 fmod mirrors the FP64 structure with a float-width unrolled range:
/// gaps beyond 128 bits (possible because binary32 subnormals reach 2^-149)
/// take the coarse single-rounding path.
float nv_fmodf(float x, float y) noexcept {
  const float ax = fp::abs_bits(x);
  const float ay = fp::abs_bits(y);
  if (fp::is_nan_bits(x) || fp::is_nan_bits(y) || fp::is_inf_bits(x) ||
      fp::is_zero_bits(y))
    return fp::quiet_nan<float>();  // invalid
  if (fp::is_inf_bits(y) || ax < ay) return x;

  const auto ilogbf_bits = [](float v) {
    const int raw = fp::raw_exponent(v);
    if (raw > 0) return raw - 127;
    const std::uint32_t mant = fp::mantissa_field(v);
    return 31 - std::countl_zero(mant) - 149;
  };
  const int gap = ilogbf_bits(ax) - ilogbf_bits(ay);
  if (gap <= 128)
    return fp::copysign_bits(core::fmod_exact(ax, ay), x);

  const int k = gap - 23;
  const float ays = ay * std::ldexp(1.0f, k);  // exact: exponent stays in range
  float q = core::trunc_exact(ax / ays);
  if (q < 1.0f) q = 1.0f;
  const float p = q * ays;  // rounds: the modeled precision loss
  float r = ax - p;
  if (r < 0.0f) r += ays;
  return fp::copysign_bits(core::fmod_exact(r, ay), x);
}

constexpr Fn64 kNv64 = {
    detail::hw_fabs, detail::hw_sqrt, nv_exp, nv_log,
    nv_sin, nv_cos, nv_tan,
    core::asin64, core::acos64, core::atan64,
    nv_sinh, nv_cosh, nv_tanh,
    nv_ceil, nv_floor, core::trunc_exact<double>,
    nv_fmod, nv_pow, core::fmin_ieee<double>, core::fmax_ieee<double>,
};

constexpr Fn32 kNv32 = {
    detail::hw_fabsf, detail::hw_sqrtf,
    detail::via64<nv_exp>, detail::via64<nv_log>,
    nv_sinf, nv_cosf, nv_tanf,
    detail::via64<core::asin64>, detail::via64<core::acos64>,
    detail::via64<core::atan64>,
    detail::via64<nv_sinh>, detail::via64<nv_cosh>, detail::via64<nv_tanh>,
    nv_ceilf, nv_floorf, core::trunc_exact<float>,
    nv_fmodf, detail::via64_2<nv_pow>,
    core::fmin_ieee<float>, core::fmax_ieee<float>,
};

}  // namespace

const MathLib& nv_libdevice() {
  static const MathLib lib("nv-libdevice-sim", SymbolStyle::NvLibdevice, kNv64, kNv32);
  return lib;
}

namespace detail {
const Fn64& nv_table64() { return kNv64; }
const Fn32& nv_table32() { return kNv32; }
}  // namespace detail

}  // namespace gpudiff::vmath
