#pragma once
// Software IEEE-754 exception-flag tracking (paper Table II).
//
// NVIDIA GPUs expose no FP status register and raise no SIGFPE; the paper
// (Section II-B) works around this by classifying *values*.  Our virtual
// FPU can do better: every arithmetic operation and math call reports the
// exceptions it would raise, and the interpreter accumulates them per run.
// The five classes: Inexact, Underflow, Overflow, DivideByZero, Invalid.

#include <cstdint>
#include <string>

namespace gpudiff::fp {

enum ExceptionBits : std::uint8_t {
  kInexact = 1u << 0,
  kUnderflow = 1u << 1,
  kOverflow = 1u << 2,
  kDivideByZero = 1u << 3,
  kInvalid = 1u << 4,
};

/// Accumulated exception flags for one kernel execution.
class ExceptionFlags {
 public:
  void raise(std::uint8_t bits) noexcept { flags_ |= bits; }
  void clear() noexcept { flags_ = 0; }

  bool inexact() const noexcept { return flags_ & kInexact; }
  bool underflow() const noexcept { return flags_ & kUnderflow; }
  bool overflow() const noexcept { return flags_ & kOverflow; }
  bool divide_by_zero() const noexcept { return flags_ & kDivideByZero; }
  bool invalid() const noexcept { return flags_ & kInvalid; }
  bool any() const noexcept { return flags_ != 0; }
  /// Any event other than Inexact — the paper discards Inexact as noise.
  bool any_serious() const noexcept { return (flags_ & ~kInexact) != 0; }

  std::uint8_t raw() const noexcept { return flags_; }
  std::string to_string() const;

 private:
  std::uint8_t flags_ = 0;
};

/// Classify the exceptions implied by computing `result` from finite inputs
/// by observing the value transition (exact semantics are supplied by the
/// virtual FPU in vgpu; this helper covers the common arithmetic case).
template <typename T>
std::uint8_t infer_arith_exceptions(T result, bool operands_finite,
                                    bool exact) noexcept;

}  // namespace gpudiff::fp
