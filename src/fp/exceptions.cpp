#include "fp/exceptions.hpp"

#include "fp/bits.hpp"

namespace gpudiff::fp {

std::string ExceptionFlags::to_string() const {
  if (flags_ == 0) return "none";
  std::string out;
  const auto add = [&](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (invalid()) add("invalid");
  if (divide_by_zero()) add("div-by-zero");
  if (overflow()) add("overflow");
  if (underflow()) add("underflow");
  if (inexact()) add("inexact");
  return out;
}

template <typename T>
std::uint8_t infer_arith_exceptions(T result, bool operands_finite, bool exact) noexcept {
  std::uint8_t bits = 0;
  if (is_nan_bits(result) && operands_finite) bits |= kInvalid;
  if (is_inf_bits(result) && operands_finite) bits |= kOverflow;
  if (is_subnormal_bits(result)) bits |= kUnderflow | kInexact;
  if (!exact) bits |= kInexact;
  return bits;
}

template std::uint8_t infer_arith_exceptions<double>(double, bool, bool) noexcept;
template std::uint8_t infer_arith_exceptions<float>(float, bool, bool) noexcept;

}  // namespace gpudiff::fp
