#pragma once
// Exact textual round-trips for floating-point values.
//
// Varity prints kernel results with printf("%.17g") and writes inputs in
// scientific notation with explicit signs (e.g. "+1.5955E-125", "-0.0").
// This module reproduces both conventions and guarantees
// parse(print(x)) == x bit-for-bit, including signed zeros, infinities and
// NaNs, plus IEEE-bit hex encodings for the metadata JSON.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace gpudiff::fp {

/// printf("%.17g")-equivalent (shortest17) formatting; "inf"/"-inf"/"nan"/"-nan"
/// match glibc's printf output, which both CUDA and HIP device printf follow.
std::string print_g17(double x);
/// printf("%.9g")-equivalent for binary32 values.
std::string print_g9(float x);

/// Varity input-file style: sign-prefixed scientific ("+1.2374E-306", "-0.0").
std::string print_varity(double x);
std::string print_varity(float x);

/// Parse either convention (also accepts hex-float "0x1.8p+3" and
/// "inf"/"nan" spellings).  Returns nullopt on malformed input.
std::optional<double> parse_double(std::string_view text);
std::optional<float> parse_float(std::string_view text);

/// Lossless IEEE-bit string for metadata: "64:HHHHHHHHHHHHHHHH" / "32:HHHHHHHH".
std::string encode_bits(double x);
std::string encode_bits(float x);
std::optional<double> decode_bits64(std::string_view text);
std::optional<float> decode_bits32(std::string_view text);

}  // namespace gpudiff::fp
