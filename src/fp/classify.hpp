#pragma once
// Floating-point value classification used throughout the framework.
//
// Two granularities:
//   * FpClass      — full IEEE taxonomy (NaN/Inf/Zero/Subnormal/Normal, signed)
//   * OutcomeClass — the paper's 4 test-outcome buckets {NaN, Inf, Zero, Number}
//     (Section IV-B: "We identified four possible outcomes from any test").
//     "Number" = non-zero real-valued FP number; subnormals count as Number.

#include <cstdint>
#include <string>

#include "fp/bits.hpp"

namespace gpudiff::fp {

enum class FpClass : std::uint8_t {
  NegNaN, NegInf, NegNormal, NegSubnormal, NegZero,
  PosZero, PosSubnormal, PosNormal, PosInf, PosNaN,
};

enum class OutcomeClass : std::uint8_t { NaN = 0, Inf = 1, Zero = 2, Number = 3 };

/// A classified value: outcome bucket plus sign (the paper distinguishes
/// ±NaN, ±Inf, ±Zero in its adjacency matrices but excludes sign-only
/// differences from the discrepancy counts).
struct Outcome {
  OutcomeClass cls = OutcomeClass::Number;
  bool negative = false;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

template <typename T>
FpClass classify(T x) noexcept {
  const bool neg = sign_bit(x);
  if (is_nan_bits(x)) return neg ? FpClass::NegNaN : FpClass::PosNaN;
  if (is_inf_bits(x)) return neg ? FpClass::NegInf : FpClass::PosInf;
  if (is_zero_bits(x)) return neg ? FpClass::NegZero : FpClass::PosZero;
  if (is_subnormal_bits(x)) return neg ? FpClass::NegSubnormal : FpClass::PosSubnormal;
  return neg ? FpClass::NegNormal : FpClass::PosNormal;
}

template <typename T>
Outcome outcome_of(T x) noexcept {
  const bool neg = sign_bit(x);
  if (is_nan_bits(x)) return {OutcomeClass::NaN, neg};
  if (is_inf_bits(x)) return {OutcomeClass::Inf, neg};
  if (is_zero_bits(x)) return {OutcomeClass::Zero, neg};
  return {OutcomeClass::Number, neg};
}

std::string to_string(FpClass c);
std::string to_string(OutcomeClass c);
std::string to_string(const Outcome& o);

}  // namespace gpudiff::fp
