#pragma once
// Floating-point environment of a virtual GPU thread.
//
// Models the knobs that differ between real GPU targets:
//  * FTZ (flush-to-zero of subnormal *results*) — nvcc -use_fast_math sets
//    .ftz on FP32 ops; AMD keeps denormals in FP32 on MI2xx by default.
//  * DAZ (treat subnormal *inputs* as zero).
// FP64 denormals are always supported on both real targets, so FTZ/DAZ here
// apply to the precision they are configured for by the virtual compiler.

#include "fp/bits.hpp"
#include "fp/exceptions.hpp"

namespace gpudiff::fp {

/// How binary32 division executes (set by the virtual compilers' fast-math
/// pipelines; IEEE otherwise).
enum class Div32Mode : std::uint8_t {
  IEEE,      ///< correctly rounded division instruction
  NvApprox,  ///< __fdividef: float(recip) * multiply, and |y| > 2^126 -> 0
  AmdApprox, ///< v_rcp-based: double-product rounded once (no huge-y quirk)
};

struct FpEnv {
  bool ftz32 = false;  ///< flush binary32 subnormal results to zero
  bool daz32 = false;  ///< treat binary32 subnormal inputs as zero
  bool ftz64 = false;  ///< modeled for completeness; off on both real targets
  bool daz64 = false;
  Div32Mode div32 = Div32Mode::IEEE;
  /// -ffinite-math-only fmin/fmax simplification: (a<b)?a:b instead of the
  /// IEEE minNum/maxNum NaN handling.
  bool naive_minmax = false;

  friend bool operator==(const FpEnv&, const FpEnv&) = default;
};

/// Apply DAZ to an operand under `env`.
inline float apply_daz(float x, const FpEnv& env) noexcept {
  if (env.daz32 && is_subnormal_bits(x))
    return copysign_bits(0.0f, x);
  return x;
}
inline double apply_daz(double x, const FpEnv& env) noexcept {
  if (env.daz64 && is_subnormal_bits(x))
    return copysign_bits(0.0, x);
  return x;
}

/// Apply FTZ to a result under `env`; reports Underflow when it flushes.
inline float apply_ftz(float x, const FpEnv& env, ExceptionFlags* flags = nullptr) noexcept {
  if (env.ftz32 && is_subnormal_bits(x)) {
    if (flags) flags->raise(kUnderflow | kInexact);
    return copysign_bits(0.0f, x);
  }
  return x;
}
inline double apply_ftz(double x, const FpEnv& env, ExceptionFlags* flags = nullptr) noexcept {
  if (env.ftz64 && is_subnormal_bits(x)) {
    if (flags) flags->raise(kUnderflow | kInexact);
    return copysign_bits(0.0, x);
  }
  return x;
}

}  // namespace gpudiff::fp
