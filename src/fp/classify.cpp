#include "fp/classify.hpp"

namespace gpudiff::fp {

std::string to_string(FpClass c) {
  switch (c) {
    case FpClass::NegNaN: return "-NaN";
    case FpClass::NegInf: return "-Inf";
    case FpClass::NegNormal: return "-Normal";
    case FpClass::NegSubnormal: return "-Subnormal";
    case FpClass::NegZero: return "-Zero";
    case FpClass::PosZero: return "+Zero";
    case FpClass::PosSubnormal: return "+Subnormal";
    case FpClass::PosNormal: return "+Normal";
    case FpClass::PosInf: return "+Inf";
    case FpClass::PosNaN: return "+NaN";
  }
  return "?";
}

std::string to_string(OutcomeClass c) {
  switch (c) {
    case OutcomeClass::NaN: return "NaN";
    case OutcomeClass::Inf: return "Inf";
    case OutcomeClass::Zero: return "Zero";
    case OutcomeClass::Number: return "Num";
  }
  return "?";
}

std::string to_string(const Outcome& o) {
  return (o.negative ? "-" : "+") + to_string(o.cls);
}

}  // namespace gpudiff::fp
