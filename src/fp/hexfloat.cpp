#include "fp/hexfloat.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "fp/bits.hpp"

namespace gpudiff::fp {

std::string print_g17(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

std::string print_g9(float x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(x));
  return buf;
}

std::string print_varity(double x) {
  if (is_nan_bits(x)) return sign_bit(x) ? "-nan" : "+nan";
  if (is_inf_bits(x)) return sign_bit(x) ? "-inf" : "+inf";
  if (is_zero_bits(x)) return sign_bit(x) ? "-0.0" : "+0.0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.17E", x);
  return buf;
}

std::string print_varity(float x) {
  if (is_nan_bits(x)) return sign_bit(x) ? "-nan" : "+nan";
  if (is_inf_bits(x)) return sign_bit(x) ? "-inf" : "+inf";
  if (is_zero_bits(x)) return sign_bit(x) ? "-0.0" : "+0.0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.9E", static_cast<double>(x));
  return buf;
}

namespace {

// Case-insensitive match helper for inf/nan spellings.
bool imatch(std::string_view s, std::string_view word) {
  if (s.size() != word.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char a = s[i] >= 'A' && s[i] <= 'Z' ? static_cast<char>(s[i] - 'A' + 'a') : s[i];
    if (a != word[i]) return false;
  }
  return true;
}

}  // namespace

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  bool neg = false;
  std::string_view body = text;
  if (body.front() == '+' || body.front() == '-') {
    neg = body.front() == '-';
    body.remove_prefix(1);
  }
  if (imatch(body, "inf") || imatch(body, "infinity"))
    return infinity<double>(neg);
  if (imatch(body, "nan") || imatch(body, "nan(snan)"))
    return quiet_nan<double>(neg);

  const std::string z(text);
  char* end = nullptr;
  const double v = std::strtod(z.c_str(), &end);
  if (end != z.c_str() + z.size() || end == z.c_str()) return std::nullopt;
  return v;
}

std::optional<float> parse_float(std::string_view text) {
  if (text.empty()) return std::nullopt;
  bool neg = false;
  std::string_view body = text;
  if (body.front() == '+' || body.front() == '-') {
    neg = body.front() == '-';
    body.remove_prefix(1);
  }
  if (imatch(body, "inf") || imatch(body, "infinity"))
    return infinity<float>(neg);
  if (imatch(body, "nan"))
    return quiet_nan<float>(neg);
  // Allow the CUDA-style 'F'/'f' literal suffix (checked after the special
  // spellings: "inf" also ends in 'f').
  if (!body.empty() && (body.back() == 'f' || body.back() == 'F') &&
      body.find_first_of("xX") == std::string_view::npos) {
    body.remove_suffix(1);
    std::string with_sign = (neg ? "-" : "+") + std::string(body);
    return parse_float(with_sign);
  }

  const std::string z(text);
  char* end = nullptr;
  const float v = std::strtof(z.c_str(), &end);
  if (end != z.c_str() + z.size() || end == z.c_str()) return std::nullopt;
  return v;
}

std::string encode_bits(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "64:%016" PRIX64, to_bits(x));
  return buf;
}

std::string encode_bits(float x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "32:%08" PRIX32, to_bits(x));
  return buf;
}

std::optional<double> decode_bits64(std::string_view text) {
  if (text.size() != 3 + 16 || text.substr(0, 3) != "64:") return std::nullopt;
  std::uint64_t bits = 0;
  for (char c : text.substr(3)) {
    bits <<= 4;
    if (c >= '0' && c <= '9') bits |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'A' && c <= 'F') bits |= static_cast<std::uint64_t>(c - 'A' + 10);
    else if (c >= 'a' && c <= 'f') bits |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return from_bits<double>(bits);
}

std::optional<float> decode_bits32(std::string_view text) {
  if (text.size() != 3 + 8 || text.substr(0, 3) != "32:") return std::nullopt;
  std::uint32_t bits = 0;
  for (char c : text.substr(3)) {
    bits <<= 4;
    if (c >= '0' && c <= '9') bits |= static_cast<std::uint32_t>(c - '0');
    else if (c >= 'A' && c <= 'F') bits |= static_cast<std::uint32_t>(c - 'A' + 10);
    else if (c >= 'a' && c <= 'f') bits |= static_cast<std::uint32_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return from_bits<float>(bits);
}

}  // namespace gpudiff::fp
