#pragma once
// Bit-level IEEE-754 helpers for binary32 and binary64.
//
// All simulator numerics go through these helpers rather than <cmath>
// classification so that behaviour is identical regardless of the host
// libm and of -ffast-math settings in client builds.

#include <bit>
#include <cstdint>
#include <limits>

namespace gpudiff::fp {

// ---- trait layer: one set of algorithms for float and double ----

template <typename T>
struct FloatTraits;

template <>
struct FloatTraits<double> {
  using Bits = std::uint64_t;
  using SignedBits = std::int64_t;
  static constexpr int mantissa_bits = 52;
  static constexpr int exponent_bits = 11;
  static constexpr int exponent_bias = 1023;
  static constexpr Bits sign_mask = 0x8000000000000000ULL;
  static constexpr Bits exponent_mask = 0x7FF0000000000000ULL;
  static constexpr Bits mantissa_mask = 0x000FFFFFFFFFFFFFULL;
  static constexpr Bits quiet_bit = 0x0008000000000000ULL;
  static constexpr int max_exponent = 1024;    // unbiased, exclusive
  static constexpr int min_normal_exponent = -1022;
};

template <>
struct FloatTraits<float> {
  using Bits = std::uint32_t;
  using SignedBits = std::int32_t;
  static constexpr int mantissa_bits = 23;
  static constexpr int exponent_bits = 8;
  static constexpr int exponent_bias = 127;
  static constexpr Bits sign_mask = 0x80000000U;
  static constexpr Bits exponent_mask = 0x7F800000U;
  static constexpr Bits mantissa_mask = 0x007FFFFFU;
  static constexpr Bits quiet_bit = 0x00400000U;
  static constexpr int max_exponent = 128;
  static constexpr int min_normal_exponent = -126;
};

template <typename T>
constexpr typename FloatTraits<T>::Bits to_bits(T x) noexcept {
  return std::bit_cast<typename FloatTraits<T>::Bits>(x);
}

template <typename T>
constexpr T from_bits(typename FloatTraits<T>::Bits b) noexcept {
  return std::bit_cast<T>(b);
}

template <typename T>
constexpr bool sign_bit(T x) noexcept {
  return (to_bits(x) & FloatTraits<T>::sign_mask) != 0;
}

/// Biased exponent field (0 = zero/subnormal, all-ones = inf/nan).
template <typename T>
constexpr int raw_exponent(T x) noexcept {
  using Tr = FloatTraits<T>;
  return static_cast<int>((to_bits(x) & Tr::exponent_mask) >> Tr::mantissa_bits);
}

/// Unbiased exponent of a *normal* number (undefined for zero/subnormal/special).
template <typename T>
constexpr int unbiased_exponent(T x) noexcept {
  return raw_exponent(x) - FloatTraits<T>::exponent_bias;
}

template <typename T>
constexpr typename FloatTraits<T>::Bits mantissa_field(T x) noexcept {
  return to_bits(x) & FloatTraits<T>::mantissa_mask;
}

template <typename T>
constexpr bool is_nan_bits(T x) noexcept {
  using Tr = FloatTraits<T>;
  return (to_bits(x) & Tr::exponent_mask) == Tr::exponent_mask &&
         (to_bits(x) & Tr::mantissa_mask) != 0;
}

template <typename T>
constexpr bool is_inf_bits(T x) noexcept {
  using Tr = FloatTraits<T>;
  return (to_bits(x) & ~Tr::sign_mask) == Tr::exponent_mask;
}

template <typename T>
constexpr bool is_zero_bits(T x) noexcept {
  return (to_bits(x) & ~FloatTraits<T>::sign_mask) == 0;
}

template <typename T>
constexpr bool is_subnormal_bits(T x) noexcept {
  return raw_exponent(x) == 0 && mantissa_field(x) != 0;
}

template <typename T>
constexpr bool is_finite_bits(T x) noexcept {
  using Tr = FloatTraits<T>;
  return (to_bits(x) & Tr::exponent_mask) != Tr::exponent_mask;
}

template <typename T>
constexpr T abs_bits(T x) noexcept {
  return from_bits<T>(to_bits(x) & ~FloatTraits<T>::sign_mask);
}

template <typename T>
constexpr T copysign_bits(T mag, T sgn) noexcept {
  using Tr = FloatTraits<T>;
  return from_bits<T>((to_bits(mag) & ~Tr::sign_mask) | (to_bits(sgn) & Tr::sign_mask));
}

template <typename T>
constexpr T negate_bits(T x) noexcept {
  return from_bits<T>(to_bits(x) ^ FloatTraits<T>::sign_mask);
}

/// Canonical quiet NaN of the given sign.
template <typename T>
constexpr T quiet_nan(bool negative = false) noexcept {
  using Tr = FloatTraits<T>;
  auto b = Tr::exponent_mask | Tr::quiet_bit;
  if (negative) b |= Tr::sign_mask;
  return from_bits<T>(b);
}

template <typename T>
constexpr T infinity(bool negative = false) noexcept {
  using Tr = FloatTraits<T>;
  auto b = Tr::exponent_mask;
  if (negative) b |= Tr::sign_mask;
  return from_bits<T>(b);
}

/// Map a float onto a monotone signed integer line (for ULP distance):
/// ... -2 (-minsub), -1 (-0), 0 (+0), 1 (+minsub) ...
template <typename T>
constexpr typename FloatTraits<T>::SignedBits ordered_bits(T x) noexcept {
  using Tr = FloatTraits<T>;
  const auto b = to_bits(x);
  using S = typename Tr::SignedBits;
  if (b & Tr::sign_mask)
    return -static_cast<S>(b & ~Tr::sign_mask) - 1;
  return static_cast<S>(b);
}

/// ULP distance between two finite values of like type (saturating).
template <typename T>
constexpr std::uint64_t ulp_distance(T a, T b) noexcept {
  if (is_nan_bits(a) || is_nan_bits(b)) return ~0ULL;
  const auto ia = ordered_bits(a);
  const auto ib = ordered_bits(b);
  const auto d = ia > ib ? ia - ib : ib - ia;
  return static_cast<std::uint64_t>(d);
}

/// Next representable value toward +inf (finite input).
template <typename T>
constexpr T next_up(T x) noexcept {
  using Tr = FloatTraits<T>;
  if (is_nan_bits(x)) return x;
  auto b = to_bits(x);
  if (b == (Tr::sign_mask | 0)) return from_bits<T>(typename Tr::Bits(1));  // -0 -> min sub
  if (b & Tr::sign_mask) return from_bits<T>(static_cast<typename Tr::Bits>(b - 1));
  return from_bits<T>(static_cast<typename Tr::Bits>(b + 1));
}

template <typename T>
constexpr T next_down(T x) noexcept {
  using Tr = FloatTraits<T>;
  if (is_nan_bits(x)) return x;
  auto b = to_bits(x);
  if (b == 0) return from_bits<T>(static_cast<typename Tr::Bits>(Tr::sign_mask | 1));
  if (b & Tr::sign_mask) return from_bits<T>(static_cast<typename Tr::Bits>(b + 1));
  return from_bits<T>(static_cast<typename Tr::Bits>(b - 1));
}

}  // namespace gpudiff::fp
