#pragma once
// Integer-exact IEEE-754 multiply and divide (round-to-nearest-even) for
// the operand ranges where hardware FPUs take microcode assists.
//
// x86 cores stall ~40-100 cycles when a multiply produces a subnormal
// result or a divide consumes a subnormal operand — and the campaign's
// input classes (paper Fig. 4/6: subnormals, near-underflow magnitudes)
// hit those ranges constantly, making assists a dominant cost of kernel
// execution.  soft_mul/soft_div compute the identical correctly-rounded
// result with integer mantissa arithmetic in ~10ns, assist-free.
//
// Contract: for finite nonzero operands (no NaN/Inf) the result is
// bit-identical to the hardware operation under round-to-nearest-even,
// including gradual underflow, underflow to zero and overflow to
// infinity.  fp_test.cpp enforces the contract exhaustively against the
// host FPU over randomized and directed operand classes.  Callers
// (vgpu::Fpu) route only assist-prone ranges here; everything else stays
// on the native instruction.

#include <bit>
#include <cstdint>
#include <limits>

#include "fp/bits.hpp"

namespace gpudiff::fp {

namespace detail {

/// Double-width unsigned integer for the mantissa product/quotient.
template <typename B>
struct WideOf;
template <>
struct WideOf<std::uint32_t> {
  using type = std::uint64_t;
};
template <>
struct WideOf<std::uint64_t> {
  using type = unsigned __int128;
};

/// Mantissa with explicit leading bit plus biased exponent normalized so
/// value = m * 2^(e - bias - mantissa_bits), for subnormals too.
template <typename T>
constexpr typename FloatTraits<T>::Bits decompose_finite(
    typename FloatTraits<T>::Bits abs_bits, int& e) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  e = static_cast<int>(abs_bits >> Tr::mantissa_bits);
  B m = abs_bits & Tr::mantissa_mask;
  if (e == 0) {
    const int shift = Tr::mantissa_bits + 1 -
                      (std::numeric_limits<B>::digits - std::countl_zero(m));
    m <<= shift;
    e = 1 - shift;
  } else {
    m |= (B{1} << Tr::mantissa_bits);
  }
  return m;
}

template <typename W>
constexpr int wide_countl_zero(W v) noexcept {
  if constexpr (sizeof(W) == 16) {
    const auto hi = static_cast<std::uint64_t>(v >> 64);
    if (hi) return std::countl_zero(hi);
    return 64 + std::countl_zero(static_cast<std::uint64_t>(v));
  } else {
    return std::countl_zero(v);
  }
}

/// Round `p` (value = p * 2^x, p != 0) to nearest-even at the precision of
/// T, assembling sign/exponent/mantissa bits.  `sticky_in` carries bits
/// already shifted out of p (division remainder).
template <typename T, typename W>
constexpr T assemble(W p, int x, bool sticky_in, bool negative) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  constexpr int m = Tr::mantissa_bits;
  constexpr int wbits = sizeof(W) * 8;
  const int lead = wbits - 1 - wide_countl_zero(p);  // p = [2^lead, 2^(lead+1))
  int unbiased = lead + x;                           // exponent of the value
  // Units of the result's last place: 2^(unbiased - m), floored at the
  // subnormal ulp 2^(min_normal_exponent - m).
  int ulp_exp = (unbiased < Tr::min_normal_exponent ? Tr::min_normal_exponent
                                                    : unbiased) - m;
  int drop = ulp_exp - x;  // bits of p below the ulp
  B keep;
  bool guard, sticky;
  if (drop <= 0) {
    keep = static_cast<B>(p << -drop);  // exact (fits: p has <= m+1+drop bits)
    guard = false;
    sticky = sticky_in;
  } else if (drop > wbits) {
    keep = 0;
    guard = false;
    sticky = sticky_in || p != 0;
  } else {
    keep = drop == wbits ? B{0} : static_cast<B>(p >> drop);
    guard = (p >> (drop - 1)) & 1;
    sticky = sticky_in || (drop >= 2 && (p & ((W{1} << (drop - 1)) - 1)) != 0);
  }
  if (guard && (sticky || (keep & 1))) ++keep;
  if (keep >> (m + 1)) {  // rounding carried into a new bit
    keep >>= 1;
    ++ulp_exp;
  }
  int biased = ulp_exp + m + Tr::exponent_bias;  // for a normal result
  B out;
  if (keep >> m) {
    if (biased >= Tr::max_exponent + Tr::exponent_bias)
      out = Tr::exponent_mask;  // overflow -> inf (RNE)
    else
      out = (keep - (B{1} << m)) | (static_cast<B>(biased) << m);
  } else {
    out = keep;  // subnormal or zero: exponent field 0, no hidden bit
  }
  if (negative) out |= Tr::sign_mask;
  return from_bits<T>(out);
}

/// Number of significant bits in v (0 for v == 0).
template <typename W>
constexpr int bit_length(W v) noexcept {
  return static_cast<int>(sizeof(W) * 8) - wide_countl_zero(v);
}

/// v >> count with the dropped bits folded into `sticky` (count may exceed
/// the width of W).
template <typename W>
constexpr W shift_right_sticky(W v, int count, bool& sticky) noexcept {
  if (count <= 0) return v;
  if (count >= static_cast<int>(sizeof(W) * 8)) {
    sticky = sticky || v != 0;
    return 0;
  }
  if ((v & ((W{1} << count) - 1)) != 0) sticky = true;
  return v >> count;
}

/// Mantissa division num/mb with remainder-nonzero detection; shared by
/// soft_div and the division exactness probe.
template <typename B, typename W>
inline W divide_mantissa(W num, B mb, bool& rem_nonzero) noexcept {
#if defined(__x86_64__)
  if constexpr (sizeof(B) == 8) {
    // num < 2^108 with mb >= 2^52 bounds the quotient under 2^56, so the
    // two-word hardware divide (quotient + remainder in one instruction)
    // cannot fault; the libgcc 128-bit division would cost several times
    // the assist being avoided.
    std::uint64_t quot, mod;
    std::uint64_t hi = static_cast<std::uint64_t>(num >> 64);
    std::uint64_t lo = static_cast<std::uint64_t>(num);
    asm("divq %4" : "=a"(quot), "=d"(mod) : "0"(lo), "1"(hi), "r"(static_cast<std::uint64_t>(mb)) : "cc");
    rem_nonzero = mod != 0;
    return quot;
  }
#endif
  rem_nonzero = (num % mb) != 0;
  return num / mb;
}

}  // namespace detail

/// Correctly rounded a*b for finite operands (NaN/Inf excluded by caller;
/// zeros allowed).
template <typename T>
constexpr T soft_mul(T a, T b) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  const bool neg = sign_bit(a) != sign_bit(b);
  const B aa = to_bits(a) & ~Tr::sign_mask;
  const B ab = to_bits(b) & ~Tr::sign_mask;
  if (aa == 0 || ab == 0) return from_bits<T>(neg ? Tr::sign_mask : B{0});
  int ea, eb;
  const B ma = detail::decompose_finite<T>(aa, ea);
  const B mb = detail::decompose_finite<T>(ab, eb);
  const W p = static_cast<W>(ma) * mb;
  constexpr int m = Tr::mantissa_bits;
  const int x = (ea - Tr::exponent_bias - m) + (eb - Tr::exponent_bias - m);
  return detail::assemble<T, W>(p, x, /*sticky_in=*/false, neg);
}

/// Correctly rounded a/b for finite nonzero operands.
template <typename T>
inline T soft_div(T a, T b) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  constexpr int m = Tr::mantissa_bits;
  const bool neg = sign_bit(a) != sign_bit(b);
  int ea, eb;
  const B ma = detail::decompose_finite<T>(to_bits(a) & ~Tr::sign_mask, ea);
  const B mb = detail::decompose_finite<T>(to_bits(b) & ~Tr::sign_mask, eb);
  // m+3 extra bits keep a full mantissa plus guard bit in the quotient;
  // the remainder supplies the sticky bit exactly.
  const W num = static_cast<W>(ma) << (m + 3);
  bool rem = false;
  const W q = detail::divide_mantissa<B, W>(num, mb, rem);
  const int x = (ea - eb) - (m + 3);
  return detail::assemble<T, W>(q, x, rem, neg);
}

namespace detail {

/// True when the value p * 2^x (p != 0) does not fit exactly in T —
/// i.e. rounding at T's (possibly subnormal) ulp drops nonzero bits.
/// Overflow beyond T's finite range is inexact by definition but is
/// checked by callers via the rounded result, not here.
template <typename T, typename W>
constexpr bool drops_bits(W p, int x) noexcept {
  using Tr = FloatTraits<T>;
  constexpr int m = Tr::mantissa_bits;
  const int lead = bit_length(p) - 1;
  const int unbiased = lead + x;
  const int ulp_exp = (unbiased < Tr::min_normal_exponent
                           ? Tr::min_normal_exponent
                           : unbiased) - m;
  const int drop = ulp_exp - x;
  if (drop <= 0) return false;
  if (drop >= static_cast<int>(sizeof(W) * 8)) return p != 0;
  return (p & ((W{1} << drop) - 1)) != 0;
}

}  // namespace detail

/// True when a*b rounds inexactly in T (finite nonzero operands).  Replaces
/// the std::fma(a, b, -r) error-free probe on assist-prone operands: the
/// probe itself would take the very subnormal-operand microcode assist the
/// soft multiply avoided.
template <typename T>
constexpr bool mul_rounds_inexact(T a, T b) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  const B aa = to_bits(a) & ~Tr::sign_mask;
  const B ab = to_bits(b) & ~Tr::sign_mask;
  if (aa == 0 || ab == 0) return false;  // exact signed zero
  int ea, eb;
  const B ma = detail::decompose_finite<T>(aa, ea);
  const B mb = detail::decompose_finite<T>(ab, eb);
  constexpr int m = Tr::mantissa_bits;
  const W p = static_cast<W>(ma) * mb;
  const int x = (ea - Tr::exponent_bias - m) + (eb - Tr::exponent_bias - m);
  return detail::drops_bits<T, W>(p, x);
}

/// True when a/b rounds inexactly in T (finite nonzero operands).
template <typename T>
inline bool div_rounds_inexact(T a, T b) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  constexpr int m = Tr::mantissa_bits;
  int ea, eb;
  const B ma = detail::decompose_finite<T>(to_bits(a) & ~Tr::sign_mask, ea);
  const B mb = detail::decompose_finite<T>(to_bits(b) & ~Tr::sign_mask, eb);
  const W num = static_cast<W>(ma) << (m + 3);
  bool rem = false;
  const W q = detail::divide_mantissa<B, W>(num, mb, rem);
  if (rem) return true;
  const int x = (ea - eb) - (m + 3);
  return detail::drops_bits<T, W>(q, x);
}

/// Exact float -> double widening without the hardware conversion's
/// denormal-operand assist (CVTSS2SD stalls on subnormal inputs).
/// Finite inputs only; always exact.
constexpr double soft_promote(float v) noexcept {
  using Tr = FloatTraits<float>;
  const std::uint32_t bits = to_bits(v);
  const std::uint32_t abs = bits & ~Tr::sign_mask;
  const bool neg = (bits & Tr::sign_mask) != 0;
  if (abs == 0) return neg ? -0.0 : 0.0;
  int e;
  const std::uint32_t mant = detail::decompose_finite<float>(abs, e);
  return detail::assemble<double, std::uint64_t>(
      mant, (e - Tr::exponent_bias) - Tr::mantissa_bits, false, neg);
}

/// Correctly rounded double -> float narrowing (RNE) without the
/// conversion's denormal-result assist (CVTSD2SS stalls when the rounded
/// float is subnormal).  Finite inputs only.
constexpr float soft_demote(double v) noexcept {
  using Tr = FloatTraits<double>;
  const std::uint64_t bits = to_bits(v);
  const std::uint64_t abs = bits & ~Tr::sign_mask;
  const bool neg = (bits & Tr::sign_mask) != 0;
  if (abs == 0) return neg ? -0.0f : 0.0f;
  int e;
  const std::uint64_t mant = detail::decompose_finite<double>(abs, e);
  return detail::assemble<float, std::uint64_t>(
      mant, (e - Tr::exponent_bias) - Tr::mantissa_bits, false, neg);
}

/// Correctly rounded fma(a, b, c) for finite operands (NaN/Inf excluded by
/// caller; zeros allowed).  Bit-identical to the hardware fused operation
/// under round-to-nearest-even, including gradual underflow and overflow
/// to infinity — the contract fp_test.cpp enforces against std::fma.
template <typename T>
inline T soft_fma(T a, T b, T c) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  constexpr int m = Tr::mantissa_bits;
  constexpr int wbits = sizeof(W) * 8;
  constexpr int kGuard = 3;

  const bool pneg = sign_bit(a) != sign_bit(b);
  const bool cneg = sign_bit(c);
  const B aa = to_bits(a) & ~Tr::sign_mask;
  const B ab = to_bits(b) & ~Tr::sign_mask;
  const B ac = to_bits(c) & ~Tr::sign_mask;

  // Degenerate product: IEEE addition semantics with signed zeros.
  if (aa == 0 || ab == 0) {
    if (ac != 0) return c;
    return from_bits<T>(pneg && cneg ? Tr::sign_mask : B{0});
  }
  int ea, eb;
  const B ma = detail::decompose_finite<T>(aa, ea);
  const B mb = detail::decompose_finite<T>(ab, eb);
  const W pm = static_cast<W>(ma) * mb;  // exact, <= 2m+2 bits
  const int px = (ea - Tr::exponent_bias - m) + (eb - Tr::exponent_bias - m);
  if (ac == 0) return detail::assemble<T, W>(pm, px, false, pneg);

  int ec;
  const B mc = detail::decompose_finite<T>(ac, ec);
  const W cm = static_cast<W>(mc);
  const int cx = ec - Tr::exponent_bias - m;

  // Align both addends to one frame exponent f; x2 carries the sticky bit.
  //   * Near/overlapping magnitudes: the product's own frame keeps every
  //     product bit, so catastrophic cancellation against c is exact
  //     (c shifts LEFT there whenever its msb is near the product's).
  //   * c far above the product: anchor on c with guard bits; the product
  //     collapses into guard/sticky, and cancellation then loses at most
  //     one leading bit, which kGuard covers.
  bool sticky = false;
  W x1, x2;
  int f;
  bool neg1, neg2;
  if (cx - px <= wbits - 2 - detail::bit_length(cm)) {
    f = px;
    x1 = pm;
    neg1 = pneg;
    x2 = cx >= f ? cm << (cx - f)
                 : detail::shift_right_sticky(cm, f - cx, sticky);
    neg2 = cneg;
  } else {
    f = cx - kGuard;
    x1 = cm << kGuard;
    neg1 = cneg;
    x2 = detail::shift_right_sticky(pm, f - px, sticky);
    neg2 = pneg;
  }

  if (neg1 == neg2)
    return detail::assemble<T, W>(x1 + x2, f, sticky, neg1);
  if (x1 > x2) {
    // True value = x1 - (x2 + frac): borrow one ulp of the frame when
    // sticky carries a dropped fraction, keeping the sticky meaning "the
    // true magnitude is strictly above the integer part".
    const W mag = x1 - x2 - static_cast<W>(sticky ? 1 : 0);
    return detail::assemble<T, W>(mag, f, sticky, neg1);
  }
  if (x2 > x1)
    return detail::assemble<T, W>(x2 - x1, f, sticky, neg2);
  // Exact cancellation (sticky is provably clear here): +0 under RNE.
  return from_bits<T>(B{0});
}

}  // namespace gpudiff::fp
