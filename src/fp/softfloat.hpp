#pragma once
// Integer-exact IEEE-754 multiply and divide (round-to-nearest-even) for
// the operand ranges where hardware FPUs take microcode assists.
//
// x86 cores stall ~40-100 cycles when a multiply produces a subnormal
// result or a divide consumes a subnormal operand — and the campaign's
// input classes (paper Fig. 4/6: subnormals, near-underflow magnitudes)
// hit those ranges constantly, making assists a dominant cost of kernel
// execution.  soft_mul/soft_div compute the identical correctly-rounded
// result with integer mantissa arithmetic in ~10ns, assist-free.
//
// Contract: for finite nonzero operands (no NaN/Inf) the result is
// bit-identical to the hardware operation under round-to-nearest-even,
// including gradual underflow, underflow to zero and overflow to
// infinity.  fp_test.cpp enforces the contract exhaustively against the
// host FPU over randomized and directed operand classes.  Callers
// (vgpu::Fpu) route only assist-prone ranges here; everything else stays
// on the native instruction.

#include <bit>
#include <cstdint>
#include <limits>

#include "fp/bits.hpp"

namespace gpudiff::fp {

namespace detail {

/// Double-width unsigned integer for the mantissa product/quotient.
template <typename B>
struct WideOf;
template <>
struct WideOf<std::uint32_t> {
  using type = std::uint64_t;
};
template <>
struct WideOf<std::uint64_t> {
  using type = unsigned __int128;
};

/// Mantissa with explicit leading bit plus biased exponent normalized so
/// value = m * 2^(e - bias - mantissa_bits), for subnormals too.
template <typename T>
constexpr typename FloatTraits<T>::Bits decompose_finite(
    typename FloatTraits<T>::Bits abs_bits, int& e) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  e = static_cast<int>(abs_bits >> Tr::mantissa_bits);
  B m = abs_bits & Tr::mantissa_mask;
  if (e == 0) {
    const int shift = Tr::mantissa_bits + 1 -
                      (std::numeric_limits<B>::digits - std::countl_zero(m));
    m <<= shift;
    e = 1 - shift;
  } else {
    m |= (B{1} << Tr::mantissa_bits);
  }
  return m;
}

template <typename W>
constexpr int wide_countl_zero(W v) noexcept {
  if constexpr (sizeof(W) == 16) {
    const auto hi = static_cast<std::uint64_t>(v >> 64);
    if (hi) return std::countl_zero(hi);
    return 64 + std::countl_zero(static_cast<std::uint64_t>(v));
  } else {
    return std::countl_zero(v);
  }
}

/// Round `p` (value = p * 2^x, p != 0) to nearest-even at the precision of
/// T, assembling sign/exponent/mantissa bits.  `sticky_in` carries bits
/// already shifted out of p (division remainder).
template <typename T, typename W>
constexpr T assemble(W p, int x, bool sticky_in, bool negative) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  constexpr int m = Tr::mantissa_bits;
  constexpr int wbits = sizeof(W) * 8;
  const int lead = wbits - 1 - wide_countl_zero(p);  // p = [2^lead, 2^(lead+1))
  int unbiased = lead + x;                           // exponent of the value
  // Units of the result's last place: 2^(unbiased - m), floored at the
  // subnormal ulp 2^(min_normal_exponent - m).
  int ulp_exp = (unbiased < Tr::min_normal_exponent ? Tr::min_normal_exponent
                                                    : unbiased) - m;
  int drop = ulp_exp - x;  // bits of p below the ulp
  B keep;
  bool guard, sticky;
  if (drop <= 0) {
    keep = static_cast<B>(p << -drop);  // exact (fits: p has <= m+1+drop bits)
    guard = false;
    sticky = sticky_in;
  } else if (drop > wbits) {
    keep = 0;
    guard = false;
    sticky = sticky_in || p != 0;
  } else {
    keep = drop == wbits ? B{0} : static_cast<B>(p >> drop);
    guard = (p >> (drop - 1)) & 1;
    sticky = sticky_in || (drop >= 2 && (p & ((W{1} << (drop - 1)) - 1)) != 0);
  }
  if (guard && (sticky || (keep & 1))) ++keep;
  if (keep >> (m + 1)) {  // rounding carried into a new bit
    keep >>= 1;
    ++ulp_exp;
  }
  int biased = ulp_exp + m + Tr::exponent_bias;  // for a normal result
  B out;
  if (keep >> m) {
    if (biased >= Tr::max_exponent + Tr::exponent_bias)
      out = Tr::exponent_mask;  // overflow -> inf (RNE)
    else
      out = (keep - (B{1} << m)) | (static_cast<B>(biased) << m);
  } else {
    out = keep;  // subnormal or zero: exponent field 0, no hidden bit
  }
  if (negative) out |= Tr::sign_mask;
  return from_bits<T>(out);
}

}  // namespace detail

/// Correctly rounded a*b for finite operands (NaN/Inf excluded by caller;
/// zeros allowed).
template <typename T>
constexpr T soft_mul(T a, T b) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  const bool neg = sign_bit(a) != sign_bit(b);
  const B aa = to_bits(a) & ~Tr::sign_mask;
  const B ab = to_bits(b) & ~Tr::sign_mask;
  if (aa == 0 || ab == 0) return from_bits<T>(neg ? Tr::sign_mask : B{0});
  int ea, eb;
  const B ma = detail::decompose_finite<T>(aa, ea);
  const B mb = detail::decompose_finite<T>(ab, eb);
  const W p = static_cast<W>(ma) * mb;
  constexpr int m = Tr::mantissa_bits;
  const int x = (ea - Tr::exponent_bias - m) + (eb - Tr::exponent_bias - m);
  return detail::assemble<T, W>(p, x, /*sticky_in=*/false, neg);
}

/// Correctly rounded a/b for finite nonzero operands.
template <typename T>
inline T soft_div(T a, T b) noexcept {
  using Tr = FloatTraits<T>;
  using B = typename Tr::Bits;
  using W = typename detail::WideOf<B>::type;
  constexpr int m = Tr::mantissa_bits;
  const bool neg = sign_bit(a) != sign_bit(b);
  int ea, eb;
  const B ma = detail::decompose_finite<T>(to_bits(a) & ~Tr::sign_mask, ea);
  const B mb = detail::decompose_finite<T>(to_bits(b) & ~Tr::sign_mask, eb);
  // m+3 extra bits keep a full mantissa plus guard bit in the quotient;
  // the remainder supplies the sticky bit exactly.
  const W num = static_cast<W>(ma) << (m + 3);
  W q;
  bool rem;
#if defined(__x86_64__)
  if constexpr (sizeof(B) == 8) {
    // num < 2^108 with mb >= 2^52 bounds the quotient under 2^56, so the
    // two-word hardware divide (quotient + remainder in one instruction)
    // cannot fault; the libgcc 128-bit division would cost several times
    // the assist being avoided.
    std::uint64_t quot, mod;
    std::uint64_t hi = static_cast<std::uint64_t>(num >> 64);
    std::uint64_t lo = static_cast<std::uint64_t>(num);
    asm("divq %4" : "=a"(quot), "=d"(mod) : "0"(lo), "1"(hi), "r"(static_cast<std::uint64_t>(mb)) : "cc");
    q = quot;
    rem = mod != 0;
  } else
#endif
  {
    q = num / mb;
    rem = (num % mb) != 0;
  }
  const int x = (ea - eb) - (m + 3);
  return detail::assemble<T, W>(q, x, rem, neg);
}

}  // namespace gpudiff::fp
