#include "campaign/merge.hpp"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <stdexcept>
#include <string_view>

#include "campaign/checkpoint.hpp"

namespace gpudiff::campaign {

diff::CampaignResults merge_blocks(const support::Json& config_echo,
                                   std::vector<ResultBlock> blocks) {
  diff::CampaignResults results;
  results.seed = static_cast<std::uint64_t>(config_echo.at("seed").as_int());
  if (!ir::parse_precision(config_echo.at("precision").as_string(),
                           &results.precision))
    throw std::runtime_error("merge_blocks: bad precision in fingerprint");
  results.hipify_converted = config_echo.at("hipify_converted").as_bool();
  results.num_programs =
      static_cast<int>(config_echo.at("num_programs").as_int());
  results.inputs_per_program =
      static_cast<int>(config_echo.at("inputs_per_program").as_int());
  for (const auto& l : config_echo.at("levels").as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("merge_blocks: bad opt level in fingerprint");
    results.levels.push_back(level);
  }
  results.platforms = platform_names_from_echo(config_echo);
  const auto max_records =
      static_cast<std::size_t>(config_echo.at("max_records").as_int());

  std::sort(blocks.begin(), blocks.end(),
            [](const ResultBlock& a, const ResultBlock& b) {
              return std::tie(a.begin, a.end) < std::tie(b.begin, b.end);
            });
  std::uint64_t expected_begin = 0;
  for (const ResultBlock& b : blocks) {
    if (b.config_echo != config_echo)
      throw std::runtime_error(
          "merge_blocks: block [" + std::to_string(b.begin) + ", " +
          std::to_string(b.end) +
          ") was produced under a different campaign configuration");
    if (b.begin > b.end)
      throw std::runtime_error("merge_blocks: inverted block range");
    if (b.begin != expected_begin)
      throw std::runtime_error(
          "merge_blocks: blocks do not tile the campaign (expected a block "
          "starting at " + std::to_string(expected_begin) + ", got " +
          std::to_string(b.begin) + ")");
    if (b.per_level.size() != results.levels.size())
      throw std::runtime_error("merge_blocks: level count mismatch");
    expected_begin = b.end;
  }
  if (expected_begin != static_cast<std::uint64_t>(results.num_programs))
    throw std::runtime_error("merge_blocks: blocks cover [0, " +
                             std::to_string(expected_begin) + ") of " +
                             std::to_string(results.num_programs) +
                             " programs");

  results.per_level.assign(
      results.levels.size(),
      diff::LevelStats::zero(results.platforms.size()));
  for (const ResultBlock& b : blocks)
    for (std::size_t li = 0; li < results.per_level.size(); ++li)
      results.per_level[li].merge(b.per_level[li]);
  // Blocks are contiguous program ranges in range order, and each block's
  // records are its canonical-order prefix, so concatenation is the global
  // canonical order; re-applying the cap keeps the lowest
  // (program_index, input_index, level) records — exactly what the
  // unsharded run retains.
  for (ResultBlock& b : blocks) {
    if (results.records.size() >= max_records) break;
    diff::append_capped_records(results.records, std::move(b.records),
                                max_records);
  }
  return results;
}

diff::CampaignResults merge_shards(std::vector<ShardProgress> parts) {
  if (parts.empty())
    throw std::runtime_error("merge_shards: no shard states to merge");
  std::sort(parts.begin(), parts.end(),
            [](const ShardProgress& a, const ShardProgress& b) {
              return a.shard.index < b.shard.index;
            });
  const int count = parts.front().shard.count;
  if (static_cast<std::size_t>(count) != parts.size())
    throw std::runtime_error(
        "merge_shards: have " + std::to_string(parts.size()) + " shards of " +
        std::to_string(count));
  const support::Json echo = parts.front().config_echo;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const ShardProgress& p = parts[i];
    if (p.shard.count != count || p.shard.index != static_cast<int>(i))
      throw std::runtime_error("merge_shards: shard set does not cover 0.." +
                               std::to_string(count - 1) + " exactly (saw " +
                               to_string(p.shard) + ")");
    if (!p.complete())
      throw std::runtime_error(
          "merge_shards: shard " + to_string(p.shard) + " is incomplete (" +
          std::to_string(p.cursor - p.begin) + "/" +
          std::to_string(p.end - p.begin) + " programs)");
  }

  std::vector<ResultBlock> blocks;
  blocks.reserve(parts.size());
  for (ShardProgress& p : parts) {
    ResultBlock b;
    b.config_echo = std::move(p.config_echo);
    b.begin = p.begin;
    b.end = p.end;
    b.per_level = std::move(p.per_level);
    b.records = std::move(p.records);
    blocks.push_back(std::move(b));
  }
  try {
    return merge_blocks(echo, std::move(blocks));
  } catch (const std::runtime_error& e) {
    // Re-badge block-core diagnostics so shard-mode callers see only the
    // front end they actually used.
    std::string what = e.what();
    constexpr std::string_view prefix = "merge_blocks: ";
    if (what.rfind(prefix, 0) == 0) what.erase(0, prefix.size());
    throw std::runtime_error("merge_shards: " + what);
  }
}

std::vector<ShardProgress> load_shards(const std::string& dir) {
  std::vector<ShardProgress> parts;
  if (!std::filesystem::is_directory(dir))
    throw std::runtime_error("load_shards: not a directory: " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // Crash litter from a killed checkpointer ("shard-*.json.tmp*" — never
    // a whole checkpoint) must not be read as a shard; write_file_atomic
    // means anything actually named *.json is whole.
    if (name.find(".tmp") != std::string::npos) continue;
    if (name.rfind("shard-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  parts.reserve(paths.size());
  for (const auto& path : paths) {
    try {
      parts.push_back(load_checkpoint(path));
    } catch (const std::exception& e) {
      // Name the file: "parse error at byte 17" is useless across a
      // directory of shards; "shard-3-of-8.json: ..." is actionable.
      throw std::runtime_error("load_shards: " + path + ": " + e.what());
    }
  }
  return parts;
}

diff::CampaignResults merge_checkpoint_dir(const std::string& dir) {
  return merge_shards(load_shards(dir));
}

}  // namespace gpudiff::campaign
