#include "campaign/merge.hpp"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <stdexcept>

#include "campaign/checkpoint.hpp"

namespace gpudiff::campaign {

diff::CampaignResults merge_shards(std::vector<ShardProgress> parts) {
  if (parts.empty())
    throw std::runtime_error("merge_shards: no shard states to merge");
  std::sort(parts.begin(), parts.end(),
            [](const ShardProgress& a, const ShardProgress& b) {
              return a.shard.index < b.shard.index;
            });
  const int count = parts.front().shard.count;
  if (static_cast<std::size_t>(count) != parts.size())
    throw std::runtime_error(
        "merge_shards: have " + std::to_string(parts.size()) + " shards of " +
        std::to_string(count));
  const support::Json& echo = parts.front().config_echo;
  std::uint64_t expected_begin = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const ShardProgress& p = parts[i];
    if (p.shard.count != count || p.shard.index != static_cast<int>(i))
      throw std::runtime_error("merge_shards: shard set does not cover 0.." +
                               std::to_string(count - 1) + " exactly (saw " +
                               to_string(p.shard) + ")");
    if (p.config_echo != echo)
      throw std::runtime_error(
          "merge_shards: shard " + to_string(p.shard) +
          " was run under a different campaign configuration");
    if (!p.complete())
      throw std::runtime_error(
          "merge_shards: shard " + to_string(p.shard) + " is incomplete (" +
          std::to_string(p.cursor - p.begin) + "/" +
          std::to_string(p.end - p.begin) + " programs)");
    if (p.begin != expected_begin)
      throw std::runtime_error("merge_shards: shard " + to_string(p.shard) +
                               " range does not abut its predecessor");
    expected_begin = p.end;
  }

  diff::CampaignResults results;
  results.seed = static_cast<std::uint64_t>(echo.at("seed").as_int());
  if (!ir::parse_precision(echo.at("precision").as_string(), &results.precision))
    throw std::runtime_error("merge_shards: bad precision in fingerprint");
  results.hipify_converted = echo.at("hipify_converted").as_bool();
  results.num_programs = static_cast<int>(echo.at("num_programs").as_int());
  results.inputs_per_program =
      static_cast<int>(echo.at("inputs_per_program").as_int());
  for (const auto& l : echo.at("levels").as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("merge_shards: bad opt level in fingerprint");
    results.levels.push_back(level);
  }
  if (expected_begin != static_cast<std::uint64_t>(results.num_programs))
    throw std::runtime_error("merge_shards: shards do not cover the campaign");
  const auto max_records =
      static_cast<std::size_t>(echo.at("max_records").as_int());

  results.per_level.assign(results.levels.size(), diff::LevelStats{});
  for (const ShardProgress& p : parts) {
    if (p.per_level.size() != results.per_level.size())
      throw std::runtime_error("merge_shards: level count mismatch");
    for (std::size_t li = 0; li < results.per_level.size(); ++li)
      results.per_level[li].merge(p.per_level[li]);
  }
  // Shards are contiguous program ranges in index order, and each shard's
  // records are its canonical-order prefix, so concatenation is the global
  // canonical order; re-applying the cap keeps the lowest
  // (program_index, input_index, level) records — exactly what the
  // unsharded run retains.
  for (ShardProgress& p : parts) {
    if (results.records.size() >= max_records) break;
    diff::append_capped_records(results.records, std::move(p.records),
                                max_records);
  }
  return results;
}

std::vector<ShardProgress> load_shards(const std::string& dir) {
  std::vector<ShardProgress> parts;
  if (!std::filesystem::is_directory(dir))
    throw std::runtime_error("load_shards: not a directory: " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  parts.reserve(paths.size());
  for (const auto& path : paths) parts.push_back(load_checkpoint(path));
  return parts;
}

diff::CampaignResults merge_checkpoint_dir(const std::string& dir) {
  return merge_shards(load_shards(dir));
}

}  // namespace gpudiff::campaign
