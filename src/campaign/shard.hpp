#pragma once
// Campaign orchestration: sharded, checkpointed, resumable execution of
// paper-scale differential campaigns.
//
// The paper's headline campaign is 652,600 runs; a single in-process loop
// (diff::run_campaign) bounds throughput to one machine and loses all work
// on a crash.  This layer splits the program-index range into deterministic
// shards that any job launcher can distribute across machines, executes one
// shard in checkpointed blocks, and (campaign/merge.hpp) folds the shard
// states back into one CampaignResults that is byte-identical to the
// unsharded run — per-program seeds derive from (seed, program_index), so
// carving the index range loses nothing.
//
//   ShardSpec   — "shard i of N": a contiguous program-index subrange
//   ShardProgress — one shard's accumulated state + resume cursor
//   run_shard   — the checkpointed shard executor

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "diff/campaign.hpp"
#include "support/json.hpp"

namespace gpudiff::campaign {

/// "Shard i of N": shard `index` owns the contiguous program-index range
/// [n*i/N, n*(i+1)/N) of an n-program campaign.  The union over all shards
/// is exactly [0, n) with no overlap, and ranges differ in size by at most
/// one program.
struct ShardSpec {
  int index = 0;
  int count = 1;

  /// Throws std::invalid_argument unless 0 <= index < count.
  void validate() const;
  /// This shard's [begin, end) program-index range.
  std::pair<std::uint64_t, std::uint64_t> program_range(int num_programs) const;

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Parse "i/N" (e.g. "2/8").  Returns false on malformed or out-of-range.
bool parse_shard(const std::string& text, ShardSpec* out);
std::string to_string(const ShardSpec& spec);

/// One shard's accumulated campaign state: everything a checkpoint persists
/// and everything the merge stage needs.  `config_echo` is the full
/// configuration fingerprint (campaign::config_to_json) — resume and merge
/// both refuse state produced under a different configuration.
struct ShardProgress {
  support::Json config_echo;
  ShardSpec shard;
  std::uint64_t begin = 0;   ///< first program index owned by the shard
  std::uint64_t end = 0;     ///< one past the last owned index
  std::uint64_t cursor = 0;  ///< next program index to execute (resume point)
  std::vector<diff::LevelStats> per_level;       ///< aligned with config levels
  std::vector<diff::DiscrepancyRecord> records;  ///< canonical order, capped

  bool complete() const noexcept { return cursor >= end; }
};

struct ShardRunOptions {
  ShardSpec shard;
  /// Directory for write-then-rename checkpoint snapshots; empty disables
  /// checkpointing (pure in-memory shard run).
  std::string checkpoint_dir;
  /// Programs executed between checkpoints.  Each block runs in parallel
  /// (config.threads); block boundaries are the only resume points, so the
  /// result is deterministic for any (threads, checkpoint_every, kill) mix.
  int checkpoint_every = 64;
  /// Pick up from this shard's checkpoint in checkpoint_dir if one exists
  /// (no-op when none does — a cold resume simply starts from the top).
  bool resume = false;
  /// Called after every completed block with the current progress.
  std::function<void(const ShardProgress&)> on_progress;
  /// Polled between blocks; returning true stops the run after the last
  /// completed checkpoint (the graceful half of kill-and-resume).
  std::function<bool()> stop_requested;
};

/// Execute one shard of `config`'s campaign.  Returns the shard state,
/// which is complete() unless stop_requested interrupted it.  With a
/// checkpoint_dir, the state on disk always matches a block boundary, so a
/// killed process resumes with `resume = true` and loses at most one block.
ShardProgress run_shard(const diff::CampaignConfig& config,
                        const ShardRunOptions& options);

}  // namespace gpudiff::campaign
