#pragma once
// LeaseTransport: the claim/heartbeat/steal/publish-done/list-done state
// machine behind the work-stealing scheduler, abstracted from its
// original shared-directory implementation so the same worker policy loop
// (scheduler.hpp run_worker) drives either backend:
//
//   FsLeaseTransport  — the PR 4 shared-directory LeaseBoard, unchanged in
//                       behavior and on-disk bytes; one filesystem is the
//                       whole fleet's coordination medium.
//   TcpLeaseTransport — a line-framed JSON protocol (net/wire.hpp) against
//                       a gpudiff coordinator (campaign/coordinator.hpp);
//                       heterogeneous machines coordinate over the
//                       network, no shared mount required.
//
// The lease protocol's standing invariants are transport-agnostic and
// every backend must preserve them: at-least-once execution (never mutual
// exclusion), done blocks as pure functions of (config fingerprint,
// range), done-file immutability, and ownership-checked heartbeat/release
// whose worst-case failure is duplicate work, never a wrong byte.
//
// Network elasticity (TCP backend): every coordinator-path operation
// retries with the capped-backoff-deterministic-jitter RetryPolicy, and a
// worker that cannot reach the coordinator degrades gracefully — it
// finishes its in-flight lease, journals the block locally (same atomic
// write-then-rename, same bytes as a published done file), and
// re-publishes the journal on reconnect.  Duplicate publishes are safe by
// the purity invariant.

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/merge.hpp"
#include "campaign/scheduler.hpp"
#include "net/socket.hpp"
#include "support/json.hpp"
#include "support/retry.hpp"

namespace gpudiff::campaign {

/// A transient transport failure: the operation did not happen (or its
/// outcome is unknown) after exhausting the retry policy.  Callers treat
/// it as "no progress right now" — every protocol operation is idempotent
/// or at-least-once-safe, so a later retry of the whole operation is
/// always sound.  Permanent refusals (configuration mismatch, protocol
/// version skew) are plain std::runtime_error and must not be retried.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The scheduler-facing lease protocol.  One instance per worker; not
/// thread-safe except for heartbeat(), which the lease heartbeat timer
/// calls from its own thread (implementations serialize internally).
class LeaseTransport {
 public:
  virtual ~LeaseTransport() = default;

  virtual const std::string& worker_id() const noexcept = 0;

  /// Publish the campaign manifest if this worker is first, else verify
  /// the existing campaign matches (config fingerprint + lease geometry).
  /// Throws std::runtime_error on mismatch, TransportError when the
  /// backend is unreachable.
  virtual void publish_or_verify_manifest(const support::Json& config_echo,
                                          int lease_size, int count) = 0;

  virtual bool is_done(int lease) = 0;
  /// Every lease index with a published done block, ascending.
  virtual std::vector<int> list_done() = 0;
  /// Claim the lease exclusively; idempotent for this worker.
  virtual bool try_claim(int lease) = 0;
  /// Seconds since the current claim's last heartbeat; negative if the
  /// lease is unclaimed.
  virtual double claim_age_seconds(int lease) = 0;
  /// Clear whatever claim exists and claim afresh; false if no claim
  /// existed (the steal lost its race).
  virtual bool try_steal(int lease) = 0;
  /// Clear a claim without taking the lease (stale claim stranded on an
  /// already-done lease).  Best-effort.
  virtual void reap_claim(int lease) = 0;
  /// Refresh this worker's heartbeat.  Best-effort and non-throwing:
  /// returns false when the claim is gone, stolen, or the backend is
  /// unreachable — execution continues either way, protected by
  /// determinism.  Safe to call from the heartbeat timer thread.
  virtual bool heartbeat(int lease) = 0;
  /// Publish the lease's completed ResultBlock.  Must not lose the block:
  /// the TCP backend journals locally when the coordinator is
  /// unreachable and re-publishes on reconnect.
  virtual void publish_done(int lease, int count, const ResultBlock& block) = 0;
  /// Remove this worker's claim (ownership-checked, best-effort).
  virtual void release(int lease) = 0;

  /// Periodic housekeeping at the caller's staleness window: the
  /// filesystem backend reaps temp litter stranded by killed publishers,
  /// the TCP backend flushes any journaled blocks it can.
  virtual void maintain(double stale_after_seconds) = 0;
  /// Flush everything pending (journaled blocks).  True when nothing
  /// remains buffered locally — only then may a worker report the
  /// campaign complete.
  virtual bool drain() = 0;
};

/// The PR 4 shared-directory board behind the transport interface.
/// Behavior and on-disk formats are byte-identical to driving LeaseBoard
/// directly — this class only forwards.
class FsLeaseTransport : public LeaseTransport {
 public:
  FsLeaseTransport(std::string dir, std::string worker_id);

  const std::string& worker_id() const noexcept override;
  void publish_or_verify_manifest(const support::Json& config_echo,
                                  int lease_size, int count) override;
  bool is_done(int lease) override;
  std::vector<int> list_done() override;
  bool try_claim(int lease) override;
  double claim_age_seconds(int lease) override;
  bool try_steal(int lease) override;
  void reap_claim(int lease) override;
  bool heartbeat(int lease) override;
  void publish_done(int lease, int count, const ResultBlock& block) override;
  void release(int lease) override;
  void maintain(double stale_after_seconds) override;
  bool drain() override { return true; }

  LeaseBoard& board() noexcept { return board_; }

 private:
  LeaseBoard board_;
  int lease_count_ = 0;
};

struct TcpTransportOptions {
  std::string host;  ///< coordinator host
  int port = 0;      ///< coordinator port
  std::string worker_id;
  /// Local journal directory for publishes that cannot reach the
  /// coordinator; empty defaults to
  /// <temp>/gpudiff-journal-<worker_id>.
  std::string journal_dir;
  support::RetryPolicy retry;
  double request_timeout_seconds = 5.0;
  double connect_timeout_seconds = 2.0;
};

/// The network backend: one coordinator connection, reconnected on demand
/// with RetryPolicy backoff, every request/response seq-tagged so frames
/// duplicated or delayed in flight cannot desynchronize the stream.
class TcpLeaseTransport : public LeaseTransport {
 public:
  explicit TcpLeaseTransport(TcpTransportOptions options);

  const std::string& worker_id() const noexcept override;
  void publish_or_verify_manifest(const support::Json& config_echo,
                                  int lease_size, int count) override;
  bool is_done(int lease) override;
  std::vector<int> list_done() override;
  bool try_claim(int lease) override;
  double claim_age_seconds(int lease) override;
  bool try_steal(int lease) override;
  void reap_claim(int lease) override;
  bool heartbeat(int lease) override;
  void publish_done(int lease, int count, const ResultBlock& block) override;
  void release(int lease) override;
  void maintain(double stale_after_seconds) override;
  bool drain() override;

  /// Blocks journaled locally and not yet re-published (for tests and
  /// progress reporting).
  int journaled_blocks() const;

 private:
  support::Json request(support::Json req);          // locks, retries
  support::Json request_locked(support::Json req);   // one attempt cycle
  void ensure_connected_locked();
  support::Json roundtrip_locked(const support::Json& req);
  void flush_journal_locked();
  std::string journal_path(int lease) const;

  TcpTransportOptions options_;
  mutable std::mutex mu_;  ///< serializes socket use (heartbeat timer)
  net::Socket socket_;
  bool hello_ready_ = false;     ///< manifest params recorded
  support::Json hello_config_;   ///< config echo carried by the hello
  int lease_size_ = 0;
  int lease_count_ = 0;
  std::int64_t seq_ = 0;
};

}  // namespace gpudiff::campaign
