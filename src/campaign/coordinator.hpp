#pragma once
// The TCP lease coordinator: the claim/heartbeat/steal/publish state
// machine of campaign/scheduler.hpp served over the line-framed JSON
// protocol of net/wire.hpp, from an in-memory board journaled to disk.
//
// Durability model: the coordinator's state directory uses the *same
// on-disk layout as a shared-directory lease dir* — campaign.json
// manifest, lease-<k>.claim markers, lease-<k>.done.json blocks, all in
// the bytes the filesystem board would write — so (a) a SIGKILLed
// coordinator restarted on the same directory recovers every claim and
// every done block, and (b) the ordinary merge stage
// (campaign::merge_lease_dir) consumes a coordinator directory directly;
// there is no second merge path to keep byte-identical.
//
// Claims are persisted on every transition (claim/steal/release/reap);
// heartbeats are deliberately memory-only.  A restart therefore resets
// every recovered claim's heartbeat to "now": live owners re-beat within
// one heartbeat interval, and dead owners' claims age past the staleness
// window and are stolen — exactly the recovery the protocol already
// defines, with no heartbeat-persistence write amplification.
//
// Concurrency: one accept loop plus one thread per connection, every
// state transition under a single mutex (the state machine is tiny; the
// expensive work — executing leases — happens on the workers).  Each
// connection must open with a versioned hello carrying the campaign
// fingerprint; mismatches are refused fatally at connect.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "support/json.hpp"

namespace gpudiff::campaign {

struct CoordinatorOptions {
  /// Durable state directory (created if needed).  FS lease-dir layout;
  /// restartable; mergeable with merge_lease_dir.
  std::string dir;
  std::string bind_host = "127.0.0.1";
  /// 0 binds an ephemeral port; see Coordinator::port().
  int port = 0;
  /// Per-connection I/O timeout.  Reads poll at this granularity, so it
  /// also bounds how long stop() waits for connection threads.
  double io_timeout_seconds = 0.25;
};

class Coordinator {
 public:
  /// Binds the listener and recovers any prior state from options.dir
  /// (manifest, done blocks, claims — claims restart with a fresh
  /// heartbeat).  Throws std::runtime_error if the port cannot be bound
  /// or the recovered state is unreadable.
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  /// The bound port (resolves ephemeral port 0).
  int port() const noexcept { return listener_.port(); }
  const std::string& dir() const noexcept { return options_.dir; }

  /// Serve on a background thread; returns immediately.
  void start();
  /// Stop accepting, join every thread (accept loop + connections —
  /// each polls stop at the I/O timeout, so this returns within about
  /// one io_timeout_seconds), then close the listener.  Joining before
  /// closing keeps the close and the accept loop's poll off the fd at
  /// the same time.  Idempotent.
  void stop();

  /// Leases with a published done block (for status reporting).
  int done_count() const;

 private:
  struct Claim {
    std::string worker;
    std::chrono::steady_clock::time_point beat;
  };

  void recover();
  void accept_loop();
  void serve(net::Socket socket);
  /// One request against the board, under the state mutex.  `worker` is
  /// the connection's hello-established identity.
  support::Json handle(const support::Json& request,
                       const std::string& worker);
  support::Json handle_hello(const support::Json& request,
                             std::string* worker);

  std::string claim_path(int lease) const;
  std::string done_path(int lease) const;
  void persist_claim(int lease, const std::string& worker);

  CoordinatorOptions options_;
  net::Listener listener_;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;  ///< guards everything below
  bool have_manifest_ = false;
  support::Json config_echo_;
  int lease_size_ = 0;
  int lease_count_ = 0;
  std::set<int> done_;
  std::map<int, Claim> claims_;

  std::mutex threads_mu_;
  std::vector<std::thread> threads_;  ///< accept loop + connections
};

}  // namespace gpudiff::campaign
