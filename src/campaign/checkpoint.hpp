#pragma once
// Checkpoint and result serialization for sharded campaigns.
//
// Everything here is deterministic: JSON objects keep sorted keys, counts
// are integers, and floating-point payloads are the %.17g strings the
// records already carry — so two runs that produce equal state produce
// byte-equal files, which is what the shard-equivalence CI job diffs.
//
// Checkpoints are written with write_file_atomic (write to `<path>.tmp`,
// then rename), so a kill mid-write leaves the previous snapshot intact
// and `--resume` always finds a whole file.

#include <string>

#include "campaign/merge.hpp"
#include "campaign/shard.hpp"
#include "diff/campaign.hpp"
#include "support/json.hpp"

namespace gpudiff::campaign {

/// Full configuration fingerprint: every field of CampaignConfig that
/// affects results (seed, precision, counts, levels, record cap, the whole
/// generator grammar, and the full spec of every selected platform) — but
/// not `threads`, which never changes output.  Resume and merge compare
/// fingerprints for equality; the platform set being part of the
/// fingerprint is what keeps a lease done-file a pure function of
/// (fingerprint, range) when campaigns over different platform selections
/// share nothing but a directory layout.
support::Json config_to_json(const diff::CampaignConfig& config);

/// Strict inverse of config_to_json: rebuild a runnable CampaignConfig
/// from an embedded config fingerprint (version-2 reports, scheduler
/// manifests).  The result is validated by re-serializing it and comparing
/// to `config_echo` — any unknown field, altered spelling or lossy value
/// throws, so a reconstructed config can never silently diverge from the
/// fingerprint it claims to reproduce.  `threads` is not part of the
/// fingerprint and comes back at its default.
diff::CampaignConfig config_from_json(const support::Json& config_echo);

/// True when `names` is exactly the paper's legacy pair {"nvcc", "hipcc"}
/// — the platform set whose documents keep the pre-registry byte layout
/// (flat nvcc/hipcc record keys, single flat stats block, no "platforms"
/// member), so default-selection output stays byte-identical to the
/// two-slot era.  Any other selection uses the general N-way layout.
bool legacy_platform_pair(const std::vector<std::string>& names);

/// Platform names recorded in a configuration fingerprint (the legacy
/// default pair when the document predates the "platforms" member).
std::vector<std::string> platform_names_from_echo(
    const support::Json& config_echo);

/// Validate that `j` is a document of the given `format` with version in
/// [1, max_version] ("format"/"version" keys); throws std::runtime_error
/// naming `what` otherwise.  One rule for every campaign file —
/// checkpoints, lease results, merged reports and the scheduler manifest.
/// Every format is still version 1 except campaign results, whose
/// version 2 adds the embedded config fingerprint (see results_to_json).
void check_format(const support::Json& j, const char* format,
                  const char* what, int max_version = 1);

/// `legacy_pair` selects the flat pre-registry layout (see
/// legacy_platform_pair); the general layout carries one stats/payload
/// block per platform pair.
support::Json stats_to_json(const diff::LevelStats& stats, bool legacy_pair);
/// `n_pairs` = platform count minus one; the document's own shape (legacy
/// or general) is detected from its keys and validated against it.
diff::LevelStats stats_from_json(const support::Json& j, std::size_t n_pairs);

support::Json record_to_json(const diff::DiscrepancyRecord& rec,
                             bool legacy_pair);
diff::DiscrepancyRecord record_from_json(const support::Json& j,
                                         std::size_t n_platforms);

support::Json progress_to_json(const ShardProgress& progress);
ShardProgress progress_from_json(const support::Json& j);

/// One completed lease result for the work-stealing scheduler
/// (campaign/scheduler.hpp): the block plus its (index, count) position in
/// the lease partition, so the merge can cross-check coverage.  Like every
/// file in this header, serialization is deterministic — two workers that
/// execute the same lease publish byte-identical documents.
support::Json block_to_json(const ResultBlock& block, int lease_index,
                            int lease_count);
ResultBlock block_from_json(const support::Json& j, int* lease_index,
                            int* lease_count);

/// `<dir>/shard-<i>-of-<N>.json`
std::string checkpoint_path(const std::string& dir, const ShardSpec& spec);

/// Atomic write-then-rename snapshot (creates `dir` if needed).
void save_checkpoint(const std::string& dir, const ShardProgress& progress);
/// Load and validate one checkpoint file (throws on malformed input).
ShardProgress load_checkpoint(const std::string& path);

/// Canonical JSON for a finished campaign: the artifact the CLI's --report
/// writes and the CI equivalence job compares byte-for-byte.
///
/// With `config_echo` null (the default) the document is version 1 and its
/// bytes are unchanged from every prior release — the default nvcc/hipcc
/// layout stays locked by tests/golden.  Passing the campaign's
/// config_to_json fingerprint emits the version-2 superset (the --report-v2
/// flag): identical fields plus "config" (the full fingerprint) and
/// "fingerprint" ("cfg-" + fnv1a64 of the config bytes), which is the key
/// the results store ingests under without re-deriving anything.
support::Json results_to_json(const diff::CampaignResults& results,
                              const support::Json* config_echo = nullptr);
/// Accepts versions 1 and 2 (a version-2 document's extra members are
/// cross-checked — an embedded fingerprint must match its config bytes).
diff::CampaignResults results_from_json(const support::Json& j);

/// The digest the store keys a config fingerprint under:
/// "cfg-" + fnv1a64_hex(config_echo.dump()).
std::string fingerprint_digest(const support::Json& config_echo);

}  // namespace gpudiff::campaign
