#include "campaign/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "support/lockfile.hpp"

namespace gpudiff::campaign {

namespace {

constexpr const char* kManifestFormat = "gpudiff-campaign-manifest";

support::Json manifest_to_json(const support::Json& config_echo,
                               int lease_size, int count) {
  support::Json j = support::Json::object();
  j["format"] = kManifestFormat;
  j["version"] = 1;
  j["config"] = config_echo;
  j["lease_size"] = lease_size;
  j["lease_count"] = count;
  return j;
}

}  // namespace

int lease_count(int num_programs, int lease_size) {
  if (num_programs < 0)
    throw std::invalid_argument("lease_count: negative program count");
  if (num_programs == 0) return 0;
  const int size = std::max(1, lease_size);
  return (num_programs + size - 1) / size;
}

std::pair<std::uint64_t, std::uint64_t> lease_range(int num_programs,
                                                    int count, int index) {
  // One balanced-partition formula for the whole subsystem: the byte
  // identity of merged results must never depend on two copies of the
  // rounding math staying in sync.
  return ShardSpec{index, count}.program_range(num_programs);
}

LeaseBoard::LeaseBoard(std::string dir, std::string worker_id)
    : dir_(std::move(dir)), worker_(std::move(worker_id)) {
  if (dir_.empty())
    throw std::invalid_argument("LeaseBoard: empty directory");
  if (worker_.empty())
    throw std::invalid_argument("LeaseBoard: empty worker id");
  std::filesystem::create_directories(dir_);
}

std::string LeaseBoard::manifest_path(const std::string& dir) {
  return dir + "/campaign.json";
}

void LeaseBoard::publish_or_verify_manifest(const support::Json& config_echo,
                                            int lease_size, int count) {
  const support::Json manifest =
      manifest_to_json(config_echo, lease_size, count);
  if (support::publish_file_exclusive(manifest_path(dir_), manifest.dump(1),
                                      "." + worker_))
    return;
  const support::Json existing = load_manifest(dir_);
  if (existing.at("config") != config_echo)
    throw std::runtime_error(
        "scheduler: lease directory " + dir_ +
        " belongs to a different campaign configuration");
  if (existing.at("lease_size").as_int() != lease_size ||
      existing.at("lease_count").as_int() != count)
    throw std::runtime_error(
        "scheduler: lease directory " + dir_ +
        " was carved with a different --lease-size; every worker of one "
        "campaign must agree on the lease geometry");
}

support::Json LeaseBoard::load_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  if (!std::filesystem::exists(path))
    throw std::runtime_error("scheduler: no campaign manifest at " + path);
  const support::Json j = support::Json::parse(support::read_file(path));
  check_format(j, kManifestFormat, "campaign manifest");
  return j;
}

std::string LeaseBoard::claim_path(const std::string& dir, int lease) {
  return dir + "/lease-" + std::to_string(lease) + ".claim";
}

std::string LeaseBoard::done_path(const std::string& dir, int lease) {
  return dir + "/lease-" + std::to_string(lease) + ".done.json";
}

std::string LeaseBoard::claim_path(int lease) const {
  return claim_path(dir_, lease);
}

std::string LeaseBoard::done_path(int lease) const {
  return done_path(dir_, lease);
}

bool LeaseBoard::is_done(int lease) const {
  return std::filesystem::exists(done_path(lease));
}

bool LeaseBoard::try_claim(int lease) {
  support::Json claim = support::Json::object();
  claim["lease"] = lease;
  claim["worker"] = worker_;
  return support::publish_file_exclusive(claim_path(lease), claim.dump(),
                                         "." + worker_);
}

double LeaseBoard::claim_age_seconds(int lease) const {
  return support::file_age_seconds(claim_path(lease));
}

bool LeaseBoard::reap_claim(int lease) {
  const std::string claim = claim_path(lease);
  const std::string tombstone = claim + ".stale." + worker_;
  // Exactly one of N racing reapers wins the rename; the losers see the
  // source gone.
  if (!support::rename_file(claim, tombstone)) return false;
  support::remove_file(tombstone);
  return true;
}

bool LeaseBoard::try_steal(int lease) {
  // The winner of the reap claims afresh — which can still lose to a
  // concurrent fresh claimer, and that is fine: either way the lease has
  // exactly one new owner.
  if (!reap_claim(lease)) return false;
  return try_claim(lease);
}

namespace {

bool claim_owned_by(const std::string& claim_path, const std::string& worker) {
  try {
    const support::Json j =
        support::Json::parse(support::read_file(claim_path));
    return j.is_object() && j.contains("worker") &&
           j.at("worker").is_string() && j.at("worker").as_string() == worker;
  } catch (const std::exception&) {
    // Missing or torn-away claim file: not ours.
    return false;
  }
}

}  // namespace

bool LeaseBoard::heartbeat(int lease) {
  const std::string path = claim_path(lease);
  if (!claim_owned_by(path, worker_)) return false;
  return support::touch_file(path);
}

void LeaseBoard::publish_done(int lease, int count, const ResultBlock& block) {
  // Per-worker temp suffix: the at-least-once design means a paused owner
  // and its stealer can publish the same lease concurrently, and they
  // must not tear each other's temp file.  The final renames race, but
  // both sides rename identical bytes, so either winner is whole and
  // right.
  support::write_file_atomic(done_path(lease),
                             block_to_json(block, lease, count).dump(1),
                             ".tmp." + worker_);
}

void LeaseBoard::release(int lease) {
  const std::string path = claim_path(lease);
  if (claim_owned_by(path, worker_)) support::remove_file(path);
}

std::string default_worker_id() {
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);
  host[sizeof(host) - 1] = '\0';
  return std::string(host) + "-" + std::to_string(::getpid());
}

namespace {

/// Reap temp files stranded by workers killed mid-publish: claim temps
/// and tombstones ("lease-<k>.claim.<suffix>"), done-file temps
/// ("lease-<k>.done.json.tmp.<suffix>") and manifest temps
/// ("campaign.json.<suffix>") older than the staleness window.  Without
/// this, every SIGKILL between a temp write and its link/rename leaks one
/// file into the shared directory forever.  A *live* publisher whose temp
/// is this old is indistinguishable from a dead one; reaping its temp
/// makes its publish return "not acquired" (see publish_file_exclusive),
/// which the protocol already treats as losing a race.
void sweep_stale_temps(const std::string& dir, double older_than) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool temp = name.find(".claim.") != std::string::npos ||
                      name.find(".done.json.tmp.") != std::string::npos ||
                      name.rfind("campaign.json.", 0) == 0;
    if (!temp) continue;
    const std::string path = entry.path().string();
    const double age = support::file_age_seconds(path);
    if (age > std::max(0.0, older_than)) support::remove_file(path);
  }
}

/// Touches the claim every `interval` on a dedicated thread for as long
/// as the object lives, so the claim stays demonstrably alive even while
/// a single long-running generated program keeps the executor away from
/// any progress callback.  Destruction wakes and joins the thread.
class HeartbeatTimer {
 public:
  HeartbeatTimer(LeaseBoard& board, int lease, double interval_seconds)
      : board_(board), lease_(lease),
        interval_(std::max(0.01, interval_seconds)) {
    thread_ = std::thread([this] { run(); });
  }
  ~HeartbeatTimer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Called from the progress hook: beat now if one is due (keeps the
  /// claim fresh under clock-suspend conditions the timer thread might
  /// sleep through, and keeps the diff-layer progress callback load-
  /// bearing).
  void beat_if_due() {
    std::lock_guard<std::mutex> lock(mu_);
    beat_locked(std::chrono::steady_clock::now());
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_));
      if (stop_) break;
      beat_locked(std::chrono::steady_clock::now());
    }
  }
  void beat_locked(std::chrono::steady_clock::time_point now) {
    if (now - last_beat_ < std::chrono::duration<double>(interval_)) return;
    last_beat_ = now;
    board_.heartbeat(lease_);
  }

  LeaseBoard& board_;
  const int lease_;
  const double interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point last_beat_ =
      std::chrono::steady_clock::now();
  std::thread thread_;
};

/// Execute one lease through the existing campaign range machinery.  The
/// claim is heartbeaten two ways: a timer thread (liveness independent of
/// program granularity) and the per-program progress hook (fires
/// concurrently from campaign worker threads; the timer's mutex
/// serializes both).
ResultBlock execute_lease(const diff::CampaignConfig& config,
                          const support::Json& echo, LeaseBoard& board,
                          int lease, std::uint64_t begin, std::uint64_t end,
                          double heartbeat_seconds) {
  HeartbeatTimer timer(board, lease, heartbeat_seconds);
  diff::RangeHooks hooks;
  hooks.on_program = [&](std::uint64_t, std::uint64_t) {
    timer.beat_if_due();
  };
  diff::RangeOutcome out = diff::run_campaign_range(config, begin, end, hooks);
  ResultBlock block;
  block.config_echo = echo;
  block.begin = begin;
  block.end = end;
  block.per_level = std::move(out.per_level);
  block.records = std::move(out.records);
  return block;
}

}  // namespace

WorkerOutcome run_worker(const diff::CampaignConfig& config,
                         const WorkerOptions& options) {
  if (options.dir.empty())
    throw std::invalid_argument("run_worker: no lease directory");
  const int lease_size = std::max(1, options.lease_size);
  const int count = lease_count(config.num_programs, lease_size);
  const support::Json echo = config_to_json(config);
  LeaseBoard board(options.dir, options.worker_id.empty()
                                    ? default_worker_id()
                                    : options.worker_id);
  board.publish_or_verify_manifest(echo, lease_size, count);
  // A restarted fleet inherits whatever temp files its predecessors'
  // kills stranded; reap them once up front (steals reap incrementally).
  sweep_stale_temps(board.dir(), options.stale_after_seconds);

  WorkerOutcome outcome;
  std::vector<char> done(static_cast<std::size_t>(count), 0);
  int n_done = 0;
  const auto refresh = [&](int k) {
    if (done[static_cast<std::size_t>(k)] == 0 && board.is_done(k)) {
      done[static_cast<std::size_t>(k)] = 1;
      ++n_done;
    }
  };
  const auto stop = [&] {
    return options.stop_requested && options.stop_requested();
  };
  // A worker that runs out of claimable leases waits for its peers (or for
  // their claims to age out) and re-scans at this cadence.
  const auto poll_interval = std::chrono::duration<double>(std::clamp(
      options.stale_after_seconds / 10.0, 0.002, 0.5));

  // Start the scan at a worker-dependent offset so a fleet launched
  // simultaneously fans out across the lease range instead of serializing
  // on lease 0's claim file.
  const int offset =
      count == 0 ? 0
                 : static_cast<int>(std::hash<std::string>{}(
                                        board.worker_id()) %
                                    static_cast<std::size_t>(count));

  bool stopped = false;
  while (n_done < count && !(stopped = stop())) {
    bool progressed = false;
    for (int step = 0; step < count; ++step) {
      const int k = (offset + step) % count;
      refresh(k);
      if (done[static_cast<std::size_t>(k)] != 0) continue;
      if ((stopped = stop())) break;
      bool stolen = false;
      // Stat the claim before attempting one, so workers waiting out a
      // peer's lease cost the shared directory one read per scan, not a
      // temp-file publish cycle.  The stat is advisory; link(2) inside
      // try_claim stays the arbiter when the lease looks free.
      const double age = board.claim_age_seconds(k);
      if (age < 0.0) {
        if (!board.try_claim(k)) continue;  // lost the race; rescan later
      } else {
        if (age < options.stale_after_seconds) continue;
        // A worker killed between publishing its done file and releasing
        // its claim leaves a stale claim on a finished lease: completion
        // wins — no steal — but reap the claim so it does not haunt the
        // directory forever.
        refresh(k);
        if (done[static_cast<std::size_t>(k)] != 0) {
          board.reap_claim(k);
          continue;
        }
        sweep_stale_temps(board.dir(), options.stale_after_seconds);
        if (!board.try_steal(k)) continue;
        stolen = true;
      }
      // We hold the claim, but it may have been winnable only because a
      // peer released it a moment ago — and peers always publish their
      // done file before releasing.  Re-check under the claim so a
      // just-finished lease is never re-executed.
      refresh(k);
      if (done[static_cast<std::size_t>(k)] != 0) {
        board.release(k);
        continue;
      }
      // We own lease k.  Execute and flush it even if a stop arrives
      // mid-lease — an interrupted worker never strands claimed work; the
      // interrupt latency is bounded by one lease.
      const auto [begin, end] = lease_range(config.num_programs, count, k);
      try {
        const ResultBlock block = execute_lease(
            config, echo, board, k, begin, end, options.heartbeat_seconds);
        board.publish_done(k, count, block);
      } catch (...) {
        // A failed lease (I/O error, allocation failure) must not strand
        // its claim behind the staleness window on top of killing this
        // worker: release first, then let the error surface.
        board.release(k);
        throw;
      }
      board.release(k);
      done[static_cast<std::size_t>(k)] = 1;
      ++n_done;
      ++outcome.leases_completed;
      if (stolen) ++outcome.leases_stolen;
      outcome.programs_executed += end - begin;
      progressed = true;
      if (options.on_lease)
        options.on_lease({k, begin, end, stolen});
      if ((stopped = stop())) break;
    }
    if (stopped || n_done >= count) break;
    if (!progressed) {
      // Everything left is claimed by peers that still look alive; wait
      // for them to finish — or for their heartbeats to go stale, at which
      // point the scan above steals and the campaign still converges.
      std::this_thread::sleep_for(poll_interval);
    }
  }
  for (int k = 0; k < count; ++k) {
    refresh(k);
    // A claim lingering on a done lease is garbage (done is terminal; a
    // racing fresh claimer re-checks done and backs off) — typically a
    // peer killed between publish and release.  Reap it so a finished
    // directory holds no claim files.
    if (done[static_cast<std::size_t>(k)] != 0 &&
        board.claim_age_seconds(k) >= 0.0)
      board.reap_claim(k);
  }
  outcome.campaign_complete = n_done == count;
  return outcome;
}

bool campaign_complete(const std::string& dir) {
  support::Json manifest;
  try {
    manifest = LeaseBoard::load_manifest(dir);
  } catch (const std::exception&) {
    return false;
  }
  const int count = static_cast<int>(manifest.at("lease_count").as_int());
  for (int k = 0; k < count; ++k) {
    if (!std::filesystem::exists(LeaseBoard::done_path(dir, k))) return false;
  }
  return true;
}

diff::CampaignResults merge_lease_dir(const std::string& dir) {
  const support::Json manifest = LeaseBoard::load_manifest(dir);
  const support::Json& echo = manifest.at("config");
  const int count = static_cast<int>(manifest.at("lease_count").as_int());
  const int num_programs =
      static_cast<int>(echo.at("num_programs").as_int());
  if (count != lease_count(num_programs,
                           static_cast<int>(
                               manifest.at("lease_size").as_int())))
    throw std::runtime_error(
        "merge_lease_dir: manifest lease geometry is inconsistent");
  std::vector<ResultBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    const std::string path = LeaseBoard::done_path(dir, k);
    if (!std::filesystem::exists(path))
      throw std::runtime_error(
          "merge_lease_dir: lease " + std::to_string(k) + " of " +
          std::to_string(count) +
          " is unfinished (no done file); run a worker to completion first");
    int lease_index = -1;
    int stored_count = -1;
    ResultBlock block = block_from_json(
        support::Json::parse(support::read_file(path)), &lease_index,
        &stored_count);
    if (lease_index != k || stored_count != count)
      throw std::runtime_error("merge_lease_dir: " + path +
                               " does not belong to this lease partition");
    const auto expected = lease_range(num_programs, count, k);
    if (block.begin != expected.first || block.end != expected.second)
      throw std::runtime_error("merge_lease_dir: " + path +
                               " covers an unexpected program range");
    blocks.push_back(std::move(block));
  }
  return merge_blocks(echo, std::move(blocks));
}

}  // namespace gpudiff::campaign
