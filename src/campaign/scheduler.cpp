#include "campaign/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "campaign/transport.hpp"
#include "net/socket.hpp"
#include "support/lockfile.hpp"

namespace gpudiff::campaign {

namespace {

constexpr const char* kManifestFormat = "gpudiff-campaign-manifest";

}  // namespace

support::Json make_manifest(const support::Json& config_echo, int lease_size,
                            int count) {
  support::Json j = support::Json::object();
  j["format"] = kManifestFormat;
  j["version"] = 1;
  j["config"] = config_echo;
  j["lease_size"] = lease_size;
  j["lease_count"] = count;
  return j;
}

int lease_count(int num_programs, int lease_size) {
  if (num_programs < 0)
    throw std::invalid_argument("lease_count: negative program count");
  if (num_programs == 0) return 0;
  const int size = std::max(1, lease_size);
  return (num_programs + size - 1) / size;
}

std::pair<std::uint64_t, std::uint64_t> lease_range(int num_programs,
                                                    int count, int index) {
  // One balanced-partition formula for the whole subsystem: the byte
  // identity of merged results must never depend on two copies of the
  // rounding math staying in sync.
  return ShardSpec{index, count}.program_range(num_programs);
}

LeaseBoard::LeaseBoard(std::string dir, std::string worker_id)
    : dir_(std::move(dir)), worker_(std::move(worker_id)) {
  if (dir_.empty())
    throw std::invalid_argument("LeaseBoard: empty directory");
  if (worker_.empty())
    throw std::invalid_argument("LeaseBoard: empty worker id");
  std::filesystem::create_directories(dir_);
}

std::string LeaseBoard::manifest_path(const std::string& dir) {
  return dir + "/campaign.json";
}

void LeaseBoard::publish_or_verify_manifest(const support::Json& config_echo,
                                            int lease_size, int count) {
  const support::Json manifest =
      make_manifest(config_echo, lease_size, count);
  if (support::publish_file_exclusive(manifest_path(dir_), manifest.dump(1),
                                      "." + worker_))
    return;
  const support::Json existing = load_manifest(dir_);
  if (existing.at("config") != config_echo)
    throw std::runtime_error(
        "scheduler: lease directory " + dir_ +
        " belongs to a different campaign configuration");
  if (existing.at("lease_size").as_int() != lease_size ||
      existing.at("lease_count").as_int() != count)
    throw std::runtime_error(
        "scheduler: lease directory " + dir_ +
        " was carved with a different --lease-size; every worker of one "
        "campaign must agree on the lease geometry");
}

support::Json LeaseBoard::load_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  if (!std::filesystem::exists(path))
    throw std::runtime_error("scheduler: no campaign manifest at " + path);
  const support::Json j = support::Json::parse(support::read_file(path));
  check_format(j, kManifestFormat, "campaign manifest");
  return j;
}

std::string LeaseBoard::claim_path(const std::string& dir, int lease) {
  return dir + "/lease-" + std::to_string(lease) + ".claim";
}

std::string LeaseBoard::done_path(const std::string& dir, int lease) {
  return dir + "/lease-" + std::to_string(lease) + ".done.json";
}

std::string LeaseBoard::claim_path(int lease) const {
  return claim_path(dir_, lease);
}

std::string LeaseBoard::done_path(int lease) const {
  return done_path(dir_, lease);
}

bool LeaseBoard::is_done(int lease) const {
  return std::filesystem::exists(done_path(lease));
}

bool LeaseBoard::try_claim(int lease) {
  support::Json claim = support::Json::object();
  claim["lease"] = lease;
  claim["worker"] = worker_;
  return support::publish_file_exclusive(claim_path(lease), claim.dump(),
                                         "." + worker_);
}

double LeaseBoard::claim_age_seconds(int lease) const {
  return support::file_age_seconds(claim_path(lease));
}

bool LeaseBoard::reap_claim(int lease) {
  const std::string claim = claim_path(lease);
  const std::string tombstone = claim + ".stale." + worker_;
  // Exactly one of N racing reapers wins the rename; the losers see the
  // source gone.
  if (!support::rename_file(claim, tombstone)) return false;
  support::remove_file(tombstone);
  return true;
}

bool LeaseBoard::try_steal(int lease) {
  // The winner of the reap claims afresh — which can still lose to a
  // concurrent fresh claimer, and that is fine: either way the lease has
  // exactly one new owner.
  if (!reap_claim(lease)) return false;
  return try_claim(lease);
}

namespace {

bool claim_owned_by(const std::string& claim_path, const std::string& worker) {
  try {
    const support::Json j =
        support::Json::parse(support::read_file(claim_path));
    return j.is_object() && j.contains("worker") &&
           j.at("worker").is_string() && j.at("worker").as_string() == worker;
  } catch (const std::exception&) {
    // Missing or torn-away claim file: not ours.
    return false;
  }
}

}  // namespace

bool LeaseBoard::heartbeat(int lease) {
  const std::string path = claim_path(lease);
  if (!claim_owned_by(path, worker_)) return false;
  return support::touch_file(path);
}

void LeaseBoard::publish_done(int lease, int count, const ResultBlock& block) {
  // Per-worker temp suffix: the at-least-once design means a paused owner
  // and its stealer can publish the same lease concurrently, and they
  // must not tear each other's temp file.  The final renames race, but
  // both sides rename identical bytes, so either winner is whole and
  // right.
  support::write_file_atomic(done_path(lease),
                             block_to_json(block, lease, count).dump(1),
                             ".tmp." + worker_);
}

void LeaseBoard::release(int lease) {
  const std::string path = claim_path(lease);
  if (claim_owned_by(path, worker_)) support::remove_file(path);
}

std::string default_worker_id() {
  char host[256] = "unknown";
  ::gethostname(host, sizeof(host) - 1);
  host[sizeof(host) - 1] = '\0';
  return std::string(host) + "-" + std::to_string(::getpid());
}

namespace {

/// Touches the claim every `interval` on a dedicated thread for as long
/// as the object lives, so the claim stays demonstrably alive even while
/// a single long-running generated program keeps the executor away from
/// any progress callback.  Destruction wakes and joins the thread.
class HeartbeatTimer {
 public:
  HeartbeatTimer(LeaseTransport& transport, int lease, double interval_seconds)
      : transport_(transport), lease_(lease),
        interval_(std::max(0.01, interval_seconds)) {
    thread_ = std::thread([this] { run(); });
  }
  ~HeartbeatTimer() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Called from the progress hook: beat now if one is due (keeps the
  /// claim fresh under clock-suspend conditions the timer thread might
  /// sleep through, and keeps the diff-layer progress callback load-
  /// bearing).
  void beat_if_due() {
    std::lock_guard<std::mutex> lock(mu_);
    beat_locked(std::chrono::steady_clock::now());
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_));
      if (stop_) break;
      beat_locked(std::chrono::steady_clock::now());
    }
  }
  void beat_locked(std::chrono::steady_clock::time_point now) {
    if (now - last_beat_ < std::chrono::duration<double>(interval_)) return;
    last_beat_ = now;
    transport_.heartbeat(lease_);  // non-throwing by contract
  }

  LeaseTransport& transport_;
  const int lease_;
  const double interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point last_beat_ =
      std::chrono::steady_clock::now();
  std::thread thread_;
};

/// Execute one lease through the existing campaign range machinery.  The
/// claim is heartbeaten two ways: a timer thread (liveness independent of
/// program granularity) and the per-program progress hook (fires
/// concurrently from campaign worker threads; the timer's mutex
/// serializes both).
ResultBlock execute_lease(const diff::CampaignConfig& config,
                          const support::Json& echo, LeaseTransport& transport,
                          int lease, std::uint64_t begin, std::uint64_t end,
                          double heartbeat_seconds) {
  HeartbeatTimer timer(transport, lease, heartbeat_seconds);
  diff::RangeHooks hooks;
  hooks.on_program = [&](std::uint64_t, std::uint64_t) {
    timer.beat_if_due();
  };
  diff::RangeOutcome out = diff::run_campaign_range(config, begin, end, hooks);
  ResultBlock block;
  block.config_echo = echo;
  block.begin = begin;
  block.end = end;
  block.per_level = std::move(out.per_level);
  block.records = std::move(out.records);
  return block;
}

}  // namespace

WorkerOutcome run_worker(const diff::CampaignConfig& config,
                         const WorkerOptions& options) {
  if (!options.coordinator.empty()) {
    if (!options.dir.empty())
      throw std::invalid_argument(
          "run_worker: --worker directory and --coordinator are mutually "
          "exclusive transports");
    const auto [host, port] = net::parse_host_port(options.coordinator);
    TcpTransportOptions topts;
    topts.host = host;
    topts.port = port;
    topts.worker_id = options.worker_id.empty() ? default_worker_id()
                                                : options.worker_id;
    topts.journal_dir = options.journal_dir;
    topts.retry = options.retry;
    topts.request_timeout_seconds = options.request_timeout_seconds;
    TcpLeaseTransport transport(std::move(topts));
    return run_worker(config, options, transport);
  }
  if (options.dir.empty())
    throw std::invalid_argument("run_worker: no lease directory");
  FsLeaseTransport transport(options.dir, options.worker_id.empty()
                                              ? default_worker_id()
                                              : options.worker_id);
  return run_worker(config, options, transport);
}

WorkerOutcome run_worker(const diff::CampaignConfig& config,
                         const WorkerOptions& options,
                         LeaseTransport& transport) {
  const int lease_size = std::max(1, options.lease_size);
  const int count = lease_count(config.num_programs, lease_size);
  const support::Json echo = config_to_json(config);
  const auto stop = [&] {
    return options.stop_requested && options.stop_requested();
  };
  WorkerOutcome outcome;
  // Worker-loop waits (coordinator down, campaign not yet reachable) use
  // the same capped-backoff-with-deterministic-jitter policy as the
  // transport's own request retries — no raw sleep loops anywhere on the
  // coordinator path.
  const support::RetryPolicy reconnect =
      options.retry.seeded_for(transport.worker_id() + "/loop");
  int down_spells = 0;

  // Publish or verify the manifest, patiently: a TCP worker may start
  // before its coordinator (or during a coordinator restart), and that
  // must read as "not yet", not as failure.  Configuration mismatches are
  // std::runtime_error and still propagate immediately.
  for (;;) {
    if (stop()) return outcome;
    try {
      transport.publish_or_verify_manifest(echo, lease_size, count);
      break;
    } catch (const TransportError&) {
      if (!support::interruptible_sleep(reconnect.backoff_for(down_spells++),
                                        stop))
        return outcome;
    }
  }
  // A restarted fleet inherits whatever temp files its predecessors'
  // kills stranded; housekeep once up front (steals housekeep
  // incrementally).
  try {
    transport.maintain(options.stale_after_seconds);
  } catch (const TransportError&) {
    // Housekeeping is best-effort; the scan loop retries the transport.
  }
  down_spells = 0;

  std::vector<char> done(static_cast<std::size_t>(count), 0);
  int n_done = 0;
  const auto refresh = [&](int k) {
    if (done[static_cast<std::size_t>(k)] == 0 && transport.is_done(k)) {
      done[static_cast<std::size_t>(k)] = 1;
      ++n_done;
    }
  };
  // A worker that runs out of claimable leases waits for its peers (or for
  // their claims to age out) and re-scans at this cadence.
  const double poll_interval = std::clamp(
      options.stale_after_seconds / 10.0, 0.002, 0.5);

  // Start the scan at a worker-dependent offset so a fleet launched
  // simultaneously fans out across the lease range instead of serializing
  // on lease 0's claim file.
  const int offset =
      count == 0 ? 0
                 : static_cast<int>(std::hash<std::string>{}(
                                        transport.worker_id()) %
                                    static_cast<std::size_t>(count));

  bool stopped = false;
  while (n_done < count && !(stopped = stop())) {
    bool progressed = false;
    bool transport_down = false;
    try {
      for (int step = 0; step < count; ++step) {
        const int k = (offset + step) % count;
        refresh(k);
        if (done[static_cast<std::size_t>(k)] != 0) continue;
        if ((stopped = stop())) break;
        bool stolen = false;
        // Check the claim's age before attempting one, so workers waiting
        // out a peer's lease cost the backend one read per scan, not a
        // claim-publish cycle.  The check is advisory; the backend's
        // atomic claim operation stays the arbiter when the lease looks
        // free.
        const double age = transport.claim_age_seconds(k);
        if (age < 0.0) {
          if (!transport.try_claim(k)) continue;  // lost the race
        } else {
          if (age < options.stale_after_seconds) continue;
          // A worker killed between publishing its done file and releasing
          // its claim leaves a stale claim on a finished lease: completion
          // wins — no steal — but reap the claim so it does not haunt the
          // directory forever.
          refresh(k);
          if (done[static_cast<std::size_t>(k)] != 0) {
            transport.reap_claim(k);
            continue;
          }
          transport.maintain(options.stale_after_seconds);
          if (!transport.try_steal(k)) continue;
          stolen = true;
        }
        // We hold the claim, but it may have been winnable only because a
        // peer released it a moment ago — and peers always publish their
        // done file before releasing.  Re-check under the claim so a
        // just-finished lease is never re-executed.
        refresh(k);
        if (done[static_cast<std::size_t>(k)] != 0) {
          transport.release(k);
          continue;
        }
        // We own lease k.  Execute and flush it even if a stop arrives
        // mid-lease — an interrupted worker never strands claimed work;
        // the interrupt latency is bounded by one lease.
        const auto [begin, end] = lease_range(config.num_programs, count, k);
        try {
          const ResultBlock block =
              execute_lease(config, echo, transport, k, begin, end,
                            options.heartbeat_seconds);
          transport.publish_done(k, count, block);
        } catch (...) {
          // A failed lease (I/O error, allocation failure) must not strand
          // its claim behind the staleness window on top of killing this
          // worker: release first, then let the error surface.
          transport.release(k);
          throw;
        }
        transport.release(k);
        done[static_cast<std::size_t>(k)] = 1;
        ++n_done;
        ++outcome.leases_completed;
        if (stolen) ++outcome.leases_stolen;
        outcome.programs_executed += end - begin;
        progressed = true;
        if (options.on_lease)
          options.on_lease({k, begin, end, stolen});
        if ((stopped = stop())) break;
      }
    } catch (const TransportError&) {
      // The backend is unreachable.  A held claim is safe to abandon to
      // the retry: claims are idempotent for their own worker, and at
      // worst the lease ages out and is re-executed elsewhere.  Back off
      // and rescan once the coordinator returns.
      transport_down = true;
    }
    if (stopped || n_done >= count) break;
    if (transport_down) {
      if (!support::interruptible_sleep(
              reconnect.backoff_for(down_spells++), stop)) {
        stopped = true;
        break;
      }
    } else {
      down_spells = 0;
      if (!progressed) {
        // Everything left is claimed by peers that still look alive; wait
        // for them to finish — or for their heartbeats to go stale, at
        // which point the scan above steals and the campaign still
        // converges.
        if (!support::interruptible_sleep(poll_interval, stop)) {
          stopped = true;
          break;
        }
      }
    }
  }
  try {
    for (int k = 0; k < count; ++k) {
      refresh(k);
      // A claim lingering on a done lease is garbage (done is terminal; a
      // racing fresh claimer re-checks done and backs off) — typically a
      // peer killed between publish and release.  Reap it so a finished
      // directory holds no claim files.
      if (done[static_cast<std::size_t>(k)] != 0 &&
          transport.claim_age_seconds(k) >= 0.0)
        transport.reap_claim(k);
    }
  } catch (const TransportError&) {
    // Final housekeeping is best-effort; stale claims age out anyway.
  }
  // drain(): a TCP worker holding journaled blocks the coordinator never
  // received must not report completion — its results are not yet where
  // the merge will look for them.
  outcome.campaign_complete = n_done == count && transport.drain();
  return outcome;
}

bool campaign_complete(const std::string& dir) {
  support::Json manifest;
  try {
    manifest = LeaseBoard::load_manifest(dir);
  } catch (const std::exception&) {
    return false;
  }
  const int count = static_cast<int>(manifest.at("lease_count").as_int());
  for (int k = 0; k < count; ++k) {
    if (!std::filesystem::exists(LeaseBoard::done_path(dir, k))) return false;
  }
  return true;
}

support::Json config_echo_of_dir(const std::string& dir) {
  if (std::filesystem::exists(LeaseBoard::manifest_path(dir)))
    return LeaseBoard::load_manifest(dir).at("config");
  // Fixed-carve shard directory: every checkpoint embeds the same
  // fingerprint (the merge validates that), so the lexicographically
  // first one speaks for the campaign.
  std::vector<std::string> paths;
  if (!std::filesystem::is_directory(dir))
    throw std::runtime_error("config_echo_of_dir: not a directory: " + dir);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp") != std::string::npos) continue;
    if (name.rfind("shard-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
      paths.push_back(entry.path().string());
  }
  if (paths.empty())
    throw std::runtime_error(
        "config_echo_of_dir: " + dir +
        " holds neither a campaign manifest nor shard checkpoints");
  std::sort(paths.begin(), paths.end());
  try {
    return support::Json::parse(support::read_file(paths.front()))
        .at("config");
  } catch (const std::exception& e) {
    throw std::runtime_error("config_echo_of_dir: " + paths.front() + ": " +
                             e.what());
  }
}

diff::CampaignResults merge_lease_dir(const std::string& dir,
                                      const LeaseMergeOptions& options) {
  const support::Json manifest = LeaseBoard::load_manifest(dir);
  const support::Json& echo = manifest.at("config");
  const int count = static_cast<int>(manifest.at("lease_count").as_int());
  const int num_programs =
      static_cast<int>(echo.at("num_programs").as_int());
  if (count != lease_count(num_programs,
                           static_cast<int>(
                               manifest.at("lease_size").as_int())))
    throw std::runtime_error(
        "merge_lease_dir: manifest lease geometry is inconsistent");
  std::vector<ResultBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(count));
  std::vector<std::string> quarantined;
  for (int k = 0; k < count; ++k) {
    const std::string path = LeaseBoard::done_path(dir, k);
    if (!std::filesystem::exists(path))
      throw std::runtime_error(
          "merge_lease_dir: lease " + std::to_string(k) + " of " +
          std::to_string(count) +
          " is unfinished (no done file); run a worker to completion first");
    int lease_index = -1;
    int stored_count = -1;
    ResultBlock block;
    try {
      block = block_from_json(
          support::Json::parse(support::read_file(path)), &lease_index,
          &stored_count);
    } catch (const std::exception& e) {
      // Crash litter (a torn or corrupt done file — possible only outside
      // the atomic write-then-rename discipline, e.g. a failing disk or a
      // partial copy) gets a diagnostic naming the file, and optionally a
      // quarantine rename so a re-run worker regenerates the lease.
      if (!options.quarantine)
        throw std::runtime_error(
            "merge_lease_dir: " + path + " is corrupt (" + e.what() +
            "); re-run with --quarantine to set it aside and let a worker "
            "regenerate lease " + std::to_string(k));
      support::rename_file(path, path + ".quarantined");
      quarantined.push_back(path);
      continue;
    }
    if (lease_index != k || stored_count != count)
      throw std::runtime_error("merge_lease_dir: " + path +
                               " does not belong to this lease partition");
    const auto expected = lease_range(num_programs, count, k);
    if (block.begin != expected.first || block.end != expected.second)
      throw std::runtime_error("merge_lease_dir: " + path +
                               " covers an unexpected program range");
    blocks.push_back(std::move(block));
  }
  if (!quarantined.empty()) {
    std::string names;
    for (const auto& q : quarantined) {
      if (!names.empty()) names += ", ";
      names += q;
    }
    throw std::runtime_error(
        "merge_lease_dir: quarantined " + std::to_string(quarantined.size()) +
        " corrupt done file(s): " + names +
        " (renamed *.quarantined); re-run workers against " + dir +
        " to regenerate, then merge again");
  }
  return merge_blocks(echo, std::move(blocks));
}

}  // namespace gpudiff::campaign
