#include "campaign/transport.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "net/wire.hpp"
#include "support/lockfile.hpp"

namespace gpudiff::campaign {

namespace {

/// Reap temp files stranded by workers killed mid-publish: claim temps
/// and tombstones ("lease-<k>.claim.<suffix>"), done-file temps
/// ("lease-<k>.done.json.tmp.<suffix>") and manifest temps
/// ("campaign.json.<suffix>") older than the staleness window.  Without
/// this, every SIGKILL between a temp write and its link/rename leaks one
/// file into the shared directory forever.  A *live* publisher whose temp
/// is this old is indistinguishable from a dead one; reaping its temp
/// makes its publish return "not acquired" (see publish_file_exclusive),
/// which the protocol already treats as losing a race.
void sweep_stale_temps(const std::string& dir, double older_than) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const bool temp = name.find(".claim.") != std::string::npos ||
                      name.find(".done.json.tmp.") != std::string::npos ||
                      name.rfind("campaign.json.", 0) == 0;
    if (!temp) continue;
    const std::string path = entry.path().string();
    const double age = support::file_age_seconds(path);
    if (age > std::max(0.0, older_than)) support::remove_file(path);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FsLeaseTransport — the shared-directory board, byte-identical behavior.
// ---------------------------------------------------------------------------

FsLeaseTransport::FsLeaseTransport(std::string dir, std::string worker_id)
    : board_(std::move(dir), std::move(worker_id)) {}

const std::string& FsLeaseTransport::worker_id() const noexcept {
  return board_.worker_id();
}

void FsLeaseTransport::publish_or_verify_manifest(
    const support::Json& config_echo, int lease_size, int count) {
  board_.publish_or_verify_manifest(config_echo, lease_size, count);
  lease_count_ = count;
}

bool FsLeaseTransport::is_done(int lease) { return board_.is_done(lease); }

std::vector<int> FsLeaseTransport::list_done() {
  std::vector<int> done;
  for (int k = 0; k < lease_count_; ++k)
    if (board_.is_done(k)) done.push_back(k);
  return done;
}

bool FsLeaseTransport::try_claim(int lease) { return board_.try_claim(lease); }

double FsLeaseTransport::claim_age_seconds(int lease) {
  return board_.claim_age_seconds(lease);
}

bool FsLeaseTransport::try_steal(int lease) { return board_.try_steal(lease); }

void FsLeaseTransport::reap_claim(int lease) { board_.reap_claim(lease); }

bool FsLeaseTransport::heartbeat(int lease) { return board_.heartbeat(lease); }

void FsLeaseTransport::publish_done(int lease, int count,
                                    const ResultBlock& block) {
  board_.publish_done(lease, count, block);
}

void FsLeaseTransport::release(int lease) { board_.release(lease); }

void FsLeaseTransport::maintain(double stale_after_seconds) {
  sweep_stale_temps(board_.dir(), stale_after_seconds);
}

// ---------------------------------------------------------------------------
// TcpLeaseTransport — the network backend.
// ---------------------------------------------------------------------------

TcpLeaseTransport::TcpLeaseTransport(TcpTransportOptions options)
    : options_(std::move(options)) {
  if (options_.worker_id.empty())
    throw std::invalid_argument("TcpLeaseTransport: empty worker id");
  if (options_.journal_dir.empty())
    options_.journal_dir =
        (std::filesystem::temp_directory_path() /
         ("gpudiff-journal-" + options_.worker_id))
            .string();
  // Distinct workers must not reconnect in lockstep after a coordinator
  // restart; derive the jitter stream from the worker id.
  options_.retry = options_.retry.seeded_for(options_.worker_id);
}

const std::string& TcpLeaseTransport::worker_id() const noexcept {
  return options_.worker_id;
}

std::string TcpLeaseTransport::journal_path(int lease) const {
  return options_.journal_dir + "/lease-" + std::to_string(lease) +
         ".done.json";
}

void TcpLeaseTransport::ensure_connected_locked() {
  if (socket_.valid()) return;
  if (!hello_ready_)
    throw std::logic_error(
        "TcpLeaseTransport: operation before publish_or_verify_manifest");
  net::Socket s = net::connect_tcp(options_.host, options_.port,
                                   options_.connect_timeout_seconds);
  if (!s.valid())
    throw TransportError("coordinator " + options_.host + ":" +
                         std::to_string(options_.port) + " unreachable");
  support::Json hello = support::Json::object();
  hello["op"] = "hello";
  hello["version"] = net::kWireVersion;
  hello["worker"] = options_.worker_id;
  hello["config"] = hello_config_;
  hello["lease_size"] = lease_size_;
  hello["lease_count"] = lease_count_;
  const std::int64_t seq = ++seq_;
  hello["seq"] = seq;
  if (net::send_message(s, hello, options_.request_timeout_seconds) !=
      net::IoStatus::Ok)
    throw TransportError("coordinator hello: send failed");
  support::Json resp;
  for (;;) {
    if (net::recv_message(s, &resp, options_.request_timeout_seconds) !=
        net::IoStatus::Ok)
      throw TransportError("coordinator hello: no response");
    if (resp.get_or("seq", support::Json(std::int64_t{0})).as_int() >= seq)
      break;
    // A stale frame from a previous incarnation of this connection pair
    // cannot occur on a fresh socket; discard defensively anyway.
  }
  if (!resp.get_or("ok", support::Json(false)).as_bool()) {
    const std::string error =
        resp.contains("error") ? resp.at("error").as_string()
                               : "coordinator refused hello";
    if (resp.get_or("fatal", support::Json(false)).as_bool())
      throw std::runtime_error("coordinator refused connection: " + error);
    throw TransportError("coordinator hello failed: " + error);
  }
  socket_ = std::move(s);
  // A fresh connection is the reconnect moment: re-publish everything the
  // journal holds before any new work is claimed, so a worker that rode
  // out a coordinator outage hands over its results first.
  flush_journal_locked();
}

support::Json TcpLeaseTransport::roundtrip_locked(const support::Json& req) {
  support::Json tagged = req;
  const std::int64_t seq = ++seq_;
  tagged["seq"] = seq;
  if (net::send_message(socket_, tagged, options_.request_timeout_seconds) !=
      net::IoStatus::Ok)
    throw TransportError("request send failed");
  for (;;) {
    support::Json resp;
    if (net::recv_message(socket_, &resp,
                          options_.request_timeout_seconds) !=
        net::IoStatus::Ok)
      throw TransportError("request: no response");
    const std::int64_t got =
        resp.get_or("seq", support::Json(std::int64_t{0})).as_int();
    if (got < seq) continue;  // stale response to a duplicated frame
    if (got > seq) throw TransportError("response stream desynchronized");
    if (!resp.get_or("ok", support::Json(false)).as_bool()) {
      const std::string error = resp.contains("error")
                                    ? resp.at("error").as_string()
                                    : "unspecified coordinator error";
      if (resp.get_or("fatal", support::Json(false)).as_bool())
        throw std::runtime_error("coordinator rejected request: " + error);
      throw TransportError("coordinator error: " + error);
    }
    return resp;
  }
}

support::Json TcpLeaseTransport::request_locked(support::Json req) {
  std::string last_error = "no attempt made";
  const int attempts = std::max(1, options_.retry.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      support::interruptible_sleep(options_.retry.backoff_for(attempt - 1),
                                   nullptr);
    try {
      ensure_connected_locked();
      return roundtrip_locked(req);
    } catch (const TransportError& e) {
      last_error = e.what();
      socket_.close();
    }
    // std::runtime_error (fatal refusal) propagates: retrying cannot help.
  }
  throw TransportError("coordinator " + options_.host + ":" +
                       std::to_string(options_.port) + ": " + last_error +
                       " (after " + std::to_string(attempts) + " attempts)");
}

support::Json TcpLeaseTransport::request(support::Json req) {
  std::lock_guard<std::mutex> lock(mu_);
  return request_locked(std::move(req));
}

void TcpLeaseTransport::flush_journal_locked() {
  if (!std::filesystem::is_directory(options_.journal_dir)) return;
  std::vector<std::filesystem::path> pending;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.journal_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("lease-", 0) == 0 &&
        name.find(".done.json") != std::string::npos &&
        name.find(".tmp") == std::string::npos)
      pending.push_back(entry.path());
  }
  std::sort(pending.begin(), pending.end());
  for (const auto& path : pending) {
    support::Json doc;
    try {
      doc = support::Json::parse(support::read_file(path.string()));
    } catch (const std::exception&) {
      // A torn journal entry can only be a crash mid-write of the .tmp
      // rename path, which write_file_atomic prevents; treat garbage as
      // unpublishable and leave it for inspection.
      continue;
    }
    support::Json req = support::Json::object();
    req["op"] = "publish";
    req["block"] = std::move(doc);
    roundtrip_locked(req);  // TransportError propagates: flush aborted
    std::filesystem::remove(path);
  }
}

int TcpLeaseTransport::journaled_blocks() const {
  if (!std::filesystem::is_directory(options_.journal_dir)) return 0;
  int n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.journal_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("lease-", 0) == 0 &&
        name.find(".done.json") != std::string::npos &&
        name.find(".tmp") == std::string::npos)
      ++n;
  }
  return n;
}

void TcpLeaseTransport::publish_or_verify_manifest(
    const support::Json& config_echo, int lease_size, int count) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    hello_config_ = config_echo;
    lease_size_ = lease_size;
    lease_count_ = count;
    hello_ready_ = true;
    socket_.close();  // force a fresh hello under the new parameters
  }
  // The hello is the manifest exchange; probe with the cheapest op so a
  // mismatch is refused here, at connect, not on the first claim.
  request([] {
    support::Json j = support::Json::object();
    j["op"] = "list_done";
    return j;
  }());
}

bool TcpLeaseTransport::is_done(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "done";
  req["lease"] = lease;
  return request(std::move(req)).at("done").as_bool();
}

std::vector<int> TcpLeaseTransport::list_done() {
  support::Json req = support::Json::object();
  req["op"] = "list_done";
  const support::Json resp = request(std::move(req));
  std::vector<int> done;
  for (const auto& k : resp.at("done").as_array())
    done.push_back(static_cast<int>(k.as_int()));
  return done;
}

bool TcpLeaseTransport::try_claim(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "claim";
  req["lease"] = lease;
  return request(std::move(req)).at("acquired").as_bool();
}

double TcpLeaseTransport::claim_age_seconds(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "age";
  req["lease"] = lease;
  return request(std::move(req)).at("age").as_double();
}

bool TcpLeaseTransport::try_steal(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "steal";
  req["lease"] = lease;
  return request(std::move(req)).at("stolen").as_bool();
}

void TcpLeaseTransport::reap_claim(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "reap";
  req["lease"] = lease;
  try {
    request(std::move(req));
  } catch (const TransportError&) {
    // Best-effort housekeeping; a lingering claim only costs a later reap.
  }
}

bool TcpLeaseTransport::heartbeat(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "heartbeat";
  req["lease"] = lease;
  try {
    return request(std::move(req)).at("beating").as_bool();
  } catch (const std::exception&) {
    // Must never throw: the heartbeat timer thread calls this, and the
    // protocol already treats a missed heartbeat as survivable (worst
    // case, the claim is stolen and the lease runs twice).
    return false;
  }
}

void TcpLeaseTransport::publish_done(int lease, int count,
                                     const ResultBlock& block) {
  const support::Json doc = block_to_json(block, lease, count);
  support::Json req = support::Json::object();
  req["op"] = "publish";
  req["block"] = doc;
  try {
    request(std::move(req));
  } catch (const TransportError&) {
    // Graceful degradation: the coordinator is unreachable, but the block
    // must not be lost — journal it locally (same atomic write-then-rename,
    // same bytes as the coordinator's done file) and re-publish on
    // reconnect.  Duplicate publishes are safe: the block is a pure
    // function of (fingerprint, range).
    std::filesystem::create_directories(options_.journal_dir);
    support::write_file_atomic(journal_path(lease), doc.dump(1), ".tmp");
  }
}

void TcpLeaseTransport::release(int lease) {
  support::Json req = support::Json::object();
  req["op"] = "release";
  req["lease"] = lease;
  try {
    request(std::move(req));
  } catch (const TransportError&) {
    // Best-effort by contract: an unreleased claim ages out and is stolen.
  }
}

void TcpLeaseTransport::maintain(double /*stale_after_seconds*/) {
  // Staleness housekeeping lives on the coordinator; the worker-side
  // concern is the journal.  Opportunistically flush it (connecting
  // triggers flush_journal_locked).
  if (journaled_blocks() == 0) return;
  try {
    support::Json req = support::Json::object();
    req["op"] = "list_done";
    request(std::move(req));
  } catch (const TransportError&) {
    // Still unreachable; the journal keeps waiting.
  }
}

bool TcpLeaseTransport::drain() {
  if (journaled_blocks() == 0) return true;
  try {
    support::Json req = support::Json::object();
    req["op"] = "list_done";
    request(std::move(req));
  } catch (const TransportError&) {
    return false;
  }
  return journaled_blocks() == 0;
}

}  // namespace gpudiff::campaign
