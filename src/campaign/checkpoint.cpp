#include "campaign/checkpoint.hpp"

#include <filesystem>
#include <stdexcept>

#include "support/strings.hpp"

namespace gpudiff::campaign {

using support::Json;
using support::JsonArray;

namespace {

constexpr const char* kShardFormat = "gpudiff-shard";
constexpr const char* kLeaseFormat = "gpudiff-lease";
constexpr const char* kResultsFormat = "gpudiff-campaign-results";

Json levels_to_json(const std::vector<opt::OptLevel>& levels) {
  Json arr = Json::array();
  for (const auto level : levels) arr.push_back(opt::to_string(level));
  return arr;
}

std::vector<opt::OptLevel> levels_from_json(const Json& arr) {
  std::vector<opt::OptLevel> levels;
  for (const auto& l : arr.as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("campaign: bad opt level " + l.as_string());
    levels.push_back(level);
  }
  return levels;
}

Json outcome_to_json(const fp::Outcome& o) {
  Json j = Json::object();
  j["cls"] = static_cast<int>(o.cls);
  j["neg"] = o.negative;
  return j;
}

fp::Outcome outcome_from_json(const Json& j) {
  const auto cls = j.at("cls").as_int();
  if (cls < 0 || cls > 3)
    throw std::runtime_error("campaign: bad outcome class");
  fp::Outcome o;
  o.cls = static_cast<fp::OutcomeClass>(cls);
  o.negative = j.at("neg").as_bool();
  return o;
}

}  // namespace

// Reject foreign documents with a real diagnostic (a missing "format"
// key must not surface as a low-level JSON type error) and refuse
// versions this binary does not understand.
void check_format(const Json& j, const char* format, const char* what,
                  int max_version) {
  if (!j.is_object() || !j.contains("format") || !j.at("format").is_string() ||
      j.at("format").as_string() != format)
    throw std::runtime_error(std::string("campaign: not a ") + what);
  if (!j.contains("version") || !j.at("version").is_number() ||
      j.at("version").as_int() < 1 || j.at("version").as_int() > max_version)
    throw std::runtime_error(std::string("campaign: unsupported ") + what +
                             " version");
}

std::string fingerprint_digest(const Json& config_echo) {
  return "cfg-" + support::fnv1a64_hex(config_echo.dump());
}

bool legacy_platform_pair(const std::vector<std::string>& names) {
  return names.size() == 2 && names[0] == "nvcc" && names[1] == "hipcc";
}

std::vector<std::string> platform_names_from_echo(const Json& config_echo) {
  if (!config_echo.contains("platforms")) return {"nvcc", "hipcc"};
  std::vector<std::string> names;
  for (const auto& p : config_echo.at("platforms").as_array())
    names.push_back(p.at("name").as_string());
  if (names.size() < 2)
    throw std::runtime_error("campaign: fingerprint platform list too short");
  return names;
}

Json config_to_json(const diff::CampaignConfig& config) {
  Json j = Json::object();
  j["seed"] = static_cast<long long>(config.seed);
  j["precision"] = ir::to_string(config.gen.precision);
  j["hipify_converted"] = config.hipify_converted;
  j["num_programs"] = config.num_programs;
  j["inputs_per_program"] = config.inputs_per_program;
  j["levels"] = levels_to_json(config.levels);
  j["max_records"] = static_cast<long long>(config.max_records);

  // The full spec of every selected platform, not just its name: a lease
  // block must be a pure function of (fingerprint, range), and a spec's
  // knobs are what decide the numbers.
  Json platforms = Json::array();
  for (const opt::PlatformSpec& spec : config.platforms) {
    Json p = Json::object();
    p["name"] = spec.name;
    p["toolchain"] = opt::to_string(spec.toolchain);
    p["fast_math"] = spec.fast_math;
    p["ftz32"] = spec.force_ftz32;
    p["daz32"] = spec.force_daz32;
    p["fma"] = opt::to_string(spec.fma);
    p["div32"] = opt::to_string(spec.div32);
    p["mathlib"] = spec.mathlib;
    platforms.push_back(std::move(p));
  }
  j["platforms"] = std::move(platforms);

  // The full generator grammar: any change to it changes every generated
  // program, so it is part of the fingerprint resume/merge validate.
  const gen::GenConfig& g = config.gen;
  Json gj = Json::object();
  gj["max_expr_depth"] = g.max_expr_depth;
  gj["min_stmts"] = g.min_stmts;
  gj["max_stmts"] = g.max_stmts;
  gj["max_loop_nest"] = g.max_loop_nest;
  gj["max_block_stmts"] = g.max_block_stmts;
  gj["min_scalar_params"] = g.min_scalar_params;
  gj["max_scalar_params"] = g.max_scalar_params;
  gj["max_int_params"] = g.max_int_params;
  gj["max_array_params"] = g.max_array_params;
  gj["allow_loops"] = g.allow_loops;
  gj["allow_ifs"] = g.allow_ifs;
  gj["allow_arrays"] = g.allow_arrays;
  gj["allow_calls"] = g.allow_calls;
  gj["w_bin"] = g.w_bin;
  gj["w_call"] = g.w_call;
  gj["w_neg"] = g.w_neg;
  gj["w_leaf"] = g.w_leaf;
  gj["w_leaf_literal"] = g.w_leaf_literal;
  gj["w_leaf_param"] = g.w_leaf_param;
  gj["w_leaf_temp"] = g.w_leaf_temp;
  gj["w_leaf_array"] = g.w_leaf_array;
  Json fns = Json::array();
  for (const auto fn : g.functions) fns.push_back(static_cast<int>(fn));
  gj["functions"] = std::move(fns);
  j["gen"] = std::move(gj);
  return j;
}

namespace {

// Inverse spellings of the opt:: to_string overloads.  Kept local: the
// round-trip check below re-serializes through those same overloads, so a
// stale entry here can reject but never mis-parse.
opt::Toolchain toolchain_from_string(const std::string& s) {
  if (s == "nvcc-sim") return opt::Toolchain::Nvcc;
  if (s == "hipcc-sim") return opt::Toolchain::Hipcc;
  throw std::runtime_error("campaign: bad toolchain " + s);
}

opt::FmaMode fma_from_string(const std::string& s) {
  if (s == "auto") return opt::FmaMode::Auto;
  if (s == "left") return opt::FmaMode::LeftProduct;
  if (s == "right") return opt::FmaMode::RightProduct;
  throw std::runtime_error("campaign: bad fma mode " + s);
}

opt::Div32Override div32_from_string(const std::string& s) {
  if (s == "auto") return opt::Div32Override::Auto;
  if (s == "ieee") return opt::Div32Override::IEEE;
  if (s == "nv-approx") return opt::Div32Override::NvApprox;
  if (s == "amd-approx") return opt::Div32Override::AmdApprox;
  throw std::runtime_error("campaign: bad div32 override " + s);
}

}  // namespace

diff::CampaignConfig config_from_json(const Json& config_echo) {
  diff::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(config_echo.at("seed").as_int());
  if (!ir::parse_precision(config_echo.at("precision").as_string(),
                           &config.gen.precision))
    throw std::runtime_error("campaign: bad precision in config fingerprint");
  config.hipify_converted = config_echo.at("hipify_converted").as_bool();
  config.num_programs =
      static_cast<int>(config_echo.at("num_programs").as_int());
  config.inputs_per_program =
      static_cast<int>(config_echo.at("inputs_per_program").as_int());
  config.levels = levels_from_json(config_echo.at("levels"));
  config.max_records =
      static_cast<std::size_t>(config_echo.at("max_records").as_int());

  config.platforms.clear();
  for (const auto& p : config_echo.at("platforms").as_array()) {
    opt::PlatformSpec spec;
    spec.name = p.at("name").as_string();
    spec.toolchain = toolchain_from_string(p.at("toolchain").as_string());
    spec.fast_math = p.at("fast_math").as_bool();
    spec.force_ftz32 = p.at("ftz32").as_bool();
    spec.force_daz32 = p.at("daz32").as_bool();
    spec.fma = fma_from_string(p.at("fma").as_string());
    spec.div32 = div32_from_string(p.at("div32").as_string());
    spec.mathlib = p.at("mathlib").as_string();
    // `blurb` is display-only and not part of the fingerprint; it stays
    // empty on reconstructed specs.
    config.platforms.push_back(std::move(spec));
  }

  gen::GenConfig& g = config.gen;
  const Json& gj = config_echo.at("gen");
  g.max_expr_depth = static_cast<int>(gj.at("max_expr_depth").as_int());
  g.min_stmts = static_cast<int>(gj.at("min_stmts").as_int());
  g.max_stmts = static_cast<int>(gj.at("max_stmts").as_int());
  g.max_loop_nest = static_cast<int>(gj.at("max_loop_nest").as_int());
  g.max_block_stmts = static_cast<int>(gj.at("max_block_stmts").as_int());
  g.min_scalar_params = static_cast<int>(gj.at("min_scalar_params").as_int());
  g.max_scalar_params = static_cast<int>(gj.at("max_scalar_params").as_int());
  g.max_int_params = static_cast<int>(gj.at("max_int_params").as_int());
  g.max_array_params = static_cast<int>(gj.at("max_array_params").as_int());
  g.allow_loops = gj.at("allow_loops").as_bool();
  g.allow_ifs = gj.at("allow_ifs").as_bool();
  g.allow_arrays = gj.at("allow_arrays").as_bool();
  g.allow_calls = gj.at("allow_calls").as_bool();
  g.w_bin = static_cast<std::uint32_t>(gj.at("w_bin").as_int());
  g.w_call = static_cast<std::uint32_t>(gj.at("w_call").as_int());
  g.w_neg = static_cast<std::uint32_t>(gj.at("w_neg").as_int());
  g.w_leaf = static_cast<std::uint32_t>(gj.at("w_leaf").as_int());
  g.w_leaf_literal = static_cast<std::uint32_t>(gj.at("w_leaf_literal").as_int());
  g.w_leaf_param = static_cast<std::uint32_t>(gj.at("w_leaf_param").as_int());
  g.w_leaf_temp = static_cast<std::uint32_t>(gj.at("w_leaf_temp").as_int());
  g.w_leaf_array = static_cast<std::uint32_t>(gj.at("w_leaf_array").as_int());
  g.functions.clear();
  for (const auto& fn : gj.at("functions").as_array()) {
    const auto v = fn.as_int();
    if (v < 0 || v > static_cast<long long>(ir::MathFn::Fmax))
      throw std::runtime_error("campaign: bad math function id");
    g.functions.push_back(static_cast<ir::MathFn>(v));
  }

  if (config_to_json(config) != config_echo)
    throw std::runtime_error(
        "campaign: config fingerprint does not round-trip (foreign or "
        "corrupted document)");
  return config;
}

namespace {

void pair_stats_to_object(const diff::PairStats& pair, Json& j) {
  Json classes = Json::array();
  for (const auto c : pair.class_counts)
    classes.push_back(static_cast<long long>(c));
  j["class_counts"] = std::move(classes);
  Json adjacency = Json::array();
  for (const auto& row : pair.adjacency) {
    Json r = Json::array();
    for (const auto c : row) r.push_back(static_cast<long long>(c));
    adjacency.push_back(std::move(r));
  }
  j["adjacency"] = std::move(adjacency);
}

diff::PairStats pair_stats_from_object(const Json& j) {
  diff::PairStats pair;
  const auto& classes = j.at("class_counts").as_array();
  if (classes.size() != pair.class_counts.size())
    throw std::runtime_error("campaign: bad class_counts size");
  for (std::size_t i = 0; i < classes.size(); ++i)
    pair.class_counts[i] = static_cast<std::uint64_t>(classes[i].as_int());
  const auto& adjacency = j.at("adjacency").as_array();
  if (adjacency.size() != 4)
    throw std::runtime_error("campaign: bad adjacency size");
  for (int r = 0; r < 4; ++r) {
    const auto& row = adjacency[static_cast<std::size_t>(r)].as_array();
    if (row.size() != 4) throw std::runtime_error("campaign: bad adjacency row");
    for (int c = 0; c < 4; ++c)
      pair.adjacency[r][c] =
          static_cast<std::uint64_t>(row[static_cast<std::size_t>(c)].as_int());
  }
  return pair;
}

}  // namespace

Json stats_to_json(const diff::LevelStats& stats, bool legacy_pair) {
  Json j = Json::object();
  j["comparisons"] = static_cast<long long>(stats.comparisons);
  if (legacy_pair) {
    // Pre-registry layout: the single pair's counters flat in the stats
    // object, exactly the bytes the two-slot era wrote.
    if (stats.pairs.size() != 1)
      throw std::runtime_error("campaign: legacy stats need exactly one pair");
    pair_stats_to_object(stats.pairs[0], j);
    return j;
  }
  Json pairs = Json::array();
  for (const diff::PairStats& pair : stats.pairs) {
    Json p = Json::object();
    pair_stats_to_object(pair, p);
    pairs.push_back(std::move(p));
  }
  j["pairs"] = std::move(pairs);
  return j;
}

diff::LevelStats stats_from_json(const Json& j, std::size_t n_pairs) {
  diff::LevelStats stats;
  stats.comparisons = static_cast<std::uint64_t>(j.at("comparisons").as_int());
  if (j.contains("pairs")) {
    for (const auto& p : j.at("pairs").as_array())
      stats.pairs.push_back(pair_stats_from_object(p));
  } else {
    stats.pairs.push_back(pair_stats_from_object(j));
  }
  if (stats.pairs.size() != n_pairs)
    throw std::runtime_error("campaign: stats platform-pair count mismatch");
  return stats;
}

Json record_to_json(const diff::DiscrepancyRecord& rec, bool legacy_pair) {
  Json j = Json::object();
  j["program"] = static_cast<long long>(rec.program_index);
  j["input"] = rec.input_index;
  j["level"] = opt::to_string(rec.level);
  j["class"] = diff::class_index(rec.cls);
  if (legacy_pair) {
    if (rec.outcomes.size() != 2 || rec.printed.size() != 2)
      throw std::runtime_error("campaign: legacy record needs two platforms");
    Json nv = Json::object();
    nv["outcome"] = outcome_to_json(rec.outcomes[0]);
    nv["printed"] = rec.printed[0];
    j["nvcc"] = std::move(nv);
    Json amd = Json::object();
    amd["outcome"] = outcome_to_json(rec.outcomes[1]);
    amd["printed"] = rec.printed[1];
    j["hipcc"] = std::move(amd);
    return j;
  }
  // Per-platform pair classes, aligned with the platform list; the
  // baseline entry (and any agreeing platform) is None, encoded as -1.
  Json classes = Json::array();
  for (const diff::DiscrepancyClass cls : rec.pair_cls)
    classes.push_back(cls == diff::DiscrepancyClass::None
                          ? -1
                          : diff::class_index(cls));
  j["classes"] = std::move(classes);
  Json platforms = Json::array();
  for (std::size_t p = 0; p < rec.outcomes.size(); ++p) {
    Json entry = Json::object();
    entry["outcome"] = outcome_to_json(rec.outcomes[p]);
    entry["printed"] = rec.printed[p];
    platforms.push_back(std::move(entry));
  }
  j["platforms"] = std::move(platforms);
  return j;
}

diff::DiscrepancyRecord record_from_json(const Json& j,
                                         std::size_t n_platforms) {
  diff::DiscrepancyRecord rec;
  rec.program_index = static_cast<std::uint64_t>(j.at("program").as_int());
  rec.input_index = static_cast<int>(j.at("input").as_int());
  if (!opt::parse_opt_level(j.at("level").as_string(), &rec.level))
    throw std::runtime_error("campaign: bad record level");
  rec.cls = diff::class_from_index(static_cast<int>(j.at("class").as_int()));
  if (j.contains("nvcc")) {
    rec.outcomes.push_back(outcome_from_json(j.at("nvcc").at("outcome")));
    rec.printed.push_back(j.at("nvcc").at("printed").as_string());
    rec.outcomes.push_back(outcome_from_json(j.at("hipcc").at("outcome")));
    rec.printed.push_back(j.at("hipcc").at("printed").as_string());
    rec.pair_cls = {diff::DiscrepancyClass::None, rec.cls};
  } else {
    for (const auto& entry : j.at("platforms").as_array()) {
      rec.outcomes.push_back(outcome_from_json(entry.at("outcome")));
      rec.printed.push_back(entry.at("printed").as_string());
    }
    for (const auto& cls : j.at("classes").as_array()) {
      const auto index = static_cast<int>(cls.as_int());
      rec.pair_cls.push_back(index < 0 ? diff::DiscrepancyClass::None
                                       : diff::class_from_index(index));
    }
    if (rec.pair_cls.size() != rec.outcomes.size())
      throw std::runtime_error("campaign: record classes/platforms mismatch");
  }
  if (rec.outcomes.size() != n_platforms)
    throw std::runtime_error("campaign: record platform count mismatch");
  return rec;
}

Json progress_to_json(const ShardProgress& progress) {
  const bool legacy =
      legacy_platform_pair(platform_names_from_echo(progress.config_echo));
  Json j = Json::object();
  j["format"] = kShardFormat;
  j["version"] = 1;
  j["config"] = progress.config_echo;
  Json shard = Json::object();
  shard["index"] = progress.shard.index;
  shard["count"] = progress.shard.count;
  j["shard"] = std::move(shard);
  Json range = Json::object();
  range["begin"] = static_cast<long long>(progress.begin);
  range["end"] = static_cast<long long>(progress.end);
  j["range"] = std::move(range);
  j["cursor"] = static_cast<long long>(progress.cursor);
  Json per_level = Json::array();
  for (const auto& stats : progress.per_level)
    per_level.push_back(stats_to_json(stats, legacy));
  j["per_level"] = std::move(per_level);
  Json records = Json::array();
  for (const auto& rec : progress.records)
    records.push_back(record_to_json(rec, legacy));
  j["records"] = std::move(records);
  return j;
}

ShardProgress progress_from_json(const Json& j) {
  check_format(j, kShardFormat, "gpudiff shard checkpoint");
  ShardProgress progress;
  progress.config_echo = j.at("config");
  const auto n_platforms =
      platform_names_from_echo(progress.config_echo).size();
  progress.shard.index = static_cast<int>(j.at("shard").at("index").as_int());
  progress.shard.count = static_cast<int>(j.at("shard").at("count").as_int());
  progress.shard.validate();
  progress.begin = static_cast<std::uint64_t>(j.at("range").at("begin").as_int());
  progress.end = static_cast<std::uint64_t>(j.at("range").at("end").as_int());
  progress.cursor = static_cast<std::uint64_t>(j.at("cursor").as_int());
  if (progress.begin > progress.end || progress.cursor < progress.begin ||
      progress.cursor > progress.end)
    throw std::runtime_error("campaign: checkpoint cursor out of range");
  const auto n_levels = progress.config_echo.at("levels").as_array().size();
  const auto& per_level = j.at("per_level").as_array();
  if (per_level.size() != n_levels)
    throw std::runtime_error("campaign: checkpoint level count mismatch");
  for (const auto& stats : per_level)
    progress.per_level.push_back(stats_from_json(stats, n_platforms - 1));
  for (const auto& rec : j.at("records").as_array())
    progress.records.push_back(record_from_json(rec, n_platforms));
  return progress;
}

Json block_to_json(const ResultBlock& block, int lease_index,
                   int lease_count) {
  const bool legacy =
      legacy_platform_pair(platform_names_from_echo(block.config_echo));
  Json j = Json::object();
  j["format"] = kLeaseFormat;
  j["version"] = 1;
  j["config"] = block.config_echo;
  Json lease = Json::object();
  lease["index"] = lease_index;
  lease["count"] = lease_count;
  j["lease"] = std::move(lease);
  Json range = Json::object();
  range["begin"] = static_cast<long long>(block.begin);
  range["end"] = static_cast<long long>(block.end);
  j["range"] = std::move(range);
  Json per_level = Json::array();
  for (const auto& stats : block.per_level)
    per_level.push_back(stats_to_json(stats, legacy));
  j["per_level"] = std::move(per_level);
  Json records = Json::array();
  for (const auto& rec : block.records)
    records.push_back(record_to_json(rec, legacy));
  j["records"] = std::move(records);
  return j;
}

ResultBlock block_from_json(const Json& j, int* lease_index,
                            int* lease_count) {
  check_format(j, kLeaseFormat, "gpudiff lease result");
  ResultBlock block;
  block.config_echo = j.at("config");
  const auto n_platforms = platform_names_from_echo(block.config_echo).size();
  if (lease_index != nullptr)
    *lease_index = static_cast<int>(j.at("lease").at("index").as_int());
  if (lease_count != nullptr)
    *lease_count = static_cast<int>(j.at("lease").at("count").as_int());
  block.begin = static_cast<std::uint64_t>(j.at("range").at("begin").as_int());
  block.end = static_cast<std::uint64_t>(j.at("range").at("end").as_int());
  if (block.begin > block.end)
    throw std::runtime_error("campaign: lease result range inverted");
  const auto n_levels = block.config_echo.at("levels").as_array().size();
  const auto& per_level = j.at("per_level").as_array();
  if (per_level.size() != n_levels)
    throw std::runtime_error("campaign: lease result level count mismatch");
  for (const auto& stats : per_level)
    block.per_level.push_back(stats_from_json(stats, n_platforms - 1));
  for (const auto& rec : j.at("records").as_array())
    block.records.push_back(record_from_json(rec, n_platforms));
  return block;
}

std::string checkpoint_path(const std::string& dir, const ShardSpec& spec) {
  spec.validate();
  return dir + "/shard-" + std::to_string(spec.index) + "-of-" +
         std::to_string(spec.count) + ".json";
}

void save_checkpoint(const std::string& dir, const ShardProgress& progress) {
  std::filesystem::create_directories(dir);
  support::write_file_atomic(checkpoint_path(dir, progress.shard),
                             progress_to_json(progress).dump(1));
}

ShardProgress load_checkpoint(const std::string& path) {
  return progress_from_json(Json::parse(support::read_file(path)));
}

Json results_to_json(const diff::CampaignResults& results,
                     const Json* config_echo) {
  // The default nvcc/hipcc selection keeps the pre-registry document
  // layout (no "platforms" member, flat stats, nvcc/hipcc record keys) so
  // paper-default campaign reports stay byte-identical across the
  // registry refactor — locked by tests/golden and the CI cmp jobs.
  const bool legacy = legacy_platform_pair(results.platforms);
  Json j = Json::object();
  j["format"] = kResultsFormat;
  j["version"] = config_echo == nullptr ? 1 : 2;
  if (config_echo != nullptr) {
    j["config"] = *config_echo;
    j["fingerprint"] = fingerprint_digest(*config_echo);
  }
  j["seed"] = static_cast<long long>(results.seed);
  j["precision"] = ir::to_string(results.precision);
  j["hipify_converted"] = results.hipify_converted;
  j["num_programs"] = results.num_programs;
  j["inputs_per_program"] = results.inputs_per_program;
  j["levels"] = levels_to_json(results.levels);
  if (!legacy) {
    Json platforms = Json::array();
    for (const auto& name : results.platforms) platforms.push_back(name);
    j["platforms"] = std::move(platforms);
  }
  Json per_level = Json::array();
  for (const auto& stats : results.per_level)
    per_level.push_back(stats_to_json(stats, legacy));
  j["per_level"] = std::move(per_level);
  Json records = Json::array();
  for (const auto& rec : results.records)
    records.push_back(record_to_json(rec, legacy));
  j["records"] = std::move(records);
  Json totals = Json::object();
  totals["comparisons"] = static_cast<long long>(results.comparisons_total());
  totals["runs"] = static_cast<long long>(results.runs_total());
  totals["discrepancies"] = static_cast<long long>(results.discrepancies_total());
  j["totals"] = std::move(totals);
  return j;
}

diff::CampaignResults results_from_json(const Json& j) {
  check_format(j, kResultsFormat, "gpudiff campaign results file",
               /*max_version=*/2);
  if (j.at("version").as_int() >= 2) {
    // The version-2 extras are pure annotation over the version-1 fields,
    // but an annotation that lies is worse than none: the embedded
    // fingerprint must be the digest of the embedded config bytes.
    if (!j.contains("config") || !j.contains("fingerprint"))
      throw std::runtime_error(
          "campaign: version-2 results file lacks config/fingerprint");
    if (j.at("fingerprint").as_string() != fingerprint_digest(j.at("config")))
      throw std::runtime_error(
          "campaign: results fingerprint does not match its embedded config");
  }
  diff::CampaignResults results;
  results.seed = static_cast<std::uint64_t>(j.at("seed").as_int());
  if (!ir::parse_precision(j.at("precision").as_string(), &results.precision))
    throw std::runtime_error("campaign: bad precision " +
                             j.at("precision").as_string());
  results.hipify_converted = j.at("hipify_converted").as_bool();
  results.num_programs = static_cast<int>(j.at("num_programs").as_int());
  results.inputs_per_program =
      static_cast<int>(j.at("inputs_per_program").as_int());
  results.levels = levels_from_json(j.at("levels"));
  results.platforms.clear();
  if (j.contains("platforms")) {
    for (const auto& name : j.at("platforms").as_array())
      results.platforms.push_back(name.as_string());
    if (results.platforms.size() < 2)
      throw std::runtime_error("campaign: results platform list too short");
  } else {
    results.platforms = {"nvcc", "hipcc"};
  }
  for (const auto& stats : j.at("per_level").as_array())
    results.per_level.push_back(
        stats_from_json(stats, results.platforms.size() - 1));
  if (results.per_level.size() != results.levels.size())
    throw std::runtime_error("campaign: results level count mismatch");
  for (const auto& rec : j.at("records").as_array())
    results.records.push_back(record_from_json(rec, results.platforms.size()));
  return results;
}

}  // namespace gpudiff::campaign
