#include "campaign/checkpoint.hpp"

#include <filesystem>
#include <stdexcept>

namespace gpudiff::campaign {

using support::Json;
using support::JsonArray;

namespace {

constexpr const char* kShardFormat = "gpudiff-shard";
constexpr const char* kLeaseFormat = "gpudiff-lease";
constexpr const char* kResultsFormat = "gpudiff-campaign-results";

Json levels_to_json(const std::vector<opt::OptLevel>& levels) {
  Json arr = Json::array();
  for (const auto level : levels) arr.push_back(opt::to_string(level));
  return arr;
}

std::vector<opt::OptLevel> levels_from_json(const Json& arr) {
  std::vector<opt::OptLevel> levels;
  for (const auto& l : arr.as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("campaign: bad opt level " + l.as_string());
    levels.push_back(level);
  }
  return levels;
}

Json outcome_to_json(const fp::Outcome& o) {
  Json j = Json::object();
  j["cls"] = static_cast<int>(o.cls);
  j["neg"] = o.negative;
  return j;
}

fp::Outcome outcome_from_json(const Json& j) {
  const auto cls = j.at("cls").as_int();
  if (cls < 0 || cls > 3)
    throw std::runtime_error("campaign: bad outcome class");
  fp::Outcome o;
  o.cls = static_cast<fp::OutcomeClass>(cls);
  o.negative = j.at("neg").as_bool();
  return o;
}

}  // namespace

// Reject foreign documents with a real diagnostic (a missing "format"
// key must not surface as a low-level JSON type error) and refuse
// versions this binary does not understand.
void check_format(const Json& j, const char* format, const char* what) {
  if (!j.is_object() || !j.contains("format") || !j.at("format").is_string() ||
      j.at("format").as_string() != format)
    throw std::runtime_error(std::string("campaign: not a ") + what);
  if (!j.contains("version") || !j.at("version").is_number() ||
      j.at("version").as_int() != 1)
    throw std::runtime_error(std::string("campaign: unsupported ") + what +
                             " version");
}

Json config_to_json(const diff::CampaignConfig& config) {
  Json j = Json::object();
  j["seed"] = static_cast<long long>(config.seed);
  j["precision"] = ir::to_string(config.gen.precision);
  j["hipify_converted"] = config.hipify_converted;
  j["num_programs"] = config.num_programs;
  j["inputs_per_program"] = config.inputs_per_program;
  j["levels"] = levels_to_json(config.levels);
  j["max_records"] = static_cast<long long>(config.max_records);

  // The full generator grammar: any change to it changes every generated
  // program, so it is part of the fingerprint resume/merge validate.
  const gen::GenConfig& g = config.gen;
  Json gj = Json::object();
  gj["max_expr_depth"] = g.max_expr_depth;
  gj["min_stmts"] = g.min_stmts;
  gj["max_stmts"] = g.max_stmts;
  gj["max_loop_nest"] = g.max_loop_nest;
  gj["max_block_stmts"] = g.max_block_stmts;
  gj["min_scalar_params"] = g.min_scalar_params;
  gj["max_scalar_params"] = g.max_scalar_params;
  gj["max_int_params"] = g.max_int_params;
  gj["max_array_params"] = g.max_array_params;
  gj["allow_loops"] = g.allow_loops;
  gj["allow_ifs"] = g.allow_ifs;
  gj["allow_arrays"] = g.allow_arrays;
  gj["allow_calls"] = g.allow_calls;
  gj["w_bin"] = g.w_bin;
  gj["w_call"] = g.w_call;
  gj["w_neg"] = g.w_neg;
  gj["w_leaf"] = g.w_leaf;
  gj["w_leaf_literal"] = g.w_leaf_literal;
  gj["w_leaf_param"] = g.w_leaf_param;
  gj["w_leaf_temp"] = g.w_leaf_temp;
  gj["w_leaf_array"] = g.w_leaf_array;
  Json fns = Json::array();
  for (const auto fn : g.functions) fns.push_back(static_cast<int>(fn));
  gj["functions"] = std::move(fns);
  j["gen"] = std::move(gj);
  return j;
}

Json stats_to_json(const diff::LevelStats& stats) {
  Json j = Json::object();
  j["comparisons"] = static_cast<long long>(stats.comparisons);
  Json classes = Json::array();
  for (const auto c : stats.class_counts)
    classes.push_back(static_cast<long long>(c));
  j["class_counts"] = std::move(classes);
  Json adjacency = Json::array();
  for (const auto& row : stats.adjacency) {
    Json r = Json::array();
    for (const auto c : row) r.push_back(static_cast<long long>(c));
    adjacency.push_back(std::move(r));
  }
  j["adjacency"] = std::move(adjacency);
  return j;
}

diff::LevelStats stats_from_json(const Json& j) {
  diff::LevelStats stats;
  stats.comparisons = static_cast<std::uint64_t>(j.at("comparisons").as_int());
  const auto& classes = j.at("class_counts").as_array();
  if (classes.size() != stats.class_counts.size())
    throw std::runtime_error("campaign: bad class_counts size");
  for (std::size_t i = 0; i < classes.size(); ++i)
    stats.class_counts[i] = static_cast<std::uint64_t>(classes[i].as_int());
  const auto& adjacency = j.at("adjacency").as_array();
  if (adjacency.size() != 4)
    throw std::runtime_error("campaign: bad adjacency size");
  for (int r = 0; r < 4; ++r) {
    const auto& row = adjacency[static_cast<std::size_t>(r)].as_array();
    if (row.size() != 4) throw std::runtime_error("campaign: bad adjacency row");
    for (int c = 0; c < 4; ++c)
      stats.adjacency[r][c] =
          static_cast<std::uint64_t>(row[static_cast<std::size_t>(c)].as_int());
  }
  return stats;
}

Json record_to_json(const diff::DiscrepancyRecord& rec) {
  Json j = Json::object();
  j["program"] = static_cast<long long>(rec.program_index);
  j["input"] = rec.input_index;
  j["level"] = opt::to_string(rec.level);
  j["class"] = diff::class_index(rec.cls);
  Json nv = Json::object();
  nv["outcome"] = outcome_to_json(rec.nvcc_outcome);
  nv["printed"] = rec.nvcc_printed;
  j["nvcc"] = std::move(nv);
  Json amd = Json::object();
  amd["outcome"] = outcome_to_json(rec.hipcc_outcome);
  amd["printed"] = rec.hipcc_printed;
  j["hipcc"] = std::move(amd);
  return j;
}

diff::DiscrepancyRecord record_from_json(const Json& j) {
  diff::DiscrepancyRecord rec;
  rec.program_index = static_cast<std::uint64_t>(j.at("program").as_int());
  rec.input_index = static_cast<int>(j.at("input").as_int());
  if (!opt::parse_opt_level(j.at("level").as_string(), &rec.level))
    throw std::runtime_error("campaign: bad record level");
  rec.cls = diff::class_from_index(static_cast<int>(j.at("class").as_int()));
  rec.nvcc_outcome = outcome_from_json(j.at("nvcc").at("outcome"));
  rec.nvcc_printed = j.at("nvcc").at("printed").as_string();
  rec.hipcc_outcome = outcome_from_json(j.at("hipcc").at("outcome"));
  rec.hipcc_printed = j.at("hipcc").at("printed").as_string();
  return rec;
}

Json progress_to_json(const ShardProgress& progress) {
  Json j = Json::object();
  j["format"] = kShardFormat;
  j["version"] = 1;
  j["config"] = progress.config_echo;
  Json shard = Json::object();
  shard["index"] = progress.shard.index;
  shard["count"] = progress.shard.count;
  j["shard"] = std::move(shard);
  Json range = Json::object();
  range["begin"] = static_cast<long long>(progress.begin);
  range["end"] = static_cast<long long>(progress.end);
  j["range"] = std::move(range);
  j["cursor"] = static_cast<long long>(progress.cursor);
  Json per_level = Json::array();
  for (const auto& stats : progress.per_level)
    per_level.push_back(stats_to_json(stats));
  j["per_level"] = std::move(per_level);
  Json records = Json::array();
  for (const auto& rec : progress.records) records.push_back(record_to_json(rec));
  j["records"] = std::move(records);
  return j;
}

ShardProgress progress_from_json(const Json& j) {
  check_format(j, kShardFormat, "gpudiff shard checkpoint");
  ShardProgress progress;
  progress.config_echo = j.at("config");
  progress.shard.index = static_cast<int>(j.at("shard").at("index").as_int());
  progress.shard.count = static_cast<int>(j.at("shard").at("count").as_int());
  progress.shard.validate();
  progress.begin = static_cast<std::uint64_t>(j.at("range").at("begin").as_int());
  progress.end = static_cast<std::uint64_t>(j.at("range").at("end").as_int());
  progress.cursor = static_cast<std::uint64_t>(j.at("cursor").as_int());
  if (progress.begin > progress.end || progress.cursor < progress.begin ||
      progress.cursor > progress.end)
    throw std::runtime_error("campaign: checkpoint cursor out of range");
  const auto n_levels = progress.config_echo.at("levels").as_array().size();
  const auto& per_level = j.at("per_level").as_array();
  if (per_level.size() != n_levels)
    throw std::runtime_error("campaign: checkpoint level count mismatch");
  for (const auto& stats : per_level)
    progress.per_level.push_back(stats_from_json(stats));
  for (const auto& rec : j.at("records").as_array())
    progress.records.push_back(record_from_json(rec));
  return progress;
}

Json block_to_json(const ResultBlock& block, int lease_index,
                   int lease_count) {
  Json j = Json::object();
  j["format"] = kLeaseFormat;
  j["version"] = 1;
  j["config"] = block.config_echo;
  Json lease = Json::object();
  lease["index"] = lease_index;
  lease["count"] = lease_count;
  j["lease"] = std::move(lease);
  Json range = Json::object();
  range["begin"] = static_cast<long long>(block.begin);
  range["end"] = static_cast<long long>(block.end);
  j["range"] = std::move(range);
  Json per_level = Json::array();
  for (const auto& stats : block.per_level)
    per_level.push_back(stats_to_json(stats));
  j["per_level"] = std::move(per_level);
  Json records = Json::array();
  for (const auto& rec : block.records) records.push_back(record_to_json(rec));
  j["records"] = std::move(records);
  return j;
}

ResultBlock block_from_json(const Json& j, int* lease_index,
                            int* lease_count) {
  check_format(j, kLeaseFormat, "gpudiff lease result");
  ResultBlock block;
  block.config_echo = j.at("config");
  if (lease_index != nullptr)
    *lease_index = static_cast<int>(j.at("lease").at("index").as_int());
  if (lease_count != nullptr)
    *lease_count = static_cast<int>(j.at("lease").at("count").as_int());
  block.begin = static_cast<std::uint64_t>(j.at("range").at("begin").as_int());
  block.end = static_cast<std::uint64_t>(j.at("range").at("end").as_int());
  if (block.begin > block.end)
    throw std::runtime_error("campaign: lease result range inverted");
  const auto n_levels = block.config_echo.at("levels").as_array().size();
  const auto& per_level = j.at("per_level").as_array();
  if (per_level.size() != n_levels)
    throw std::runtime_error("campaign: lease result level count mismatch");
  for (const auto& stats : per_level)
    block.per_level.push_back(stats_from_json(stats));
  for (const auto& rec : j.at("records").as_array())
    block.records.push_back(record_from_json(rec));
  return block;
}

std::string checkpoint_path(const std::string& dir, const ShardSpec& spec) {
  spec.validate();
  return dir + "/shard-" + std::to_string(spec.index) + "-of-" +
         std::to_string(spec.count) + ".json";
}

void save_checkpoint(const std::string& dir, const ShardProgress& progress) {
  std::filesystem::create_directories(dir);
  support::write_file_atomic(checkpoint_path(dir, progress.shard),
                             progress_to_json(progress).dump(1));
}

ShardProgress load_checkpoint(const std::string& path) {
  return progress_from_json(Json::parse(support::read_file(path)));
}

Json results_to_json(const diff::CampaignResults& results) {
  Json j = Json::object();
  j["format"] = kResultsFormat;
  j["version"] = 1;
  j["seed"] = static_cast<long long>(results.seed);
  j["precision"] = ir::to_string(results.precision);
  j["hipify_converted"] = results.hipify_converted;
  j["num_programs"] = results.num_programs;
  j["inputs_per_program"] = results.inputs_per_program;
  j["levels"] = levels_to_json(results.levels);
  Json per_level = Json::array();
  for (const auto& stats : results.per_level)
    per_level.push_back(stats_to_json(stats));
  j["per_level"] = std::move(per_level);
  Json records = Json::array();
  for (const auto& rec : results.records) records.push_back(record_to_json(rec));
  j["records"] = std::move(records);
  Json totals = Json::object();
  totals["comparisons"] = static_cast<long long>(results.comparisons_total());
  totals["runs"] = static_cast<long long>(results.runs_total());
  totals["discrepancies"] = static_cast<long long>(results.discrepancies_total());
  j["totals"] = std::move(totals);
  return j;
}

diff::CampaignResults results_from_json(const Json& j) {
  check_format(j, kResultsFormat, "gpudiff campaign results file");
  diff::CampaignResults results;
  results.seed = static_cast<std::uint64_t>(j.at("seed").as_int());
  if (!ir::parse_precision(j.at("precision").as_string(), &results.precision))
    throw std::runtime_error("campaign: bad precision " +
                             j.at("precision").as_string());
  results.hipify_converted = j.at("hipify_converted").as_bool();
  results.num_programs = static_cast<int>(j.at("num_programs").as_int());
  results.inputs_per_program =
      static_cast<int>(j.at("inputs_per_program").as_int());
  results.levels = levels_from_json(j.at("levels"));
  for (const auto& stats : j.at("per_level").as_array())
    results.per_level.push_back(stats_from_json(stats));
  if (results.per_level.size() != results.levels.size())
    throw std::runtime_error("campaign: results level count mismatch");
  for (const auto& rec : j.at("records").as_array())
    results.records.push_back(record_from_json(rec));
  return results;
}

}  // namespace gpudiff::campaign
