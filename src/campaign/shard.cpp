#include "campaign/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "campaign/checkpoint.hpp"

namespace gpudiff::campaign {

void ShardSpec::validate() const {
  if (count <= 0 || index < 0 || index >= count)
    throw std::invalid_argument("shard: index " + std::to_string(index) +
                                " not in [0, " + std::to_string(count) + ")");
}

std::pair<std::uint64_t, std::uint64_t> ShardSpec::program_range(
    int num_programs) const {
  validate();
  if (num_programs < 0)
    throw std::invalid_argument("shard: negative program count");
  const auto n = static_cast<std::uint64_t>(num_programs);
  const auto i = static_cast<std::uint64_t>(index);
  const auto c = static_cast<std::uint64_t>(count);
  return {n * i / c, n * (i + 1) / c};
}

bool parse_shard(const std::string& text, ShardSpec* out) {
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size())
    return false;
  const std::string idx = text.substr(0, slash);
  const std::string cnt = text.substr(slash + 1);
  const auto all_digits = [](const std::string& s) {
    return !s.empty() &&
           std::all_of(s.begin(), s.end(), [](char c) { return c >= '0' && c <= '9'; });
  };
  if (!all_digits(idx) || !all_digits(cnt)) return false;
  ShardSpec spec;
  try {
    spec.index = std::stoi(idx);
    spec.count = std::stoi(cnt);
  } catch (const std::exception&) {
    return false;
  }
  if (spec.count <= 0 || spec.index < 0 || spec.index >= spec.count) return false;
  if (out != nullptr) *out = spec;
  return true;
}

std::string to_string(const ShardSpec& spec) {
  return std::to_string(spec.index) + "/" + std::to_string(spec.count);
}

ShardProgress run_shard(const diff::CampaignConfig& config,
                        const ShardRunOptions& options) {
  const auto [begin, end] = options.shard.program_range(config.num_programs);

  ShardProgress progress;
  progress.config_echo = config_to_json(config);
  progress.shard = options.shard;
  progress.begin = begin;
  progress.end = end;
  progress.cursor = begin;
  progress.per_level.assign(config.levels.size(),
                            diff::LevelStats::zero(config.platforms.size()));

  const std::string path =
      options.checkpoint_dir.empty()
          ? std::string()
          : checkpoint_path(options.checkpoint_dir, options.shard);
  if (!options.resume && !path.empty() && std::filesystem::exists(path)) {
    // The most common restart mistake: a scheduler re-launches the same
    // command line without --resume.  Silently restarting from program 0
    // would overwrite hours of checkpointed work, so refuse instead.
    throw std::runtime_error(
        "run_shard: checkpoint already exists: " + path +
        " (pass resume to continue it, or delete it to start fresh)");
  }
  if (options.resume) {
    if (path.empty())
      throw std::invalid_argument("run_shard: resume needs a checkpoint dir");
    if (std::filesystem::exists(path)) {
      ShardProgress loaded = load_checkpoint(path);
      if (loaded.config_echo != progress.config_echo)
        throw std::runtime_error(
            "run_shard: checkpoint was written under a different campaign "
            "configuration: " + path);
      if (loaded.shard != options.shard || loaded.begin != begin ||
          loaded.end != end)
        throw std::runtime_error("run_shard: checkpoint shard mismatch: " + path);
      progress = std::move(loaded);
    }
    // No checkpoint yet: a cold resume starts from the top.
  }

  // Snapshot the starting state up front: an empty-range shard (more
  // shards than programs) still leaves a mergeable result file, and a kill
  // before the first block boundary still finds a resumable checkpoint.
  if (!path.empty()) save_checkpoint(options.checkpoint_dir, progress);

  const auto every = static_cast<std::uint64_t>(
      std::max(1, options.checkpoint_every));
  while (progress.cursor < progress.end) {
    if (options.stop_requested && options.stop_requested()) break;
    const std::uint64_t block_end =
        std::min(progress.end, progress.cursor + every);
    diff::RangeOutcome block =
        diff::run_campaign_range(config, progress.cursor, block_end);
    for (std::size_t li = 0; li < progress.per_level.size(); ++li)
      progress.per_level[li].merge(block.per_level[li]);
    // Blocks arrive in program order, so appending the block's canonical
    // prefix until the cap keeps exactly the shard's lowest
    // (program, input, level) records.
    diff::append_capped_records(progress.records, std::move(block.records),
                                config.max_records);
    progress.cursor = block_end;
    if (!path.empty()) save_checkpoint(options.checkpoint_dir, progress);
    if (options.on_progress) options.on_progress(progress);
  }
  return progress;
}

}  // namespace gpudiff::campaign
