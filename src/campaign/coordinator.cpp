#include "campaign/coordinator.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "campaign/scheduler.hpp"
#include "net/wire.hpp"
#include "support/lockfile.hpp"

namespace gpudiff::campaign {

namespace {

std::int64_t seq_of(const support::Json& request) {
  return request.get_or("seq", support::Json(std::int64_t{0})).as_int();
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty())
    throw std::invalid_argument("Coordinator: empty state directory");
  std::filesystem::create_directories(options_.dir);
  recover();
  listener_.listen(options_.bind_host, options_.port);
}

Coordinator::~Coordinator() { stop(); }

std::string Coordinator::claim_path(int lease) const {
  return LeaseBoard::claim_path(options_.dir, lease);
}

std::string Coordinator::done_path(int lease) const {
  return LeaseBoard::done_path(options_.dir, lease);
}

void Coordinator::recover() {
  if (!std::filesystem::exists(LeaseBoard::manifest_path(options_.dir)))
    return;  // fresh directory; the first hello will seed the manifest
  const support::Json manifest = LeaseBoard::load_manifest(options_.dir);
  config_echo_ = manifest.at("config");
  lease_size_ = static_cast<int>(manifest.at("lease_size").as_int());
  lease_count_ = static_cast<int>(manifest.at("lease_count").as_int());
  have_manifest_ = true;
  const auto now = std::chrono::steady_clock::now();
  for (int k = 0; k < lease_count_; ++k) {
    if (std::filesystem::exists(done_path(k))) done_.insert(k);
    const std::string claim = claim_path(k);
    if (!std::filesystem::exists(claim)) continue;
    try {
      const support::Json j =
          support::Json::parse(support::read_file(claim));
      // Recovered claims restart with beat = now: a live owner re-beats
      // within one heartbeat interval; a dead one ages out and is stolen.
      claims_[k] = Claim{j.at("worker").as_string(), now};
    } catch (const std::exception&) {
      // A torn claim file cannot happen through write-then-rename; treat
      // unreadable litter as no claim (worst case: duplicate work).
      support::remove_file(claim);
    }
  }
}

void Coordinator::persist_claim(int lease, const std::string& worker) {
  // Same bytes a filesystem-board worker would link into place, so the
  // state directory stays a valid lease directory.
  support::Json claim = support::Json::object();
  claim["lease"] = lease;
  claim["worker"] = worker;
  support::write_file_atomic(claim_path(lease), claim.dump(), ".tmp");
}

void Coordinator::start() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  threads_.emplace_back([this] { accept_loop(); });
}

void Coordinator::stop() {
  if (stop_.exchange(true)) return;
  // Join before closing the listener: the accept loop polls stop_ at the
  // I/O timeout, so it exits on its own, and the fd is only closed once
  // no thread can still be polling it.  Any serve thread spawned before
  // the flag flipped landed in threads_ before the swap (the accept loop
  // re-checks stop_ under threads_mu_ before emplacing).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  listener_.close();
}

int Coordinator::done_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(done_.size());
}

void Coordinator::accept_loop() {
  while (!stop_.load()) {
    net::Socket socket = listener_.accept(options_.io_timeout_seconds);
    if (!socket.valid()) continue;  // timeout, or listener closed by stop()
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (stop_.load()) return;
    threads_.emplace_back(
        [this, s = std::move(socket)]() mutable { serve(std::move(s)); });
  }
}

void Coordinator::serve(net::Socket socket) {
  std::string worker;  // empty until a hello succeeds
  while (!stop_.load()) {
    support::Json request;
    const net::IoStatus status = net::recv_message(
        socket, &request, options_.io_timeout_seconds);
    if (status == net::IoStatus::Timeout) continue;  // poll stop_
    if (status != net::IoStatus::Ok) return;  // closed or desynchronized
    support::Json response;
    try {
      if (request.get_or("op", support::Json("")).as_string() == "hello")
        response = handle_hello(request, &worker);
      else if (worker.empty())
        response = net::error_response(
            seq_of(request), "request before hello", /*fatal=*/true);
      else
        response = handle(request, worker);
    } catch (const std::exception& e) {
      // Shape errors are caught per-op and reported fatal; anything that
      // escapes to here is a server-side condition (disk I/O) the client
      // may legitimately retry.
      response = net::error_response(seq_of(request), e.what(),
                                     /*fatal=*/false);
    }
    if (net::send_message(socket, response, options_.io_timeout_seconds) !=
        net::IoStatus::Ok)
      return;
    if (!response.get_or("ok", support::Json(false)).as_bool() &&
        response.get_or("fatal", support::Json(false)).as_bool())
      return;  // refused connections are closed, not left to flounder
  }
}

support::Json Coordinator::handle_hello(const support::Json& request,
                                        std::string* worker) {
  const std::int64_t seq = seq_of(request);
  const auto refuse = [&](const std::string& error) {
    return net::error_response(seq, error, /*fatal=*/true);
  };
  const std::int64_t version =
      request.get_or("version", support::Json(std::int64_t{0})).as_int();
  if (version != net::kWireVersion)
    return refuse("wire protocol version " + std::to_string(version) +
                  " unsupported (coordinator speaks version " +
                  std::to_string(net::kWireVersion) + ")");
  if (!request.contains("worker") || !request.at("worker").is_string() ||
      request.at("worker").as_string().empty())
    return refuse("hello carries no worker id");
  if (!request.contains("config") || !request.at("config").is_object())
    return refuse("hello carries no campaign configuration");
  const int lease_size = static_cast<int>(
      request.get_or("lease_size", support::Json(std::int64_t{0})).as_int());
  const int lease_count = static_cast<int>(
      request.get_or("lease_count", support::Json(std::int64_t{-1})).as_int());
  if (lease_size < 1 || lease_count < 0)
    return refuse("hello carries no lease geometry");

  std::lock_guard<std::mutex> lock(mu_);
  if (!have_manifest_) {
    // First worker seeds the campaign.  Persist before acknowledging so a
    // coordinator killed right after the hello still refuses a different
    // campaign on restart.
    const support::Json manifest =
        make_manifest(request.at("config"), lease_size, lease_count);
    support::write_file_atomic(LeaseBoard::manifest_path(options_.dir),
                               manifest.dump(1), ".tmp");
    config_echo_ = request.at("config");
    lease_size_ = lease_size;
    lease_count_ = lease_count;
    have_manifest_ = true;
  } else {
    if (request.at("config") != config_echo_)
      return refuse("campaign configuration mismatch: this coordinator "
                    "serves a different campaign");
    if (lease_size != lease_size_ || lease_count != lease_count_)
      return refuse("lease geometry mismatch: every worker of one campaign "
                    "must agree on --lease-size");
  }
  *worker = request.at("worker").as_string();
  return net::ok_response(seq);
}

support::Json Coordinator::handle(const support::Json& request,
                                  const std::string& worker) {
  const std::int64_t seq = seq_of(request);
  const std::string op =
      request.get_or("op", support::Json("")).as_string();
  const auto lease_of = [&]() -> int {
    if (!request.contains("lease") || !request.at("lease").is_number())
      throw std::invalid_argument("request carries no lease index");
    const int k = static_cast<int>(request.at("lease").as_int());
    if (k < 0 || k >= lease_count_)
      throw std::invalid_argument("lease index out of range");
    return k;
  };

  std::lock_guard<std::mutex> lock(mu_);
  try {
    if (op == "claim") {
      const int k = lease_of();
      support::Json resp = net::ok_response(seq);
      const auto it = claims_.find(k);
      if (it == claims_.end()) {
        persist_claim(k, worker);
        claims_[k] = Claim{worker, std::chrono::steady_clock::now()};
        resp["acquired"] = true;
      } else if (it->second.worker == worker) {
        // Idempotent for the claim's own worker: a retried claim whose
        // first response was lost in flight must not read as "lost the
        // race" — the worker would skip a lease it actually owns.
        it->second.beat = std::chrono::steady_clock::now();
        resp["acquired"] = true;
      } else {
        resp["acquired"] = false;
      }
      return resp;
    }
    if (op == "age") {
      const int k = lease_of();
      support::Json resp = net::ok_response(seq);
      const auto it = claims_.find(k);
      resp["age"] =
          it == claims_.end()
              ? -1.0
              : std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - it->second.beat)
                    .count();
      return resp;
    }
    if (op == "steal") {
      const int k = lease_of();
      support::Json resp = net::ok_response(seq);
      const auto it = claims_.find(k);
      if (it == claims_.end()) {
        resp["stolen"] = false;  // nothing to steal — lost the race
      } else {
        persist_claim(k, worker);
        it->second = Claim{worker, std::chrono::steady_clock::now()};
        resp["stolen"] = true;
      }
      return resp;
    }
    if (op == "reap") {
      const int k = lease_of();
      support::Json resp = net::ok_response(seq);
      const bool existed = claims_.erase(k) > 0;
      if (existed) support::remove_file(claim_path(k));
      resp["reaped"] = existed;
      return resp;
    }
    if (op == "heartbeat") {
      const int k = lease_of();
      support::Json resp = net::ok_response(seq);
      const auto it = claims_.find(k);
      const bool beating =
          it != claims_.end() && it->second.worker == worker;
      if (beating) it->second.beat = std::chrono::steady_clock::now();
      resp["beating"] = beating;
      return resp;
    }
    if (op == "release") {
      const int k = lease_of();
      const auto it = claims_.find(k);
      if (it != claims_.end() && it->second.worker == worker) {
        claims_.erase(it);
        support::remove_file(claim_path(k));
      }
      return net::ok_response(seq);
    }
    if (op == "done") {
      const int k = lease_of();
      support::Json resp = net::ok_response(seq);
      resp["done"] = done_.count(k) > 0;
      return resp;
    }
    if (op == "list_done") {
      support::Json resp = net::ok_response(seq);
      support::Json done = support::Json::array();
      for (const int k : done_) done.push_back(k);
      resp["done"] = std::move(done);
      return resp;
    }
    if (op == "publish") {
      if (!request.contains("block") || !request.at("block").is_object())
        throw std::invalid_argument("publish carries no block");
      const support::Json& block = request.at("block");
      const int k =
          static_cast<int>(block.at("lease").at("index").as_int());
      const int count =
          static_cast<int>(block.at("lease").at("count").as_int());
      if (k < 0 || k >= lease_count_ || count != lease_count_)
        throw std::invalid_argument(
            "published block does not belong to this lease partition");
      // Done files are immutable: a duplicate publish (a paused owner and
      // its stealer both finishing, or a retried request whose first
      // response was lost) is acknowledged without rewriting — by the
      // determinism invariant the duplicate carries identical bytes.
      if (done_.count(k) == 0) {
        support::write_file_atomic(done_path(k), block.dump(1), ".tmp");
        done_.insert(k);
      }
      return net::ok_response(seq);
    }
  } catch (const std::invalid_argument& e) {
    // Malformed requests mean the client is wrong; retrying cannot help.
    return net::error_response(seq, e.what(), /*fatal=*/true);
  }
  return net::error_response(seq, "unknown op \"" + op + "\"",
                             /*fatal=*/true);
}

}  // namespace gpudiff::campaign
