#pragma once
// Work-stealing shard scheduler over a shared checkpoint directory.
//
// PR 3's fixed i/N carve hands every machine a same-sized slice of the
// program range up front; one slow or dead machine strands its slice while
// the rest idle.  This layer replaces the static carve with fine-grained
// *leases*: the program range is split into K balanced contiguous ranges
// (lease_count / lease_range below), and N independent worker processes —
// started by any job launcher, even
//   for i in 0 1 2; do gpudiff-campaign --worker dir ... & done
// — claim leases one at a time from a shared directory, execute them
// through diff::run_campaign_range, and publish each lease's ResultBlock.
// Heterogeneous machines self-balance: a fast machine simply claims more
// leases, and a dead machine's lease is reclaimed once its heartbeat goes
// stale.
//
// Coordination protocol (all files live in the shared directory; see
// support/lockfile.hpp for the primitives):
//
//   campaign.json       manifest: config fingerprint + lease geometry.
//                       Published once via exclusive hard-link; every later
//                       worker verifies it matches its own configuration.
//   lease-<k>.claim     exclusive claim marker for lease k, content
//                       identifying the owner.  Its mtime is the owner's
//                       heartbeat, re-touched every heartbeat interval
//                       while the lease executes.
//   lease-<k>.done.json lease k's completed ResultBlock (atomic
//                       write-then-rename).  Existence of this file is the
//                       only thing that marks a lease finished; done files
//                       are never removed or rewritten with different
//                       bytes.
//
// A claim whose heartbeat is older than the stale-after window with no
// done file is presumed dead and may be *stolen*: the stealer renames the
// stale claim to a tombstone (rename is atomic, so exactly one of N racing
// stealers wins), removes the tombstone, and claims the lease afresh.
//
// Invariant the whole design rests on: the protocol guarantees
// at-least-once execution of every lease, NOT mutual exclusion.  A
// paused-but-alive worker whose lease was stolen will eventually publish
// the same done file the stealer publishes — safe, because a lease's
// ResultBlock is a pure function of (config fingerprint, range), so both
// writers produce byte-identical JSON and the atomic rename makes either
// file a whole one.  Byte-identity of the merged CampaignResults therefore
// never depends on exclusion, only on determinism; claims, heartbeats and
// staleness exist purely to avoid wasted duplicate work.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "campaign/merge.hpp"
#include "diff/campaign.hpp"
#include "support/json.hpp"
#include "support/retry.hpp"

namespace gpudiff::campaign {

class LeaseTransport;  // campaign/transport.hpp

/// Number of leases for an n-program campaign with target lease size
/// `lease_size` (clamped to >= 1): ceil(n / lease_size), 0 when n == 0.
int lease_count(int num_programs, int lease_size);

/// Lease `index` of `count` over [0, n): the same balanced contiguous
/// partition as ShardSpec::program_range — ranges are disjoint, cover
/// exactly [0, n), and differ in size by at most one (so no lease exceeds
/// the requested lease size).
std::pair<std::uint64_t, std::uint64_t> lease_range(int num_programs,
                                                    int count, int index);

/// The shared-directory lease protocol, one instance per worker.  Exposed
/// separately from run_worker so the equivalence/fault-injection tests and
/// the claim-path benchmark can drive the mechanism directly; run_worker
/// supplies the policy (scan order, staleness, waiting).
///
/// All operations are safe to call concurrently from different processes
/// (that is the point); a single LeaseBoard instance is not thread-safe.
class LeaseBoard {
 public:
  /// Creates `dir` if needed.  `worker_id` must be unique across the fleet
  /// (default_worker_id() below yields host-pid).
  LeaseBoard(std::string dir, std::string worker_id);

  /// Publish the manifest if none exists, else verify the existing one was
  /// written for the same configuration and lease geometry; throws
  /// std::runtime_error on mismatch (two campaigns must not share a dir).
  void publish_or_verify_manifest(const support::Json& config_echo,
                                  int lease_size, int count);
  /// Load and validate a manifest (for the merge stage).
  static support::Json load_manifest(const std::string& dir);
  static std::string manifest_path(const std::string& dir);

  const std::string& dir() const noexcept { return dir_; }
  const std::string& worker_id() const noexcept { return worker_; }

  std::string claim_path(int lease) const;
  std::string done_path(int lease) const;
  /// Path builders shared with the merge/completion scans, so the file
  /// naming scheme lives in exactly one place.
  static std::string claim_path(const std::string& dir, int lease);
  static std::string done_path(const std::string& dir, int lease);

  bool is_done(int lease) const;
  /// Claim the lease exclusively.  False if any claim file exists (even a
  /// stale one — staleness is the caller's policy, see try_steal).
  bool try_claim(int lease);
  /// Seconds since the current claim's last heartbeat; negative if no
  /// claim file exists.
  double claim_age_seconds(int lease) const;
  /// Tombstone-rename the existing claim away without taking the lease
  /// (atomic: exactly one of N racing reapers succeeds).  Used to clear a
  /// stale claim stranded on an already-done lease.
  bool reap_claim(int lease);
  /// reap_claim + claim the lease afresh.  The caller decides *when*
  /// stealing is appropriate (claim stale, lease not done).
  bool try_steal(int lease);
  /// Refresh this worker's heartbeat on its claim.  Returns false if the
  /// claim no longer exists or is no longer ours (stolen) — informational;
  /// execution continues either way, protected by determinism.
  bool heartbeat(int lease);
  /// Publish the lease's completed ResultBlock (atomic write-then-rename
  /// through a per-worker temp file, so duplicate publishers of one lease
  /// cannot tear each other).  `count` is the lease partition size
  /// recorded for merge validation.
  void publish_done(int lease, int count, const ResultBlock& block);
  /// Remove this worker's claim on the lease (after publish_done, or when
  /// abandoning on interrupt).  Ownership is checked first so a claim
  /// owned by another worker — e.g. a stealer's fresh claim after ours
  /// was tombstoned — is normally left alone.  The check-then-remove pair
  /// is not atomic (POSIX has no conditional unlink), so a steal landing
  /// in that window can still lose its fresh claim; like every exclusion
  /// breakdown in this protocol, the worst case is duplicate execution of
  /// a lease, never a wrong result.
  void release(int lease);

 private:
  std::string dir_;
  std::string worker_;
};

/// "host-pid", unique across a fleet of worker processes.
std::string default_worker_id();

/// The scheduler manifest document (config fingerprint + lease geometry),
/// shared by the shared-directory board and the TCP coordinator so both
/// backends publish byte-identical campaign.json files and one merge stage
/// serves both.
support::Json make_manifest(const support::Json& config_echo, int lease_size,
                            int count);

struct WorkerOptions {
  /// The shared lease directory (required unless `coordinator` is set).
  std::string dir;
  /// "host:port" of a gpudiff-coordinator; selects the TCP transport
  /// instead of the shared-directory board.  Mutually exclusive with
  /// `dir`.
  std::string coordinator;
  /// Local journal directory for done blocks the coordinator could not be
  /// told about (TCP mode only); empty picks a per-worker default under
  /// the system temp directory.
  std::string journal_dir;
  /// Backoff schedule for every coordinator-path retry (requests,
  /// reconnects, worker-loop waits while the coordinator is down).
  support::RetryPolicy retry;
  /// Per-request timeout on the coordinator connection (TCP mode).
  double request_timeout_seconds = 5.0;
  /// Target programs per lease: the granularity of stealing, of progress
  /// reporting, and of the work lost when a worker dies mid-lease.
  int lease_size = 16;
  /// Seconds between heartbeat touches on the claim while executing.
  double heartbeat_seconds = 5.0;
  /// A claim with no heartbeat for this long (and no done file) is
  /// presumed dead and stolen.  Must comfortably exceed heartbeat_seconds
  /// plus worst-case fleet clock skew.
  double stale_after_seconds = 60.0;
  /// Unique worker name; empty uses default_worker_id().
  std::string worker_id;
  /// Polled between leases (and while waiting for peers).  Returning true
  /// stops the worker gracefully: the in-flight lease is still finished,
  /// published and released, so an interrupted worker never strands
  /// claimed work.
  std::function<bool()> stop_requested;
  /// Called after each lease this worker completes.
  struct LeaseEvent {
    int lease = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    bool stolen = false;  ///< reclaimed from a stale claim
  };
  std::function<void(const LeaseEvent&)> on_lease;
};

struct WorkerOutcome {
  int leases_completed = 0;   ///< leases this worker executed and published
  int leases_stolen = 0;      ///< of those, how many were stale reclaims
  std::uint64_t programs_executed = 0;
  /// True when every lease in the campaign has a done file — the signal
  /// that --merge will succeed.  False only after stop_requested.
  bool campaign_complete = false;
};

/// Run one worker against the shared directory until the campaign is
/// complete or stop_requested fires.  A worker that runs out of claimable
/// leases waits (claimed leases may belong to live peers) and re-scans,
/// stealing stale claims as they age out — so a fleet converges even when
/// members die, and `for ...; do gpudiff-campaign --worker ... & done`
/// self-balances across heterogeneous machines.
WorkerOutcome run_worker(const diff::CampaignConfig& config,
                         const WorkerOptions& options);

/// The same worker policy loop against an explicit transport (the form the
/// transport-equivalence tests and benchmarks drive).  The loop is
/// network-elastic: a TransportError from the backend pauses the scan with
/// RetryPolicy backoff instead of killing the worker, so a fleet rides out
/// a coordinator restart and converges once it returns.
WorkerOutcome run_worker(const diff::CampaignConfig& config,
                         const WorkerOptions& options,
                         LeaseTransport& transport);

/// True when a manifest exists and every lease has a done file.
bool campaign_complete(const std::string& dir);

/// The configuration fingerprint a results directory was produced under:
/// the manifest's "config" for a lease/coordinator directory, the first
/// shard checkpoint's for a fixed-carve directory.  Throws if the
/// directory holds neither.  This is what lets `--merge --report-v2`
/// stamp the merged report with the fingerprint the store keys it by.
support::Json config_echo_of_dir(const std::string& dir);

struct LeaseMergeOptions {
  /// On a truncated or JSON-corrupt done file, rename it to
  /// `<file>.quarantined` (so a re-run worker regenerates the lease)
  /// instead of leaving the corrupt bytes in the merge's way.  The merge
  /// still fails — the campaign is incomplete — but with a diagnostic
  /// naming every quarantined file rather than a bare parse abort.
  bool quarantine = false;
};

/// Merge a completed lease directory into CampaignResults byte-identical
/// to the unsharded diff::run_campaign output.  Throws if the manifest is
/// missing, any lease is unfinished, or any block fails validation; a
/// corrupt done file is reported with its file name (crash litter such as
/// stale `*.tmp.*` publisher temps is never read as a done file).
diff::CampaignResults merge_lease_dir(const std::string& dir,
                                      const LeaseMergeOptions& options = {});

}  // namespace gpudiff::campaign
