#pragma once
// Merge stage: fold completed result blocks into one CampaignResults.
//
// For a fixed configuration the merged output is byte-identical to the
// unsharded diff::run_campaign result: statistics are commutative sums
// folded in program order, and records — each block keeps its own
// canonical-order prefix — concatenate into the global canonical order
// before the record cap is re-applied, so the cap keeps the lowest
// (program_index, input_index, level) records no matter how the campaign
// was carved up or interrupted.
//
// Two front ends share one core:
//   merge_blocks — any contiguous cover of [0, num_programs) by
//     variable-size blocks (the work-stealing scheduler's lease results);
//   merge_shards — the fixed i/N carve: validates the shard set, then
//     folds the shards as blocks.

#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "diff/campaign.hpp"
#include "support/json.hpp"

namespace gpudiff::campaign {

/// One completed contiguous program-range result: the unit the merge
/// folds.  A block is a pure function of (config fingerprint, range) —
/// produced by diff::run_campaign_range — which is what makes at-least-once
/// execution (work stealing, duplicated leases) safe: re-executing a range
/// reproduces the block byte for byte.
struct ResultBlock {
  support::Json config_echo;  ///< campaign::config_to_json fingerprint
  std::uint64_t begin = 0;    ///< first program index covered
  std::uint64_t end = 0;      ///< one past the last covered index
  std::vector<diff::LevelStats> per_level;       ///< aligned with config levels
  std::vector<diff::DiscrepancyRecord> records;  ///< canonical order, capped
};

/// Fold blocks into campaign results.  Validates that every block carries
/// the fingerprint `config_echo` and that the blocks (in any input order)
/// form a contiguous cover of [0, num_programs) — variable sizes and empty
/// blocks are fine; gaps, overlaps and foreign configurations throw
/// std::runtime_error.  An empty block list is valid only for a 0-program
/// campaign.
diff::CampaignResults merge_blocks(const support::Json& config_echo,
                                   std::vector<ResultBlock> blocks);

/// Fold completed shards into campaign results.  Validates that the parts
/// share one configuration fingerprint, agree on the shard count, cover
/// every index 0..N-1 exactly once and are all complete; throws
/// std::runtime_error otherwise.
diff::CampaignResults merge_shards(std::vector<ShardProgress> parts);

/// Load every `shard-*-of-*.json` checkpoint in `dir`.
std::vector<ShardProgress> load_shards(const std::string& dir);

/// load_shards + merge_shards.
diff::CampaignResults merge_checkpoint_dir(const std::string& dir);

}  // namespace gpudiff::campaign
