#pragma once
// Merge stage: fold N completed shard states into one CampaignResults.
//
// For a fixed configuration the merged output is byte-identical to the
// unsharded diff::run_campaign result: statistics are commutative sums
// folded in shard-index (= program) order, and records — each shard keeps
// its own canonical-order prefix — concatenate into the global canonical
// order before the record cap is re-applied, so the cap keeps the lowest
// (program_index, input_index, level) records no matter how the campaign
// was carved up or interrupted.

#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "diff/campaign.hpp"

namespace gpudiff::campaign {

/// Fold completed shards into campaign results.  Validates that the parts
/// share one configuration fingerprint, agree on the shard count, cover
/// every index 0..N-1 exactly once and are all complete; throws
/// std::runtime_error otherwise.
diff::CampaignResults merge_shards(std::vector<ShardProgress> parts);

/// Load every `shard-*-of-*.json` checkpoint in `dir`.
std::vector<ShardProgress> load_shards(const std::string& dir);

/// load_shards + merge_shards.
diff::CampaignResults merge_checkpoint_dir(const std::string& dir);

}  // namespace gpudiff::campaign
