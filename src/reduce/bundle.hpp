#pragma once
// Reproducer bundles: the serialized artifact of one reduction, plus the
// batch driver both CLIs share.
//
// A bundle is a deterministic JSON document (sorted keys, %.17g + raw-bit
// strings for every floating payload, no timestamps) carrying everything
// needed to replay and audit the reproducer: the original record key, the
// campaign configuration fingerprint it belongs to, the reduced program
// (structural JSON and rendered source), the discrepant input, the
// preserved verdict, the reduction trace and the sensitivity report.  The
// whole document is sealed with an fnv1a64 digest over its own canonical
// bytes; loading re-derives the digest and refuses any tampered file —
// the same trust rule as the store's immutable documents.

#include <functional>
#include <string>
#include <vector>

#include "reduce/reduce.hpp"
#include "support/json.hpp"

namespace gpudiff::reduce {

inline constexpr const char* kBundleFormat = "gpudiff-reduce-bundle";
inline constexpr int kBundleVersion = 1;

/// Serialize one reduction (deterministic bytes, digest-sealed).
support::Json bundle_to_json(const Reduction& reduction,
                             const diff::CampaignConfig& config);

/// Validate format, version and digest; throws std::runtime_error naming
/// the failure on any mismatch.
void check_bundle(const support::Json& bundle);

/// Read + parse + check_bundle a file (throws with the path on failure).
support::Json load_bundle(const std::string& path);

/// "bundle-<program>-<input>-<level>.json"
std::string bundle_filename(const RecordRef& record);

/// Reduce every record and write one bundle per record into `out_dir`
/// (created if needed; atomic writes).  Records must already be the
/// deduplicated work list in canonical order — use reduce_exemplars() to
/// select from a full record set.  `on_reduced` (optional) observes each
/// finished reduction, e.g. for progress output.  Returns the RecordRefs
/// reduced, in processing order.
std::vector<RecordRef> reduce_records(
    const diff::CampaignConfig& config,
    const std::vector<diff::DiscrepancyRecord>& records,
    const std::string& out_dir,
    const std::function<void(const Reduction&)>& on_reduced = {});

/// The `--reduce-exemplars` driver: select exemplar records exactly as a
/// store population would (store::select_exemplars), deduplicate across
/// (pair, class) cells in canonical order, then reduce_records().
std::vector<RecordRef> reduce_exemplars(
    const diff::CampaignConfig& config,
    const std::vector<diff::DiscrepancyRecord>& records,
    const std::string& out_dir, int max_exemplars,
    const std::function<void(const Reduction&)>& on_reduced = {});

}  // namespace gpudiff::reduce
