#include "reduce/reduce.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "diff/runner.hpp"
#include "fp/hexfloat.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "support/strings.hpp"
#include "vgpu/interp.hpp"

namespace gpudiff::reduce {

namespace {

using ir::ExprEditPlan;
using ir::ExprId;
using ir::ExprKind;
using ir::Program;
using ir::StmtEditPlan;
using ir::StmtId;
using ir::StmtKind;

/// Loops are unrolled only up to this many executed trips; the input
/// generator caps trip counts at 8, so the limit only guards hand-made
/// configurations from quadratic blowup.
constexpr int kMaxUnrollTrip = 64;

/// True when `p` references a temporary no surviving DeclTemp declares —
/// structurally invalid, rejected without spending a differential check.
bool dangles_temp(const Program& p) {
  return ir::max_temp_ref(p) > p.max_temp_id();
}

/// The reduction search state: the record's fixed context plus the current
/// best program and the bookkeeping the bundle reports.
struct Search {
  const diff::CampaignConfig& config;
  const RecordRef& record;
  const vgpu::KernelArgs& args;
  Verdict target;
  Program current;
  std::uint64_t checks = 0;
  std::vector<TraceStep> trace;

  /// Accept `candidate` iff it preserves the target verdict exactly.
  /// Structurally invalid candidates and candidates whose execution
  /// throws are rejections, not errors: "removal breaks the program" and
  /// "removal changes the verdict" are the same outcome for the search.
  bool try_accept(Program&& candidate, const char* pass,
                  std::string detail) {
    if (dangles_temp(candidate)) return false;
    ++checks;
    Verdict v;
    try {
      v = verdict_of(candidate, config, record.level, args);
    } catch (const std::exception&) {
      return false;
    }
    if (!(v == target)) return false;
    current = std::move(candidate);
    trace.push_back({pass, std::move(detail),
                     static_cast<std::uint64_t>(
                         ir::preorder_statements(current).size()),
                     static_cast<std::uint64_t>(current.node_count())});
    return true;
  }
};

/// Classic ddmin over the pre-order statement list: try dropping chunks,
/// halve granularity on failure, re-coarsen after an accept.  Greedy (no
/// complement phase) — the polish pass below guarantees 1-minimality.
void pass_ddmin(Search& s) {
  std::size_t n = 2;
  for (;;) {
    const std::vector<StmtId> stmts = ir::preorder_statements(s.current);
    if (stmts.empty()) return;
    if (n > stmts.size()) n = stmts.size();
    const std::size_t chunk = (stmts.size() + n - 1) / n;
    bool accepted = false;
    for (std::size_t begin = 0; begin < stmts.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, stmts.size());
      StmtEditPlan plan = StmtEditPlan::none(s.current);
      for (std::size_t i = begin; i < end; ++i)
        plan.actions[stmts[i].v] = StmtEditPlan::Action::Drop;
      if (s.try_accept(ir::apply_edits(s.current, plan), "ddmin",
                       support::format("drop statements [%zu, %zu) of %zu",
                                       begin, end, stmts.size()))) {
        accepted = true;
        break;
      }
    }
    if (accepted) {
      n = std::max<std::size_t>(2, n - 1);
      continue;
    }
    if (n >= stmts.size()) return;  // already at single-statement granularity
    n = std::min(n * 2, stmts.size());
  }
}

/// Structure flattening: unroll one loop to its executed trips (induction
/// variable substituted by literal values), or splice one if-body over its
/// guard.  First accepted candidate restarts the scan.
bool pass_flatten(Search& s) {
  bool any = false;
  for (;;) {
    const std::vector<StmtId> stmts = ir::preorder_statements(s.current);
    bool accepted = false;
    for (std::size_t pos = 0; pos < stmts.size() && !accepted; ++pos) {
      const ir::Stmt& st = s.current.stmt(stmts[pos]);
      if (st.kind == StmtKind::For) {
        int trip = s.args.ints.at(static_cast<std::size_t>(st.bound_param));
        if (trip < 0) trip = 0;
        if (trip > kMaxUnrollTrip) continue;
        StmtEditPlan plan = StmtEditPlan::none(s.current);
        plan.actions[stmts[pos].v] = StmtEditPlan::Action::Unroll;
        plan.unroll_trip = trip;
        accepted = s.try_accept(
            ir::apply_edits(s.current, plan), "unroll",
            support::format("unroll loop at statement %zu to %d trips", pos,
                            trip));
      } else if (st.kind == StmtKind::If) {
        StmtEditPlan plan = StmtEditPlan::none(s.current);
        plan.actions[stmts[pos].v] = StmtEditPlan::Action::InlineBody;
        accepted = s.try_accept(
            ir::apply_edits(s.current, plan), "inline",
            support::format("inline if-body at statement %zu", pos));
      }
    }
    if (!accepted) return any;
    any = true;
  }
}

/// The value expression of a value-producing statement (invalid for For).
ExprId value_expr_of(const ir::Stmt& st) {
  switch (st.kind) {
    case StmtKind::DeclTemp:
    case StmtKind::AssignComp:
    case StmtKind::If:
      return st.a;  // If: condition (not const-folded, hoisted only)
    case StmtKind::StoreArray:
      return st.b;
    case StmtKind::For:
      return ExprId{};
  }
  return ExprId{};
}

/// Constant folding against observed execution: tree-walk the current
/// program under the baseline platform's compiled environment, record the
/// first value every value-producing statement computes, and try replacing
/// each statement's value expression with its recorded constant.
bool pass_constfold(Search& s) {
  bool any = false;
  for (;;) {
    // The compiled baseline carries the right mathlib + FP env for the
    // record's level, but its program is the *optimized* kernel whose
    // statement ids do not match s.current — point a probe copy back at
    // the un-optimized current program before tree-walking it.
    diff::CompiledSet set;
    try {
      set = diff::compile_set(s.current, s.config.platforms, s.record.level,
                              s.config.hipify_converted);
    } catch (const std::exception&) {
      return any;
    }
    opt::Executable probe = set.exes[0];
    probe.program = s.current;
    probe.bytecode_cache.reset();
    std::map<std::uint32_t, double> observed;
    try {
      vgpu::run_kernel_tree(probe, s.args,
                            [&observed](StmtId sid, double value) {
                              observed.emplace(sid.v, value);
                            });
    } catch (const std::exception&) {
      return any;
    }

    const std::vector<StmtId> stmts = ir::preorder_statements(s.current);
    bool accepted = false;
    for (std::size_t pos = 0; pos < stmts.size() && !accepted; ++pos) {
      const ir::Stmt st = s.current.stmt(stmts[pos]);
      if (st.kind == StmtKind::If || st.kind == StmtKind::For) continue;
      const auto it = observed.find(stmts[pos].v);
      if (it == observed.end()) continue;  // never executed
      const ExprId value = value_expr_of(st);
      if (s.current.expr(value).kind == ExprKind::Literal) continue;
      ExprEditPlan edit;
      edit.target = value;
      edit.to_literal = true;
      edit.literal = it->second;
      accepted = s.try_accept(
          ir::apply_edits(s.current, StmtEditPlan::none(s.current), edit),
          "constfold",
          support::format("fold statement %zu to %s", pos,
                          fp::print_g17(it->second).c_str()));
    }
    if (!accepted) return any;
    any = true;
  }
}

/// Enumerate every expression node reachable from the body, pre-order.
std::vector<ExprId> preorder_exprs(const Program& p) {
  std::vector<ExprId> out;
  std::vector<ExprId> pending;
  const auto push = [&pending](ExprId id) {
    if (id.valid()) pending.push_back(id);
  };
  for (StmtId sid : ir::preorder_statements(p)) {
    const ir::Stmt& st = p.stmt(sid);
    // b before a: the stack reverses, so a's subtree is visited first.
    push(st.b);
    push(st.a);
    while (!pending.empty()) {
      const ExprId id = pending.back();
      pending.pop_back();
      out.push_back(id);
      const ir::Expr& e = p.expr(id);
      for (int k = e.n_kids - 1; k >= 0; --k) push(e.kid[k]);
    }
  }
  return out;
}

/// Operand hoisting: replace one interior FP-valued node by one of its
/// FP-valued operands (never across the bool/FP type boundary, never the
/// subscript of an array access).
bool pass_hoist(Search& s) {
  bool any = false;
  for (;;) {
    const std::vector<ExprId> exprs = preorder_exprs(s.current);
    bool accepted = false;
    for (std::size_t pos = 0; pos < exprs.size() && !accepted; ++pos) {
      const ir::Expr e = s.current.expr(exprs[pos]);
      if (e.n_kids == 0 || e.is_bool_valued()) continue;
      if (e.kind == ExprKind::ArrayRef || e.kind == ExprKind::BoolToFp)
        continue;
      for (int k = 0; k < e.n_kids && !accepted; ++k) {
        if (s.current.expr(e.kid[k]).is_bool_valued()) continue;
        ExprEditPlan edit;
        edit.target = exprs[pos];
        edit.to_literal = false;
        edit.child = k;
        accepted = s.try_accept(
            ir::apply_edits(s.current, StmtEditPlan::none(s.current), edit),
            "hoist",
            support::format("replace expression %zu by operand %d", pos, k));
      }
    }
    if (!accepted) return any;
    any = true;
  }
}

/// Single-statement deletion to fixpoint: after this, dropping any one
/// statement either changes the verdict or dangles a temp — 1-minimality.
bool pass_polish(Search& s) {
  bool any = false;
  for (;;) {
    const std::vector<StmtId> stmts = ir::preorder_statements(s.current);
    bool accepted = false;
    for (std::size_t pos = 0; pos < stmts.size() && !accepted; ++pos) {
      StmtEditPlan plan = StmtEditPlan::none(s.current);
      plan.actions[stmts[pos].v] = StmtEditPlan::Action::Drop;
      accepted = s.try_accept(
          ir::apply_edits(s.current, plan), "polish",
          support::format("drop statement %zu of %zu", pos, stmts.size()));
    }
    if (!accepted) return any;
    any = true;
  }
}

}  // namespace

std::string RecordRef::key() const {
  return std::to_string(program_index) + ":" + std::to_string(input_index) +
         ":" + opt::to_string(level);
}

bool parse_record_key(const std::string& key, RecordRef* out) {
  const std::vector<std::string> parts = support::split(key, ':');
  if (parts.size() != 3) return false;
  RecordRef ref;
  try {
    std::size_t used = 0;
    ref.program_index = std::stoull(parts[0], &used);
    if (used != parts[0].size()) return false;
    ref.input_index = std::stoi(parts[1], &used);
    if (used != parts[1].size() || ref.input_index < 0) return false;
  } catch (const std::exception&) {
    return false;
  }
  if (!opt::parse_opt_level(parts[2], &ref.level)) return false;
  *out = ref;
  return true;
}

ir::Program regenerate_program(const diff::CampaignConfig& config,
                               std::uint64_t program_index) {
  return gen::Generator(config.gen, config.seed).generate(program_index);
}

vgpu::KernelArgs regenerate_args(const diff::CampaignConfig& config,
                                 const ir::Program& program,
                                 std::uint64_t program_index,
                                 int input_index) {
  return gen::InputGenerator(config.seed)
      .generate(program, program_index, input_index);
}

Verdict verdict_of(const ir::Program& program,
                   const diff::CampaignConfig& config, opt::OptLevel level,
                   const vgpu::KernelArgs& args) {
  const diff::CompiledSet set = diff::compile_set(
      program, config.platforms, level, config.hipify_converted);
  const diff::ComparisonResult cmp = diff::compare_run(set, args);
  Verdict v;
  v.pair_cls.assign(cmp.classes().begin(), cmp.classes().end());
  return v;
}

std::optional<ir::Program> drop_statement(const ir::Program& p,
                                          ir::StmtId id) {
  StmtEditPlan plan = StmtEditPlan::none(p);
  if (id.v >= plan.actions.size()) return std::nullopt;
  plan.actions[id.v] = StmtEditPlan::Action::Drop;
  Program cand = ir::apply_edits(p, plan);
  if (dangles_temp(cand)) return std::nullopt;
  return cand;
}

Reduction reduce_record(const diff::CampaignConfig& config,
                        const RecordRef& record) {
  if (config.platforms.size() < 2)
    throw std::runtime_error("reduce: need at least two platforms");
  const ir::Program original =
      regenerate_program(config, record.program_index);
  const vgpu::KernelArgs args = regenerate_args(
      config, original, record.program_index, record.input_index);

  Search s{config, record, args,
           verdict_of(original, config, record.level, args), original};
  ++s.checks;  // the verdict_of above
  if (!s.target.discrepant())
    throw std::runtime_error(
        "reduce: record " + record.key() +
        " is not discrepant under this configuration (stale key or foreign "
        "config)");

  pass_ddmin(s);
  // Structure simplification can expose new deletions and vice versa;
  // cycle until a full round accepts nothing.
  for (;;) {
    bool changed = false;
    changed |= pass_flatten(s);
    changed |= pass_constfold(s);
    changed |= pass_hoist(s);
    changed |= pass_polish(s);
    if (!changed) break;
  }
  s.current.compact();

  Reduction r;
  r.record = record;
  r.args = args;
  r.verdict = s.target;
  r.platforms = opt::platform_names(config.platforms);
  r.original_stmts = ir::preorder_statements(original).size();
  r.original_nodes = original.node_count();
  r.reduced_stmts = ir::preorder_statements(s.current).size();
  r.reduced_nodes = s.current.node_count();
  r.checks = s.checks;
  r.trace = std::move(s.trace);
  r.sensitivity = probe_sensitivity(s.current, config, record.level, args);
  r.program = std::move(s.current);
  return r;
}

}  // namespace gpudiff::reduce
