#include "reduce/bundle.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "campaign/checkpoint.hpp"
#include "diff/discrepancy.hpp"
#include "fp/hexfloat.hpp"
#include "ir/serialize.hpp"
#include "store/store.hpp"
#include "support/strings.hpp"

namespace gpudiff::reduce {

using support::Json;

namespace {

/// A floating payload as the deterministic pair every campaign artifact
/// uses: the %.17g human rendering plus the exact bit pattern (non-finite
/// values have no JSON number representation).
Json fp_value(double v) {
  Json j = Json::object();
  j["printed"] = fp::print_g17(v);
  j["bits"] = fp::encode_bits(v);
  return j;
}

Json sensitivity_to_json(const SensitivityReport& report) {
  Json j = Json::object();
  j["label"] = to_string(report.label);
  j["condition"] = fp_value(report.condition);
  j["threshold"] = fp_value(report.threshold);
  j["outcome_flip"] = report.outcome_flip;
  Json params = Json::array();
  for (const ParamProbe& p : report.params) {
    Json pj = Json::object();
    pj["param"] = p.param;
    pj["name"] = p.name;
    pj["value"] = fp_value(p.value);
    pj["step"] = fp_value(p.step);
    pj["derivative"] = fp_value(p.derivative);
    pj["rel_condition"] = fp_value(p.rel_condition);
    pj["outcome_flip"] = p.outcome_flip;
    params.push_back(std::move(pj));
  }
  j["params"] = std::move(params);
  return j;
}

std::string digest_of(const Json& bundle_without_digest) {
  return support::fnv1a64_hex(bundle_without_digest.dump(1));
}

}  // namespace

Json bundle_to_json(const Reduction& reduction,
                    const diff::CampaignConfig& config) {
  Json j = Json::object();
  j["format"] = kBundleFormat;
  j["version"] = kBundleVersion;
  j["record"] = reduction.record.key();
  const Json echo = campaign::config_to_json(config);
  j["fingerprint"] = campaign::fingerprint_digest(echo);
  j["config"] = echo;
  Json platforms = Json::array();
  for (const auto& name : reduction.platforms) platforms.push_back(name);
  j["platforms"] = std::move(platforms);

  // The preserved verdict, encoded like record classes: -1 = None.
  Json verdict = Json::array();
  for (const auto cls : reduction.verdict.pair_cls)
    verdict.push_back(cls == diff::DiscrepancyClass::None
                          ? -1
                          : diff::class_index(cls));
  j["verdict"] = std::move(verdict);

  Json original = Json::object();
  original["stmts"] = static_cast<long long>(reduction.original_stmts);
  original["nodes"] = static_cast<long long>(reduction.original_nodes);
  j["original"] = std::move(original);
  Json reduced = Json::object();
  reduced["stmts"] = static_cast<long long>(reduction.reduced_stmts);
  reduced["nodes"] = static_cast<long long>(reduction.reduced_nodes);
  j["reduced"] = std::move(reduced);

  j["program"] = ir::program_to_json(reduction.program);
  j["source"] = reduction.program.dump();
  j["args"] = reduction.args.to_json(reduction.program);
  j["checks"] = static_cast<long long>(reduction.checks);

  Json trace = Json::array();
  for (const TraceStep& step : reduction.trace) {
    Json tj = Json::object();
    tj["pass"] = step.pass;
    tj["detail"] = step.detail;
    tj["stmts"] = static_cast<long long>(step.stmts);
    tj["nodes"] = static_cast<long long>(step.nodes);
    trace.push_back(std::move(tj));
  }
  j["trace"] = std::move(trace);
  j["sensitivity"] = sensitivity_to_json(reduction.sensitivity);

  j["digest"] = digest_of(j);  // over everything above (no digest key yet)
  return j;
}

void check_bundle(const Json& bundle) {
  campaign::check_format(bundle, kBundleFormat, "reduce bundle",
                         kBundleVersion);
  if (!bundle.contains("digest") || !bundle.at("digest").is_string())
    throw std::runtime_error("reduce: bundle carries no digest");
  Json without = Json::object();
  for (const auto& [key, value] : bundle.as_object())
    if (key != "digest") without[key] = value;
  if (digest_of(without) != bundle.at("digest").as_string())
    throw std::runtime_error(
        "reduce: bundle digest mismatch (tampered or truncated document)");
}

Json load_bundle(const std::string& path) {
  Json bundle;
  try {
    bundle = Json::parse(support::read_file(path));
    check_bundle(bundle);
  } catch (const std::exception& e) {
    throw std::runtime_error("reduce: " + path + ": " + e.what());
  }
  return bundle;
}

std::string bundle_filename(const RecordRef& record) {
  return "bundle-" + std::to_string(record.program_index) + "-" +
         std::to_string(record.input_index) + "-" +
         opt::to_string(record.level) + ".json";
}

std::vector<RecordRef> reduce_records(
    const diff::CampaignConfig& config,
    const std::vector<diff::DiscrepancyRecord>& records,
    const std::string& out_dir,
    const std::function<void(const Reduction&)>& on_reduced) {
  std::filesystem::create_directories(out_dir);
  std::vector<RecordRef> reduced;
  for (const diff::DiscrepancyRecord& rec : records) {
    const RecordRef ref{rec.program_index, rec.input_index, rec.level};
    const Reduction reduction = reduce_record(config, ref);
    const Json bundle = bundle_to_json(reduction, config);
    support::write_file_atomic(out_dir + "/" + bundle_filename(ref),
                               bundle.dump(1) + "\n");
    if (on_reduced) on_reduced(reduction);
    reduced.push_back(ref);
  }
  return reduced;
}

std::vector<RecordRef> reduce_exemplars(
    const diff::CampaignConfig& config,
    const std::vector<diff::DiscrepancyRecord>& records,
    const std::string& out_dir, int max_exemplars,
    const std::function<void(const Reduction&)>& on_reduced) {
  const store::ExemplarKeys exemplars = store::select_exemplars(
      records, config.platforms.size(), max_exemplars);
  // Union the (pair, class) cells into one deduplicated work list, in
  // canonical record order — byte-compatible with what a store population
  // of this report would enumerate.
  std::vector<std::string> keys;
  for (const auto& per_class : exemplars)
    for (const auto& cell : per_class)
      keys.insert(keys.end(), cell.begin(), cell.end());
  std::vector<diff::DiscrepancyRecord> selected;
  for (const diff::DiscrepancyRecord& rec : records) {
    const std::string key = store::record_key(rec);
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) continue;
    selected.push_back(rec);
    keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
  }
  return reduce_records(config, selected, out_dir, on_reduced);
}

}  // namespace gpudiff::reduce
