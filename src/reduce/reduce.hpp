#pragma once
// Delta-debugging reducer: shrink a discrepant campaign record to a
// 1-minimal reproducer (ROADMAP "Adaptive campaigns + discrepancy
// reducer", triage half).
//
// The reducer regenerates the record's program and input from the campaign
// configuration (both are pure functions of (seed, program_index,
// input_index)), then searches for a smaller program with the *same*
// differential verdict — the per-platform (pair, DiscrepancyClass) vector
// against the baseline — using four mutation passes over ir/mutate.hpp
// rebuilds:
//
//   ddmin      chunked statement deletion (classic delta debugging),
//   flatten    loops unrolled to their executed bodies, ifs to their body,
//   constfold  live statement values replaced by their observed constants
//              (recorded by the tree-walk oracle's StmtObserver),
//   hoist      expression nodes replaced by one of their operands,
//   polish     single-statement deletion to fixpoint.
//
// A candidate is accepted iff its verdict equals the original exactly, so
// every accepted step preserves the discrepancy by construction, and the
// polish fixpoint makes the result 1-minimal: dropping any single
// remaining statement either kills the discrepancy or breaks the program
// (a dangling temp reference — equally fatal to the reproducer).
//
// Everything here is deterministic: candidate enumeration is in canonical
// pre-order, acceptance is a pure function of the differential check, and
// the differential check is bit-identical across SIMD lane engines and VM
// backends (the repo-wide invariant) — so the same record always reduces
// to the same bytes, which reduce_test and the CI reduce-drill job lock.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "diff/campaign.hpp"
#include "ir/mutate.hpp"
#include "reduce/sensitivity.hpp"
#include "vgpu/args.hpp"

namespace gpudiff::reduce {

/// The preserved property: every platform's discrepancy class against the
/// baseline (entry 0 always None).  Two programs are verdict-equivalent
/// for a record iff these vectors are equal.
struct Verdict {
  std::vector<diff::DiscrepancyClass> pair_cls;

  bool discrepant() const noexcept {
    for (const auto cls : pair_cls)
      if (cls != diff::DiscrepancyClass::None) return true;
    return false;
  }
  friend bool operator==(const Verdict&, const Verdict&) = default;
};

/// Identity of one campaign record, canonical key "program:input:level"
/// (the store's record_key).
struct RecordRef {
  std::uint64_t program_index = 0;
  int input_index = 0;
  opt::OptLevel level{};

  std::string key() const;
};

/// Parse a canonical record key; false on malformed input.
bool parse_record_key(const std::string& key, RecordRef* out);

/// One accepted reduction step (the bundle's reduction trace).
struct TraceStep {
  std::string pass;    ///< "ddmin" / "unroll" / "inline" / "constfold" / ...
  std::string detail;  ///< human-readable description of the accepted edit
  std::uint64_t stmts = 0;  ///< statement count after the step
  std::uint64_t nodes = 0;  ///< live IR node count after the step
};

/// A finished reduction: the 1-minimal reproducer plus its provenance.
struct Reduction {
  RecordRef record;
  ir::Program program;    ///< reduced reproducer (compact arena)
  vgpu::KernelArgs args;  ///< the record's original discrepant input
  Verdict verdict;        ///< preserved (pair, class) verdict
  std::vector<std::string> platforms;
  std::uint64_t original_stmts = 0;
  std::uint64_t original_nodes = 0;
  std::uint64_t reduced_stmts = 0;
  std::uint64_t reduced_nodes = 0;
  std::uint64_t checks = 0;  ///< differential checks spent
  std::vector<TraceStep> trace;
  SensitivityReport sensitivity;
};

/// Regenerate the record's program / input exactly as the campaign did
/// (pure functions of the config and the indices).
ir::Program regenerate_program(const diff::CampaignConfig& config,
                               std::uint64_t program_index);
vgpu::KernelArgs regenerate_args(const diff::CampaignConfig& config,
                                 const ir::Program& program,
                                 std::uint64_t program_index, int input_index);

/// The record's verdict for `program`: compile for every configured
/// platform at `level`, run `args` once, collect per-platform classes.
Verdict verdict_of(const ir::Program& program,
                   const diff::CampaignConfig& config, opt::OptLevel level,
                   const vgpu::KernelArgs& args);

/// Rebuild `p` without statement `id` (whole subtree).  Returns nullopt
/// when the result would dangle a temporary reference — the shared
/// "removal breaks the program" arm of the 1-minimality definition.
std::optional<ir::Program> drop_statement(const ir::Program& p, ir::StmtId id);

/// Reduce one record to a 1-minimal reproducer.  Throws std::runtime_error
/// when the record is not discrepant under `config` (stale key, foreign
/// config).  Deterministic: equal inputs produce bit-equal reductions.
Reduction reduce_record(const diff::CampaignConfig& config,
                        const RecordRef& record);

}  // namespace gpudiff::reduce
