#pragma once
// Input-sensitivity probe: separates reproducers whose discrepancy is an
// artifact of an ill-conditioned input neighbourhood from genuine platform
// divergence (ROADMAP triage requirement; finite differencing in the style
// of chainer's numerical_grad).
//
// The probe runs only the *baseline* platform: it central-differences the
// kernel around the discrepant input, one floating parameter at a time,
// and estimates the relative condition number
//
//   kappa_i = |df/dx_i| * max(|x_i|, h) / max(|f|, tiny)
//
// A reproducer is labeled `ill-conditioned` when any parameter's kappa
// exceeds the precision's threshold (2^26 for FP64, 2^11 for FP32 — half
// the significand width, the classic "half your digits are gone" rule) or
// when nudging any parameter by +-h flips the baseline's outcome class
// (the Number/NaN/Inf/Zero lattice the paper classifies by); otherwise it
// is `platform-divergent`.  Steps are relative (2^-20 / 2^-10 of the
// parameter, minimum one normal quantum), FP32 arithmetic is done in
// float, and everything is a pure function of (program, input), so the
// label is as deterministic as the reduction itself.

#include <string>
#include <vector>

#include "diff/campaign.hpp"
#include "ir/program.hpp"
#include "vgpu/args.hpp"

namespace gpudiff::reduce {

enum class SensitivityLabel : std::uint8_t {
  PlatformDivergent,  ///< well-conditioned input: blame the platforms
  IllConditioned,     ///< the input neighbourhood is numerically unstable
};

const char* to_string(SensitivityLabel label) noexcept;

/// One finite-difference probe of one floating parameter.
struct ParamProbe {
  int param = 0;       ///< parameter index (Comp/Scalar/Array kinds)
  std::string name;    ///< parameter name ("comp", "var_3", ...)
  double value = 0.0;  ///< the discrepant input's value
  double step = 0.0;   ///< h actually applied
  double derivative = 0.0;     ///< central difference (f(x+h)-f(x-h))/2h
  double rel_condition = 0.0;  ///< kappa_i (0 when f is non-finite)
  bool outcome_flip = false;   ///< baseline outcome class changed under +-h
};

struct SensitivityReport {
  SensitivityLabel label = SensitivityLabel::PlatformDivergent;
  double condition = 0.0;  ///< max kappa over parameters
  double threshold = 0.0;  ///< precision's kappa threshold
  bool outcome_flip = false;
  std::vector<ParamProbe> params;
};

/// Probe `program` (the reduced reproducer) around `args` on the
/// configured baseline platform at the record's optimization level.
SensitivityReport probe_sensitivity(const ir::Program& program,
                                    const diff::CampaignConfig& config,
                                    opt::OptLevel level,
                                    const vgpu::KernelArgs& args);

}  // namespace gpudiff::reduce
