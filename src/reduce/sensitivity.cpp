#include "reduce/sensitivity.hpp"

#include <cmath>
#include <limits>

#include "fp/classify.hpp"
#include "opt/platform.hpp"
#include "vgpu/interp.hpp"

namespace gpudiff::reduce {

namespace {

/// Relative step and condition threshold per precision: steps of 2^-20 /
/// 2^-10 (roughly the square root of the significand quantum, the
/// standard finite-difference compromise), thresholds of 2^26 / 2^11
/// (half the significand width).
struct ProbeModel {
  double rel_step;
  double min_step;  ///< smallest positive normal of the precision
  double threshold;
};

ProbeModel model_of(ir::Precision precision) {
  if (precision == ir::Precision::FP32)
    return {0x1p-10, std::numeric_limits<float>::min(), 0x1p11};
  return {0x1p-20, std::numeric_limits<double>::min(), 0x1p26};
}

/// x nudged by +-h in the precision's own arithmetic (FP32 inputs live in
/// float even though KernelArgs carries doubles).
double nudge(double x, double h, ir::Precision precision, int sign) {
  if (precision == ir::Precision::FP32) {
    const float r = static_cast<float>(x) +
                    static_cast<float>(sign) * static_cast<float>(h);
    return static_cast<double>(r);
  }
  return x + sign * h;
}

fp::Outcome outcome_of_run(const vgpu::RunResult& run,
                           ir::Precision precision) {
  if (precision == ir::Precision::FP32)
    return fp::outcome_of(static_cast<float>(run.value));
  return fp::outcome_of(run.value);
}

}  // namespace

const char* to_string(SensitivityLabel label) noexcept {
  return label == SensitivityLabel::IllConditioned ? "ill-conditioned"
                                                   : "platform-divergent";
}

SensitivityReport probe_sensitivity(const ir::Program& program,
                                    const diff::CampaignConfig& config,
                                    opt::OptLevel level,
                                    const vgpu::KernelArgs& args) {
  const opt::Executable baseline = opt::compile(
      program, config.platforms.at(0), level, config.hipify_converted);
  const ir::Precision precision = program.precision();
  const ProbeModel model = model_of(precision);

  SensitivityReport report;
  report.threshold = model.threshold;

  const vgpu::RunResult base = vgpu::run_kernel(baseline, args);
  const fp::Outcome base_outcome = outcome_of_run(base, precision);
  const bool finite_base = std::isfinite(base.value);
  // |f| floor keeps kappa finite at f = 0 (a zero result perturbed to
  // anything nonzero already shows up as an outcome flip).
  const double f_floor = std::max(std::fabs(base.value), model.min_step);

  const auto& params = program.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].kind == ir::ParamKind::Int) continue;

    ParamProbe probe;
    probe.param = static_cast<int>(i);
    probe.name = params[i].name;
    probe.value = args.fp[i];
    double h = std::fabs(probe.value) * model.rel_step;
    if (!(h >= model.min_step)) h = model.min_step;  // also catches 0 and NaN
    probe.step = h;

    vgpu::KernelArgs nudged = args;
    nudged.fp[i] = nudge(probe.value, h, precision, +1);
    const vgpu::RunResult plus = vgpu::run_kernel(baseline, nudged);
    nudged.fp[i] = nudge(probe.value, h, precision, -1);
    const vgpu::RunResult minus = vgpu::run_kernel(baseline, nudged);

    probe.outcome_flip = !(outcome_of_run(plus, precision) == base_outcome) ||
                         !(outcome_of_run(minus, precision) == base_outcome);
    probe.derivative = (plus.value - minus.value) / (2.0 * h);
    if (finite_base && std::isfinite(probe.derivative)) {
      probe.rel_condition = std::fabs(probe.derivative) *
                            std::max(std::fabs(probe.value), h) / f_floor;
    } else if (finite_base && probe.outcome_flip) {
      // A finite result whose neighbourhood reaches NaN/Inf: the flip
      // already decides the label; the derivative itself is meaningless.
      probe.rel_condition = 0.0;
    }

    report.outcome_flip = report.outcome_flip || probe.outcome_flip;
    report.condition = std::max(report.condition, probe.rel_condition);
    report.params.push_back(std::move(probe));
  }

  report.label = (report.outcome_flip || report.condition > report.threshold)
                     ? SensitivityLabel::IllConditioned
                     : SensitivityLabel::PlatformDivergent;
  return report;
}

}  // namespace gpudiff::reduce
