#include "opt/platform.hpp"

#include <stdexcept>

#include "vmath/mathlib.hpp"

namespace gpudiff::opt {

const std::vector<PlatformSpec>& platform_registry() {
  static const std::vector<PlatformSpec> registry = [] {
    std::vector<PlatformSpec> r;
    {
      PlatformSpec s;
      s.name = "nvcc";
      s.toolchain = Toolchain::Nvcc;
      s.blurb = "nvcc-sim, the paper's NVIDIA platform (baseline)";
      r.push_back(std::move(s));
    }
    {
      PlatformSpec s;
      s.name = "hipcc";
      s.toolchain = Toolchain::Hipcc;
      s.blurb = "hipcc-sim, the paper's AMD platform";
      r.push_back(std::move(s));
    }
    {
      // -fgpu-flush-denormals-to-zero: AMD keeps FP32 denormals by default
      // on MI2xx; this configuration flushes them at every level, so
      // "hipcc vs hipcc-ftz" isolates the denormal policy alone.
      PlatformSpec s;
      s.name = "hipcc-ftz";
      s.toolchain = Toolchain::Hipcc;
      s.force_ftz32 = true;
      s.force_daz32 = true;
      s.blurb = "hipcc-sim with FP32 FTZ/DAZ forced on (flush-denormals)";
      r.push_back(std::move(s));
    }
    {
      // A build that always passes -use_fast_math: optimized levels take
      // the fast-math pipeline, so "nvcc vs nvcc-fastmath" compares the
      // same compiler with and without the flag at every level.
      PlatformSpec s;
      s.name = "nvcc-fastmath";
      s.toolchain = Toolchain::Nvcc;
      s.fast_math = true;
      s.blurb = "nvcc-sim with -use_fast_math at every optimized level";
      r.push_back(std::move(s));
    }
    return r;
  }();
  return registry;
}

const PlatformSpec* find_platform(std::string_view name) {
  for (const PlatformSpec& spec : platform_registry())
    if (spec.name == name) return &spec;
  return nullptr;
}

std::vector<PlatformSpec> parse_platform_list(const std::string& csv) {
  std::vector<PlatformSpec> specs;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string name = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (name.empty())
      throw std::runtime_error(
          "platforms: empty entry in '" + csv +
          "' (want a comma-separated list like nvcc,hipcc)");
    const PlatformSpec* spec = find_platform(name);
    if (spec == nullptr) {
      std::string known;
      for (const PlatformSpec& s : platform_registry())
        known += (known.empty() ? "" : ", ") + s.name;
      throw std::runtime_error("platforms: unknown platform '" + name +
                               "' (known: " + known + ")");
    }
    for (const PlatformSpec& seen : specs)
      if (seen.name == name)
        throw std::runtime_error("platforms: duplicate platform '" + name +
                                 "'");
    specs.push_back(*spec);
  }
  if (specs.size() < 2)
    throw std::runtime_error(
        "platforms: a campaign needs at least two platforms (baseline + one "
        "to compare against it)");
  if (specs.size() > kMaxPlatforms)
    throw std::runtime_error("platforms: at most " +
                             std::to_string(kMaxPlatforms) +
                             " platforms per campaign");
  return specs;
}

std::vector<PlatformSpec> default_platforms() {
  return {platform_registry()[0], platform_registry()[1]};
}

std::vector<std::string> platform_names(std::span<const PlatformSpec> specs) {
  std::vector<std::string> names;
  names.reserve(specs.size());
  for (const PlatformSpec& spec : specs) names.push_back(spec.name);
  return names;
}

Executable compile(const ir::Program& program, const PlatformSpec& spec,
                   OptLevel level, bool hipify_converted) {
  CompileOptions o;
  o.toolchain = spec.toolchain;
  o.level = spec.fast_math && level != OptLevel::O0 ? OptLevel::O3_FastMath
                                                    : level;
  o.hipify_converted = hipify_converted && spec.toolchain == Toolchain::Hipcc;
  o.fma = spec.fma;
  o.force_ftz32 = spec.force_ftz32;
  o.force_daz32 = spec.force_daz32;
  o.div32 = spec.div32;
  if (!spec.mathlib.empty()) {
    o.mathlib = vmath::find_mathlib(spec.mathlib);
    if (o.mathlib == nullptr)
      throw std::runtime_error("platform '" + spec.name +
                               "': unknown math library '" + spec.mathlib +
                               "'");
  }
  return compile(program, o);
}

}  // namespace gpudiff::opt
