#pragma once
// Optimization passes of the virtual compilers.
//
// Each pass is a small IR-to-IR transformation modeling one numerics-
// relevant optimization the real toolchains perform.  Vendor pipelines
// differ in *which* passes run and in tie-breaking choices inside a pass —
// those differences, not randomness, are what produce cross-vendor
// divergence at O1+ (paper Tables V/VII/IX; Case Study 3).

#include "ir/program.hpp"

namespace gpudiff::opt {

/// Fold literal-only arithmetic subtrees (+,-,*,/,neg) in the program's
/// precision with IEEE round-to-nearest host semantics.  Both toolchains
/// fold identically, so the pass is cross-vendor neutral; it exists for
/// fidelity (and the Table I runtime effect of smaller kernels).
void fold_constants(ir::Program& prog);

/// FMA contraction tie-break when both operands of an addition are products.
enum class FmaPreference {
  LeftProduct,   // nvcc-sim: fma(a, b, c*d)
  RightProduct,  // hipcc-sim: fma(c, d, a*b)
};

/// Contract mul+add / mul-sub patterns into FMA nodes (default at O1+ on
/// both real toolchains).  `a*b + c` contracts identically everywhere; the
/// preference only decides `a*b + c*d`, where the two choices round
/// differently.
void contract_fma(ir::Program& prog, FmaPreference pref);

/// Predicate-multiply if-conversion (hipcc-sim O1+, DESIGN.md quirk #3):
///     if (cond) { comp += e; }   ==>   comp += (T)cond * e;
/// Value-preserving for finite e, but 0 * Inf = NaN when the branch is not
/// taken and e is infinite — reproducing Case Study 3's -inf vs -nan flip.
void if_convert(ir::Program& prog);

/// Reassociation shape applied to +/* chains under fast math.
enum class ReassocStyle {
  FlattenLeft,   // nvcc-sim: ((a+b)+c)+d
  BalancedTree,  // hipcc-sim: (a+b)+(c+d)
};

/// Reassociate floating add/mul chains of length >= `min_chain`
/// (fast-math only; forbidden by IEEE semantics otherwise).
void reassociate(ir::Program& prog, ReassocStyle style, int min_chain = 3);

/// Rewrite x / y into x * (1 / y) (hipcc-sim -freciprocal-math on FP64;
/// nvcc's fast math leaves FP64 division IEEE-correct).  Skips divisions by
/// literal powers of two, which are exact either way.
void reciprocal_division(ir::Program& prog);

/// Statistics helpers used by benches/tests.
std::size_t count_fma_nodes(const ir::Program& prog);
std::size_t count_nodes(const ir::Program& prog);

}  // namespace gpudiff::opt
