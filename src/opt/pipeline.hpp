#pragma once
// Virtual compilers: nvcc-sim and hipcc-sim.
//
// compile() lowers a test kernel into an Executable — optimized IR plus the
// math-library binding and floating-point environment the real toolchain
// would configure.  Pipelines (paper §IV-B: O0, O1, O2, O3, O3 -ffast-math):
//
//             nvcc-sim                      hipcc-sim
//   O0        (none)                        (none)
//   O1..O3    fold, fma(left)               fold, fma(right), if-convert
//   O3+FM     + reassoc(flatten-left),      + reassoc(balanced), reciprocal
//             FTZ/DAZ fp32, approx div32,   div (fp64), approx div32,
//             __sinf-family fp32 binding    native_* fp32 binding,
//                                           finite-math fmin/fmax
//
// O1, O2 and O3 run identical numerics-relevant passes — higher levels add
// only value-preserving cleanup on real compilers too, which reproduces the
// identical per-level counts of paper Tables V/VII/IX.
//
// HIPIFY-converted sources (CompileOptions::hipify_converted) bind the
// CUDA-compat math wrapper instead of plain OCML (see compat_math.cpp).

#include <memory>
#include <string>

#include "fp/env.hpp"
#include "ir/program.hpp"
#include "vmath/mathlib.hpp"

namespace gpudiff::vgpu {
class BytecodeProgram;
}

namespace gpudiff::opt {

enum class Toolchain : std::uint8_t { Nvcc, Hipcc };
std::string to_string(Toolchain t);

/// FMA contraction shape override.  Auto keeps the toolchain's own
/// preference (nvcc contracts the left product, hipcc the right); the
/// other values pin it, which is what lets a registry platform model "the
/// same compiler, different codegen" scenarios.
enum class FmaMode : std::uint8_t { Auto, LeftProduct, RightProduct };
std::string to_string(FmaMode m);

/// FP32 division override.  Auto keeps whatever the pipeline configures
/// for the level (IEEE below fast-math, the vendor approximation at it).
enum class Div32Override : std::uint8_t { Auto, IEEE, NvApprox, AmdApprox };
std::string to_string(Div32Override d);

enum class OptLevel : std::uint8_t { O0, O1, O2, O3, O3_FastMath };
std::string to_string(OptLevel level);
/// Parse "O0".."O3"/"O3_FM" (returns false on unknown spelling).
bool parse_opt_level(const std::string& text, OptLevel* out);

/// All five levels in campaign order.
inline constexpr OptLevel kAllOptLevels[] = {
    OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3,
    OptLevel::O3_FastMath};

struct CompileOptions {
  Toolchain toolchain = Toolchain::Nvcc;
  OptLevel level = OptLevel::O0;
  /// hipcc only: source was produced by HIPIFY rather than generated as HIP.
  bool hipify_converted = false;

  // Platform-registry overrides (opt/platform.hpp).  All default to the
  // plain toolchain behaviour, so the paper's two platforms compile
  // exactly as before.
  FmaMode fma = FmaMode::Auto;
  bool force_ftz32 = false;  ///< flush FP32 subnormal results at every level
  bool force_daz32 = false;  ///< treat FP32 subnormal inputs as zero
  Div32Override div32 = Div32Override::Auto;
  /// Math-library binding override (null = select by toolchain/level).
  const vmath::MathLib* mathlib = nullptr;
};

/// A compiled test: what the virtual GPU executes.
struct Executable {
  ir::Program program;                       ///< optimized kernel
  const vmath::MathLib* mathlib = nullptr;   ///< bound device math library
  fp::FpEnv env;                             ///< FP execution environment
  Toolchain toolchain = Toolchain::Nvcc;
  OptLevel level = OptLevel::O0;

  /// "nvcc-sim -O3 -use_fast_math"-style description.
  std::string description() const;

  /// Bytecode lowering of `program` for the register VM, built once by
  /// compile() and shared by every copy of this Executable — one pair of
  /// lowerings amortizes across all inputs of a differential campaign.
  /// Hand-assembled Executables build it lazily on first use (not
  /// thread-safe for a concurrent first call; clear `bytecode_cache` after
  /// mutating program/env/mathlib by hand).
  const vgpu::BytecodeProgram& bytecode() const;
  mutable std::shared_ptr<const vgpu::BytecodeProgram> bytecode_cache;
};

/// Run the toolchain's pipeline for the given level.  The input program is
/// copied; generation artifacts are never mutated.
Executable compile(const ir::Program& program, const CompileOptions& options);

}  // namespace gpudiff::opt
