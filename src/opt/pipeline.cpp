#include "opt/pipeline.hpp"

#include "opt/passes.hpp"
#include "vgpu/bytecode.hpp"

namespace gpudiff::opt {

std::string to_string(Toolchain t) {
  return t == Toolchain::Nvcc ? "nvcc-sim" : "hipcc-sim";
}

std::string to_string(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
    case OptLevel::O3: return "O3";
    case OptLevel::O3_FastMath: return "O3_FM";
  }
  return "?";
}

bool parse_opt_level(const std::string& text, OptLevel* out) {
  if (text == "O0") *out = OptLevel::O0;
  else if (text == "O1") *out = OptLevel::O1;
  else if (text == "O2") *out = OptLevel::O2;
  else if (text == "O3") *out = OptLevel::O3;
  else if (text == "O3_FM" || text == "O3_FastMath") *out = OptLevel::O3_FastMath;
  else return false;
  return true;
}

std::string Executable::description() const {
  std::string out = to_string(toolchain) + " -" +
                    (level == OptLevel::O3_FastMath ? std::string("O3")
                                                    : to_string(level));
  if (level == OptLevel::O3_FastMath)
    out += toolchain == Toolchain::Nvcc ? " -use_fast_math" : " -DHIP_FAST_MATH";
  return out;
}

const vgpu::BytecodeProgram& Executable::bytecode() const {
  if (!bytecode_cache)
    bytecode_cache = std::make_shared<const vgpu::BytecodeProgram>(
        vgpu::compile_bytecode(program, env, mathlib));
  return *bytecode_cache;
}

namespace {

const vmath::MathLib* select_mathlib(const CompileOptions& o) {
  const bool fast = o.level == OptLevel::O3_FastMath;
  if (o.toolchain == Toolchain::Nvcc)
    return fast ? &vmath::nv_fast() : &vmath::nv_libdevice();
  if (o.hipify_converted)
    return fast ? &vmath::hip_cuda_compat_native() : &vmath::hip_cuda_compat();
  return fast ? &vmath::amd_ocml_native() : &vmath::amd_ocml();
}

}  // namespace

Executable compile(const ir::Program& program, const CompileOptions& options) {
  Executable exe;
  exe.program = program;  // deep copy
  exe.toolchain = options.toolchain;
  exe.level = options.level;
  exe.mathlib = select_mathlib(options);

  const bool optimized = options.level != OptLevel::O0;
  const bool fast = options.level == OptLevel::O3_FastMath;

  if (optimized) {
    fold_constants(exe.program);
    if (options.toolchain == Toolchain::Nvcc) {
      contract_fma(exe.program, FmaPreference::LeftProduct);
    } else {
      contract_fma(exe.program, FmaPreference::RightProduct);
      if_convert(exe.program);
    }
  }

  if (fast) {
    if (options.toolchain == Toolchain::Nvcc) {
      reassociate(exe.program, ReassocStyle::FlattenLeft, /*min_chain=*/4);
      // -use_fast_math: .ftz on FP32 ops, approximate FP32 division; FP64
      // arithmetic stays IEEE on real nvcc.
      exe.env.ftz32 = true;
      exe.env.daz32 = true;
      exe.env.div32 = fp::Div32Mode::NvApprox;
    } else {
      reassociate(exe.program, ReassocStyle::BalancedTree, /*min_chain=*/4);
      // -ffast-math / -DHIP_FAST_MATH: reciprocal math applies to FP64 too.
      if (exe.program.precision() == ir::Precision::FP64)
        reciprocal_division(exe.program);
      exe.env.div32 = fp::Div32Mode::AmdApprox;
      // -ffinite-math-only lowers FP32 fmin/fmax to a bare compare-select;
      // the FP64 entry points keep IEEE NaN semantics because the paper's
      // recommended -DHIP_FAST_MATH spelling only swaps FP32 intrinsics
      // (paper §III-D, footnote on ROCm issue #28).
      if (exe.program.precision() == ir::Precision::FP32)
        exe.env.naive_minmax = true;
    }
  }

  // Lower to bytecode once, here, so every copy of the Executable (and
  // every input run against it) shares the cached program.  Lowering never
  // rejects malformed hand-written IR: bad statements become traps that
  // fault at execution exactly where the tree-walk interpreter would.
  exe.bytecode();
  return exe;
}

}  // namespace gpudiff::opt
