#include "opt/pipeline.hpp"

#include "opt/passes.hpp"
#include "vgpu/bytecode.hpp"

namespace gpudiff::opt {

std::string to_string(Toolchain t) {
  return t == Toolchain::Nvcc ? "nvcc-sim" : "hipcc-sim";
}

std::string to_string(FmaMode m) {
  switch (m) {
    case FmaMode::Auto: return "auto";
    case FmaMode::LeftProduct: return "left";
    case FmaMode::RightProduct: return "right";
  }
  return "?";
}

std::string to_string(Div32Override d) {
  switch (d) {
    case Div32Override::Auto: return "auto";
    case Div32Override::IEEE: return "ieee";
    case Div32Override::NvApprox: return "nv-approx";
    case Div32Override::AmdApprox: return "amd-approx";
  }
  return "?";
}

std::string to_string(OptLevel level) {
  switch (level) {
    case OptLevel::O0: return "O0";
    case OptLevel::O1: return "O1";
    case OptLevel::O2: return "O2";
    case OptLevel::O3: return "O3";
    case OptLevel::O3_FastMath: return "O3_FM";
  }
  return "?";
}

bool parse_opt_level(const std::string& text, OptLevel* out) {
  if (text == "O0") *out = OptLevel::O0;
  else if (text == "O1") *out = OptLevel::O1;
  else if (text == "O2") *out = OptLevel::O2;
  else if (text == "O3") *out = OptLevel::O3;
  else if (text == "O3_FM" || text == "O3_FastMath") *out = OptLevel::O3_FastMath;
  else return false;
  return true;
}

std::string Executable::description() const {
  std::string out = to_string(toolchain) + " -" +
                    (level == OptLevel::O3_FastMath ? std::string("O3")
                                                    : to_string(level));
  if (level == OptLevel::O3_FastMath)
    out += toolchain == Toolchain::Nvcc ? " -use_fast_math" : " -DHIP_FAST_MATH";
  return out;
}

const vgpu::BytecodeProgram& Executable::bytecode() const {
  if (!bytecode_cache)
    bytecode_cache = std::make_shared<const vgpu::BytecodeProgram>(
        vgpu::compile_bytecode(program, env, mathlib));
  return *bytecode_cache;
}

namespace {

const vmath::MathLib* select_mathlib(const CompileOptions& o) {
  const bool fast = o.level == OptLevel::O3_FastMath;
  if (o.toolchain == Toolchain::Nvcc)
    return fast ? &vmath::nv_fast() : &vmath::nv_libdevice();
  if (o.hipify_converted)
    return fast ? &vmath::hip_cuda_compat_native() : &vmath::hip_cuda_compat();
  return fast ? &vmath::amd_ocml_native() : &vmath::amd_ocml();
}

}  // namespace

Executable compile(const ir::Program& program, const CompileOptions& options) {
  Executable exe;
  exe.program = program;  // deep copy
  exe.toolchain = options.toolchain;
  exe.level = options.level;
  exe.mathlib =
      options.mathlib != nullptr ? options.mathlib : select_mathlib(options);

  const bool optimized = options.level != OptLevel::O0;
  const bool fast = options.level == OptLevel::O3_FastMath;
  const FmaPreference fma_pref =
      options.fma == FmaMode::Auto
          ? (options.toolchain == Toolchain::Nvcc ? FmaPreference::LeftProduct
                                                  : FmaPreference::RightProduct)
          : (options.fma == FmaMode::LeftProduct ? FmaPreference::LeftProduct
                                                 : FmaPreference::RightProduct);

  if (optimized) {
    fold_constants(exe.program);
    contract_fma(exe.program, fma_pref);
    if (options.toolchain == Toolchain::Hipcc) if_convert(exe.program);
  }

  if (fast) {
    if (options.toolchain == Toolchain::Nvcc) {
      reassociate(exe.program, ReassocStyle::FlattenLeft, /*min_chain=*/4);
      // -use_fast_math: .ftz on FP32 ops, approximate FP32 division; FP64
      // arithmetic stays IEEE on real nvcc.
      exe.env.ftz32 = true;
      exe.env.daz32 = true;
      exe.env.div32 = fp::Div32Mode::NvApprox;
    } else {
      reassociate(exe.program, ReassocStyle::BalancedTree, /*min_chain=*/4);
      // -ffast-math / -DHIP_FAST_MATH: reciprocal math applies to FP64 too.
      if (exe.program.precision() == ir::Precision::FP64)
        reciprocal_division(exe.program);
      exe.env.div32 = fp::Div32Mode::AmdApprox;
      // -ffinite-math-only lowers FP32 fmin/fmax to a bare compare-select;
      // the FP64 entry points keep IEEE NaN semantics because the paper's
      // recommended -DHIP_FAST_MATH spelling only swaps FP32 intrinsics
      // (paper §III-D, footnote on ROCm issue #28).
      if (exe.program.precision() == ir::Precision::FP32)
        exe.env.naive_minmax = true;
    }
  }

  // Platform-registry overrides land after the level pipeline so a
  // registry entry can pin the FP environment independently of the level
  // ("hipcc with FTZ on at every level").  They must precede the bytecode
  // lowering below: the lowered program bakes the environment in.
  if (options.force_ftz32) exe.env.ftz32 = true;
  if (options.force_daz32) exe.env.daz32 = true;
  switch (options.div32) {
    case Div32Override::Auto: break;
    case Div32Override::IEEE: exe.env.div32 = fp::Div32Mode::IEEE; break;
    case Div32Override::NvApprox:
      exe.env.div32 = fp::Div32Mode::NvApprox;
      break;
    case Div32Override::AmdApprox:
      exe.env.div32 = fp::Div32Mode::AmdApprox;
      break;
  }

  // Lower to bytecode once, here, so every copy of the Executable (and
  // every input run against it) shares the cached program.  Lowering never
  // rejects malformed hand-written IR: bad statements become traps that
  // fault at execution exactly where the tree-walk interpreter would.
  exe.bytecode();
  return exe;
}

}  // namespace gpudiff::opt
