#include "opt/passes.hpp"

#include <functional>
#include <vector>

#include "fp/bits.hpp"

namespace gpudiff::opt {

using ir::Arena;
using ir::Expr;
using ir::ExprId;
using ir::ExprKind;
using ir::Precision;
using ir::Program;
using ir::Stmt;
using ir::StmtId;
using ir::StmtKind;

namespace {

// Passes rewrite by allocating replacement nodes into the program's own
// arena and swapping child ids; orphaned nodes stay in the pool and die
// with the Program.  Invariant relied on throughout: rewrites allocate
// *expressions* only, so Stmt references and body spans stay stable while
// Expr references must be re-indexed (or copied by value) across any
// make_* call.

/// Apply `fn` to every expression root in the program (stmt operands),
/// allowing replacement: fn receives the root id and returns the new one.
void transform_exprs(Program& prog, std::span<const StmtId> body,
                     const std::function<ExprId(ExprId)>& fn) {
  for (StmtId id : body) {
    Stmt& s = prog.stmt(id);
    if (s.a) s.a = fn(s.a);
    if (s.b) s.b = fn(s.b);
    transform_exprs(prog, prog.body_of(s), fn);
  }
}

void transform_exprs(Program& prog, const std::function<ExprId(ExprId)>& fn) {
  transform_exprs(prog, prog.body(), fn);
}

/// Post-order expression rewrite.
ExprId rewrite_post(Arena& a, ExprId id,
                    const std::function<ExprId(ExprId)>& fn) {
  const int n = a[id].n_kids;
  for (int i = 0; i < n; ++i) {
    const ExprId kid = a[id].kid[i];
    const ExprId replacement = rewrite_post(a, kid, fn);
    a[id].kid[i] = replacement;
  }
  return fn(id);
}

}  // namespace

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

namespace {

template <typename T>
double fold_bin(ir::BinOp op, double a, double b) {
  const T x = static_cast<T>(a);
  const T y = static_cast<T>(b);
  T r{};
  switch (op) {
    case ir::BinOp::Add: r = x + y; break;
    case ir::BinOp::Sub: r = x - y; break;
    case ir::BinOp::Mul: r = x * y; break;
    case ir::BinOp::Div: r = x / y; break;
  }
  return static_cast<double>(r);
}

}  // namespace

void fold_constants(ir::Program& prog) {
  Arena& arena = prog.arena();
  const Precision prec = prog.precision();
  const auto fold = [&arena, prec](ExprId id) -> ExprId {
    const Expr e = arena[id];
    switch (e.kind) {
      case ExprKind::Neg:
        if (arena[e.kid[0]].kind == ExprKind::Literal) {
          // Exact sign flip; spelling is dropped (the value is canonical).
          return ir::make_literal(arena,
                                  fp::negate_bits(arena[e.kid[0]].lit_value));
        }
        break;
      case ExprKind::Bin: {
        const Expr& k0 = arena[e.kid[0]];
        const Expr& k1 = arena[e.kid[1]];
        if (k0.kind == ExprKind::Literal && k1.kind == ExprKind::Literal) {
          const double a = k0.lit_value;
          const double b = k1.lit_value;
          const double r = prec == Precision::FP32
                               ? fold_bin<float>(e.bin_op, a, b)
                               : fold_bin<double>(e.bin_op, a, b);
          return ir::make_literal(arena, r);
        }
        break;
      }
      default:
        break;
    }
    return id;
  };
  transform_exprs(prog, [&](ExprId root) {
    return rewrite_post(arena, root, fold);
  });
}

// ---------------------------------------------------------------------------
// FMA contraction
// ---------------------------------------------------------------------------

void contract_fma(ir::Program& prog, FmaPreference pref) {
  Arena& arena = prog.arena();
  const auto contract = [&arena, pref](ExprId id) -> ExprId {
    const Expr e = arena[id];
    if (e.kind != ExprKind::Bin) return id;
    if (e.bin_op != ir::BinOp::Add && e.bin_op != ir::BinOp::Sub) return id;
    const Expr lhs = arena[e.kid[0]];
    const Expr rhs = arena[e.kid[1]];
    const bool lhs_mul = lhs.kind == ExprKind::Bin && lhs.bin_op == ir::BinOp::Mul;
    const bool rhs_mul = rhs.kind == ExprKind::Bin && rhs.bin_op == ir::BinOp::Mul;
    if (!lhs_mul && !rhs_mul) return id;

    const bool subtract = e.bin_op == ir::BinOp::Sub;
    ExprId lhs_id = e.kid[0];
    ExprId rhs_id = e.kid[1];

    if (lhs_mul && rhs_mul) {
      // a*b (+/-) c*d — tie-break differs between the toolchains.
      if (pref == FmaPreference::LeftProduct) {
        if (subtract) rhs_id = ir::make_neg(arena, rhs_id);
        return ir::make_fma(arena, lhs.kid[0], lhs.kid[1], rhs_id);
      }
      ExprId c = rhs.kid[0];
      if (subtract) {
        // a*b - c*d = fma(-c, d, a*b)
        c = ir::make_neg(arena, c);
      }
      return ir::make_fma(arena, c, rhs.kid[1], lhs_id);
    }
    if (lhs_mul) {
      // a*b + c -> fma(a,b,c);  a*b - c -> fma(a,b,-c)
      if (subtract) rhs_id = ir::make_neg(arena, rhs_id);
      return ir::make_fma(arena, lhs.kid[0], lhs.kid[1], rhs_id);
    }
    // c + a*b -> fma(a,b,c);  c - a*b -> fma(-a,b,c)
    ExprId a = rhs.kid[0];
    if (subtract) a = ir::make_neg(arena, a);
    return ir::make_fma(arena, a, rhs.kid[1], lhs_id);
  };
  transform_exprs(prog, [&](ExprId root) {
    return rewrite_post(arena, root, contract);
  });
}

// ---------------------------------------------------------------------------
// Predicate-multiply if-conversion
// ---------------------------------------------------------------------------

namespace {

bool contains_call(const Arena& arena, ExprId root) {
  std::vector<ExprId> work{root};
  while (!work.empty()) {
    const Expr& e = arena[work.back()];
    work.pop_back();
    if (e.kind == ExprKind::Call) return true;
    for (int i = 0; i < e.n_kids; ++i) work.push_back(e.kid[i]);
  }
  return false;
}

void if_convert_body(Program& prog, std::span<const StmtId> body) {
  Arena& arena = prog.arena();
  for (StmtId id : body) {
    if_convert_body(prog, prog.body_of(prog.stmt(id)));
    const Stmt s = prog.stmt(id);
    if (s.kind != StmtKind::If) continue;
    if (s.body_len != 1) continue;
    const Stmt inner = prog.stmt(arena.body(s)[0]);
    if (inner.kind != StmtKind::AssignComp || inner.assign_op != ir::AssignOp::Add)
      continue;
    // Speculation is only profitable for cheap right-hand sides; real
    // if-converters bail out on large expressions (and on calls, which may
    // not be speculatable at all).
    if (ir::node_count(arena, inner.a) > 4) continue;
    if (contains_call(arena, inner.a)) continue;
    // if (cond) comp += e;  ==>  comp += (T)cond * e;
    const ExprId predicate = ir::make_bool_to_fp(arena, s.a);
    const ExprId value =
        ir::make_bin(arena, ir::BinOp::Mul, predicate, inner.a);
    Stmt replacement;
    replacement.kind = StmtKind::AssignComp;
    replacement.assign_op = ir::AssignOp::Add;
    replacement.a = value;
    prog.stmt(id) = replacement;
  }
}

}  // namespace

void if_convert(ir::Program& prog) { if_convert_body(prog, prog.body()); }

// ---------------------------------------------------------------------------
// Reassociation
// ---------------------------------------------------------------------------

namespace {

/// Collect the leaves of a same-op chain (Add or Mul, left/right nested).
void collect_chain(const Arena& arena, ExprId id, ir::BinOp op,
                   std::vector<ExprId>& leaves) {
  const Expr& e = arena[id];
  if (e.kind == ExprKind::Bin && e.bin_op == op) {
    collect_chain(arena, e.kid[0], op, leaves);
    collect_chain(arena, e.kid[1], op, leaves);
    return;
  }
  leaves.push_back(id);
}

ExprId build_left(Arena& arena, const std::vector<ExprId>& leaves, ir::BinOp op,
                  std::size_t lo, std::size_t hi) {
  ExprId acc = leaves[lo];
  for (std::size_t i = lo + 1; i < hi; ++i)
    acc = ir::make_bin(arena, op, acc, leaves[i]);
  return acc;
}

ExprId build_balanced(Arena& arena, const std::vector<ExprId>& leaves,
                      ir::BinOp op, std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return leaves[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  const ExprId lhs = build_balanced(arena, leaves, op, lo, mid);
  const ExprId rhs = build_balanced(arena, leaves, op, mid, hi);
  return ir::make_bin(arena, op, lhs, rhs);
}

}  // namespace

void reassociate(ir::Program& prog, ReassocStyle style, int min_chain) {
  Arena& arena = prog.arena();
  const auto reassoc = [&](ExprId id) -> ExprId {
    const Expr e = arena[id];
    if (e.kind != ExprKind::Bin) return id;
    if (e.bin_op != ir::BinOp::Add && e.bin_op != ir::BinOp::Mul) return id;
    const ir::BinOp op = e.bin_op;
    // Only rewrite the chain root: if the parent will also match, let the
    // outermost invocation handle it (the walk below runs top-down, so we
    // conservatively rebuild at every level, which converges because
    // rebuilt subtrees are in canonical shape).
    std::vector<ExprId> leaves;
    collect_chain(arena, id, op, leaves);
    if (static_cast<int>(leaves.size()) < min_chain)
      return build_left(arena, leaves, op, 0, leaves.size());
    if (style == ReassocStyle::FlattenLeft)
      return build_left(arena, leaves, op, 0, leaves.size());
    return build_balanced(arena, leaves, op, 0, leaves.size());
  };
  // Top-down single pass at expression roots: find maximal chains.
  const std::function<ExprId(ExprId)> walk = [&](ExprId id) -> ExprId {
    const ExprId root = reassoc(id);
    const int n = arena[root].n_kids;
    for (int i = 0; i < n; ++i) {
      const ExprId kid = arena[root].kid[i];
      const ExprId replacement = walk(kid);
      arena[root].kid[i] = replacement;
    }
    return root;
  };
  transform_exprs(prog, walk);
}

// ---------------------------------------------------------------------------
// Reciprocal division
// ---------------------------------------------------------------------------

namespace {

bool is_power_of_two_literal(const Expr& e) {
  if (e.kind != ExprKind::Literal) return false;
  const double v = fp::abs_bits(e.lit_value);
  if (fp::is_zero_bits(v) || !fp::is_finite_bits(v)) return false;
  return fp::mantissa_field(v) == 0;
}

ExprId recip_rewrite(Arena& arena, ExprId id) {
  const Expr e = arena[id];
  if (e.kind != ExprKind::Bin || e.bin_op != ir::BinOp::Div) return id;
  if (is_power_of_two_literal(arena[e.kid[1]])) return id;  // exact either way
  const ExprId one = ir::make_literal(arena, 1.0, "1.0");
  const ExprId inv = ir::make_bin(arena, ir::BinOp::Div, one, e.kid[1]);
  return ir::make_bin(arena, ir::BinOp::Mul, e.kid[0], inv);
}

/// Reciprocal substitution pays off when the reciprocal can be hoisted, so
/// the pass (like the real -freciprocal-math heuristics) only rewrites
/// divisions inside loop bodies.
void reciprocal_in_loops(Program& prog, std::span<const StmtId> body,
                         bool in_loop) {
  Arena& arena = prog.arena();
  const auto rewrite = [&arena](ExprId id) { return recip_rewrite(arena, id); };
  for (StmtId id : body) {
    const bool next_in_loop =
        in_loop || prog.stmt(id).kind == StmtKind::For;
    reciprocal_in_loops(prog, prog.body_of(prog.stmt(id)), next_in_loop);
    if (!in_loop) continue;
    Stmt& s = prog.stmt(id);
    if (s.a) s.a = rewrite_post(arena, s.a, rewrite);
    if (s.b) s.b = rewrite_post(arena, s.b, rewrite);
  }
}

}  // namespace

void reciprocal_division(ir::Program& prog) {
  reciprocal_in_loops(prog, prog.body(), /*in_loop=*/false);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

namespace {

std::size_t count_exprs_matching(const Arena& arena, ExprId root, ExprKind kind) {
  std::size_t n = 0;
  std::vector<ExprId> work{root};
  while (!work.empty()) {
    const Expr& e = arena[work.back()];
    work.pop_back();
    if (e.kind == kind) ++n;
    for (int i = 0; i < e.n_kids; ++i) work.push_back(e.kid[i]);
  }
  return n;
}

std::size_t count_stmts_matching(const Program& prog,
                                 std::span<const StmtId> body, ExprKind kind) {
  std::size_t n = 0;
  for (StmtId id : body) {
    const Stmt& s = prog.stmt(id);
    if (s.a) n += count_exprs_matching(prog.arena(), s.a, kind);
    if (s.b) n += count_exprs_matching(prog.arena(), s.b, kind);
    n += count_stmts_matching(prog, prog.body_of(s), kind);
  }
  return n;
}

}  // namespace

std::size_t count_fma_nodes(const ir::Program& prog) {
  return count_stmts_matching(prog, prog.body(), ExprKind::Fma);
}

std::size_t count_nodes(const ir::Program& prog) { return prog.node_count(); }

}  // namespace gpudiff::opt
