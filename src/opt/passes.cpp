#include "opt/passes.hpp"

#include <functional>
#include <vector>

#include "fp/bits.hpp"

namespace gpudiff::opt {

using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Precision;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

namespace {

/// Apply `fn` to every expression root in the program (stmt operands),
/// allowing replacement: fn receives an owned pointer and returns the new one.
void transform_exprs(std::vector<StmtPtr>& body,
                     const std::function<ExprPtr(ExprPtr)>& fn) {
  for (auto& s : body) {
    if (s->a) s->a = fn(std::move(s->a));
    if (s->b) s->b = fn(std::move(s->b));
    transform_exprs(s->body, fn);
  }
}

/// Post-order expression rewrite.
ExprPtr rewrite_post(ExprPtr e, const std::function<ExprPtr(ExprPtr)>& fn) {
  for (auto& kid : e->kids) kid = rewrite_post(std::move(kid), fn);
  return fn(std::move(e));
}

}  // namespace

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

namespace {

template <typename T>
double fold_bin(ir::BinOp op, double a, double b) {
  const T x = static_cast<T>(a);
  const T y = static_cast<T>(b);
  T r{};
  switch (op) {
    case ir::BinOp::Add: r = x + y; break;
    case ir::BinOp::Sub: r = x - y; break;
    case ir::BinOp::Mul: r = x * y; break;
    case ir::BinOp::Div: r = x / y; break;
  }
  return static_cast<double>(r);
}

}  // namespace

void fold_constants(ir::Program& prog) {
  const Precision prec = prog.precision();
  const auto fold = [prec](ExprPtr e) -> ExprPtr {
    switch (e->kind) {
      case ExprKind::Neg:
        if (e->kids[0]->kind == ExprKind::Literal) {
          // Exact sign flip; spelling is dropped (the value is canonical).
          return ir::make_literal(fp::negate_bits(e->kids[0]->lit_value));
        }
        break;
      case ExprKind::Bin:
        if (e->kids[0]->kind == ExprKind::Literal &&
            e->kids[1]->kind == ExprKind::Literal) {
          const double a = e->kids[0]->lit_value;
          const double b = e->kids[1]->lit_value;
          const double r = prec == Precision::FP32
                               ? fold_bin<float>(e->bin_op, a, b)
                               : fold_bin<double>(e->bin_op, a, b);
          return ir::make_literal(r);
        }
        break;
      default:
        break;
    }
    return e;
  };
  transform_exprs(prog.body(), [&](ExprPtr root) {
    return rewrite_post(std::move(root), fold);
  });
}

// ---------------------------------------------------------------------------
// FMA contraction
// ---------------------------------------------------------------------------

void contract_fma(ir::Program& prog, FmaPreference pref) {
  const auto contract = [pref](ExprPtr e) -> ExprPtr {
    if (e->kind != ExprKind::Bin) return e;
    if (e->bin_op != ir::BinOp::Add && e->bin_op != ir::BinOp::Sub) return e;
    const bool lhs_mul =
        e->kids[0]->kind == ExprKind::Bin && e->kids[0]->bin_op == ir::BinOp::Mul;
    const bool rhs_mul =
        e->kids[1]->kind == ExprKind::Bin && e->kids[1]->bin_op == ir::BinOp::Mul;
    if (!lhs_mul && !rhs_mul) return e;

    const bool subtract = e->bin_op == ir::BinOp::Sub;
    auto lhs = std::move(e->kids[0]);
    auto rhs = std::move(e->kids[1]);

    if (lhs_mul && rhs_mul) {
      // a*b (+/-) c*d — tie-break differs between the toolchains.
      if (pref == FmaPreference::LeftProduct) {
        auto a = std::move(lhs->kids[0]);
        auto b = std::move(lhs->kids[1]);
        if (subtract) rhs = ir::make_neg(std::move(rhs));
        return ir::make_fma(std::move(a), std::move(b), std::move(rhs));
      }
      auto c = std::move(rhs->kids[0]);
      auto d = std::move(rhs->kids[1]);
      if (subtract) {
        // a*b - c*d = fma(-c, d, a*b)
        c = ir::make_neg(std::move(c));
      }
      return ir::make_fma(std::move(c), std::move(d), std::move(lhs));
    }
    if (lhs_mul) {
      // a*b + c -> fma(a,b,c);  a*b - c -> fma(a,b,-c)
      auto a = std::move(lhs->kids[0]);
      auto b = std::move(lhs->kids[1]);
      if (subtract) rhs = ir::make_neg(std::move(rhs));
      return ir::make_fma(std::move(a), std::move(b), std::move(rhs));
    }
    // c + a*b -> fma(a,b,c);  c - a*b -> fma(-a,b,c)
    auto a = std::move(rhs->kids[0]);
    auto b = std::move(rhs->kids[1]);
    if (subtract) a = ir::make_neg(std::move(a));
    return ir::make_fma(std::move(a), std::move(b), std::move(lhs));
  };
  transform_exprs(prog.body(), [&](ExprPtr root) {
    return rewrite_post(std::move(root), contract);
  });
}

// ---------------------------------------------------------------------------
// Predicate-multiply if-conversion
// ---------------------------------------------------------------------------

namespace {

void if_convert_body(std::vector<StmtPtr>& body) {
  for (auto& s : body) {
    if_convert_body(s->body);
    if (s->kind != StmtKind::If) continue;
    if (s->body.size() != 1) continue;
    Stmt& inner = *s->body[0];
    if (inner.kind != StmtKind::AssignComp || inner.assign_op != ir::AssignOp::Add)
      continue;
    // Speculation is only profitable for cheap right-hand sides; real
    // if-converters bail out on large expressions (and on calls, which may
    // not be speculatable at all).
    if (inner.a->node_count() > 4) continue;
    bool has_call = false;
    const std::function<void(const ir::Expr&)> scan = [&](const ir::Expr& e) {
      if (e.kind == ir::ExprKind::Call) has_call = true;
      for (const auto& k : e.kids) scan(*k);
    };
    scan(*inner.a);
    if (has_call) continue;
    // if (cond) comp += e;  ==>  comp += (T)cond * e;
    auto predicate = ir::make_bool_to_fp(std::move(s->a));
    auto value = ir::make_bin(ir::BinOp::Mul, std::move(predicate),
                              std::move(inner.a));
    s = ir::make_assign_comp(ir::AssignOp::Add, std::move(value));
  }
}

}  // namespace

void if_convert(ir::Program& prog) { if_convert_body(prog.body()); }

// ---------------------------------------------------------------------------
// Reassociation
// ---------------------------------------------------------------------------

namespace {

/// Collect the leaves of a same-op chain (Add or Mul, left/right nested).
void collect_chain(ExprPtr e, ir::BinOp op, std::vector<ExprPtr>& leaves) {
  if (e->kind == ExprKind::Bin && e->bin_op == op) {
    auto lhs = std::move(e->kids[0]);
    auto rhs = std::move(e->kids[1]);
    collect_chain(std::move(lhs), op, leaves);
    collect_chain(std::move(rhs), op, leaves);
    return;
  }
  leaves.push_back(std::move(e));
}

ExprPtr build_left(std::vector<ExprPtr>& leaves, ir::BinOp op, std::size_t lo,
                   std::size_t hi) {
  ExprPtr acc = std::move(leaves[lo]);
  for (std::size_t i = lo + 1; i < hi; ++i)
    acc = ir::make_bin(op, std::move(acc), std::move(leaves[i]));
  return acc;
}

ExprPtr build_balanced(std::vector<ExprPtr>& leaves, ir::BinOp op, std::size_t lo,
                       std::size_t hi) {
  if (hi - lo == 1) return std::move(leaves[lo]);
  const std::size_t mid = lo + (hi - lo) / 2;
  return ir::make_bin(op, build_balanced(leaves, op, lo, mid),
                      build_balanced(leaves, op, mid, hi));
}

}  // namespace

void reassociate(ir::Program& prog, ReassocStyle style, int min_chain) {
  const auto reassoc = [&](ExprPtr e) -> ExprPtr {
    if (e->kind != ExprKind::Bin) return e;
    if (e->bin_op != ir::BinOp::Add && e->bin_op != ir::BinOp::Mul) return e;
    const ir::BinOp op = e->bin_op;
    // Only rewrite the chain root: if the parent will also match, let the
    // outermost invocation handle it (rewrite_post runs bottom-up, so we
    // check that neither child is the same op *after* children were
    // processed — i.e. this node is the root of a maximal chain only if its
    // parent isn't the same op; we conservatively rebuild at every level,
    // which converges because rebuilt subtrees are in canonical shape).
    std::vector<ExprPtr> leaves;
    collect_chain(std::move(e), op, leaves);
    if (static_cast<int>(leaves.size()) < min_chain)
      return build_left(leaves, op, 0, leaves.size());
    if (style == ReassocStyle::FlattenLeft)
      return build_left(leaves, op, 0, leaves.size());
    return build_balanced(leaves, op, 0, leaves.size());
  };
  // Top-down single pass at expression roots: find maximal chains.
  const std::function<ExprPtr(ExprPtr)> walk = [&](ExprPtr e) -> ExprPtr {
    e = reassoc(std::move(e));
    for (auto& kid : e->kids) kid = walk(std::move(kid));
    return e;
  };
  transform_exprs(prog.body(), walk);
}

// ---------------------------------------------------------------------------
// Reciprocal division
// ---------------------------------------------------------------------------

namespace {

bool is_power_of_two_literal(const Expr& e) {
  if (e.kind != ExprKind::Literal) return false;
  const double v = fp::abs_bits(e.lit_value);
  if (fp::is_zero_bits(v) || !fp::is_finite_bits(v)) return false;
  return fp::mantissa_field(v) == 0;
}

}  // namespace

namespace {

ExprPtr recip_rewrite(ExprPtr e) {
  if (e->kind != ExprKind::Bin || e->bin_op != ir::BinOp::Div) return e;
  if (is_power_of_two_literal(*e->kids[1])) return e;  // exact either way
  auto num = std::move(e->kids[0]);
  auto den = std::move(e->kids[1]);
  auto inv = ir::make_bin(ir::BinOp::Div, ir::make_literal(1.0, "1.0"),
                          std::move(den));
  return ir::make_bin(ir::BinOp::Mul, std::move(num), std::move(inv));
}

/// Reciprocal substitution pays off when the reciprocal can be hoisted, so
/// the pass (like the real -freciprocal-math heuristics) only rewrites
/// divisions inside loop bodies.
void reciprocal_in_loops(std::vector<StmtPtr>& body, bool in_loop) {
  for (auto& s : body) {
    const bool next_in_loop = in_loop || s->kind == StmtKind::For;
    reciprocal_in_loops(s->body, next_in_loop);
    if (!in_loop) continue;
    if (s->a)
      s->a = rewrite_post(std::move(s->a), recip_rewrite);
    if (s->b)
      s->b = rewrite_post(std::move(s->b), recip_rewrite);
  }
}

}  // namespace

void reciprocal_division(ir::Program& prog) {
  reciprocal_in_loops(prog.body(), /*in_loop=*/false);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

namespace {

std::size_t count_expr_matching(const Expr& e, ExprKind kind) {
  std::size_t n = e.kind == kind ? 1 : 0;
  for (const auto& k : e.kids) n += count_expr_matching(*k, kind);
  return n;
}

std::size_t count_stmt_matching(const std::vector<StmtPtr>& body, ExprKind kind) {
  std::size_t n = 0;
  for (const auto& s : body) {
    if (s->a) n += count_expr_matching(*s->a, kind);
    if (s->b) n += count_expr_matching(*s->b, kind);
    n += count_stmt_matching(s->body, kind);
  }
  return n;
}

}  // namespace

std::size_t count_fma_nodes(const ir::Program& prog) {
  return count_stmt_matching(prog.body(), ExprKind::Fma);
}

std::size_t count_nodes(const ir::Program& prog) { return prog.node_count(); }

}  // namespace gpudiff::opt
