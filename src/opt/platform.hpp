#pragma once
// Platform registry: named virtual-platform configurations.
//
// The paper's pipeline compares exactly two platforms, and that pair used
// to be baked into every layer as an {nvcc, hipcc} field pair.  The
// numerically interesting space, however, is per *configuration* — FTZ and
// denormal policy, FP32 division mode, FMA contraction shape, fast-math
// flags, math-library variant (Khattak & Mikaitis 2025) — which a two-slot
// struct cannot express ("hipcc with FTZ on vs off", "nvcc -O3 vs
// nvcc -O3 -use_fast_math over the same program").
//
// A PlatformSpec bundles a Toolchain (pass schedule + math-library family)
// with the FP-environment knobs, and the differential core
// (diff/runner.hpp) runs any list of specs against the first entry — the
// baseline.  The built-in registry ships the two paper platforms plus
// scenario configurations; campaigns select a subset with
// `gpudiff-campaign --platforms nvcc,hipcc,hipcc-ftz`.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "opt/pipeline.hpp"

namespace gpudiff::opt {

/// Upper bound on platforms per comparison.  Keeps the per-run comparison
/// record (diff::ComparisonResult) allocation-free: it embeds one result
/// lane per platform.
inline constexpr std::size_t kMaxPlatforms = 8;

/// One named platform configuration.  Equality is field-wise, which is
/// what the campaign configuration fingerprint serializes — two specs that
/// share a name but differ in any knob fingerprint differently.
struct PlatformSpec {
  std::string name;  ///< registry key, CLI spelling and report label
  Toolchain toolchain = Toolchain::Nvcc;
  /// Compile every optimized level with the toolchain's fast-math pipeline
  /// (reassociation, approximate division, fast/native math binding), the
  /// way a build that always passes -use_fast_math / -ffast-math behaves.
  /// O0 stays O0.
  bool fast_math = false;
  bool force_ftz32 = false;  ///< flush FP32 subnormal results at every level
  bool force_daz32 = false;  ///< treat FP32 subnormal inputs as zero
  FmaMode fma = FmaMode::Auto;
  Div32Override div32 = Div32Override::Auto;
  /// Math-library binding by vmath registry name ("" = toolchain default).
  std::string mathlib;
  /// One-line description for `gpudiff-campaign --list-platforms`.
  std::string blurb;

  friend bool operator==(const PlatformSpec&, const PlatformSpec&) = default;
};

/// The built-in registry, in deterministic order: the two paper platforms
/// first, then the scenario configurations.  Names stay clear of the fixed
/// JSON keys of the campaign record format ("program", "input", "level",
/// "class", "classes", "platforms") — record documents key platform
/// payloads by name.
const std::vector<PlatformSpec>& platform_registry();

/// Registry lookup (null when `name` is unknown).
const PlatformSpec* find_platform(std::string_view name);

/// Parse a comma-separated platform selection ("nvcc,hipcc,hipcc-ftz").
/// Strict: throws std::runtime_error naming the offending entry on an
/// unknown name, a duplicate, fewer than two platforms, or more than
/// kMaxPlatforms.  The first entry is the comparison baseline.
std::vector<PlatformSpec> parse_platform_list(const std::string& csv);

/// The paper's default pair: {nvcc, hipcc}, nvcc the baseline.
std::vector<PlatformSpec> default_platforms();

/// Names of `specs`, in order (campaign results carry these labels).
std::vector<std::string> platform_names(std::span<const PlatformSpec> specs);

/// Compile `program` for `spec` at `level`.  `hipify_converted` applies
/// only to hipcc-based platforms (Tables VII/VIII).  For the built-in
/// "nvcc"/"hipcc" specs this is bit-for-bit the pre-registry compile
/// pipeline, which is what keeps default campaign output byte-identical.
Executable compile(const ir::Program& program, const PlatformSpec& spec,
                   OptLevel level, bool hipify_converted = false);

}  // namespace gpudiff::opt
