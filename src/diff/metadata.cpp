#include "diff/metadata.hpp"

#include <stdexcept>

#include "fp/hexfloat.hpp"
#include "ir/serialize.hpp"
#include "support/thread_pool.hpp"

namespace gpudiff::diff {

using support::Json;
using support::JsonArray;

namespace {

/// Result key of a platform in the metadata document: the registry name
/// plus the simulator suffix ("nvcc" -> "nvcc-sim", matching the paper's
/// toolchain spellings for the default pair).
std::string platform_key(const std::string& name) { return name + "-sim"; }

std::vector<opt::OptLevel> levels_from_json(const Json& arr) {
  std::vector<opt::OptLevel> levels;
  for (const auto& l : arr.as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("metadata: bad opt level " + l.as_string());
    levels.push_back(level);
  }
  return levels;
}

}  // namespace

Metadata Metadata::create(const CampaignConfig& config) {
  const gen::Generator generator(config.gen, config.seed);
  const gen::InputGenerator input_gen(config.seed);

  Json root = Json::object();
  root["format"] = "gpudiff-metadata";
  root["version"] = 1;
  Json cfg = Json::object();
  cfg["seed"] = static_cast<long long>(config.seed);
  cfg["precision"] = ir::to_string(config.gen.precision);
  cfg["hipify_converted"] = config.hipify_converted;
  cfg["num_programs"] = config.num_programs;
  cfg["inputs_per_program"] = config.inputs_per_program;
  Json levels = Json::array();
  for (auto level : config.levels) levels.push_back(opt::to_string(level));
  cfg["levels"] = std::move(levels);
  Json platforms = Json::array();
  for (const auto& spec : config.platforms) platforms.push_back(spec.name);
  cfg["platforms"] = std::move(platforms);
  root["config"] = std::move(cfg);

  Json tests = Json::array();
  for (int pi = 0; pi < config.num_programs; ++pi) {
    const ir::Program program = generator.generate(static_cast<std::uint64_t>(pi));
    Json test = Json::object();
    test["file"] = "tests/test_" + std::to_string(pi) + ".cu";
    test["program"] = ir::program_to_json(program);
    Json inputs = Json::array();
    for (int ii = 0; ii < config.inputs_per_program; ++ii) {
      const auto args = input_gen.generate(program, pi, ii);
      inputs.push_back(args.to_json(program));
    }
    test["inputs"] = std::move(inputs);
    test["results"] = Json::object();
    tests.push_back(std::move(test));
  }
  root["tests"] = std::move(tests);

  Metadata md;
  md.root_ = std::move(root);
  return md;
}

std::size_t Metadata::test_count() const {
  return root_.at("tests").as_array().size();
}

std::vector<std::string> Metadata::platform_names() const {
  const Json& cfg = root_.at("config");
  std::vector<std::string> names;
  if (cfg.contains("platforms")) {
    for (const auto& name : cfg.at("platforms").as_array())
      names.push_back(name.as_string());
  } else {
    // Pre-registry metadata files carried the paper pair implicitly.
    names = {"nvcc", "hipcc"};
  }
  if (names.size() < 2)
    throw std::runtime_error("metadata: platform list too short");
  return names;
}

ir::Program Metadata::test_program(std::size_t index) const {
  return ir::program_from_json(root_.at("tests").as_array().at(index).at("program"));
}

std::vector<vgpu::KernelArgs> Metadata::test_inputs(std::size_t index) const {
  const ir::Program program = test_program(index);
  const Json& inputs = root_.at("tests").as_array().at(index).at("inputs");
  std::vector<vgpu::KernelArgs> out;
  for (const auto& in : inputs.as_array())
    out.push_back(vgpu::KernelArgs::from_json(in, program));
  return out;
}

void Metadata::record_platform(const opt::PlatformSpec& platform,
                               unsigned threads) {
  const Json& cfg = root_.at("config");
  const bool hipify = cfg.at("hipify_converted").as_bool();
  const auto levels = levels_from_json(cfg.at("levels"));
  auto& tests = root_["tests"].as_array();

  // Collected per test first (parallel), then written back in order.
  std::vector<Json> per_test(tests.size());
  support::parallel_for(
      tests.size(),
      [&](std::size_t ti) {
        const ir::Program program = ir::program_from_json(tests[ti].at("program"));
        std::vector<vgpu::KernelArgs> inputs;
        for (const auto& in : tests[ti].at("inputs").as_array())
          inputs.push_back(vgpu::KernelArgs::from_json(in, program));

        Json by_level = Json::object();
        for (const auto level : levels) {
          const opt::Executable exe =
              opt::compile(program, platform, level, hipify);
          Json runs = Json::array();
          for (const auto& args : inputs) {
            const vgpu::RunResult run = vgpu::run_kernel(exe, args);
            Json entry = Json::object();
            if (program.precision() == ir::Precision::FP32) {
              entry["bits"] = fp::encode_bits(fp::from_bits<float>(
                  static_cast<std::uint32_t>(run.value_bits)));
            } else {
              entry["bits"] = fp::encode_bits(fp::from_bits<double>(run.value_bits));
            }
            entry["printed"] = run.printed();
            runs.push_back(std::move(entry));
          }
          by_level[opt::to_string(level)] = std::move(runs);
        }
        per_test[ti] = std::move(by_level);
      },
      threads, /*chunk=*/2);

  for (std::size_t ti = 0; ti < tests.size(); ++ti)
    tests[ti]["results"][platform_key(platform.name)] = std::move(per_test[ti]);
}

bool Metadata::has_platform(const opt::PlatformSpec& platform) const {
  return has_platform(platform.name);
}

bool Metadata::has_platform(const std::string& name) const {
  const auto& tests = root_.at("tests").as_array();
  if (tests.empty()) return false;
  return tests.front().at("results").contains(platform_key(name));
}

CampaignResults Metadata::analyze() const {
  const auto names = platform_names();
  for (const auto& name : names)
    if (!has_platform(name))
      throw std::runtime_error("metadata: platform '" + name +
                               "' has not been recorded yet");

  const Json& cfg = root_.at("config");
  ir::Precision precision;
  if (!ir::parse_precision(cfg.at("precision").as_string(), &precision))
    throw std::runtime_error("metadata: bad precision " +
                             cfg.at("precision").as_string());
  const auto levels = levels_from_json(cfg.at("levels"));
  const std::size_t n_platforms = names.size();

  CampaignResults results;
  results.seed = static_cast<std::uint64_t>(cfg.at("seed").as_int());
  results.precision = precision;
  results.hipify_converted = cfg.at("hipify_converted").as_bool();
  results.num_programs = static_cast<int>(cfg.at("num_programs").as_int());
  results.inputs_per_program =
      static_cast<int>(cfg.at("inputs_per_program").as_int());
  results.platforms = names;
  results.levels = levels;
  results.per_level.assign(levels.size(), LevelStats::zero(n_platforms));

  const auto& tests = root_.at("tests").as_array();
  // Per-platform scratch for one (level, input) cell, hoisted so the
  // non-discrepant majority of cells allocates nothing.
  std::vector<std::uint64_t> bits(n_platforms);
  std::vector<fp::Outcome> outcomes(n_platforms);
  std::vector<DiscrepancyClass> pair_cls(n_platforms);
  for (std::size_t ti = 0; ti < tests.size(); ++ti) {
    const Json& res = tests[ti].at("results");
    // Iterate input-major so records come out in the campaign driver's
    // canonical (program, input, level) order.
    std::vector<std::vector<const JsonArray*>> by_level(n_platforms);
    std::size_t n_runs = 0;
    for (std::size_t p = 0; p < n_platforms; ++p) {
      const Json& platform_res = res.at(platform_key(names[p]));
      by_level[p].resize(levels.size());
      for (std::size_t li = 0; li < levels.size(); ++li) {
        by_level[p][li] = &platform_res.at(opt::to_string(levels[li])).as_array();
        if ((p > 0 || li > 0) && by_level[p][li]->size() != n_runs)
          throw std::runtime_error("metadata: run count mismatch");
        n_runs = by_level[p][li]->size();
      }
    }
    for (std::size_t ii = 0; ii < n_runs; ++ii) {
      for (std::size_t li = 0; li < levels.size(); ++li) {
        LevelStats& stats = results.per_level[li];
        ++stats.comparisons;
        for (std::size_t p = 0; p < n_platforms; ++p) {
          const Json& entry = (*by_level[p][li])[ii];
          if (precision == ir::Precision::FP32) {
            const auto v = fp::decode_bits32(entry.at("bits").as_string());
            if (!v) throw std::runtime_error("metadata: bad bits");
            bits[p] = fp::to_bits(*v);
            outcomes[p] = fp::outcome_of(*v);
          } else {
            const auto v = fp::decode_bits64(entry.at("bits").as_string());
            if (!v) throw std::runtime_error("metadata: bad bits");
            bits[p] = fp::to_bits(*v);
            outcomes[p] = fp::outcome_of(*v);
          }
        }
        DiscrepancyClass first = DiscrepancyClass::None;
        pair_cls.assign(n_platforms, DiscrepancyClass::None);
        for (std::size_t p = 1; p < n_platforms; ++p) {
          const DiscrepancyClass cls =
              classify_pair(outcomes[0], bits[0], outcomes[p], bits[p]);
          pair_cls[p] = cls;
          if (cls == DiscrepancyClass::None) continue;
          if (first == DiscrepancyClass::None) first = cls;
          PairStats& pair = results.per_level[li].pairs[p - 1];
          ++pair.class_counts[class_index(cls)];
          ++pair.adjacency[static_cast<int>(outcomes[0].cls)]
                          [static_cast<int>(outcomes[p].cls)];
        }
        if (first == DiscrepancyClass::None) continue;
        if (results.records.size() < 50000) {
          DiscrepancyRecord rec;
          rec.program_index = ti;
          rec.input_index = static_cast<int>(ii);
          rec.level = levels[li];
          rec.cls = first;
          rec.outcomes = outcomes;
          rec.pair_cls = std::move(pair_cls);
          for (std::size_t p = 0; p < n_platforms; ++p)
            rec.printed.push_back(
                (*by_level[p][li])[ii].at("printed").as_string());
          results.records.push_back(std::move(rec));
        }
      }
    }
  }
  return results;
}

void Metadata::save(const std::string& path, int indent) const {
  support::write_file(path, root_.dump(indent));
}

Metadata Metadata::load(const std::string& path) {
  return from_json(Json::parse(support::read_file(path)));
}

Metadata Metadata::from_json(Json root) {
  if (!root.is_object() || root.get_or("format", Json()).as_string() !=
                               "gpudiff-metadata")
    throw std::runtime_error("metadata: not a gpudiff metadata document");
  Metadata md;
  md.root_ = std::move(root);
  return md;
}

}  // namespace gpudiff::diff
