#include "diff/metadata.hpp"

#include <stdexcept>

#include "fp/hexfloat.hpp"
#include "ir/serialize.hpp"
#include "support/thread_pool.hpp"

namespace gpudiff::diff {

using support::Json;
using support::JsonArray;

namespace {

const char* platform_key(opt::Toolchain t) {
  return t == opt::Toolchain::Nvcc ? "nvcc-sim" : "hipcc-sim";
}

std::vector<opt::OptLevel> levels_from_json(const Json& arr) {
  std::vector<opt::OptLevel> levels;
  for (const auto& l : arr.as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("metadata: bad opt level " + l.as_string());
    levels.push_back(level);
  }
  return levels;
}

}  // namespace

Metadata Metadata::create(const CampaignConfig& config) {
  const gen::Generator generator(config.gen, config.seed);
  const gen::InputGenerator input_gen(config.seed);

  Json root = Json::object();
  root["format"] = "gpudiff-metadata";
  root["version"] = 1;
  Json cfg = Json::object();
  cfg["seed"] = static_cast<long long>(config.seed);
  cfg["precision"] = ir::to_string(config.gen.precision);
  cfg["hipify_converted"] = config.hipify_converted;
  cfg["num_programs"] = config.num_programs;
  cfg["inputs_per_program"] = config.inputs_per_program;
  Json levels = Json::array();
  for (auto level : config.levels) levels.push_back(opt::to_string(level));
  cfg["levels"] = std::move(levels);
  root["config"] = std::move(cfg);

  Json tests = Json::array();
  for (int pi = 0; pi < config.num_programs; ++pi) {
    const ir::Program program = generator.generate(static_cast<std::uint64_t>(pi));
    Json test = Json::object();
    test["file"] = "tests/test_" + std::to_string(pi) + ".cu";
    test["program"] = ir::program_to_json(program);
    Json inputs = Json::array();
    for (int ii = 0; ii < config.inputs_per_program; ++ii) {
      const auto args = input_gen.generate(program, pi, ii);
      inputs.push_back(args.to_json(program));
    }
    test["inputs"] = std::move(inputs);
    test["results"] = Json::object();
    tests.push_back(std::move(test));
  }
  root["tests"] = std::move(tests);

  Metadata md;
  md.root_ = std::move(root);
  return md;
}

std::size_t Metadata::test_count() const {
  return root_.at("tests").as_array().size();
}

ir::Program Metadata::test_program(std::size_t index) const {
  return ir::program_from_json(root_.at("tests").as_array().at(index).at("program"));
}

std::vector<vgpu::KernelArgs> Metadata::test_inputs(std::size_t index) const {
  const ir::Program program = test_program(index);
  const Json& inputs = root_.at("tests").as_array().at(index).at("inputs");
  std::vector<vgpu::KernelArgs> out;
  for (const auto& in : inputs.as_array())
    out.push_back(vgpu::KernelArgs::from_json(in, program));
  return out;
}

void Metadata::record_platform(opt::Toolchain toolchain, unsigned threads) {
  const Json& cfg = root_.at("config");
  const bool hipify = cfg.at("hipify_converted").as_bool();
  const auto levels = levels_from_json(cfg.at("levels"));
  auto& tests = root_["tests"].as_array();

  // Collected per test first (parallel), then written back in order.
  std::vector<Json> per_test(tests.size());
  support::parallel_for(
      tests.size(),
      [&](std::size_t ti) {
        const ir::Program program = ir::program_from_json(tests[ti].at("program"));
        std::vector<vgpu::KernelArgs> inputs;
        for (const auto& in : tests[ti].at("inputs").as_array())
          inputs.push_back(vgpu::KernelArgs::from_json(in, program));

        Json by_level = Json::object();
        for (const auto level : levels) {
          opt::CompileOptions co;
          co.toolchain = toolchain;
          co.level = level;
          co.hipify_converted = hipify && toolchain == opt::Toolchain::Hipcc;
          const opt::Executable exe = opt::compile(program, co);
          Json runs = Json::array();
          for (const auto& args : inputs) {
            const vgpu::RunResult run = vgpu::run_kernel(exe, args);
            Json entry = Json::object();
            if (program.precision() == ir::Precision::FP32) {
              entry["bits"] = fp::encode_bits(fp::from_bits<float>(
                  static_cast<std::uint32_t>(run.value_bits)));
            } else {
              entry["bits"] = fp::encode_bits(fp::from_bits<double>(run.value_bits));
            }
            entry["printed"] = run.printed();
            runs.push_back(std::move(entry));
          }
          by_level[opt::to_string(level)] = std::move(runs);
        }
        per_test[ti] = std::move(by_level);
      },
      threads, /*chunk=*/2);

  for (std::size_t ti = 0; ti < tests.size(); ++ti)
    tests[ti]["results"][platform_key(toolchain)] = std::move(per_test[ti]);
}

bool Metadata::has_platform(opt::Toolchain toolchain) const {
  const auto& tests = root_.at("tests").as_array();
  if (tests.empty()) return false;
  return tests.front().at("results").contains(platform_key(toolchain));
}

CampaignResults Metadata::analyze() const {
  if (!has_platform(opt::Toolchain::Nvcc) || !has_platform(opt::Toolchain::Hipcc))
    throw std::runtime_error("metadata: both platforms must be recorded first");

  const Json& cfg = root_.at("config");
  ir::Precision precision;
  if (!ir::parse_precision(cfg.at("precision").as_string(), &precision))
    throw std::runtime_error("metadata: bad precision " +
                             cfg.at("precision").as_string());
  const auto levels = levels_from_json(cfg.at("levels"));

  CampaignResults results;
  results.seed = static_cast<std::uint64_t>(cfg.at("seed").as_int());
  results.precision = precision;
  results.hipify_converted = cfg.at("hipify_converted").as_bool();
  results.num_programs = static_cast<int>(cfg.at("num_programs").as_int());
  results.inputs_per_program =
      static_cast<int>(cfg.at("inputs_per_program").as_int());
  results.levels = levels;
  results.per_level.assign(levels.size(), LevelStats{});

  const auto& tests = root_.at("tests").as_array();
  for (std::size_t ti = 0; ti < tests.size(); ++ti) {
    const Json& res = tests[ti].at("results");
    const Json& nv = res.at("nvcc-sim");
    const Json& amd = res.at("hipcc-sim");
    // Iterate input-major so records come out in the campaign driver's
    // canonical (program, input, level) order.
    std::vector<const JsonArray*> nv_by_level(levels.size());
    std::vector<const JsonArray*> amd_by_level(levels.size());
    std::size_t n_runs = 0;
    for (std::size_t li = 0; li < levels.size(); ++li) {
      const std::string key = opt::to_string(levels[li]);
      nv_by_level[li] = &nv.at(key).as_array();
      amd_by_level[li] = &amd.at(key).as_array();
      if (nv_by_level[li]->size() != amd_by_level[li]->size() ||
          (li > 0 && nv_by_level[li]->size() != n_runs))
        throw std::runtime_error("metadata: run count mismatch");
      n_runs = nv_by_level[li]->size();
    }
    for (std::size_t ii = 0; ii < n_runs; ++ii) {
      for (std::size_t li = 0; li < levels.size(); ++li) {
        const auto& nv_runs = *nv_by_level[li];
        const auto& amd_runs = *amd_by_level[li];
        LevelStats& stats = results.per_level[li];
        ++stats.comparisons;
        std::uint64_t nb, ab;
        fp::Outcome no, ao;
        if (precision == ir::Precision::FP32) {
          const auto nvf = fp::decode_bits32(nv_runs[ii].at("bits").as_string());
          const auto amdf = fp::decode_bits32(amd_runs[ii].at("bits").as_string());
          if (!nvf || !amdf) throw std::runtime_error("metadata: bad bits");
          nb = fp::to_bits(*nvf);
          ab = fp::to_bits(*amdf);
          no = fp::outcome_of(*nvf);
          ao = fp::outcome_of(*amdf);
        } else {
          const auto nvd = fp::decode_bits64(nv_runs[ii].at("bits").as_string());
          const auto amdd = fp::decode_bits64(amd_runs[ii].at("bits").as_string());
          if (!nvd || !amdd) throw std::runtime_error("metadata: bad bits");
          nb = fp::to_bits(*nvd);
          ab = fp::to_bits(*amdd);
          no = fp::outcome_of(*nvd);
          ao = fp::outcome_of(*amdd);
        }
        const DiscrepancyClass cls = classify_pair(no, nb, ao, ab);
        if (cls == DiscrepancyClass::None) continue;
        ++stats.class_counts[class_index(cls)];
        ++stats.adjacency[static_cast<int>(no.cls)][static_cast<int>(ao.cls)];
        if (results.records.size() < 50000) {
          DiscrepancyRecord rec;
          rec.program_index = ti;
          rec.input_index = static_cast<int>(ii);
          rec.level = levels[li];
          rec.cls = cls;
          rec.nvcc_outcome = no;
          rec.hipcc_outcome = ao;
          rec.nvcc_printed = nv_runs[ii].at("printed").as_string();
          rec.hipcc_printed = amd_runs[ii].at("printed").as_string();
          results.records.push_back(std::move(rec));
        }
      }
    }
  }
  return results;
}

void Metadata::save(const std::string& path, int indent) const {
  support::write_file(path, root_.dump(indent));
}

Metadata Metadata::load(const std::string& path) {
  return from_json(Json::parse(support::read_file(path)));
}

Metadata Metadata::from_json(Json root) {
  if (!root.is_object() || root.get_or("format", Json()).as_string() !=
                               "gpudiff-metadata")
    throw std::runtime_error("metadata: not a gpudiff metadata document");
  Metadata md;
  md.root_ = std::move(root);
  return md;
}

}  // namespace gpudiff::diff
