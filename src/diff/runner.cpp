#include "diff/runner.hpp"

namespace gpudiff::diff {

namespace {

PlatformResult to_platform_result(const vgpu::RunResult& run,
                                  ir::Precision precision) {
  PlatformResult out;
  out.value = run.value;
  out.bits = run.value_bits;
  out.flags = run.flags;
  out.op_count = run.op_count;
  if (precision == ir::Precision::FP32) {
    out.outcome = fp::outcome_of(
        fp::from_bits<float>(static_cast<std::uint32_t>(run.value_bits)));
  } else {
    out.outcome = fp::outcome_of(fp::from_bits<double>(run.value_bits));
  }
  return out;
}

}  // namespace

CompiledPair compile_pair(const ir::Program& program, opt::OptLevel level,
                          bool hipify_converted) {
  opt::CompileOptions nv;
  nv.toolchain = opt::Toolchain::Nvcc;
  nv.level = level;
  opt::CompileOptions amd;
  amd.toolchain = opt::Toolchain::Hipcc;
  amd.level = level;
  amd.hipify_converted = hipify_converted;
  return {opt::compile(program, nv), opt::compile(program, amd)};
}

ComparisonResult compare_run(const CompiledPair& pair, const vgpu::KernelArgs& args) {
  const ir::Precision prec = pair.nvcc.program.precision();
  ComparisonResult out;
  out.nvcc = to_platform_result(vgpu::run_kernel(pair.nvcc, args), prec);
  out.hipcc = to_platform_result(vgpu::run_kernel(pair.hipcc, args), prec);
  out.cls = classify_pair(out.nvcc.outcome, out.nvcc.bits, out.hipcc.outcome,
                          out.hipcc.bits);
  return out;
}

const std::vector<ComparisonResult>& compare_batch(
    const CompiledPair& pair, std::span<const vgpu::KernelArgs> inputs,
    SweepContext& ctx) {
  const ir::Precision prec = pair.nvcc.program.precision();
  ctx.nvcc_runs.resize(inputs.size());
  ctx.hipcc_runs.resize(inputs.size());
  vgpu::run_kernel_batch(pair.nvcc, inputs, ctx.nvcc_runs.data(), ctx.exec);
  vgpu::run_kernel_batch(pair.hipcc, inputs, ctx.hipcc_runs.data(), ctx.exec);
  ctx.cmps.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ComparisonResult& cmp = ctx.cmps[i];
    cmp.nvcc = to_platform_result(ctx.nvcc_runs[i], prec);
    cmp.hipcc = to_platform_result(ctx.hipcc_runs[i], prec);
    cmp.cls = classify_pair(cmp.nvcc.outcome, cmp.nvcc.bits,
                            cmp.hipcc.outcome, cmp.hipcc.bits);
  }
  return ctx.cmps;
}

std::vector<ComparisonResult> compare_batch(
    const CompiledPair& pair, std::span<const vgpu::KernelArgs> inputs) {
  SweepContext ctx;
  return compare_batch(pair, inputs, ctx);
}

ComparisonResult run_differential(const ir::Program& program,
                                  const vgpu::KernelArgs& args,
                                  opt::OptLevel level, bool hipify_converted) {
  return compare_run(compile_pair(program, level, hipify_converted), args);
}

}  // namespace gpudiff::diff
