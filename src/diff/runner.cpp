#include "diff/runner.hpp"

#include <stdexcept>

namespace gpudiff::diff {

namespace {

PlatformResult to_platform_result(const vgpu::RunResult& run,
                                  ir::Precision precision) {
  PlatformResult out;
  out.value = run.value;
  out.bits = run.value_bits;
  out.flags = run.flags;
  out.op_count = run.op_count;
  if (precision == ir::Precision::FP32) {
    out.outcome = fp::outcome_of(
        fp::from_bits<float>(static_cast<std::uint32_t>(run.value_bits)));
  } else {
    out.outcome = fp::outcome_of(fp::from_bits<double>(run.value_bits));
  }
  return out;
}

/// Classify every lane of `cmp` against lane 0 and set the representative
/// class.  One definition shared by the single-run and batched paths so
/// they cannot drift.
void classify_lanes(ComparisonResult& cmp) {
  cmp.cls = DiscrepancyClass::None;
  cmp.pair_cls[0] = DiscrepancyClass::None;
  const PlatformResult& base = cmp.platforms[0];
  for (std::uint32_t p = 1; p < cmp.count; ++p) {
    const DiscrepancyClass cls =
        classify_pair(base.outcome, base.bits, cmp.platforms[p].outcome,
                      cmp.platforms[p].bits);
    cmp.pair_cls[p] = cls;
    if (cmp.cls == DiscrepancyClass::None) cmp.cls = cls;
  }
}

}  // namespace

CompiledSet compile_set(const ir::Program& program,
                        std::span<const opt::PlatformSpec> platforms,
                        opt::OptLevel level, bool hipify_converted) {
  if (platforms.empty())
    throw std::invalid_argument("compile_set: empty platform list");
  if (platforms.size() > opt::kMaxPlatforms)
    throw std::invalid_argument("compile_set: more than kMaxPlatforms");
  CompiledSet set;
  set.exes.reserve(platforms.size());
  for (const opt::PlatformSpec& spec : platforms)
    set.exes.push_back(opt::compile(program, spec, level, hipify_converted));
  return set;
}

CompiledSet compile_pair(const ir::Program& program, opt::OptLevel level,
                         bool hipify_converted) {
  const auto platforms = opt::default_platforms();
  return compile_set(program, platforms, level, hipify_converted);
}

ComparisonResult compare_run(const CompiledSet& set, const vgpu::KernelArgs& args) {
  const ir::Precision prec = set.precision();
  ComparisonResult out;
  out.count = static_cast<std::uint32_t>(set.size());
  for (std::size_t p = 0; p < set.size(); ++p)
    out.platforms[p] = to_platform_result(vgpu::run_kernel(set.exes[p], args), prec);
  classify_lanes(out);
  return out;
}

const std::vector<ComparisonResult>& compare_batch(
    const CompiledSet& set, std::span<const vgpu::KernelArgs> inputs,
    SweepContext& ctx) {
  const ir::Precision prec = set.precision();
  if (ctx.runs.size() < set.size()) ctx.runs.resize(set.size());
  for (std::size_t p = 0; p < set.size(); ++p) {
    ctx.runs[p].resize(inputs.size());
    vgpu::run_kernel_batch(set.exes[p], inputs, ctx.runs[p].data(), ctx.exec);
  }
  ctx.cmps.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ComparisonResult& cmp = ctx.cmps[i];
    cmp.count = static_cast<std::uint32_t>(set.size());
    for (std::size_t p = 0; p < set.size(); ++p)
      cmp.platforms[p] = to_platform_result(ctx.runs[p][i], prec);
    classify_lanes(cmp);
  }
  return ctx.cmps;
}

std::vector<ComparisonResult> compare_batch(
    const CompiledSet& set, std::span<const vgpu::KernelArgs> inputs) {
  SweepContext ctx;
  return compare_batch(set, inputs, ctx);
}

ComparisonResult run_differential(const ir::Program& program,
                                  const vgpu::KernelArgs& args,
                                  opt::OptLevel level, bool hipify_converted) {
  return compare_run(compile_pair(program, level, hipify_converted), args);
}

}  // namespace gpudiff::diff
