#pragma once
// Single-test differential runner: compile once per (toolchain, level),
// run per input, classify the pair (paper Fig. 1 pipeline).

#include <span>
#include <string>
#include <vector>

#include "diff/discrepancy.hpp"
#include "fp/exceptions.hpp"
#include "fp/hexfloat.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/args.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace gpudiff::diff {

/// One platform's view of one run.  The %.17g artifact string is not
/// materialized by compare_run — discrepancy classification works on raw
/// bits; call printed() when a record or report actually needs the text.
struct PlatformResult {
  double value = 0.0;           ///< comp widened to double (exact for FP32)
  std::uint64_t bits = 0;       ///< IEEE bits of comp (32 or 64 wide)
  fp::Outcome outcome;          ///< paper outcome class + sign
  fp::ExceptionFlags flags;     ///< virtual-FPU exception record
  std::uint64_t op_count = 0;

  /// %.17g output line, formatted on demand.
  std::string printed() const { return fp::print_g17(value); }
};

/// A compiled (nvcc-sim, hipcc-sim) pair at one optimization level.
struct CompiledPair {
  opt::Executable nvcc;
  opt::Executable hipcc;
};

/// Compile `program` for both platforms at `level`.  `hipify_converted`
/// selects the CUDA-compat binding on the hipcc side (Tables VII/VIII).
CompiledPair compile_pair(const ir::Program& program, opt::OptLevel level,
                          bool hipify_converted = false);

/// One differential comparison.
struct ComparisonResult {
  PlatformResult nvcc;
  PlatformResult hipcc;
  DiscrepancyClass cls = DiscrepancyClass::None;
  bool discrepant() const noexcept { return cls != DiscrepancyClass::None; }
};

ComparisonResult compare_run(const CompiledPair& pair, const vgpu::KernelArgs& args);

/// Reusable scratch for batched sweeps: one VM execution context plus the
/// per-platform run buffers and the comparison output.  A campaign worker
/// keeps one of these per thread and hands it to every compare_batch call,
/// so the steady state performs no allocation at all (buffer capacity is
/// retained across programs and levels).
struct SweepContext {
  vgpu::ExecContext exec;
  std::vector<vgpu::RunResult> nvcc_runs, hipcc_runs;
  std::vector<ComparisonResult> cmps;
};

/// Batched sweep: run every input through one VM invocation loop per
/// platform, amortizing argument validation and execution-context setup
/// across the program's whole input set.  Result i is bit-identical to
/// compare_run(pair, inputs[i]).  The returned reference aliases ctx.cmps
/// and is valid until the next call with the same context.
const std::vector<ComparisonResult>& compare_batch(
    const CompiledPair& pair, std::span<const vgpu::KernelArgs> inputs,
    SweepContext& ctx);

/// Convenience overload with throwaway scratch.
std::vector<ComparisonResult> compare_batch(const CompiledPair& pair,
                                            std::span<const vgpu::KernelArgs> inputs);

/// Convenience: compile + run one input at one level.
ComparisonResult run_differential(const ir::Program& program,
                                  const vgpu::KernelArgs& args,
                                  opt::OptLevel level,
                                  bool hipify_converted = false);

}  // namespace gpudiff::diff
