#pragma once
// N-way differential runner: compile once per (platform, level), run per
// input, classify every platform against the baseline (paper Fig. 1
// pipeline, generalized from the paper's fixed nvcc/hipcc pair to any
// registry platform selection — opt/platform.hpp).

#include <array>
#include <span>
#include <string>
#include <vector>

#include "diff/discrepancy.hpp"
#include "fp/exceptions.hpp"
#include "fp/hexfloat.hpp"
#include "opt/pipeline.hpp"
#include "opt/platform.hpp"
#include "vgpu/args.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace gpudiff::diff {

/// One platform's view of one run.  The %.17g artifact string is not
/// materialized by compare_run — discrepancy classification works on raw
/// bits; call printed() when a record or report actually needs the text.
struct PlatformResult {
  double value = 0.0;           ///< comp widened to double (exact for FP32)
  std::uint64_t bits = 0;       ///< IEEE bits of comp (32 or 64 wide)
  fp::Outcome outcome;          ///< paper outcome class + sign
  fp::ExceptionFlags flags;     ///< virtual-FPU exception record
  std::uint64_t op_count = 0;

  /// %.17g output line, formatted on demand.
  std::string printed() const { return fp::print_g17(value); }
};

/// The compiled executables of one differential test at one optimization
/// level: one Executable per selected platform, element 0 the baseline.
struct CompiledSet {
  std::vector<opt::Executable> exes;

  std::size_t size() const noexcept { return exes.size(); }
  ir::Precision precision() const noexcept {
    return exes.front().program.precision();
  }
};

/// Compile `program` for every platform in `platforms` at `level`.
/// `hipify_converted` selects the CUDA-compat binding on hipcc-based
/// platforms (Tables VII/VIII).  Throws when `platforms` is empty or
/// exceeds opt::kMaxPlatforms.
CompiledSet compile_set(const ir::Program& program,
                        std::span<const opt::PlatformSpec> platforms,
                        opt::OptLevel level, bool hipify_converted = false);

/// The paper's default pair (opt::default_platforms()): exes[0] = nvcc-sim,
/// exes[1] = hipcc-sim.
CompiledSet compile_pair(const ir::Program& program, opt::OptLevel level,
                         bool hipify_converted = false);

/// One differential comparison: every platform's result plus its
/// discrepancy class against the baseline (platform 0).  Fixed-capacity
/// lanes keep this allocation-free on the per-input hot path.
struct ComparisonResult {
  std::uint32_t count = 0;  ///< number of platforms compared
  std::array<PlatformResult, opt::kMaxPlatforms> platforms{};
  /// Pairwise class of platforms[i] vs the baseline; [0] is always None.
  std::array<DiscrepancyClass, opt::kMaxPlatforms> pair_cls{};
  /// Representative class: the first differing platform's class against
  /// the baseline (the only one for a two-platform set); None when every
  /// platform agrees.
  DiscrepancyClass cls = DiscrepancyClass::None;

  bool discrepant() const noexcept { return cls != DiscrepancyClass::None; }
  const PlatformResult& baseline() const noexcept { return platforms[0]; }
  /// The valid pairwise classes, [0, count): the full verdict a record
  /// stores and the reducer preserves verbatim.
  std::span<const DiscrepancyClass> classes() const noexcept {
    return {pair_cls.data(), count};
  }
};

ComparisonResult compare_run(const CompiledSet& set, const vgpu::KernelArgs& args);

/// Reusable scratch for batched sweeps: one VM execution context plus the
/// per-platform run-buffer lanes and the comparison output.  A campaign
/// worker keeps one of these per thread and hands it to every
/// compare_batch call, so the steady state performs no allocation at all
/// (buffer capacity is retained across programs, levels and platforms).
struct SweepContext {
  vgpu::ExecContext exec;
  std::vector<std::vector<vgpu::RunResult>> runs;  ///< one lane per platform
  std::vector<ComparisonResult> cmps;
};

/// Batched sweep: run every input through one VM invocation loop per
/// platform, amortizing argument validation and execution-context setup
/// across the program's whole input set.  Result i is bit-identical to
/// compare_run(set, inputs[i]).  The returned reference aliases ctx.cmps
/// and is valid until the next call with the same context.
const std::vector<ComparisonResult>& compare_batch(
    const CompiledSet& set, std::span<const vgpu::KernelArgs> inputs,
    SweepContext& ctx);

/// Convenience overload with throwaway scratch.
std::vector<ComparisonResult> compare_batch(const CompiledSet& set,
                                            std::span<const vgpu::KernelArgs> inputs);

/// Convenience: compile the default pair + run one input at one level.
ComparisonResult run_differential(const ir::Program& program,
                                  const vgpu::KernelArgs& args,
                                  opt::OptLevel level,
                                  bool hipify_converted = false);

}  // namespace gpudiff::diff
