#pragma once
// Discrepancy taxonomy (paper §IV-B).
//
// Four outcome classes {NaN, Inf, Zero, Number} give seven discrepancy
// classes for an unordered pair of differing outcomes.  Sign-only
// differences within a class (-NaN vs +NaN, -Inf vs +Inf, -0 vs +0) are
// excluded, as the paper excludes them; Number-vs-Number counts only when
// the two values differ bit-for-bit.

#include <cstdint>
#include <string>

#include "fp/classify.hpp"

namespace gpudiff::diff {

enum class DiscrepancyClass : std::uint8_t {
  None = 0,
  NaN_Inf,
  NaN_Zero,
  NaN_Num,
  Inf_Zero,
  Inf_Num,
  Num_Zero,
  Num_Num,
};

inline constexpr int kDiscrepancyClassCount = 7;  // excluding None

/// Paper column order: "NaN, Inf", "NaN, Zero", ..., "Num, Num".
std::string to_string(DiscrepancyClass c);

/// Column index (0..6) for counting; None is not indexable.
int class_index(DiscrepancyClass c);
DiscrepancyClass class_from_index(int index);

/// Classify one comparison: outcomes plus the raw IEEE bits of each result
/// (bits decide Number-vs-Number equality; sign-only special differences
/// return None).
DiscrepancyClass classify_pair(fp::Outcome a, std::uint64_t a_bits,
                               fp::Outcome b, std::uint64_t b_bits);

}  // namespace gpudiff::diff
