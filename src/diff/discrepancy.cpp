#include "diff/discrepancy.hpp"

#include <utility>

namespace gpudiff::diff {

std::string to_string(DiscrepancyClass c) {
  switch (c) {
    case DiscrepancyClass::None: return "none";
    case DiscrepancyClass::NaN_Inf: return "NaN, Inf";
    case DiscrepancyClass::NaN_Zero: return "NaN, Zero";
    case DiscrepancyClass::NaN_Num: return "NaN, Num";
    case DiscrepancyClass::Inf_Zero: return "Inf, Zero";
    case DiscrepancyClass::Inf_Num: return "Inf, Num";
    case DiscrepancyClass::Num_Zero: return "Num, Zero";
    case DiscrepancyClass::Num_Num: return "Num, Num";
  }
  return "?";
}

int class_index(DiscrepancyClass c) { return static_cast<int>(c) - 1; }

DiscrepancyClass class_from_index(int index) {
  return static_cast<DiscrepancyClass>(index + 1);
}

DiscrepancyClass classify_pair(fp::Outcome a, std::uint64_t a_bits,
                               fp::Outcome b, std::uint64_t b_bits) {
  using fp::OutcomeClass;
  if (a.cls == b.cls) {
    // Same class: only Number-vs-Number with different bits is a true
    // numerical difference (the paper excludes sign-only special diffs;
    // NaN payload differences are likewise not numerical differences).
    if (a.cls == OutcomeClass::Number && a_bits != b_bits)
      return DiscrepancyClass::Num_Num;
    return DiscrepancyClass::None;
  }
  // Unordered pair of distinct classes.
  OutcomeClass lo = a.cls;
  OutcomeClass hi = b.cls;
  if (static_cast<int>(lo) > static_cast<int>(hi)) std::swap(lo, hi);
  if (lo == OutcomeClass::NaN) {
    if (hi == OutcomeClass::Inf) return DiscrepancyClass::NaN_Inf;
    if (hi == OutcomeClass::Zero) return DiscrepancyClass::NaN_Zero;
    return DiscrepancyClass::NaN_Num;
  }
  if (lo == OutcomeClass::Inf) {
    if (hi == OutcomeClass::Zero) return DiscrepancyClass::Inf_Zero;
    return DiscrepancyClass::Inf_Num;
  }
  return DiscrepancyClass::Num_Zero;  // Zero paired with Number
}

}  // namespace gpudiff::diff
