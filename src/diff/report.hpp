#pragma once
// Report renderers: regenerate the paper's tables from campaign results.
//
//   Table IV  — render_summary (FP64 / HIPIFY-FP64 / FP32 side by side)
//   Table V   — render_per_level (FP64 campaign)
//   Table VI  — render_adjacency (FP64 campaign)
//   Table VII/VIII and IX/X — same renderers over the HIPIFY / FP32 runs

#include <string>

#include "diff/campaign.hpp"
#include "support/json.hpp"

namespace gpudiff::diff {

/// Paper Table IV: summary metrics for up to three campaigns.
std::string render_summary(const CampaignResults& fp64,
                           const CampaignResults& hipify_fp64,
                           const CampaignResults& fp32);

/// Paper Tables V/VII/IX: discrepancies per optimization option, split into
/// the seven classes, with a Total row.
std::string render_per_level(const CampaignResults& results,
                             const std::string& title);

/// Paper Tables VI/VIII/X: adjacency matrices per optimization level.
/// Upper-triangular; cell (row, col) prints "a, b" where a counts runs with
/// NVCC=row/HIPCC=col and b counts runs with NVCC=col/HIPCC=row.
std::string render_adjacency(const CampaignResults& results,
                             const std::string& title);

/// A drill-down listing of retained discrepancy records (first `limit`).
std::string render_records(const CampaignResults& results, std::size_t limit);

/// Results-store summary table (one row per commit) from store::summary's
/// JSON document.
std::string render_store_summary(const support::Json& summary_doc);

/// Cross-commit diff tables (population deltas, then perf ratios, then the
/// regression verdict) from store::diff_commits's JSON document.
std::string render_store_diff(const support::Json& diff_doc);

}  // namespace gpudiff::diff
