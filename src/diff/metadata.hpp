#pragma once
// Between-platform campaign protocol (paper Fig. 3).
//
// GPUs from different vendors live in different clusters, so the two halves
// of a differential campaign run at different times on different machines:
//
//   System 1 (e.g. Lassen):  tests are generated, run on the local platform,
//     and a JSON metadata file (tests + inputs + compiler + results) is
//     written.
//   System 2 (e.g. Tioga):   the metadata is loaded, the *same* tests and
//     inputs are recompiled with the local toolchain and re-run, and the
//     updated metadata with both platforms' results is saved.
//   Analysis: the combined file yields the same discrepancy statistics a
//     single-machine run would (locked by an integration test).
//
// Results are stored as IEEE bit strings so the file round-trips exactly.

#include <string>

#include "diff/campaign.hpp"
#include "support/json.hpp"

namespace gpudiff::diff {

class Metadata {
 public:
  /// System-1 step A: generate the campaign's tests (no results yet).  The
  /// config's platform selection is recorded so every system runs — and
  /// the analysis step demands — the same named platforms.
  static Metadata create(const CampaignConfig& config);

  /// Run every test on one platform and store its results under the
  /// platform's registry name.  Re-recording a platform overwrites its
  /// previous results.
  void record_platform(const opt::PlatformSpec& platform, unsigned threads = 0);

  bool has_platform(const opt::PlatformSpec& platform) const;
  bool has_platform(const std::string& name) const;

  /// Platform names this campaign compares (element 0 the baseline).
  std::vector<std::string> platform_names() const;

  /// Combine every platform's stored results into campaign statistics
  /// (each non-baseline platform classified against the baseline).
  /// Throws if any selected platform has not been recorded.
  CampaignResults analyze() const;

  /// Number of tests (programs) carried by this metadata.
  std::size_t test_count() const;

  /// Regenerate the i-th test program / its inputs from the metadata.
  ir::Program test_program(std::size_t index) const;
  std::vector<vgpu::KernelArgs> test_inputs(std::size_t index) const;

  void save(const std::string& path, int indent = 1) const;
  static Metadata load(const std::string& path);
  static Metadata from_json(support::Json root);
  const support::Json& json() const noexcept { return root_; }

 private:
  Metadata() = default;
  support::Json root_;
};

}  // namespace gpudiff::diff
