#include "diff/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <stdexcept>

#include "support/thread_pool.hpp"

namespace gpudiff::diff {

void PairStats::merge(const PairStats& other) {
  for (std::size_t i = 0; i < class_counts.size(); ++i)
    class_counts[i] += other.class_counts[i];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) adjacency[r][c] += other.adjacency[r][c];
}

LevelStats LevelStats::zero(std::size_t n_platforms) {
  LevelStats stats;
  stats.pairs.resize(n_platforms > 0 ? n_platforms - 1 : 0);
  return stats;
}

void LevelStats::merge(const LevelStats& other) {
  comparisons += other.comparisons;
  if (pairs.empty()) pairs.resize(other.pairs.size());
  if (pairs.size() != other.pairs.size())
    throw std::invalid_argument("LevelStats::merge: platform count mismatch");
  for (std::size_t i = 0; i < pairs.size(); ++i) pairs[i].merge(other.pairs[i]);
}

std::uint64_t CampaignResults::comparisons_total() const {
  std::uint64_t n = 0;
  for (const auto& s : per_level) n += s.comparisons;
  return n;
}

std::uint64_t CampaignResults::discrepancies_total() const {
  std::uint64_t n = 0;
  for (const auto& s : per_level) n += s.discrepancy_total();
  return n;
}

double CampaignResults::discrepancy_percent() const {
  const auto runs = static_cast<double>(runs_total());
  if (runs == 0) return 0.0;
  // Paper Table IV reports discrepancies as % of total runs.
  return 100.0 * static_cast<double>(discrepancies_total()) / runs;
}

const LevelStats& CampaignResults::stats_for(opt::OptLevel level) const {
  for (std::size_t i = 0; i < levels.size(); ++i)
    if (levels[i] == level) return per_level[i];
  throw std::out_of_range("CampaignResults: level not part of campaign");
}

namespace {

struct ProgramOutcome {
  std::vector<LevelStats> per_level;
  std::vector<DiscrepancyRecord> records;  ///< canonical (input, level) order
};

}  // namespace

void append_capped_records(std::vector<DiscrepancyRecord>& dst,
                           std::vector<DiscrepancyRecord>&& src,
                           std::size_t cap) {
  if (dst.size() >= cap) return;
  const std::size_t take = std::min(src.size(), cap - dst.size());
  dst.insert(dst.end(), std::make_move_iterator(src.begin()),
             std::make_move_iterator(src.begin() +
                                     static_cast<std::ptrdiff_t>(take)));
}

RangeOutcome run_campaign_range(const CampaignConfig& config,
                                std::uint64_t begin, std::uint64_t end) {
  return run_campaign_range(config, begin, end, RangeHooks{});
}

RangeOutcome run_campaign_range(const CampaignConfig& config,
                                std::uint64_t begin, std::uint64_t end,
                                const RangeHooks& hooks) {
  if (begin > end)
    throw std::invalid_argument("run_campaign_range: begin > end");
  const std::size_t n_platforms = config.platforms.size();
  if (n_platforms < 2)
    throw std::invalid_argument(
        "run_campaign_range: need a baseline plus at least one platform");
  const gen::Generator generator(config.gen, config.seed);
  const gen::InputGenerator input_gen(config.seed);

  const std::size_t n_programs = static_cast<std::size_t>(end - begin);
  std::vector<ProgramOutcome> outcomes(n_programs);
  std::atomic<std::uint64_t> completed{0};

  support::parallel_for(
      n_programs,
      [&](std::size_t oi) {
        const std::uint64_t pi = begin + oi;
        ProgramOutcome& out = outcomes[oi];
        out.per_level.assign(config.levels.size(),
                             LevelStats::zero(n_platforms));
        const ir::Program program = generator.generate(pi);

        // Materialize this program's inputs once.
        std::vector<vgpu::KernelArgs> inputs;
        inputs.reserve(static_cast<std::size_t>(config.inputs_per_program));
        for (int ii = 0; ii < config.inputs_per_program; ++ii)
          inputs.push_back(input_gen.generate(program, pi, ii));

        // The execution scratch (VM context, run/comparison buffers) lives
        // once per worker thread and is reused across every program and
        // level that thread processes within this range invocation.  (The
        // calling thread's scratch persists across invocations too;
        // parallel_for's extra workers are per-call, so in the default
        // one-thread-per-shard distribution shape reuse is total.)
        thread_local SweepContext sweep;
        // (level position, record) pairs, sorted into canonical order below.
        std::vector<std::pair<std::size_t, DiscrepancyRecord>> found;

        for (std::size_t li = 0; li < config.levels.size(); ++li) {
          const CompiledSet set =
              compile_set(program, config.platforms, config.levels[li],
                          config.hipify_converted);
          LevelStats& stats = out.per_level[li];
          // Batched sweep: all of this program's inputs through one VM
          // invocation loop per platform (arg checks amortized).
          const std::vector<ComparisonResult>& cmps =
              compare_batch(set, inputs, sweep);
          for (int ii = 0; ii < config.inputs_per_program; ++ii) {
            const ComparisonResult& cmp = cmps[static_cast<std::size_t>(ii)];
            ++stats.comparisons;
            if (!cmp.discrepant()) continue;
            for (std::size_t p = 1; p < n_platforms; ++p) {
              const DiscrepancyClass cls = cmp.pair_cls[p];
              if (cls == DiscrepancyClass::None) continue;
              PairStats& pair = stats.pairs[p - 1];
              ++pair.class_counts[class_index(cls)];
              ++pair.adjacency[static_cast<int>(cmp.platforms[0].outcome.cls)]
                              [static_cast<int>(cmp.platforms[p].outcome.cls)];
            }
            DiscrepancyRecord rec;
            rec.program_index = pi;
            rec.input_index = ii;
            rec.level = config.levels[li];
            rec.cls = cmp.cls;
            rec.outcomes.reserve(n_platforms);
            rec.printed.reserve(n_platforms);
            rec.pair_cls.reserve(n_platforms);
            for (std::size_t p = 0; p < n_platforms; ++p) {
              rec.outcomes.push_back(cmp.platforms[p].outcome);
              rec.printed.push_back(cmp.platforms[p].printed());
              rec.pair_cls.push_back(cmp.pair_cls[p]);
            }
            found.emplace_back(li, std::move(rec));
          }
        }
        // Canonical per-program record order: input-major, then level
        // position.  The emission loop above is level-major (one compiled
        // set per level), so reorder before handing the records over.
        std::stable_sort(found.begin(), found.end(),
                         [](const auto& a, const auto& b) {
                           if (a.second.input_index != b.second.input_index)
                             return a.second.input_index < b.second.input_index;
                           return a.first < b.first;
                         });
        out.records.reserve(found.size());
        for (auto& [li, rec] : found) out.records.push_back(std::move(rec));
        if (hooks.on_program) {
          const auto done = completed.fetch_add(1, std::memory_order_relaxed);
          hooks.on_program(done + 1, n_programs);
        }
      },
      config.threads, /*chunk=*/4);

  // Deterministic merge in program order.  Statistics are never capped;
  // record retention stops outright once max_records is reached instead of
  // re-entering the record loop for every remaining program.
  RangeOutcome range;
  range.per_level.assign(config.levels.size(), LevelStats::zero(n_platforms));
  for (auto& out : outcomes)
    for (std::size_t li = 0; li < config.levels.size(); ++li)
      range.per_level[li].merge(out.per_level[li]);
  for (auto& out : outcomes) {
    if (range.records.size() >= config.max_records) break;
    append_capped_records(range.records, std::move(out.records),
                          config.max_records);
  }
  return range;
}

CampaignResults run_campaign(const CampaignConfig& config) {
  CampaignResults results;
  results.seed = config.seed;
  results.precision = config.gen.precision;
  results.hipify_converted = config.hipify_converted;
  results.num_programs = config.num_programs;
  results.inputs_per_program = config.inputs_per_program;
  results.platforms = opt::platform_names(config.platforms);
  results.levels = config.levels;

  RangeOutcome range = run_campaign_range(
      config, 0, static_cast<std::uint64_t>(config.num_programs));
  results.per_level = std::move(range.per_level);
  results.records = std::move(range.records);
  return results;
}

}  // namespace gpudiff::diff
