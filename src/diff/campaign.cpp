#include "diff/campaign.hpp"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <stdexcept>

#include "support/thread_pool.hpp"

namespace gpudiff::diff {

void LevelStats::merge(const LevelStats& other) {
  comparisons += other.comparisons;
  for (std::size_t i = 0; i < class_counts.size(); ++i)
    class_counts[i] += other.class_counts[i];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) adjacency[r][c] += other.adjacency[r][c];
}

std::uint64_t CampaignResults::comparisons_total() const {
  std::uint64_t n = 0;
  for (const auto& s : per_level) n += s.comparisons;
  return n;
}

std::uint64_t CampaignResults::discrepancies_total() const {
  std::uint64_t n = 0;
  for (const auto& s : per_level) n += s.discrepancy_total();
  return n;
}

double CampaignResults::discrepancy_percent() const {
  const auto runs = static_cast<double>(runs_total());
  if (runs == 0) return 0.0;
  // Paper Table IV reports discrepancies as % of total runs.
  return 100.0 * static_cast<double>(discrepancies_total()) / runs;
}

const LevelStats& CampaignResults::stats_for(opt::OptLevel level) const {
  for (std::size_t i = 0; i < levels.size(); ++i)
    if (levels[i] == level) return per_level[i];
  throw std::out_of_range("CampaignResults: level not part of campaign");
}

namespace {

struct ProgramOutcome {
  std::vector<LevelStats> per_level;
  std::vector<DiscrepancyRecord> records;
};

}  // namespace

CampaignResults run_campaign(const CampaignConfig& config) {
  const gen::Generator generator(config.gen, config.seed);
  const gen::InputGenerator input_gen(config.seed);

  CampaignResults results;
  results.seed = config.seed;
  results.precision = config.gen.precision;
  results.hipify_converted = config.hipify_converted;
  results.num_programs = config.num_programs;
  results.inputs_per_program = config.inputs_per_program;
  results.levels = config.levels;
  results.per_level.assign(config.levels.size(), LevelStats{});

  const auto n_programs = static_cast<std::size_t>(config.num_programs);
  std::vector<ProgramOutcome> outcomes(n_programs);

  support::parallel_for(
      n_programs,
      [&](std::size_t pi) {
        ProgramOutcome& out = outcomes[pi];
        out.per_level.assign(config.levels.size(), LevelStats{});
        const ir::Program program = generator.generate(pi);

        // Materialize this program's inputs once.
        std::vector<vgpu::KernelArgs> inputs;
        inputs.reserve(static_cast<std::size_t>(config.inputs_per_program));
        for (int ii = 0; ii < config.inputs_per_program; ++ii)
          inputs.push_back(input_gen.generate(program, pi, ii));

        for (std::size_t li = 0; li < config.levels.size(); ++li) {
          const CompiledPair pair =
              compile_pair(program, config.levels[li], config.hipify_converted);
          LevelStats& stats = out.per_level[li];
          // Batched sweep: all of this program's inputs through one VM
          // invocation loop per platform (arg checks amortized).
          const std::vector<ComparisonResult> cmps = compare_batch(pair, inputs);
          for (int ii = 0; ii < config.inputs_per_program; ++ii) {
            const ComparisonResult& cmp = cmps[static_cast<std::size_t>(ii)];
            ++stats.comparisons;
            if (!cmp.discrepant()) continue;
            ++stats.class_counts[class_index(cmp.cls)];
            ++stats.adjacency[static_cast<int>(cmp.nvcc.outcome.cls)]
                             [static_cast<int>(cmp.hipcc.outcome.cls)];
            DiscrepancyRecord rec;
            rec.program_index = pi;
            rec.input_index = ii;
            rec.level = config.levels[li];
            rec.cls = cmp.cls;
            rec.nvcc_outcome = cmp.nvcc.outcome;
            rec.hipcc_outcome = cmp.hipcc.outcome;
            rec.nvcc_printed = cmp.nvcc.printed();
            rec.hipcc_printed = cmp.hipcc.printed();
            out.records.push_back(std::move(rec));
          }
        }
      },
      config.threads, /*chunk=*/4);

  // Deterministic merge in program order.  Statistics are never capped;
  // record retention stops outright once max_records is reached instead of
  // re-entering the record loop for every remaining program.
  for (auto& out : outcomes)
    for (std::size_t li = 0; li < config.levels.size(); ++li)
      results.per_level[li].merge(out.per_level[li]);
  for (auto& out : outcomes) {
    if (results.records.size() >= config.max_records) break;
    const std::size_t take = std::min(out.records.size(),
                                      config.max_records - results.records.size());
    results.records.insert(results.records.end(),
                           std::make_move_iterator(out.records.begin()),
                           std::make_move_iterator(out.records.begin() +
                                                   static_cast<std::ptrdiff_t>(take)));
  }
  return results;
}

}  // namespace gpudiff::diff
