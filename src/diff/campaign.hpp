#pragma once
// Campaign driver: the large-scale testing loop of paper §IV.
//
// A campaign generates N programs x M inputs, compiles each program for
// every selected platform (opt/platform.hpp; the default is the paper's
// nvcc/hipcc pair) at every optimization level, runs every (input, level)
// pair and accumulates per-(platform, baseline) discrepancy statistics.
// Execution parallelizes over programs (deterministic regardless of thread
// count: per-program results are accumulated in index order).
//
// The loop is exposed at two granularities:
//   * run_campaign      — the whole [0, num_programs) range in one call;
//   * run_campaign_range — any contiguous program-index subrange, the
//     building block the campaign orchestration layer (src/campaign/) uses
//     for sharding and checkpointed incremental execution.  Per-program
//     seeds derive from (seed, program_index), so the union of subrange
//     results is byte-identical to the single-range run.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "diff/runner.hpp"
#include "gen/config.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"

namespace gpudiff::diff {

struct CampaignConfig {
  gen::GenConfig gen;
  std::uint64_t seed = 42;
  int num_programs = 354;       ///< paper scale: 3,540 (FP64), 2,840 (FP32)
  int inputs_per_program = 7;   ///< paper: 24,750 runs / 3,540 programs
  bool hipify_converted = false;  ///< Tables VII/VIII mode
  /// The platform selection, element 0 the comparison baseline.  Part of
  /// the configuration fingerprint: a lease/shard result is a pure
  /// function of (fingerprint, range), and the fingerprint covers the full
  /// spec of every selected platform.
  std::vector<opt::PlatformSpec> platforms = opt::default_platforms();
  std::vector<opt::OptLevel> levels{opt::kAllOptLevels,
                                    opt::kAllOptLevels + 5};
  unsigned threads = 0;         ///< 0 = hardware concurrency
  /// Cap on retained per-discrepancy records (statistics are never capped).
  /// Applied deterministically in canonical record order — lowest
  /// (program_index, input_index, level) first — so a capped run, a merge
  /// of capped shards and a resumed shard all retain the same records.
  std::size_t max_records = 50000;
};

/// One retained discrepancy (enough to regenerate and re-analyze the
/// test).  Per-platform payloads are aligned with the campaign's platform
/// list; pair_cls[p] classifies platform p against the baseline (entry 0
/// is always None).
struct DiscrepancyRecord {
  std::uint64_t program_index = 0;
  int input_index = 0;
  opt::OptLevel level{};
  DiscrepancyClass cls{};  ///< representative: first differing platform
  std::vector<fp::Outcome> outcomes;       ///< per platform
  std::vector<std::string> printed;        ///< per platform, %.17g
  std::vector<DiscrepancyClass> pair_cls;  ///< per platform vs baseline
};

/// Discrepancy statistics of one non-baseline platform against the
/// baseline at one optimization level.
struct PairStats {
  std::array<std::uint64_t, kDiscrepancyClassCount> class_counts{};
  /// Directed adjacency: [baseline outcome][platform outcome] over
  /// discrepant runs.
  std::array<std::array<std::uint64_t, 4>, 4> adjacency{};

  std::uint64_t discrepancy_total() const {
    std::uint64_t n = 0;
    for (auto c : class_counts) n += c;
    return n;
  }
  void merge(const PairStats& other);

  friend bool operator==(const PairStats&, const PairStats&) = default;
};

/// Per-optimization-level statistics: the shared comparison count plus one
/// PairStats per non-baseline platform (pairs[p] is platforms[p + 1] vs
/// the baseline).
struct LevelStats {
  std::uint64_t comparisons = 0;  ///< (program, input) sweeps at this level
  std::vector<PairStats> pairs;

  /// Zeroed stats shaped for an `n_platforms`-way campaign.
  static LevelStats zero(std::size_t n_platforms);

  std::uint64_t discrepancy_total() const {
    std::uint64_t n = 0;
    for (const auto& p : pairs) n += p.discrepancy_total();
    return n;
  }
  /// Merging into a default-constructed LevelStats adopts the other
  /// side's pair count; otherwise the counts must match.
  void merge(const LevelStats& other);

  friend bool operator==(const LevelStats&, const LevelStats&) = default;
};

struct CampaignResults {
  std::uint64_t seed = 0;
  ir::Precision precision = ir::Precision::FP64;
  bool hipify_converted = false;
  int num_programs = 0;
  int inputs_per_program = 0;
  /// Platform names in campaign order, [0] the baseline.
  std::vector<std::string> platforms{"nvcc", "hipcc"};
  std::vector<opt::OptLevel> levels;
  std::vector<LevelStats> per_level;  ///< aligned with `levels`
  std::vector<DiscrepancyRecord> records;  ///< canonical order, capped

  std::uint64_t comparisons_total() const;
  std::uint64_t discrepancies_total() const;
  /// Paper Table IV accounting: one "run" per (program, input, level,
  /// platform) — platforms.size() runs per comparison.
  std::uint64_t runs_total() const {
    return comparisons_total() * platforms.size();
  }
  double discrepancy_percent() const;
  const LevelStats& stats_for(opt::OptLevel level) const;
};

/// Stats and records for one contiguous program-index range.  Records are
/// in canonical order — (program_index, input_index, level position) — and
/// capped at `max_records` within the range; since any record dropped by
/// the per-range cap has at least max_records predecessors inside its own
/// range, concatenating capped ranges in program order and re-capping
/// yields exactly the records an uncapped-concatenation-then-cap would.
struct RangeOutcome {
  std::vector<LevelStats> per_level;  ///< aligned with config.levels
  std::vector<DiscrepancyRecord> records;
};

/// Move records from `src` onto the end of `dst` until `dst` holds `cap`
/// of them.  Both sides must already be in canonical order with src's
/// keys all above dst's; every capped-prefix composition in the campaign
/// and sharding layers goes through this one helper so the cap invariant
/// cannot drift between them.
void append_capped_records(std::vector<DiscrepancyRecord>& dst,
                           std::vector<DiscrepancyRecord>&& src,
                           std::size_t cap);

/// Optional instrumentation for run_campaign_range.  Hooks observe
/// execution; they never affect results.
struct RangeHooks {
  /// Called after each program in the range finishes, with the number of
  /// programs completed so far and the range size.  May be invoked
  /// concurrently from worker threads, and completion order is not program
  /// order — treat `completed` as a progress counter, not a cursor.  The
  /// campaign scheduler uses this to heartbeat its lease claim mid-lease.
  std::function<void(std::uint64_t completed, std::uint64_t total)> on_program;
};

/// Run program indices [begin, end) of the campaign `config` describes.
/// Deterministic for fixed (config, begin, end) regardless of thread count.
RangeOutcome run_campaign_range(const CampaignConfig& config,
                                std::uint64_t begin, std::uint64_t end);
RangeOutcome run_campaign_range(const CampaignConfig& config,
                                std::uint64_t begin, std::uint64_t end,
                                const RangeHooks& hooks);

CampaignResults run_campaign(const CampaignConfig& config);

}  // namespace gpudiff::diff
