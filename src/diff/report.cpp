#include "diff/report.hpp"

#include <cctype>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace gpudiff::diff {

using support::Align;
using support::Table;
using support::with_commas;

namespace {

std::string pct(double v) { return support::format("%.2f%%", v); }

std::string campaign_label(const CampaignResults& r) {
  std::string label = r.precision == ir::Precision::FP32 ? "FP32" : "FP64";
  if (r.hipify_converted) label += " with HIPIFY";
  return label;
}

/// Report spelling of a platform name: "nvcc" -> "NVCC", "hipcc-ftz" ->
/// "HIPCC-FTZ".  For the default pair this reproduces the pre-registry
/// table text byte for byte.
std::string platform_label(const std::string& name) {
  std::string out = name;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::string render_summary(const CampaignResults& fp64,
                           const CampaignResults& hipify_fp64,
                           const CampaignResults& fp32) {
  const CampaignResults* cols[] = {&fp64, &hipify_fp64, &fp32};
  Table t("TABLE IV — SUMMARY OF EXPERIMENTAL RESULTS");
  t.set_header({"Metric", campaign_label(fp64), campaign_label(hipify_fp64),
                campaign_label(fp32)},
               {Align::Left, Align::Right, Align::Right, Align::Right});

  const auto row = [&](const std::string& name, auto fn) {
    std::vector<std::string> cells{name};
    for (const auto* c : cols) cells.push_back(fn(*c));
    t.add_row(std::move(cells));
  };
  row("Total Programs", [](const CampaignResults& c) {
    return with_commas(c.num_programs);
  });
  row("Total Runs per Option per Compiler", [](const CampaignResults& c) {
    return with_commas(static_cast<long long>(c.num_programs) *
                       c.inputs_per_program);
  });
  row("Total Runs per Option", [](const CampaignResults& c) {
    return with_commas(static_cast<long long>(c.platforms.size()) *
                       c.num_programs * c.inputs_per_program);
  });
  row("Total Runs", [](const CampaignResults& c) {
    return with_commas(static_cast<long long>(c.runs_total()));
  });
  // One row per platform, labeled by registry name (the first campaign's
  // platform list names the rows; every column ran the same selection).
  for (const auto& name : fp64.platforms) {
    row("Runs on " + platform_label(name), [](const CampaignResults& c) {
      return with_commas(static_cast<long long>(c.comparisons_total()));
    });
  }
  row("Total Discrepancies", [](const CampaignResults& c) {
    return with_commas(static_cast<long long>(c.discrepancies_total()));
  });
  row("Total Discrepancies (% of Total Runs)", [](const CampaignResults& c) {
    return pct(c.discrepancy_percent());
  });
  return t.render();
}

std::string render_per_level(const CampaignResults& results,
                             const std::string& title) {
  // One table per (baseline, platform) pair; a two-platform campaign has
  // exactly one pair and renders under the caller's bare title (the
  // pre-registry layout).  Fewer than two platforms means no pairs and no
  // tables.
  const std::size_t n_pairs =
      results.platforms.size() < 2 ? 0 : results.platforms.size() - 1;
  std::string out;
  for (std::size_t pi = 0; pi < n_pairs; ++pi) {
    std::string pair_title = title;
    if (n_pairs > 1)
      pair_title += " — " + platform_label(results.platforms[0]) + " vs " +
                    platform_label(results.platforms[pi + 1]);
    Table t(pair_title);
    t.set_header({"Opt Flags", "Disc. Count", "NaN, Inf", "NaN, Zero", "NaN, Num",
                  "Inf, Zero", "Inf, Num", "Num, Zero", "Num, Num"},
                 {Align::Left});
    std::array<std::uint64_t, kDiscrepancyClassCount> totals{};
    std::uint64_t grand = 0;
    for (std::size_t li = 0; li < results.levels.size(); ++li) {
      const PairStats& s = results.per_level[li].pairs[pi];
      std::vector<std::string> cells;
      cells.push_back(opt::to_string(results.levels[li]));
      cells.push_back(with_commas(static_cast<long long>(s.discrepancy_total())));
      for (int ci = 0; ci < kDiscrepancyClassCount; ++ci) {
        cells.push_back(with_commas(static_cast<long long>(s.class_counts[ci])));
        totals[ci] += s.class_counts[ci];
      }
      grand += s.discrepancy_total();
      t.add_row(std::move(cells));
    }
    t.add_rule();
    std::vector<std::string> total_row{"Total",
                                       with_commas(static_cast<long long>(grand))};
    for (int ci = 0; ci < kDiscrepancyClassCount; ++ci)
      total_row.push_back(with_commas(static_cast<long long>(totals[ci])));
    t.add_row(std::move(total_row));
    out += t.render();
  }
  return out;
}

std::string render_adjacency(const CampaignResults& results,
                             const std::string& title) {
  static const char* kClassNames[4] = {"(±) NaN", "(±) Inf", "(±) Zero", "Num"};
  std::string out = title + "\n";
  if (results.platforms.size() < 2) return out;
  const std::string base = platform_label(results.platforms[0]);
  const std::size_t n_pairs = results.platforms.size() - 1;
  for (std::size_t li = 0; li < results.levels.size(); ++li) {
    for (std::size_t pi = 0; pi < n_pairs; ++pi) {
      const PairStats& s = results.per_level[li].pairs[pi];
      const std::string other = platform_label(results.platforms[pi + 1]);
      Table t("Opt: " + opt::to_string(results.levels[li]) + "   (cell \"a, b\": a = " +
              base + "=row & " + other + "=col, b = " + base + "=col & " +
              other + "=row)");
      t.set_header({base + " \\ " + other, "(±) NaN", "(±) Inf", "(±) Zero", "Num"},
                   {Align::Left});
      for (int r = 0; r < 4; ++r) {
        std::vector<std::string> cells{kClassNames[r]};
        for (int c = 0; c < 4; ++c) {
          if (c < r) {
            cells.push_back("—");
          } else if (c == r) {
            // Same-class cell: only Num/Num holds discrepancies.
            const auto n = s.adjacency[r][c];
            cells.push_back(support::format("%llu, %llu",
                                            static_cast<unsigned long long>(n),
                                            static_cast<unsigned long long>(n)));
          } else {
            cells.push_back(support::format(
                "%llu, %llu", static_cast<unsigned long long>(s.adjacency[r][c]),
                static_cast<unsigned long long>(s.adjacency[c][r])));
          }
        }
        t.add_row(std::move(cells));
      }
      out += t.render();
    }
  }
  return out;
}

std::string render_records(const CampaignResults& results, std::size_t limit) {
  Table t("Discrepancy drill-down (first " + std::to_string(limit) + ")");
  std::vector<std::string> header{"Program", "Input", "Opt", "Class"};
  std::vector<Align> aligns{Align::Right, Align::Right, Align::Left, Align::Left};
  for (const auto& name : results.platforms) {
    header.push_back(platform_label(name) + " output");
    aligns.push_back(Align::Right);
  }
  t.set_header(std::move(header), std::move(aligns));
  std::size_t shown = 0;
  for (const auto& rec : results.records) {
    if (shown++ >= limit) break;
    std::vector<std::string> cells{std::to_string(rec.program_index),
                                   std::to_string(rec.input_index),
                                   opt::to_string(rec.level), to_string(rec.cls)};
    for (const auto& printed : rec.printed) cells.push_back(printed);
    t.add_row(std::move(cells));
  }
  return t.render();
}

std::string render_store_summary(const support::Json& summary_doc) {
  Table t("Results store summary");
  t.set_header({"Commit", "Populations", "Comparisons", "Discrepancies",
                "Benchmarks"},
               {Align::Left, Align::Right, Align::Right, Align::Right,
                Align::Right});
  for (const auto& row : summary_doc.at("commits").as_array()) {
    t.add_row({row.at("commit").as_string(),
               with_commas(row.at("populations").as_int()),
               with_commas(row.at("comparisons").as_int()),
               with_commas(row.at("discrepancies").as_int()),
               with_commas(row.at("benchmarks").as_int())});
  }
  return t.render();
}

std::string render_store_diff(const support::Json& diff_doc) {
  const std::string from = diff_doc.at("from").as_string();
  const std::string to = diff_doc.at("to").as_string();
  std::string out;

  const auto& pops = diff_doc.at("populations").as_object();
  if (!pops.empty()) {
    Table t("Discrepancy populations: " + from + " -> " + to);
    t.set_header({"Fingerprint", "Status", "From", "To", "Delta"},
                 {Align::Left, Align::Left, Align::Right, Align::Right,
                  Align::Right});
    for (const auto& [fp, entry] : pops) {
      const std::string status = entry.at("status").as_string();
      if (status != "matched") {
        t.add_row({fp, status, "-", "-",
                   with_commas(entry.at("discrepancies").as_int())});
        continue;
      }
      const auto& d = entry.at("discrepancies");
      t.add_row({fp, entry.at("regressed").as_bool() ? "REGRESSED" : "ok",
                 with_commas(d.at("from").as_int()),
                 with_commas(d.at("to").as_int()),
                 with_commas(d.at("delta").as_int())});
    }
    out += t.render();
  }

  const auto& perf = diff_doc.at("perf").as_object();
  if (!perf.empty()) {
    Table t(support::format("Perf: %s -> %s (threshold +%.1f%%)", from.c_str(),
                            to.c_str(),
                            diff_doc.at("max_perf_regress_pct").as_double()));
    t.set_header({"Benchmark", "Status", "From (ns)", "To (ns)", "Ratio"},
                 {Align::Left, Align::Left, Align::Right, Align::Right,
                  Align::Right});
    for (const auto& [name, entry] : perf) {
      const std::string status = entry.at("status").as_string();
      if (status != "matched") {
        t.add_row({name, status, "-", "-", "-"});
        continue;
      }
      t.add_row({name, entry.at("regressed").as_bool() ? "REGRESSED" : "ok",
                 support::format("%.1f", entry.at("from_ns").as_double()),
                 support::format("%.1f", entry.at("to_ns").as_double()),
                 support::format("%.3f", entry.at("ratio").as_double())});
    }
    out += t.render();
  }

  const auto& reg = diff_doc.at("regressions");
  const auto n_pop = reg.at("population").as_array().size();
  const auto n_perf = reg.at("perf").as_array().size();
  if (diff_doc.at("clean").as_bool()) {
    out += "no regressions\n";
  } else {
    out += support::format("REGRESSIONS: %zu population, %zu perf\n", n_pop,
                           n_perf);
  }
  return out;
}

}  // namespace gpudiff::diff
