// gpudiff-reduce: shrink discrepant campaign records to 1-minimal
// reproducers (the triage half of ROADMAP's "Adaptive campaigns +
// discrepancy reducer").
//
//   # one record, configuration spelled out on the command line
//   gpudiff-reduce --record 41:2:O3 --seed 1234 --programs 90 --inputs 5
//
//   # one record, configuration taken from a version-2 campaign report
//   gpudiff-reduce --record 41:2:O3 --report merged.json
//
//   # batch: every exemplar key of a results-store population, resolved
//   # against the merged report it was ingested from
//   gpudiff-reduce --from-report merged.json --store db --commit head
//
// Each reduction writes one digest-sealed bundle (reduce/bundle.hpp) into
// --out; --json additionally streams the bundle documents to stdout.  The
// whole pipeline is deterministic — same record, same bytes, regardless of
// SIMD engine or VM backend — which the reduce-drill CI job enforces with
// a byte-for-byte cmp of two independent runs.

#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "opt/platform.hpp"
#include "reduce/bundle.hpp"
#include "reduce/reduce.hpp"
#include "store/store.hpp"
#include "support/cli.hpp"
#include "support/cpu.hpp"
#include "support/json.hpp"
#include "vgpu/bytecode.hpp"

namespace {

using namespace gpudiff;

/// Campaign configuration of a report document.  Version-2 reports embed
/// the full fingerprint and reconstruct exactly; version-1 reports carry
/// only header fields, so the generator grammar and record cap fall back
/// to defaults (correct unless the producing campaign customized them —
/// warned about, and any drift is caught by the not-discrepant check of
/// the first reduction).
diff::CampaignConfig config_of_report(const support::Json& report) {
  campaign::check_format(report, "gpudiff-campaign-results",
                         "campaign report", /*max_version=*/2);
  if (report.contains("config"))
    return campaign::config_from_json(report.at("config"));

  std::fprintf(stderr,
               "gpudiff-reduce: version-1 report carries no config "
               "fingerprint; assuming the default generator grammar and "
               "record cap (re-merge with --report-v2 to pin them)\n");
  diff::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(report.at("seed").as_int());
  if (!ir::parse_precision(report.at("precision").as_string(),
                           &config.gen.precision))
    throw std::runtime_error("bad precision in report");
  config.hipify_converted = report.at("hipify_converted").as_bool();
  config.num_programs = static_cast<int>(report.at("num_programs").as_int());
  config.inputs_per_program =
      static_cast<int>(report.at("inputs_per_program").as_int());
  config.levels.clear();
  for (const auto& l : report.at("levels").as_array()) {
    opt::OptLevel level;
    if (!opt::parse_opt_level(l.as_string(), &level))
      throw std::runtime_error("bad opt level in report");
    config.levels.push_back(level);
  }
  config.platforms.clear();
  std::vector<std::string> names;
  if (report.contains("platforms")) {
    for (const auto& p : report.at("platforms").as_array())
      names.push_back(p.as_string());
  } else {
    names = {"nvcc", "hipcc"};
  }
  for (const auto& name : names) {
    const opt::PlatformSpec* spec = opt::find_platform(name);
    if (!spec)
      throw std::runtime_error("report names unknown platform \"" + name +
                               "\"");
    config.platforms.push_back(*spec);
  }
  return config;
}

void print_reduction(const reduce::Reduction& r) {
  std::printf("record %s: %llu -> %llu statements, %llu -> %llu nodes "
              "(%llu checks), %s\n",
              r.record.key().c_str(),
              static_cast<unsigned long long>(r.original_stmts),
              static_cast<unsigned long long>(r.reduced_stmts),
              static_cast<unsigned long long>(r.original_nodes),
              static_cast<unsigned long long>(r.reduced_nodes),
              static_cast<unsigned long long>(r.checks),
              reduce::to_string(r.sensitivity.label));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "gpudiff-reduce",
      "Delta-debugging reducer: discrepant records to 1-minimal "
      "reproducers");
  cli.add_string("record", 'R',
                 "reduce one record, named by its canonical key "
                 "program:input:level (e.g. 41:2:O3)",
                 "");
  cli.add_string("report", 'r',
                 "campaign report supplying the configuration (--record "
                 "mode) and the record payloads (--from-report mode)",
                 "");
  cli.add_string("from-report", 'b',
                 "batch mode: reduce every exemplar key of a results-store "
                 "population, resolved against this merged report",
                 "");
  cli.add_string("store", 'D', "results-store directory (--from-report)", "");
  cli.add_string("commit", 'c', "store commit label (--from-report)", "");
  cli.add_string("fingerprint", 'f',
                 "store population fingerprint (--from-report; default: the "
                 "commit's only population)",
                 "");
  cli.add_string("out", 'o', "directory reproducer bundles are written to",
                 "reduced");
  cli.add_flag("json", "stream the bundle document(s) to stdout");
  // Configuration flags for --record without --report (mirroring
  // gpudiff-campaign's campaign definition).
  cli.add_int("programs", 'p', "number of programs in the campaign", 354);
  cli.add_int("inputs", 'i', "inputs per program", 7);
  cli.add_int("seed", 'S', "campaign seed", 42);
  cli.add_string("precision", 'P', "fp64 or fp32", "fp64");
  cli.add_string("platforms", 'F',
                 "comma-separated platform selection; first = baseline",
                 "nvcc,hipcc");
  cli.add_flag("hipify", "the campaign tested the HIPIFY-converted binding");
  cli.add_int("max-records", 'm', "campaign record cap", 50000);
  if (!cli.parse(argc, argv)) return 1;

  try {
    const std::string record_key = cli.get_string("record");
    const std::string report_path = cli.get_string("report");
    const std::string out_dir = cli.get_string("out");
    const bool json = cli.get_flag("json");

    std::fprintf(stderr, "gpudiff-reduce: vm engine %s\n",
                 vgpu::to_string(vgpu::simd_engine()));

    const std::string batch_report = cli.get_string("from-report");
    if (!batch_report.empty()) {
      const std::string store_dir = cli.get_string("store");
      const std::string commit = cli.get_string("commit");
      if (store_dir.empty() || commit.empty()) {
        std::fprintf(stderr,
                     "gpudiff-reduce: --from-report needs --store and "
                     "--commit\n");
        return 1;
      }
      const support::Json report =
          support::Json::parse(support::read_file(batch_report));
      const diff::CampaignConfig config = config_of_report(report);
      const store::StoreIndex index = store::load_store(store_dir);
      const support::Json& pop =
          store::population(index, commit, cli.get_string("fingerprint"));
      const std::string pop_name =
          store_dir + "/pop/" + commit + "/" +
          pop.at("fingerprint").as_string() + ".json";
      const std::vector<diff::DiscrepancyRecord> records =
          store::resolve_exemplars(pop, report, pop_name, batch_report);
      support::Json bundles = support::Json::array();
      const std::vector<reduce::RecordRef> reduced = reduce::reduce_records(
          config, records, out_dir,
          [&](const reduce::Reduction& r) {
            print_reduction(r);
            if (json) bundles.push_back(reduce::bundle_to_json(r, config));
          });
      std::printf("%zu reproducer bundle(s) written to %s\n", reduced.size(),
                  out_dir.c_str());
      if (json) std::printf("%s\n", bundles.dump(1).c_str());
      return 0;
    }

    if (record_key.empty()) {
      std::fprintf(stderr,
                   "gpudiff-reduce: pass --record program:input:level or "
                   "--from-report (see --help)\n");
      return 1;
    }
    reduce::RecordRef ref;
    if (!reduce::parse_record_key(record_key, &ref)) {
      std::fprintf(stderr,
                   "gpudiff-reduce: bad --record '%s' (want "
                   "program:input:level, e.g. 41:2:O3)\n",
                   record_key.c_str());
      return 1;
    }

    diff::CampaignConfig config;
    if (!report_path.empty()) {
      config = config_of_report(
          support::Json::parse(support::read_file(report_path)));
    } else {
      config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      config.num_programs = static_cast<int>(cli.get_int("programs"));
      config.inputs_per_program = static_cast<int>(cli.get_int("inputs"));
      config.hipify_converted = cli.get_flag("hipify");
      config.max_records = static_cast<std::size_t>(cli.get_int("max-records"));
      try {
        config.platforms =
            opt::parse_platform_list(cli.get_string("platforms"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "gpudiff-reduce: --%s\n", e.what());
        return 1;
      }
      const std::string precision = cli.get_string("precision");
      if (precision == "fp32" || precision == "FP32") {
        config.gen.precision = ir::Precision::FP32;
      } else if (precision != "fp64" && precision != "FP64") {
        std::fprintf(stderr, "gpudiff-reduce: bad --precision '%s'\n",
                     precision.c_str());
        return 1;
      }
    }

    const reduce::Reduction reduction = reduce::reduce_record(config, ref);
    print_reduction(reduction);
    const support::Json bundle = reduce::bundle_to_json(reduction, config);
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      const std::string path =
          out_dir + "/" + reduce::bundle_filename(ref);
      support::write_file_atomic(path, bundle.dump(1) + "\n");
      std::printf("bundle written to %s\n", path.c_str());
    }
    if (json)
      std::printf("%s\n", bundle.dump(1).c_str());
    else
      std::printf("%s", reduction.program.dump().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudiff-reduce: %s\n", e.what());
    return 2;
  }
}
