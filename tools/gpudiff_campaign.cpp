// gpudiff-campaign: sharded, checkpointed, resumable campaign runner.
//
// One binary covers the whole paper-scale workflow (ISSUE: campaign
// orchestration).  Each shard of a campaign can run on a different machine
// under any job launcher; checkpoints make a killed shard resumable; the
// merge stage folds completed shards into the exact results an unsharded
// run would produce and feeds the Table IV-X reporters.
//
//   # one machine, one process
//   gpudiff-campaign --programs 354 --report results.json
//
//   # eight machines (or eight slots of a job array), fixed carve
//   gpudiff-campaign --shard $I/8 --checkpoint-dir ckpt --programs 3540
//   # ... after a crash on shard 3:
//   gpudiff-campaign --shard 3/8 --checkpoint-dir ckpt --programs 3540 --resume
//   # when all shards are complete:
//   gpudiff-campaign --merge --checkpoint-dir ckpt --report results.json --tables
//
//   # self-balancing fleet: any number of workers, heterogeneous machines,
//   # no carve — each claims fine-grained leases from the shared dir, and a
//   # dead worker's lease is stolen once its heartbeat goes stale
//   for i in 0 1 2; do
//     gpudiff-campaign --worker lease-dir --programs 3540 &
//   done; wait
//   gpudiff-campaign --merge --checkpoint-dir lease-dir --report results.json
//
//   # the same fleet without a shared filesystem: a TCP coordinator owns
//   # the lease board (durable state dir, restartable after SIGKILL), and
//   # workers coordinate over host:port with retry/backoff — a worker that
//   # loses the coordinator finishes its lease, journals the result
//   # locally, and republishes when the connection returns
//   gpudiff-coordinator --dir coord-state --port 7070 &
//   for host in a b c; do
//     ssh $host gpudiff-campaign --coordinator head:7070 --programs 3540 &
//   done; wait
//   gpudiff-campaign --merge --checkpoint-dir coord-state --report results.json
//
// SIGINT/SIGTERM stop the run gracefully: shard mode checkpoints at the
// next block boundary, worker mode finishes and publishes the in-flight
// lease and releases every claim it holds — interrupted processes never
// strand claimed work, and never lose more than one block/lease of it.

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "campaign/merge.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/shard.hpp"
#include "diff/report.hpp"
#include "opt/platform.hpp"
#include "reduce/bundle.hpp"
#include "support/cli.hpp"
#include "support/cpu.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "vgpu/bytecode.hpp"

namespace {

using namespace gpudiff;

std::atomic<bool> g_stop{false};

/// Shared by the option definition and the worker-mode conflict check (a
/// value equal to the default is indistinguishable from "not passed", so
/// an explicit --checkpoint-every 64 slips through — the harmless edge of
/// a presence-blind parser).
constexpr std::int64_t kDefaultCheckpointEvery = 64;

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

// Machine-readable registry dump: the same field spelling as the
// config fingerprint (campaign::config_to_json), plus the blurb — so
// store keys and external tooling agree with the fingerprint on what
// constitutes platform-set identity.
void list_platforms_json() {
  support::Json arr = support::Json::array();
  for (const opt::PlatformSpec& spec : opt::platform_registry()) {
    support::Json p = support::Json::object();
    p["name"] = spec.name;
    p["toolchain"] = opt::to_string(spec.toolchain);
    p["fast_math"] = spec.fast_math;
    p["ftz32"] = spec.force_ftz32;
    p["daz32"] = spec.force_daz32;
    p["fma"] = opt::to_string(spec.fma);
    p["div32"] = opt::to_string(spec.div32);
    p["mathlib"] = spec.mathlib;
    p["blurb"] = spec.blurb;
    arr.push_back(std::move(p));
  }
  std::printf("%s\n", arr.dump(1).c_str());
}

void list_platforms() {
  support::Table t("Platform registry (--platforms a,b,c; first = baseline)");
  t.set_header({"Name", "Toolchain", "Fast math", "FTZ32", "DAZ32", "FMA",
                "Div32", "Mathlib", "Description"},
               {support::Align::Left});
  for (const opt::PlatformSpec& spec : opt::platform_registry()) {
    t.add_row({spec.name, opt::to_string(spec.toolchain),
               spec.fast_math ? "yes" : "no", spec.force_ftz32 ? "on" : "-",
               spec.force_daz32 ? "on" : "-", opt::to_string(spec.fma),
               opt::to_string(spec.div32),
               spec.mathlib.empty() ? "(toolchain default)" : spec.mathlib,
               spec.blurb});
  }
  std::fputs(t.render().c_str(), stdout);
}

void print_summary(const diff::CampaignResults& results) {
  std::printf("programs            %d\n", results.num_programs);
  std::printf("inputs per program  %d\n", results.inputs_per_program);
  std::printf("comparisons         %llu\n",
              static_cast<unsigned long long>(results.comparisons_total()));
  std::printf("runs                %llu\n",
              static_cast<unsigned long long>(results.runs_total()));
  std::printf("discrepancies       %llu (%.4f%% of runs)\n",
              static_cast<unsigned long long>(results.discrepancies_total()),
              results.discrepancy_percent());
  std::printf("records retained    %zu\n", results.records.size());
}

// `temp_suffix` must be process-unique when several workers may finish a
// campaign simultaneously and write the same report path: their contents
// are byte-identical (deterministic results), but a shared temp file
// could be torn mid-race.
void emit_results(const diff::CampaignResults& results,
                  const std::string& report_path, bool tables,
                  const support::Json* config_echo = nullptr,
                  const std::string& temp_suffix = ".tmp") {
  print_summary(results);
  if (tables) {
    std::fputs(diff::render_per_level(results, "Discrepancies per level").c_str(),
               stdout);
    std::fputs(diff::render_adjacency(results, "Outcome adjacency").c_str(),
               stdout);
  }
  if (!report_path.empty()) {
    support::write_file_atomic(
        report_path,
        campaign::results_to_json(results, config_echo).dump(1) + "\n",
        temp_suffix);
    std::printf("report written to %s\n", report_path.c_str());
  }
}

// The --reduce-exemplars hook: shrink the exemplar records of finished
// results to 1-minimal reproducer bundles (same selection rule as a store
// population, so the bundles line up with what gpudiff-serve reports).
void reduce_exemplars_of(const diff::CampaignConfig& config,
                         const diff::CampaignResults& results,
                         const std::string& out_dir, int max_exemplars) {
  const std::vector<reduce::RecordRef> reduced = reduce::reduce_exemplars(
      config, results.records, out_dir, max_exemplars,
      [](const reduce::Reduction& r) {
        std::printf("[reduce] %s: %llu -> %llu statements, %llu -> %llu "
                    "nodes (%llu checks), %s\n",
                    r.record.key().c_str(),
                    static_cast<unsigned long long>(r.original_stmts),
                    static_cast<unsigned long long>(r.reduced_stmts),
                    static_cast<unsigned long long>(r.original_nodes),
                    static_cast<unsigned long long>(r.reduced_nodes),
                    static_cast<unsigned long long>(r.checks),
                    reduce::to_string(r.sensitivity.label));
        std::fflush(stdout);
      });
  std::printf("%zu reproducer bundle(s) written to %s\n", reduced.size(),
              out_dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "gpudiff-campaign",
      "Sharded, checkpointed, resumable differential-testing campaigns");
  cli.add_int("programs", 'p', "number of random programs in the campaign", 354);
  cli.add_int("inputs", 'i', "inputs per program", 7);
  cli.add_int("seed", 'S', "campaign seed", 42);
  cli.add_string("precision", 'P', "fp64 or fp32", "fp64");
  cli.add_string("platforms", 'F',
                 "comma-separated platform selection; the first entry is the "
                 "comparison baseline (see --list-platforms)",
                 "nvcc,hipcc");
  cli.add_flag("list-platforms",
               "print the platform registry (name, toolchain, FP-env) and exit");
  cli.add_flag("json",
               "with --list-platforms: dump the registry as JSON (full "
               "PlatformSpec fields, fingerprint spelling)");
  cli.add_flag("hipify", "test the HIPIFY-converted binding (Tables VII/VIII)");
  cli.add_int("threads", 't', "worker threads (0 = hardware concurrency)", 0);
  cli.add_int("max-records", 'm', "cap on retained discrepancy records", 50000);
  cli.add_string("shard", 's', "this process's shard as i/N (e.g. 2/8)", "0/1");
  cli.add_string("checkpoint-dir", 'd',
                 "directory for checkpoints and shard results", "");
  cli.add_int("checkpoint-every", 'k', "programs per checkpoint block",
              kDefaultCheckpointEvery);
  cli.add_flag("resume", "continue from this shard's checkpoint if present");
  cli.add_flag("merge",
               "merge completed shards from --checkpoint-dir instead of running");
  cli.add_string("worker", 'w',
                 "run as a self-balancing work-stealing worker against this "
                 "shared lease directory",
                 "");
  cli.add_int("lease-size", 'L', "programs per lease in --worker mode", 16);
  cli.add_double("heartbeat", 'H', "seconds between lease heartbeats", 5.0);
  cli.add_double("stale-after", 'A',
                 "steal a lease whose heartbeat is older than this many "
                 "seconds",
                 60.0);
  cli.add_string("worker-id", 'W', "unique worker name (default: host-pid)",
                 "");
  cli.add_string("coordinator", 'C',
                 "run as a worker against a gpudiff-coordinator at host:port "
                 "instead of a shared lease directory",
                 "");
  cli.add_string("journal-dir", 'J',
                 "local journal for results the coordinator could not be told "
                 "about (--coordinator mode; default: per-worker temp dir)",
                 "");
  cli.add_flag("quarantine",
               "--merge only: set corrupt lease done files aside as "
               "*.quarantined instead of aborting on the first one");
  cli.add_flag("progress", "print progress after every checkpoint block");
  cli.add_string("report", 'r', "write canonical results JSON to this path", "");
  cli.add_flag("report-v2",
               "write the version-2 report superset (embedded config "
               "fingerprint + store key); default stays the byte-stable "
               "version-1 layout");
  cli.add_flag("tables", "print the per-level and adjacency tables");
  cli.add_flag("reduce-exemplars",
               "after the campaign (or merge) completes, delta-debug each "
               "exemplar record to a 1-minimal reproducer bundle (see "
               "gpudiff-reduce)");
  cli.add_string("reduce-out", 'O',
                 "bundle directory for --reduce-exemplars (default: "
                 "<checkpoint/lease dir>/reduced, or ./reduced)",
                 "");
  cli.add_int("max-exemplars", 'E',
              "exemplar records per (pair, class) for --reduce-exemplars "
              "(the store's population rule)",
              5);
  if (!cli.parse(argc, argv)) return 1;

  try {
    if (cli.get_flag("list-platforms")) {
      if (cli.get_flag("json"))
        list_platforms_json();
      else
        list_platforms();
      return 0;
    }
    const std::string checkpoint_dir = cli.get_string("checkpoint-dir");
    const std::string report_path = cli.get_string("report");
    const bool tables = cli.get_flag("tables");
    const bool report_v2 = cli.get_flag("report-v2");
    const bool reduce_exemplars = cli.get_flag("reduce-exemplars");
    const int max_exemplars = static_cast<int>(cli.get_int("max-exemplars"));

    if (cli.get_flag("merge")) {
      if (checkpoint_dir.empty()) {
        std::fprintf(stderr, "gpudiff-campaign: --merge needs --checkpoint-dir\n");
        return 1;
      }
      // A lease directory (worker mode) carries a manifest; a fixed-carve
      // shard directory holds bare shard-i-of-N checkpoints.
      const bool lease_dir = std::filesystem::exists(
          campaign::LeaseBoard::manifest_path(checkpoint_dir));
      campaign::LeaseMergeOptions mopts;
      mopts.quarantine = cli.get_flag("quarantine");
      // The merged results do not carry the fingerprint; the directory
      // that produced them does.
      support::Json echo;
      if (report_v2 || reduce_exemplars)
        echo = campaign::config_echo_of_dir(checkpoint_dir);
      const diff::CampaignResults results =
          lease_dir ? campaign::merge_lease_dir(checkpoint_dir, mopts)
                    : campaign::merge_checkpoint_dir(checkpoint_dir);
      emit_results(results, report_path, tables, report_v2 ? &echo : nullptr);
      if (reduce_exemplars) {
        // The reducer re-derives programs and inputs, so it needs the full
        // campaign definition — the directory's config fingerprint is the
        // only trustworthy source in merge mode.
        std::string out = cli.get_string("reduce-out");
        if (out.empty()) out = checkpoint_dir + "/reduced";
        reduce_exemplars_of(campaign::config_from_json(echo), results, out,
                            max_exemplars);
      }
      return 0;
    }

    campaign::ShardSpec shard;
    if (!campaign::parse_shard(cli.get_string("shard"), &shard)) {
      std::fprintf(stderr, "gpudiff-campaign: bad --shard '%s' (want i/N)\n",
                   cli.get_string("shard").c_str());
      return 1;
    }
    const std::string worker_dir = cli.get_string("worker");
    const std::string coordinator = cli.get_string("coordinator");
    if (!worker_dir.empty() && !coordinator.empty()) {
      std::fprintf(stderr,
                   "gpudiff-campaign: --worker (shared directory) and "
                   "--coordinator (TCP) are two transports for the same lease "
                   "protocol; pass one or the other\n");
      return 1;
    }
    if (shard.count > 1 && checkpoint_dir.empty() && worker_dir.empty() &&
        coordinator.empty()) {
      std::fprintf(stderr,
                   "gpudiff-campaign: a multi-shard run needs --checkpoint-dir "
                   "(the shard state is the merge input)\n");
      return 1;
    }

    diff::CampaignConfig config;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.num_programs = static_cast<int>(cli.get_int("programs"));
    config.inputs_per_program = static_cast<int>(cli.get_int("inputs"));
    config.hipify_converted = cli.get_flag("hipify");
    config.threads = static_cast<unsigned>(cli.get_int("threads"));
    config.max_records = static_cast<std::size_t>(cli.get_int("max-records"));
    // Strict platform parsing: an unknown or duplicate name aborts with a
    // message naming the entry and the registry (exit 1, not a stack
    // trace), before any directory or checkpoint is touched.
    try {
      config.platforms = opt::parse_platform_list(cli.get_string("platforms"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gpudiff-campaign: --%s (try --list-platforms)\n",
                   e.what());
      return 1;
    }
    const std::string precision = cli.get_string("precision");
    if (precision == "fp32" || precision == "FP32") {
      config.gen.precision = ir::Precision::FP32;
    } else if (precision != "fp64" && precision != "FP64") {
      std::fprintf(stderr, "gpudiff-campaign: bad --precision '%s'\n",
                   precision.c_str());
      return 1;
    }

    // Log the resolved lane engine once, to stderr only: results are
    // engine-invariant by construction, so the engine name must never leak
    // into reports or fingerprints — but a perf triage needs to know what
    // actually ran.  An invalid GPUDIFF_SIMD override throws here, before
    // any directory or checkpoint is touched.
    std::fprintf(stderr, "gpudiff-campaign: vm engine %s (%s)\n",
                 vgpu::to_string(vgpu::simd_engine()),
                 support::cpu_features().to_string().c_str());

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    if (!worker_dir.empty() || !coordinator.empty()) {
      if (cli.get_string("shard") != "0/1") {
        std::fprintf(stderr,
                     "gpudiff-campaign: --worker replaces the fixed --shard "
                     "carve; pass one or the other\n");
        return 1;
      }
      if (!checkpoint_dir.empty() || cli.get_flag("resume") ||
          cli.get_int("checkpoint-every") != kDefaultCheckpointEvery) {
        // Refuse rather than silently drop: worker mode has no mid-lease
        // checkpoint/resume (the lease directory itself is the durable
        // state, an interrupted lease simply re-executes, and durability
        // granularity is --lease-size).
        std::fprintf(stderr,
                     "gpudiff-campaign: --checkpoint-dir/--checkpoint-every/"
                     "--resume are shard-mode flags; --worker keeps all its "
                     "state in the lease directory (granularity: "
                     "--lease-size)\n");
        return 1;
      }
      campaign::WorkerOptions wopts;
      wopts.dir = worker_dir;
      wopts.coordinator = coordinator;
      wopts.journal_dir = cli.get_string("journal-dir");
      wopts.lease_size = static_cast<int>(cli.get_int("lease-size"));
      wopts.heartbeat_seconds = cli.get_double("heartbeat");
      wopts.stale_after_seconds = cli.get_double("stale-after");
      wopts.worker_id = cli.get_string("worker-id");
      wopts.stop_requested = [] {
        return g_stop.load(std::memory_order_relaxed);
      };
      if (cli.get_flag("progress")) {
        wopts.on_lease = [](const campaign::WorkerOptions::LeaseEvent& ev) {
          std::printf("[worker] lease %d done (programs [%llu, %llu))%s\n",
                      ev.lease, static_cast<unsigned long long>(ev.begin),
                      static_cast<unsigned long long>(ev.end),
                      ev.stolen ? " [reclaimed from stale claim]" : "");
          std::fflush(stdout);
        };
      }
      const campaign::WorkerOutcome outcome =
          campaign::run_worker(config, wopts);
      std::printf("worker finished: %d leases (%llu programs), %d reclaimed "
                  "from stale claims\n",
                  outcome.leases_completed,
                  static_cast<unsigned long long>(outcome.programs_executed),
                  outcome.leases_stolen);
      if (!outcome.campaign_complete) {
        // Interrupted: the in-flight lease was still published and every
        // claim released, so any worker (re)started against the directory
        // picks up exactly where the fleet left off.
        std::printf("campaign incomplete; rerun workers against %s to "
                    "continue\n",
                    worker_dir.empty() ? coordinator.c_str()
                                       : worker_dir.c_str());
        return 3;
      }
      if (worker_dir.empty()) {
        // TCP mode: the done blocks live in the coordinator's state
        // directory (same layout as a lease directory) — merge there.
        std::printf("campaign complete; merge on the coordinator host with "
                    "--merge --checkpoint-dir <coordinator state dir>\n");
        if (!report_path.empty() || tables)
          std::fprintf(stderr,
                       "gpudiff-campaign: --report/--tables need the merged "
                       "results; run --merge against the coordinator's state "
                       "directory\n");
      } else if (!report_path.empty() || tables || reduce_exemplars) {
        // Deterministic outputs make this safe in a fleet: every worker
        // that gets here writes byte-identical results (each through its
        // own temp file) — and with --reduce-exemplars, byte-identical
        // bundles (atomic per-file writes).
        const support::Json echo = campaign::config_to_json(config);
        const diff::CampaignResults results =
            campaign::merge_lease_dir(worker_dir);
        emit_results(results, report_path, tables,
                     report_v2 ? &echo : nullptr,
                     ".tmp." + std::to_string(::getpid()));
        if (reduce_exemplars) {
          std::string out = cli.get_string("reduce-out");
          if (out.empty()) out = worker_dir + "/reduced";
          reduce_exemplars_of(config, results, out, max_exemplars);
        }
      } else {
        std::printf("campaign complete; merge with --merge --checkpoint-dir "
                    "%s\n",
                    worker_dir.c_str());
      }
      return 0;
    }

    campaign::ShardRunOptions options;
    options.shard = shard;
    options.checkpoint_dir = checkpoint_dir;
    options.checkpoint_every = static_cast<int>(cli.get_int("checkpoint-every"));
    options.resume = cli.get_flag("resume");
    options.stop_requested = [] {
      return g_stop.load(std::memory_order_relaxed);
    };
    if (cli.get_flag("progress")) {
      options.on_progress = [](const campaign::ShardProgress& p) {
        std::uint64_t discrepancies = 0;
        for (const auto& stats : p.per_level)
          discrepancies += stats.discrepancy_total();
        std::printf("[shard %s] programs %llu/%llu, discrepancies %llu\n",
                    campaign::to_string(p.shard).c_str(),
                    static_cast<unsigned long long>(p.cursor - p.begin),
                    static_cast<unsigned long long>(p.end - p.begin),
                    static_cast<unsigned long long>(discrepancies));
        std::fflush(stdout);
      };
    }

    const campaign::ShardProgress progress = campaign::run_shard(config, options);
    if (!progress.complete()) {
      if (checkpoint_dir.empty()) {
        std::printf("shard %s interrupted at program %llu/%llu; no "
                    "--checkpoint-dir was given, so the completed work is "
                    "discarded\n",
                    campaign::to_string(shard).c_str(),
                    static_cast<unsigned long long>(progress.cursor - progress.begin),
                    static_cast<unsigned long long>(progress.end - progress.begin));
      } else {
        std::printf("shard %s interrupted; checkpointed through program "
                    "%llu/%llu, rerun with --resume to continue\n",
                    campaign::to_string(shard).c_str(),
                    static_cast<unsigned long long>(progress.cursor - progress.begin),
                    static_cast<unsigned long long>(progress.end - progress.begin));
      }
      return 3;
    }
    if (shard.count == 1) {
      const support::Json echo = campaign::config_to_json(config);
      const diff::CampaignResults results = campaign::merge_shards({progress});
      emit_results(results, report_path, tables, report_v2 ? &echo : nullptr);
      if (reduce_exemplars) {
        std::string out = cli.get_string("reduce-out");
        if (out.empty())
          out = checkpoint_dir.empty() ? "reduced" : checkpoint_dir + "/reduced";
        reduce_exemplars_of(config, results, out, max_exemplars);
      }
    } else {
      std::printf("shard %s complete (%llu programs); merge all shards with "
                  "--merge --checkpoint-dir %s\n",
                  campaign::to_string(shard).c_str(),
                  static_cast<unsigned long long>(progress.end - progress.begin),
                  checkpoint_dir.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudiff-campaign: %s\n", e.what());
    return 2;
  }
}
