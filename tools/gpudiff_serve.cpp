// gpudiff-serve: ingest, query and serve the results store (src/store/).
//
// One binary covers the store workflow end to end:
//
//   # fold campaign reports and BENCH files into the store under a commit
//   gpudiff-serve --store db --commit abc1234 \
//       --ingest results.json,BENCH_abc1234.json
//
//   # local queries (no daemon needed)
//   gpudiff-serve --store db --summary
//   gpudiff-serve --store db --trend --json
//   gpudiff-serve --store db --diff abc1234,def5678 --gate
//
//   # long-running query daemon over the net/ wire protocol
//   gpudiff-serve --store db --serve --port 7071
//
//   # one query against a running daemon (hello + request/response)
//   gpudiff-serve --connect 127.0.0.1:7071 --query '{"op":"summary"}'
//
// The daemon's in-memory index is pure cache over the store directory:
// SIGKILL it at any moment, restart it on the same --store, and every
// query answers byte-identically — the files on disk are the journal.
// --gate is the CI regression gate: exit 0 when the diff is clean, 4 when
// any discrepancy population grew or any benchmark regressed past
// --max-perf-regress percent.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "diff/report.hpp"
#include "net/wire.hpp"
#include "store/serve.hpp"
#include "store/store.hpp"
#include "support/cli.hpp"
#include "support/retry.hpp"
#include "support/strings.hpp"

namespace {

using namespace gpudiff;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int run_ingest(const support::CliParser& cli) {
  const std::string commit = cli.get_string("commit");
  if (commit.empty()) {
    std::fprintf(stderr, "gpudiff-serve: --ingest needs --commit\n");
    return 1;
  }
  store::IngestOptions options;
  options.quarantine = cli.get_flag("quarantine");
  options.max_exemplars = static_cast<int>(cli.get_int("max-exemplars"));
  std::vector<std::string> paths;
  for (const auto& p : support::split(cli.get_string("ingest"), ','))
    if (!p.empty()) paths.push_back(p);
  const store::IngestOutcome outcome =
      store::ingest(cli.get_string("store"), commit, paths, options);
  std::printf("ingested %d report(s) and %d bench file(s) under %s\n",
              outcome.reports, outcome.bench_files, commit.c_str());
  for (const auto& q : outcome.quarantined)
    std::printf("quarantined %s\n", q.c_str());
  return outcome.quarantined.empty() ? 0 : 3;
}

int run_query(support::CliParser& cli) {
  // One connection, one hello, then the query with the next seq — the
  // same exchange the worker transport speaks.
  const auto [host, port] = net::parse_host_port(cli.get_string("connect"));
  const double timeout = cli.get_double("timeout");
  net::Socket socket = net::connect_tcp(host, port, timeout);
  if (!socket.valid()) {
    std::fprintf(stderr, "gpudiff-serve: %s unreachable\n",
                 cli.get_string("connect").c_str());
    return 2;
  }
  support::Json hello = support::Json::object();
  hello["op"] = "hello";
  hello["version"] = net::kWireVersion;
  hello["store_version"] = store::kStoreVersion;
  support::Json response;
  if (net::request_response(socket, std::move(hello), 1, &response, timeout) !=
          net::IoStatus::Ok ||
      !response.get_or("ok", support::Json(false)).as_bool()) {
    std::fprintf(stderr, "gpudiff-serve: hello refused: %s\n",
                 response.get_or("error", support::Json("no response"))
                     .as_string()
                     .c_str());
    return 2;
  }
  support::Json query;
  try {
    query = support::Json::parse(cli.get_string("query"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudiff-serve: --query is not valid JSON: %s\n",
                 e.what());
    return 1;
  }
  if (net::request_response(socket, std::move(query), 2, &response, timeout) !=
      net::IoStatus::Ok) {
    std::fprintf(stderr, "gpudiff-serve: no response to query\n");
    return 2;
  }
  // The raw response line, exactly as the server framed it: scripts pipe
  // this into jq / cmp, and the determinism invariant makes it diffable.
  std::printf("%s\n", response.dump().c_str());
  return response.get_or("ok", support::Json(false)).as_bool() ? 0 : 2;
}

int run_serve(const support::CliParser& cli) {
  store::ServeOptions options;
  options.dir = cli.get_string("store");
  options.bind_host = cli.get_string("bind");
  options.port = static_cast<int>(cli.get_int("port"));
  store::StoreServer server(options);
  // The resolved port on its own line, so scripts binding port 0 can
  // scrape where the daemon actually listens (the coordinator idiom).
  std::printf("gpudiff-serve listening on %s:%d (store: %s, %d commits)\n",
              options.bind_host.c_str(), server.port(), server.dir().c_str(),
              server.commit_count());
  std::fflush(stdout);
  server.start();
  while (!g_stop.load(std::memory_order_relaxed))
    support::interruptible_sleep(0.2, [] {
      return g_stop.load(std::memory_order_relaxed);
    });
  server.stop();
  std::printf("gpudiff-serve: stopped (%d commits indexed)\n",
              server.commit_count());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli("gpudiff-serve",
                         "Results store: ingest, query, diff and serve "
                         "discrepancy/perf populations across commits");
  cli.add_string("store", 's', "store directory", "");
  cli.add_string("ingest", 'i',
                 "comma-separated campaign reports / BENCH_*.json files to "
                 "fold into the store",
                 "");
  cli.add_string("commit", 'c', "commit label the ingested files belong to",
                 "");
  cli.add_flag("quarantine",
               "--ingest: set corrupt input files aside as *.quarantined "
               "instead of aborting on the first one");
  cli.add_int("max-exemplars", 'e',
              "exemplar record keys kept per (pair, class) at ingest", 5);
  cli.add_flag("summary", "print the per-commit summary table");
  cli.add_flag("trend", "print cross-commit trend series (JSON)");
  cli.add_string("diff", 'D', "diff two ingested commits: from,to", "");
  cli.add_flag("gate",
               "with --diff: exit 4 on any population or perf regression "
               "(the CI trend gate)");
  cli.add_double("max-perf-regress", 'R',
                 "perf regression threshold in percent for --diff/--gate",
                 10.0);
  cli.add_flag("json", "print query results as JSON instead of tables");
  cli.add_flag("serve", "run the query daemon until SIGINT/SIGTERM");
  cli.add_string("bind", 'b', "--serve: address to listen on", "127.0.0.1");
  cli.add_int("port", 'p', "--serve: port (0 = ephemeral, printed)", 0);
  cli.add_string("connect", 'C', "query a running daemon at host:port", "");
  cli.add_string("query", 'q',
                 "--connect: one request object, e.g. '{\"op\":\"summary\"}'",
                 "");
  cli.add_double("timeout", 'T', "--connect: per-operation timeout seconds",
                 10.0);
  if (!cli.parse(argc, argv)) return 1;

  try {
    if (!cli.get_string("connect").empty()) return run_query(cli);
    if (cli.get_string("store").empty()) {
      std::fprintf(stderr, "gpudiff-serve: --store is required\n");
      return 1;
    }
    if (!cli.get_string("ingest").empty()) return run_ingest(cli);
    if (cli.get_flag("serve")) {
      std::signal(SIGINT, handle_signal);
      std::signal(SIGTERM, handle_signal);
      return run_serve(cli);
    }
    if (cli.get_flag("summary")) {
      const store::StoreIndex index = store::load_store(cli.get_string("store"));
      const support::Json doc = store::summary(index);
      if (cli.get_flag("json"))
        std::printf("%s\n", doc.dump(1).c_str());
      else
        std::fputs(diff::render_store_summary(doc).c_str(), stdout);
      return 0;
    }
    if (cli.get_flag("trend")) {
      const store::StoreIndex index = store::load_store(cli.get_string("store"));
      std::printf("%s\n", store::trend(index).dump(1).c_str());
      return 0;
    }
    if (!cli.get_string("diff").empty()) {
      const auto parts = support::split(cli.get_string("diff"), ',');
      if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
        std::fprintf(stderr, "gpudiff-serve: --diff wants from,to\n");
        return 1;
      }
      const store::StoreIndex index = store::load_store(cli.get_string("store"));
      store::DiffOptions options;
      options.max_perf_regress_pct = cli.get_double("max-perf-regress");
      const support::Json doc =
          store::diff_commits(index, parts[0], parts[1], options);
      if (cli.get_flag("json"))
        std::printf("%s\n", doc.dump(1).c_str());
      else
        std::fputs(diff::render_store_diff(doc).c_str(), stdout);
      if (cli.get_flag("gate") && !doc.at("clean").as_bool()) return 4;
      return 0;
    }
    std::fprintf(stderr,
                 "gpudiff-serve: nothing to do (pass --ingest, --summary, "
                 "--trend, --diff, --serve or --connect)\n");
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudiff-serve: %s\n", e.what());
    return 2;
  }
}
