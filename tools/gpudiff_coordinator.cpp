// gpudiff-coordinator: the TCP lease coordinator for network-elastic
// worker fleets (campaign/coordinator.hpp).
//
//   gpudiff-coordinator --dir coord-state --port 7070
//
// The state directory is durable and uses the ordinary lease-directory
// layout: kill the coordinator at any moment, restart it on the same
// --dir, and it recovers every claim and every published lease block;
// when the fleet finishes, merge the directory directly with
//   gpudiff-campaign --merge --checkpoint-dir coord-state ...
//
// The coordinator is campaign-agnostic until the first worker's hello
// seeds the manifest; after that, hellos carrying a different campaign
// configuration (or wire protocol version) are refused at connect.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>

#include "campaign/coordinator.hpp"
#include "support/cli.hpp"
#include "support/retry.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  gpudiff::support::CliParser cli(
      "gpudiff-coordinator",
      "TCP lease coordinator for network-elastic gpudiff-campaign fleets");
  cli.add_string("dir", 'd',
                 "durable state directory (lease-dir layout; restartable, "
                 "mergeable with gpudiff-campaign --merge)",
                 "");
  cli.add_string("bind", 'b', "address to listen on", "127.0.0.1");
  cli.add_int("port", 'p', "port to listen on (0 = ephemeral, printed)", 0);
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_string("dir").empty()) {
    std::fprintf(stderr, "gpudiff-coordinator: --dir is required (the state "
                         "directory is the durability story)\n");
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    gpudiff::campaign::CoordinatorOptions options;
    options.dir = cli.get_string("dir");
    options.bind_host = cli.get_string("bind");
    options.port = static_cast<int>(cli.get_int("port"));
    gpudiff::campaign::Coordinator coordinator(options);
    // The resolved port on its own line, so scripts (and the fleet tests)
    // binding port 0 can scrape where the coordinator actually listens.
    std::printf("gpudiff-coordinator listening on %s:%d (state: %s)\n",
                options.bind_host.c_str(), coordinator.port(),
                coordinator.dir().c_str());
    std::fflush(stdout);
    coordinator.start();
    while (!g_stop.load(std::memory_order_relaxed))
      gpudiff::support::interruptible_sleep(0.2, [] {
        return g_stop.load(std::memory_order_relaxed);
      });
    coordinator.stop();
    std::printf("gpudiff-coordinator: %d lease blocks published to %s\n",
                coordinator.done_count(), coordinator.dir().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gpudiff-coordinator: %s\n", e.what());
    return 2;
  }
}
