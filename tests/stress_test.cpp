// Long-running differential stress suite: a few thousand random programs,
// both virtual toolchains, every optimization level, bytecode VM vs the
// tree-walk oracle — outputs and exception flags must be bit-identical
// everywhere.  This is the chainer-gradient_check-style self-check of the
// execution engine at campaign scale: the fast path is only trusted
// because the slow reference path keeps agreeing with it.
//
// Registered under the `stress` CTest configuration and label so tier-1
// stays fast; the nightly CI job runs it with
//
//   ctest --test-dir build -C stress -L stress --output-on-failure
//
// Program count scales with GPUDIFF_STRESS_PROGRAMS (default 2000 per
// precision).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "opt/pipeline.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;

int stress_programs() {
  if (const char* env = std::getenv("GPUDIFF_STRESS_PROGRAMS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2000;
}

constexpr int kInputsPerProgram = 3;
constexpr std::uint64_t kSeed = 20260726;

/// Sweep `programs` random programs of one precision through every
/// (toolchain, level, input) and compare bytecode vs tree-walk bit for bit.
void run_stress(ir::Precision precision, int programs) {
  gen::GenConfig gcfg;
  gcfg.precision = precision;
  const gen::Generator generator(gcfg, kSeed);
  const gen::InputGenerator input_gen(kSeed);

  std::atomic<std::uint64_t> comparisons{0};
  std::mutex mu;
  std::vector<std::string> failures;

  support::parallel_for(
      static_cast<std::size_t>(programs),
      [&](std::size_t pi) {
        const ir::Program program = generator.generate(pi);
        std::vector<vgpu::KernelArgs> inputs;
        inputs.reserve(kInputsPerProgram);
        for (int ii = 0; ii < kInputsPerProgram; ++ii)
          inputs.push_back(input_gen.generate(program, pi, ii));
        for (const auto toolchain :
             {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
          for (const auto level : opt::kAllOptLevels) {
            const opt::Executable exe =
                opt::compile(program, {toolchain, level, false});
            for (int ii = 0; ii < kInputsPerProgram; ++ii) {
              const vgpu::RunResult vm = vgpu::run_kernel(exe, inputs[ii]);
              const vgpu::RunResult oracle =
                  vgpu::run_kernel_tree(exe, inputs[ii]);
              comparisons.fetch_add(1, std::memory_order_relaxed);
              if (vm.value_bits == oracle.value_bits &&
                  vm.flags.raw() == oracle.flags.raw())
                continue;
              std::lock_guard<std::mutex> lock(mu);
              if (failures.size() < 25) {
                failures.push_back(support::format(
                    "program %zu input %d %s: vm bits %016llx flags %02x vs "
                    "oracle bits %016llx flags %02x",
                    pi, ii, exe.description().c_str(),
                    static_cast<unsigned long long>(vm.value_bits),
                    vm.flags.raw(),
                    static_cast<unsigned long long>(oracle.value_bits),
                    oracle.flags.raw()));
              }
            }
          }
        }
      });

  EXPECT_TRUE(failures.empty()) << failures.size() << "+ mismatches, first:\n"
                                << support::join(failures, "\n");
  // 2 toolchains x 5 levels x inputs per program: nothing silently skipped.
  EXPECT_EQ(comparisons.load(),
            static_cast<std::uint64_t>(programs) * 2 * 5 * kInputsPerProgram);
}

TEST(DifferentialStress, Fp64BytecodeMatchesTreeOracleBitForBit) {
  // The process-wide backend must be the bytecode VM even if the
  // environment selected the oracle — this suite compares the two.
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  run_stress(ir::Precision::FP64, stress_programs());
}

TEST(DifferentialStress, Fp32BytecodeMatchesTreeOracleBitForBit) {
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  run_stress(ir::Precision::FP32, stress_programs());
}

}  // namespace
