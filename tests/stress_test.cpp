// Long-running differential stress suite: a few thousand random programs,
// both virtual toolchains, every optimization level, bytecode VM vs the
// tree-walk oracle — outputs and exception flags must be bit-identical
// everywhere.  This is the chainer-gradient_check-style self-check of the
// execution engine at campaign scale: the fast path is only trusted
// because the slow reference path keeps agreeing with it.
//
// Registered under the `stress` CTest configuration and label so tier-1
// stays fast; the nightly CI job runs it with
//
//   ctest --test-dir build -C stress -L stress --output-on-failure
//
// Program count scales with GPUDIFF_STRESS_PROGRAMS (default 2000 per
// precision).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "diff/campaign.hpp"
#include "diff/runner.hpp"
#include "ir/mutate.hpp"
#include "reduce/reduce.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "opt/pipeline.hpp"
#include "opt/platform.hpp"
#include "support/cpu.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;

int stress_programs() {
  if (const char* env = std::getenv("GPUDIFF_STRESS_PROGRAMS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2000;
}

constexpr int kInputsPerProgram = 3;
constexpr std::uint64_t kSeed = 20260726;

/// Sweep `programs` random programs of one precision through every
/// (toolchain, level, input) and compare bytecode vs tree-walk bit for bit.
void run_stress(ir::Precision precision, int programs) {
  gen::GenConfig gcfg;
  gcfg.precision = precision;
  const gen::Generator generator(gcfg, kSeed);
  const gen::InputGenerator input_gen(kSeed);

  std::atomic<std::uint64_t> comparisons{0};
  std::mutex mu;
  std::vector<std::string> failures;

  support::parallel_for(
      static_cast<std::size_t>(programs),
      [&](std::size_t pi) {
        const ir::Program program = generator.generate(pi);
        std::vector<vgpu::KernelArgs> inputs;
        inputs.reserve(kInputsPerProgram);
        for (int ii = 0; ii < kInputsPerProgram; ++ii)
          inputs.push_back(input_gen.generate(program, pi, ii));
        for (const auto toolchain :
             {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
          for (const auto level : opt::kAllOptLevels) {
            const opt::Executable exe =
                opt::compile(program, {toolchain, level, false});
            for (int ii = 0; ii < kInputsPerProgram; ++ii) {
              const vgpu::RunResult vm = vgpu::run_kernel(exe, inputs[ii]);
              const vgpu::RunResult oracle =
                  vgpu::run_kernel_tree(exe, inputs[ii]);
              comparisons.fetch_add(1, std::memory_order_relaxed);
              if (vm.value_bits == oracle.value_bits &&
                  vm.flags.raw() == oracle.flags.raw())
                continue;
              std::lock_guard<std::mutex> lock(mu);
              if (failures.size() < 25) {
                failures.push_back(support::format(
                    "program %zu input %d %s: vm bits %016llx flags %02x vs "
                    "oracle bits %016llx flags %02x",
                    pi, ii, exe.description().c_str(),
                    static_cast<unsigned long long>(vm.value_bits),
                    vm.flags.raw(),
                    static_cast<unsigned long long>(oracle.value_bits),
                    oracle.flags.raw()));
              }
            }
          }
        }
      });

  EXPECT_TRUE(failures.empty()) << failures.size() << "+ mismatches, first:\n"
                                << support::join(failures, "\n");
  // 2 toolchains x 5 levels x inputs per program: nothing silently skipped.
  EXPECT_EQ(comparisons.load(),
            static_cast<std::uint64_t>(programs) * 2 * 5 * kInputsPerProgram);
}

TEST(DifferentialStress, Fp64BytecodeMatchesTreeOracleBitForBit) {
  // The process-wide backend must be the bytecode VM even if the
  // environment selected the oracle — this suite compares the two.
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  run_stress(ir::Precision::FP64, stress_programs());
}

TEST(DifferentialStress, Fp32BytecodeMatchesTreeOracleBitForBit) {
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  run_stress(ir::Precision::FP32, stress_programs());
}

// ---------------------------------------------------------------------------
// SIMD differential tier: every runnable lane engine, against the tree
// oracle, across the whole platform registry.
// ---------------------------------------------------------------------------

/// Engines this binary can run (the AVX2 leg joins only when compiled in
/// and usable on the host; CI's AVX2 matrix leg pins it unconditionally).
std::vector<support::SimdOverride> runnable_engines() {
  std::vector<support::SimdOverride> v{support::SimdOverride::Off,
                                       support::SimdOverride::Scalar1,
                                       support::SimdOverride::Scalar};
  const support::SimdOverride saved = support::simd_override();
  support::set_simd_override(support::SimdOverride::Avx2);
  try {
    (void)vgpu::simd_engine();
    v.push_back(support::SimdOverride::Avx2);
  } catch (const std::runtime_error&) {
  }
  support::set_simd_override(saved);
  return v;
}

// Nine inputs per program: a full 8-wide fp32 group plus a tail lane, two
// 4-wide fp64 groups plus a tail — both the grouped and the tail path of
// every batch see traffic, and generated loop bounds/branches give the
// mask discipline real divergence.
constexpr int kSimdInputs = 9;

/// Sweep random programs through every (platform, level, input) under one
/// lane engine and compare the batched VM against the tree oracle bit for
/// bit: values, flags, op and cycle counts.  The oracle is engine-blind,
/// so engines that each match it are transitively identical to each other.
void run_simd_stress(ir::Precision precision, int programs,
                     support::SimdOverride engine) {
  gen::GenConfig gcfg;
  gcfg.precision = precision;
  const gen::Generator generator(gcfg, kSeed);
  const gen::InputGenerator input_gen(kSeed);
  const std::vector<opt::PlatformSpec>& platforms = opt::platform_registry();

  std::atomic<std::uint64_t> comparisons{0};
  std::mutex mu;
  std::vector<std::string> failures;

  const support::SimdOverride saved = support::simd_override();
  support::set_simd_override(engine);
  support::parallel_for(
      static_cast<std::size_t>(programs),
      [&](std::size_t pi) {
        const ir::Program program = generator.generate(pi);
        std::vector<vgpu::KernelArgs> inputs;
        inputs.reserve(kSimdInputs);
        for (int ii = 0; ii < kSimdInputs; ++ii)
          inputs.push_back(input_gen.generate(program, pi, ii));
        for (const auto level : opt::kAllOptLevels) {
          const diff::CompiledSet set =
              diff::compile_set(program, platforms, level);
          for (const opt::Executable& exe : set.exes) {
            std::vector<vgpu::RunResult> batch(inputs.size());
            vgpu::run_kernel_batch(exe, inputs, batch.data());
            for (int ii = 0; ii < kSimdInputs; ++ii) {
              const vgpu::RunResult oracle =
                  vgpu::run_kernel_tree(exe, inputs[ii]);
              comparisons.fetch_add(1, std::memory_order_relaxed);
              const vgpu::RunResult& vm = batch[static_cast<std::size_t>(ii)];
              if (vm.value_bits == oracle.value_bits &&
                  vm.flags.raw() == oracle.flags.raw() &&
                  vm.op_count == oracle.op_count &&
                  vm.cycle_count == oracle.cycle_count)
                continue;
              std::lock_guard<std::mutex> lock(mu);
              if (failures.size() < 25) {
                failures.push_back(support::format(
                    "engine %s program %zu input %d %s: vm bits %016llx "
                    "flags %02x ops %llu cyc %llu vs oracle bits %016llx "
                    "flags %02x ops %llu cyc %llu",
                    support::to_string(engine), pi, ii,
                    exe.description().c_str(),
                    static_cast<unsigned long long>(vm.value_bits),
                    vm.flags.raw(),
                    static_cast<unsigned long long>(vm.op_count),
                    static_cast<unsigned long long>(vm.cycle_count),
                    static_cast<unsigned long long>(oracle.value_bits),
                    oracle.flags.raw(),
                    static_cast<unsigned long long>(oracle.op_count),
                    static_cast<unsigned long long>(oracle.cycle_count)));
              }
            }
          }
        }
      });
  support::set_simd_override(saved);

  EXPECT_TRUE(failures.empty()) << failures.size() << "+ mismatches, first:\n"
                                << support::join(failures, "\n");
  EXPECT_EQ(comparisons.load(), static_cast<std::uint64_t>(programs) *
                                    platforms.size() * 5 * kSimdInputs);
}

TEST(SimdDifferentialStress, Fp64AllEnginesMatchTreeOracleBitForBit) {
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  // A quarter of the base tier per engine keeps the whole SIMD tier in the
  // same runtime budget while still sweeping hundreds of programs times
  // the full registry per engine.
  const int programs = std::max(1, stress_programs() / 4);
  for (const support::SimdOverride engine : runnable_engines())
    run_simd_stress(ir::Precision::FP64, programs, engine);
}

// ---------------------------------------------------------------------------
// Reducer stress tier: run the delta-debugging reducer over every
// discrepancy a campaign-scale corpus produces, then re-verify verdict
// preservation and 1-minimality with the tree-walk oracle — the reducer's
// acceptance decisions (made on the bytecode VM) must hold under the
// reference interpreter too.
// ---------------------------------------------------------------------------

/// ~500 programs per precision at the default GPUDIFF_STRESS_PROGRAMS.
int reduce_stress_programs() { return std::max(50, stress_programs() / 4); }

void run_reduce_stress(ir::Precision precision, int programs) {
  diff::CampaignConfig config;
  config.gen.precision = precision;
  config.seed = kSeed;
  config.num_programs = programs;
  config.inputs_per_program = kInputsPerProgram;
  config.platforms = opt::parse_platform_list("nvcc,hipcc");

  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  const diff::CampaignResults results = diff::run_campaign(config);
  ASSERT_FALSE(results.records.empty())
      << "stress corpus produced no discrepancies; widen the campaign";

  // Phase 1 (bytecode VM): reduce every record.
  std::vector<std::optional<reduce::Reduction>> reductions(
      results.records.size());
  std::vector<std::string> failures;
  std::mutex mu;
  auto record_failure = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(mu);
    if (failures.size() < 25) failures.push_back(message);
  };
  support::parallel_for(results.records.size(), [&](std::size_t i) {
    const diff::DiscrepancyRecord& rec = results.records[i];
    const reduce::RecordRef ref{rec.program_index, rec.input_index,
                                rec.level};
    try {
      reductions[i] = reduce::reduce_record(config, ref);
    } catch (const std::exception& e) {
      record_failure(ref.key() + ": reduce_record threw: " + e.what());
      return;
    }
    if (reductions[i]->verdict.pair_cls != rec.pair_cls)
      record_failure(ref.key() + ": verdict not preserved");
  });

  // Phase 2 (tree-walk oracle): the reproducer must reproduce its verdict
  // and be 1-minimal under the reference interpreter as well.
  vgpu::set_exec_backend(vgpu::ExecBackend::TreeWalk);
  support::parallel_for(reductions.size(), [&](std::size_t i) {
    if (!reductions[i]) return;
    const reduce::Reduction& r = *reductions[i];
    if (reduce::verdict_of(r.program, config, r.record.level, r.args) !=
        r.verdict) {
      record_failure(r.record.key() + ": oracle disagrees on the verdict");
      return;
    }
    for (const ir::StmtId id : ir::preorder_statements(r.program)) {
      const std::optional<ir::Program> dropped =
          reduce::drop_statement(r.program, id);
      if (!dropped) continue;
      reduce::Verdict v;
      try {
        v = reduce::verdict_of(*dropped, config, r.record.level, r.args);
      } catch (const std::exception&) {
        continue;
      }
      if (v == r.verdict) {
        record_failure(r.record.key() + ": not 1-minimal under the oracle");
        return;
      }
    }
  });
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);

  EXPECT_TRUE(failures.empty())
      << failures.size() << "+ failures over " << results.records.size()
      << " records, first:\n"
      << support::join(failures, "\n");
}

TEST(ReduceStress, Fp64EveryDiscrepancyReducesVerdictPreservingOneMinimal) {
  run_reduce_stress(ir::Precision::FP64, reduce_stress_programs());
}

TEST(ReduceStress, Fp32EveryDiscrepancyReducesVerdictPreservingOneMinimal) {
  run_reduce_stress(ir::Precision::FP32, reduce_stress_programs());
}

TEST(SimdDifferentialStress, Fp32AllEnginesMatchTreeOracleBitForBit) {
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  const int programs = std::max(1, stress_programs() / 4);
  for (const support::SimdOverride engine : runnable_engines())
    run_simd_stress(ir::Precision::FP32, programs, engine);
}

}  // namespace
