// Unit tests for the IEEE-754 toolkit: bit helpers, classification,
// exact printing/parsing, exception flags, FTZ/DAZ environment.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fp/bits.hpp"
#include "fp/classify.hpp"
#include "fp/env.hpp"
#include "fp/exceptions.hpp"
#include "fp/hexfloat.hpp"
#include "fp/softfloat.hpp"
#include "support/rng.hpp"

namespace {

using namespace gpudiff::fp;

// ---------------------------------------------------------------------------
// bits
// ---------------------------------------------------------------------------

TEST(Bits, ClassPredicates64) {
  EXPECT_TRUE(is_nan_bits(std::nan("")));
  EXPECT_TRUE(is_inf_bits(infinity<double>()));
  EXPECT_TRUE(is_inf_bits(infinity<double>(true)));
  EXPECT_TRUE(is_zero_bits(0.0));
  EXPECT_TRUE(is_zero_bits(-0.0));
  EXPECT_TRUE(is_subnormal_bits(1e-310));
  EXPECT_FALSE(is_subnormal_bits(1e-300));
  EXPECT_TRUE(is_finite_bits(1.5));
  EXPECT_FALSE(is_finite_bits(infinity<double>()));
  EXPECT_FALSE(is_finite_bits(quiet_nan<double>()));
}

TEST(Bits, ClassPredicates32) {
  EXPECT_TRUE(is_nan_bits(quiet_nan<float>()));
  EXPECT_TRUE(is_inf_bits(infinity<float>()));
  EXPECT_TRUE(is_zero_bits(-0.0f));
  EXPECT_TRUE(is_subnormal_bits(1e-44f));
  EXPECT_FALSE(is_subnormal_bits(1e-37f));
}

TEST(Bits, SignHandling) {
  EXPECT_TRUE(sign_bit(-0.0));
  EXPECT_FALSE(sign_bit(0.0));
  EXPECT_TRUE(sign_bit(-std::nan("")));
  EXPECT_EQ(negate_bits(3.5), -3.5);
  EXPECT_EQ(to_bits(negate_bits(-0.0)), to_bits(0.0));
  EXPECT_EQ(copysign_bits(2.0, -1.0), -2.0);
  EXPECT_EQ(copysign_bits(-2.0, 1.0), 2.0);
  EXPECT_EQ(abs_bits(-7.0f), 7.0f);
}

TEST(Bits, Exponents) {
  EXPECT_EQ(unbiased_exponent(1.0), 0);
  EXPECT_EQ(unbiased_exponent(2.0), 1);
  EXPECT_EQ(unbiased_exponent(0.5), -1);
  EXPECT_EQ(unbiased_exponent(1.0f), 0);
  EXPECT_EQ(raw_exponent(0.0), 0);
  EXPECT_EQ(raw_exponent(1e-310), 0);  // subnormal
}

TEST(Bits, UlpDistance) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 0.0)), 1u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 1u);  // adjacent on the ordered line
  EXPECT_EQ(ulp_distance(quiet_nan<double>(), 1.0), ~0ULL);
  // Symmetry.
  EXPECT_EQ(ulp_distance(-1.5, 2.5), ulp_distance(2.5, -1.5));
}

TEST(Bits, NextUpDown) {
  EXPECT_GT(next_up(1.0), 1.0);
  EXPECT_LT(next_down(1.0), 1.0);
  EXPECT_EQ(next_up(next_down(1.0)), 1.0);
  // Crossing zero.
  EXPECT_GT(next_up(-0.0), 0.0);
  EXPECT_TRUE(is_subnormal_bits(next_up(0.0)));
  EXPECT_TRUE(sign_bit(next_down(0.0)));
}

struct NextUpCase {
  double value;
};

class NextUpMonotone : public ::testing::TestWithParam<NextUpCase> {};

TEST_P(NextUpMonotone, StrictlyIncreasing) {
  const double v = GetParam().value;
  const double up = next_up(v);
  EXPECT_GT(up, v);
  EXPECT_EQ(ulp_distance(v, up), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SweepValues, NextUpMonotone,
    ::testing::Values(NextUpCase{1.0}, NextUpCase{-1.0}, NextUpCase{1e-310},
                      NextUpCase{-1e-310}, NextUpCase{1e308},
                      NextUpCase{-1e308}, NextUpCase{0.5}, NextUpCase{-2.5}));

// ---------------------------------------------------------------------------
// classify
// ---------------------------------------------------------------------------

TEST(Classify, FullTaxonomy) {
  EXPECT_EQ(classify(quiet_nan<double>()), FpClass::PosNaN);
  EXPECT_EQ(classify(quiet_nan<double>(true)), FpClass::NegNaN);
  EXPECT_EQ(classify(infinity<double>()), FpClass::PosInf);
  EXPECT_EQ(classify(-infinity<double>()), FpClass::NegInf);
  EXPECT_EQ(classify(0.0), FpClass::PosZero);
  EXPECT_EQ(classify(-0.0), FpClass::NegZero);
  EXPECT_EQ(classify(1e-310), FpClass::PosSubnormal);
  EXPECT_EQ(classify(-1e-310), FpClass::NegSubnormal);
  EXPECT_EQ(classify(3.0), FpClass::PosNormal);
  EXPECT_EQ(classify(-3.0), FpClass::NegNormal);
}

TEST(Classify, OutcomeBucketsSubnormalIsNumber) {
  EXPECT_EQ(outcome_of(1e-310).cls, OutcomeClass::Number);
  EXPECT_EQ(outcome_of(1e-310).negative, false);
  EXPECT_EQ(outcome_of(-5.0).cls, OutcomeClass::Number);
  EXPECT_TRUE(outcome_of(-5.0).negative);
  EXPECT_EQ(outcome_of(-0.0).cls, OutcomeClass::Zero);
  EXPECT_TRUE(outcome_of(-0.0).negative);
  EXPECT_EQ(outcome_of(infinity<float>()).cls, OutcomeClass::Inf);
  EXPECT_EQ(outcome_of(quiet_nan<float>(true)).cls, OutcomeClass::NaN);
}

TEST(Classify, ToStringSpellsSign) {
  EXPECT_EQ(to_string(Outcome{OutcomeClass::Inf, true}), "-Inf");
  EXPECT_EQ(to_string(Outcome{OutcomeClass::Number, false}), "+Num");
  EXPECT_EQ(to_string(FpClass::NegSubnormal), "-Subnormal");
}

// ---------------------------------------------------------------------------
// hexfloat: printing & parsing round-trips
// ---------------------------------------------------------------------------

TEST(Hexfloat, PrintG17MatchesPrintf) {
  const double values[] = {8.6551990944767196e-306, 1.0, -0.0, 0.1, 1e300};
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    EXPECT_EQ(print_g17(v), buf);
  }
}

TEST(Hexfloat, VarityStyleSpecials) {
  EXPECT_EQ(print_varity(0.0), "+0.0");
  EXPECT_EQ(print_varity(-0.0), "-0.0");
  EXPECT_EQ(print_varity(infinity<double>()), "+inf");
  EXPECT_EQ(print_varity(-infinity<double>()), "-inf");
  EXPECT_EQ(print_varity(quiet_nan<double>(true)), "-nan");
}

TEST(Hexfloat, ParsesVarityLiterals) {
  EXPECT_EQ(parse_double("+1.5955E-125").value(), 1.5955e-125);
  EXPECT_EQ(parse_double("-1.3857E-36").value(), -1.3857e-36);
  EXPECT_EQ(parse_double("+0.0").value(), 0.0);
  EXPECT_TRUE(sign_bit(parse_double("-0.0").value()));
  EXPECT_TRUE(is_inf_bits(parse_double("-inf").value()));
  EXPECT_TRUE(is_nan_bits(parse_double("nan").value()));
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Hexfloat, ParsesFloatSuffix) {
  EXPECT_EQ(parse_float("1.5F").value(), 1.5f);
  EXPECT_EQ(parse_float("+1.2345E10F").value(), 1.2345e10f);
  EXPECT_TRUE(is_inf_bits(parse_float("+inf").value()));
  EXPECT_FALSE(parse_float("").has_value());
}

TEST(Hexfloat, BitEncodingRoundTrip64) {
  gpudiff::support::Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const double v = from_bits<double>(rng.next());
    const auto back = decode_bits64(encode_bits(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(to_bits(*back), to_bits(v));  // NaN payloads preserved
  }
}

TEST(Hexfloat, BitEncodingRoundTrip32) {
  gpudiff::support::Rng rng(2025);
  for (int i = 0; i < 2000; ++i) {
    const float v = from_bits<float>(static_cast<std::uint32_t>(rng.next()));
    const auto back = decode_bits32(encode_bits(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(to_bits(*back), to_bits(v));
  }
}

TEST(Hexfloat, BitDecodingRejectsMalformed) {
  EXPECT_FALSE(decode_bits64("64:123").has_value());
  EXPECT_FALSE(decode_bits64("32:0000000000000000").has_value());
  EXPECT_FALSE(decode_bits64("64:GGGGGGGGGGGGGGGG").has_value());
  EXPECT_FALSE(decode_bits32("64:00000000").has_value());
}

/// Property: %.17g printing round-trips every double exactly.
TEST(Hexfloat, PrintedG17RoundTripsRandomDoubles) {
  gpudiff::support::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    double v = from_bits<double>(rng.next());
    if (is_nan_bits(v)) continue;  // NaN payloads are not in %.17g's contract
    const auto back = parse_double(print_g17(v));
    ASSERT_TRUE(back.has_value()) << print_g17(v);
    EXPECT_EQ(to_bits(*back), to_bits(v)) << print_g17(v);
  }
}

// ---------------------------------------------------------------------------
// exceptions
// ---------------------------------------------------------------------------

TEST(Exceptions, FlagAccumulation) {
  ExceptionFlags flags;
  EXPECT_FALSE(flags.any());
  flags.raise(kInexact);
  EXPECT_TRUE(flags.inexact());
  EXPECT_FALSE(flags.any_serious());
  flags.raise(kOverflow | kInvalid);
  EXPECT_TRUE(flags.overflow());
  EXPECT_TRUE(flags.invalid());
  EXPECT_TRUE(flags.any_serious());
  flags.clear();
  EXPECT_FALSE(flags.any());
}

TEST(Exceptions, ToStringListsRaised) {
  ExceptionFlags flags;
  EXPECT_EQ(flags.to_string(), "none");
  flags.raise(kDivideByZero | kUnderflow);
  const std::string s = flags.to_string();
  EXPECT_NE(s.find("div-by-zero"), std::string::npos);
  EXPECT_NE(s.find("underflow"), std::string::npos);
  EXPECT_EQ(s.find("overflow"), std::string::npos);
}

TEST(Exceptions, InferArithmetic) {
  EXPECT_TRUE(infer_arith_exceptions(quiet_nan<double>(), true, true) & kInvalid);
  EXPECT_TRUE(infer_arith_exceptions(infinity<double>(), true, true) & kOverflow);
  EXPECT_TRUE(infer_arith_exceptions(1e-310, true, true) & kUnderflow);
  EXPECT_TRUE(infer_arith_exceptions(1.5, true, false) & kInexact);
  EXPECT_EQ(infer_arith_exceptions(1.5, true, true), 0);
}

// ---------------------------------------------------------------------------
// env (FTZ / DAZ)
// ---------------------------------------------------------------------------

TEST(Env, FtzFlushesSubnormalResults) {
  FpEnv env;
  env.ftz32 = true;
  ExceptionFlags flags;
  EXPECT_EQ(apply_ftz(1e-44f, env, &flags), 0.0f);
  EXPECT_TRUE(flags.underflow());
  EXPECT_TRUE(sign_bit(apply_ftz(-1e-44f, env)));
  EXPECT_EQ(apply_ftz(1e-30f, env), 1e-30f);  // normal untouched
  // FP64 unaffected by ftz32.
  EXPECT_EQ(apply_ftz(1e-310, env), 1e-310);
}

TEST(Env, DazZeroesSubnormalInputs) {
  FpEnv env;
  env.daz32 = true;
  EXPECT_EQ(apply_daz(1e-44f, env), 0.0f);
  EXPECT_TRUE(sign_bit(apply_daz(-1e-44f, env)));
  EXPECT_EQ(apply_daz(1e-44, env), 1e-44);  // double side has its own switch
  FpEnv env64;
  env64.daz64 = true;
  EXPECT_EQ(apply_daz(1e-310, env64), 0.0);
}

TEST(Env, DefaultEnvIsTransparent) {
  FpEnv env;
  EXPECT_EQ(apply_ftz(1e-44f, env), 1e-44f);
  EXPECT_EQ(apply_daz(1e-310, env), 1e-310);
  EXPECT_EQ(env.div32, Div32Mode::IEEE);
  EXPECT_FALSE(env.naive_minmax);
}

// ---------------------------------------------------------------------------
// softfloat: the assist-free integer mul/div must match the host FPU
// bit-for-bit on every finite operand pair — the hardware is the oracle.
// ---------------------------------------------------------------------------

template <typename T>
void check_softfloat_against_hardware() {
  using B = typename FloatTraits<T>::Bits;
  gpudiff::support::Rng rng(0x50F7u);
  // Operand generators biased toward the assist-prone classes: subnormals,
  // near-underflow and near-overflow magnitudes, plus uniform bit noise.
  const auto gen = [&]() -> T {
    const auto cls = rng.next() % 4;
    B bits = static_cast<B>(rng.next());
    constexpr int m = FloatTraits<T>::mantissa_bits;
    constexpr int ebits = FloatTraits<T>::exponent_bits;
    const B sign = bits & FloatTraits<T>::sign_mask;
    if (cls == 0) {  // subnormal
      bits = sign | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 1) {  // tiny normal exponent
      const B e = static_cast<B>(1 + rng.next() % 40);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 2) {  // huge exponent
      const B e = static_cast<B>(((B{1} << ebits) - 2) - rng.next() % 40);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    }
    return from_bits<T>(bits);
  };
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const T a = gen();
    const T b = gen();
    if (is_nan_bits(a) || is_nan_bits(b) || is_inf_bits(a) || is_inf_bits(b))
      continue;
    const T hw_mul = a * b;
    ASSERT_EQ(to_bits(soft_mul(a, b)), to_bits(hw_mul))
        << encode_bits(a) << " * " << encode_bits(b);
    if (!is_zero_bits(a) && !is_zero_bits(b)) {
      const T hw_div = a / b;
      ASSERT_EQ(to_bits(soft_div(a, b)), to_bits(hw_div))
          << encode_bits(a) << " / " << encode_bits(b);
    }
    ++checked;
  }
  ASSERT_GT(checked, 100000);
}

TEST(SoftFloat, MulDivMatchHardware64) { check_softfloat_against_hardware<double>(); }
TEST(SoftFloat, MulDivMatchHardware32) { check_softfloat_against_hardware<float>(); }

TEST(SoftFloat, DirectedEdgeCases64) {
  const double cases[][2] = {
      {0x1p-1074, 0x1p-1074},    // min subnormal squared -> 0
      {0x1.8p-1074, 1.0},        // halfway-odd: RNE up
      {0x1p-1022, 0.5},          // min normal down into subnormal
      {0x1.fffffffffffffp+1023, 0x1p-1074},  // extreme magnitudes
      {0x1p-537, 0x1p-537},      // product exactly min subnormal scale
      {-0x1p-1070, 0x1p+3},
      {5.0, 3.0},                // plain normals (exactness of the path)
  };
  for (const auto& c : cases) {
    EXPECT_EQ(to_bits(soft_mul(c[0], c[1])), to_bits(c[0] * c[1]))
        << c[0] << " * " << c[1];
    EXPECT_EQ(to_bits(soft_div(c[0], c[1])), to_bits(c[0] / c[1]))
        << c[0] << " / " << c[1];
    EXPECT_EQ(to_bits(soft_div(c[1], c[0])), to_bits(c[1] / c[0]))
        << c[1] << " / " << c[0];
  }
  // Overflow to infinity through division by a subnormal.
  EXPECT_EQ(to_bits(soft_div(0x1p+1000, 0x1p-1074)),
            to_bits(std::numeric_limits<double>::infinity()));
}

// ---------------------------------------------------------------------------
// soft_fma / conversions / exactness probes: the remaining assist sites.
// Same contract: the hardware operation is the oracle, bit-for-bit.
// ---------------------------------------------------------------------------

template <typename T>
void check_soft_fma_against_hardware() {
  using B = typename FloatTraits<T>::Bits;
  gpudiff::support::Rng rng(0xF3A5u);
  const auto gen = [&]() -> T {
    const auto cls = rng.next() % 5;
    B bits = static_cast<B>(rng.next());
    constexpr int m = FloatTraits<T>::mantissa_bits;
    constexpr int ebits = FloatTraits<T>::exponent_bits;
    const B sign = bits & FloatTraits<T>::sign_mask;
    if (cls == 0) {  // subnormal
      bits = sign | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 1) {  // tiny normal exponent
      const B e = static_cast<B>(1 + rng.next() % 40);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 2) {  // huge exponent
      const B e = static_cast<B>(((B{1} << ebits) - 2) - rng.next() % 40);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 3) {  // mid-range (cancellation fodder)
      const B e = static_cast<B>(FloatTraits<T>::exponent_bias - 2 +
                                 rng.next() % 5);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    }
    return from_bits<T>(bits);
  };
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const T a = gen();
    const T b = gen();
    T c = gen();
    if (rng.next() % 4 == 0) {
      // Directed near-cancellation: c ~ -(a*b) so the fused low bits
      // survive, the hardest rounding case for a fused implementation.
      c = -(a * b);
    }
    if (is_nan_bits(a) || is_nan_bits(b) || is_nan_bits(c) || is_inf_bits(a) ||
        is_inf_bits(b) || is_inf_bits(c))
      continue;
    const T hw = std::fma(a, b, c);
    ASSERT_EQ(to_bits(soft_fma(a, b, c)), to_bits(hw))
        << encode_bits(a) << " * " << encode_bits(b) << " + " << encode_bits(c);
    ++checked;
  }
  ASSERT_GT(checked, 100000);
}

TEST(SoftFloat, FmaMatchesHardware64) { check_soft_fma_against_hardware<double>(); }
TEST(SoftFloat, FmaMatchesHardware32) { check_soft_fma_against_hardware<float>(); }

TEST(SoftFloat, FmaDirectedEdgeCases64) {
  const double cases[][3] = {
      {1.0 + 0x1p-52, 1.0 - 0x1p-52, -1.0},       // fused -2^-104 survives
      {1.0 + 0x1p-52, 1.0 + 0x1p-52, -1.0},       // cancellation, low bits up
      {0x1p-537, 0x1p-537, 0x1p-1074},            // subnormal product + ulp
      {0x1p-537, 0x1p-537, -0x1p-1074},           // ... and cancelled
      {0x1p-1074, 0x1p-1074, 0.0},                // product underflows to 0
      {0x1p-1074, 0x1p-1074, -0.0},               // signed-zero addend
      {0.0, 5.0, -0.0},                           // 0*x + -0 = +0 (RNE)
      {-0.0, 5.0, 0.0},                           // -0*x + 0 = +0 (RNE)
      {-0.0, 5.0, -0.0},                          // both negative: -0
      {0x1.fffffffffffffp+1023, 2.0, -0x1.fffffffffffffp+1023},  // huge
      {0x1p+1000, 0x1p+100, -0x1p-1000},          // far-apart magnitudes
      {0x1p-1000, 0x1p-100, 0x1p+1000},           // addend dominates
      {3.0, 7.0, 1e-300},                         // sticky below plain product
  };
  for (const auto& c : cases) {
    EXPECT_EQ(to_bits(soft_fma(c[0], c[1], c[2])),
              to_bits(std::fma(c[0], c[1], c[2])))
        << encode_bits(c[0]) << " * " << encode_bits(c[1]) << " + "
        << encode_bits(c[2]);
  }
}

TEST(SoftFloat, PromoteDemoteMatchCasts) {
  gpudiff::support::Rng rng(0xCA57u);
  for (int i = 0; i < 200000; ++i) {
    // Demote: bias toward the narrow band that lands subnormal in float.
    const std::uint64_t bits = rng.next();
    double d = from_bits<double>(bits);
    if (rng.next() % 2) {
      const int e = 1023 - 120 - static_cast<int>(rng.next() % 40);
      d = from_bits<double>((bits & 0x800FFFFFFFFFFFFFull) |
                            (static_cast<std::uint64_t>(e) << 52));
    }
    if (!is_nan_bits(d) && !is_inf_bits(d)) {
      EXPECT_EQ(to_bits(soft_demote(d)), to_bits(static_cast<float>(d)))
          << encode_bits(d);
    }
    const float f = from_bits<float>(static_cast<std::uint32_t>(rng.next()));
    if (!is_nan_bits(f) && !is_inf_bits(f)) {
      EXPECT_EQ(to_bits(soft_promote(f)), to_bits(static_cast<double>(f)))
          << encode_bits(f);
    }
  }
}

TEST(SoftFloat, ExactnessProbesMatchErrorFreeTransformations) {
  // The std::fma error-free probe is only a trustworthy oracle away from
  // the underflow boundary: when the rounding residual falls below
  // 2^-1074 the fused probe itself flushes it to zero and falsely reports
  // "exact" (the integer probes get those hairline cases right — pinned
  // by the directed checks below).
  gpudiff::support::Rng rng(0xE4AC7u);
  // The fused probe's residual is a multiple of 2^(ulp-exponent sum of its
  // product operands); the probe is an oracle only when that frame is at
  // or above the smallest subnormal.
  const auto frame_ok = [](double x, double y) {
    return (std::ilogb(x) - 52) + (std::ilogb(y) - 52) >= -1074;
  };
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const double a = from_bits<double>(rng.next());
    const double b = from_bits<double>(rng.next());
    if (is_nan_bits(a) || is_nan_bits(b) || is_inf_bits(a) || is_inf_bits(b) ||
        is_zero_bits(a) || is_zero_bits(b))
      continue;
    const double r = a * b;
    if (is_finite_bits(r) && frame_ok(a, b)) {
      EXPECT_EQ(mul_rounds_inexact(a, b), std::fma(a, b, -r) != 0.0)
          << encode_bits(a) << " * " << encode_bits(b);
      ++checked;
    }
    const double q = a / b;
    if (is_finite_bits(q) && !is_zero_bits(q) && frame_ok(q, b)) {
      EXPECT_EQ(div_rounds_inexact(a, b), std::fma(q, b, -a) != 0.0)
          << encode_bits(a) << " / " << encode_bits(b);
    }
  }
  EXPECT_GT(checked, 50000);
  // Directed: exact cases must not report inexact.
  EXPECT_FALSE(mul_rounds_inexact(1.5, 2.0));
  EXPECT_FALSE(mul_rounds_inexact(0x1p-537, 0x1p-537));  // exact subnormal
  // Exactly representable at the subnormal ulp (2^-1022 + 2^-1074).
  EXPECT_FALSE(mul_rounds_inexact(1.0 + 0x1p-52, 0x1p-1022));
  EXPECT_FALSE(div_rounds_inexact(6.0, 3.0));
  // Hairline inexactness the fused probe cannot see:
  // 2^-1023 + 2^-1075 has a dropped half-ulp below the subnormal grid.
  EXPECT_TRUE(mul_rounds_inexact(1.0 + 0x1p-52, 0x1p-1023));
  // 2^-537 * 2^-538 = 2^-1075: rounds to zero on the subnormal grid.
  EXPECT_TRUE(mul_rounds_inexact(0x1p-537, 0x1p-538));
  // 2^-1074 / 2 is below the subnormal ulp and rounds (to zero): inexact.
  EXPECT_TRUE(div_rounds_inexact(0x1p-1074, 2.0));
  EXPECT_TRUE(div_rounds_inexact(1.0, 3.0));
}

}  // namespace
